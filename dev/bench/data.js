window.BENCHMARK_DATA = {
  "lastUpdate": 1786163546312,
  "repoUrl": "",
  "entries": {
    "Go Benchmark": [
      {
        "commit": {
          "id": "f57cf15fa346bdec0650e61d415e9a0788e44ac9",
          "message": "v0: v5__go__conf_podc_FanL04 growth seed (0 files)",
          "timestamp": "2026-08-08T04:32:26Z",
          "url": ""
        },
        "date": 1786163546312,
        "tool": "go",
        "benches": [
          {
            "name": "BenchmarkEngineStream/dur=32",
            "value": 24946877,
            "unit": "ns/op",
            "extra": "3 reps"
          },
          {
            "name": "BenchmarkEngineStream/dur=32 - allocs",
            "value": 7309,
            "unit": "allocs/op",
            "extra": "3 reps"
          },
          {
            "name": "BenchmarkEngineStream/dur=96",
            "value": 77372351,
            "unit": "ns/op",
            "extra": "3 reps"
          },
          {
            "name": "BenchmarkEngineStream/dur=96 - allocs",
            "value": 21076,
            "unit": "allocs/op",
            "extra": "3 reps"
          },
          {
            "name": "BenchmarkSearchEndToEnd",
            "value": 10610474,
            "unit": "ns/op",
            "extra": "3 reps"
          },
          {
            "name": "BenchmarkSearchEndToEnd - allocs",
            "value": 36416,
            "unit": "allocs/op",
            "extra": "3 reps"
          },
          {
            "name": "BenchmarkSearchPrefixCached",
            "value": 7557221,
            "unit": "ns/op",
            "extra": "3 reps"
          },
          {
            "name": "BenchmarkSearchPrefixCached - allocs",
            "value": 27087,
            "unit": "allocs/op",
            "extra": "3 reps"
          }
        ]
      }
    ]
  }
}
