package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"gcs/internal/perf"
)

const baseOut = `goos: linux
BenchmarkEngineStream/dur=32-8  3  100000 ns/op  1000 allocs/op
BenchmarkEngineStream/dur=32-8  3  102000 ns/op  1000 allocs/op
BenchmarkEngineStream/dur=32-8  3   98000 ns/op  1000 allocs/op
BenchmarkSearchPrefixCached-8   2  500000 ns/op  2000 allocs/op
BenchmarkUngated-8              9  100 ns/op     10 allocs/op
PASS
`

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestGatePasses(t *testing.T) {
	head := strings.ReplaceAll(baseOut, "500000 ns/op", "600000 ns/op") // +20% < 30%
	err := run(writeTemp(t, "base.txt", baseOut), writeTemp(t, "head.txt", head),
		"EngineStream|SearchPrefixCached|SearchEndToEnd", 0.30, 0.20, os.Stdout)
	if err != nil {
		t.Fatalf("gate must pass within thresholds: %v", err)
	}
}

func TestGateFailsOnNsRegression(t *testing.T) {
	head := strings.ReplaceAll(baseOut, "500000 ns/op", "700000 ns/op") // +40% > 30%
	err := run(writeTemp(t, "base.txt", baseOut), writeTemp(t, "head.txt", head),
		"EngineStream|SearchPrefixCached|SearchEndToEnd", 0.30, 0.20, os.Stdout)
	if err == nil || !strings.Contains(err.Error(), "exceeded") {
		t.Fatalf("want gate failure, got %v", err)
	}
}

func TestGateFailsOnAllocRegression(t *testing.T) {
	head := strings.ReplaceAll(baseOut, "2000 allocs/op", "2500 allocs/op") // +25% > 20%
	err := run(writeTemp(t, "base.txt", baseOut), writeTemp(t, "head.txt", head),
		"EngineStream|SearchPrefixCached|SearchEndToEnd", 0.30, 0.20, os.Stdout)
	if err == nil || !strings.Contains(err.Error(), "exceeded") {
		t.Fatalf("want gate failure, got %v", err)
	}
}

func TestGateIgnoresUngatedBenchmarks(t *testing.T) {
	head := strings.ReplaceAll(baseOut, "100 ns/op", "9000 ns/op") // huge, but not gated
	err := run(writeTemp(t, "base.txt", baseOut), writeTemp(t, "head.txt", head),
		"EngineStream|SearchPrefixCached|SearchEndToEnd", 0.30, 0.20, os.Stdout)
	if err != nil {
		t.Fatalf("ungated benchmark must not fail the gate: %v", err)
	}
}

func TestGateRejectsEmptyIntersection(t *testing.T) {
	err := run(writeTemp(t, "base.txt", "PASS\n"), writeTemp(t, "head.txt", baseOut),
		"EngineStream", 0.30, 0.20, os.Stdout)
	if err == nil || !strings.Contains(err.Error(), "no gated benchmarks") {
		t.Fatalf("empty intersection must be an error, got %v", err)
	}
}

func TestAppendBootstrapsAndExtendsHistory(t *testing.T) {
	head := writeTemp(t, "head.txt", baseOut)
	history := filepath.Join(t.TempDir(), "bench", "data.js")
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	gated := "EngineStream|SearchPrefixCached|SearchEndToEnd"

	// First append bootstraps a fresh data.js under a fresh directory.
	err := runAppend(head, history, gated, "abc123", "first commit",
		"https://example.com/owner/repo", now, os.Stdout)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(history)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(raw), "window.BENCHMARK_DATA = ") {
		t.Fatalf("history missing data.js assignment prefix: %q", raw[:40])
	}
	h, err := perf.ParseHistory(raw)
	if err != nil {
		t.Fatal(err)
	}
	entries := h.Entries[perf.HistorySeries]
	if len(entries) != 1 {
		t.Fatalf("bootstrap wrote %d entries, want 1", len(entries))
	}
	e := entries[0]
	if e.Commit.ID != "abc123" || e.Commit.URL != "https://example.com/owner/repo/commit/abc123" {
		t.Fatalf("bad commit record: %+v", e.Commit)
	}
	if e.Date != now.UnixMilli() || h.LastUpdate != now.UnixMilli() {
		t.Fatalf("bad dates: entry %d, lastUpdate %d", e.Date, h.LastUpdate)
	}
	// Gated benches only (EngineStream + SearchPrefixCached, ns + allocs
	// each), median of the three EngineStream repetitions.
	if len(e.Benches) != 4 {
		t.Fatalf("recorded %d figures, want 4: %+v", len(e.Benches), e.Benches)
	}
	for _, b := range e.Benches {
		if strings.Contains(b.Name, "Ungated") {
			t.Fatalf("ungated benchmark recorded: %+v", b)
		}
		if strings.HasPrefix(b.Name, "BenchmarkEngineStream") && b.Unit == "ns/op" && b.Value != 100000 {
			t.Fatalf("EngineStream median = %v, want 100000", b.Value)
		}
	}

	// Second append extends, preserving the first entry.
	later := now.Add(time.Hour)
	err = runAppend(head, history, gated, "def456", "second commit", "", later, os.Stdout)
	if err != nil {
		t.Fatal(err)
	}
	raw, err = os.ReadFile(history)
	if err != nil {
		t.Fatal(err)
	}
	if h, err = perf.ParseHistory(raw); err != nil {
		t.Fatal(err)
	}
	entries = h.Entries[perf.HistorySeries]
	if len(entries) != 2 || entries[0].Commit.ID != "abc123" || entries[1].Commit.ID != "def456" {
		t.Fatalf("append did not extend history: %+v", entries)
	}
	if h.RepoURL != "https://example.com/owner/repo" {
		t.Fatalf("append without -repo-url dropped the recorded URL: %q", h.RepoURL)
	}
	if h.LastUpdate != later.UnixMilli() {
		t.Fatalf("lastUpdate not advanced: %d", h.LastUpdate)
	}
}

func TestAppendRejectsEmptyMatch(t *testing.T) {
	head := writeTemp(t, "head.txt", baseOut)
	history := filepath.Join(t.TempDir(), "data.js")
	err := runAppend(head, history, "NoSuchBenchmark", "abc", "", "", time.Now(), os.Stdout)
	if err == nil || !strings.Contains(err.Error(), "nothing to record") {
		t.Fatalf("want nothing-to-record error, got %v", err)
	}
	if _, statErr := os.Stat(history); !os.IsNotExist(statErr) {
		t.Fatal("failed append must not write the history file")
	}
}
