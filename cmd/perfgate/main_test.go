package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const baseOut = `goos: linux
BenchmarkEngineStream/dur=32-8  3  100000 ns/op  1000 allocs/op
BenchmarkEngineStream/dur=32-8  3  102000 ns/op  1000 allocs/op
BenchmarkEngineStream/dur=32-8  3   98000 ns/op  1000 allocs/op
BenchmarkSearchPrefixCached-8   2  500000 ns/op  2000 allocs/op
BenchmarkUngated-8              9  100 ns/op     10 allocs/op
PASS
`

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestGatePasses(t *testing.T) {
	head := strings.ReplaceAll(baseOut, "500000 ns/op", "600000 ns/op") // +20% < 30%
	err := run(writeTemp(t, "base.txt", baseOut), writeTemp(t, "head.txt", head),
		"EngineStream|SearchPrefixCached|SearchEndToEnd", 0.30, 0.20, os.Stdout)
	if err != nil {
		t.Fatalf("gate must pass within thresholds: %v", err)
	}
}

func TestGateFailsOnNsRegression(t *testing.T) {
	head := strings.ReplaceAll(baseOut, "500000 ns/op", "700000 ns/op") // +40% > 30%
	err := run(writeTemp(t, "base.txt", baseOut), writeTemp(t, "head.txt", head),
		"EngineStream|SearchPrefixCached|SearchEndToEnd", 0.30, 0.20, os.Stdout)
	if err == nil || !strings.Contains(err.Error(), "exceeded") {
		t.Fatalf("want gate failure, got %v", err)
	}
}

func TestGateFailsOnAllocRegression(t *testing.T) {
	head := strings.ReplaceAll(baseOut, "2000 allocs/op", "2500 allocs/op") // +25% > 20%
	err := run(writeTemp(t, "base.txt", baseOut), writeTemp(t, "head.txt", head),
		"EngineStream|SearchPrefixCached|SearchEndToEnd", 0.30, 0.20, os.Stdout)
	if err == nil || !strings.Contains(err.Error(), "exceeded") {
		t.Fatalf("want gate failure, got %v", err)
	}
}

func TestGateIgnoresUngatedBenchmarks(t *testing.T) {
	head := strings.ReplaceAll(baseOut, "100 ns/op", "9000 ns/op") // huge, but not gated
	err := run(writeTemp(t, "base.txt", baseOut), writeTemp(t, "head.txt", head),
		"EngineStream|SearchPrefixCached|SearchEndToEnd", 0.30, 0.20, os.Stdout)
	if err != nil {
		t.Fatalf("ungated benchmark must not fail the gate: %v", err)
	}
}

func TestGateRejectsEmptyIntersection(t *testing.T) {
	err := run(writeTemp(t, "base.txt", "PASS\n"), writeTemp(t, "head.txt", baseOut),
		"EngineStream", 0.30, 0.20, os.Stdout)
	if err == nil || !strings.Contains(err.Error(), "no gated benchmarks") {
		t.Fatalf("empty intersection must be an error, got %v", err)
	}
}
