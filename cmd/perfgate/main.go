// Command perfgate is the CI perf-regression gate: it compares two
// `go test -bench` outputs — the merge base's and the PR head's — and fails
// when any gated benchmark regressed past its threshold.
//
// Usage:
//
//	go test -bench 'EngineStream|SearchPrefixCached|SearchEndToEnd' \
//	    -benchmem -count 6 -run '^$' ./... > head.txt     # on the PR head
//	git checkout <merge-base> && go test ... > base.txt   # same command
//	perfgate -base base.txt -head head.txt
//
// Each gated benchmark is aggregated by the median of its -count
// repetitions (one noisy repetition cannot fail or save a run), then head
// vs base is checked per unit: ns/op may grow at most -max-ns (default 30%),
// allocs/op at most -max-allocs (default 20%). Benchmarks present in only
// one file are skipped — new benchmarks have no baseline, deleted ones
// nothing to protect — so the gate works across revisions with different
// benchmark sets. Exit status 1 means at least one gate was exceeded; the
// report lists every gated comparison either way.
package main

import (
	"flag"
	"fmt"
	"os"
	"regexp"

	"gcs/internal/perf"
)

func main() {
	base := flag.String("base", "", "bench output of the comparison baseline (required)")
	head := flag.String("head", "", "bench output of the candidate revision (required)")
	match := flag.String("match", "EngineStream|SearchPrefixCached|SearchEndToEnd",
		"regexp of benchmark names to gate (empty gates everything)")
	maxNs := flag.Float64("max-ns", 0.30, "tolerated relative ns/op regression")
	maxAllocs := flag.Float64("max-allocs", 0.20, "tolerated relative allocs/op regression")
	flag.Parse()
	if err := run(*base, *head, *match, *maxNs, *maxAllocs, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "perfgate:", err)
		os.Exit(1)
	}
}

func run(basePath, headPath, match string, maxNs, maxAllocs float64, out *os.File) error {
	if basePath == "" || headPath == "" {
		return fmt.Errorf("both -base and -head are required")
	}
	parse := func(path string) (map[string][]perf.BenchLine, error) {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return perf.ParseBench(f)
	}
	baseBench, err := parse(basePath)
	if err != nil {
		return err
	}
	headBench, err := parse(headPath)
	if err != nil {
		return err
	}
	gate := perf.Gate{MaxNsRegress: maxNs, MaxAllocsRegress: maxAllocs}
	if match != "" {
		re, err := regexp.Compile(match)
		if err != nil {
			return fmt.Errorf("bad -match regexp: %w", err)
		}
		gate.Match = re
	}
	deltas := gate.Compare(baseBench, headBench)
	fmt.Fprint(out, perf.Render(deltas))
	if fails := perf.Failures(deltas); len(fails) > 0 {
		return fmt.Errorf("%d perf gate(s) exceeded (ns/op > +%.0f%% or allocs/op > +%.0f%%)",
			len(fails), maxNs*100, maxAllocs*100)
	}
	if len(deltas) == 0 {
		return fmt.Errorf("no gated benchmarks present in both inputs — wrong files or bad -match?")
	}
	return nil
}
