// Command perfgate is the CI perf-regression gate: it compares two
// `go test -bench` outputs — the merge base's and the PR head's — and fails
// when any gated benchmark regressed past its threshold.
//
// Usage:
//
//	go test -bench 'EngineStream|EngineFork|EngineForkGradient|AdaptiveRun|SearchPrefixCached|SearchEndToEnd|SearchRateWindows' \
//	    -benchmem -count 6 -run '^$' ./... > head.txt     # on the PR head
//	git checkout <merge-base> && go test ... > base.txt   # same command
//	perfgate -base base.txt -head head.txt
//
// Each gated benchmark is aggregated by the median of its -count
// repetitions (one noisy repetition cannot fail or save a run), then head
// vs base is checked per unit: ns/op may grow at most -max-ns (default 30%),
// allocs/op at most -max-allocs (default 20%). Benchmarks present in only
// one file are skipped — new benchmarks have no baseline, deleted ones
// nothing to protect — so the gate works across revisions with different
// benchmark sets. Exit status 1 means at least one gate was exceeded; the
// report lists every gated comparison either way.
//
// With -append, perfgate instead records -head's measurements into a
// bench-history file (github-action-benchmark data.js format):
//
//	perfgate -append -head head.txt -history dev/bench/data.js \
//	    -commit "$GITHUB_SHA" -message "$(git log -1 --format=%s)" \
//	    -repo-url https://github.com/owner/repo
//
// CI runs this on every main-branch push, so the same medians the PR gate
// compares accumulate into a browsable trend curve under dev/bench/.
//
// With -trend, perfgate alerts on that curve: per benchmark figure, the
// median of the last -window history entries is compared against the median
// of the -window entries before them, and the run fails when any figure
// regressed by more than -max-trend — the slow drift a sequence of
// under-threshold PRs can smuggle past the pairwise gate:
//
//	perfgate -trend -history dev/bench/data.js -window 5 -max-trend 0.10
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"time"

	"gcs/internal/perf"
)

func main() {
	base := flag.String("base", "", "bench output of the comparison baseline (required unless -append)")
	head := flag.String("head", "", "bench output of the candidate revision (required)")
	match := flag.String("match", "EngineStream|EngineFork|EngineForkGradient|AdaptiveRun|SearchPrefixCached|SearchEndToEnd|SearchRateWindows",
		"regexp of benchmark names to gate (empty gates everything)")
	maxNs := flag.Float64("max-ns", 0.30, "tolerated relative ns/op regression")
	maxAllocs := flag.Float64("max-allocs", 0.20, "tolerated relative allocs/op regression")
	appendMode := flag.Bool("append", false, "append -head's medians to -history instead of gating")
	trendMode := flag.Bool("trend", false, "alert on -history's windowed trend instead of gating")
	history := flag.String("history", "dev/bench/data.js", "bench-history file (with -append / -trend)")
	commit := flag.String("commit", "", "commit id the -head measurements belong to (with -append)")
	message := flag.String("message", "", "commit subject line (with -append)")
	repoURL := flag.String("repo-url", "", "repository URL recorded in the history (with -append)")
	window := flag.Int("window", 5, "history entries per trend window (with -trend)")
	maxTrend := flag.Float64("max-trend", 0.10, "tolerated relative window-median regression (with -trend)")
	flag.Parse()
	var err error
	switch {
	case *appendMode && *trendMode:
		err = fmt.Errorf("-append and -trend are mutually exclusive")
	case *appendMode:
		err = runAppend(*head, *history, *match, *commit, *message, *repoURL, time.Now(), os.Stdout)
	case *trendMode:
		err = runTrend(*history, *window, *maxTrend, os.Stdout)
	default:
		err = run(*base, *head, *match, *maxNs, *maxAllocs, os.Stdout)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "perfgate:", err)
		os.Exit(1)
	}
}

func parseBenchFile(path string) (map[string][]perf.BenchLine, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return perf.ParseBench(f)
}

func run(basePath, headPath, match string, maxNs, maxAllocs float64, out *os.File) error {
	if basePath == "" || headPath == "" {
		return fmt.Errorf("both -base and -head are required")
	}
	baseBench, err := parseBenchFile(basePath)
	if err != nil {
		return err
	}
	headBench, err := parseBenchFile(headPath)
	if err != nil {
		return err
	}
	gate := perf.Gate{MaxNsRegress: maxNs, MaxAllocsRegress: maxAllocs}
	if match != "" {
		re, err := regexp.Compile(match)
		if err != nil {
			return fmt.Errorf("bad -match regexp: %w", err)
		}
		gate.Match = re
	}
	deltas := gate.Compare(baseBench, headBench)
	fmt.Fprint(out, perf.Render(deltas))
	if fails := perf.Failures(deltas); len(fails) > 0 {
		return fmt.Errorf("%d perf gate(s) exceeded (ns/op > +%.0f%% or allocs/op > +%.0f%%)",
			len(fails), maxNs*100, maxAllocs*100)
	}
	if len(deltas) == 0 {
		return fmt.Errorf("no gated benchmarks present in both inputs — wrong files or bad -match?")
	}
	return nil
}

// runTrend compares the last -window history entries against the window
// before them and fails on any figure's windowed regression. A history too
// short for two full windows passes: the alert only ever judges complete
// windows.
func runTrend(historyPath string, window int, maxTrend float64, out *os.File) error {
	raw, err := os.ReadFile(historyPath)
	if err != nil {
		return err
	}
	h, err := perf.ParseHistory(raw)
	if err != nil {
		return err
	}
	alerts := perf.Trend(h, perf.HistorySeries, window, maxTrend)
	fmt.Fprint(out, perf.RenderTrend(alerts, window))
	if fails := perf.TrendFailures(alerts); len(fails) > 0 {
		return fmt.Errorf("%d benchmark figure(s) trending past +%.0f%% over the last %d entries",
			len(fails), maxTrend*100, window)
	}
	return nil
}

// runAppend records headPath's medians as one history entry for commit.
func runAppend(headPath, historyPath, match, commit, message, repoURL string, now time.Time, out *os.File) error {
	if headPath == "" {
		return fmt.Errorf("-head is required")
	}
	if commit == "" {
		return fmt.Errorf("-commit is required with -append")
	}
	headBench, err := parseBenchFile(headPath)
	if err != nil {
		return err
	}
	var re *regexp.Regexp
	if match != "" {
		if re, err = regexp.Compile(match); err != nil {
			return fmt.Errorf("bad -match regexp: %w", err)
		}
	}
	raw, err := os.ReadFile(historyPath)
	if err != nil && !os.IsNotExist(err) {
		return err
	}
	h, err := perf.ParseHistory(raw)
	if err != nil {
		return err
	}
	if repoURL != "" {
		h.RepoURL = repoURL
	}
	hc := perf.HistoryCommit{
		ID:        commit,
		Message:   message,
		Timestamp: now.UTC().Format(time.RFC3339),
	}
	if h.RepoURL != "" {
		hc.URL = h.RepoURL + "/commit/" + commit
	}
	entry := perf.EntryFromBench(headBench, hc, now.UnixMilli(), re)
	if len(entry.Benches) == 0 {
		return fmt.Errorf("no benchmarks in %s match %q — nothing to record", headPath, match)
	}
	h.Append(perf.HistorySeries, entry)
	rendered, err := h.Render()
	if err != nil {
		return err
	}
	if dir := filepath.Dir(historyPath); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	if err := os.WriteFile(historyPath, rendered, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "recorded %d benchmark figure(s) for %s in %s (%d entries total)\n",
		len(entry.Benches), commit, historyPath, len(h.Entries[perf.HistorySeries]))
	return nil
}
