// Command gcssearch plans and runs distributed worst-case adversary search
// campaigns (internal/dist): a campaign spec — cells × move sets ×
// generations, a JSON file — is priced without executing a single engine
// step, served by any number of stateless workers, and driven by a
// coordinator whose merged result is byte-identical to single-process
// search.Search whatever the fleet does.
//
// Usage:
//
//	gcssearch plan -spec campaign.json [-bench BENCH_perf.json] [-workers 4]
//	gcssearch worker -listen :9131 [-threads 4]
//	gcssearch run -spec campaign.json [-workers http://h1:9131,http://h2:9131]
//	gcssearch run -spec campaign.json -json     # JSON-lines progress + result
//
// A campaign spec looks like:
//
//	{
//	  "protocol": "gradient",
//	  "cells": [{"topology": "two-node", "diameter": "16", "duration": "32"}],
//	  "rho": "1/2",
//	  "rounds": 3, "beam": 2, "delay_mutations": 8, "mutate_tail": "1/2"
//	}
//
// (Rationals are exact strings: "16", "1/2".) `plan` prices the campaign
// from the move-set arithmetic and a measured ns/step; `worker` serves shard
// evaluations over the versioned JSON/HTTP protocol; `run` executes against
// the fleet (or in-process when -workers is empty), streaming one progress
// line per merged generation. Worker failures degrade, never corrupt: shards
// are reassigned to survivors, then evaluated locally, with the reasons in
// the result's notes.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"gcs/internal/dist"
	"gcs/internal/obs"
	"gcs/internal/perf"
	"gcs/internal/rat"
	"gcs/internal/search"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "plan":
		err = cmdPlan(os.Args[2:])
	case "worker":
		err = cmdWorker(os.Args[2:])
	case "run":
		err = cmdRun(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
	default:
		usage()
		err = fmt.Errorf("unknown subcommand %q", os.Args[1])
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "gcssearch:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  gcssearch plan   -spec campaign.json [-bench BENCH_perf.json] [-workers N] [-json]
  gcssearch worker -listen :9131 [-threads N] [-debug]
  gcssearch run    -spec campaign.json [-workers url,url,...] [-shards N]
                   [-timeout 120s] [-json] [-serve :9130] [-debug]`)
}

// loadSpec reads and validates a campaign spec file.
func loadSpec(path string) (dist.CampaignSpec, error) {
	var spec dist.CampaignSpec
	if path == "" {
		return spec, fmt.Errorf("-spec is required")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return spec, err
	}
	if err := json.Unmarshal(data, &spec); err != nil {
		return spec, fmt.Errorf("parse %s: %w", path, err)
	}
	if err := spec.Validate(); err != nil {
		return spec, fmt.Errorf("%s: %w", path, err)
	}
	return spec, nil
}

// cmdPlan prices a campaign: candidate-count bounds and an ns/step-based
// wall-clock estimate, without executing any engine step.
func cmdPlan(args []string) error {
	fs := flag.NewFlagSet("gcssearch plan", flag.ExitOnError)
	specPath := fs.String("spec", "", "campaign spec file (required)")
	bench := fs.String("bench", "BENCH_perf.json", "perf snapshot supplying the ns/step cost model")
	workers := fs.Int("workers", 1, "planned evaluator count (for the parallel estimate)")
	jsonOut := fs.Bool("json", false, "emit the plan as JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	spec, err := loadSpec(*specPath)
	if err != nil {
		return err
	}
	plan, err := dist.PlanCampaign(spec, perf.LoadCostModel(*bench), *workers)
	if err != nil {
		return err
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(plan)
	}
	fmt.Print(plan.Render())
	return nil
}

// cmdWorker serves shard evaluations until interrupted, then drains: SIGINT
// or SIGTERM stops accepting connections, lets in-flight shards finish, and
// logs the final metrics snapshot before exiting. A second signal kills the
// process the usual way.
func cmdWorker(args []string) error {
	fs := flag.NewFlagSet("gcssearch worker", flag.ExitOnError)
	listen := fs.String("listen", ":9131", "address to serve the shard protocol on")
	threads := fs.Int("threads", 0, "local evaluation pool size (0: the spec's, or GOMAXPROCS)")
	debug := fs.Bool("debug", false, "mount /debug/pprof profiling endpoints")
	if err := fs.Parse(args); err != nil {
		return err
	}
	reg := obs.NewRegistry()
	w := &dist.Worker{Threads: *threads, Registry: reg, Debug: *debug}
	srv := &http.Server{Addr: *listen, Handler: w.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() {
		err := srv.ListenAndServe()
		if errors.Is(err, http.ErrServerClosed) {
			err = nil
		}
		serveErr <- err
	}()
	fmt.Fprintf(os.Stderr, "gcssearch worker: protocol v%d on %s (metrics on %s)\n",
		dist.ProtocolVersion, *listen, obs.PathMetrics)

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second signal is immediate
	fmt.Fprintln(os.Stderr, "gcssearch worker: signal received, draining in-flight shards")
	drainCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	err := srv.Shutdown(drainCtx)
	fmt.Fprintf(os.Stderr, "gcssearch worker: final metrics\n%s", reg.Snapshot().Prometheus())
	return err
}

// cellOut is the JSON shape `run -json` emits per cell: the Result with the
// script in wire form (the in-memory script is a struct-keyed map Go's JSON
// encoder refuses).
type cellOut struct {
	Cell           dist.CellSpec        `json:"cell"`
	Baseline       rat.Rat              `json:"baseline"`
	Best           rat.Rat              `json:"best"`
	BestCandidate  int                  `json:"best_candidate"`
	WitnessI       int                  `json:"witness_i"`
	WitnessJ       int                  `json:"witness_j"`
	WitnessAt      rat.Rat              `json:"witness_at"`
	Script         []search.ScriptEntry `json:"script"`
	Rates          []rat.Rat            `json:"rates"`
	Rounds         int                  `json:"rounds"`
	Evaluated      int                  `json:"evaluated"`
	EngineSteps    uint64               `json:"engine_steps"`
	CandidateSteps uint64               `json:"candidate_steps"`
	Notes          []string             `json:"notes,omitempty"`
}

// runSummary is the run's final result event: every merged cell plus the
// coordinator's metrics snapshot. The same shape is published as the last
// event on /v1/events and, with -json, appended to stdout after the per-cell
// lines — self-contained on purpose, so a streaming client needs no other
// line to reconcile counters against results.
type runSummary struct {
	Cells     []cellOut    `json:"cells"`
	ElapsedMS int64        `json:"elapsed_ms"`
	Metrics   obs.Snapshot `json:"metrics"`
}

// cmdRun executes a campaign against the fleet (or in-process) and streams
// per-generation progress — to stdout always, and to attached HTTP clients
// on /v1/events when -serve is set.
func cmdRun(args []string) error {
	fs := flag.NewFlagSet("gcssearch run", flag.ExitOnError)
	specPath := fs.String("spec", "", "campaign spec file (required)")
	workers := fs.String("workers", "", "comma-separated worker base URLs (empty: in-process)")
	shards := fs.Int("shards", 0, "shards per generation (0: one per worker)")
	timeout := fs.Duration("timeout", dist.DefaultShardTimeout, "per-shard round-trip timeout")
	jsonOut := fs.Bool("json", false, "stream progress and results as JSON lines")
	serve := fs.String("serve", "", "address to serve live /v1/metrics and /v1/events on during the run (empty: off)")
	debug := fs.Bool("debug", false, "with -serve: mount /debug/pprof on the serve mux")
	if err := fs.Parse(args); err != nil {
		return err
	}
	spec, err := loadSpec(*specPath)
	if err != nil {
		return err
	}
	var urls []string
	for _, u := range strings.Split(*workers, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	for _, u := range urls {
		if err := dist.Ping(nil, u); err != nil {
			// A dead worker at startup is the same non-event as one dying
			// mid-campaign; say so and let the coordinator route around it.
			fmt.Fprintf(os.Stderr, "gcssearch: worker %s unreachable (will degrade): %v\n", u, err)
		}
	}

	reg := obs.NewRegistry()
	var hub *obs.Hub
	var srv *http.Server
	if *serve != "" {
		hub = obs.NewHub(64)
		mux := http.NewServeMux()
		mux.Handle(obs.PathMetrics, obs.Handler(reg))
		mux.Handle(obs.PathEvents, obs.StreamHandler(hub))
		if *debug {
			obs.AttachPprof(mux)
		}
		srv = &http.Server{Addr: *serve, Handler: mux}
		go func() {
			if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintf(os.Stderr, "gcssearch: -serve %s: %v\n", *serve, err)
			}
		}()
		fmt.Fprintf(os.Stderr, "gcssearch run: serving %s and %s on %s\n", obs.PathMetrics, obs.PathEvents, *serve)
	}

	enc := json.NewEncoder(os.Stdout)
	coord := &dist.Coordinator{
		Spec:    spec,
		Workers: urls,
		Shards:  *shards,
		Timeout: *timeout,
		Metrics: dist.NewCoordinatorMetrics(reg),
		Progress: func(ev dist.ProgressEvent) {
			if hub != nil {
				hub.Publish(obs.Event{Scope: "run", Name: "generation", Data: ev})
			}
			if *jsonOut {
				_ = enc.Encode(ev)
			} else {
				fmt.Printf("cell %d (%s) round %d: %d candidates in %d shard(s) (%d remote, %d local), best %s after %d evaluations\n",
					ev.Cell, ev.CellName, ev.Round, ev.Candidates, ev.Shards, ev.Remote, ev.Local, ev.Best, ev.Evaluated)
			}
		},
	}
	start := time.Now()
	cells, err := coord.Run()
	if err != nil {
		return err
	}
	elapsed := time.Since(start).Round(time.Millisecond)

	outs := make([]cellOut, 0, len(cells))
	for _, cr := range cells {
		res := cr.Result
		outs = append(outs, cellOut{
			Cell:           cr.Cell,
			Baseline:       res.Baseline,
			Best:           res.Best,
			BestCandidate:  res.BestCandidate,
			WitnessI:       res.Witness.I,
			WitnessJ:       res.Witness.J,
			WitnessAt:      res.Witness.At,
			Script:         search.EncodeScript(res.Script),
			Rates:          res.Rates,
			Rounds:         res.Rounds,
			Evaluated:      res.Evaluated,
			EngineSteps:    res.EngineSteps,
			CandidateSteps: res.CandidateSteps,
			Notes:          res.Notes,
		})
	}
	summary := runSummary{Cells: outs, ElapsedMS: elapsed.Milliseconds(), Metrics: reg.Snapshot()}
	if hub != nil {
		hub.Publish(obs.Event{Scope: "run", Name: "result", Data: summary})
		hub.Close()
	}
	if srv != nil {
		// Shutdown waits for active stream handlers, so attached clients
		// receive the final result event before the listener goes away.
		drainCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(drainCtx)
	}

	if *jsonOut {
		for _, out := range outs {
			_ = enc.Encode(out)
		}
		return enc.Encode(summary)
	}
	for i, out := range outs {
		fmt.Printf("cell %d %s:\n", i, out.Cell.Label())
		fmt.Printf("  baseline %s, searched worst case %s (candidate %d)\n", out.Baseline, out.Best, out.BestCandidate)
		fmt.Printf("  witness pair (%d, %d) at t=%s\n", out.WitnessI, out.WitnessJ, out.WitnessAt)
		fmt.Printf("  %d rounds, %d candidates, %d engine steps (%d re-simulated)\n",
			out.Rounds, out.Evaluated, out.EngineSteps, out.CandidateSteps)
		fmt.Printf("  script: %d scripted delays\n", len(out.Script))
		for _, note := range out.Notes {
			fmt.Printf("  note: %s\n", note)
		}
	}
	fmt.Printf("campaign: %d cell(s) in %s\n", len(cells), elapsed)
	return nil
}
