// Command gcsbench regenerates every experiment table of the reproduction
// (E1–E11 plus the Figure 1 rendering, the E12 streaming scale sweep, the
// E13 worst-case adversary search, and the E14 adaptive-adversary
// comparison). See DESIGN.md §4 for the experiment index and EXPERIMENTS.md
// for the paper-vs-measured record.
//
// Usage:
//
//	gcsbench            # the standard suite (seconds)
//	gcsbench -long      # extended sweeps (minutes; larger diameters)
//	gcsbench -only E4   # one experiment (E1..E14)
//	gcsbench -stream    # E12 only: online skew metrics on large lines
//	gcsbench -json      # machine-readable tables (BENCH_*.json trend tracking)
//	gcsbench -perf      # timing snapshot of the gated perf workloads
//	                    # (BENCH_perf.json; machine-dependent, JSON only)
//	gcsbench -matrix    # the scenario matrix: generated topologies ×
//	                    # fault models × drift profiles vs certified bounds
//	gcsbench -matrix -smoke -json
//	                    # the committed CI subset (BENCH_matrix.json)
//
// Output is buffered and printed only when the requested experiments all
// succeed; on failure nothing but the error (on stderr, exit 1) is emitted,
// so a partial table can never be mistaken for a complete run. -json emits
// the same tables as a JSON array of {id, title, header, rows, notes}
// objects (non-tabular extras like the Figure 1 rendering are text-only).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"gcs/internal/algorithms"
	"gcs/internal/experiments"
	"gcs/internal/perf"
	"gcs/internal/rat"
	"gcs/internal/scenario"
	"gcs/internal/sim"
)

func main() {
	long := flag.Bool("long", false, "extended sweeps (larger diameters; minutes)")
	only := flag.String("only", "", "run a single experiment (E1..E13)")
	stream := flag.Bool("stream", false, "run only the E12 streaming scale sweep")
	jsonOut := flag.Bool("json", false, "emit experiment tables as machine-readable JSON")
	perfOut := flag.Bool("perf", false, "measure the gated perf workloads and emit BENCH_perf.json content (timing; machine-dependent)")
	matrix := flag.Bool("matrix", false, "run the scenario matrix (generated topologies × fault models × drift profiles vs certified bounds)")
	smoke := flag.Bool("smoke", false, "with -matrix: run only the committed CI smoke subset (BENCH_matrix.json)")
	flag.Parse()
	var out string
	var err error
	switch {
	case *perfOut:
		if *long || *only != "" || *stream || *jsonOut || *matrix || *smoke {
			err = fmt.Errorf("-perf measures a fixed workload set and combines with no other flag")
		} else {
			out, err = perf.SnapshotJSON()
		}
	case *matrix:
		if *long || *only != "" || *stream {
			err = fmt.Errorf("-matrix combines only with -smoke and -json")
		} else {
			out, err = runMatrix(*smoke, *jsonOut)
		}
	case *smoke:
		err = fmt.Errorf("-smoke selects the matrix smoke subset and requires -matrix")
	default:
		out, err = run(*long, strings.ToUpper(*only), *stream, *jsonOut)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "gcsbench:", err)
		os.Exit(1)
	}
	fmt.Print(out)
}

// runMatrix executes the scenario matrix (the full registry, or the smoke
// subset CI regenerates) and renders it: the raw reports as the committed
// JSON golden, or the experiment-table text form.
func runMatrix(smoke, jsonOut bool) (string, error) {
	var (
		scs []scenario.Scenario
		err error
	)
	if smoke {
		scs, err = scenario.Smoke()
	} else {
		scs, err = scenario.Matrix()
	}
	if err != nil {
		return "", err
	}
	reports, err := scenario.RunMatrix(scs, scenario.RunOptions{})
	if err != nil {
		return "", err
	}
	if jsonOut {
		b, err := scenario.MarshalReports(reports)
		if err != nil {
			return "", err
		}
		return string(b), nil
	}
	return experiments.MatrixTable(reports).Render() + "\n", nil
}

// result is one experiment's output: its tables plus optional non-tabular
// text (the Figure 1 rendering) that only the text mode prints.
type result struct {
	tables []*experiments.Table
	extra  string
}

// experiment binds an -only id to its runner: the accepted id set and the
// dispatch are the same data, so they cannot drift apart.
type experiment struct {
	id  string
	run func(protos []sim.Protocol, long bool) (result, error)
}

// suite lists every experiment in output order (E11 reports seed stability
// before the E10 topology sweep, as in the reproduction index).
var suite = []experiment{
	{"E1", runE1},
	{"E2", runE2},
	{"E3", runE3},
	{"E4", runE4},
	{"E5", runE5},
	{"E6", runE6},
	{"E7", runE7},
	{"E8", runE8},
	{"E9", runE9},
	{"E11", runE11},
	{"E10", runE10},
	{"E12", runE12},
	{"E13", runE13},
	{"E14", runE14},
}

func run(long bool, only string, stream, jsonOut bool) (string, error) {
	if stream {
		if only != "" && only != "E12" {
			return "", fmt.Errorf("-stream runs only E12, but -only %s was requested", only)
		}
		only = "E12"
	}
	if only != "" {
		found := false
		for _, e := range suite {
			if e.id == only {
				found = true
				break
			}
		}
		if !found {
			return "", fmt.Errorf("unknown experiment %q (want E1..E14)", only)
		}
	}
	protos := algorithms.All()
	var b strings.Builder
	var tables []*experiments.Table
	for _, e := range suite {
		if only != "" && e.id != only {
			continue
		}
		res, err := e.run(protos, long)
		if err != nil {
			return "", err
		}
		tables = append(tables, res.tables...)
		if !jsonOut {
			for _, t := range res.tables {
				b.WriteString(t.Render())
				b.WriteString("\n")
			}
			b.WriteString(res.extra)
		}
	}
	if jsonOut {
		data, err := json.MarshalIndent(tables, "", "  ")
		if err != nil {
			return "", fmt.Errorf("marshal tables: %w", err)
		}
		return string(data) + "\n", nil
	}
	return b.String(), nil
}

func runE1(protos []sim.Protocol, long bool) (result, error) {
	opt := experiments.DefaultE1(protos)
	if long {
		opt.Distances = append(opt.Distances, 64, 128)
	}
	_, table, err := experiments.E1Shift(opt)
	if err != nil {
		return result{}, err
	}
	return result{tables: []*experiments.Table{table}}, nil
}

func runE2(protos []sim.Protocol, long bool) (result, error) {
	opt := experiments.DefaultE2(protos)
	if long {
		opt.Lines = append(opt.Lines, 65, 129)
	}
	_, table, figure, err := experiments.E2AddSkew(opt)
	if err != nil {
		return result{}, err
	}
	return result{
		tables: []*experiments.Table{table},
		extra: "-- F1: Figure 1 (β rate schedule of the Add Skew lemma) --\n" +
			figure + "\n",
	}, nil
}

func runE3(protos []sim.Protocol, _ bool) (result, error) {
	opt := experiments.DefaultE3(protos)
	_, table, err := experiments.E3BoundedIncrease(opt)
	if err != nil {
		return result{}, err
	}
	return result{tables: []*experiments.Table{table}}, nil
}

func runE4(protos []sim.Protocol, long bool) (result, error) {
	opt := experiments.DefaultE4(protos)
	if long {
		opt.RoundsList = append(opt.RoundsList, 4)
	}
	_, table, err := experiments.E4MainTheorem(opt)
	if err != nil {
		return result{}, err
	}
	return result{tables: []*experiments.Table{table}}, nil
}

func runE5(protos []sim.Protocol, long bool) (result, error) {
	opt := experiments.DefaultE5(protos)
	if long {
		opt.Dcs = append(opt.Dcs, 128)
	}
	_, table, err := experiments.E5Counterexample(opt)
	if err != nil {
		return result{}, err
	}
	return result{tables: []*experiments.Table{table}}, nil
}

func runE6(protos []sim.Protocol, long bool) (result, error) {
	opt := experiments.DefaultE6(protos)
	if long {
		opt.N = 33
		opt.Distances = append(opt.Distances, 32)
	}
	_, table, err := experiments.E6Profiles(opt)
	if err != nil {
		return result{}, err
	}
	return result{tables: []*experiments.Table{table}}, nil
}

func runE7(protos []sim.Protocol, long bool) (result, error) {
	opt := experiments.DefaultE7(protos)
	if long {
		opt.Diameters = append(opt.Diameters, 64)
	}
	_, table, err := experiments.E7TDMA(opt)
	if err != nil {
		return result{}, err
	}
	return result{tables: []*experiments.Table{table}}, nil
}

func runE8(protos []sim.Protocol, _ bool) (result, error) {
	opt := experiments.DefaultE8(protos)
	_, table, err := experiments.E8Applications(opt)
	if err != nil {
		return result{}, err
	}
	return result{tables: []*experiments.Table{table}}, nil
}

func runE9(_ []sim.Protocol, _ bool) (result, error) {
	opt := experiments.DefaultE9()
	_, _, gt, ct, err := experiments.E9Ablations(opt)
	if err != nil {
		return result{}, err
	}
	return result{tables: []*experiments.Table{gt, ct}}, nil
}

func runE10(protos []sim.Protocol, _ bool) (result, error) {
	opt := experiments.DefaultE10(protos)
	_, table, err := experiments.E10Topologies(opt)
	if err != nil {
		return result{}, err
	}
	return result{tables: []*experiments.Table{table}}, nil
}

func runE11(protos []sim.Protocol, long bool) (result, error) {
	opt := experiments.DefaultE11(protos)
	if long {
		opt.Seeds = append(opt.Seeds, 55, 89, 144, 233)
	}
	_, table, err := experiments.E11Seeds(opt)
	if err != nil {
		return result{}, err
	}
	return result{tables: []*experiments.Table{table}}, nil
}

func runE12(_ []sim.Protocol, long bool) (result, error) {
	// Streaming scale: the max-based strawman vs the gradient algorithm.
	opt := experiments.DefaultE12([]sim.Protocol{
		algorithms.MaxGossip(rat.FromInt(1)),
		algorithms.Gradient(algorithms.DefaultGradientParams()),
	})
	if long {
		opt.Sizes = append(opt.Sizes, 257)
		opt.Duration = opt.Duration.Add(opt.Duration)
	}
	_, table, err := experiments.E12StreamScale(opt)
	if err != nil {
		return result{}, err
	}
	return result{tables: []*experiments.Table{table}}, nil
}

func runE13(protos []sim.Protocol, long bool) (result, error) {
	opt, err := experiments.DefaultE13(protos)
	if err != nil {
		return result{}, err
	}
	if long {
		opt, err = experiments.LongE13Cells(opt)
		if err != nil {
			return result{}, err
		}
	}
	_, table, err := experiments.E13SearchWorstCase(opt)
	if err != nil {
		return result{}, err
	}
	return result{tables: []*experiments.Table{table}}, nil
}

func runE14(protos []sim.Protocol, long bool) (result, error) {
	opt, err := experiments.DefaultE14(protos)
	if err != nil {
		return result{}, err
	}
	if long {
		opt, err = experiments.LongE14Cells(opt)
		if err != nil {
			return result{}, err
		}
	}
	_, table, err := experiments.E14AdaptiveAdversary(opt)
	if err != nil {
		return result{}, err
	}
	return result{tables: []*experiments.Table{table}}, nil
}
