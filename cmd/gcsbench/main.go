// Command gcsbench regenerates every experiment table of the reproduction
// (E1–E11 plus the Figure 1 rendering). See DESIGN.md §4 for the experiment
// index and EXPERIMENTS.md for the paper-vs-measured record.
//
// Usage:
//
//	gcsbench            # the standard suite (seconds)
//	gcsbench -long      # extended sweeps (minutes; larger diameters)
//	gcsbench -only E4   # one experiment (E1..E11)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"gcs/internal/algorithms"
	"gcs/internal/experiments"
)

func main() {
	long := flag.Bool("long", false, "extended sweeps (larger diameters; minutes)")
	only := flag.String("only", "", "run a single experiment (E1..E8)")
	flag.Parse()
	if err := run(*long, strings.ToUpper(*only)); err != nil {
		fmt.Fprintln(os.Stderr, "gcsbench:", err)
		os.Exit(1)
	}
}

func run(long bool, only string) error {
	protos := algorithms.All()
	want := func(id string) bool { return only == "" || only == id }

	if want("E1") {
		opt := experiments.DefaultE1(protos)
		if long {
			opt.Distances = append(opt.Distances, 64, 128)
		}
		_, table, err := experiments.E1Shift(opt)
		if err != nil {
			return err
		}
		fmt.Println(table.Render())
	}
	if want("E2") {
		opt := experiments.DefaultE2(protos)
		if long {
			opt.Lines = append(opt.Lines, 65, 129)
		}
		_, table, figure, err := experiments.E2AddSkew(opt)
		if err != nil {
			return err
		}
		fmt.Println(table.Render())
		fmt.Println("-- F1: Figure 1 (β rate schedule of the Add Skew lemma) --")
		fmt.Println(figure)
	}
	if want("E3") {
		opt := experiments.DefaultE3(protos)
		_, table, err := experiments.E3BoundedIncrease(opt)
		if err != nil {
			return err
		}
		fmt.Println(table.Render())
	}
	if want("E4") {
		opt := experiments.DefaultE4(protos)
		if long {
			opt.RoundsList = append(opt.RoundsList, 4)
		}
		_, table, err := experiments.E4MainTheorem(opt)
		if err != nil {
			return err
		}
		fmt.Println(table.Render())
	}
	if want("E5") {
		opt := experiments.DefaultE5(protos)
		if long {
			opt.Dcs = append(opt.Dcs, 128)
		}
		_, table, err := experiments.E5Counterexample(opt)
		if err != nil {
			return err
		}
		fmt.Println(table.Render())
	}
	if want("E6") {
		opt := experiments.DefaultE6(protos)
		if long {
			opt.N = 33
			opt.Distances = append(opt.Distances, 32)
		}
		_, table, err := experiments.E6Profiles(opt)
		if err != nil {
			return err
		}
		fmt.Println(table.Render())
	}
	if want("E7") {
		opt := experiments.DefaultE7(protos)
		if long {
			opt.Diameters = append(opt.Diameters, 64)
		}
		_, table, err := experiments.E7TDMA(opt)
		if err != nil {
			return err
		}
		fmt.Println(table.Render())
	}
	if want("E8") {
		opt := experiments.DefaultE8(protos)
		_, table, err := experiments.E8Applications(opt)
		if err != nil {
			return err
		}
		fmt.Println(table.Render())
	}
	if want("E9") {
		opt := experiments.DefaultE9()
		_, _, gt, ct, err := experiments.E9Ablations(opt)
		if err != nil {
			return err
		}
		fmt.Println(gt.Render())
		fmt.Println(ct.Render())
	}
	if want("E11") {
		opt := experiments.DefaultE11(protos)
		if long {
			opt.Seeds = append(opt.Seeds, 55, 89, 144, 233)
		}
		_, table, err := experiments.E11Seeds(opt)
		if err != nil {
			return err
		}
		fmt.Println(table.Render())
	}
	if want("E10") {
		opt := experiments.DefaultE10(protos)
		_, table, err := experiments.E10Topologies(opt)
		if err != nil {
			return err
		}
		fmt.Println(table.Render())
	}
	return nil
}
