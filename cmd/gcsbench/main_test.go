package main

import (
	"strings"
	"testing"
)

// TestSingleExperiments exercises the fast experiments end to end through
// the CLI path. (E4 and the full suite are covered by the root benchmarks.)
func TestSingleExperiments(t *testing.T) {
	for _, id := range []string{"E1", "E3", "E5"} {
		id := id
		t.Run(id, func(t *testing.T) {
			out, err := run(false, id, false)
			if err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(out, "== "+id+":") {
				t.Fatalf("output missing %s table:\n%s", id, out)
			}
		})
	}
}

// TestUnknownExperimentErrors: a typo'd -only filter must fail loudly
// instead of silently running nothing and exiting 0.
func TestUnknownExperimentErrors(t *testing.T) {
	if _, err := run(false, "E99", false); err == nil {
		t.Fatal("unknown experiment should error")
	}
}

// TestStreamMode runs the E12 streaming sweep (small sizes keep it fast).
func TestStreamMode(t *testing.T) {
	out, err := run(false, "", true)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "== E12:") {
		t.Fatalf("stream mode output missing E12 table:\n%s", out)
	}
	if strings.Contains(out, "== E1:") {
		t.Fatal("stream mode ran non-streaming experiments")
	}
}

// TestStreamOnlyConflict: -stream with a different -only is contradictory.
func TestStreamOnlyConflict(t *testing.T) {
	if _, err := run(false, "E3", true); err == nil {
		t.Fatal("conflicting -stream and -only should error")
	}
}
