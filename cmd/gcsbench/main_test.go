package main

import "testing"

// TestSingleExperiments exercises the fast experiments end to end through
// the CLI path. (E4 and the full suite are covered by the root benchmarks.)
func TestSingleExperiments(t *testing.T) {
	for _, id := range []string{"E1", "E3", "E5"} {
		id := id
		t.Run(id, func(t *testing.T) {
			if err := run(false, id); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestUnknownExperimentIsNoop(t *testing.T) {
	// An unmatched -only filter runs nothing and succeeds.
	if err := run(false, "E99"); err != nil {
		t.Fatal(err)
	}
}
