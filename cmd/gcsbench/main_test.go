package main

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestSingleExperiments exercises the fast experiments end to end through
// the CLI path. (E4 and the full suite are covered by the root benchmarks.)
func TestSingleExperiments(t *testing.T) {
	for _, id := range []string{"E1", "E3", "E5", "E13", "E14"} {
		id := id
		t.Run(id, func(t *testing.T) {
			out, err := run(false, id, false, false)
			if err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(out, "== "+id+":") {
				t.Fatalf("output missing %s table:\n%s", id, out)
			}
		})
	}
}

// TestUnknownExperimentErrors: a typo'd -only filter must fail loudly
// instead of silently running nothing and exiting 0.
func TestUnknownExperimentErrors(t *testing.T) {
	if _, err := run(false, "E99", false, false); err == nil {
		t.Fatal("unknown experiment should error")
	}
}

// TestStreamMode runs the E12 streaming sweep (small sizes keep it fast).
func TestStreamMode(t *testing.T) {
	out, err := run(false, "", true, false)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "== E12:") {
		t.Fatalf("stream mode output missing E12 table:\n%s", out)
	}
	if strings.Contains(out, "== E1:") {
		t.Fatal("stream mode ran non-streaming experiments")
	}
}

// TestStreamOnlyConflict: -stream with a different -only is contradictory.
func TestStreamOnlyConflict(t *testing.T) {
	if _, err := run(false, "E3", true, false); err == nil {
		t.Fatal("conflicting -stream and -only should error")
	}
}

// TestJSONMode: -json emits the same tables as a machine-readable array
// with the stable {id, title, header, rows} schema and no text rendering.
func TestJSONMode(t *testing.T) {
	out, err := run(false, "E13", false, true)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "== E13:") {
		t.Fatal("-json output contains text-rendered tables")
	}
	var tables []struct {
		ID     string     `json:"id"`
		Title  string     `json:"title"`
		Header []string   `json:"header"`
		Rows   [][]string `json:"rows"`
		Notes  []string   `json:"notes"`
	}
	if err := json.Unmarshal([]byte(out), &tables); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out)
	}
	if len(tables) != 1 || tables[0].ID != "E13" {
		t.Fatalf("expected exactly the E13 table, got %+v", tables)
	}
	if len(tables[0].Rows) == 0 || len(tables[0].Header) == 0 {
		t.Fatal("JSON table missing rows or header")
	}
	for _, row := range tables[0].Rows {
		if len(row) != len(tables[0].Header) {
			t.Fatalf("row width %d != header width %d", len(row), len(tables[0].Header))
		}
	}
}

// TestJSONModeMultiTable: an experiment emitting several tables (E9) keeps
// them as separate JSON objects.
func TestJSONModeMultiTable(t *testing.T) {
	out, err := run(false, "E9", false, true)
	if err != nil {
		t.Fatal(err)
	}
	var tables []struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal([]byte(out), &tables); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if len(tables) != 2 {
		t.Fatalf("E9 should emit 2 tables, got %d", len(tables))
	}
}

// assertAllCellsOK runs one experiment through the CLI path and demands
// that every table row ends in the "yes" ok column.
func assertAllCellsOK(t *testing.T, id string) {
	t.Helper()
	out, err := run(false, id, false, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "==") || strings.HasPrefix(line, "note:") ||
			strings.HasPrefix(line, "protocol") || strings.HasPrefix(line, "---") ||
			strings.TrimSpace(line) == "" {
			continue
		}
		if !strings.HasSuffix(strings.TrimRight(line, " "), "yes") {
			t.Fatalf("%s cell not ok: %q", id, line)
		}
	}
}

// TestE13AllCellsOK: the acceptance bar for the search sweep — every
// protocol × topology cell reports ok (searched ≥ baseline, and ≥ the
// certified Shift bound on the two-node cells).
func TestE13AllCellsOK(t *testing.T) { assertAllCellsOK(t, "E13") }

// TestE14AllCellsOK: the acceptance bar for the adaptive sweep — every
// protocol × topology cell reports ok (the online scheduler at least
// matches the Midpoint baseline, and the certified Shift bound on the
// two-node smoke cell).
func TestE14AllCellsOK(t *testing.T) { assertAllCellsOK(t, "E14") }

// TestJSONModeE14: the adaptive table's derived columns survive the -json
// path as valid JSON (its ratio formatting shares fmtFloat with E13, which
// maps ±Inf/NaN to stable strings instead of invalid bare tokens).
func TestJSONModeE14(t *testing.T) {
	out, err := run(false, "E14", false, true)
	if err != nil {
		t.Fatal(err)
	}
	if !json.Valid([]byte(out)) {
		t.Fatalf("-json E14 output is not valid JSON:\n%s", out)
	}
	var tables []struct {
		ID   string     `json:"id"`
		Rows [][]string `json:"rows"`
	}
	if err := json.Unmarshal([]byte(out), &tables); err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 || tables[0].ID != "E14" || len(tables[0].Rows) == 0 {
		t.Fatalf("expected a populated E14 table, got %+v", tables)
	}
}
