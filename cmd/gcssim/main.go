// Command gcssim runs one clock-synchronization simulation and prints skew
// metrics and (optionally) the empirical gradient profile.
//
// Usage:
//
//	gcssim -proto gradient -topology line -n 17 -dur 50 -profile
//	gcssim -proto max-gossip -topology grid -n 16 -adversary random -seed 3
//	gcssim -stream -proto gradient -topology line -n 257 -dur 200
//	gcssim -search -proto gradient -topology line -n 5 -dur 8 -objective global
//
// The default mode records the full execution and runs the post-hoc
// checkers. -stream drives the incremental engine with online trackers
// instead: no trace is retained, so networks and durations far beyond what
// the recorded path can hold in memory report the same skew metrics.
// (-chart needs the recorded clocks and is unavailable with -stream.)
//
// -search hunts a worst-case execution instead of running a single fixed
// scenario: a deterministic parallel beam search over per-message delay and
// per-node rate choices, seeded by (and falling back to) the -adversary
// selection, maximizing -objective. It reports the searched worst-case skew
// next to the seed's baseline; base schedules are rate-1 (the search flips
// rates itself, so -fastend does not apply).
//
// -adaptive replaces the fixed -adversary with the online §2 scheduler
// (internal/lowerbound AdaptiveScheduler): node 0 is the fast source, the
// node farthest from it the release front, and the adversary watches the
// run it is delaying — holding views maximally stale until the observed
// drift reaches -threshold (default: ρ·dur/3), then collapsing the
// source→front delay. Works in both recorded and -stream mode:
//
//	gcssim -adaptive -proto max-gossip -topology line -n 9 -dur 50
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"gcs/internal/algorithms"
	"gcs/internal/clock"
	"gcs/internal/core"
	"gcs/internal/engine"
	"gcs/internal/lowerbound"
	"gcs/internal/network"
	"gcs/internal/plot"
	"gcs/internal/rat"
	"gcs/internal/search"
	"gcs/internal/sim"
	"gcs/internal/trace"
)

func main() {
	var (
		protoName = flag.String("proto", "gradient", "null | max-gossip | max-flood | bounded-max | gradient | llw | root-sync | rbs")
		topology  = flag.String("topology", "line", "line | ring | grid | star | complete | rgg")
		n         = flag.Int("n", 9, "node count (grid uses the nearest square)")
		durStr    = flag.String("dur", "50", "duration (rational, e.g. 50 or 101/2)")
		rhoStr    = flag.String("rho", "1/2", "drift bound ρ")
		advName   = flag.String("adversary", "midpoint", "midpoint | zero | max | random")
		seed      = flag.Uint64("seed", 1, "seed for the random adversary")
		fastEnd   = flag.Bool("fastend", true, "run node 0 at 1+ρ/2 for drift pressure")
		profile   = flag.Bool("profile", false, "print the empirical gradient profile f̂(d)")
		chart     = flag.Bool("chart", false, "plot worst-pair and worst-adjacent skew over time (recorded mode only)")
		stream    = flag.Bool("stream", false, "stream the run through online trackers instead of recording a trace")
		doSearch  = flag.Bool("search", false, "hunt a worst-case execution (parallel adversary search) instead of one run")
		objective = flag.String("objective", "global", "search objective: global | local | margin (with -search)")
		rounds    = flag.Int("rounds", 0, "search mutation rounds (0 = default)")
		beam      = flag.Int("beam", 0, "search beam width (0 = default)")
		workers   = flag.Int("workers", 0, "search worker pool size (0 = GOMAXPROCS)")
		windows   = flag.Int("windows", 0, "windowed rate-mutation count (0 = disabled; with -search)")
		tailStr   = flag.String("tail", "0", "restrict delay mutations to the final fraction of the decision log, e.g. 1/2 (0 = whole log; with -search)")
		noPrefix  = flag.Bool("noprefix", false, "disable prefix-cached evaluation: re-simulate every candidate from scratch (with -search)")
		adaptive  = flag.Bool("adaptive", false, "schedule with the online §2 adversary (adaptive scheduler) instead of -adversary")
		threshStr = flag.String("threshold", "0", "adaptive release threshold: observed source-front hardware gap (0 = ρ·dur/3; with -adaptive)")
	)
	flag.Parse()
	var err error
	if *doSearch {
		err = searchFlagConflicts(*stream, *profile, *adaptive)
		if err == nil {
			err = runSearch(*protoName, *topology, *n, *durStr, *rhoStr, *advName, *seed,
				*objective, *rounds, *beam, *workers, *windows, *tailStr, *noPrefix, *chart)
		}
	} else {
		err = run(*protoName, *topology, *n, *durStr, *rhoStr, *advName, *seed, *fastEnd,
			*profile, *chart, *stream, *adaptive, *threshStr)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "gcssim:", err)
		os.Exit(1)
	}
}

func buildNetwork(topology string, n int, seed uint64) (*network.Network, error) {
	switch topology {
	case "line":
		return network.Line(n)
	case "ring":
		return network.Ring(n)
	case "grid":
		side := 1
		for (side+1)*(side+1) <= n {
			side++
		}
		return network.Grid2D(side, side)
	case "star":
		return network.Star(n, rat.FromInt(1))
	case "complete":
		return network.Complete(n, rat.FromInt(1))
	case "rgg":
		return network.RandomGeometric(n, 10, 4.5, int64(seed))
	default:
		return nil, fmt.Errorf("unknown topology %q", topology)
	}
}

func buildProtocol(protoName string) (sim.Protocol, error) {
	switch protoName {
	case "null":
		return algorithms.Null(), nil
	case "max-gossip":
		return algorithms.MaxGossip(rat.FromInt(1)), nil
	case "max-flood":
		return algorithms.MaxFlood(rat.FromInt(1)), nil
	case "bounded-max":
		return algorithms.BoundedMax(rat.FromInt(1), rat.FromInt(1)), nil
	case "gradient":
		return algorithms.Gradient(algorithms.DefaultGradientParams()), nil
	case "llw":
		return algorithms.LLW(algorithms.DefaultLLWParams()), nil
	case "root-sync":
		return algorithms.RootSync(rat.FromInt(1), 0), nil
	case "rbs":
		return algorithms.RBS(rat.FromInt(2), 0), nil
	default:
		return nil, fmt.Errorf("unknown protocol %q", protoName)
	}
}

func buildAdversary(advName string, seed uint64) (sim.Adversary, error) {
	switch advName {
	case "midpoint":
		return sim.Midpoint(), nil
	case "zero":
		return sim.FractionAdversary{Frac: rat.Rat{}}, nil
	case "max":
		return sim.FractionAdversary{Frac: rat.FromInt(1)}, nil
	case "random":
		return sim.HashAdversary{Seed: seed, Denom: 8}, nil
	default:
		return nil, fmt.Errorf("unknown adversary %q", advName)
	}
}

func run(protoName, topology string, n int, durStr, rhoStr, advName string, seed uint64, fastEnd, profile, chart, stream, adaptive bool, threshStr string) error {
	if stream && chart {
		return fmt.Errorf("-chart needs the recorded clocks; drop -chart or run without -stream")
	}
	if adaptive {
		var conflict error
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "adversary" {
				conflict = fmt.Errorf("-adaptive schedules with the online adversary; drop -adversary")
			}
		})
		if conflict != nil {
			return conflict
		}
	}
	dur, err := rat.Parse(durStr)
	if err != nil {
		return fmt.Errorf("duration: %w", err)
	}
	if dur.Sign() <= 0 {
		return fmt.Errorf("non-positive duration %s", dur)
	}
	rho, err := rat.Parse(rhoStr)
	if err != nil {
		return fmt.Errorf("rho: %w", err)
	}

	net, err := buildNetwork(topology, n, seed)
	if err != nil {
		return err
	}
	n = net.N()

	proto, err := buildProtocol(protoName)
	if err != nil {
		return err
	}
	adv, err := buildAdversary(advName, seed)
	if err != nil {
		return err
	}
	var sched *lowerbound.AdaptiveScheduler
	if adaptive {
		sched, err = buildAdaptive(net, dur, rho, threshStr)
		if err != nil {
			return err
		}
		adv, advName = sched, sched.String()
	}

	scheds := make([]*clock.Schedule, n)
	for i := range scheds {
		scheds[i] = clock.Constant(rat.FromInt(1))
	}
	if fastEnd {
		scheds[0] = clock.Constant(rat.FromInt(1).Add(rho.Div(rat.FromInt(2))))
	}

	if stream {
		err = runStream(net, scheds, adv, proto, dur, rho, protoName, advName, profile)
	} else {
		err = runRecorded(net, scheds, adv, proto, dur, rho, protoName, advName, profile, chart)
	}
	if err == nil && sched != nil {
		if at, ok := sched.Released(); ok {
			fmt.Printf("  adaptive release: source %d → front %d collapsed at t=%s\n", sched.Source(), sched.Front(), at)
		} else {
			fmt.Printf("  adaptive release: threshold never reached (views stayed maximally stale)\n")
		}
	}
	return err
}

// buildAdaptive constructs the online §2 scheduler for the run: node 0 as
// the fast source (pair it with -fastend, the default), the node farthest
// from it as the release front.
func buildAdaptive(net *network.Network, dur, rho rat.Rat, threshStr string) (*lowerbound.AdaptiveScheduler, error) {
	threshold, err := rat.Parse(threshStr)
	if err != nil {
		return nil, fmt.Errorf("threshold: %w", err)
	}
	if threshold.IsZero() {
		threshold = lowerbound.AutoThreshold(rho, dur)
	}
	front := 1 % net.N()
	for j := 1; j < net.N(); j++ {
		if net.Dist(0, j).Greater(net.Dist(0, front)) {
			front = j
		}
	}
	return lowerbound.NewAdaptiveScheduler(net, 0, front, threshold)
}

func header(protoName string, net *network.Network, dur, rho rat.Rat, advName, mode string) string {
	return fmt.Sprintf("%s on %s (%d nodes, diameter %s), duration %s, ρ=%s, adversary %s [%s]\n",
		protoName, net.Name(), net.N(), net.Diameter(), dur, rho, advName, mode)
}

// searchFlagConflicts rejects flag combinations -search cannot honor, loudly
// — the same convention -chart/-stream enforce — instead of silently
// ignoring them. (-fastend is additionally rejected only when set
// explicitly: its default is true.)
func searchFlagConflicts(stream, profile, adaptive bool) error {
	if stream {
		return fmt.Errorf("-search runs its own engine fleet; drop -stream")
	}
	if profile {
		return fmt.Errorf("-profile needs a single run's trackers; drop -profile or run without -search")
	}
	if adaptive {
		return fmt.Errorf("-adaptive is a single online run, -search a scripted fleet; drop one of them")
	}
	var err error
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "fastend" {
			err = fmt.Errorf("-search explores rate schedules itself (rate-1 base); drop -fastend")
		}
	})
	return err
}

// runSearch hunts a skew-maximizing execution: the -adversary selection
// seeds the search and serves as the tail for unscripted decisions.
func runSearch(protoName, topology string, n int, durStr, rhoStr, advName string, seed uint64,
	objectiveName string, rounds, beam, workers, windows int, tailStr string, noPrefix, chart bool) error {
	if chart {
		return fmt.Errorf("-chart needs a recorded run; drop -chart or run without -search")
	}
	dur, err := rat.Parse(durStr)
	if err != nil {
		return fmt.Errorf("duration: %w", err)
	}
	if dur.Sign() <= 0 {
		return fmt.Errorf("non-positive duration %s", dur)
	}
	rho, err := rat.Parse(rhoStr)
	if err != nil {
		return fmt.Errorf("rho: %w", err)
	}
	tail, err := rat.Parse(tailStr)
	if err != nil {
		return fmt.Errorf("tail: %w", err)
	}
	obj, err := search.ParseObjective(objectiveName)
	if err != nil {
		return err
	}
	net, err := buildNetwork(topology, n, seed)
	if err != nil {
		return err
	}
	proto, err := buildProtocol(protoName)
	if err != nil {
		return err
	}
	base, err := buildAdversary(advName, seed)
	if err != nil {
		return err
	}
	opt := search.Options{
		Net:                net,
		Protocol:           proto,
		Duration:           dur,
		Rho:                rho,
		Base:               base,
		Objective:          obj,
		Rounds:             rounds,
		Beam:               beam,
		Workers:            workers,
		RateWindows:        windows,
		MutateTail:         tail,
		DisablePrefixCache: noPrefix,
	}
	if obj == search.ObjectiveGradientMargin {
		// Compare against the linear envelope f(d) = 1 + d: a margin > 0
		// certifies the searched execution breaks it.
		opt.Gradient = core.LinearGradient(rat.FromInt(1), rat.FromInt(1))
	}
	res, err := search.Search(opt)
	if err != nil {
		return err
	}
	fmt.Print(header(protoName, net, dur, rho, advName, "searched worst case"))
	if obj == search.ObjectiveGradientMargin {
		fmt.Printf("  objective: margin over f(d) = 1 + d (positive = gradient violation)\n")
	} else {
		fmt.Printf("  objective: %s skew\n", res.Objective)
	}
	fmt.Printf("  baseline (seed adversary): %s\n", res.Baseline)
	fmt.Printf("  searched worst case:       %s", res.Best)
	if res.Best.Greater(res.Baseline) && res.Baseline.Sign() > 0 {
		fmt.Printf("   (%.2fx baseline)", res.Best.Float64()/res.Baseline.Float64())
	}
	fmt.Println()
	w := res.Witness
	fmt.Printf("  witness: pair (%d,%d) at t=%s, distance %s\n", w.I, w.J, w.At, w.Dist)
	fmt.Printf("  search: %d rounds, %d candidate executions evaluated\n", res.Rounds, res.Evaluated)
	fmt.Printf("  engine events: %d dispatched, %.1f/candidate (from-scratch resim: %.1f/candidate, %.0f%% saved by prefix caching)\n",
		res.EngineSteps, res.StepsPerCandidate(), res.ResimPerCandidate(), 100*res.SavedFraction())
	var flips []string
	for i, r := range res.Rates {
		if !r.IsZero() {
			flips = append(flips, fmt.Sprintf("node %d → %s", i, r))
		}
	}
	if len(flips) > 0 {
		fmt.Printf("  rate overrides: %s\n", strings.Join(flips, ", "))
	} else {
		fmt.Printf("  rate overrides: none\n")
	}
	fmt.Printf("  script: %d scripted delays (replayable via ScriptedAdversary)\n", len(res.Script))
	for _, note := range res.Notes {
		fmt.Printf("  note: %s\n", note)
	}
	return nil
}

// runStream drives the incremental engine with online trackers: O(nodes²)
// memory regardless of event count.
func runStream(net *network.Network, scheds []*clock.Schedule, adv sim.Adversary, proto sim.Protocol,
	dur, rho rat.Rat, protoName, advName string, profile bool) error {
	skew, err := core.NewSkewTracker(net, scheds)
	if err != nil {
		return err
	}
	valid := core.NewValidityTracker(scheds)
	var messages uint64
	eng, err := engine.New(net,
		engine.WithProtocol(proto),
		engine.WithAdversary(adv),
		engine.WithSchedules(scheds),
		engine.WithRho(rho),
		engine.WithObservers(skew, valid, engine.Funcs{
			Send: func(trace.MsgRecord) { messages++ },
		}),
	)
	if err != nil {
		return err
	}
	if err := eng.RunUntil(dur); err != nil {
		return err
	}
	if err := skew.Err(); err != nil {
		return err
	}

	fmt.Print(header(protoName, net, dur, rho, advName, "streamed"))
	fmt.Printf("  events: %d   messages: %d   (no trace retained)\n", eng.Steps(), messages)
	if err := valid.Err(); err != nil {
		fmt.Printf("  VALIDITY VIOLATED: %v\n", err)
	} else {
		fmt.Printf("  validity (Requirement 1): ok\n")
	}
	g := skew.Global()
	l := skew.Local()
	fmt.Printf("  global skew: %s (pair %d,%d at t=%s)\n", g.Skew, g.I, g.J, g.At)
	fmt.Printf("  local  skew: %s (pair %d,%d at t=%s)\n", l.Skew, l.I, l.J, l.At)
	if profile {
		printProfile(skew.Profile())
	}
	return nil
}

// runRecorded is the original record-then-check path.
func runRecorded(net *network.Network, scheds []*clock.Schedule, adv sim.Adversary, proto sim.Protocol,
	dur, rho rat.Rat, protoName, advName string, profile, chart bool) error {
	exec, err := sim.Run(sim.Config{
		Net:       net,
		Schedules: scheds,
		Adversary: adv,
		Protocol:  proto,
		Duration:  dur,
		Rho:       rho,
	})
	if err != nil {
		return err
	}

	fmt.Print(header(protoName, net, dur, rho, advName, "recorded"))
	fmt.Printf("  events: %d   messages: %d\n", len(exec.Actions), len(exec.Ledger))
	if err := core.CheckValidity(exec); err != nil {
		fmt.Printf("  VALIDITY VIOLATED: %v\n", err)
	} else {
		fmt.Printf("  validity (Requirement 1): ok\n")
	}
	g := core.GlobalSkew(exec)
	l := core.LocalSkew(exec)
	fmt.Printf("  global skew: %s (pair %d,%d at t=%s)\n", g.Skew, g.I, g.J, g.At)
	fmt.Printf("  local  skew: %s (pair %d,%d at t=%s)\n", l.Skew, l.I, l.J, l.At)
	if profile {
		printProfile(core.SkewProfile(exec))
	}
	if chart {
		fmt.Println()
		fmt.Print(plot.Chart(
			fmt.Sprintf("skew over time: worst pair (%d,%d) and worst adjacent pair (%d,%d)", g.I, g.J, l.I, l.J),
			12,
			plot.TimeSeries(exec, g.I, g.J, 64),
			plot.TimeSeries(exec, l.I, l.J, 64),
		))
	}
	return nil
}

func printProfile(points []core.ProfilePoint) {
	fmt.Println("  empirical gradient profile f̂(d):")
	var labels []string
	var values []float64
	for _, pt := range points {
		fmt.Printf("    d=%-6s pairs=%-4d max skew=%s\n", pt.Dist, pt.Pairs, pt.MaxSkew)
		labels = append(labels, "d="+pt.Dist.String())
		values = append(values, pt.MaxSkew.Float64())
	}
	fmt.Println()
	fmt.Print(plot.Bars("  f̂(d) profile", labels, values, 40))
}
