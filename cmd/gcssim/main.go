// Command gcssim runs one clock-synchronization simulation and prints skew
// metrics and (optionally) the empirical gradient profile.
//
// Usage:
//
//	gcssim -proto gradient -topology line -n 17 -dur 50 -profile
//	gcssim -proto max-gossip -topology grid -n 16 -adversary random -seed 3
package main

import (
	"flag"
	"fmt"
	"os"

	"gcs/internal/algorithms"
	"gcs/internal/clock"
	"gcs/internal/core"
	"gcs/internal/network"
	"gcs/internal/plot"
	"gcs/internal/rat"
	"gcs/internal/sim"
)

func main() {
	var (
		protoName = flag.String("proto", "gradient", "null | max-gossip | max-flood | bounded-max | gradient | llw | root-sync | rbs")
		topology  = flag.String("topology", "line", "line | ring | grid | star | complete | rgg")
		n         = flag.Int("n", 9, "node count (grid uses the nearest square)")
		durStr    = flag.String("dur", "50", "duration (rational, e.g. 50 or 101/2)")
		rhoStr    = flag.String("rho", "1/2", "drift bound ρ")
		advName   = flag.String("adversary", "midpoint", "midpoint | zero | max | random")
		seed      = flag.Uint64("seed", 1, "seed for the random adversary")
		fastEnd   = flag.Bool("fastend", true, "run node 0 at 1+ρ/2 for drift pressure")
		profile   = flag.Bool("profile", false, "print the empirical gradient profile f̂(d)")
		chart     = flag.Bool("chart", false, "plot worst-pair and worst-adjacent skew over time")
	)
	flag.Parse()
	if err := run(*protoName, *topology, *n, *durStr, *rhoStr, *advName, *seed, *fastEnd, *profile, *chart); err != nil {
		fmt.Fprintln(os.Stderr, "gcssim:", err)
		os.Exit(1)
	}
}

func run(protoName, topology string, n int, durStr, rhoStr, advName string, seed uint64, fastEnd, profile, chart bool) error {
	dur, err := rat.Parse(durStr)
	if err != nil {
		return fmt.Errorf("duration: %w", err)
	}
	rho, err := rat.Parse(rhoStr)
	if err != nil {
		return fmt.Errorf("rho: %w", err)
	}

	var net *network.Network
	switch topology {
	case "line":
		net, err = network.Line(n)
	case "ring":
		net, err = network.Ring(n)
	case "grid":
		side := 1
		for (side+1)*(side+1) <= n {
			side++
		}
		net, err = network.Grid2D(side, side)
	case "star":
		net, err = network.Star(n, rat.FromInt(1))
	case "complete":
		net, err = network.Complete(n, rat.FromInt(1))
	case "rgg":
		net, err = network.RandomGeometric(n, 10, 4.5, int64(seed))
	default:
		return fmt.Errorf("unknown topology %q", topology)
	}
	if err != nil {
		return err
	}
	n = net.N()

	var proto sim.Protocol
	switch protoName {
	case "null":
		proto = algorithms.Null()
	case "max-gossip":
		proto = algorithms.MaxGossip(rat.FromInt(1))
	case "max-flood":
		proto = algorithms.MaxFlood(rat.FromInt(1))
	case "bounded-max":
		proto = algorithms.BoundedMax(rat.FromInt(1), rat.FromInt(1))
	case "gradient":
		proto = algorithms.Gradient(algorithms.DefaultGradientParams())
	case "llw":
		proto = algorithms.LLW(algorithms.DefaultLLWParams())
	case "root-sync":
		proto = algorithms.RootSync(rat.FromInt(1), 0)
	case "rbs":
		proto = algorithms.RBS(rat.FromInt(2), 0)
	default:
		return fmt.Errorf("unknown protocol %q", protoName)
	}

	var adv sim.Adversary
	switch advName {
	case "midpoint":
		adv = sim.Midpoint()
	case "zero":
		adv = sim.FractionAdversary{Frac: rat.Rat{}}
	case "max":
		adv = sim.FractionAdversary{Frac: rat.FromInt(1)}
	case "random":
		adv = sim.HashAdversary{Seed: seed, Denom: 8}
	default:
		return fmt.Errorf("unknown adversary %q", advName)
	}

	scheds := make([]*clock.Schedule, n)
	for i := range scheds {
		scheds[i] = clock.Constant(rat.FromInt(1))
	}
	if fastEnd {
		scheds[0] = clock.Constant(rat.FromInt(1).Add(rho.Div(rat.FromInt(2))))
	}

	exec, err := sim.Run(sim.Config{
		Net:       net,
		Schedules: scheds,
		Adversary: adv,
		Protocol:  proto,
		Duration:  dur,
		Rho:       rho,
	})
	if err != nil {
		return err
	}

	fmt.Printf("%s on %s (%d nodes, diameter %s), duration %s, ρ=%s, adversary %s\n",
		protoName, net.Name(), n, net.Diameter(), dur, rho, advName)
	fmt.Printf("  events: %d   messages: %d\n", len(exec.Actions), len(exec.Ledger))
	if err := core.CheckValidity(exec); err != nil {
		fmt.Printf("  VALIDITY VIOLATED: %v\n", err)
	} else {
		fmt.Printf("  validity (Requirement 1): ok\n")
	}
	g := core.GlobalSkew(exec)
	l := core.LocalSkew(exec)
	fmt.Printf("  global skew: %s (pair %d,%d at t=%s)\n", g.Skew, g.I, g.J, g.At)
	fmt.Printf("  local  skew: %s (pair %d,%d at t=%s)\n", l.Skew, l.I, l.J, l.At)
	if profile {
		fmt.Println("  empirical gradient profile f̂(d):")
		var labels []string
		var values []float64
		for _, pt := range core.SkewProfile(exec) {
			fmt.Printf("    d=%-6s pairs=%-4d max skew=%s\n", pt.Dist, pt.Pairs, pt.MaxSkew)
			labels = append(labels, "d="+pt.Dist.String())
			values = append(values, pt.MaxSkew.Float64())
		}
		fmt.Println()
		fmt.Print(plot.Bars("  f̂(d) profile", labels, values, 40))
	}
	if chart {
		fmt.Println()
		fmt.Print(plot.Chart(
			fmt.Sprintf("skew over time: worst pair (%d,%d) and worst adjacent pair (%d,%d)", g.I, g.J, l.I, l.J),
			12,
			plot.TimeSeries(exec, g.I, g.J, 64),
			plot.TimeSeries(exec, l.I, l.J, 64),
		))
	}
	return nil
}
