package main

import "testing"

func TestRunHappyPaths(t *testing.T) {
	cases := []struct {
		name     string
		proto    string
		topology string
		n        int
		adv      string
	}{
		{"gradient line", "gradient", "line", 7, "midpoint"},
		{"llw? no: max-gossip ring", "max-gossip", "ring", 6, "random"},
		{"max-flood grid", "max-flood", "grid", 9, "zero"},
		{"rbs star", "rbs", "star", 6, "random"},
		{"null complete", "null", "complete", 4, "max"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := run(tc.proto, tc.topology, tc.n, "12", "1/2", tc.adv, 3, true, true, true); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestRunErrors(t *testing.T) {
	cases := []struct {
		name                               string
		proto, topology, dur, rho, advName string
		n                                  int
	}{
		{"bad proto", "nope", "line", "10", "1/2", "midpoint", 5},
		{"bad topology", "null", "torus", "10", "1/2", "midpoint", 5},
		{"bad duration", "null", "line", "x", "1/2", "midpoint", 5},
		{"bad rho", "null", "line", "10", "x", "midpoint", 5},
		{"bad adversary", "null", "line", "10", "1/2", "chaos", 5},
		{"rho too big", "null", "line", "10", "2", "midpoint", 5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := run(tc.proto, tc.topology, tc.n, tc.dur, tc.rho, tc.advName, 1, false, false, false); err == nil {
				t.Fatal("expected error")
			}
		})
	}
}
