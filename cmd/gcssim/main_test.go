package main

import "testing"

func TestRunHappyPaths(t *testing.T) {
	cases := []struct {
		name     string
		proto    string
		topology string
		n        int
		adv      string
		stream   bool
	}{
		{"gradient line", "gradient", "line", 7, "midpoint", false},
		{"llw? no: max-gossip ring", "max-gossip", "ring", 6, "random", false},
		{"max-flood grid", "max-flood", "grid", 9, "zero", false},
		{"rbs star", "rbs", "star", 6, "random", false},
		{"null complete", "null", "complete", 4, "max", false},
		{"streamed gradient line", "gradient", "line", 7, "midpoint", true},
		{"streamed max-gossip ring", "max-gossip", "ring", 6, "random", true},
		{"streamed null complete", "null", "complete", 4, "max", true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := run(tc.proto, tc.topology, tc.n, "12", "1/2", tc.adv, 3, true, true, !tc.stream, tc.stream, false, "0"); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestRunErrors(t *testing.T) {
	cases := []struct {
		name                               string
		proto, topology, dur, rho, advName string
		n                                  int
		stream, chart                      bool
	}{
		{"bad proto", "nope", "line", "10", "1/2", "midpoint", 5, false, false},
		{"bad topology", "null", "torus", "10", "1/2", "midpoint", 5, false, false},
		{"bad duration", "null", "line", "x", "1/2", "midpoint", 5, false, false},
		{"zero duration", "null", "line", "0", "1/2", "midpoint", 5, false, false},
		{"bad rho", "null", "line", "10", "x", "midpoint", 5, false, false},
		{"bad adversary", "null", "line", "10", "1/2", "chaos", 5, false, false},
		{"rho too big", "null", "line", "10", "2", "midpoint", 5, false, false},
		{"bad proto streamed", "nope", "line", "10", "1/2", "midpoint", 5, true, false},
		{"bad adversary streamed", "null", "line", "10", "1/2", "chaos", 5, true, false},
		{"rho too big streamed", "null", "line", "10", "2", "midpoint", 5, true, false},
		{"stream+chart conflict", "null", "line", "10", "1/2", "midpoint", 5, true, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := run(tc.proto, tc.topology, tc.n, tc.dur, tc.rho, tc.advName, 1, false, false, tc.chart, tc.stream, false, "0"); err == nil {
				t.Fatal("expected error")
			}
		})
	}
}

// TestStreamMatchesRecordedCLI: the two CLI paths must report identical
// metrics; this is asserted exactly in the library tests, here we just
// exercise both paths on the same configuration end to end.
func TestStreamMatchesRecordedCLI(t *testing.T) {
	for _, stream := range []bool{false, true} {
		if err := run("gradient", "line", 9, "20", "1/2", "random", 7, true, false, false, stream, false, "0"); err != nil {
			t.Fatalf("stream=%v: %v", stream, err)
		}
	}
}

// TestAdaptiveMode exercises the online-adversary path: recorded and
// streamed, auto and explicit thresholds, across topologies.
func TestAdaptiveMode(t *testing.T) {
	cases := []struct {
		name      string
		proto     string
		topology  string
		n         int
		threshold string
		stream    bool
	}{
		{"recorded max-gossip line", "max-gossip", "line", 5, "0", false},
		{"streamed gradient line", "gradient", "line", 5, "0", true},
		{"explicit threshold ring", "max-flood", "ring", 5, "1/2", false},
		{"two-node", "gradient", "line", 2, "0", false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := run(tc.proto, tc.topology, tc.n, "16", "1/2", "midpoint", 3,
				true, false, false, tc.stream, true, tc.threshold); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestAdaptiveModeErrors: a malformed threshold fails loudly, and -adaptive
// cannot be combined with -search.
func TestAdaptiveModeErrors(t *testing.T) {
	if err := run("gradient", "line", 5, "16", "1/2", "midpoint", 3,
		true, false, false, false, true, "x"); err == nil {
		t.Fatal("bad threshold accepted")
	}
	if err := searchFlagConflicts(false, false, true); err == nil {
		t.Fatal("-search plus -adaptive accepted")
	}
}

// TestSearchMode exercises the worst-case hunter through the CLI path for
// every objective and with a non-default seed adversary.
func TestSearchMode(t *testing.T) {
	cases := []struct {
		name      string
		proto     string
		topology  string
		n         int
		adv       string
		objective string
	}{
		{"global gradient line", "gradient", "line", 4, "midpoint", "global"},
		{"local max-gossip ring", "max-gossip", "ring", 4, "random", "local"},
		{"margin null line", "null", "line", 3, "zero", "margin"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := runSearch(tc.proto, tc.topology, tc.n, "6", "1/2", tc.adv, 3,
				tc.objective, 2, 1, 2, 2, "1/2", false, false); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestSearchModeErrors: search-mode flag validation fails loudly.
func TestSearchModeErrors(t *testing.T) {
	cases := []struct {
		name                                      string
		proto, topology, dur, rho, adv, objective string
		chart                                     bool
	}{
		{"bad objective", "null", "line", "6", "1/2", "midpoint", "chaos", false},
		{"bad duration", "null", "line", "x", "1/2", "midpoint", "global", false},
		{"zero duration", "null", "line", "0", "1/2", "midpoint", "global", false},
		{"bad rho", "null", "line", "6", "x", "midpoint", "global", false},
		{"bad proto", "nope", "line", "6", "1/2", "midpoint", "global", false},
		{"bad topology", "null", "torus", "6", "1/2", "midpoint", "global", false},
		{"bad adversary", "null", "line", "6", "1/2", "chaos", "global", false},
		{"chart conflict", "null", "line", "6", "1/2", "midpoint", "global", true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := runSearch(tc.proto, tc.topology, 4, tc.dur, tc.rho, tc.adv, 1,
				tc.objective, 1, 1, 1, 0, "0", false, tc.chart); err == nil {
				t.Fatal("expected error")
			}
		})
	}
}
