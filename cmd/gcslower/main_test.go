package main

import "testing"

func TestConstructions(t *testing.T) {
	cases := []struct {
		name, construction, proto string
		d                         int64
		n                         int
		branch                    int64
		rounds                    int
	}{
		{"shift", "shift", "max-gossip", 4, 0, 0, 0},
		{"addskew", "addskew", "gradient", 0, 7, 0, 0},
		{"increase", "increase", "max-flood", 0, 7, 0, 0},
		{"theorem", "theorem", "max-gossip", 0, 0, 3, 2},
		{"counter", "counter", "max-gossip", 16, 0, 0, 0},
		{"null shift", "shift", "null", 2, 0, 0, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := run(tc.construction, tc.proto, tc.d, tc.n, tc.branch, tc.rounds); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestConstructionErrors(t *testing.T) {
	if err := run("shift", "nope", 4, 0, 0, 0); err == nil {
		t.Error("unknown protocol should error")
	}
	if err := run("nope", "null", 4, 0, 0, 0); err == nil {
		t.Error("unknown construction should error")
	}
	if err := run("theorem", "null", 0, 0, 1, 1); err == nil {
		t.Error("branch 1 should error")
	}
}
