// Command gcslower runs an individual lower-bound construction from Fan &
// Lynch (PODC 2004) against a chosen protocol and prints the certificate.
//
// Usage:
//
//	gcslower -construction shift    -proto max-gossip -d 8
//	gcslower -construction addskew  -proto gradient   -n 17
//	gcslower -construction increase -proto max-flood  -n 9
//	gcslower -construction theorem  -proto max-gossip -branch 4 -rounds 3
//	gcslower -construction counter  -proto max-gossip -d 32
package main

import (
	"flag"
	"fmt"
	"os"

	"gcs/internal/algorithms"
	"gcs/internal/clock"
	"gcs/internal/lowerbound"
	"gcs/internal/network"
	"gcs/internal/rat"
	"gcs/internal/sim"
)

func main() {
	var (
		construction = flag.String("construction", "theorem", "shift | addskew | increase | theorem | counter")
		protoName    = flag.String("proto", "max-gossip", "null | max-gossip | max-flood | gradient")
		d            = flag.Int64("d", 8, "distance (shift) or Dc (counter)")
		n            = flag.Int("n", 17, "line size (addskew, increase)")
		branch       = flag.Int64("branch", 4, "main theorem branching factor")
		rounds       = flag.Int("rounds", 3, "main theorem rounds (network has branch^rounds+1 nodes)")
	)
	flag.Parse()
	if err := run(*construction, *protoName, *d, *n, *branch, *rounds); err != nil {
		fmt.Fprintln(os.Stderr, "gcslower:", err)
		os.Exit(1)
	}
}

func protocol(name string) (sim.Protocol, error) {
	switch name {
	case "null":
		return algorithms.Null(), nil
	case "max-gossip":
		return algorithms.MaxGossip(rat.FromInt(1)), nil
	case "max-flood":
		return algorithms.MaxFlood(rat.FromInt(1)), nil
	case "gradient":
		return algorithms.Gradient(algorithms.DefaultGradientParams()), nil
	default:
		return nil, fmt.Errorf("unknown protocol %q", name)
	}
}

func run(construction, protoName string, d int64, n int, branch int64, rounds int) error {
	proto, err := protocol(protoName)
	if err != nil {
		return err
	}
	p := lowerbound.DefaultParams()
	switch construction {
	case "shift":
		res, err := lowerbound.Shift(proto, rat.FromInt(d), p)
		if err != nil {
			return err
		}
		fmt.Printf("Ω(d) shift certificate for %s at d=%d\n", protoName, d)
		fmt.Printf("  skew(α) = %s, skew(β) = %s (indistinguishable executions)\n", res.SkewAlpha, res.SkewBeta)
		fmt.Printf("  separation = %s  (guaranteed ≥ %s)\n", res.Separation, p.GainFraction().Mul(rat.FromInt(d)))
		fmt.Printf("  ⇒ worst-case f(%d) ≥ %s\n", d, res.Implied)
		return nil
	case "addskew":
		res, err := addSkewLine(proto, n, p)
		if err != nil {
			return err
		}
		fmt.Printf("Add Skew certificate for %s on a %d-node line, pair (0,%d)\n", protoName, n, n-1)
		fmt.Printf("  skew(α) = %s → skew(β) = %s, gain %s ≥ guaranteed %s\n",
			res.SkewAlpha, res.SkewBeta, res.Gain, res.GuaranteedGain)
		fmt.Printf("  claims 6.2 (indistinguishability), 6.3 (rates), 6.4 (delays): verified\n\n")
		fmt.Print(lowerbound.RenderFigure1(res, rat.Rat{}, 60))
		return nil
	case "increase":
		net, err := network.Line(n)
		if err != nil {
			return err
		}
		scheds := make([]*clock.Schedule, n)
		for i := range scheds {
			scheds[i] = clock.Constant(rat.FromInt(1))
		}
		cfg := sim.Config{
			Net: net, Schedules: scheds, Adversary: sim.Midpoint(),
			Protocol: proto, Duration: rat.FromInt(24), Rho: p.Rho,
		}
		alpha, err := sim.Run(cfg)
		if err != nil {
			return err
		}
		res, err := lowerbound.BoundedIncrease(lowerbound.BoundedIncreaseInput{
			Cfg: cfg, Alpha: alpha, I: n / 2, Params: p,
		})
		if err != nil {
			return err
		}
		fmt.Printf("Bounded Increase certificate for %s, node %d of a %d-node line\n", protoName, n/2, n)
		fmt.Printf("  max unit-window increase: %s at t=%s (lemma: ≤ 16·f(1))\n", res.MaxIncrease, res.IncreaseAt)
		fmt.Printf("  speed-up window [T0−τ, T0] with T0=%s; densest 1/8-window gain %s\n", res.T0, res.WindowGain)
		fmt.Printf("  β forces skew %s against distance-1 node %d\n", res.BetaSkew, res.BetaPeer)
		fmt.Printf("  ⇒ worst-case f(1) ≥ %s\n", res.ImpliedF1)
		return nil
	case "theorem":
		res, err := lowerbound.MainTheorem(lowerbound.MainTheoremInput{
			Protocol: proto, Params: p, Branch: branch, Rounds: rounds,
		})
		if err != nil {
			return err
		}
		fmt.Print(lowerbound.RenderRounds(res))
		return nil
	case "counter":
		dc := rat.FromInt(d)
		switchAt := dc.Div(p.Rho.Div(rat.FromInt(2))).Add(dc)
		res, err := lowerbound.Counterexample(lowerbound.CounterexampleInput{
			Protocol: proto, Dc: dc, SwitchAt: switchAt,
			Duration: switchAt.Add(rat.FromInt(8)), Params: p,
		})
		if err != nil {
			return err
		}
		fmt.Printf("§2 counterexample for %s with d(x,y)=%d, d(y,z)=1\n", protoName, d)
		fmt.Printf("  pre-switch |L_y − L_z| ≤ %s\n", res.PreSwitchYZ.Val)
		fmt.Printf("  post-switch peak L_y − L_z = %s at t=%s (peak/D = %.3f)\n",
			res.PeakYZ.Val, res.PeakYZ.At, res.Ratio)
		return nil
	default:
		return fmt.Errorf("unknown construction %q", construction)
	}
}

func addSkewLine(proto sim.Protocol, n int, p lowerbound.Params) (*lowerbound.AddSkewResult, error) {
	net, err := network.Line(n)
	if err != nil {
		return nil, err
	}
	scheds := make([]*clock.Schedule, n)
	for i := range scheds {
		scheds[i] = clock.Constant(rat.FromInt(1))
	}
	cfg := sim.Config{
		Net: net, Schedules: scheds, Adversary: sim.Midpoint(),
		Protocol: proto, Duration: p.Tau().Mul(rat.FromInt(int64(n - 1))), Rho: p.Rho,
	}
	alpha, err := sim.Run(cfg)
	if err != nil {
		return nil, err
	}
	positions := make([]rat.Rat, n)
	for k := range positions {
		positions[k] = rat.FromInt(int64(k))
	}
	return lowerbound.AddSkew(lowerbound.AddSkewInput{
		Cfg: cfg, Alpha: alpha, Positions: positions,
		I: 0, J: n - 1, S: rat.Rat{}, Params: p,
	})
}
