package gcs_test

// Allocation pins for forking protocols with per-node estimate state. The
// engine-level fork budgets live in internal/engine/alloc_test.go, but that
// package cannot import the algorithms (import cycle through sim), so the
// gradient/LLW pins — the protocols whose per-node neighbor-estimate tables
// used to dominate fork cost — live here against the public facade.

import (
	"testing"

	"gcs"
)

// warmForkEngine builds and warms a line network so every node's estimate
// table is populated — the worst case the copy-on-write clone discipline has
// to keep cheap.
func warmForkEngine(t *testing.T, proto gcs.Protocol, n int) *gcs.Engine {
	t.Helper()
	net, err := gcs.Line(n)
	if err != nil {
		t.Fatal(err)
	}
	scheds, err := gcs.DiverseSchedules(n, gcs.R(1), gcs.Frac(5, 4), 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := gcs.NewEngine(net,
		gcs.WithProtocol(proto),
		gcs.WithAdversary(gcs.HashAdversary{Seed: 7, Denom: 8}),
		gcs.WithSchedules(scheds),
		gcs.WithRho(gcs.Frac(1, 2)),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.RunUntil(gcs.R(16)); err != nil {
		t.Fatal(err)
	}
	return eng
}

// TestForkAllocBudgetGradient pins Fork's allocation count on a wide warmed
// gradient line to O(1) in network width and degree: the estimate tables are
// shared copy-on-write and the clone set is slab-allocated, so the count
// must not scale with the 33 nodes. The map-backed estimate state this
// replaced cost ~3 allocations per node here; a regression to per-node deep
// copies blows this budget immediately.
func TestForkAllocBudgetGradient(t *testing.T) {
	for _, tc := range []struct {
		name  string
		proto gcs.Protocol
	}{
		{"gradient", gcs.Gradient(gcs.DefaultGradientParams())},
		{"llw", gcs.LLW(gcs.DefaultLLWParams())},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			eng := warmForkEngine(t, tc.proto, 33)
			allocs := testing.AllocsPerRun(50, func() {
				if _, err := eng.Fork(); err != nil {
					t.Fatal(err)
				}
			})
			// Measured: 9 allocs/op (queue slabs, runtime slab, decl slab,
			// pair counters, node slab, engine header). Budget leaves slack
			// for layout drift while staying an order of magnitude under the
			// per-node regime.
			const budget = 16
			if allocs > budget {
				t.Fatalf("Fork on a warmed 33-node %s line: %.1f allocs/op, budget %d",
					tc.name, allocs, budget)
			}
		})
	}
}

// TestForkAllocIndependentOfWidth: doubling the line width must not move the
// fork allocation count — the slab-and-COW discipline is what makes Fork
// O(queue), not O(nodes × degree).
func TestForkAllocIndependentOfWidth(t *testing.T) {
	measure := func(n int) float64 {
		eng := warmForkEngine(t, gcs.Gradient(gcs.DefaultGradientParams()), n)
		return testing.AllocsPerRun(50, func() {
			if _, err := eng.Fork(); err != nil {
				t.Fatal(err)
			}
		})
	}
	narrow, wide := measure(17), measure(33)
	if wide > narrow+2 {
		t.Fatalf("fork allocs grew with width: %.1f at n=17 vs %.1f at n=33", narrow, wide)
	}
}
