// Package gcs is a reproduction of Fan & Lynch, "Gradient Clock
// Synchronization" (PODC 2004): a deterministic discrete-event simulator for
// networks of drifting hardware clocks, a portfolio of clock synchronization
// algorithms, exact checkers for the paper's validity and gradient
// requirements, and executable versions of every lower-bound construction in
// the paper (the Ω(d) shift argument, the Add Skew lemma, the Bounded
// Increase lemma, the Ω(log D / log log D) main theorem, and the §2
// counterexample against max-based algorithms).
//
// # Model
//
// Following §3 of the paper, nodes are timed automata that observe only
// their hardware clocks and received messages. Hardware clock rates are
// adversary-chosen within [1−ρ, 1+ρ]; a message from i to j takes between 0
// and d(i,j) time ("distance" = delay uncertainty), with the adversary
// choosing the exact delay. Logical clocks must satisfy validity
// (L(t+r) − L(t) ≥ r/2) and, for an f-gradient algorithm,
// |L_i(t) − L_j(t)| ≤ f(d(i,j)) at all times.
//
// All simulated time is exact rational arithmetic: the lower-bound
// constructions rely on exact indistinguishability between executions, which
// floating point cannot provide.
//
// # Quickstart
//
// Simulation is incremental: build an Engine, attach observers, and drive
// it. Online trackers maintain the paper's skew metrics as the run streams
// by, in memory independent of event count — so networks and durations are
// limited by patience, not by trace size:
//
//	net, _ := gcs.Line(9)
//	scheds := gcs.ConstantSchedules(9, gcs.R(1))
//	eng, err := gcs.NewEngine(net,
//	    gcs.WithProtocol(gcs.Gradient(gcs.DefaultGradientParams())),
//	    gcs.WithAdversary(gcs.Midpoint()),
//	    gcs.WithSchedules(scheds),
//	    gcs.WithRho(gcs.Frac(1, 2)),
//	)
//	...
//	skew, _ := gcs.NewSkewTracker(net, scheds)
//	valid := gcs.NewValidityTracker(scheds)
//	eng.Observe(skew, valid)
//	if err := eng.RunUntil(gcs.R(50)); err != nil { ... }
//	fmt.Println(skew.Global().Skew, skew.Local().Skew, valid.Err())
//
// Step() drives one event at a time (early stopping, mid-run inspection),
// RunFor(r) extends the horizon incrementally, and any number of Observers
// can subscribe to the action/message/declaration stream.
//
// Engine state is forkable: Engine.Fork returns an independent engine at the
// exact same point of the run (deep-cloned event queue and per-node state,
// via the Protocol.CloneState contract), Engine.SetAdversary rebinds the
// fork's delay adversary, and the online trackers, Recorder, and DecisionLog
// all Clone so a branch's metrics continue seamlessly. Fork is what lets a
// shared execution prefix be simulated once and branched — the structure of
// the paper's constructions, and the engine of the prefix-cached worst-case
// search (see Search).
//
// Adversaries may be adaptive: one that implements Observer is fed the
// event stream of the run it is scheduling, and one that implements
// StatefulAdversary (CloneAdversary, mirroring Protocol.CloneState) is
// cloned by Fork so branches never share decision state. AdaptiveScheduler
// — the §2 counterexample scheduler in general online form — is the first
// such strategy; the E14 experiment compares it against the scripted beam
// search and the certified bounds.
//
// The batch API records everything and remains available — Run builds an
// Engine with a trace.Recorder attached and returns the completed
// *Execution for post-hoc analysis, which the lower-bound constructions
// need (they re-simulate and compare whole traces):
//
//	exec, err := gcs.Run(gcs.Config{
//	    Net:       net,
//	    Schedules: scheds,
//	    Adversary: gcs.Midpoint(),
//	    Protocol:  gcs.Gradient(gcs.DefaultGradientParams()),
//	    Duration:  gcs.R(50),
//	    Rho:       gcs.Frac(1, 2),
//	})
//	...
//	fmt.Println(gcs.GlobalSkew(exec).Skew)
//
// See the examples/ directory for runnable scenarios, cmd/gcssim -stream
// for the streaming driver, and cmd/gcsbench for the experiment harness
// that regenerates every figure-level result.
package gcs

import (
	"gcs/internal/algorithms"
	"gcs/internal/clock"
	"gcs/internal/core"
	"gcs/internal/engine"
	"gcs/internal/lowerbound"
	"gcs/internal/network"
	"gcs/internal/plot"
	"gcs/internal/rat"
	"gcs/internal/scenario"
	"gcs/internal/search"
	"gcs/internal/sim"
	"gcs/internal/trace"
	"gcs/internal/workload"
)

// Exact rational time.
type (
	// Rat is an exact rational number; all simulated time uses it.
	Rat = rat.Rat
)

// R returns the rational n/1.
func R(n int64) Rat { return rat.FromInt(n) }

// Frac returns the rational n/d (panics on d == 0; use for constants).
func Frac(n, d int64) Rat { return rat.MustFrac(n, d) }

// ParseRat parses "n", "n/d", or decimal notation.
func ParseRat(s string) (Rat, error) { return rat.Parse(s) }

// Topologies.
type (
	// Network is a set of nodes with pairwise delay-uncertainty distances
	// and a gossip adjacency.
	Network = network.Network
)

// Topology constructors (see internal/network for details).
var (
	Line            = network.Line
	TwoNode         = network.TwoNode
	Complete        = network.Complete
	Ring            = network.Ring
	Grid2D          = network.Grid2D
	Star            = network.Star
	RandomGeometric = network.RandomGeometric
	NewNetwork      = network.New
	// Seeded generator families for the scenario matrix: exact hop-count
	// distances, deterministic for a fixed seed, diameter scaling
	// independently of n.
	Torus               = network.Torus
	DRegular            = network.DRegular
	BarabasiAlbert      = network.BarabasiAlbert
	BoundedDegreeRandom = network.BoundedDegreeRandom
)

// Hardware clocks.
type (
	// Schedule is an immutable hardware-clock rate schedule.
	Schedule = clock.Schedule
	// RateSeg is one piecewise-constant rate segment.
	RateSeg = clock.RateSeg
)

// Clock constructors.
var (
	ConstantClock    = clock.Constant
	ClockFromRates   = clock.FromRates
	DiverseSchedules = clock.Diverse
)

// ConstantSchedules returns n identical constant-rate schedules.
func ConstantSchedules(n int, rate Rat) []*Schedule {
	out := make([]*Schedule, n)
	for i := range out {
		out[i] = clock.Constant(rate)
	}
	return out
}

// Simulation.
type (
	// Config fully describes a run.
	Config = sim.Config
	// Protocol instantiates per-node automata.
	Protocol = sim.Protocol
	// Node is one timed automaton.
	Node = sim.Node
	// Runtime is a node's interface to the simulated world.
	Runtime = sim.Runtime
	// Message is a payload with a canonical string form.
	Message = sim.Message
	// Adversary chooses message delays.
	Adversary = sim.Adversary
	// CheckedAdversary is an Adversary whose decision can fail with a
	// precise error (e.g. an exhausted script with no fallback).
	CheckedAdversary = sim.CheckedAdversary
	// StatefulAdversary is an Adversary carrying mutable decision state
	// (adaptive strategies): CloneAdversary mirrors Protocol.CloneState, so
	// Engine.Fork can branch a run without sharing adversary state. An
	// adversary that also implements Observer is attached to the event
	// stream of every engine it is bound to, automatically.
	StatefulAdversary = engine.StatefulAdversary
	// FractionAdversary delays every message by a fixed fraction of the
	// bound.
	FractionAdversary = sim.FractionAdversary
	// ScriptedAdversary replays exact per-message delays.
	ScriptedAdversary = sim.ScriptedAdversary
	// FuncAdversary adapts a function.
	FuncAdversary = sim.FuncAdversary
	// HashAdversary draws reproducible pseudo-random delays.
	HashAdversary = sim.HashAdversary
	// AdversaryWrapper is a decorator adversary exposing the adversary it
	// wraps (engine feedback and fault hooks walk the chain via Unwrap).
	AdversaryWrapper = engine.AdversaryWrapper
	// DropAdversary drops faulted messages before any delay is assigned.
	DropAdversary = engine.DropAdversary
	// FaultAdversary layers a deterministic FaultModel (crash windows,
	// hash loss, transient partitions, edge churn) over an inner delay
	// adversary; fork- and replay-safe by construction.
	FaultAdversary = scenario.FaultAdversary
	// FaultModel is the deterministic fault configuration itself.
	FaultModel = scenario.FaultModel
	// FaultWindow is a half-open real-time interval [From, To) used by
	// crash and partition faults.
	FaultWindow = scenario.Window
	// NetPartition is a transient cut: messages crossing Side during the
	// window are dropped.
	NetPartition = scenario.Partition
	// Scenario is one registered matrix cell; ScenarioReport its gated
	// result; ScenarioRunOptions the per-cell search budget.
	Scenario           = scenario.Scenario
	ScenarioReport     = scenario.Report
	ScenarioRunOptions = scenario.RunOptions
	// DriftProfile selects a scenario's base rate landscape.
	DriftProfile = scenario.DriftProfile
	// Execution is a completed, recorded run.
	Execution = trace.Execution
	// Action is one observable step at one node.
	Action = trace.Action
	// MsgKey identifies a message by (from, to, per-pair sequence).
	MsgKey = trace.MsgKey
	// MsgRecord is a message-ledger entry.
	MsgRecord = trace.MsgRecord
	// ActionKind classifies node actions in a trace.
	ActionKind = trace.Kind
)

// Action kinds.
const (
	KindInit  = trace.KindInit
	KindRecv  = trace.KindRecv
	KindTimer = trace.KindTimer
	KindSend  = trace.KindSend
)

// Streaming simulation engine (see internal/engine).
type (
	// Engine is the incremental simulation core: construct with NewEngine,
	// drive with Step / RunUntil / RunFor, observe with Observe.
	Engine = engine.Engine
	// EngineOption configures NewEngine.
	EngineOption = engine.Option
	// Observer receives the action/message event stream of a running Engine.
	Observer = engine.Observer
	// ClockObserver additionally receives logical-clock declarations.
	ClockObserver = engine.ClockObserver
	// HorizonObserver is notified when RunUntil/RunFor complete a horizon.
	HorizonObserver = engine.HorizonObserver
	// ObserverFuncs adapts plain functions to the observer interfaces.
	ObserverFuncs = engine.Funcs
	// Decl is one logical-clock declaration, streamed to ClockObservers.
	Decl = trace.Decl
	// Recorder is the full-trace observer backing the batch Run path.
	Recorder = trace.Recorder
	// Lane selects the engine's arithmetic lane (LaneAuto detects the
	// fixed-point tick grid; LaneRat forces exact rationals everywhere).
	// Results are byte-identical either way — the lane is an execution
	// strategy, never a semantics knob.
	Lane = engine.Lane
)

// Arithmetic lanes.
const (
	LaneAuto = engine.LaneAuto
	LaneRat  = engine.LaneRat
)

// Engine constructors and options.
var (
	NewEngine     = engine.New
	WithProtocol  = engine.WithProtocol
	WithAdversary = engine.WithAdversary
	WithSchedules = engine.WithSchedules
	WithRho       = engine.WithRho
	WithObservers = engine.WithObservers
	WithLane      = engine.WithLane
	NewRecorder   = trace.NewRecorder

	// SetDefaultLane / DefaultLane flip the process-wide lane for engines
	// built with LaneAuto — the differential-test hook for forcing whole
	// subsystems (search, campaigns) onto the rat lane.
	SetDefaultLane = engine.SetDefaultLane
	DefaultLane    = engine.DefaultLane
)

// Run executes a configuration and returns its trace: a compatibility
// wrapper that builds an Engine, attaches a Recorder, and compiles the
// Execution.
func Run(cfg Config) (*Execution, error) { return sim.Run(cfg) }

// Midpoint returns the delay = d/2 adversary used by the constructions.
func Midpoint() FractionAdversary { return sim.Midpoint() }

// CloneAdversaryState returns an independent copy of an adversary's mutable
// decision state (the adversary itself when stateless); ok is false for an
// adversary that observes the run without being cloneable.
var CloneAdversaryState = engine.CloneAdversaryState

// Scenario matrix (internal/scenario): the registered topology × fault ×
// drift grid, its runners, and the certified envelope it gates against.
var (
	ScenarioSmoke     = scenario.Smoke
	ScenarioMatrix    = scenario.Matrix
	RunScenario       = scenario.RunScenario
	RunScenarioMatrix = scenario.RunMatrix
	CertifiedBound    = scenario.CertifiedBound
)

// Drift profiles for scenario cells.
const (
	DriftHomogeneous   = scenario.DriftHomogeneous
	DriftHeterogeneous = scenario.DriftHeterogeneous
	DriftBursty        = scenario.DriftBursty
)

// Indistinguishability and side-condition checkers (§3 of the paper).
var (
	CheckIndistinguishable = trace.CheckIndistinguishable
	CheckDelayBounds       = trace.CheckDelayBounds
	CheckRateBounds        = trace.CheckRateBounds
	PrefixEqual            = trace.PrefixEqual
)

// Algorithms.
type (
	// GradientParams configures the rate-based gradient protocol.
	GradientParams = algorithms.GradientParams
	// LLWParams configures the blocking gradient protocol.
	LLWParams = algorithms.LLWParams
	// ValueMsg carries a logical clock value.
	ValueMsg = algorithms.ValueMsg
	// PulseMsg is an RBS beacon pulse.
	PulseMsg = algorithms.PulseMsg
)

// Algorithm constructors.
var (
	Null                  = algorithms.Null
	MaxGossip             = algorithms.MaxGossip
	MaxFlood              = algorithms.MaxFlood
	BoundedMax            = algorithms.BoundedMax
	Gradient              = algorithms.Gradient
	LLW                   = algorithms.LLW
	DefaultLLWParams      = algorithms.DefaultLLWParams
	RootSync              = algorithms.RootSync
	RBS                   = algorithms.RBS
	DefaultGradientParams = algorithms.DefaultGradientParams
	AllProtocols          = algorithms.All
)

// GCS problem checkers (§4 of the paper).
type (
	// GradientFunc is a candidate bound f: distance → allowed skew.
	GradientFunc = core.GradientFunc
	// PairSkew is the observed worst skew for one pair.
	PairSkew = core.PairSkew
	// GradientReport summarizes an f-gradient check.
	GradientReport = core.GradientReport
	// ProfilePoint is one point of the empirical gradient profile f̂(d).
	ProfilePoint = core.ProfilePoint
)

// Checkers and metrics.
var (
	CheckValidity      = core.CheckValidity
	CheckGradient      = core.CheckGradient
	LinearGradient     = core.LinearGradient
	GlobalSkew         = core.GlobalSkew
	LocalSkew          = core.LocalSkew
	SkewProfile        = core.SkewProfile
	MaxIncreasePerUnit = core.MaxIncreasePerUnit
)

// Online metrics: engine observers maintaining the same quantities as the
// post-hoc checkers, in O(nodes²) state with no trace retention.
type (
	// SkewTracker maintains running global/local/per-pair skew.
	SkewTracker = core.SkewTracker
	// GradientTracker adds online f-gradient checking and first-violation
	// detection to a SkewTracker.
	GradientTracker = core.GradientTracker
	// ValidityTracker checks Requirement 1 online.
	ValidityTracker = core.ValidityTracker
)

// Online metric constructors.
var (
	NewSkewTracker     = core.NewSkewTracker
	NewGradientTracker = core.NewGradientTracker
	NewValidityTracker = core.NewValidityTracker
)

// Worst-case adversary search (internal/search): hunt skew-maximizing
// executions by replay-based branching over delay and drift choices,
// evaluated prefix-cached (shared script prefixes run once, Engine.Fork
// branches the suffixes) on a deterministic parallel worker pool.
type (
	// SearchOptions configures a worst-case search.
	SearchOptions = search.Options
	// SearchResult is the best adversary found, as a replayable script plus
	// rate overrides with the certifying objective values.
	SearchResult = search.Result
	// SearchObjective selects the maximized quantity.
	SearchObjective = search.Objective
	// SearchSeed is an initial candidate injected into the search beam —
	// typically a certified construction exported via an AdversarySeed.
	SearchSeed = search.Seed
	// Decision is one captured per-message delay choice.
	Decision = search.Decision
	// DecisionLog is an engine observer converting a run's delay decisions
	// into a replayable script.
	DecisionLog = search.DecisionLog
)

// Search objectives.
const (
	ObjectiveGlobalSkew     = search.ObjectiveGlobalSkew
	ObjectiveLocalSkew      = search.ObjectiveLocalSkew
	ObjectiveGradientMargin = search.ObjectiveGradientMargin
)

// Search drivers.
var (
	Search         = search.Search
	NewDecisionLog = search.NewDecisionLog
	ParseObjective = search.ParseObjective
)

// Lower-bound constructions (§5–§8 of the paper).
type (
	// LowerBoundParams carries ρ and the derived constants τ, γ.
	LowerBoundParams = lowerbound.Params
	// ShiftResult certifies the Ω(d) two-node bound.
	ShiftResult = lowerbound.ShiftResult
	// AddSkewInput / AddSkewResult are Lemma 6.1.
	AddSkewInput  = lowerbound.AddSkewInput
	AddSkewResult = lowerbound.AddSkewResult
	// BoundedIncreaseInput / BoundedIncreaseResult are Lemma 7.1.
	BoundedIncreaseInput  = lowerbound.BoundedIncreaseInput
	BoundedIncreaseResult = lowerbound.BoundedIncreaseResult
	// MainTheoremInput / MainTheoremResult are Theorem 8.1.
	MainTheoremInput  = lowerbound.MainTheoremInput
	MainTheoremResult = lowerbound.MainTheoremResult
	// TheoremRound is one round's certificate.
	TheoremRound = lowerbound.Round
	// CounterexampleInput / CounterexampleResult are the §2 scenario.
	CounterexampleInput  = lowerbound.CounterexampleInput
	CounterexampleResult = lowerbound.CounterexampleResult
	// AdaptiveScheduler is the §2 counterexample scheduler in general online
	// form: a stateful adversary that watches the run it is delaying and
	// releases the source→front edge when the observed drift reaches its
	// threshold. The first adaptive strategy of the portfolio.
	AdaptiveScheduler = lowerbound.AdaptiveScheduler
	// AdaptiveCounterexampleInput / AdaptiveCounterexampleResult are the §2
	// scenario driven by the online scheduler instead of a scripted switch.
	AdaptiveCounterexampleInput  = lowerbound.AdaptiveCounterexampleInput
	AdaptiveCounterexampleResult = lowerbound.AdaptiveCounterexampleResult
	// AdversarySeed is a construction's adversary (delay script + surgery
	// schedules) packaged as a search seed; ShiftResult, AddSkewResult, and
	// MainTheoremResult all export one via their Seed methods.
	AdversarySeed = lowerbound.AdversarySeed
)

// Construction drivers.
var (
	DefaultLowerBoundParams = lowerbound.DefaultParams
	Shift                   = lowerbound.Shift
	AddSkew                 = lowerbound.AddSkew
	BoundedIncrease         = lowerbound.BoundedIncrease
	MainTheorem             = lowerbound.MainTheorem
	Counterexample          = lowerbound.Counterexample
	AdaptiveCounterexample  = lowerbound.AdaptiveCounterexample
	NewAdaptiveScheduler    = lowerbound.NewAdaptiveScheduler
	AutoThreshold           = lowerbound.AutoThreshold
	RenderFigure1           = lowerbound.RenderFigure1
	RenderRounds            = lowerbound.RenderRounds
)

// Application workloads (§1 of the paper).
type (
	// TrackingConfig / TrackingReport: target-tracking velocity estimation.
	TrackingConfig = workload.TrackingConfig
	TrackingReport = workload.TrackingReport
	// TDMAConfig / TDMAReport: slotted transmission collisions.
	TDMAConfig = workload.TDMAConfig
	TDMAReport = workload.TDMAReport
	// FusionReport: data-fusion sibling consistency.
	FusionReport = workload.FusionReport
	// SiblingSkew is the worst skew among one parent's children.
	SiblingSkew = workload.SiblingSkew
)

// Workload drivers.
var (
	BinaryFusionTree  = workload.BinaryFusionTree
	FusionConsistency = workload.FusionConsistency
	Tracking          = workload.Tracking
	TDMA              = workload.TDMA
	TDMAFeasible      = workload.TDMAFeasible
)

// Terminal plotting.
type (
	// PlotSeries is one named curve for Chart.
	PlotSeries = plot.Series
)

// Plot helpers (ASCII charts of exact simulation data).
var (
	SkewTimeSeries = plot.TimeSeries
	Chart          = plot.Chart
	Bars           = plot.Bars
)
