package gcs_test

// Integration sweep: every protocol × topology × adversary combination must
// produce a valid execution satisfying the model invariants end to end.

import (
	"fmt"
	"testing"

	"gcs"
)

func sweepTopologies(t *testing.T) []*gcs.Network {
	t.Helper()
	line, err := gcs.Line(9)
	if err != nil {
		t.Fatal(err)
	}
	ring, err := gcs.Ring(8)
	if err != nil {
		t.Fatal(err)
	}
	grid, err := gcs.Grid2D(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	star, err := gcs.Star(8, gcs.R(1))
	if err != nil {
		t.Fatal(err)
	}
	complete, err := gcs.Complete(6, gcs.R(2))
	if err != nil {
		t.Fatal(err)
	}
	return []*gcs.Network{line, ring, grid, star, complete}
}

func TestIntegrationSweep(t *testing.T) {
	rho := gcs.Frac(1, 2)
	adversaries := map[string]gcs.Adversary{
		"midpoint": gcs.Midpoint(),
		"zero":     gcs.FractionAdversary{Frac: gcs.R(0)},
		"max":      gcs.FractionAdversary{Frac: gcs.R(1)},
		"random":   gcs.HashAdversary{Seed: 9, Denom: 8},
	}
	for _, net := range sweepTopologies(t) {
		for _, proto := range gcs.AllProtocols() {
			for advName, adv := range adversaries {
				name := fmt.Sprintf("%s/%s/%s", net.Name(), proto.Name(), advName)
				net, proto, adv := net, proto, adv
				t.Run(name, func(t *testing.T) {
					t.Parallel()
					n := net.N()
					scheds, err := gcs.DiverseSchedules(n, gcs.R(1), gcs.R(1).Add(rho.Div(gcs.R(2))), 4, 3)
					if err != nil {
						t.Fatal(err)
					}
					exec, err := gcs.Run(gcs.Config{
						Net:       net,
						Schedules: scheds,
						Adversary: adv,
						Protocol:  proto,
						Duration:  gcs.R(16),
						Rho:       rho,
					})
					if err != nil {
						t.Fatal(err)
					}
					// Requirement 1 must hold for every portfolio protocol.
					if err := gcs.CheckValidity(exec); err != nil {
						t.Fatal(err)
					}
					// Ledger/action cross-consistency.
					delivered := 0
					for key, rec := range exec.Ledger {
						d := net.Dist(key.From, key.To)
						if rec.Delay.Sign() < 0 || rec.Delay.Greater(d) {
							t.Fatalf("message %v delay %s outside [0, %s]", key, rec.Delay, d)
						}
						if rec.Delivered {
							delivered++
						}
					}
					recvs := 0
					for i := 0; i < exec.N(); i++ {
						for _, a := range exec.NodeActions(i) {
							if a.Kind == gcs.KindRecv {
								recvs++
							}
						}
					}
					if recvs != delivered {
						t.Fatalf("recv actions %d != delivered messages %d", recvs, delivered)
					}
					// Skew symmetry and profile sanity.
					g := gcs.GlobalSkew(exec)
					if g.Skew.Sign() < 0 {
						t.Fatal("negative global skew")
					}
					for _, pt := range gcs.SkewProfile(exec) {
						if pt.MaxSkew.Greater(g.Skew) {
							t.Fatalf("profile point f̂(%s)=%s exceeds global %s", pt.Dist, pt.MaxSkew, g.Skew)
						}
					}
					// Determinism: a re-run is indistinguishable.
					again, err := gcs.Run(gcs.Config{
						Net:       net,
						Schedules: scheds,
						Adversary: adv,
						Protocol:  proto,
						Duration:  gcs.R(16),
						Rho:       rho,
					})
					if err != nil {
						t.Fatal(err)
					}
					if err := gcs.CheckIndistinguishable(exec, again); err != nil {
						t.Fatal(err)
					}
				})
			}
		}
	}
}

func TestIntegrationRBSOnItsTopology(t *testing.T) {
	star, err := gcs.Star(10, gcs.R(1))
	if err != nil {
		t.Fatal(err)
	}
	exec, err := gcs.Run(gcs.Config{
		Net:       star,
		Schedules: gcs.ConstantSchedules(10, gcs.R(1)),
		Adversary: gcs.HashAdversary{Seed: 2, Denom: 16},
		Protocol:  gcs.RBS(gcs.R(2), 0),
		Duration:  gcs.R(30),
		Rho:       gcs.Frac(1, 2),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := gcs.CheckValidity(exec); err != nil {
		t.Fatal(err)
	}
}
