package gcs

// One benchmark per experiment in the reproduction index (DESIGN.md §4).
// The paper has no measurement tables — its evaluation is its constructions —
// so each benchmark executes the corresponding construction/scenario and
// reports the headline quantity via b.ReportMetric, making `go test -bench`
// a one-command regeneration of every checkable result. cmd/gcsbench prints
// the full tables.

import (
	"fmt"
	"testing"

	"gcs/internal/clock"
	"gcs/internal/experiments"
	"gcs/internal/lowerbound"
)

func BenchmarkE1Shift(b *testing.B) {
	opt := experiments.DefaultE1(AllProtocols())
	opt.Distances = []int64{1, 8}
	var sep float64
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.E1Shift(opt)
		if err != nil {
			b.Fatal(err)
		}
		sep = rows[len(rows)-1].Separation.Float64()
	}
	b.ReportMetric(sep, "separation@d=8")
}

func BenchmarkE2AddSkew(b *testing.B) {
	opt := experiments.DefaultE2(AllProtocols())
	opt.Lines = []int{9, 17}
	opt.RenderFigure = false
	var gain float64
	for i := 0; i < b.N; i++ {
		rows, _, _, err := experiments.E2AddSkew(opt)
		if err != nil {
			b.Fatal(err)
		}
		gain = rows[len(rows)-1].Gain.Float64()
	}
	b.ReportMetric(gain, "gain@n=17")
}

func BenchmarkE3BoundedIncrease(b *testing.B) {
	opt := experiments.DefaultE3(AllProtocols())
	var implied float64
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.E3BoundedIncrease(opt)
		if err != nil {
			b.Fatal(err)
		}
		implied = rows[len(rows)-1].ImpliedF1.Float64()
	}
	b.ReportMetric(implied, "impliedF1")
}

func BenchmarkE4MainTheorem(b *testing.B) {
	opt := experiments.DefaultE4(AllProtocols()[1:2]) // max-gossip only: the heavy one
	opt.RoundsList = []int{3}
	var adj float64
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.E4MainTheorem(opt)
		if err != nil {
			b.Fatal(err)
		}
		adj = rows[len(rows)-1].AdjacentSkew.Float64()
	}
	b.ReportMetric(adj, "adjacentSkew@D=65")
}

func BenchmarkE5Counterexample(b *testing.B) {
	opt := experiments.DefaultE5(AllProtocols())
	opt.Dcs = []int64{16}
	var ratio float64
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.E5Counterexample(opt)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Protocol == "max-gossip" {
				ratio = r.PeakOverDc
			}
		}
	}
	b.ReportMetric(ratio, "maxGossipPeak/D")
}

func BenchmarkE6Profile(b *testing.B) {
	opt := experiments.DefaultE6(AllProtocols())
	var local float64
	for i := 0; i < b.N; i++ {
		profiles, _, err := experiments.E6Profiles(opt)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range profiles {
			if p.Protocol == "gradient" {
				local = p.Local.Float64()
			}
		}
	}
	b.ReportMetric(local, "gradientLocalSkew")
}

func BenchmarkE7TDMA(b *testing.B) {
	opt := experiments.DefaultE7(AllProtocols())
	opt.Diameters = []int{8, 16}
	var advPeak float64
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.E7TDMA(opt)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Protocol == "max-gossip" && r.D == 16 {
				advPeak = r.AdvPeak.Float64()
			}
		}
	}
	b.ReportMetric(advPeak, "advSkew@D=16")
}

func BenchmarkE8Applications(b *testing.B) {
	opt := experiments.DefaultE8(AllProtocols())
	var sibling float64
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.E8Applications(opt)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Protocol == "gradient" {
				sibling = r.SiblingSkew.Float64()
			}
		}
	}
	b.ReportMetric(sibling, "gradientSiblingSkew")
}

func BenchmarkE9Ablations(b *testing.B) {
	opt := experiments.DefaultE9()
	opt.Thresholds = opt.Thresholds[:2]
	opt.FastMults = opt.FastMults[:1]
	opt.JumpCaps = opt.JumpCaps[:2]
	var advPeak float64
	for i := 0; i < b.N; i++ {
		_, capRows, _, _, err := experiments.E9Ablations(opt)
		if err != nil {
			b.Fatal(err)
		}
		advPeak = capRows[len(capRows)-1].AdvPeak.Float64()
	}
	b.ReportMetric(advPeak, "advPeak@cap=1")
}

func BenchmarkE10Topologies(b *testing.B) {
	opt := experiments.DefaultE10(AllProtocols()[:2])
	var global float64
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.E10Topologies(opt)
		if err != nil {
			b.Fatal(err)
		}
		global = rows[len(rows)-1].Global.Float64()
	}
	b.ReportMetric(global, "globalSkew")
}

// BenchmarkSimThroughput measures raw simulator speed: events per second on
// a gossiping line — the substrate cost underlying every experiment.
func BenchmarkSimThroughput(b *testing.B) {
	net, err := Line(17)
	if err != nil {
		b.Fatal(err)
	}
	cfg := Config{
		Net:       net,
		Schedules: ConstantSchedules(17, R(1)),
		Adversary: Midpoint(),
		Protocol:  MaxGossip(R(1)),
		Duration:  R(64),
		Rho:       Frac(1, 2),
	}
	b.ReportAllocs()
	var events int
	for i := 0; i < b.N; i++ {
		exec, err := Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		events = len(exec.Actions)
	}
	b.ReportMetric(float64(events), "events/run")
}

// BenchmarkGradientAblation sweeps the gradient protocol's threshold — the
// design choice DESIGN.md §5 flags — and reports the local skew each value
// yields on the standard drifting line.
func BenchmarkGradientAblation(b *testing.B) {
	for _, th := range []int64{1, 2, 4} {
		th := th
		b.Run("threshold="+string(rune('0'+th)), func(b *testing.B) {
			params := DefaultGradientParams()
			params.Threshold = R(th)
			net, err := Line(17)
			if err != nil {
				b.Fatal(err)
			}
			scheds, err := DiverseSchedules(17, R(1), Frac(5, 4), 4, 7)
			if err != nil {
				b.Fatal(err)
			}
			cfg := Config{
				Net:       net,
				Schedules: scheds,
				Adversary: HashAdversary{Seed: 7, Denom: 8},
				Protocol:  Gradient(params),
				Duration:  R(64),
				Rho:       Frac(1, 2),
			}
			var local float64
			for i := 0; i < b.N; i++ {
				exec, err := Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				local = LocalSkew(exec).Skew.Float64()
			}
			b.ReportMetric(local, "localSkew")
		})
	}
}

// streamBenchConfig is the shared setup for the streaming-vs-recorded
// benchmark pair: a drifting line under the reproducible random adversary,
// gossiping hard enough that events dominate.
func streamBenchConfig(b *testing.B, n int, dur int64) (*Network, []*Schedule, Adversary, Protocol, Rat, Rat) {
	b.Helper()
	net, err := Line(n)
	if err != nil {
		b.Fatal(err)
	}
	scheds, err := DiverseSchedules(n, R(1), Frac(5, 4), 4, 7)
	if err != nil {
		b.Fatal(err)
	}
	return net, scheds, HashAdversary{Seed: 7, Denom: 8}, MaxGossip(R(1)), R(dur), Frac(1, 2)
}

// BenchmarkRunRecorded measures the batch path on a 64-node line: every
// action and message is buffered into the Execution, so bytes/op and
// allocs/op grow with the event count (compare the dur=32 and dur=96 runs),
// and the skew metrics cost a further post-hoc scan of the trace.
func BenchmarkRunRecorded(b *testing.B) {
	for _, dur := range []int64{32, 96} {
		dur := dur
		b.Run(fmt.Sprintf("dur=%d", dur), func(b *testing.B) {
			net, scheds, adv, proto, d, rho := streamBenchConfig(b, 64, dur)
			cfg := Config{Net: net, Schedules: scheds, Adversary: adv,
				Protocol: proto, Duration: d, Rho: rho}
			b.ReportAllocs()
			var events int
			var skew float64
			for i := 0; i < b.N; i++ {
				exec, err := Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				events = len(exec.Actions)
				skew = GlobalSkew(exec).Skew.Float64()
			}
			b.ReportMetric(float64(events), "events/run")
			b.ReportMetric(skew, "globalSkew")
		})
	}
}

// BenchmarkEngineFork measures the bulk-copy fork path the prefix-cached
// search leans on: a warmed 17-node gossip line is forked every iteration
// and the fork alone runs a two-time-unit suffix — the clone cost plus a
// short burst of suffix events, the per-mutant unit of work in E13. Gated in
// CI next to EngineStream.
func BenchmarkEngineFork(b *testing.B) {
	net, scheds, adv, proto, _, rho := streamBenchConfig(b, 17, 32)
	eng, err := NewEngine(net, WithProtocol(proto), WithAdversary(adv),
		WithSchedules(scheds), WithRho(rho))
	if err != nil {
		b.Fatal(err)
	}
	if err := eng.RunUntil(R(16)); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var steps uint64
	for i := 0; i < b.N; i++ {
		fork, err := eng.Fork()
		if err != nil {
			b.Fatal(err)
		}
		if err := fork.RunFor(R(2)); err != nil {
			b.Fatal(err)
		}
		steps = fork.Steps() - eng.Steps()
	}
	b.ReportMetric(float64(steps), "steps/op")
}

// BenchmarkEngineForkGradient measures the fork operation alone where
// per-node state is heaviest: a wide warmed gradient line, where every node
// carries a neighbor-estimate table. The tables are shared copy-on-write
// across CloneState and the protocol slab-allocates the whole clone set, so
// allocs/op here is O(1) in network width and degree — this gates that
// discipline (a regression to eager per-node deep copies multiplies it by
// the node count). Gated in CI next to EngineFork, which covers the
// fork-plus-suffix per-mutant unit.
func BenchmarkEngineForkGradient(b *testing.B) {
	const n = 33
	net, err := Line(n)
	if err != nil {
		b.Fatal(err)
	}
	scheds, err := DiverseSchedules(n, R(1), Frac(5, 4), 4, 7)
	if err != nil {
		b.Fatal(err)
	}
	eng, err := NewEngine(net, WithProtocol(Gradient(DefaultGradientParams())),
		WithAdversary(HashAdversary{Seed: 7, Denom: 8}),
		WithSchedules(scheds), WithRho(Frac(1, 2)))
	if err != nil {
		b.Fatal(err)
	}
	if err := eng.RunUntil(R(16)); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Fork(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(eng.Steps()), "steps/op")
}

// BenchmarkAdaptiveRun measures the E14 adaptive-adversary path: the
// generalized §2 online scheduler on the two-node d=8 cell, source on the
// fast rate band, run to the construction's own horizon with an online skew
// tracker attached. The stateful adversary consults execution state on every
// delay decision, so this gates the observe-and-decide hot path the scripted
// workloads never touch. Gated in CI next to the search workloads.
func BenchmarkAdaptiveRun(b *testing.B) {
	p := lowerbound.DefaultParams()
	d := R(8)
	net, err := TwoNode(d)
	if err != nil {
		b.Fatal(err)
	}
	dur := p.Tau().Mul(d)
	scheds := ConstantSchedules(net.N(), R(1))
	scheds[0] = clock.Constant(p.RateBandHigh())
	b.ReportAllocs()
	var steps uint64
	var forced float64
	for i := 0; i < b.N; i++ {
		adv, err := lowerbound.NewAdaptiveScheduler(net, 0, 1, lowerbound.AutoThreshold(p.Rho, dur))
		if err != nil {
			b.Fatal(err)
		}
		tracker, err := NewSkewTracker(net, scheds)
		if err != nil {
			b.Fatal(err)
		}
		eng, err := NewEngine(net, WithProtocol(Gradient(DefaultGradientParams())),
			WithAdversary(adv), WithSchedules(scheds), WithRho(p.Rho), WithObservers(tracker))
		if err != nil {
			b.Fatal(err)
		}
		if err := eng.RunUntil(dur); err != nil {
			b.Fatal(err)
		}
		if err := tracker.Err(); err != nil {
			b.Fatal(err)
		}
		steps = eng.Steps()
		forced = tracker.Global().Skew.Float64()
	}
	b.ReportMetric(float64(steps), "steps/op")
	b.ReportMetric(forced, "forcedSkew")
}

// BenchmarkEngineStream measures the same runs through the streaming engine
// with online trackers: no trace is retained, so memory per run is bounded
// by the O(nodes²) tracker state however long the run — the trajectory to
// watch is allocs/op against events/run between the dur=32 and dur=96 runs,
// versus BenchmarkRunRecorded's.
func BenchmarkEngineStream(b *testing.B) {
	for _, dur := range []int64{32, 96} {
		dur := dur
		b.Run(fmt.Sprintf("dur=%d", dur), func(b *testing.B) {
			net, scheds, adv, proto, d, rho := streamBenchConfig(b, 64, dur)
			b.ReportAllocs()
			var events uint64
			var skew float64
			for i := 0; i < b.N; i++ {
				tracker, err := NewSkewTracker(net, scheds)
				if err != nil {
					b.Fatal(err)
				}
				eng, err := NewEngine(net, WithProtocol(proto), WithAdversary(adv),
					WithSchedules(scheds), WithRho(rho), WithObservers(tracker))
				if err != nil {
					b.Fatal(err)
				}
				if err := eng.RunUntil(d); err != nil {
					b.Fatal(err)
				}
				events = eng.Steps()
				skew = tracker.Global().Skew.Float64()
			}
			b.ReportMetric(float64(events), "events/run")
			b.ReportMetric(skew, "globalSkew")
		})
	}
}
