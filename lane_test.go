package gcs_test

// Cross-lane differential matrix: the fixed-point lane is an execution
// strategy, never a semantics knob, so every run — fresh, forked mid-run, or
// tracked online — must be byte-identical whichever lane the engine picks.
// These tests drive the same configurations once with lane auto-detection
// (the default, which engages the fixed lane on these common-denominator
// workloads) and once with the rat lane forced, and compare executions
// action for action and ledger entry for ledger entry.

import (
	"fmt"
	"testing"

	"gcs"
)

// laneRun executes one fresh end-to-end run under the given lane and returns
// its execution, tracker, and engine.
func laneRun(t *testing.T, net *gcs.Network, proto gcs.Protocol, scheds []*gcs.Schedule, dur gcs.Rat, lane gcs.Lane) (*gcs.Execution, *gcs.SkewTracker, *gcs.Engine) {
	t.Helper()
	skew, err := gcs.NewSkewTracker(net, scheds)
	if err != nil {
		t.Fatal(err)
	}
	rec := gcs.NewRecorder(net.N())
	eng, err := gcs.NewEngine(net,
		gcs.WithProtocol(proto),
		gcs.WithAdversary(gcs.HashAdversary{Seed: 7, Denom: 8}),
		gcs.WithSchedules(scheds),
		gcs.WithRho(gcs.Frac(1, 2)),
		gcs.WithObservers(rec, skew),
		gcs.WithLane(lane),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.RunUntil(dur); err != nil {
		t.Fatal(err)
	}
	exec, err := eng.Execution(rec)
	if err != nil {
		t.Fatal(err)
	}
	return exec, skew, eng
}

// TestLaneDeterminismMatrix: fresh runs across topologies × protocols are
// byte-identical between the auto-detected fixed lane and the forced rat
// lane, and the online trackers agree to the bit. Also asserts the fixed
// lane actually engages on these workloads — a detection regression would
// otherwise turn the whole matrix into rat-vs-rat.
func TestLaneDeterminismMatrix(t *testing.T) {
	dur := gcs.R(12)
	fixedRuns := 0
	for _, net := range forkTopologies(t) {
		for _, proto := range gcs.AllProtocols() {
			net, proto := net, proto
			t.Run(fmt.Sprintf("%s/%s", net.Name(), proto.Name()), func(t *testing.T) {
				scheds, err := gcs.DiverseSchedules(net.N(), gcs.Frac(3, 4), gcs.Frac(5, 4), 4, 17)
				if err != nil {
					t.Fatal(err)
				}
				autoExec, autoSkew, autoEng := laneRun(t, net, proto, scheds, dur, gcs.LaneAuto)
				ratExec, ratSkew, ratEng := laneRun(t, net, proto, scheds, dur, gcs.LaneRat)
				if ratEng.TimeLane() != "rat" {
					t.Fatalf("forced rat lane reports %q", ratEng.TimeLane())
				}
				if autoEng.TimeLane() == "fixed" {
					fixedRuns++
				}
				execEqual(t, "auto lane vs rat lane", ratExec, autoExec)
				if !autoSkew.Global().Skew.Equal(ratSkew.Global().Skew) ||
					autoSkew.Global().Skew.Key() != ratSkew.Global().Skew.Key() {
					t.Fatalf("tracker global skew differs across lanes: %s vs %s",
						autoSkew.Global().Skew, ratSkew.Global().Skew)
				}
				if !autoSkew.Local().Skew.Equal(ratSkew.Local().Skew) {
					t.Fatalf("tracker local skew differs across lanes: %s vs %s",
						autoSkew.Local().Skew, ratSkew.Local().Skew)
				}
			})
		}
	}
	if fixedRuns == 0 {
		t.Fatal("fixed lane never engaged; the matrix compared rat against rat")
	}
}

// TestLaneForkMatrix: a run forked mid-way on the fixed lane — inheriting
// queued tick keys, cached hardware readings, and tracker tick mirrors —
// must finish byte-identical to a fresh rat-lane run, across topologies for
// the protocols with the heaviest per-node state.
func TestLaneForkMatrix(t *testing.T) {
	dur := gcs.R(12)
	protos := []gcs.Protocol{
		gcs.MaxGossip(gcs.R(1)),
		gcs.Gradient(gcs.DefaultGradientParams()),
		gcs.LLW(gcs.DefaultLLWParams()),
	}
	for _, net := range forkTopologies(t) {
		for _, proto := range protos {
			net, proto := net, proto
			t.Run(fmt.Sprintf("%s/%s", net.Name(), proto.Name()), func(t *testing.T) {
				scheds, err := gcs.DiverseSchedules(net.N(), gcs.Frac(3, 4), gcs.Frac(5, 4), 4, 17)
				if err != nil {
					t.Fatal(err)
				}
				refExec, refSkew, _ := laneRun(t, net, proto, scheds, dur, gcs.LaneRat)

				skew, err := gcs.NewSkewTracker(net, scheds)
				if err != nil {
					t.Fatal(err)
				}
				rec := gcs.NewRecorder(net.N())
				trunk, err := gcs.NewEngine(net,
					gcs.WithProtocol(proto),
					gcs.WithAdversary(gcs.HashAdversary{Seed: 7, Denom: 8}),
					gcs.WithSchedules(scheds),
					gcs.WithRho(gcs.Frac(1, 2)),
					gcs.WithObservers(rec, skew),
				)
				if err != nil {
					t.Fatal(err)
				}
				for i := 0; i < 40; i++ {
					if ok, err := trunk.Step(); err != nil {
						t.Fatal(err)
					} else if !ok {
						break
					}
				}
				fork, err := trunk.Fork()
				if err != nil {
					t.Fatal(err)
				}
				frec := rec.Clone()
				fskew := skew.Clone()
				fork.Observe(frec, fskew)
				if err := fork.RunUntil(dur); err != nil {
					t.Fatal(err)
				}
				forkExec, err := fork.Execution(frec)
				if err != nil {
					t.Fatal(err)
				}
				execEqual(t, "fixed-lane fork vs rat-lane fresh", refExec, forkExec)
				if !fskew.Global().Skew.Equal(refSkew.Global().Skew) {
					t.Fatalf("forked tracker global skew %s vs rat-lane %s",
						fskew.Global().Skew, refSkew.Global().Skew)
				}
			})
		}
	}
}

// FuzzLaneRun drives whole executions through both lanes for fuzzed
// configurations — schedule seed, rate band, and adversary quantization —
// and requires byte-identical results. This is the end-to-end complement to
// internal/fixed's FuzzLane (which pins individual tick operations): here
// the fuzzer hunts for configurations where lane detection, clock
// compilation, event keying, and tracker mirroring disagree in composition.
func FuzzLaneRun(f *testing.F) {
	f.Add(uint64(7), int64(4), int64(8), int64(5))
	f.Add(uint64(17), int64(16), int64(16), int64(4))
	f.Add(uint64(1), int64(3), int64(5), int64(3))
	f.Add(uint64(99), int64(7), int64(1), int64(7))
	f.Fuzz(func(t *testing.T, seed uint64, rateDen, advDen, steps int64) {
		if rateDen < 1 || rateDen > 64 || advDen < 1 || advDen > 64 || steps < 1 || steps > 8 {
			t.Skip()
		}
		net, err := gcs.Line(4)
		if err != nil {
			t.Fatal(err)
		}
		scheds, err := gcs.DiverseSchedules(4, gcs.Frac(rateDen, rateDen+1),
			gcs.Frac(rateDen+1, rateDen), steps, seed)
		if err != nil {
			t.Skip()
		}
		run := func(lane gcs.Lane) (*gcs.Execution, *gcs.SkewTracker) {
			skew, err := gcs.NewSkewTracker(net, scheds)
			if err != nil {
				t.Fatal(err)
			}
			rec := gcs.NewRecorder(4)
			eng, err := gcs.NewEngine(net,
				gcs.WithProtocol(gcs.Gradient(gcs.DefaultGradientParams())),
				gcs.WithAdversary(gcs.HashAdversary{Seed: seed, Denom: advDen}),
				gcs.WithSchedules(scheds),
				gcs.WithRho(gcs.Frac(1, 2)),
				gcs.WithObservers(rec, skew),
				gcs.WithLane(lane),
			)
			if err != nil {
				t.Skip()
			}
			if err := eng.RunUntil(gcs.R(8)); err != nil {
				t.Skip()
			}
			exec, err := eng.Execution(rec)
			if err != nil {
				t.Fatal(err)
			}
			return exec, skew
		}
		autoExec, autoSkew := run(gcs.LaneAuto)
		ratExec, ratSkew := run(gcs.LaneRat)
		execEqual(t, "fuzzed auto vs rat", ratExec, autoExec)
		if autoSkew.Global().Skew.Key() != ratSkew.Global().Skew.Key() {
			t.Fatalf("tracker global skew differs: %s vs %s",
				autoSkew.Global().Skew, ratSkew.Global().Skew)
		}
	})
}

// TestLaneDefaultOverride: SetDefaultLane flips engines built with LaneAuto
// — the hook the subsystem-wide differential tests (search, campaigns) use —
// and WithLane(LaneAuto) follows it.
func TestLaneDefaultOverride(t *testing.T) {
	net, err := gcs.Line(5)
	if err != nil {
		t.Fatal(err)
	}
	scheds, err := gcs.DiverseSchedules(5, gcs.R(1), gcs.Frac(5, 4), 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	build := func() *gcs.Engine {
		t.Helper()
		eng, err := gcs.NewEngine(net,
			gcs.WithProtocol(gcs.MaxGossip(gcs.R(1))),
			gcs.WithAdversary(gcs.HashAdversary{Seed: 7, Denom: 8}),
			gcs.WithSchedules(scheds),
			gcs.WithRho(gcs.Frac(1, 2)),
		)
		if err != nil {
			t.Fatal(err)
		}
		return eng
	}
	if lane := build().TimeLane(); lane != "fixed" {
		t.Fatalf("auto lane on a common-denominator workload: %q, want fixed", lane)
	}
	gcs.SetDefaultLane(gcs.LaneRat)
	defer gcs.SetDefaultLane(gcs.LaneAuto)
	if lane := build().TimeLane(); lane != "rat" {
		t.Fatalf("after SetDefaultLane(LaneRat): %q, want rat", lane)
	}
}
