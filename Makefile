GO ?= go

.PHONY: all build test vet bench bench-snapshot

all: vet build test

build:
	$(GO) build ./...

# -race gates the parallel search worker pool (internal/search), the repo's
# only goroutines.
test:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# One pass over every benchmark: regenerates each experiment's headline
# metric plus the streaming-vs-recorded engine comparison.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x .

# Machine-readable experiment snapshots for trend tracking: the standard
# suite (which already embeds the E14 smoke table), the E13 -long scale
# sweep (diameter-64 cells, prefix-cache steps-per-candidate savings), and
# the E14 -long adaptive sweep (two-node d=8 + line cells: adaptive vs
# scripted search vs certified Shift bound). CI uploads these as per-commit
# artifacts; BENCH_E13_long.json and BENCH_E14_long.json are also committed
# so headline metrics diff in review.
bench-snapshot:
	$(GO) run ./cmd/gcsbench -json > BENCH_suite.json
	$(GO) run ./cmd/gcsbench -long -only E13 -json > BENCH_E13_long.json
	$(GO) run ./cmd/gcsbench -long -only E14 -json > BENCH_E14_long.json
