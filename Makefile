GO ?= go

.PHONY: all build test vet bench

all: vet build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# One pass over every benchmark: regenerates each experiment's headline
# metric plus the streaming-vs-recorded engine comparison.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x .
