GO ?= go

.PHONY: all build test vet bench

all: vet build test

build:
	$(GO) build ./...

# -race gates the parallel search worker pool (internal/search), the repo's
# only goroutines.
test:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# One pass over every benchmark: regenerates each experiment's headline
# metric plus the streaming-vs-recorded engine comparison.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x .
