GO ?= go

.PHONY: all build test vet lint bench bench-snapshot bench-perf bench-gated plan-smoke bench-history matrix matrix-smoke

all: vet build test

build:
	$(GO) build ./...

# -race gates the parallel search worker pool (internal/search), the repo's
# only goroutines.
test:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Formatting + vet, exactly what the CI lint job runs: gofmt -l output is a
# failure with the offending files named.
lint:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; fi
	$(GO) vet ./...

# One pass over every benchmark: regenerates each experiment's headline
# metric plus the streaming-vs-recorded engine comparison.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x .

# Machine-readable experiment snapshots for trend tracking: the standard
# suite (which already embeds the E14 smoke table), the E13 -long scale
# sweep (diameter-64 cells, prefix-cache steps-per-candidate savings), and
# the E14 -long adaptive sweep (two-node d=8 + line cells: adaptive vs
# scripted search vs certified Shift bound). CI uploads these as per-commit
# artifacts; BENCH_E13_long.json and BENCH_E14_long.json are also committed
# so headline metrics diff in review.
bench-snapshot:
	$(GO) run ./cmd/gcsbench -json > BENCH_suite.json
	$(GO) run ./cmd/gcsbench -long -only E13 -json > BENCH_E13_long.json
	$(GO) run ./cmd/gcsbench -long -only E14 -json > BENCH_E14_long.json

# Timing snapshot of the gated perf workloads (ns/step + allocs/step for
# the E12 streaming engine and the E13 search, via gcsbench -perf /
# internal/perf). Machine-dependent — BENCH_perf.json records the perf
# trajectory per-PR on the maintainer's machine and is NOT diff-checked in
# CI (the CI perf-gate job compares head vs merge base instead).
bench-perf:
	$(GO) run ./cmd/gcsbench -perf > BENCH_perf.json

# The exact benchmark command the CI perf-gate job runs on the PR head and
# on the merge base; pipe each into a file and compare with
# `go run ./cmd/perfgate -base base.txt -head head.txt` (and/or benchstat).
bench-gated:
	$(GO) test -bench 'EngineStream|EngineFork|EngineForkGradient|AdaptiveRun|SearchPrefixCached|SearchEndToEnd|SearchRateWindows' \
		-benchmem -count 6 -run '^$$' ./...

# Scenario matrix (internal/scenario): generated topology families × fault
# models × drift profiles, each cell searched and adaptively scheduled, then
# gated against its certified D-dependent bound. `matrix` renders the full
# registry as a table; `matrix-smoke` regenerates the committed golden
# BENCH_matrix.json exactly as the CI matrix-smoke job does — after running
# it, `git diff BENCH_matrix.json` must be empty.
matrix:
	$(GO) run ./cmd/gcsbench -matrix

matrix-smoke:
	$(GO) run ./cmd/gcsbench -matrix -smoke -json > BENCH_matrix.json

# Distributed-search pricing smoke: plan the committed example campaign
# without executing a single engine step (the CI test job runs this — it
# proves the spec parses, the move-set arithmetic holds, and the cost model
# loads or degrades cleanly).
plan-smoke:
	$(GO) run ./cmd/gcssearch plan -spec examples/campaign_e13_long.json -workers 4

# Append this commit's gated-benchmark medians to the dev/bench/data.js
# history (github-action-benchmark format). CI runs this on every push to
# main; run it locally only to inspect the mechanism — local timings do not
# belong in the shared curve.
bench-history:
	$(GO) test -bench 'EngineStream|EngineFork|EngineForkGradient|AdaptiveRun|SearchPrefixCached|SearchEndToEnd|SearchRateWindows' \
		-benchmem -count 6 -run '^$$' ./... > bench-head.txt
	$(GO) run ./cmd/perfgate -append -head bench-head.txt \
		-history dev/bench/data.js \
		-commit "$$(git rev-parse HEAD)" \
		-message "$$(git log -1 --format=%s)"
