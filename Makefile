GO ?= go

.PHONY: all build test vet bench bench-snapshot

all: vet build test

build:
	$(GO) build ./...

# -race gates the parallel search worker pool (internal/search), the repo's
# only goroutines.
test:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# One pass over every benchmark: regenerates each experiment's headline
# metric plus the streaming-vs-recorded engine comparison.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x .

# Machine-readable experiment snapshots for trend tracking: the standard
# suite plus the E13 -long scale sweep (diameter-64 cells, prefix-cache
# steps-per-candidate savings). CI uploads these as per-commit artifacts;
# BENCH_E13_long.json is also committed so headline metrics diff in review.
bench-snapshot:
	$(GO) run ./cmd/gcsbench -json > BENCH_suite.json
	$(GO) run ./cmd/gcsbench -long -only E13 -json > BENCH_E13_long.json
