module gcs

go 1.21
