package gcs_test

// Determinism tests for the streaming engine: a streamed run's observer
// event sequence must match the recorded *Execution action for action on
// identical configurations, and the online trackers must reproduce the
// post-hoc metrics exactly, across line/ring/grid topologies × every
// protocol in AllProtocols.

import (
	"fmt"
	"reflect"
	"testing"

	"gcs"
)

// actionCollector buffers the streamed action sequence.
type actionCollector struct {
	actions []gcs.Action
}

func (c *actionCollector) OnAction(a gcs.Action)   { c.actions = append(c.actions, a) }
func (c *actionCollector) OnSend(gcs.MsgRecord)    {}
func (c *actionCollector) OnDeliver(gcs.MsgRecord) {}

func streamTopologies(t *testing.T) []*gcs.Network {
	t.Helper()
	line, err := gcs.Line(9)
	if err != nil {
		t.Fatal(err)
	}
	ring, err := gcs.Ring(8)
	if err != nil {
		t.Fatal(err)
	}
	grid, err := gcs.Grid2D(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	return []*gcs.Network{line, ring, grid}
}

func TestStreamMatchesRecorded(t *testing.T) {
	rho := gcs.Frac(1, 2)
	dur := gcs.R(24)
	f := gcs.LinearGradient(gcs.R(2), gcs.Frac(1, 2))
	for _, net := range streamTopologies(t) {
		n := net.N()
		scheds, err := gcs.DiverseSchedules(n, gcs.R(1), gcs.Frac(5, 4), 4, 7)
		if err != nil {
			t.Fatal(err)
		}
		for _, proto := range gcs.AllProtocols() {
			net, proto, scheds := net, proto, scheds
			t.Run(fmt.Sprintf("%s/%s", net.Name(), proto.Name()), func(t *testing.T) {
				adv := gcs.HashAdversary{Seed: 5, Denom: 8}
				exec, err := gcs.Run(gcs.Config{
					Net: net, Schedules: scheds, Adversary: adv,
					Protocol: proto, Duration: dur, Rho: rho,
				})
				if err != nil {
					t.Fatal(err)
				}

				eng, err := gcs.NewEngine(net,
					gcs.WithProtocol(proto),
					gcs.WithAdversary(adv),
					gcs.WithSchedules(scheds),
					gcs.WithRho(rho),
				)
				if err != nil {
					t.Fatal(err)
				}
				col := &actionCollector{}
				skew, err := gcs.NewSkewTracker(net, scheds)
				if err != nil {
					t.Fatal(err)
				}
				grad, err := gcs.NewGradientTracker(net, scheds, f)
				if err != nil {
					t.Fatal(err)
				}
				valid := gcs.NewValidityTracker(scheds)
				eng.Observe(col, skew, grad, valid)
				if err := eng.RunUntil(dur); err != nil {
					t.Fatal(err)
				}
				if err := skew.Err(); err != nil {
					t.Fatal(err)
				}

				// The streamed action sequence is the recorded trace.
				if len(col.actions) != len(exec.Actions) {
					t.Fatalf("streamed %d actions, recorded %d", len(col.actions), len(exec.Actions))
				}
				for i := range col.actions {
					if col.actions[i] != exec.Actions[i] {
						t.Fatalf("action %d differs:\n  streamed: %+v\n  recorded: %+v",
							i, col.actions[i], exec.Actions[i])
					}
				}

				// Online metrics equal the post-hoc checkers exactly.
				if g := gcs.GlobalSkew(exec); !skew.Global().Skew.Equal(g.Skew) {
					t.Errorf("global skew: online %s vs recorded %s", skew.Global().Skew, g.Skew)
				}
				if l := gcs.LocalSkew(exec); !skew.Local().Skew.Equal(l.Skew) {
					t.Errorf("local skew: online %s vs recorded %s", skew.Local().Skew, l.Skew)
				}
				rep := gcs.CheckGradient(exec, f)
				orep := grad.Report()
				if rep.OK != orep.OK || !rep.Worst.Skew.Equal(orep.Worst.Skew) {
					t.Errorf("gradient: online OK=%v worst=%s vs recorded OK=%v worst=%s",
						orep.OK, orep.Worst.Skew, rep.OK, rep.Worst.Skew)
				}
				if perr, oerr := gcs.CheckValidity(exec), valid.Err(); (perr == nil) != (oerr == nil) {
					t.Errorf("validity: online %v vs recorded %v", oerr, perr)
				}
			})
		}
	}
}

// TestRunUntilEarlyStop: stopping an engine at t < duration yields an
// execution byte-identical to a batch run with Duration = t, and resuming
// the same engine to the full duration converges to the full batch run.
func TestRunUntilEarlyStop(t *testing.T) {
	net, err := gcs.Line(7)
	if err != nil {
		t.Fatal(err)
	}
	scheds, err := gcs.DiverseSchedules(7, gcs.R(1), gcs.Frac(5, 4), 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	rho := gcs.Frac(1, 2)
	adv := gcs.HashAdversary{Seed: 2, Denom: 8}
	proto := gcs.Gradient(gcs.DefaultGradientParams())
	mkCfg := func(dur gcs.Rat) gcs.Config {
		return gcs.Config{Net: net, Schedules: scheds, Adversary: adv,
			Protocol: proto, Duration: dur, Rho: rho}
	}
	t1, t2 := gcs.R(10), gcs.R(25)
	pre, err := gcs.Run(mkCfg(t1))
	if err != nil {
		t.Fatal(err)
	}
	full, err := gcs.Run(mkCfg(t2))
	if err != nil {
		t.Fatal(err)
	}

	eng, err := gcs.NewEngine(net, gcs.WithProtocol(proto), gcs.WithAdversary(adv),
		gcs.WithSchedules(scheds), gcs.WithRho(rho))
	if err != nil {
		t.Fatal(err)
	}
	rec := gcs.NewRecorder(net.N())
	eng.Observe(rec)
	if err := eng.RunUntil(t1); err != nil {
		t.Fatal(err)
	}
	part, err := eng.Execution(rec)
	if err != nil {
		t.Fatal(err)
	}
	if !part.Duration.Equal(t1) {
		t.Fatalf("partial duration = %s, want %s", part.Duration, t1)
	}
	if len(part.Actions) != len(pre.Actions) {
		t.Fatalf("partial has %d actions, batch run to %s has %d", len(part.Actions), t1, len(pre.Actions))
	}
	for i := range part.Actions {
		if part.Actions[i] != pre.Actions[i] {
			t.Fatalf("partial action %d differs: %+v vs %+v", i, part.Actions[i], pre.Actions[i])
		}
	}
	if !reflect.DeepEqual(part.Ledger, pre.Ledger) {
		t.Fatal("partial ledger differs from batch run")
	}
	if err := gcs.PrefixEqual(part, pre, t1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < net.N(); i++ {
		if !part.LogicalAt(i, t1).Equal(pre.LogicalAt(i, t1)) {
			t.Fatalf("node %d logical clock differs at %s", i, t1)
		}
	}

	// Resume to the full horizon: identical to the uninterrupted batch run.
	if err := eng.RunUntil(t2); err != nil {
		t.Fatal(err)
	}
	resumed, err := eng.Execution(rec)
	if err != nil {
		t.Fatal(err)
	}
	if len(resumed.Actions) != len(full.Actions) {
		t.Fatalf("resumed has %d actions, full run has %d", len(resumed.Actions), len(full.Actions))
	}
	for i := range resumed.Actions {
		if resumed.Actions[i] != full.Actions[i] {
			t.Fatalf("resumed action %d differs: %+v vs %+v", i, resumed.Actions[i], full.Actions[i])
		}
	}
	if !reflect.DeepEqual(resumed.Ledger, full.Ledger) {
		t.Fatal("resumed ledger differs from full run")
	}
	if err := gcs.PrefixEqual(resumed, full, t2); err != nil {
		t.Fatal(err)
	}

	// The mid-run snapshot is stable: resuming the engine must not have
	// mutated it (Execution copies the recorder's buffers).
	if len(part.Actions) != len(pre.Actions) || !reflect.DeepEqual(part.Ledger, pre.Ledger) {
		t.Fatal("mid-run snapshot mutated by resuming the engine")
	}
	for i := 0; i < net.N(); i++ {
		if len(part.PerNode[i]) != len(pre.PerNode[i]) {
			t.Fatalf("node %d snapshot per-node index mutated by resume", i)
		}
		for _, a := range part.NodeActions(i) {
			if a.Real.Greater(t1) {
				t.Fatalf("node %d snapshot contains post-%s action", i, t1)
			}
		}
	}
}

// TestStepEarlyStopOnGradientViolation drives the engine event by event and
// halts the moment the gradient tracker reports a violation — the scenario
// shape the streaming API unlocks (no trace, no full-duration run).
func TestStepEarlyStopOnGradientViolation(t *testing.T) {
	net, err := gcs.Line(9)
	if err != nil {
		t.Fatal(err)
	}
	n := net.N()
	rho := gcs.Frac(1, 2)
	scheds := gcs.ConstantSchedules(n, gcs.R(1))
	scheds[0] = gcs.ConstantClock(gcs.R(1).Add(rho.Div(gcs.R(2))))
	grad, err := gcs.NewGradientTracker(net, scheds, gcs.LinearGradient(gcs.Frac(1, 4), gcs.Frac(1, 8)))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := gcs.NewEngine(net,
		gcs.WithProtocol(gcs.MaxGossip(gcs.R(1))),
		gcs.WithAdversary(gcs.Midpoint()),
		gcs.WithSchedules(scheds),
		gcs.WithRho(rho),
		gcs.WithObservers(grad),
	)
	if err != nil {
		t.Fatal(err)
	}
	const maxSteps = 200000
	for steps := 0; !grad.Violated(); steps++ {
		if steps > maxSteps {
			t.Fatal("no violation within step budget")
		}
		ok, err := eng.Step()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatal("engine went idle before violating the tight gradient bound")
		}
	}
	v, _ := grad.Violation()
	if !v.Skew.Greater(v.Allowed) {
		t.Errorf("violation skew %s not above allowed %s", v.Skew, v.Allowed)
	}
	// The run stopped at the violation instant, far before any fixed
	// horizon: the engine's covered time is exactly where the event stream
	// stands.
	if eng.Horizon().Greater(gcs.R(64)) {
		t.Errorf("ran to %s before detecting a violation expected almost immediately", eng.Horizon())
	}
}
