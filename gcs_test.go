package gcs_test

// Black-box tests of the public facade: everything a downstream user touches
// goes through package gcs.

import (
	"fmt"
	"testing"

	"gcs"
)

func TestPublicQuickstartPath(t *testing.T) {
	net, err := gcs.Line(9)
	if err != nil {
		t.Fatal(err)
	}
	exec, err := gcs.Run(gcs.Config{
		Net:       net,
		Schedules: gcs.ConstantSchedules(9, gcs.R(1)),
		Adversary: gcs.Midpoint(),
		Protocol:  gcs.Gradient(gcs.DefaultGradientParams()),
		Duration:  gcs.R(20),
		Rho:       gcs.Frac(1, 2),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := gcs.CheckValidity(exec); err != nil {
		t.Fatal(err)
	}
	if g := gcs.GlobalSkew(exec); g.Skew.Sign() < 0 {
		t.Error("negative skew")
	}
	if prof := gcs.SkewProfile(exec); len(prof) != 8 {
		t.Errorf("profile has %d distances, want 8", len(prof))
	}
}

// TestPublicSearchPath: the worst-case adversary hunter through the public
// facade — searched skew must beat the certified two-node Shift bound, and
// the result must replay through the public engine API.
func TestPublicSearchPath(t *testing.T) {
	d := gcs.R(2)
	net, err := gcs.TwoNode(d)
	if err != nil {
		t.Fatal(err)
	}
	proto := gcs.Gradient(gcs.DefaultGradientParams())
	res, err := gcs.Search(gcs.SearchOptions{
		Net:       net,
		Protocol:  proto,
		Duration:  gcs.R(4),
		Rho:       gcs.Frac(1, 2),
		Objective: gcs.ObjectiveGlobalSkew,
	})
	if err != nil {
		t.Fatal(err)
	}
	shift, err := gcs.Shift(proto, d, gcs.DefaultLowerBoundParams())
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Less(shift.Implied) {
		t.Fatalf("searched worst case %s below certified Shift bound %s", res.Best, shift.Implied)
	}
	// Replay the searched adversary through the public engine API.
	scheds := res.ReplaySchedules(gcs.ConstantSchedules(2, gcs.R(1)))
	skew, err := gcs.NewSkewTracker(net, scheds)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := gcs.NewEngine(net,
		gcs.WithProtocol(proto),
		gcs.WithAdversary(res.ReplayAdversary(gcs.Midpoint())),
		gcs.WithSchedules(scheds),
		gcs.WithRho(gcs.Frac(1, 2)),
		gcs.WithObservers(skew),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.RunUntil(gcs.R(4)); err != nil {
		t.Fatal(err)
	}
	if !skew.Global().Skew.Equal(res.Best) {
		t.Fatalf("replay skew %s != searched %s", skew.Global().Skew, res.Best)
	}
}

func TestPublicLowerBoundPath(t *testing.T) {
	p := gcs.DefaultLowerBoundParams()
	res, err := gcs.Shift(gcs.MaxGossip(gcs.R(1)), gcs.R(4), p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Separation.Less(gcs.Frac(2, 5)) {
		t.Errorf("separation %s below d/10", res.Separation)
	}
	thm, err := gcs.MainTheorem(gcs.MainTheoremInput{
		Protocol: gcs.MaxGossip(gcs.R(1)),
		Params:   p,
		Branch:   3,
		Rounds:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if thm.AdjacentSkew.Less(thm.PaperTarget) {
		t.Errorf("adjacent skew %s below target %s", thm.AdjacentSkew, thm.PaperTarget)
	}
}

func TestPublicGradientCheck(t *testing.T) {
	net, err := gcs.TwoNode(gcs.R(3))
	if err != nil {
		t.Fatal(err)
	}
	exec, err := gcs.Run(gcs.Config{
		Net:       net,
		Schedules: gcs.ConstantSchedules(2, gcs.R(1)),
		Adversary: gcs.Midpoint(),
		Protocol:  gcs.Null(),
		Duration:  gcs.R(10),
		Rho:       gcs.Frac(1, 2),
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := gcs.CheckGradient(exec, gcs.LinearGradient(gcs.R(1), gcs.R(1)))
	if !rep.OK {
		t.Errorf("identical clocks should satisfy any positive gradient bound: %+v", rep.Worst)
	}
}

func TestPublicWorkloads(t *testing.T) {
	net, err := gcs.Line(7)
	if err != nil {
		t.Fatal(err)
	}
	exec, err := gcs.Run(gcs.Config{
		Net:       net,
		Schedules: gcs.ConstantSchedules(7, gcs.R(1)),
		Adversary: gcs.Midpoint(),
		Protocol:  gcs.MaxGossip(gcs.R(1)),
		Duration:  gcs.R(24),
		Rho:       gcs.Frac(1, 2),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gcs.FusionConsistency(exec, gcs.BinaryFusionTree(7)); err != nil {
		t.Error(err)
	}
	if _, err := gcs.Tracking(exec, gcs.TrackingConfig{I: 0, J: 3, CrossAt: gcs.R(10), Speed: gcs.R(1)}); err != nil {
		t.Error(err)
	}
	if _, _, err := gcs.TDMAFeasible(exec, gcs.TDMAConfig{Slots: 2, SlotLen: gcs.R(8), Guard: gcs.R(3)}); err != nil {
		t.Error(err)
	}
}

func TestDiverseSchedulesDeterministic(t *testing.T) {
	a, err := gcs.DiverseSchedules(8, gcs.R(1), gcs.Frac(5, 4), 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := gcs.DiverseSchedules(8, gcs.R(1), gcs.Frac(5, 4), 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	distinct := map[string]bool{}
	for i := range a {
		ra := a[i].RateAt(gcs.R(0))
		rb := b[i].RateAt(gcs.R(0))
		if !ra.Equal(rb) {
			t.Fatal("diverse schedules not deterministic")
		}
		if ra.Less(gcs.R(1)) || ra.Greater(gcs.Frac(5, 4)) {
			t.Fatalf("rate %s outside range", ra)
		}
		distinct[ra.Key()] = true
	}
	if len(distinct) < 2 {
		t.Error("diverse schedules produced a single rate")
	}
}

func ExampleShift() {
	res, err := gcs.Shift(gcs.MaxGossip(gcs.R(1)), gcs.R(10), gcs.DefaultLowerBoundParams())
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("two indistinguishable executions, skews %s and %s\n", res.SkewAlpha, res.SkewBeta)
	// Output: two indistinguishable executions, skews 0 and 2
}
