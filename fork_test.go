package gcs_test

// Fork determinism matrix: an engine forked mid-run and driven to the
// horizon must be byte-identical — action for action, ledger entry for
// ledger entry, metric for metric — to a fresh engine run end to end on the
// same configuration, across line/ring/grid topologies × every protocol in
// the portfolio. The matrix also asserts the trunk is untouched by forking
// (it still matches the fresh run) and that cloned online trackers agree
// with the post-hoc checkers on the forked run, which is the contract the
// prefix-cached search stands on.

import (
	"fmt"
	"testing"

	"gcs"
)

func forkTopologies(t *testing.T) []*gcs.Network {
	t.Helper()
	line, err := gcs.Line(5)
	if err != nil {
		t.Fatal(err)
	}
	ring, err := gcs.Ring(5)
	if err != nil {
		t.Fatal(err)
	}
	grid, err := gcs.Grid2D(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	return []*gcs.Network{line, ring, grid}
}

// forkRun drives an engine with a recorder and skew/validity trackers
// attached from time zero, forking at the given step count (0 = no fork) and
// finishing on the fork. It returns the executed engine, its recorder, and
// its trackers — all belonging to the branch that reached the horizon.
type forkRun struct {
	eng   *gcs.Engine
	rec   *gcs.Recorder
	skew  *gcs.SkewTracker
	valid *gcs.ValidityTracker
}

func execEqual(t *testing.T, label string, a, b *gcs.Execution) {
	t.Helper()
	if len(a.Actions) != len(b.Actions) {
		t.Fatalf("%s: %d actions vs %d", label, len(a.Actions), len(b.Actions))
	}
	for i := range a.Actions {
		x, y := a.Actions[i], b.Actions[i]
		if x.Node != y.Node || x.Kind != y.Kind || x.Peer != y.Peer ||
			x.MsgSeq != y.MsgSeq || x.TimerID != y.TimerID || x.Payload != y.Payload ||
			!x.Real.Equal(y.Real) || !x.HW.Equal(y.HW) {
			t.Fatalf("%s: action %d differs: %+v vs %+v", label, i, x, y)
		}
	}
	if len(a.Ledger) != len(b.Ledger) {
		t.Fatalf("%s: %d ledger entries vs %d", label, len(a.Ledger), len(b.Ledger))
	}
	for k, x := range a.Ledger {
		y, ok := b.Ledger[k]
		if !ok || x.Delivered != y.Delivered || x.Dropped != y.Dropped || x.Payload != y.Payload ||
			!x.SendReal.Equal(y.SendReal) || !x.Delay.Equal(y.Delay) ||
			(x.Delivered && !x.RecvReal.Equal(y.RecvReal)) {
			t.Fatalf("%s: ledger %v differs: %+v vs %+v (present=%v)", label, k, x, y, ok)
		}
	}
}

func TestForkDeterminismMatrix(t *testing.T) {
	dur := gcs.R(12)
	rho := gcs.Frac(1, 2)
	for _, net := range forkTopologies(t) {
		for _, proto := range gcs.AllProtocols() {
			net, proto := net, proto
			t.Run(fmt.Sprintf("%s/%s", net.Name(), proto.Name()), func(t *testing.T) {
				scheds, err := gcs.DiverseSchedules(net.N(), gcs.Frac(3, 4), gcs.Frac(5, 4), 4, 17)
				if err != nil {
					t.Fatal(err)
				}
				adv := gcs.HashAdversary{Seed: 7, Denom: 8}
				build := func() forkRun {
					t.Helper()
					skew, err := gcs.NewSkewTracker(net, scheds)
					if err != nil {
						t.Fatal(err)
					}
					valid := gcs.NewValidityTracker(scheds)
					rec := gcs.NewRecorder(net.N())
					eng, err := gcs.NewEngine(net,
						gcs.WithProtocol(proto),
						gcs.WithAdversary(adv),
						gcs.WithSchedules(scheds),
						gcs.WithRho(rho),
						gcs.WithObservers(rec, skew, valid),
					)
					if err != nil {
						t.Fatal(err)
					}
					return forkRun{eng: eng, rec: rec, skew: skew, valid: valid}
				}

				// Fresh end-to-end run: the reference.
				fresh := build()
				if err := fresh.eng.RunUntil(dur); err != nil {
					t.Fatal(err)
				}
				freshExec, err := fresh.eng.Execution(fresh.rec)
				if err != nil {
					t.Fatal(err)
				}

				// Trunk run: step half the events, fork, finish both branches.
				trunk := build()
				half := fresh.eng.Steps() / 2
				for trunk.eng.Steps() < half {
					ok, err := trunk.eng.Step()
					if err != nil {
						t.Fatal(err)
					}
					if !ok {
						break
					}
				}
				fork, err := trunk.eng.Fork()
				if err != nil {
					t.Fatal(err)
				}
				frec := trunk.rec.Clone()
				fskew := trunk.skew.Clone()
				fvalid := trunk.valid.Clone()
				fork.Observe(frec, fskew, fvalid)
				if err := fork.RunUntil(dur); err != nil {
					t.Fatal(err)
				}
				forkExec, err := fork.Execution(frec)
				if err != nil {
					t.Fatal(err)
				}
				execEqual(t, "fork vs fresh", freshExec, forkExec)
				if fork.Steps() != fresh.eng.Steps() {
					t.Fatalf("fork dispatched %d events, fresh %d", fork.Steps(), fresh.eng.Steps())
				}

				// The trunk is untouched by the fork: finishing it still
				// reproduces the fresh run.
				if err := trunk.eng.RunUntil(dur); err != nil {
					t.Fatal(err)
				}
				trunkExec, err := trunk.eng.Execution(trunk.rec)
				if err != nil {
					t.Fatal(err)
				}
				execEqual(t, "trunk vs fresh", freshExec, trunkExec)

				// Cloned online trackers vs post-hoc checkers on the forked
				// execution.
				if err := fskew.Err(); err != nil {
					t.Fatal(err)
				}
				if g, og := gcs.GlobalSkew(forkExec), fskew.Global(); !og.Skew.Equal(g.Skew) {
					t.Fatalf("cloned tracker global %s vs post-hoc %s", og.Skew, g.Skew)
				}
				if l, ol := gcs.LocalSkew(forkExec), fskew.Local(); !ol.Skew.Equal(l.Skew) {
					t.Fatalf("cloned tracker local %s vs post-hoc %s", ol.Skew, l.Skew)
				}
				perr, oerr := gcs.CheckValidity(forkExec), fvalid.Err()
				if (perr == nil) != (oerr == nil) {
					t.Fatalf("cloned validity %v vs post-hoc %v", oerr, perr)
				}
				// And the two branches' trackers agree with each other.
				if !fresh.skew.Global().Skew.Equal(fskew.Global().Skew) {
					t.Fatalf("fresh tracker global %s vs forked %s", fresh.skew.Global().Skew, fskew.Global().Skew)
				}
			})
		}
	}
}

// TestScheduleSwapForkMatrix: the fork-determinism matrix for mid-run
// schedule surgery — a trunk run under the base schedules, forked at the
// first event at/after a mutated window's start with the mutated schedule
// swapped into the fork (engine and trackers alike), must be byte-identical
// to a fresh engine run end to end under the swapped schedule set, across
// line/ring/grid topologies × every protocol in the portfolio. This is the
// contract rate-window mutants in the prefix-cached search stand on: timer
// events re-derive their firing times from their hardware-clock targets
// through the new schedule, deliveries keep their real times, and nothing
// else moves.
func TestScheduleSwapForkMatrix(t *testing.T) {
	dur := gcs.R(12)
	rho := gcs.Frac(1, 2)
	from, to := gcs.R(4), gcs.R(8)
	// Pin the window to 1+ρ: outside the diverse band below, so the swapped
	// schedule always differs from the base inside [from, to).
	pinned := gcs.R(1).Add(rho)
	for _, net := range forkTopologies(t) {
		for _, proto := range gcs.AllProtocols() {
			net, proto := net, proto
			t.Run(fmt.Sprintf("%s/%s", net.Name(), proto.Name()), func(t *testing.T) {
				base, err := gcs.DiverseSchedules(net.N(), gcs.Frac(3, 4), gcs.Frac(5, 4), 4, 17)
				if err != nil {
					t.Fatal(err)
				}
				node := net.N() - 1
				swapped, err := base[node].ModifyWindow(from, to, func(gcs.Rat) gcs.Rat { return pinned })
				if err != nil {
					t.Fatal(err)
				}
				swappedSet := append([]*gcs.Schedule(nil), base...)
				swappedSet[node] = swapped
				adv := gcs.HashAdversary{Seed: 7, Denom: 8}
				build := func(scheds []*gcs.Schedule) forkRun {
					t.Helper()
					skew, err := gcs.NewSkewTracker(net, scheds)
					if err != nil {
						t.Fatal(err)
					}
					valid := gcs.NewValidityTracker(scheds)
					rec := gcs.NewRecorder(net.N())
					eng, err := gcs.NewEngine(net,
						gcs.WithProtocol(proto),
						gcs.WithAdversary(adv),
						gcs.WithSchedules(scheds),
						gcs.WithRho(rho),
						gcs.WithObservers(rec, skew, valid),
					)
					if err != nil {
						t.Fatal(err)
					}
					return forkRun{eng: eng, rec: rec, skew: skew, valid: valid}
				}

				// Fresh end-to-end run under the swapped set: the reference.
				fresh := build(swappedSet)
				if err := fresh.eng.RunUntil(dur); err != nil {
					t.Fatal(err)
				}
				freshExec, err := fresh.eng.Execution(fresh.rec)
				if err != nil {
					t.Fatal(err)
				}

				// Trunk under the base set to just before the window start —
				// the schedules agree there — then fork and swap.
				trunk := build(base)
				for {
					nt, ok := trunk.eng.NextEventTime()
					if !ok || !nt.Less(from) {
						break
					}
					if _, err := trunk.eng.Step(); err != nil {
						t.Fatal(err)
					}
				}
				fork, err := trunk.eng.Fork()
				if err != nil {
					t.Fatal(err)
				}
				if err := fork.SwapSchedule(node, swapped); err != nil {
					t.Fatal(err)
				}
				frec := trunk.rec.Clone()
				fskew := trunk.skew.Clone()
				if err := fskew.SwapSchedule(node, swapped); err != nil {
					t.Fatal(err)
				}
				fvalid := trunk.valid.Clone()
				if err := fvalid.SwapSchedule(node, swapped); err != nil {
					t.Fatal(err)
				}
				fork.Observe(frec, fskew, fvalid)
				if err := fork.RunUntil(dur); err != nil {
					t.Fatal(err)
				}
				forkExec, err := fork.Execution(frec)
				if err != nil {
					t.Fatal(err)
				}
				execEqual(t, "swapped fork vs fresh", freshExec, forkExec)
				if fork.Steps() != fresh.eng.Steps() {
					t.Fatalf("swapped fork dispatched %d events, fresh %d", fork.Steps(), fresh.eng.Steps())
				}

				// The trunk is untouched by the swap on the fork: finishing it
				// under the base set still matches a fresh base-set run.
				baseFresh := build(base)
				if err := baseFresh.eng.RunUntil(dur); err != nil {
					t.Fatal(err)
				}
				baseExec, err := baseFresh.eng.Execution(baseFresh.rec)
				if err != nil {
					t.Fatal(err)
				}
				if err := trunk.eng.RunUntil(dur); err != nil {
					t.Fatal(err)
				}
				trunkExec, err := trunk.eng.Execution(trunk.rec)
				if err != nil {
					t.Fatal(err)
				}
				execEqual(t, "trunk vs fresh base run", baseExec, trunkExec)

				// Swapped online trackers vs post-hoc checkers on the forked
				// execution, and vs the fresh reference's own trackers.
				if err := fskew.Err(); err != nil {
					t.Fatal(err)
				}
				if g, og := gcs.GlobalSkew(forkExec), fskew.Global(); !og.Skew.Equal(g.Skew) {
					t.Fatalf("swapped tracker global %s vs post-hoc %s", og.Skew, g.Skew)
				}
				if l, ol := gcs.LocalSkew(forkExec), fskew.Local(); !ol.Skew.Equal(l.Skew) {
					t.Fatalf("swapped tracker local %s vs post-hoc %s", ol.Skew, l.Skew)
				}
				perr, oerr := gcs.CheckValidity(forkExec), fvalid.Err()
				if (perr == nil) != (oerr == nil) {
					t.Fatalf("swapped validity %v vs post-hoc %v", oerr, perr)
				}
				if !fresh.skew.Global().Skew.Equal(fskew.Global().Skew) {
					t.Fatalf("fresh tracker global %s vs swapped fork %s", fresh.skew.Global().Skew, fskew.Global().Skew)
				}
			})
		}
	}
}

// TestStatefulAdversaryForkMatrix: the fork-determinism matrix for stateful
// adversaries — an adaptive adversary (the online §2 scheduler) driven on a
// fork, and on the trunk after forking, must be byte-identical to two
// independent end-to-end runs, across topologies × protocols. Fork clones
// the adversary's state at the fork point (engine.StatefulAdversary), so
// the trunk's trigger and the fork's trigger fire independently; sharing
// state would desynchronize at least one branch from the fresh reference.
func TestStatefulAdversaryForkMatrix(t *testing.T) {
	dur := gcs.R(12)
	rho := gcs.Frac(1, 2)
	two, err := gcs.TwoNode(gcs.R(2))
	if err != nil {
		t.Fatal(err)
	}
	line, err := gcs.Line(4)
	if err != nil {
		t.Fatal(err)
	}
	for _, net := range []*gcs.Network{two, line} {
		for _, proto := range gcs.AllProtocols() {
			net, proto := net, proto
			t.Run(fmt.Sprintf("%s/%s", net.Name(), proto.Name()), func(t *testing.T) {
				// Source on the fast band so the adaptive trigger has drift to
				// observe; a mid-run threshold so both branches cross it after
				// the fork point.
				scheds := gcs.ConstantSchedules(net.N(), gcs.R(1))
				scheds[0] = gcs.ConstantClock(gcs.R(1).Add(rho.Div(gcs.R(2))))
				threshold := gcs.AutoThreshold(rho, dur)
				build := func() (*gcs.Engine, *gcs.Recorder, *gcs.AdaptiveScheduler) {
					t.Helper()
					adv, err := gcs.NewAdaptiveScheduler(net, 0, net.N()-1, threshold)
					if err != nil {
						t.Fatal(err)
					}
					rec := gcs.NewRecorder(net.N())
					eng, err := gcs.NewEngine(net,
						gcs.WithProtocol(proto),
						gcs.WithAdversary(adv),
						gcs.WithSchedules(scheds),
						gcs.WithRho(rho),
						gcs.WithObservers(rec),
					)
					if err != nil {
						t.Fatal(err)
					}
					return eng, rec, adv
				}
				finish := func(eng *gcs.Engine, rec *gcs.Recorder) *gcs.Execution {
					t.Helper()
					if err := eng.RunUntil(dur); err != nil {
						t.Fatal(err)
					}
					exec, err := eng.Execution(rec)
					if err != nil {
						t.Fatal(err)
					}
					return exec
				}

				// Two independent end-to-end runs: the reference, twice (the
				// adversary is deterministic in its observations).
				engA, recA, _ := build()
				execA := finish(engA, recA)
				engB, recB, _ := build()
				execB := finish(engB, recB)
				execEqual(t, "independent runs", execA, execB)

				// Trunk to the half-way point, fork, finish both branches.
				trunk, trec, tadv := build()
				for trunk.Steps() < engA.Steps()/2 {
					ok, err := trunk.Step()
					if err != nil {
						t.Fatal(err)
					}
					if !ok {
						break
					}
				}
				fork, err := trunk.Fork()
				if err != nil {
					t.Fatal(err)
				}
				fadv, ok := fork.Adversary().(*gcs.AdaptiveScheduler)
				if !ok || fadv == tadv {
					t.Fatalf("fork adversary %T shares the trunk's state", fork.Adversary())
				}
				frec := trec.Clone()
				fork.Observe(frec)
				execFork := finish(fork, frec)
				execEqual(t, "fork vs independent run", execA, execFork)
				execTrunk := finish(trunk, trec)
				execEqual(t, "trunk vs independent run", execA, execTrunk)

				// Both branches observed the same (byte-identical) execution,
				// so their triggers must agree.
				tAt, tOK := tadv.Released()
				fAt, fOK := fadv.Released()
				if tOK != fOK || (tOK && !tAt.Equal(fAt)) {
					t.Fatalf("trunk release (%s, %v) differs from fork release (%s, %v)", tAt, tOK, fAt, fOK)
				}
			})
		}
	}
}

// TestFaultAdversaryForkMatrix: the fork-determinism matrix for fault
// injection — a FaultAdversary (crash windows, probabilistic loss, a
// transient partition, edge churn) layered over the hash adversary must make
// a fork driven to the horizon, and the trunk finished after forking,
// byte-identical to two independent end-to-end runs, dropped messages
// included (execEqual compares the Dropped flag per ledger entry). One loss
// case additionally rides inside a ScriptedAdversary fallback — the shape
// the prefix-cached search builds — so the drop hook provably survives
// wrapper chains via Unwrap. Every case asserts at least one message was
// actually dropped, so none of this passes vacuously.
func TestFaultAdversaryForkMatrix(t *testing.T) {
	dur := gcs.R(12)
	rho := gcs.Frac(1, 2)
	line, err := gcs.Line(5)
	if err != nil {
		t.Fatal(err)
	}
	ring, err := gcs.Ring(5)
	if err != nil {
		t.Fatal(err)
	}
	faults := []struct {
		name     string
		model    gcs.FaultModel
		scripted bool // wrap the fault layer in a ScriptedAdversary fallback
	}{
		{"crash", gcs.FaultModel{Crash: map[int][]gcs.FaultWindow{
			1: {{From: gcs.R(3), To: gcs.R(6)}},
			3: {{From: gcs.R(7), To: gcs.R(9)}},
		}}, false},
		{"loss", gcs.FaultModel{LossNum: 1, LossDen: 4, LossSeed: 99}, false},
		{"loss-scripted", gcs.FaultModel{LossNum: 1, LossDen: 4, LossSeed: 99}, true},
		{"partition", gcs.FaultModel{Partitions: []gcs.NetPartition{{
			Window: gcs.FaultWindow{From: gcs.R(4), To: gcs.R(8)},
			Side:   []bool{true, true},
		}}}, false},
		{"churn", gcs.FaultModel{ChurnNum: 1, ChurnDen: 4, ChurnPeriod: gcs.R(2), ChurnSeed: 5}, false},
	}
	protos := []gcs.Protocol{gcs.MaxGossip(gcs.R(1)), gcs.Gradient(gcs.DefaultGradientParams())}
	for _, net := range []*gcs.Network{line, ring} {
		for _, fc := range faults {
			for _, proto := range protos {
				net, fc, proto := net, fc, proto
				t.Run(fmt.Sprintf("%s/%s/%s", net.Name(), fc.name, proto.Name()), func(t *testing.T) {
					scheds, err := gcs.DiverseSchedules(net.N(), gcs.Frac(3, 4), gcs.Frac(5, 4), 4, 17)
					if err != nil {
						t.Fatal(err)
					}
					var adv gcs.Adversary = gcs.FaultAdversary{
						Model: fc.model,
						Inner: gcs.HashAdversary{Seed: 7, Denom: 8},
					}
					if fc.scripted {
						adv = gcs.ScriptedAdversary{Fallback: adv}
					}
					build := func() (*gcs.Engine, *gcs.Recorder) {
						t.Helper()
						rec := gcs.NewRecorder(net.N())
						eng, err := gcs.NewEngine(net,
							gcs.WithProtocol(proto),
							gcs.WithAdversary(adv),
							gcs.WithSchedules(scheds),
							gcs.WithRho(rho),
							gcs.WithObservers(rec),
						)
						if err != nil {
							t.Fatal(err)
						}
						return eng, rec
					}
					finish := func(eng *gcs.Engine, rec *gcs.Recorder) *gcs.Execution {
						t.Helper()
						if err := eng.RunUntil(dur); err != nil {
							t.Fatal(err)
						}
						exec, err := eng.Execution(rec)
						if err != nil {
							t.Fatal(err)
						}
						return exec
					}

					// Two independent end-to-end runs: the reference, twice.
					engA, recA := build()
					execA := finish(engA, recA)
					engB, recB := build()
					execB := finish(engB, recB)
					execEqual(t, "independent runs", execA, execB)

					// The fault model must have bitten, or the case tests
					// nothing.
					dropped := 0
					for _, rec := range execA.Ledger {
						if rec.Dropped {
							if rec.Delivered {
								t.Fatalf("ledger entry both dropped and delivered: %+v", rec)
							}
							dropped++
						}
					}
					if dropped == 0 {
						t.Fatalf("fault model %q dropped no messages; the case is vacuous", fc.name)
					}

					// Trunk to the half-way point, fork, finish both branches.
					trunk, trec := build()
					for trunk.Steps() < engA.Steps()/2 {
						ok, err := trunk.Step()
						if err != nil {
							t.Fatal(err)
						}
						if !ok {
							break
						}
					}
					fork, err := trunk.Fork()
					if err != nil {
						t.Fatal(err)
					}
					frec := trec.Clone()
					fork.Observe(frec)
					execFork := finish(fork, frec)
					execEqual(t, "fork vs independent run", execA, execFork)
					execTrunk := finish(trunk, trec)
					execEqual(t, "trunk vs independent run", execA, execTrunk)
				})
			}
		}
	}
}

// TestFaultAdversaryStatefulInnerFork: forking a FaultAdversary whose inner
// adversary is stateful (the adaptive scheduler) must clone the inner state —
// the fault layer itself is immutable and shared, but a shared scheduler
// would let one branch's trigger fire on the other branch's observations.
func TestFaultAdversaryStatefulInnerFork(t *testing.T) {
	dur := gcs.R(12)
	rho := gcs.Frac(1, 2)
	net, err := gcs.Line(4)
	if err != nil {
		t.Fatal(err)
	}
	proto := gcs.MaxGossip(gcs.R(1))
	model := gcs.FaultModel{Crash: map[int][]gcs.FaultWindow{
		1: {{From: gcs.R(3), To: gcs.R(5)}},
	}}
	scheds := gcs.ConstantSchedules(net.N(), gcs.R(1))
	scheds[0] = gcs.ConstantClock(gcs.R(1).Add(rho.Div(gcs.R(2))))
	threshold := gcs.AutoThreshold(rho, dur)
	build := func() (*gcs.Engine, *gcs.Recorder, *gcs.AdaptiveScheduler) {
		t.Helper()
		inner, err := gcs.NewAdaptiveScheduler(net, 0, net.N()-1, threshold)
		if err != nil {
			t.Fatal(err)
		}
		rec := gcs.NewRecorder(net.N())
		eng, err := gcs.NewEngine(net,
			gcs.WithProtocol(proto),
			gcs.WithAdversary(gcs.FaultAdversary{Model: model, Inner: inner}),
			gcs.WithSchedules(scheds),
			gcs.WithRho(rho),
			gcs.WithObservers(rec),
		)
		if err != nil {
			t.Fatal(err)
		}
		return eng, rec, inner
	}
	finish := func(eng *gcs.Engine, rec *gcs.Recorder) *gcs.Execution {
		t.Helper()
		if err := eng.RunUntil(dur); err != nil {
			t.Fatal(err)
		}
		exec, err := eng.Execution(rec)
		if err != nil {
			t.Fatal(err)
		}
		return exec
	}

	engA, recA, _ := build()
	execA := finish(engA, recA)

	trunk, trec, tinner := build()
	for trunk.Steps() < engA.Steps()/2 {
		ok, err := trunk.Step()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
	}
	fork, err := trunk.Fork()
	if err != nil {
		t.Fatal(err)
	}
	fadv, ok := fork.Adversary().(gcs.FaultAdversary)
	if !ok {
		t.Fatalf("fork adversary is %T, want FaultAdversary", fork.Adversary())
	}
	finner, ok := fadv.Inner.(*gcs.AdaptiveScheduler)
	if !ok || finner == tinner {
		t.Fatalf("fork's inner adversary %T shares the trunk's state", fadv.Inner)
	}
	frec := trec.Clone()
	fork.Observe(frec)
	execEqual(t, "fork vs independent run", execA, finish(fork, frec))
	execEqual(t, "trunk vs independent run", execA, finish(trunk, trec))
}

// TestForkDivergence: a fork rebound to a different adversary diverges from
// the trunk without disturbing it — the branching the prefix-cached search
// performs — and matches a fresh run under a script that switches delays at
// the same decision boundary.
func TestForkDivergence(t *testing.T) {
	net, err := gcs.Line(4)
	if err != nil {
		t.Fatal(err)
	}
	dur := gcs.R(10)
	proto := gcs.MaxGossip(gcs.R(1))
	build := func(adv gcs.Adversary) (*gcs.Engine, *gcs.DecisionLog) {
		t.Helper()
		log := gcs.NewDecisionLog(net)
		eng, err := gcs.NewEngine(net,
			gcs.WithProtocol(proto),
			gcs.WithAdversary(adv),
			gcs.WithRho(gcs.Frac(1, 2)),
			gcs.WithObservers(log),
		)
		if err != nil {
			t.Fatal(err)
		}
		return eng, log
	}

	trunk, tlog := build(gcs.Midpoint())
	for i := 0; i < 8; i++ {
		if _, err := trunk.Step(); err != nil {
			t.Fatal(err)
		}
	}
	prefix := tlog.Len()
	fork, err := trunk.Fork()
	if err != nil {
		t.Fatal(err)
	}
	if err := fork.SetAdversary(gcs.FractionAdversary{Frac: gcs.R(1)}); err != nil {
		t.Fatal(err)
	}
	flog := tlog.Clone()
	fork.Observe(flog)
	if err := fork.RunUntil(dur); err != nil {
		t.Fatal(err)
	}
	if err := trunk.RunUntil(dur); err != nil {
		t.Fatal(err)
	}
	if flog.Len() <= prefix {
		t.Fatal("fork made no decisions after the fork point")
	}
	// Prefix decisions are shared; the fork's post-fork decisions take the
	// full bound while the trunk keeps the midpoint.
	half, one := gcs.Frac(1, 2), gcs.R(1)
	for i, d := range flog.Decisions() {
		want := one
		if i < prefix {
			want = tlog.Decisions()[i].Delay
		}
		if i >= prefix {
			if !d.Delay.Equal(want.Mul(d.Bound)) {
				t.Fatalf("fork decision %d delay %s, want bound %s", i, d.Delay, d.Bound)
			}
			continue
		}
		if !d.Delay.Equal(want) {
			t.Fatalf("fork prefix decision %d delay %s, want trunk's %s", i, d.Delay, want)
		}
	}
	for _, d := range tlog.Decisions() {
		if !d.Delay.Equal(half.Mul(d.Bound)) {
			t.Fatalf("trunk decision %v delay %s drifted off the midpoint %s", d.Key, d.Delay, half.Mul(d.Bound))
		}
	}

	// The fork's whole run equals a fresh run under its realized script.
	replay, rlog := build(gcs.ScriptedAdversary{Delays: flog.Script()})
	if err := replay.RunUntil(dur); err != nil {
		t.Fatal(err)
	}
	if rlog.Len() != flog.Len() || replay.Steps() != fork.Steps() {
		t.Fatalf("replay: %d decisions / %d steps, fork: %d / %d",
			rlog.Len(), replay.Steps(), flog.Len(), fork.Steps())
	}
	for i, d := range rlog.Decisions() {
		f := flog.Decisions()[i]
		if d.Key != f.Key || !d.Delay.Equal(f.Delay) || !d.SendReal.Equal(f.SendReal) || d.Event != f.Event {
			t.Fatalf("replay decision %d differs: %+v vs %+v", i, d, f)
		}
	}
}
