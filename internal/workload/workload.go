// Package workload implements the sensor-network application scenarios that
// motivate gradient clock synchronization in §1 of Fan & Lynch (PODC 2004):
// data fusion, target tracking, and TDMA scheduling. Each scenario consumes
// a recorded execution and reports how the application-level error relates
// to clock skew.
package workload

import (
	"fmt"

	"gcs/internal/rat"
	"gcs/internal/trace"
)

// ---- Data fusion (Qi et al., §1 of the paper) ----

// BinaryFusionTree returns a parent vector for a balanced binary fusion tree
// over nodes 0..n-1: node i's parent is (i-1)/2, node 0 is the root
// (parent -1). In the fusion workload, the children of a common parent must
// have well-synchronized clocks so their timestamped readings fuse
// consistently; distant subtrees never compare timestamps directly.
func BinaryFusionTree(n int) []int {
	parent := make([]int, n)
	parent[0] = -1
	for i := 1; i < n; i++ {
		parent[i] = (i - 1) / 2
	}
	return parent
}

// SiblingSkew is the worst observed skew among one parent's children.
type SiblingSkew struct {
	Parent   int
	Children []int
	MaxSkew  rat.Rat
	At       rat.Rat
}

// FusionReport summarizes fusion consistency for a whole tree.
type FusionReport struct {
	// Worst is the sibling group with the largest internal skew: the fusion
	// error bound for timestamped readings.
	Worst SiblingSkew
	// Groups is the number of sibling groups examined.
	Groups int
	// GlobalSkew is the worst skew across all node pairs, for contrast: the
	// gradient property makes Worst.MaxSkew ≪ GlobalSkew.
	GlobalSkew rat.Rat
}

// FusionConsistency computes sibling skews for the given parent vector over
// the full execution.
func FusionConsistency(e *trace.Execution, parent []int) (FusionReport, error) {
	n := e.N()
	if len(parent) != n {
		return FusionReport{}, fmt.Errorf("workload: parent vector size %d != %d nodes", len(parent), n)
	}
	children := map[int][]int{}
	for i, p := range parent {
		if p == -1 {
			continue
		}
		if p < 0 || p >= n || p == i {
			return FusionReport{}, fmt.Errorf("workload: invalid parent %d for node %d", p, i)
		}
		children[p] = append(children[p], i)
	}
	var rep FusionReport
	first := true
	for p, kids := range children {
		if len(kids) < 2 {
			continue
		}
		rep.Groups++
		var worst rat.Rat
		var at rat.Rat
		for a := 0; a < len(kids); a++ {
			for b := a + 1; b < len(kids); b++ {
				ext := e.MaxAbsSkew(kids[a], kids[b], rat.Rat{}, e.Duration)
				if ext.Val.Greater(worst) {
					worst, at = ext.Val, ext.At
				}
			}
		}
		if first || worst.Greater(rep.Worst.MaxSkew) {
			first = false
			rep.Worst = SiblingSkew{Parent: p, Children: kids, MaxSkew: worst, At: at}
		}
	}
	// Global contrast.
	e.Net.Pairs(func(i, j int) {
		ext := e.MaxAbsSkew(i, j, rat.Rat{}, e.Duration)
		if ext.Val.Greater(rep.GlobalSkew) {
			rep.GlobalSkew = ext.Val
		}
	})
	return rep, nil
}

// ---- Target tracking (§1 of the paper) ----

// TrackingConfig describes one object transit between two sensors.
type TrackingConfig struct {
	// I, J are the sensor nodes; the object passes I first.
	I, J int
	// CrossAt is the real time the object passes sensor I.
	CrossAt rat.Rat
	// Speed is the object's true speed; the transit time to J is
	// dist(I,J)/Speed. (Euclidean distance is identified with message-delay
	// distance, as in the paper's footnote 2.)
	Speed rat.Rat
}

// TrackingReport compares the velocity estimated from logical timestamps to
// the truth.
type TrackingReport struct {
	Dist       rat.Rat
	TrueDT     rat.Rat // real transit time
	MeasuredDT rat.Rat // L_J(arrival) − L_I(departure)
	TrueSpeed  rat.Rat
	// EstSpeed = Dist/MeasuredDT (zero if MeasuredDT ≤ 0 — skew larger than
	// the transit time makes the estimate meaningless).
	EstSpeed rat.Rat
	// ErrPct = |EstSpeed − TrueSpeed| / TrueSpeed × 100.
	ErrPct float64
}

// Tracking evaluates the velocity-estimation error for one transit: the
// paper's point is that a fixed clock skew ε produces speed error
// ε/(Δt ± ε), so the farther apart the sensors, the more skew is tolerable —
// the acceptable skew forms a gradient in distance.
func Tracking(e *trace.Execution, cfg TrackingConfig) (TrackingReport, error) {
	n := e.N()
	if cfg.I < 0 || cfg.I >= n || cfg.J < 0 || cfg.J >= n || cfg.I == cfg.J {
		return TrackingReport{}, fmt.Errorf("workload: invalid sensor pair (%d,%d)", cfg.I, cfg.J)
	}
	if cfg.Speed.Sign() <= 0 {
		return TrackingReport{}, fmt.Errorf("workload: speed %s not positive", cfg.Speed)
	}
	dist := e.Net.Dist(cfg.I, cfg.J)
	trueDT := dist.Div(cfg.Speed)
	arrive := cfg.CrossAt.Add(trueDT)
	if cfg.CrossAt.Sign() < 0 || arrive.Greater(e.Duration) {
		return TrackingReport{}, fmt.Errorf("workload: transit [%s, %s] outside execution", cfg.CrossAt, arrive)
	}
	rep := TrackingReport{
		Dist:      dist,
		TrueDT:    trueDT,
		TrueSpeed: cfg.Speed,
	}
	rep.MeasuredDT = e.LogicalAt(cfg.J, arrive).Sub(e.LogicalAt(cfg.I, cfg.CrossAt))
	if rep.MeasuredDT.Sign() > 0 {
		rep.EstSpeed = dist.Div(rep.MeasuredDT)
		rep.ErrPct = 100 * abs(rep.EstSpeed.Float64()-cfg.Speed.Float64()) / cfg.Speed.Float64()
	} else {
		rep.ErrPct = 100
	}
	return rep, nil
}

func abs(f float64) float64 {
	if f < 0 {
		return -f
	}
	return f
}

// ---- TDMA (Lloyd, §1 of the paper) ----

// TDMAConfig describes a slotted-transmission schedule driven by logical
// clocks: node i transmits whenever its logical clock, modulo
// Slots·SlotLen, falls inside slot (i mod Slots), keeping Guard time at the
// end of the slot idle.
type TDMAConfig struct {
	Slots   int64
	SlotLen rat.Rat
	Guard   rat.Rat
}

// Validate checks the schedule shape.
func (c TDMAConfig) Validate() error {
	if c.Slots < 2 {
		return fmt.Errorf("workload: %d slots < 2", c.Slots)
	}
	if c.SlotLen.Sign() <= 0 || c.Guard.Sign() < 0 || c.Guard.GreaterEq(c.SlotLen) {
		return fmt.Errorf("workload: bad slot/guard (%s, %s)", c.SlotLen, c.Guard)
	}
	return nil
}

// TDMAReport counts real-time collision samples.
type TDMAReport struct {
	Samples    int
	Violations int
	// FirstViolation is the earliest sampled real time at which two
	// interfering nodes transmitted concurrently (meaningful when
	// Violations > 0).
	FirstViolation rat.Rat
	// ViolationFraction = Violations/Samples.
	ViolationFraction float64
}

// TDMA samples the execution every `step` of real time and counts instants
// at which two interfering nodes (gossip neighbors, or nodes at distance
// ≤ 2) transmit concurrently. Collisions appear exactly when logical skew
// between interfering nodes exceeds the guard band — the paper's argument
// that fixed-granularity TDMA cannot scale without the gradient property.
func TDMA(e *trace.Execution, cfg TDMAConfig, step rat.Rat) (TDMAReport, error) {
	if err := cfg.Validate(); err != nil {
		return TDMAReport{}, err
	}
	if step.Sign() <= 0 {
		return TDMAReport{}, fmt.Errorf("workload: step %s not positive", step)
	}
	n := e.N()
	two := rat.FromInt(2)
	interferes := func(i, j int) bool { return e.Net.Dist(i, j).LessEq(two) }
	frame := cfg.SlotLen.Mul(rat.FromInt(cfg.Slots))

	transmitting := func(i int, t rat.Rat) bool {
		l := e.LogicalAt(i, t)
		// pos = l mod frame
		q := l.Div(frame).Floor()
		pos := l.Sub(rat.FromInt(q).Mul(frame))
		slotStart := cfg.SlotLen.Mul(rat.FromInt(int64(i) % cfg.Slots))
		if pos.Less(slotStart) {
			return false
		}
		return pos.Less(slotStart.Add(cfg.SlotLen.Sub(cfg.Guard)))
	}

	var rep TDMAReport
	for t := (rat.Rat{}); t.LessEq(e.Duration); t = t.Add(step) {
		rep.Samples++
		collided := false
	scan:
		for i := 0; i < n && !collided; i++ {
			if !transmitting(i, t) {
				continue
			}
			for j := i + 1; j < n; j++ {
				if int64(i)%cfg.Slots != int64(j)%cfg.Slots {
					continue // different slots never collide by schedule
				}
				if !interferes(i, j) {
					continue
				}
				if transmitting(j, t) {
					collided = true
					break scan
				}
			}
		}
		if collided {
			if rep.Violations == 0 {
				rep.FirstViolation = t
			}
			rep.Violations++
		}
	}
	if rep.Samples > 0 {
		rep.ViolationFraction = float64(rep.Violations) / float64(rep.Samples)
	}
	return rep, nil
}

// TDMAFeasible reports whether the schedule is collision-free in the strong,
// skew-based sense: every pair of interfering same-slot nodes keeps worst
// observed skew below the guard band. This is the exact criterion (no
// sampling): two same-slot interferers with skew ≤ Guard can never overlap,
// because each transmits only in the first SlotLen − Guard of its own
// logical slot.
func TDMAFeasible(e *trace.Execution, cfg TDMAConfig) (bool, rat.Rat, error) {
	if err := cfg.Validate(); err != nil {
		return false, rat.Rat{}, err
	}
	two := rat.FromInt(2)
	worst := rat.Rat{}
	ok := true
	e.Net.Pairs(func(i, j int) {
		if int64(i)%cfg.Slots != int64(j)%cfg.Slots || e.Net.Dist(i, j).Greater(two) {
			return
		}
		ext := e.MaxAbsSkew(i, j, rat.Rat{}, e.Duration)
		if ext.Val.Greater(worst) {
			worst = ext.Val
		}
		if ext.Val.Greater(cfg.Guard) {
			ok = false
		}
	})
	return ok, worst, nil
}
