package workload

import (
	"testing"

	"gcs/internal/algorithms"
	"gcs/internal/clock"
	"gcs/internal/network"
	"gcs/internal/rat"
	"gcs/internal/sim"
	"gcs/internal/trace"
)

func ri(n int64) rat.Rat    { return rat.FromInt(n) }
func rf(n, d int64) rat.Rat { return rat.MustFrac(n, d) }

func runLine(t *testing.T, proto sim.Protocol, n int, fastNode int, dur rat.Rat) *trace.Execution {
	t.Helper()
	net, err := network.Line(n)
	if err != nil {
		t.Fatal(err)
	}
	scheds := make([]*clock.Schedule, n)
	for i := range scheds {
		scheds[i] = clock.Constant(ri(1))
	}
	if fastNode >= 0 {
		scheds[fastNode] = clock.Constant(rf(5, 4))
	}
	exec, err := sim.Run(sim.Config{
		Net:       net,
		Schedules: scheds,
		Adversary: sim.Midpoint(),
		Protocol:  proto,
		Duration:  dur,
		Rho:       rf(1, 2),
	})
	if err != nil {
		t.Fatal(err)
	}
	return exec
}

func TestBinaryFusionTree(t *testing.T) {
	parent := BinaryFusionTree(7)
	want := []int{-1, 0, 0, 1, 1, 2, 2}
	for i := range want {
		if parent[i] != want[i] {
			t.Errorf("parent[%d] = %d, want %d", i, parent[i], want[i])
		}
	}
}

func TestFusionConsistency(t *testing.T) {
	e := runLine(t, algorithms.Gradient(algorithms.DefaultGradientParams()), 7, 0, ri(30))
	rep, err := FusionConsistency(e, BinaryFusionTree(7))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Groups != 3 {
		t.Errorf("groups = %d, want 3", rep.Groups)
	}
	if rep.Worst.MaxSkew.Greater(rep.GlobalSkew) {
		t.Errorf("sibling skew %s exceeds global %s", rep.Worst.MaxSkew, rep.GlobalSkew)
	}
}

func TestFusionConsistencyValidation(t *testing.T) {
	e := runLine(t, algorithms.Null(), 3, -1, ri(5))
	if _, err := FusionConsistency(e, []int{-1, 0}); err == nil {
		t.Error("short parent vector should error")
	}
	if _, err := FusionConsistency(e, []int{-1, 1, 0}); err == nil {
		t.Error("self-parent should error")
	}
}

func TestTrackingPerfectClocks(t *testing.T) {
	// Null protocol with identical rate-1 clocks: no skew, perfect estimate.
	e := runLine(t, algorithms.Null(), 5, -1, ri(20))
	rep, err := Tracking(e, TrackingConfig{I: 0, J: 4, CrossAt: ri(2), Speed: ri(1)})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.MeasuredDT.Equal(rep.TrueDT) {
		t.Errorf("measured %s != true %s with perfect clocks", rep.MeasuredDT, rep.TrueDT)
	}
	if rep.ErrPct != 0 {
		t.Errorf("error %f%% with perfect clocks", rep.ErrPct)
	}
}

func TestTrackingSkewedClocks(t *testing.T) {
	// Null protocol, sensor J's clock runs fast: the measured interval is
	// inflated and the speed underestimated. Error shrinks with distance —
	// the paper's gradient motivation.
	n := 9
	net, err := network.Line(n)
	if err != nil {
		t.Fatal(err)
	}
	scheds := make([]*clock.Schedule, n)
	for i := range scheds {
		scheds[i] = clock.Constant(ri(1))
	}
	scheds[0] = clock.Constant(rf(9, 8)) // sensor 0 fast
	e, err := sim.Run(sim.Config{
		Net: net, Schedules: scheds, Adversary: sim.Midpoint(),
		Protocol: algorithms.Null(), Duration: ri(40), Rho: rf(1, 2),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Same skew source (node 0), increasing distances.
	nearRep, err := Tracking(e, TrackingConfig{I: 0, J: 1, CrossAt: ri(8), Speed: rf(1, 2)})
	if err != nil {
		t.Fatal(err)
	}
	farRep, err := Tracking(e, TrackingConfig{I: 0, J: 8, CrossAt: ri(8), Speed: rf(1, 2)})
	if err != nil {
		t.Fatal(err)
	}
	if nearRep.ErrPct <= farRep.ErrPct {
		t.Errorf("near error %f%% should exceed far error %f%% for the same skew source",
			nearRep.ErrPct, farRep.ErrPct)
	}
}

func TestTrackingValidation(t *testing.T) {
	e := runLine(t, algorithms.Null(), 3, -1, ri(5))
	cases := []TrackingConfig{
		{I: 0, J: 0, CrossAt: ri(1), Speed: ri(1)},
		{I: 0, J: 1, CrossAt: ri(1), Speed: rat.Rat{}},
		{I: 0, J: 2, CrossAt: ri(4), Speed: ri(1)}, // transit exceeds duration
	}
	for i, cfg := range cases {
		if _, err := Tracking(e, cfg); err == nil {
			t.Errorf("case %d should error", i)
		}
	}
}

func TestTDMAPerfectClocks(t *testing.T) {
	e := runLine(t, algorithms.Null(), 6, -1, ri(24))
	cfg := TDMAConfig{Slots: 3, SlotLen: ri(2), Guard: rf(1, 2)}
	rep, err := TDMA(e, cfg, rf(1, 4))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violations != 0 {
		t.Errorf("perfect clocks should have no collisions, got %d", rep.Violations)
	}
	ok, worst, err := TDMAFeasible(e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Errorf("perfect clocks should be feasible (worst skew %s)", worst)
	}
}

func TestTDMASkewBreaksSchedule(t *testing.T) {
	// Null protocol with a fast node: same-slot interferers drift apart
	// until their transmissions overlap.
	n := 7
	net, err := network.Line(n)
	if err != nil {
		t.Fatal(err)
	}
	scheds := make([]*clock.Schedule, n)
	for i := range scheds {
		scheds[i] = clock.Constant(ri(1))
	}
	// Nodes 2 and 4? slots with Slots=2: interferers at distance 2 share a
	// slot. Make node 2 fast so (2,4) diverge.
	scheds[2] = clock.Constant(rf(5, 4))
	e, err := sim.Run(sim.Config{
		Net: net, Schedules: scheds, Adversary: sim.Midpoint(),
		Protocol: algorithms.Null(), Duration: ri(40), Rho: rf(1, 2),
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := TDMAConfig{Slots: 2, SlotLen: ri(2), Guard: rf(1, 2)}
	ok, worst, err := TDMAFeasible(e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Errorf("drifting null clocks should break TDMA (worst skew %s)", worst)
	}
	rep, err := TDMA(e, cfg, rf(1, 4))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violations == 0 {
		t.Error("sampled TDMA found no collisions despite infeasibility")
	}
}

func TestTDMAValidation(t *testing.T) {
	e := runLine(t, algorithms.Null(), 3, -1, ri(5))
	bad := []TDMAConfig{
		{Slots: 1, SlotLen: ri(1), Guard: rf(1, 4)},
		{Slots: 3, SlotLen: rat.Rat{}, Guard: rat.Rat{}},
		{Slots: 3, SlotLen: ri(1), Guard: ri(2)},
	}
	for i, cfg := range bad {
		if _, err := TDMA(e, cfg, ri(1)); err == nil {
			t.Errorf("config %d should error", i)
		}
	}
	if _, err := TDMA(e, TDMAConfig{Slots: 2, SlotLen: ri(1), Guard: rf(1, 4)}, rat.Rat{}); err == nil {
		t.Error("zero step should error")
	}
}
