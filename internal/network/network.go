// Package network defines topologies for the gradient clock synchronization
// model.
//
// Following §3 of Fan & Lynch (PODC 2004), the "distance" d(i,j) between two
// nodes is the *uncertainty in message delay* between them: a message from i
// to j takes between 0 and d(i,j) time to arrive. The diameter D is the
// maximum distance, and distances are normalized so min_{i≠j} d(i,j) = 1.
//
// A Network also carries a gossip adjacency (which pairs exchange messages in
// the synchronization algorithms). In the line networks used by the
// lower-bound constructions, neighbors are the distance-1 pairs; messages
// between non-adjacent nodes are still possible in the model, and the
// distance matrix bounds their delays.
package network

import (
	"fmt"
	"math/rand"

	"gcs/internal/rat"
)

// Network is an immutable set of nodes with pairwise distances (message
// delay uncertainties) and a gossip adjacency.
type Network struct {
	name      string
	n         int
	dist      [][]rat.Rat
	neighbors [][]int
}

// New builds a network from an explicit distance matrix and adjacency.
// The matrix must be square, symmetric, zero on the diagonal, and >= 1 off
// the diagonal (the paper's unit-distance normalization).
func New(name string, dist [][]rat.Rat, neighbors [][]int) (*Network, error) {
	n := len(dist)
	if n < 2 {
		return nil, fmt.Errorf("network: need at least 2 nodes, got %d", n)
	}
	if len(neighbors) != n {
		return nil, fmt.Errorf("network: adjacency size %d != %d nodes", len(neighbors), n)
	}
	one := rat.FromInt(1)
	for i := range dist {
		if len(dist[i]) != n {
			return nil, fmt.Errorf("network: row %d has %d entries, want %d", i, len(dist[i]), n)
		}
		if !dist[i][i].IsZero() {
			return nil, fmt.Errorf("network: d(%d,%d) = %s, want 0", i, i, dist[i][i])
		}
		for j := range dist[i] {
			if i == j {
				continue
			}
			if !dist[i][j].Equal(dist[j][i]) {
				return nil, fmt.Errorf("network: d(%d,%d)=%s != d(%d,%d)=%s", i, j, dist[i][j], j, i, dist[j][i])
			}
			if dist[i][j].Less(one) {
				return nil, fmt.Errorf("network: d(%d,%d)=%s < 1 violates unit normalization", i, j, dist[i][j])
			}
		}
	}
	for i, ns := range neighbors {
		for _, j := range ns {
			if j < 0 || j >= n || j == i {
				return nil, fmt.Errorf("network: node %d has invalid neighbor %d", i, j)
			}
		}
	}
	return &Network{name: name, n: n, dist: dist, neighbors: neighbors}, nil
}

// Name returns a human-readable topology name.
func (w *Network) Name() string { return w.name }

// N returns the number of nodes.
func (w *Network) N() int { return w.n }

// Dist returns d(i,j), the message delay uncertainty between i and j.
func (w *Network) Dist(i, j int) rat.Rat { return w.dist[i][j] }

// Neighbors returns the gossip neighbors of node i. The caller must not
// modify the returned slice.
func (w *Network) Neighbors(i int) []int { return w.neighbors[i] }

// Diameter returns D = max_{i,j} d(i,j).
func (w *Network) Diameter() rat.Rat {
	var d rat.Rat
	for i := 0; i < w.n; i++ {
		for j := i + 1; j < w.n; j++ {
			d = rat.Max(d, w.dist[i][j])
		}
	}
	return d
}

// Pairs calls fn for every unordered pair i < j.
func (w *Network) Pairs(fn func(i, j int)) {
	for i := 0; i < w.n; i++ {
		for j := i + 1; j < w.n; j++ {
			fn(i, j)
		}
	}
}

// Line returns the canonical lower-bound topology: nodes 0..n-1 on a line
// with d(i,j) = |i-j| and gossip edges between consecutive nodes. (The paper
// numbers nodes 1..D; we use 0-based indices, so the diameter is n-1.)
func Line(n int) (*Network, error) {
	if n < 2 {
		return nil, fmt.Errorf("network: line needs >= 2 nodes, got %d", n)
	}
	dist := make([][]rat.Rat, n)
	neighbors := make([][]int, n)
	for i := range dist {
		dist[i] = make([]rat.Rat, n)
		for j := range dist[i] {
			d := int64(i - j)
			if d < 0 {
				d = -d
			}
			dist[i][j] = rat.FromInt(d)
		}
		switch {
		case i == 0:
			neighbors[i] = []int{1}
		case i == n-1:
			neighbors[i] = []int{n - 2}
		default:
			neighbors[i] = []int{i - 1, i + 1}
		}
	}
	return New(fmt.Sprintf("line-%d", n), dist, neighbors)
}

// TwoNode returns two nodes at distance d >= 1, used by the Ω(d) shift
// argument.
func TwoNode(d rat.Rat) (*Network, error) {
	if d.Less(rat.FromInt(1)) {
		return nil, fmt.Errorf("network: two-node distance %s < 1", d)
	}
	dist := [][]rat.Rat{
		{{}, d},
		{d, {}},
	}
	return New(fmt.Sprintf("two-node-%s", d), dist, [][]int{{1}, {0}})
}

// Complete returns a complete network on n nodes with all distances d.
func Complete(n int, d rat.Rat) (*Network, error) {
	if n < 2 {
		return nil, fmt.Errorf("network: complete needs >= 2 nodes, got %d", n)
	}
	if d.Less(rat.FromInt(1)) {
		return nil, fmt.Errorf("network: complete distance %s < 1", d)
	}
	dist := make([][]rat.Rat, n)
	neighbors := make([][]int, n)
	for i := range dist {
		dist[i] = make([]rat.Rat, n)
		for j := range dist[i] {
			if i != j {
				dist[i][j] = d
				neighbors[i] = append(neighbors[i], j)
			}
		}
	}
	return New(fmt.Sprintf("complete-%d", n), dist, neighbors)
}

// Ring returns n nodes on a cycle with hop-count distances and gossip edges
// between cycle-adjacent nodes.
func Ring(n int) (*Network, error) {
	if n < 3 {
		return nil, fmt.Errorf("network: ring needs >= 3 nodes, got %d", n)
	}
	dist := make([][]rat.Rat, n)
	neighbors := make([][]int, n)
	for i := range dist {
		dist[i] = make([]rat.Rat, n)
		for j := range dist[i] {
			d := i - j
			if d < 0 {
				d = -d
			}
			if n-d < d {
				d = n - d
			}
			dist[i][j] = rat.FromInt(int64(d))
		}
		neighbors[i] = []int{(i + n - 1) % n, (i + 1) % n}
	}
	return New(fmt.Sprintf("ring-%d", n), dist, neighbors)
}

// Grid2D returns a w×h grid with Manhattan (hop-count) distances and gossip
// edges between grid-adjacent nodes. Node (x, y) has index y*w + x.
func Grid2D(w, h int) (*Network, error) {
	// A width- or height-1 grid is a line, not a grid: require both
	// dimensions >= 2 so the degenerate shapes fail loudly (use Line)
	// instead of silently collapsing.
	if w < 2 || h < 2 {
		return nil, fmt.Errorf("network: grid needs width and height >= 2, got %dx%d", w, h)
	}
	n := w * h
	dist := make([][]rat.Rat, n)
	neighbors := make([][]int, n)
	for i := 0; i < n; i++ {
		xi, yi := i%w, i/w
		dist[i] = make([]rat.Rat, n)
		for j := 0; j < n; j++ {
			xj, yj := j%w, j/w
			dx, dy := xi-xj, yi-yj
			if dx < 0 {
				dx = -dx
			}
			if dy < 0 {
				dy = -dy
			}
			dist[i][j] = rat.FromInt(int64(dx + dy))
		}
		if xi > 0 {
			neighbors[i] = append(neighbors[i], i-1)
		}
		if xi < w-1 {
			neighbors[i] = append(neighbors[i], i+1)
		}
		if yi > 0 {
			neighbors[i] = append(neighbors[i], i-w)
		}
		if yi < h-1 {
			neighbors[i] = append(neighbors[i], i+w)
		}
	}
	return New(fmt.Sprintf("grid-%dx%d", w, h), dist, neighbors)
}

// Star returns a star network: node 0 is the hub at distance d from every
// leaf; leaves are at distance 2d from each other. Used to model RBS-style
// beacon topologies (hub = beacon).
func Star(n int, d rat.Rat) (*Network, error) {
	if n < 3 {
		return nil, fmt.Errorf("network: star needs >= 3 nodes, got %d", n)
	}
	if d.Less(rat.FromInt(1)) {
		return nil, fmt.Errorf("network: star distance %s < 1", d)
	}
	two := rat.FromInt(2)
	dist := make([][]rat.Rat, n)
	neighbors := make([][]int, n)
	for i := range dist {
		dist[i] = make([]rat.Rat, n)
		for j := range dist[i] {
			switch {
			case i == j:
			case i == 0 || j == 0:
				dist[i][j] = d
			default:
				dist[i][j] = two.Mul(d)
			}
		}
		if i == 0 {
			for j := 1; j < n; j++ {
				neighbors[0] = append(neighbors[0], j)
			}
		} else {
			neighbors[i] = []int{0}
		}
	}
	return New(fmt.Sprintf("star-%d", n), dist, neighbors)
}

// RandomGeometric places n nodes uniformly in a side×side square (integer
// grid coordinates) and connects nodes within connectRadius. Distances are
// hop counts along shortest paths (so delay uncertainty is proportional to
// hop distance, matching the paper's footnote 2); unreachable pairs make the
// construction fail. Deterministic for a fixed seed.
func RandomGeometric(n int, side int64, connectRadius float64, seed int64) (*Network, error) {
	if n < 2 {
		return nil, fmt.Errorf("network: random geometric needs >= 2 nodes, got %d", n)
	}
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i] = rng.Float64() * float64(side)
		ys[i] = rng.Float64() * float64(side)
	}
	neighbors := make([][]int, n)
	r2 := connectRadius * connectRadius
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			dx, dy := xs[i]-xs[j], ys[i]-ys[j]
			if dx*dx+dy*dy <= r2 {
				neighbors[i] = append(neighbors[i], j)
			}
		}
	}
	dist, err := hopDistances(neighbors)
	if err != nil {
		return nil, fmt.Errorf("network: random geometric graph disconnected (seed %d)", seed)
	}
	return New(fmt.Sprintf("rgg-%d-seed%d", n, seed), dist, neighbors)
}
