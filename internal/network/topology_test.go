package network

import (
	"fmt"
	"testing"

	"gcs/internal/rat"
)

// generators under test, uniformly parameterized for the shared properties.
var topoCases = []struct {
	name  string
	build func() (*Network, error)
}{
	{"torus-3x4", func() (*Network, error) { return Torus(3, 4) }},
	{"torus-5x5", func() (*Network, error) { return Torus(5, 5) }},
	{"dreg-10-3", func() (*Network, error) { return DRegular(10, 3, 7) }},
	{"dreg-16-4", func() (*Network, error) { return DRegular(16, 4, 21) }},
	{"ba-12-2", func() (*Network, error) { return BarabasiAlbert(12, 2, 5) }},
	{"ba-20-1", func() (*Network, error) { return BarabasiAlbert(20, 1, 9) }},
	{"bdr-12-3", func() (*Network, error) { return BoundedDegreeRandom(12, 3, 3) }},
	{"bdr-16-4", func() (*Network, error) { return BoundedDegreeRandom(16, 4, 11) }},
}

// bfsHops recomputes hop distances from the published adjacency,
// independently of the generator's own BFS.
func bfsHops(w *Network, s int) []int {
	hops := make([]int, w.N())
	for i := range hops {
		hops[i] = -1
	}
	hops[s] = 0
	queue := []int{s}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range w.Neighbors(u) {
			if hops[v] == -1 {
				hops[v] = hops[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return hops
}

func TestGeneratorDistancesMatchBFS(t *testing.T) {
	for _, tc := range topoCases {
		t.Run(tc.name, func(t *testing.T) {
			w, err := tc.build()
			if err != nil {
				t.Fatal(err)
			}
			var diam int
			for i := 0; i < w.N(); i++ {
				hops := bfsHops(w, i)
				for j := 0; j < w.N(); j++ {
					if hops[j] < 0 {
						t.Fatalf("adjacency disconnected: no path %d -> %d", i, j)
					}
					if i != j && hops[j] > diam {
						diam = hops[j]
					}
					if !w.Dist(i, j).Equal(rat.FromInt(int64(hops[j]))) {
						t.Fatalf("Dist(%d,%d) = %s, BFS says %d", i, j, w.Dist(i, j), hops[j])
					}
				}
			}
			if !w.Diameter().Equal(rat.FromInt(int64(diam))) {
				t.Fatalf("Diameter() = %s, BFS recomputation says %d", w.Diameter(), diam)
			}
		})
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	for _, tc := range topoCases {
		t.Run(tc.name, func(t *testing.T) {
			a, err := tc.build()
			if err != nil {
				t.Fatal(err)
			}
			b, err := tc.build()
			if err != nil {
				t.Fatal(err)
			}
			if a.Name() != b.Name() || a.N() != b.N() {
				t.Fatalf("rebuild differs: %s/%d vs %s/%d", a.Name(), a.N(), b.Name(), b.N())
			}
			for i := 0; i < a.N(); i++ {
				if fmt.Sprint(a.Neighbors(i)) != fmt.Sprint(b.Neighbors(i)) {
					t.Fatalf("node %d adjacency differs: %v vs %v", i, a.Neighbors(i), b.Neighbors(i))
				}
				for j := 0; j < a.N(); j++ {
					if !a.Dist(i, j).Equal(b.Dist(i, j)) {
						t.Fatalf("Dist(%d,%d) differs: %s vs %s", i, j, a.Dist(i, j), b.Dist(i, j))
					}
				}
			}
		})
	}
}

func TestGeneratorDegreeBounds(t *testing.T) {
	torus, err := Torus(4, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < torus.N(); i++ {
		if len(torus.Neighbors(i)) != 4 {
			t.Fatalf("torus node %d has degree %d, want 4", i, len(torus.Neighbors(i)))
		}
	}
	dreg, err := DRegular(14, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < dreg.N(); i++ {
		if len(dreg.Neighbors(i)) != 3 {
			t.Fatalf("d-regular node %d has degree %d, want 3", i, len(dreg.Neighbors(i)))
		}
	}
	ba, err := BarabasiAlbert(15, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < ba.N(); i++ {
		if len(ba.Neighbors(i)) < 2 {
			t.Fatalf("scale-free node %d has degree %d, want >= 2", i, len(ba.Neighbors(i)))
		}
	}
	bdr, err := BoundedDegreeRandom(15, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < bdr.N(); i++ {
		if d := len(bdr.Neighbors(i)); d < 1 || d > 3 {
			t.Fatalf("bounded-degree node %d has degree %d, want 1..3", i, d)
		}
	}
}

func TestTorusDiameter(t *testing.T) {
	// The torus diameter is floor(w/2) + floor(h/2).
	for _, c := range []struct {
		w, h int
		want int64
	}{
		{3, 3, 2}, {3, 4, 3}, {4, 4, 4}, {5, 5, 4}, {3, 7, 4},
	} {
		w, err := Torus(c.w, c.h)
		if err != nil {
			t.Fatal(err)
		}
		if !w.Diameter().Equal(rat.FromInt(c.want)) {
			t.Errorf("Torus(%d,%d) diameter = %s, want %d", c.w, c.h, w.Diameter(), c.want)
		}
	}
}

// TestDegenerateSizesRejected pins the unified size validation: every
// constructor rejects shapes that collapse into a smaller family instead of
// silently building them.
func TestDegenerateSizesRejected(t *testing.T) {
	cases := []struct {
		name  string
		build func() (*Network, error)
	}{
		{"line-1", func() (*Network, error) { return Line(1) }},
		{"ring-2", func() (*Network, error) { return Ring(2) }},
		{"star-2", func() (*Network, error) { return Star(2, rat.FromInt(1)) }},
		{"complete-1", func() (*Network, error) { return Complete(1, rat.FromInt(1)) }},
		{"grid-1x5", func() (*Network, error) { return Grid2D(1, 5) }},
		{"grid-5x1", func() (*Network, error) { return Grid2D(5, 1) }},
		{"torus-2x3", func() (*Network, error) { return Torus(2, 3) }},
		{"torus-3x2", func() (*Network, error) { return Torus(3, 2) }},
		{"rgg-1", func() (*Network, error) { return RandomGeometric(1, 10, 4, 1) }},
		{"dreg-odd", func() (*Network, error) { return DRegular(5, 3, 1) }},
		{"dreg-deg-too-high", func() (*Network, error) { return DRegular(4, 4, 1) }},
		{"dreg-deg-too-low", func() (*Network, error) { return DRegular(6, 1, 1) }},
		{"ba-too-small", func() (*Network, error) { return BarabasiAlbert(3, 2, 1) }},
		{"bdr-deg-1", func() (*Network, error) { return BoundedDegreeRandom(6, 1, 1) }},
	}
	for _, tc := range cases {
		if _, err := tc.build(); err == nil {
			t.Errorf("%s: degenerate size accepted, want error", tc.name)
		}
	}
}
