// Random and structured topology generators for the scenario matrix.
//
// The paper's bounds are parameterized by the diameter D, so the scenario
// matrix needs families whose diameter scales independently of n: the torus
// (D ~ (w+h)/2), seeded d-regular random graphs (expanders, D ~ log n),
// Barabási–Albert scale-free graphs (small D via hubs), and bounded-degree
// random graphs (larger D at the same n). All generators report exact
// hop-count distances (BFS recomputed, matching footnote 2's
// delay-uncertainty-proportional-to-distance reading) and are deterministic
// for a fixed seed.
package network

import (
	"fmt"
	"math/rand"
	"sort"

	"gcs/internal/rat"
)

// hopDistances turns a symmetric adjacency into an exact hop-count distance
// matrix via BFS from every node, and errors if the graph is disconnected.
// It also sorts each neighbor list in place so generator output is canonical
// regardless of construction order.
func hopDistances(neighbors [][]int) ([][]rat.Rat, error) {
	n := len(neighbors)
	for i := range neighbors {
		sort.Ints(neighbors[i])
	}
	const unreach = -1
	hops := make([]int, n)
	dist := make([][]rat.Rat, n)
	for s := 0; s < n; s++ {
		for i := range hops {
			hops[i] = unreach
		}
		hops[s] = 0
		queue := []int{s}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range neighbors[u] {
				if hops[v] == unreach {
					hops[v] = hops[u] + 1
					queue = append(queue, v)
				}
			}
		}
		dist[s] = make([]rat.Rat, n)
		for j := 0; j < n; j++ {
			if j == s {
				continue
			}
			if hops[j] == unreach {
				return nil, fmt.Errorf("network: nodes %d and %d share no path", s, j)
			}
			dist[s][j] = rat.FromInt(int64(hops[j]))
		}
	}
	return dist, nil
}

// addEdge records an undirected edge in the adjacency under construction.
func addEdge(neighbors [][]int, i, j int) {
	neighbors[i] = append(neighbors[i], j)
	neighbors[j] = append(neighbors[j], i)
}

// hasEdge reports whether {i, j} is already present (linear scan: generator
// adjacencies are bounded-degree).
func hasEdge(neighbors [][]int, i, j int) bool {
	for _, v := range neighbors[i] {
		if v == j {
			return true
		}
	}
	return false
}

// Torus returns the w×h torus: the grid with wraparound edges, so every node
// has degree 4 and the diameter is floor(w/2)+floor(h/2) — about half the
// equal-sized grid's. Node (x, y) has index y*w + x.
func Torus(w, h int) (*Network, error) {
	// Width or height 2 would duplicate the wraparound edge onto the grid
	// edge; require >= 3 in both dimensions, matching the grid convention
	// of rejecting shapes that collapse into a smaller family.
	if w < 3 || h < 3 {
		return nil, fmt.Errorf("network: torus needs width and height >= 3, got %dx%d", w, h)
	}
	n := w * h
	neighbors := make([][]int, n)
	for i := 0; i < n; i++ {
		x, y := i%w, i/w
		addEdge(neighbors, i, y*w+(x+1)%w)
		addEdge(neighbors, i, ((y+1)%h)*w+x)
	}
	dist, err := hopDistances(neighbors)
	if err != nil {
		return nil, err
	}
	return New(fmt.Sprintf("torus-%dx%d", w, h), dist, neighbors)
}

// DRegular returns a connected random d-regular graph on n nodes via the
// pairing (configuration) model: d stubs per node, a seeded shuffle, stubs
// paired consecutively. Pairings with self-loops, duplicate edges, or a
// disconnected result are rejected and the construction retried with a
// derived seed, so the output is deterministic in (n, d, seed). Random
// regular graphs with d >= 3 are expanders with high probability, giving the
// scenario matrix its D ~ log n family.
func DRegular(n, d int, seed int64) (*Network, error) {
	if n < 2 {
		return nil, fmt.Errorf("network: d-regular needs >= 2 nodes, got %d", n)
	}
	if d < 2 || d >= n {
		return nil, fmt.Errorf("network: d-regular degree %d outside [2, %d]", d, n-1)
	}
	if n*d%2 != 0 {
		return nil, fmt.Errorf("network: d-regular needs n*d even, got %d*%d", n, d)
	}
	const maxAttempts = 256
attempt:
	for a := 0; a < maxAttempts; a++ {
		rng := rand.New(rand.NewSource(seed + int64(a)*0x9e3779b9))
		stubs := make([]int, 0, n*d)
		for i := 0; i < n; i++ {
			for k := 0; k < d; k++ {
				stubs = append(stubs, i)
			}
		}
		rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
		neighbors := make([][]int, n)
		for k := 0; k < len(stubs); k += 2 {
			i, j := stubs[k], stubs[k+1]
			if i == j || hasEdge(neighbors, i, j) {
				continue attempt
			}
			addEdge(neighbors, i, j)
		}
		dist, err := hopDistances(neighbors)
		if err != nil {
			continue attempt
		}
		return New(fmt.Sprintf("dreg-%d-d%d-seed%d", n, d, seed), dist, neighbors)
	}
	return nil, fmt.Errorf("network: no simple connected %d-regular graph on %d nodes after %d attempts (seed %d)", d, n, maxAttempts, seed)
}

// BarabasiAlbert returns a scale-free graph by preferential attachment: a
// complete core on m+1 nodes, then each new node attaches to m distinct
// existing nodes chosen proportionally to their degree (sampling the
// edge-endpoint multiset). Connected by construction; every node has degree
// >= m; hubs keep the diameter small as n grows. Deterministic in
// (n, m, seed).
func BarabasiAlbert(n, m int, seed int64) (*Network, error) {
	if m < 1 {
		return nil, fmt.Errorf("network: barabasi-albert needs attachment degree >= 1, got %d", m)
	}
	if n < m+2 {
		return nil, fmt.Errorf("network: barabasi-albert needs >= %d nodes for m=%d, got %d", m+2, m, n)
	}
	rng := rand.New(rand.NewSource(seed))
	neighbors := make([][]int, n)
	// endpoints holds every edge endpoint once; uniform draws from it are
	// degree-proportional draws over nodes.
	var endpoints []int
	for i := 0; i <= m; i++ {
		for j := i + 1; j <= m; j++ {
			addEdge(neighbors, i, j)
			endpoints = append(endpoints, i, j)
		}
	}
	for v := m + 1; v < n; v++ {
		targets := make(map[int]bool, m)
		for len(targets) < m {
			t := endpoints[rng.Intn(len(endpoints))]
			targets[t] = true
		}
		// Sorted iteration keeps edge insertion (and so endpoint growth)
		// deterministic: map iteration order must not leak into the graph.
		ts := make([]int, 0, m)
		for t := range targets {
			ts = append(ts, t)
		}
		sort.Ints(ts)
		for _, t := range ts {
			addEdge(neighbors, v, t)
			endpoints = append(endpoints, v, t)
		}
	}
	dist, err := hopDistances(neighbors)
	if err != nil {
		return nil, err
	}
	return New(fmt.Sprintf("ba-%d-m%d-seed%d", n, m, seed), dist, neighbors)
}

// BoundedDegreeRandom returns a connected random graph in which every node
// has degree <= maxDeg: a random spanning tree grown under the cap, then up
// to n/2 extra random edges (skipped when they would collide or breach the
// cap). Without hubs the diameter stays comparatively large, complementing
// the expander and scale-free families. Deterministic in (n, maxDeg, seed).
func BoundedDegreeRandom(n, maxDeg int, seed int64) (*Network, error) {
	if n < 2 {
		return nil, fmt.Errorf("network: bounded-degree needs >= 2 nodes, got %d", n)
	}
	if maxDeg < 2 {
		return nil, fmt.Errorf("network: bounded-degree needs max degree >= 2, got %d", maxDeg)
	}
	rng := rand.New(rand.NewSource(seed))
	neighbors := make([][]int, n)
	for v := 1; v < n; v++ {
		// Attach v to a uniformly random earlier node with spare degree.
		// One always exists: the first v nodes hold v-1 tree edges, so
		// their degree sum 2(v-1) is below the v*maxDeg capacity whenever
		// maxDeg >= 2.
		var candidates []int
		for u := 0; u < v; u++ {
			if len(neighbors[u]) < maxDeg {
				candidates = append(candidates, u)
			}
		}
		addEdge(neighbors, v, candidates[rng.Intn(len(candidates))])
	}
	for e := 0; e < n/2; e++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i == j || hasEdge(neighbors, i, j) ||
			len(neighbors[i]) >= maxDeg || len(neighbors[j]) >= maxDeg {
			continue
		}
		addEdge(neighbors, i, j)
	}
	dist, err := hopDistances(neighbors)
	if err != nil {
		return nil, err
	}
	return New(fmt.Sprintf("bdr-%d-deg%d-seed%d", n, maxDeg, seed), dist, neighbors)
}
