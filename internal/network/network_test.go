package network

import (
	"testing"

	"gcs/internal/rat"
)

func ri(n int64) rat.Rat { return rat.FromInt(n) }

func TestLine(t *testing.T) {
	w, err := Line(5)
	if err != nil {
		t.Fatal(err)
	}
	if w.N() != 5 {
		t.Fatalf("N = %d", w.N())
	}
	if !w.Dist(0, 4).Equal(ri(4)) {
		t.Errorf("Dist(0,4) = %s, want 4", w.Dist(0, 4))
	}
	if !w.Dist(2, 3).Equal(ri(1)) {
		t.Errorf("Dist(2,3) = %s, want 1", w.Dist(2, 3))
	}
	if !w.Diameter().Equal(ri(4)) {
		t.Errorf("Diameter = %s, want 4", w.Diameter())
	}
	if got := w.Neighbors(0); len(got) != 1 || got[0] != 1 {
		t.Errorf("Neighbors(0) = %v", got)
	}
	if got := w.Neighbors(2); len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Errorf("Neighbors(2) = %v", got)
	}
	if got := w.Neighbors(4); len(got) != 1 || got[0] != 3 {
		t.Errorf("Neighbors(4) = %v", got)
	}
	if _, err := Line(1); err == nil {
		t.Error("Line(1) should error")
	}
}

func TestTwoNode(t *testing.T) {
	w, err := TwoNode(ri(7))
	if err != nil {
		t.Fatal(err)
	}
	if !w.Dist(0, 1).Equal(ri(7)) {
		t.Errorf("Dist = %s", w.Dist(0, 1))
	}
	if _, err := TwoNode(rat.MustFrac(1, 2)); err == nil {
		t.Error("distance < 1 should error")
	}
}

func TestComplete(t *testing.T) {
	w, err := Complete(4, ri(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Neighbors(2)) != 3 {
		t.Errorf("Neighbors(2) = %v", w.Neighbors(2))
	}
	if !w.Diameter().Equal(ri(3)) {
		t.Errorf("Diameter = %s", w.Diameter())
	}
}

func TestRing(t *testing.T) {
	w, err := Ring(6)
	if err != nil {
		t.Fatal(err)
	}
	if !w.Dist(0, 3).Equal(ri(3)) {
		t.Errorf("Dist(0,3) = %s, want 3", w.Dist(0, 3))
	}
	if !w.Dist(0, 5).Equal(ri(1)) {
		t.Errorf("Dist(0,5) = %s, want 1 (wraparound)", w.Dist(0, 5))
	}
	if !w.Diameter().Equal(ri(3)) {
		t.Errorf("Diameter = %s, want 3", w.Diameter())
	}
}

func TestGrid2D(t *testing.T) {
	w, err := Grid2D(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Node (x=0,y=0) is 0; (x=2,y=1) is 5. Manhattan distance 3.
	if !w.Dist(0, 5).Equal(ri(3)) {
		t.Errorf("Dist(0,5) = %s, want 3", w.Dist(0, 5))
	}
	// Corner has 2 neighbors, middle-edge has 3.
	if len(w.Neighbors(0)) != 2 {
		t.Errorf("Neighbors(0) = %v", w.Neighbors(0))
	}
	if len(w.Neighbors(1)) != 3 {
		t.Errorf("Neighbors(1) = %v", w.Neighbors(1))
	}
}

func TestStar(t *testing.T) {
	w, err := Star(4, ri(1))
	if err != nil {
		t.Fatal(err)
	}
	if !w.Dist(0, 2).Equal(ri(1)) {
		t.Errorf("hub-leaf dist = %s", w.Dist(0, 2))
	}
	if !w.Dist(1, 2).Equal(ri(2)) {
		t.Errorf("leaf-leaf dist = %s", w.Dist(1, 2))
	}
	if len(w.Neighbors(0)) != 3 || len(w.Neighbors(1)) != 1 {
		t.Error("star adjacency wrong")
	}
}

func TestRandomGeometricDeterministic(t *testing.T) {
	a, err := RandomGeometric(20, 10, 4.5, 42)
	if err != nil {
		t.Skip("seed 42 disconnected; acceptable for this geometry")
	}
	b, err := RandomGeometric(20, 10, 4.5, 42)
	if err != nil {
		t.Fatal(err)
	}
	a.Pairs(func(i, j int) {
		if !a.Dist(i, j).Equal(b.Dist(i, j)) {
			t.Fatalf("nondeterministic distances at (%d,%d)", i, j)
		}
	})
	// Triangle inequality for hop metrics.
	n := a.N()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				if i == j || j == k || i == k {
					continue
				}
				if a.Dist(i, k).Greater(a.Dist(i, j).Add(a.Dist(j, k))) {
					t.Fatalf("triangle inequality violated at (%d,%d,%d)", i, j, k)
				}
			}
		}
	}
}

func TestNewValidation(t *testing.T) {
	half := rat.MustFrac(1, 2)
	tests := []struct {
		name string
		dist [][]rat.Rat
		adj  [][]int
	}{
		{"too small", [][]rat.Rat{{{}}}, [][]int{{}}},
		{"asymmetric", [][]rat.Rat{{{}, ri(1)}, {ri(2), {}}}, [][]int{{1}, {0}}},
		{"nonzero diagonal", [][]rat.Rat{{ri(1), ri(1)}, {ri(1), {}}}, [][]int{{1}, {0}}},
		{"sub-unit distance", [][]rat.Rat{{{}, half}, {half, {}}}, [][]int{{1}, {0}}},
		{"bad neighbor", [][]rat.Rat{{{}, ri(1)}, {ri(1), {}}}, [][]int{{5}, {0}}},
		{"self neighbor", [][]rat.Rat{{{}, ri(1)}, {ri(1), {}}}, [][]int{{0}, {0}}},
		{"ragged", [][]rat.Rat{{{}, ri(1)}, {ri(1)}}, [][]int{{1}, {0}}},
		{"adjacency size", [][]rat.Rat{{{}, ri(1)}, {ri(1), {}}}, [][]int{{1}}},
	}
	for _, tt := range tests {
		if _, err := New(tt.name, tt.dist, tt.adj); err == nil {
			t.Errorf("%s: want error", tt.name)
		}
	}
}

func TestPairs(t *testing.T) {
	w, _ := Line(4)
	count := 0
	w.Pairs(func(i, j int) {
		if i >= j {
			t.Errorf("pair (%d,%d) not ordered", i, j)
		}
		count++
	})
	if count != 6 {
		t.Errorf("pairs = %d, want 6", count)
	}
}
