package perf

import (
	"fmt"
	"math"
	"regexp"
	"sort"
	"strings"
)

// Gate is the perf-regression policy: per-unit relative thresholds applied
// to the median of each benchmark's repetitions. A zero threshold disables
// that unit's gate.
type Gate struct {
	// MaxNsRegress is the tolerated relative ns/op increase (0.30 = +30%).
	MaxNsRegress float64
	// MaxAllocsRegress is the tolerated relative allocs/op increase
	// (0.20 = +20%).
	MaxAllocsRegress float64
	// Match restricts gating to benchmarks whose (suffix-stripped) name
	// matches; nil gates everything present in both runs.
	Match *regexp.Regexp
}

// Delta is one gated (benchmark, unit) comparison. Ratio is head/base − 1;
// a base median of zero with a nonzero head reports +Inf (any growth from
// zero is a regression).
type Delta struct {
	Bench    string
	Unit     string
	Base     float64
	Head     float64
	Ratio    float64
	Exceeded bool
}

// Compare gates head against base: for every benchmark present in both runs
// (and matching the gate's name filter), the medians of ns/op and allocs/op
// are compared against the thresholds. Benchmarks present on only one side
// are skipped — a brand-new benchmark has no baseline to regress from, and a
// deleted one has nothing to protect.
func (g Gate) Compare(base, head map[string][]BenchLine) []Delta {
	names := make([]string, 0, len(head))
	for name := range head {
		if _, ok := base[name]; !ok {
			continue
		}
		if g.Match != nil && !g.Match.MatchString(name) {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)

	var out []Delta
	for _, name := range names {
		for _, gate := range []struct {
			unit      string
			threshold float64
		}{
			{"ns/op", g.MaxNsRegress},
			{"allocs/op", g.MaxAllocsRegress},
		} {
			if gate.threshold <= 0 {
				continue
			}
			b, bok := medianOf(base[name], gate.unit)
			h, hok := medianOf(head[name], gate.unit)
			if !bok || !hok {
				continue
			}
			d := Delta{Bench: name, Unit: gate.unit, Base: b, Head: h}
			switch {
			case b == 0 && h == 0:
				d.Ratio = 0
			case b == 0:
				d.Ratio = math.Inf(1)
			default:
				d.Ratio = h/b - 1
			}
			d.Exceeded = d.Ratio > gate.threshold
			out = append(out, d)
		}
	}
	return out
}

// medianOf returns the median of unit across a benchmark's repetitions,
// reporting false when no repetition carries the unit.
func medianOf(lines []BenchLine, unit string) (float64, bool) {
	vals := make([]float64, 0, len(lines))
	for _, l := range lines {
		if v, ok := l.Values[unit]; ok {
			vals = append(vals, v)
		}
	}
	if len(vals) == 0 {
		return 0, false
	}
	sort.Float64s(vals)
	n := len(vals)
	if n%2 == 1 {
		return vals[n/2], true
	}
	return (vals[n/2-1] + vals[n/2]) / 2, true
}

// Render formats deltas as an aligned report, flagging exceeded gates.
func Render(deltas []Delta) string {
	if len(deltas) == 0 {
		return "perf gate: no gated benchmarks present in both runs\n"
	}
	var b strings.Builder
	for _, d := range deltas {
		flag := "ok"
		if d.Exceeded {
			flag = "REGRESSION"
		}
		ratio := fmt.Sprintf("%+.1f%%", d.Ratio*100)
		if math.IsInf(d.Ratio, 1) {
			ratio = "+Inf"
		}
		fmt.Fprintf(&b, "%-12s %-44s %-10s %14.1f → %14.1f  (%s)\n",
			flag, d.Bench, d.Unit, d.Base, d.Head, ratio)
	}
	return b.String()
}

// Failures filters deltas down to exceeded gates.
func Failures(deltas []Delta) []Delta {
	var out []Delta
	for _, d := range deltas {
		if d.Exceeded {
			out = append(out, d)
		}
	}
	return out
}
