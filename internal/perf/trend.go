package perf

import (
	"fmt"
	"sort"
	"strings"
)

// Trend alerting over the bench history: the PR-time gate compares two
// commits and so can be walked past by a sequence of under-threshold
// regressions. The trend alert watches the curve instead — per benchmark
// figure, the median of the last Window history entries against the median
// of the Window entries before them — and fails when the recent window
// regressed past the tolerance. Medians on both sides mean one noisy commit
// can neither raise an alert nor mask one.

// TrendAlert is one benchmark figure's windowed comparison.
type TrendAlert struct {
	// Name and Unit identify the figure ("BenchmarkEngineStream-8", "ns/op").
	Name string
	Unit string
	// Prior and Recent are the window medians; Delta is the relative change
	// (Recent/Prior − 1, positive = slower/more).
	Prior  float64
	Recent float64
	Delta  float64
	// Points is how many history entries carry this figure.
	Points int
	// Exceeded marks Delta > the tolerance the trend ran with.
	Exceeded bool
}

// Trend compares the last window entries of a history series against the
// window before them, per benchmark figure. Figures appearing in fewer than
// 2×window entries are skipped — no alert can be meaningful before both
// windows are full. All gated units are lower-is-better, so only increases
// regress.
func Trend(h *History, series string, window int, maxRegress float64) []TrendAlert {
	if window < 1 {
		window = 1
	}
	entries := h.Entries[series]
	points := make(map[string][]float64) // "name\x00unit" → values in entry order
	var order []string
	for _, e := range entries {
		for _, b := range e.Benches {
			key := b.Name + "\x00" + b.Unit
			if _, ok := points[key]; !ok {
				order = append(order, key)
			}
			points[key] = append(points[key], b.Value)
		}
	}
	sort.Strings(order)
	var out []TrendAlert
	for _, key := range order {
		vals := points[key]
		if len(vals) < 2*window {
			continue
		}
		name, unit, _ := strings.Cut(key, "\x00")
		recent := medianFloat(vals[len(vals)-window:])
		prior := medianFloat(vals[len(vals)-2*window : len(vals)-window])
		a := TrendAlert{Name: name, Unit: unit, Prior: prior, Recent: recent, Points: len(vals)}
		if prior > 0 {
			a.Delta = recent/prior - 1
			a.Exceeded = a.Delta > maxRegress
		}
		out = append(out, a)
	}
	return out
}

// TrendFailures filters the exceeded alerts.
func TrendFailures(alerts []TrendAlert) []TrendAlert {
	var out []TrendAlert
	for _, a := range alerts {
		if a.Exceeded {
			out = append(out, a)
		}
	}
	return out
}

// RenderTrend formats trend alerts as an aligned report.
func RenderTrend(alerts []TrendAlert, window int) string {
	if len(alerts) == 0 {
		return fmt.Sprintf("perf trend: no figure has %d history entries yet — nothing to compare\n", 2*window)
	}
	var b strings.Builder
	for _, a := range alerts {
		flag := "ok"
		if a.Exceeded {
			flag = "TREND REGRESSION"
		}
		fmt.Fprintf(&b, "%-44s %-10s last %d: %12.2f  prior %d: %12.2f  %+7.2f%%  %s\n",
			a.Name, a.Unit, window, a.Recent, window, a.Prior, a.Delta*100, flag)
	}
	return b.String()
}

// medianFloat is medianOf for a bare value series.
func medianFloat(vals []float64) float64 {
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}
