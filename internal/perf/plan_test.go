package perf

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

func TestNewCostModelPrefersSearchWorkload(t *testing.T) {
	ms := []Measurement{
		{Name: "EngineStream/dur=32", NsPerStep: 4000},
		{Name: "SearchEndToEnd/E13", NsPerStep: 1700},
		{Name: "SearchPrefixCached/E13", NsPerStep: 1500},
	}
	m := NewCostModel(ms)
	if m.NsPerStep != 1500 || m.Source != "SearchPrefixCached/E13" {
		t.Fatalf("got %+v, want the prefix-cached search measurement", m)
	}
	// Zero ns/step measurements are skipped, falling through the preference
	// order.
	ms[2].NsPerStep = 0
	if m = NewCostModel(ms); m.Source != "SearchEndToEnd/E13" {
		t.Fatalf("got %+v, want fallthrough to SearchEndToEnd", m)
	}
	if m = NewCostModel(nil); m.NsPerStep != DefaultNsPerStep || m.Source != "default" {
		t.Fatalf("empty snapshot must yield the default model, got %+v", m)
	}
}

func TestLoadCostModelDegradesGracefully(t *testing.T) {
	m := LoadCostModel(filepath.Join(t.TempDir(), "missing.json"))
	if m.NsPerStep != DefaultNsPerStep || m.Source != "default" {
		t.Fatalf("missing snapshot must price with the default model, got %+v", m)
	}
	path := filepath.Join(t.TempDir(), "BENCH_perf.json")
	snapshot := `[{"name": "EngineStream/dur=32", "ns_per_step": 4200.5}]`
	if err := os.WriteFile(path, []byte(snapshot), 0o644); err != nil {
		t.Fatal(err)
	}
	if m = LoadCostModel(path); m.NsPerStep != 4200.5 || m.Source != "EngineStream/dur=32" {
		t.Fatalf("got %+v, want the snapshot's EngineStream figure", m)
	}
}

func TestHistoryRoundTrip(t *testing.T) {
	h, err := ParseHistory(nil)
	if err != nil {
		t.Fatal(err)
	}
	h.RepoURL = "https://example.com/owner/repo"
	h.Append(HistorySeries, HistoryEntry{
		Commit: HistoryCommit{ID: "abc", Message: "m", Timestamp: "2026-08-08T00:00:00Z"},
		Date:   1754611200000,
		Tool:   "go",
		Benches: []HistoryBench{
			{Name: "BenchmarkSearchPrefixCached", Value: 9000000, Unit: "ns/op", Extra: "6 reps"},
		},
	})
	data, err := h.Render()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "window.BENCHMARK_DATA = ") {
		t.Fatalf("rendered history is not a data.js assignment: %q", data[:40])
	}
	back, err := ParseHistory(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.LastUpdate != 1754611200000 || back.RepoURL != h.RepoURL {
		t.Fatalf("round trip lost header fields: %+v", back)
	}
	entries := back.Entries[HistorySeries]
	if len(entries) != 1 || entries[0].Commit.ID != "abc" || len(entries[0].Benches) != 1 {
		t.Fatalf("round trip lost entries: %+v", entries)
	}
	if _, err := ParseHistory([]byte("window.BENCHMARK_DATA = {nonsense")); err == nil {
		t.Fatal("corrupt history must not parse")
	}
}

func TestEntryFromBenchMediansAndFilter(t *testing.T) {
	input := `goos: linux
BenchmarkSearchPrefixCached-8  2  500000 ns/op  2000 allocs/op
BenchmarkSearchPrefixCached-8  2  900000 ns/op  2000 allocs/op
BenchmarkSearchPrefixCached-8  2  600000 ns/op  2000 allocs/op
BenchmarkUngated-8             9  100 ns/op     10 allocs/op
PASS
`
	lines, err := ParseBench(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	e := EntryFromBench(lines, HistoryCommit{ID: "abc"}, 42, regexp.MustCompile("SearchPrefixCached"))
	if e.Date != 42 || e.Tool != "go" {
		t.Fatalf("bad entry header: %+v", e)
	}
	if len(e.Benches) != 2 {
		t.Fatalf("got %d figures, want ns + allocs for the one matching benchmark: %+v", len(e.Benches), e.Benches)
	}
	for _, b := range e.Benches {
		switch b.Unit {
		case "ns/op":
			if b.Value != 600000 {
				t.Fatalf("median ns/op = %v, want 600000", b.Value)
			}
		case "allocs/op":
			if !strings.HasSuffix(b.Name, " - allocs") || b.Value != 2000 {
				t.Fatalf("bad allocs figure: %+v", b)
			}
		default:
			t.Fatalf("unexpected unit: %+v", b)
		}
		if b.Extra != "3 reps" {
			t.Fatalf("extra = %q, want rep count", b.Extra)
		}
	}
}

func TestCostModelLanes(t *testing.T) {
	ms := []Measurement{
		{Name: "SearchPrefixCached/E13", Lane: "fixed", NsPerStep: 500},
		{Name: "SearchPrefixCached/E13/rat", Lane: "rat", NsPerStep: 1500},
	}
	m := NewCostModel(ms)
	if m.NsPerStep != 500 || m.Source != "SearchPrefixCached/E13" {
		t.Fatalf("lane-agnostic model %+v, want the first preferred measurement", m)
	}
	if ns, src := m.ForLane("fixed"); ns != 500 || src != "SearchPrefixCached/E13" {
		t.Fatalf("fixed lane priced %v (%s)", ns, src)
	}
	if ns, src := m.ForLane("rat"); ns != 1500 || src != "SearchPrefixCached/E13/rat" {
		t.Fatalf("rat lane priced %v (%s), want the rat twin's measurement", ns, src)
	}
	// An unknown lane falls back to the lane-agnostic figure.
	if ns, src := m.ForLane("other"); ns != 500 || src != "SearchPrefixCached/E13" {
		t.Fatalf("unknown lane priced %v (%s), want fallback", ns, src)
	}
	// Untagged (pre-lane) snapshots price every lane from the agnostic model.
	legacy := NewCostModel([]Measurement{{Name: "EngineStream/dur=32", NsPerStep: 4000}})
	if legacy.Lanes != nil {
		t.Fatalf("untagged snapshot produced lane costs: %+v", legacy.Lanes)
	}
	if ns, src := legacy.ForLane("fixed"); ns != 4000 || src != "EngineStream/dur=32" {
		t.Fatalf("legacy snapshot priced fixed lane %v (%s)", ns, src)
	}
}
