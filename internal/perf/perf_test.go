package perf

import (
	"math"
	"regexp"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: gcs
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkEngineStream/dur=32-8   	       3	  39460716 ns/op	      6773 events/run	         2.899 globalSkew	 1806136 B/op	   27204 allocs/op
BenchmarkEngineStream/dur=32-8   	       3	  40160716 ns/op	      6773 events/run	         2.899 globalSkew	 1806136 B/op	   27188 allocs/op
BenchmarkEngineStream/dur=32-8   	       3	  38960716 ns/op	      6773 events/run	         2.899 globalSkew	 1806136 B/op	   27210 allocs/op
BenchmarkSearchPrefixCached-8    	       2	 512000000 ns/op	       311.0 steps/cand	       648.0 resim-steps/cand
PASS
ok  	gcs	0.644s
`

func TestParseBench(t *testing.T) {
	got, err := ParseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	stream := got["BenchmarkEngineStream/dur=32"]
	if len(stream) != 3 {
		t.Fatalf("want 3 repetitions of EngineStream, got %d (keys: %v)", len(stream), keys(got))
	}
	if stream[0].Iters != 3 {
		t.Fatalf("iters = %d, want 3", stream[0].Iters)
	}
	if v := stream[0].Values["ns/op"]; v != 39460716 {
		t.Fatalf("ns/op = %v", v)
	}
	if v := stream[0].Values["allocs/op"]; v != 27204 {
		t.Fatalf("allocs/op = %v", v)
	}
	cached := got["BenchmarkSearchPrefixCached"]
	if len(cached) != 1 {
		t.Fatalf("want 1 repetition of SearchPrefixCached, got %d", len(cached))
	}
	if v := cached[0].Values["steps/cand"]; v != 311 {
		t.Fatalf("steps/cand = %v", v)
	}
}

func TestParseBenchMalformed(t *testing.T) {
	if _, err := ParseBench(strings.NewReader("BenchmarkBroken 3 notanumber ns/op\n")); err == nil {
		t.Fatal("want error on malformed value")
	}
}

func TestTrimProcs(t *testing.T) {
	cases := map[string]string{
		"BenchmarkFoo-8":           "BenchmarkFoo",
		"BenchmarkFoo/sub=1-16":    "BenchmarkFoo/sub=1",
		"BenchmarkFoo":             "BenchmarkFoo",
		"BenchmarkFoo-bar":         "BenchmarkFoo-bar",
		"BenchmarkSearchEndToEnd-": "BenchmarkSearchEndToEnd-",
	}
	for in, want := range cases {
		if got := trimProcs(in); got != want {
			t.Errorf("trimProcs(%q) = %q, want %q", in, got, want)
		}
	}
}

func benchMap(name string, ns, allocs float64) map[string][]BenchLine {
	return map[string][]BenchLine{
		name: {{Name: name, Iters: 1, Values: map[string]float64{"ns/op": ns, "allocs/op": allocs}}},
	}
}

func TestGateCompare(t *testing.T) {
	g := Gate{MaxNsRegress: 0.30, MaxAllocsRegress: 0.20}

	// Within thresholds: +29% ns, +19% allocs.
	deltas := g.Compare(benchMap("BenchmarkX", 100, 100), benchMap("BenchmarkX", 129, 119))
	if len(deltas) != 2 {
		t.Fatalf("want 2 deltas, got %d", len(deltas))
	}
	if len(Failures(deltas)) != 0 {
		t.Fatalf("no failures expected, got %+v", Failures(deltas))
	}

	// ns/op over by a hair, allocs over its tighter gate.
	deltas = g.Compare(benchMap("BenchmarkX", 100, 100), benchMap("BenchmarkX", 131, 121))
	fails := Failures(deltas)
	if len(fails) != 2 {
		t.Fatalf("want both units to fail, got %+v", fails)
	}

	// allocs at exactly +20% is tolerated (strictly-greater gate).
	deltas = g.Compare(benchMap("BenchmarkX", 100, 100), benchMap("BenchmarkX", 100, 120))
	if len(Failures(deltas)) != 0 {
		t.Fatalf("boundary +20%% must pass, got %+v", Failures(deltas))
	}

	// Growth from a zero-alloc baseline is an infinite-ratio regression.
	deltas = g.Compare(benchMap("BenchmarkX", 100, 0), benchMap("BenchmarkX", 100, 1))
	fails = Failures(deltas)
	if len(fails) != 1 || !math.IsInf(fails[0].Ratio, 1) {
		t.Fatalf("zero-baseline alloc growth must fail with +Inf, got %+v", fails)
	}

	// Benchmarks present on only one side are skipped.
	deltas = g.Compare(benchMap("BenchmarkOld", 1, 1), benchMap("BenchmarkNew", 1000, 1000))
	if len(deltas) != 0 {
		t.Fatalf("disjoint benchmarks must not gate, got %+v", deltas)
	}

	// The name filter restricts gating.
	g.Match = regexp.MustCompile(`EngineStream`)
	deltas = g.Compare(benchMap("BenchmarkSomethingElse", 100, 100), benchMap("BenchmarkSomethingElse", 900, 900))
	if len(deltas) != 0 {
		t.Fatalf("filtered-out benchmark must not gate, got %+v", deltas)
	}
}

func TestGateCompareMedian(t *testing.T) {
	// The median must shrug off one noisy repetition.
	base := map[string][]BenchLine{"BenchmarkX": {
		{Values: map[string]float64{"ns/op": 100}},
		{Values: map[string]float64{"ns/op": 101}},
		{Values: map[string]float64{"ns/op": 102}},
	}}
	head := map[string][]BenchLine{"BenchmarkX": {
		{Values: map[string]float64{"ns/op": 100}},
		{Values: map[string]float64{"ns/op": 99}},
		{Values: map[string]float64{"ns/op": 900}}, // outlier
	}}
	g := Gate{MaxNsRegress: 0.30}
	deltas := g.Compare(base, head)
	if len(deltas) != 1 || deltas[0].Exceeded {
		t.Fatalf("median must discard the outlier, got %+v", deltas)
	}
	if deltas[0].Head != 100 {
		t.Fatalf("head median = %v, want 100", deltas[0].Head)
	}
}

// TestMeasureEngineStream smoke-tests the in-process snapshot path on the
// cheapest gated workload: per-step figures must derive consistently from
// the per-op ones.
func TestMeasureEngineStream(t *testing.T) {
	if testing.Short() {
		t.Skip("timing workload")
	}
	w, err := engineStreamWorkload(32)
	if err != nil {
		t.Fatal(err)
	}
	m := Measure(w)
	if m.Name != "EngineStream/dur=32" {
		t.Fatalf("name = %q", m.Name)
	}
	if m.StepsPerOp <= 0 || m.NsPerOp <= 0 {
		t.Fatalf("non-positive measurement: %+v", m)
	}
	if got, want := m.NsPerStep, m.NsPerOp/m.StepsPerOp; math.Abs(got-want) > 1e-9 {
		t.Fatalf("ns/step %v inconsistent with ns/op %v / steps/op %v", got, m.NsPerOp, m.StepsPerOp)
	}
}

func keys(m map[string][]BenchLine) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
