package perf

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// DefaultNsPerStep prices an engine step when no BENCH_perf snapshot is
// available: the rough magnitude of the committed SearchPrefixCached
// trajectory. Plans built on it say so in CostModel.Source.
const DefaultNsPerStep = 1500.0

// CostModel converts estimated engine steps into estimated wall-clock: the
// `gcssearch plan` pricing input.
type CostModel struct {
	// NsPerStep is the modeled cost of one dispatched engine event.
	NsPerStep float64
	// Source names where NsPerStep came from: a measurement name from the
	// snapshot, or "default" when none applied.
	Source string
}

// LoadSnapshot reads a BENCH_perf.json measurement snapshot.
func LoadSnapshot(path string) ([]Measurement, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var ms []Measurement
	if err := json.Unmarshal(data, &ms); err != nil {
		return nil, fmt.Errorf("perf: parse snapshot %s: %w", path, err)
	}
	return ms, nil
}

// NewCostModel derives a cost model from measurements, preferring the search
// workload's ns/step (the exact path a campaign executes), then the
// streaming-engine workload, then the built-in default. An empty or nil
// snapshot yields the default model, so planning works before any
// measurement exists.
func NewCostModel(ms []Measurement) CostModel {
	for _, prefix := range []string{"SearchPrefixCached", "SearchEndToEnd", "EngineStream"} {
		for _, m := range ms {
			if strings.HasPrefix(m.Name, prefix) && m.NsPerStep > 0 {
				return CostModel{NsPerStep: m.NsPerStep, Source: m.Name}
			}
		}
	}
	return CostModel{NsPerStep: DefaultNsPerStep, Source: "default"}
}

// LoadCostModel is LoadSnapshot + NewCostModel with a missing snapshot file
// degrading to the default model rather than failing: pricing must never be
// the reason a campaign cannot be planned.
func LoadCostModel(path string) CostModel {
	ms, err := LoadSnapshot(path)
	if err != nil {
		return CostModel{NsPerStep: DefaultNsPerStep, Source: "default"}
	}
	return NewCostModel(ms)
}
