package perf

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// DefaultNsPerStep prices an engine step when no BENCH_perf snapshot is
// available: the rough magnitude of the committed SearchPrefixCached
// trajectory. Plans built on it say so in CostModel.Source.
const DefaultNsPerStep = 1500.0

// CostModel converts estimated engine steps into estimated wall-clock: the
// `gcssearch plan` pricing input.
type CostModel struct {
	// NsPerStep is the modeled cost of one dispatched engine event,
	// lane-agnostic: the first preferred measurement regardless of lane.
	NsPerStep float64
	// Source names where NsPerStep came from: a measurement name from the
	// snapshot, or "default" when none applied.
	Source string
	// Lanes holds a per-arithmetic-lane cost when the snapshot carries
	// lane-tagged measurements: a fixed-lane campaign and a rat-lane one
	// differ by the lane speedup, and pricing both from the same ns/step
	// misestimates whichever lane the measurement didn't run on.
	Lanes map[string]LaneCost
}

// LaneCost is one lane's measured step cost.
type LaneCost struct {
	NsPerStep float64
	Source    string
}

// ForLane returns the modeled ns/step for engines on the given arithmetic
// lane ("fixed" or "rat"), falling back to the lane-agnostic model when the
// snapshot has no measurement for that lane.
func (m CostModel) ForLane(lane string) (float64, string) {
	if lc, ok := m.Lanes[lane]; ok && lc.NsPerStep > 0 {
		return lc.NsPerStep, lc.Source
	}
	return m.NsPerStep, m.Source
}

// LoadSnapshot reads a BENCH_perf.json measurement snapshot.
func LoadSnapshot(path string) ([]Measurement, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var ms []Measurement
	if err := json.Unmarshal(data, &ms); err != nil {
		return nil, fmt.Errorf("perf: parse snapshot %s: %w", path, err)
	}
	return ms, nil
}

// NewCostModel derives a cost model from measurements, preferring the search
// workload's ns/step (the exact path a campaign executes), then the
// streaming-engine workload, then the built-in default. An empty or nil
// snapshot yields the default model, so planning works before any
// measurement exists.
func NewCostModel(ms []Measurement) CostModel {
	model := CostModel{NsPerStep: DefaultNsPerStep, Source: "default"}
	for _, prefix := range []string{"SearchPrefixCached", "SearchEndToEnd", "EngineStream"} {
		for _, m := range ms {
			if strings.HasPrefix(m.Name, prefix) && m.NsPerStep > 0 {
				model.NsPerStep, model.Source = m.NsPerStep, m.Name
				model.Lanes = laneCosts(ms)
				return model
			}
		}
	}
	model.Lanes = laneCosts(ms)
	return model
}

// laneCosts derives each lane's preferred measurement with the same workload
// preference order as the lane-agnostic model. Untagged measurements (older
// snapshots) contribute to no lane and pricing falls back to the
// lane-agnostic figure.
func laneCosts(ms []Measurement) map[string]LaneCost {
	lanes := map[string]LaneCost{}
	for _, prefix := range []string{"SearchPrefixCached", "SearchEndToEnd", "EngineStream"} {
		for _, m := range ms {
			if !strings.HasPrefix(m.Name, prefix) || m.NsPerStep <= 0 || m.Lane == "" {
				continue
			}
			if _, seen := lanes[m.Lane]; !seen {
				lanes[m.Lane] = LaneCost{NsPerStep: m.NsPerStep, Source: m.Name}
			}
		}
	}
	if len(lanes) == 0 {
		return nil
	}
	return lanes
}

// LoadCostModel is LoadSnapshot + NewCostModel with a missing snapshot file
// degrading to the default model rather than failing: pricing must never be
// the reason a campaign cannot be planned.
func LoadCostModel(path string) CostModel {
	ms, err := LoadSnapshot(path)
	if err != nil {
		return CostModel{NsPerStep: DefaultNsPerStep, Source: "default"}
	}
	return NewCostModel(ms)
}
