// Package perf defines the repository's gated performance workloads and the
// machinery behind the CI perf-regression gate.
//
// Exact-metric snapshots (BENCH_*.json experiment tables) are deterministic
// and diff-checked in CI, but they cannot see a throughput regression: a
// change that doubles ns/step still produces identical tables. This package
// closes that gap in two ways:
//
//   - Snapshot measures the gated workloads in-process via testing.Benchmark
//     and reports machine-readable ns/step and allocs/step (`gcsbench -perf`,
//     `make bench-perf` → BENCH_perf.json). Timing numbers are
//     machine-dependent: the committed snapshot records the trajectory on the
//     maintainer's machine and is NOT diff-checked in CI.
//
//   - ParseBench + Gate implement the CI gate (cmd/perfgate): parse two
//     `go test -bench` outputs (merge base vs head), aggregate each gated
//     benchmark by median across -count repetitions, and flag any benchmark
//     whose ns/op or allocs/op regressed past its threshold.
//
// The gated workloads mirror the benchmarks named in the CI workflow —
// BenchmarkEngineStream (the E12 streaming engine workload),
// BenchmarkEngineFork (the fork-and-suffix unit of prefix-cached search),
// BenchmarkEngineForkGradient (the fork-only unit on a wide gradient line,
// gating the copy-on-write clone discipline), BenchmarkAdaptiveRun (the E14
// adaptive-adversary path), and BenchmarkSearchPrefixCached /
// BenchmarkSearchEndToEnd (the E13 search workload) — so a local `gcsbench
// -perf` and the CI gate watch the same hot paths. Measurements carry the
// arithmetic lane their engines ran on ("fixed" or "rat"), and the snapshot
// includes a rat-lane twin of the cached search, so the campaign planner can
// price both lanes from measurement rather than guesswork.
package perf

import (
	"encoding/json"
	"fmt"
	"testing"

	"gcs/internal/algorithms"
	"gcs/internal/clock"
	"gcs/internal/core"
	"gcs/internal/engine"
	"gcs/internal/lowerbound"
	"gcs/internal/network"
	"gcs/internal/rat"
	"gcs/internal/search"
)

// stepsUnit is the per-workload ReportMetric unit Snapshot divides by to
// derive per-step figures.
const stepsUnit = "steps/op"

// Workload is one gated performance scenario, runnable under
// testing.Benchmark. Bench must call b.ReportAllocs and report the number of
// engine events dispatched per iteration as the "steps/op" metric. Lane
// records the arithmetic lane the workload's engines run on ("fixed" or
// "rat"), so snapshots price the two lanes separately.
type Workload struct {
	Name  string
	Lane  string
	Bench func(b *testing.B)
}

// Measurement is one workload's measured cost in machine-readable form.
type Measurement struct {
	Name          string  `json:"name"`
	Lane          string  `json:"lane,omitempty"`
	Iterations    int     `json:"iterations"`
	NsPerOp       float64 `json:"ns_per_op"`
	AllocsPerOp   float64 `json:"allocs_per_op"`
	BytesPerOp    float64 `json:"bytes_per_op"`
	StepsPerOp    float64 `json:"steps_per_op"`
	NsPerStep     float64 `json:"ns_per_step"`
	AllocsPerStep float64 `json:"allocs_per_step"`
}

// Workloads returns the gated scenarios: the E12 streaming-engine workload
// at two durations, the fork-and-suffix unit of prefix-cached evaluation,
// the fork-only unit on a wide gradient line (per-node estimate state at its
// heaviest), the E14 adaptive-adversary run, the E13 search workload through
// both evaluation paths plus its windowed-rate-surgery variant (rate-window
// mutants sharing the trunk via schedule swaps), and a rat-lane twin of the
// cached search so the snapshot carries a measured ns/step for both
// arithmetic lanes.
func Workloads() ([]Workload, error) {
	ws := []Workload{}
	for _, dur := range []int64{32, 96} {
		w, err := engineStreamWorkload(dur)
		if err != nil {
			return nil, err
		}
		ws = append(ws, w)
	}
	fork, err := engineForkWorkload()
	if err != nil {
		return nil, err
	}
	forkGrad, err := engineForkGradientWorkload()
	if err != nil {
		return nil, err
	}
	adaptive, err := adaptiveRunWorkload()
	if err != nil {
		return nil, err
	}
	ws = append(ws, fork, forkGrad, adaptive)
	cached, err := searchWorkload(false, engine.LaneAuto, 0)
	if err != nil {
		return nil, err
	}
	scratch, err := searchWorkload(true, engine.LaneAuto, 0)
	if err != nil {
		return nil, err
	}
	windows, err := searchWorkload(false, engine.LaneAuto, 4)
	if err != nil {
		return nil, err
	}
	ratCached, err := searchWorkload(false, engine.LaneRat, 0)
	if err != nil {
		return nil, err
	}
	return append(ws, cached, scratch, windows, ratCached), nil
}

// engineStreamWorkload mirrors BenchmarkEngineStream: a 64-node drifting
// line under the reproducible random adversary with an online skew tracker,
// the E12 streaming workload.
func engineStreamWorkload(dur int64) (Workload, error) {
	net, err := network.Line(64)
	if err != nil {
		return Workload{}, err
	}
	scheds, err := clock.Diverse(64, rat.FromInt(1), rat.MustFrac(5, 4), 4, 7)
	if err != nil {
		return Workload{}, err
	}
	duration := rat.FromInt(dur)
	return Workload{
		Name: fmt.Sprintf("EngineStream/dur=%d", dur),
		Lane: "fixed",
		Bench: func(b *testing.B) {
			b.ReportAllocs()
			var steps uint64
			for i := 0; i < b.N; i++ {
				tracker, err := core.NewSkewTracker(net, scheds)
				if err != nil {
					b.Fatal(err)
				}
				eng, err := engine.New(net,
					engine.WithProtocol(algorithms.MaxGossip(rat.FromInt(1))),
					engine.WithAdversary(engine.HashAdversary{Seed: 7, Denom: 8}),
					engine.WithSchedules(scheds),
					engine.WithRho(rat.MustFrac(1, 2)),
					engine.WithObservers(tracker),
				)
				if err != nil {
					b.Fatal(err)
				}
				if err := eng.RunUntil(duration); err != nil {
					b.Fatal(err)
				}
				steps = eng.Steps()
			}
			b.ReportMetric(float64(steps), stepsUnit)
		},
	}, nil
}

// engineForkWorkload mirrors BenchmarkEngineFork: fork a warmed 17-node
// gossip line and run a two-time-unit suffix on the fork — the per-mutant
// unit of work in prefix-cached search.
func engineForkWorkload() (Workload, error) {
	net, err := network.Line(17)
	if err != nil {
		return Workload{}, err
	}
	scheds, err := clock.Diverse(17, rat.FromInt(1), rat.MustFrac(5, 4), 4, 7)
	if err != nil {
		return Workload{}, err
	}
	return Workload{
		Name: "EngineFork/line17",
		Lane: "fixed",
		Bench: func(b *testing.B) {
			eng, err := engine.New(net,
				engine.WithProtocol(algorithms.MaxGossip(rat.FromInt(1))),
				engine.WithAdversary(engine.HashAdversary{Seed: 7, Denom: 8}),
				engine.WithSchedules(scheds),
				engine.WithRho(rat.MustFrac(1, 2)),
			)
			if err != nil {
				b.Fatal(err)
			}
			if err := eng.RunUntil(rat.FromInt(16)); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			var steps uint64
			for i := 0; i < b.N; i++ {
				fork, err := eng.Fork()
				if err != nil {
					b.Fatal(err)
				}
				if err := fork.RunFor(rat.FromInt(2)); err != nil {
					b.Fatal(err)
				}
				steps = fork.Steps() - eng.Steps()
			}
			b.ReportMetric(float64(steps), stepsUnit)
		},
	}, nil
}

// engineForkGradientWorkload mirrors BenchmarkEngineForkGradient: the fork
// operation alone on a warmed 33-node gradient line, where every node
// carries a neighbor-estimate table. It gates the copy-on-write clone
// discipline — allocs/op here must stay O(1) in network width.
func engineForkGradientWorkload() (Workload, error) {
	const n = 33
	net, err := network.Line(n)
	if err != nil {
		return Workload{}, err
	}
	scheds, err := clock.Diverse(n, rat.FromInt(1), rat.MustFrac(5, 4), 4, 7)
	if err != nil {
		return Workload{}, err
	}
	return Workload{
		Name: "EngineForkGradient/line33",
		Lane: "fixed",
		Bench: func(b *testing.B) {
			eng, err := engine.New(net,
				engine.WithProtocol(algorithms.Gradient(algorithms.DefaultGradientParams())),
				engine.WithAdversary(engine.HashAdversary{Seed: 7, Denom: 8}),
				engine.WithSchedules(scheds),
				engine.WithRho(rat.MustFrac(1, 2)),
			)
			if err != nil {
				b.Fatal(err)
			}
			if err := eng.RunUntil(rat.FromInt(16)); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Fork(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(eng.Steps()), stepsUnit)
		},
	}, nil
}

// adaptiveRunWorkload mirrors BenchmarkAdaptiveRun: the generalized §2
// online scheduler on the E14 two-node d=8 cell, gating the stateful
// observe-and-decide adversary path.
func adaptiveRunWorkload() (Workload, error) {
	p := lowerbound.DefaultParams()
	d := rat.FromInt(8)
	net, err := network.TwoNode(d)
	if err != nil {
		return Workload{}, err
	}
	dur := p.Tau().Mul(d)
	scheds := make([]*clock.Schedule, net.N())
	for i := range scheds {
		scheds[i] = clock.Constant(rat.FromInt(1))
	}
	scheds[0] = clock.Constant(p.RateBandHigh())
	return Workload{
		Name: "AdaptiveRun/E14",
		Lane: "fixed",
		Bench: func(b *testing.B) {
			b.ReportAllocs()
			var steps uint64
			for i := 0; i < b.N; i++ {
				adv, err := lowerbound.NewAdaptiveScheduler(net, 0, 1, lowerbound.AutoThreshold(p.Rho, dur))
				if err != nil {
					b.Fatal(err)
				}
				tracker, err := core.NewSkewTracker(net, scheds)
				if err != nil {
					b.Fatal(err)
				}
				eng, err := engine.New(net,
					engine.WithProtocol(algorithms.Gradient(algorithms.DefaultGradientParams())),
					engine.WithAdversary(adv),
					engine.WithSchedules(scheds),
					engine.WithRho(p.Rho),
					engine.WithObservers(tracker),
				)
				if err != nil {
					b.Fatal(err)
				}
				if err := eng.RunUntil(dur); err != nil {
					b.Fatal(err)
				}
				if err := tracker.Err(); err != nil {
					b.Fatal(err)
				}
				steps = eng.Steps()
			}
			b.ReportMetric(float64(steps), stepsUnit)
		},
	}, nil
}

// searchWorkload mirrors BenchmarkSearchPrefixCached / BenchmarkSearchEndToEnd
// / BenchmarkSearchRateWindows: the E13 -long two-node diameter-16 search
// configuration, evaluated through the prefix-tree scheduler or from scratch,
// optionally with windowed rate surgery (rateWindows > 0) fanning schedule-
// swapped mutants off the shared trunk. lane = LaneRat forces the whole
// campaign onto exact rational arithmetic (via the process-wide default, the
// same hook the differential tests use), measuring what a configuration that
// defeats fixed-lane detection would cost.
func searchWorkload(disableCache bool, lane engine.Lane, rateWindows int) (Workload, error) {
	d := rat.FromInt(16)
	net, err := network.TwoNode(d)
	if err != nil {
		return Workload{}, err
	}
	opt := search.Options{
		Net:                net,
		Protocol:           algorithms.Gradient(algorithms.DefaultGradientParams()),
		Duration:           rat.FromInt(2).Mul(d),
		Rho:                rat.MustFrac(1, 2),
		Rounds:             3,
		Beam:               2,
		DelayMutations:     8,
		MutateTail:         rat.MustFrac(1, 2),
		RateWindows:        rateWindows,
		DisablePrefixCache: disableCache,
	}
	name := "SearchPrefixCached/E13"
	if disableCache {
		name = "SearchEndToEnd/E13"
	}
	if rateWindows > 0 {
		name = fmt.Sprintf("SearchRateWindows/E13/w=%d", rateWindows)
	}
	laneTag := "fixed"
	if lane == engine.LaneRat {
		name += "/rat"
		laneTag = "rat"
	}
	return Workload{
		Name: name,
		Lane: laneTag,
		Bench: func(b *testing.B) {
			if lane == engine.LaneRat {
				engine.SetDefaultLane(engine.LaneRat)
				defer engine.SetDefaultLane(engine.LaneAuto)
			}
			b.ReportAllocs()
			var steps uint64
			for i := 0; i < b.N; i++ {
				res, err := search.Search(opt)
				if err != nil {
					b.Fatal(err)
				}
				steps = res.EngineSteps
			}
			b.ReportMetric(float64(steps), stepsUnit)
		},
	}, nil
}

// Measure runs one workload under testing.Benchmark and derives the
// per-step figures.
func Measure(w Workload) Measurement {
	r := testing.Benchmark(w.Bench)
	m := Measurement{
		Name:        w.Name,
		Lane:        w.Lane,
		Iterations:  r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: float64(r.AllocsPerOp()),
		BytesPerOp:  float64(r.AllocedBytesPerOp()),
		StepsPerOp:  r.Extra[stepsUnit],
	}
	if m.StepsPerOp > 0 {
		m.NsPerStep = m.NsPerOp / m.StepsPerOp
		m.AllocsPerStep = m.AllocsPerOp / m.StepsPerOp
	}
	return m
}

// Snapshot measures every gated workload.
func Snapshot() ([]Measurement, error) {
	ws, err := Workloads()
	if err != nil {
		return nil, err
	}
	out := make([]Measurement, 0, len(ws))
	for _, w := range ws {
		out = append(out, Measure(w))
	}
	return out, nil
}

// SnapshotJSON is Snapshot rendered as indented JSON, the BENCH_perf.json
// format.
func SnapshotJSON() (string, error) {
	ms, err := Snapshot()
	if err != nil {
		return "", err
	}
	data, err := json.MarshalIndent(ms, "", "  ")
	if err != nil {
		return "", err
	}
	return string(data) + "\n", nil
}
