package perf

import (
	"bytes"
	"encoding/json"
	"fmt"
	"regexp"
	"sort"
)

// The bench-history file is the github-action-benchmark data.js format: a
// JavaScript assignment whose right-hand side is a JSON document holding one
// measurement entry per gated commit. CI appends the perf measurements of
// every main-branch commit (cmd/perfgate -append), turning the PR-time perf
// gate's point comparisons into a browsable trend curve under dev/bench/.

// historyPrefix is the assignment wrapper around the JSON payload.
const historyPrefix = "window.BENCHMARK_DATA = "

// HistorySeries is the default entry series name.
const HistorySeries = "Go Benchmark"

// HistoryCommit identifies the commit an entry measures.
type HistoryCommit struct {
	ID        string `json:"id"`
	Message   string `json:"message"`
	Timestamp string `json:"timestamp"`
	URL       string `json:"url"`
}

// HistoryBench is one benchmark figure of an entry.
type HistoryBench struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
	Unit  string  `json:"unit"`
	Extra string  `json:"extra,omitempty"`
}

// HistoryEntry is one commit's measurements.
type HistoryEntry struct {
	Commit  HistoryCommit  `json:"commit"`
	Date    int64          `json:"date"` // unix milliseconds
	Tool    string         `json:"tool"`
	Benches []HistoryBench `json:"benches"`
}

// History is the whole data.js document.
type History struct {
	LastUpdate int64                     `json:"lastUpdate"` // unix milliseconds
	RepoURL    string                    `json:"repoUrl"`
	Entries    map[string][]HistoryEntry `json:"entries"`
}

// ParseHistory reads a data.js document. Empty (or all-whitespace) input
// yields a fresh history, so the first CI append bootstraps the file.
func ParseHistory(data []byte) (*History, error) {
	trimmed := bytes.TrimSpace(data)
	if len(trimmed) == 0 {
		return &History{Entries: map[string][]HistoryEntry{}}, nil
	}
	trimmed = bytes.TrimPrefix(trimmed, []byte(historyPrefix))
	var h History
	if err := json.Unmarshal(trimmed, &h); err != nil {
		return nil, fmt.Errorf("perf: parse bench history: %w", err)
	}
	if h.Entries == nil {
		h.Entries = map[string][]HistoryEntry{}
	}
	return &h, nil
}

// Append adds one entry to a series and advances LastUpdate.
func (h *History) Append(series string, e HistoryEntry) {
	h.Entries[series] = append(h.Entries[series], e)
	if e.Date > h.LastUpdate {
		h.LastUpdate = e.Date
	}
}

// Render renders the history back into the data.js assignment form.
func (h *History) Render() ([]byte, error) {
	data, err := json.MarshalIndent(h, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(append([]byte(historyPrefix), data...), '\n'), nil
}

// EntryFromBench condenses parsed `go test -bench` output into one history
// entry: per benchmark (filtered by match, nil = all), the median ns/op and
// allocs/op across its -count repetitions — the same aggregation the perf
// gate applies, so the curve and the gate agree on every point.
func EntryFromBench(lines map[string][]BenchLine, commit HistoryCommit, date int64, match *regexp.Regexp) HistoryEntry {
	names := make([]string, 0, len(lines))
	for name := range lines {
		if match != nil && !match.MatchString(name) {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	e := HistoryEntry{Commit: commit, Date: date, Tool: "go"}
	for _, name := range names {
		reps := lines[name]
		extra := fmt.Sprintf("%d reps", len(reps))
		if ns, ok := medianOf(reps, "ns/op"); ok {
			e.Benches = append(e.Benches, HistoryBench{Name: name, Value: ns, Unit: "ns/op", Extra: extra})
		}
		if allocs, ok := medianOf(reps, "allocs/op"); ok {
			e.Benches = append(e.Benches, HistoryBench{Name: name + " - allocs", Value: allocs, Unit: "allocs/op", Extra: extra})
		}
	}
	return e
}
