package perf

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// BenchLine is one result line of `go test -bench` output: the benchmark
// name (with the trailing -GOMAXPROCS suffix stripped, so runs from machines
// with different core counts compare), the iteration count, and every
// reported value keyed by its unit ("ns/op", "allocs/op", "steps/cand", ...).
type BenchLine struct {
	Name   string
	Iters  int64
	Values map[string]float64
}

// ParseBench reads `go test -bench` output and groups result lines by
// benchmark name — with -count N, each benchmark yields N lines. Non-result
// lines (goos/pkg headers, PASS, warnings) are ignored, as are malformed
// result lines' trailing fields; a line whose shape cannot be parsed at all
// is an error, so a truncated bench file fails loudly instead of gating on
// partial data.
func ParseBench(r io.Reader) (map[string][]BenchLine, error) {
	out := make(map[string][]BenchLine)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			continue
		}
		// "BenchmarkFoo" alone (no measurements) can appear when -v
		// interleaves; require an iteration count.
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		if len(fields) < 4 || (len(fields)-2)%2 != 0 {
			return nil, fmt.Errorf("perf: line %d: malformed benchmark line %q", lineNo, line)
		}
		bl := BenchLine{Name: trimProcs(fields[0]), Iters: iters, Values: make(map[string]float64)}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("perf: line %d: bad value %q in %q", lineNo, fields[i], line)
			}
			bl.Values[fields[i+1]] = v
		}
		out[bl.Name] = append(out[bl.Name], bl)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("perf: read bench output: %w", err)
	}
	return out, nil
}

// trimProcs strips the trailing -GOMAXPROCS suffix go test appends to
// benchmark names ("BenchmarkFoo/sub=1-8" → "BenchmarkFoo/sub=1"). Only an
// all-digit suffix after the final dash is removed, so names that merely
// contain dashes survive.
func trimProcs(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 || i == len(name)-1 {
		return name
	}
	for _, c := range name[i+1:] {
		if c < '0' || c > '9' {
			return name
		}
	}
	return name[:i]
}
