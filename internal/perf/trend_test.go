package perf

import (
	"strings"
	"testing"
)

// trendHistory builds a history whose single figure takes the given values,
// one entry per value, in order.
func trendHistory(name, unit string, vals ...float64) *History {
	h := &History{Entries: map[string][]HistoryEntry{}}
	for i, v := range vals {
		h.Append(HistorySeries, HistoryEntry{
			Date:    int64(i),
			Benches: []HistoryBench{{Name: name, Value: v, Unit: unit}},
		})
	}
	return h
}

func TestTrendFlagsWindowedRegression(t *testing.T) {
	h := trendHistory("BenchmarkX", "ns/op", 100, 100, 100, 100, 100, 200, 200, 200, 200, 200)
	alerts := Trend(h, HistorySeries, 5, 0.10)
	if len(alerts) != 1 {
		t.Fatalf("got %d alerts, want 1", len(alerts))
	}
	a := alerts[0]
	if !a.Exceeded {
		t.Fatalf("100→200 window medians not flagged: %+v", a)
	}
	if a.Prior != 100 || a.Recent != 200 || a.Delta != 1.0 {
		t.Fatalf("prior=%v recent=%v delta=%v, want 100/200/1.0", a.Prior, a.Recent, a.Delta)
	}
	if fails := TrendFailures(alerts); len(fails) != 1 {
		t.Fatalf("TrendFailures returned %d, want 1", len(fails))
	}
}

func TestTrendMedianAbsorbsOneSpike(t *testing.T) {
	// One noisy commit in the recent window must not raise an alert: the
	// window median ignores it.
	h := trendHistory("BenchmarkX", "ns/op", 100, 100, 100, 100, 100, 100, 100, 500, 100, 100)
	alerts := Trend(h, HistorySeries, 5, 0.10)
	if len(alerts) != 1 || alerts[0].Exceeded {
		t.Fatalf("single spike tripped the trend alert: %+v", alerts)
	}
	// And symmetrically: one fast outlier must not mask a real regression.
	h = trendHistory("BenchmarkX", "ns/op", 100, 100, 100, 100, 100, 200, 200, 50, 200, 200)
	alerts = Trend(h, HistorySeries, 5, 0.10)
	if len(alerts) != 1 || !alerts[0].Exceeded {
		t.Fatalf("fast outlier masked a windowed regression: %+v", alerts)
	}
}

func TestTrendSkipsShortSeries(t *testing.T) {
	h := trendHistory("BenchmarkX", "ns/op", 100, 100, 100, 200, 200, 200, 200, 200, 200)
	if alerts := Trend(h, HistorySeries, 5, 0.10); len(alerts) != 0 {
		t.Fatalf("9 entries with window 5 produced alerts: %+v", alerts)
	}
	out := RenderTrend(nil, 5)
	if !strings.Contains(out, "nothing to compare") {
		t.Fatalf("empty render = %q", out)
	}
}

func TestTrendSeparatesUnits(t *testing.T) {
	// The same benchmark's ns/op and allocs/op figures are independent
	// series: an allocs regression alerts even when ns/op is flat.
	h := &History{Entries: map[string][]HistoryEntry{}}
	for i := 0; i < 4; i++ {
		allocs := 10.0
		if i >= 2 {
			allocs = 20
		}
		h.Append(HistorySeries, HistoryEntry{
			Date: int64(i),
			Benches: []HistoryBench{
				{Name: "BenchmarkX", Value: 100, Unit: "ns/op"},
				{Name: "BenchmarkX - allocs", Value: allocs, Unit: "allocs/op"},
			},
		})
	}
	alerts := Trend(h, HistorySeries, 2, 0.10)
	if len(alerts) != 2 {
		t.Fatalf("got %d alerts, want 2", len(alerts))
	}
	byName := map[string]TrendAlert{}
	for _, a := range alerts {
		byName[a.Name+" "+a.Unit] = a
	}
	if byName["BenchmarkX ns/op"].Exceeded {
		t.Fatal("flat ns/op flagged")
	}
	if !byName["BenchmarkX - allocs allocs/op"].Exceeded {
		t.Fatal("doubled allocs/op not flagged")
	}
	if !strings.Contains(RenderTrend(alerts, 2), "TREND REGRESSION") {
		t.Fatal("render missing the regression flag")
	}
}
