// Package clock models drifting hardware clocks as rate schedules.
//
// Following §3 of Fan & Lynch (PODC 2004), a hardware clock is defined by its
// rate of change: node i's clock rate at real time t is h_i(t), and its
// hardware clock value is H_i(t) = ∫₀ᵗ h_i(r) dr. The adversary in the
// lower-bound constructions chooses piecewise-constant rate functions, so
// H_i is a continuous, strictly increasing piecewise-linear function, which
// this package represents exactly.
//
// A Schedule is immutable once constructed; the surgery methods used by the
// constructions (WithRateFrom, ModifyWindow) return modified copies.
package clock

import (
	"errors"
	"fmt"
	"sort"

	"gcs/internal/piecewise"
	"gcs/internal/rat"
)

// RateSeg gives the clock rate from At until the next segment (the final
// segment extends to +∞). Rates must be strictly positive.
type RateSeg struct {
	At   rat.Rat
	Rate rat.Rat
}

// Schedule is an immutable hardware-clock rate schedule starting at real
// time 0 with H(0) = 0.
type Schedule struct {
	rates []RateSeg
	hw    *piecewise.PLF // compiled H(t)
}

// Constant returns a schedule with fixed rate for all time.
func Constant(rate rat.Rat) *Schedule {
	s, err := FromRates([]RateSeg{{At: rat.Rat{}, Rate: rate}})
	if err != nil {
		// A single positive-rate segment at 0 cannot fail unless rate <= 0;
		// surface that as a panic because it is a programming error in the
		// caller's constants.
		panic(err)
	}
	return s
}

// FromRates builds a schedule from rate segments. The first segment must
// start at 0, starts must be strictly increasing, and rates strictly
// positive (a clock that stops cannot be inverted).
func FromRates(segs []RateSeg) (*Schedule, error) {
	if len(segs) == 0 {
		return nil, errors.New("clock: no rate segments")
	}
	if !segs[0].At.IsZero() {
		return nil, fmt.Errorf("clock: first segment starts at %s, want 0", segs[0].At)
	}
	rates := make([]RateSeg, len(segs))
	copy(rates, segs)
	hw := piecewise.New(rat.Rat{}, rat.Rat{}, rates[0].Rate)
	for i := 1; i < len(rates); i++ {
		if !rates[i-1].At.Less(rates[i].At) {
			return nil, fmt.Errorf("clock: segment %d start %s not after %s", i, rates[i].At, rates[i-1].At)
		}
		if err := hw.AppendSlope(rates[i].At, rates[i].Rate); err != nil {
			return nil, err
		}
	}
	for i, s := range rates {
		if s.Rate.Sign() <= 0 {
			return nil, fmt.Errorf("clock: segment %d rate %s not positive", i, s.Rate)
		}
	}
	return &Schedule{rates: rates, hw: hw}, nil
}

// Rates returns a copy of the rate segments.
func (s *Schedule) Rates() []RateSeg {
	out := make([]RateSeg, len(s.rates))
	copy(out, s.rates)
	return out
}

// RatesView returns the schedule's rate segments without copying. The caller
// must not modify the returned slice — it is the schedule's own storage.
// Hot-path consumers (the engine's logical-clock compiler walks every
// segment per node per execution) use it to avoid a copy per call; everyone
// else should prefer Rates.
func (s *Schedule) RatesView() []RateSeg { return s.rates }

// HW returns H(t), the hardware clock reading at real time t >= 0.
func (s *Schedule) HW(t rat.Rat) rat.Rat { return s.hw.Eval(t) }

// RealAt returns the real time at which the hardware clock reads h >= 0.
func (s *Schedule) RealAt(h rat.Rat) (rat.Rat, error) {
	t, err := s.hw.InvertAt(h)
	if err != nil {
		return rat.Rat{}, fmt.Errorf("clock: invert %s: %w", h, err)
	}
	return t, nil
}

// RateAt returns h(t), the rate in effect at real time t (right-continuous
// at segment boundaries). Binary search over the segment starts: schedules
// produced by repeated surgery (ModifyWindow, WithRateFrom) accumulate many
// segments, and RateAt sits on the logical-clock compilation path.
func (s *Schedule) RateAt(t rat.Rat) rat.Rat {
	// Find the last segment with At <= t; segment starts are strictly
	// increasing and the first starts at 0 <= t.
	lo, hi := 0, len(s.rates)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if s.rates[mid].At.LessEq(t) {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return s.rates[lo].Rate
}

// HWFunc exposes the compiled H(t) piecewise-linear function (a clone).
func (s *Schedule) HWFunc() *piecewise.PLF { return s.hw.Clone() }

// MinRate returns the minimum rate in effect anywhere in [from, to].
func (s *Schedule) MinRate(from, to rat.Rat) rat.Rat { return s.hw.MinSlope(from, to) }

// MaxRate returns the maximum rate in effect anywhere in [from, to].
func (s *Schedule) MaxRate(from, to rat.Rat) rat.Rat { return s.hw.MaxSlope(from, to) }

// ValidateDrift checks Assumption 1 of the paper: every rate lies in
// [1−ρ, 1+ρ].
func (s *Schedule) ValidateDrift(rho rat.Rat) error {
	lo := rat.FromInt(1).Sub(rho)
	hi := rat.FromInt(1).Add(rho)
	for i, seg := range s.rates {
		if seg.Rate.Less(lo) || seg.Rate.Greater(hi) {
			return fmt.Errorf("clock: segment %d rate %s outside drift bounds [%s, %s]", i, seg.Rate, lo, hi)
		}
	}
	return nil
}

// ValidateRange checks every rate in effect during [from, to] lies in
// [lo, hi].
func (s *Schedule) ValidateRange(from, to, lo, hi rat.Rat) error {
	if mn := s.MinRate(from, to); mn.Less(lo) {
		return fmt.Errorf("clock: rate %s below %s in [%s, %s]", mn, lo, from, to)
	}
	if mx := s.MaxRate(from, to); mx.Greater(hi) {
		return fmt.Errorf("clock: rate %s above %s in [%s, %s]", mx, hi, from, to)
	}
	return nil
}

// AgreesBefore reports whether s and o induce the same clock on [0, t]:
// identical rates everywhere on [0, t), hence identical H on [0, t] (and
// identical inversions for readings <= H(t)). Rates are piecewise constant
// and right-continuous, so it suffices to compare the two schedules at every
// segment start of either that precedes t. A non-positive t is vacuously
// true. This is the precondition for swapping a schedule into a running
// engine (Engine.SwapSchedule): agreement before t means nothing already
// dispatched would have happened differently.
func (s *Schedule) AgreesBefore(o *Schedule, t rat.Rat) bool {
	if s == o {
		return true
	}
	for _, side := range [2]*Schedule{s, o} {
		for _, seg := range side.rates {
			if seg.At.GreaterEq(t) {
				break // segment starts strictly increase
			}
			if !s.RateAt(seg.At).Equal(o.RateAt(seg.At)) {
				return false
			}
		}
	}
	return true
}

// WithRateFrom returns a copy whose rate is `rate` on [at, +∞) and unchanged
// before at. This is the Add Skew lemma's surgery: node k keeps its α rates
// up to T_k and runs at γ afterwards.
func (s *Schedule) WithRateFrom(at, rate rat.Rat) (*Schedule, error) {
	if at.Sign() < 0 {
		return nil, fmt.Errorf("clock: WithRateFrom at negative time %s", at)
	}
	var segs []RateSeg
	for _, seg := range s.rates {
		if seg.At.Less(at) {
			segs = append(segs, seg)
		}
	}
	segs = append(segs, RateSeg{At: at, Rate: rate})
	return FromRates(segs)
}

// Diverse returns n constant-rate schedules with rates spread
// deterministically (by an FNV hash of seed and node index) across
// [lo, hi], quantized to `steps` levels. It gives every node a different
// drift without randomness entering the simulation itself.
func Diverse(n int, lo, hi rat.Rat, steps int64, seed uint64) ([]*Schedule, error) {
	if steps < 1 {
		return nil, fmt.Errorf("clock: steps %d < 1", steps)
	}
	if hi.Less(lo) || lo.Sign() <= 0 {
		return nil, fmt.Errorf("clock: bad rate range [%s, %s]", lo, hi)
	}
	span := hi.Sub(lo)
	out := make([]*Schedule, n)
	for i := 0; i < n; i++ {
		h := fnv1a(seed, uint64(i))
		level := int64(h % uint64(steps+1))
		rate := lo.Add(span.Mul(rat.MustFrac(level, steps)))
		out[i] = Constant(rate)
	}
	return out, nil
}

// fnv1a hashes two 64-bit values.
func fnv1a(a, b uint64) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, v := range [2]uint64{a, b} {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xff
			h *= prime
		}
	}
	return h
}

// ModifyWindow returns a copy whose rates within [from, to) are transformed
// by fn, with the original rates restored at to. This implements the Bounded
// Increase lemma's surgery (adding ρ/4 to node i's rate during [t0−τ, t0]).
//
// A zero-width window (from == to) is an explicit no-op: the half-open
// window [t, t) contains no time, so the unmodified schedule is returned
// (schedules are immutable, so the receiver itself is the copy). Searched
// window boundaries that collapse to a point — e.g. a rate-surgery window
// generated by internal/search — therefore degrade gracefully instead of
// aborting the caller. An inverted window (from > to) remains an error.
func (s *Schedule) ModifyWindow(from, to rat.Rat, fn func(rat.Rat) rat.Rat) (*Schedule, error) {
	if from.Sign() < 0 {
		return nil, fmt.Errorf("clock: ModifyWindow from negative time %s", from)
	}
	if from.Equal(to) {
		return s, nil
	}
	if !from.Less(to) {
		return nil, fmt.Errorf("clock: ModifyWindow inverted window [%s, %s)", from, to)
	}
	// Candidate boundaries: every existing segment start plus the window
	// endpoints. At each boundary the new rate is fully determined, and
	// coalescing adjacent equal rates keeps the schedule minimal.
	bounds := make([]rat.Rat, 0, len(s.rates)+2)
	for _, seg := range s.rates {
		bounds = append(bounds, seg.At)
	}
	bounds = append(bounds, from, to)
	sort.Slice(bounds, func(i, j int) bool { return bounds[i].Less(bounds[j]) })

	var segs []RateSeg
	for _, at := range bounds {
		if n := len(segs); n > 0 && segs[n-1].At.Equal(at) {
			continue // dedupe
		}
		r := s.RateAt(at)
		if at.GreaterEq(from) && at.Less(to) {
			r = fn(r)
		}
		if n := len(segs); n > 0 && segs[n-1].Rate.Equal(r) {
			continue // coalesce
		}
		segs = append(segs, RateSeg{At: at, Rate: r})
	}
	return FromRates(segs)
}
