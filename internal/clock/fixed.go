package clock

import (
	"gcs/internal/fixed"
)

// FixedSchedule is a Schedule compiled onto a tick grid of 1/scale: segment
// start times and hardware readings as int64 ticks, rates as small p/q pairs.
// Evaluation and inversion then run on checked integer arithmetic instead of
// rational arithmetic — exactly (every operation either returns the value the
// rat lane would compute, bit for bit, or reports !ok so the caller falls
// back). Compiled schedules are immutable and safe to share across engines
// and forks.
type FixedSchedule struct {
	scale int64
	at    []int64 // segment start times, ticks; at[0] == 0
	hw0   []int64 // hardware reading at segment start, ticks; hw0[0] == 0
	p, q  []int64 // rate p/q per segment, lowest terms, both positive
}

// CompileFixed compiles the schedule onto the tick grid of 1/scale. It
// returns ok=false when any segment start, rate, or accumulated hardware
// reading does not land on the grid (or overflows) — the schedule then stays
// on the rat lane.
func (s *Schedule) CompileFixed(scale int64) (*FixedSchedule, bool) {
	if scale <= 0 {
		return nil, false
	}
	n := len(s.rates)
	f := &FixedSchedule{
		scale: scale,
		at:    make([]int64, n),
		hw0:   make([]int64, n),
		p:     make([]int64, n),
		q:     make([]int64, n),
	}
	for i, seg := range s.rates {
		at, ok := fixed.FromRat(seg.At, scale)
		if !ok {
			return nil, false
		}
		p, pok := seg.Rate.Num()
		q, qok := seg.Rate.Den()
		if !pok || !qok || p <= 0 || q <= 0 {
			return nil, false
		}
		hw0, ok := fixed.FromRat(s.hw.Eval(seg.At), scale)
		if !ok {
			return nil, false
		}
		f.at[i], f.hw0[i], f.p[i], f.q[i] = at, hw0, p, q
	}
	return f, true
}

// Scale returns the tick grid's scale.
func (f *FixedSchedule) Scale() int64 { return f.scale }

// locate returns the index of the last segment with at <= t, or -1 when t
// precedes the domain.
func (f *FixedSchedule) locate(t int64) int {
	if t < f.at[0] {
		return -1
	}
	lo, hi := 0, len(f.at)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if f.at[mid] <= t {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// HWTicks returns H(t) in ticks for a real time t in ticks, or ok=false when
// the reading is off-grid (the rate application does not divide exactly) or
// t precedes the domain. An ok result equals Schedule.HW bit for bit after
// fixed.ToRat.
func (f *FixedSchedule) HWTicks(t int64) (int64, bool) {
	i := f.locate(t)
	if i < 0 {
		return 0, false
	}
	term, ok := fixed.MulDiv(t-f.at[i], f.p[i], f.q[i])
	if !ok {
		return 0, false
	}
	return fixed.Add(f.hw0[i], term)
}

// RealAtTicks returns the real time in ticks at which the hardware clock
// reads h ticks, or ok=false when the inversion is off-grid (dividing by the
// rate's numerator does not come out exact) or h precedes H(0). An ok result
// equals Schedule.RealAt bit for bit after fixed.ToRat; the rat lane also
// owns every error case.
func (f *FixedSchedule) RealAtTicks(h int64) (int64, bool) {
	if h < f.hw0[0] {
		return 0, false
	}
	// hw0 is strictly increasing (rates are positive): binary search the last
	// segment whose starting reading is <= h.
	lo, hi := 0, len(f.hw0)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if f.hw0[mid] <= h {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	term, ok := fixed.MulDiv(h-f.hw0[lo], f.q[lo], f.p[lo])
	if !ok {
		return 0, false
	}
	return fixed.Add(f.at[lo], term)
}

// AddToDetector folds the schedule's grid requirements into a scale
// detector: every segment start's denominator, every rate (numerator and
// denominator — inversion divides by the numerator), and the hardware
// reading accumulated at each breakpoint (crossing a segment can introduce
// denominators beyond the inputs': H(7/2) under rate 17/16 lands on
// 32nds). The rate denominator is additionally folded as an evaluation
// factor: H(t) of an on-grid time divides by it, so readings land on a grid
// that many times finer than the times themselves (under rate 17/16, H of a
// multiple of 1/8 lands on 128ths).
func (s *Schedule) AddToDetector(d *fixed.Detector) {
	for _, seg := range s.rates {
		d.AddValue(seg.At)
		d.AddRate(seg.Rate)
		d.AddValue(s.hw.Eval(seg.At))
		if den, ok := seg.Rate.Den(); ok {
			d.AddEvalDen(den)
		}
	}
}
