package clock

import (
	"testing"

	"gcs/internal/rat"
)

func TestDiverse(t *testing.T) {
	lo, hi := ri(1), rf(5, 4)
	scheds, err := Diverse(16, lo, hi, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(scheds) != 16 {
		t.Fatalf("got %d schedules", len(scheds))
	}
	distinct := map[string]bool{}
	for i, s := range scheds {
		r := s.RateAt(rat.Rat{})
		if r.Less(lo) || r.Greater(hi) {
			t.Errorf("schedule %d rate %s outside [%s, %s]", i, r, lo, hi)
		}
		distinct[r.Key()] = true
	}
	if len(distinct) < 3 {
		t.Errorf("only %d distinct rates across 16 nodes", len(distinct))
	}
	// Deterministic.
	again, err := Diverse(16, lo, hi, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range scheds {
		if !scheds[i].RateAt(rat.Rat{}).Equal(again[i].RateAt(rat.Rat{})) {
			t.Fatal("Diverse is nondeterministic")
		}
	}
	// Different seed, different pattern (with overwhelming probability).
	other, err := Diverse(16, lo, hi, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range scheds {
		if !scheds[i].RateAt(rat.Rat{}).Equal(other[i].RateAt(rat.Rat{})) {
			same = false
			break
		}
	}
	if same {
		t.Error("seeds 7 and 8 produced identical rate patterns")
	}
}

func TestDiverseErrors(t *testing.T) {
	if _, err := Diverse(4, ri(1), rf(5, 4), 0, 1); err == nil {
		t.Error("steps 0 should error")
	}
	if _, err := Diverse(4, rf(5, 4), ri(1), 4, 1); err == nil {
		t.Error("hi < lo should error")
	}
	if _, err := Diverse(4, ri(0), ri(1), 4, 1); err == nil {
		t.Error("lo = 0 should error")
	}
}

func TestHWFunc(t *testing.T) {
	s := mustRates(t, []RateSeg{
		{At: ri(0), Rate: ri(1)},
		{At: ri(4), Rate: ri(1).Add(rf(1, 4))},
	})
	f := s.HWFunc()
	for _, tt := range []rat.Rat{ri(0), ri(2), ri(4), ri(8)} {
		if !f.Eval(tt).Equal(s.HW(tt)) {
			t.Errorf("HWFunc disagrees with HW at %s", tt)
		}
	}
	// The returned PLF is a clone: mutating it must not affect the schedule.
	_ = f.Append(ri(100), ri(0), ri(1))
	if !s.HW(ri(200)).Equal(ri(249)) { // 4 + 196·5/4 = 249
		t.Errorf("schedule mutated through HWFunc clone: HW(200) = %s", s.HW(ri(200)))
	}
}

func TestRealAtErrors(t *testing.T) {
	s := Constant(ri(1))
	if _, err := s.RealAt(ri(-1)); err == nil {
		t.Error("negative hardware value should error")
	}
}
