package clock

import (
	"testing"

	"gcs/internal/fixed"
	"gcs/internal/rat"
)

// FuzzScheduleInversion pins window-modified clock inversion across both
// arithmetic lanes: a fuzzed base schedule gets rate surgery over a fuzzed
// window (exactly the search's ModifyWindow move), compiles onto the detected
// tick grid, and every on-grid evaluation and inversion must agree bit for
// bit with the brute-force rational evaluation — the equivalence
// Engine.SwapSchedule's timer re-derivation stands on.
func FuzzScheduleInversion(f *testing.F) {
	f.Add(int64(2), int64(-3), int64(4), int64(3), int64(2), int64(5))
	f.Add(int64(0), int64(8), int64(1), int64(0), int64(4), int64(1))
	f.Add(int64(-8), int64(8), int64(0), int64(7), int64(0), int64(-8))
	f.Fuzz(func(t *testing.T, k1, k2, brk, from, width, pin int64) {
		// Rates live on the sixteenths grid in [1/2, 3/2]: always positive,
		// always compilable at the detected scale.
		rate := func(k int64) rat.Rat {
			k %= 9
			return rat.FromInt(1).Add(rat.MustFrac(k, 16))
		}
		norm := func(v, m int64) int64 {
			v %= m
			if v < 0 {
				v += m
			}
			return v
		}
		segs := []RateSeg{{At: rat.FromInt(0), Rate: rate(k1)}}
		if b := norm(brk, 12); b > 0 {
			segs = append(segs, RateSeg{At: rat.FromInt(b), Rate: rate(k2)})
		}
		base, err := FromRates(segs)
		if err != nil {
			t.Fatal(err)
		}
		lo := norm(from, 12)
		hi := lo + 1 + norm(width, 8)
		mod, err := base.ModifyWindow(rat.FromInt(lo), rat.FromInt(hi), func(rat.Rat) rat.Rat { return rate(pin) })
		if err != nil {
			t.Fatal(err)
		}
		d := fixed.NewDetector()
		mod.AddToDetector(d)
		d.AddDen(16)
		scale, ok := d.Scale()
		if !ok {
			t.Fatal("sixteenths-grid schedule must detect a scale")
		}
		fs, ok := mod.CompileFixed(scale)
		if !ok {
			t.Fatal("sixteenths-grid schedule must compile")
		}
		for tick := int64(0); tick <= 24*scale; tick += scale / 16 {
			tr := fixed.ToRat(tick, scale)
			wantHW := mod.HW(tr)
			hwTick, ok := fs.HWTicks(tick)
			if !ok {
				if _, convOK := fixed.FromRat(wantHW, scale); convOK {
					t.Fatalf("HWTicks(%d) refused the on-grid reading %s", tick, wantHW)
				}
				continue
			}
			if got := fixed.ToRat(hwTick, scale); got.Key() != wantHW.Key() {
				t.Fatalf("HWTicks(%d) = %s, want %s", tick, got.Key(), wantHW.Key())
			}
			wantReal, err := mod.RealAt(wantHW)
			if err != nil {
				t.Fatal(err)
			}
			realTick, ok := fs.RealAtTicks(hwTick)
			if !ok {
				if _, convOK := fixed.FromRat(wantReal, scale); convOK {
					t.Fatalf("RealAtTicks(%d) refused the on-grid time %s", hwTick, wantReal)
				}
				continue
			}
			if got := fixed.ToRat(realTick, scale); got.Key() != wantReal.Key() {
				t.Fatalf("RealAtTicks(%d) = %s, want %s", hwTick, got.Key(), wantReal.Key())
			}
		}
	})
}
