package clock

import (
	"testing"
	"testing/quick"

	"gcs/internal/rat"
)

func ri(n int64) rat.Rat    { return rat.FromInt(n) }
func rf(n, d int64) rat.Rat { return rat.MustFrac(n, d) }

func mustRates(t *testing.T, segs []RateSeg) *Schedule {
	t.Helper()
	s, err := FromRates(segs)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestConstant(t *testing.T) {
	s := Constant(ri(1))
	if got := s.HW(ri(10)); !got.Equal(ri(10)) {
		t.Errorf("HW(10) = %s, want 10", got)
	}
	real, err := s.RealAt(ri(7))
	if err != nil {
		t.Fatal(err)
	}
	if !real.Equal(ri(7)) {
		t.Errorf("RealAt(7) = %s, want 7", real)
	}
}

func TestFromRatesValidation(t *testing.T) {
	tests := []struct {
		name string
		segs []RateSeg
	}{
		{"empty", nil},
		{"nonzero start", []RateSeg{{At: ri(1), Rate: ri(1)}}},
		{"non-increasing", []RateSeg{{At: ri(0), Rate: ri(1)}, {At: ri(0), Rate: ri(2)}}},
		{"zero rate", []RateSeg{{At: ri(0), Rate: ri(0)}}},
		{"negative rate", []RateSeg{{At: ri(0), Rate: ri(-1)}}},
	}
	for _, tt := range tests {
		if _, err := FromRates(tt.segs); err == nil {
			t.Errorf("%s: want error", tt.name)
		}
	}
}

func TestHWIntegration(t *testing.T) {
	// Rate 1 on [0,10), 2 on [10,20), 1/2 afterwards.
	s := mustRates(t, []RateSeg{
		{At: ri(0), Rate: ri(1)},
		{At: ri(10), Rate: ri(2)},
		{At: ri(20), Rate: rf(1, 2)},
	})
	tests := []struct{ t, want rat.Rat }{
		{ri(0), ri(0)},
		{ri(5), ri(5)},
		{ri(10), ri(10)},
		{ri(15), ri(20)},
		{ri(20), ri(30)},
		{ri(24), ri(32)},
	}
	for _, tt := range tests {
		if got := s.HW(tt.t); !got.Equal(tt.want) {
			t.Errorf("HW(%s) = %s, want %s", tt.t, got, tt.want)
		}
	}
}

func TestRealAtRoundTrip(t *testing.T) {
	s := mustRates(t, []RateSeg{
		{At: ri(0), Rate: rf(10, 9)}, // γ for ρ = 1/2
		{At: ri(7), Rate: ri(1)},
		{At: ri(13), Rate: rf(5, 4)},
	})
	for i := int64(0); i <= 60; i++ {
		h := rf(i, 3)
		real, err := s.RealAt(h)
		if err != nil {
			t.Fatalf("RealAt(%s): %v", h, err)
		}
		if got := s.HW(real); !got.Equal(h) {
			t.Errorf("HW(RealAt(%s)) = %s", h, got)
		}
	}
}

func TestRateAt(t *testing.T) {
	s := mustRates(t, []RateSeg{
		{At: ri(0), Rate: ri(1)},
		{At: ri(10), Rate: ri(2)},
	})
	if got := s.RateAt(ri(5)); !got.Equal(ri(1)) {
		t.Errorf("RateAt(5) = %s", got)
	}
	if got := s.RateAt(ri(10)); !got.Equal(ri(2)) {
		t.Errorf("RateAt(10) = %s (right-continuous)", got)
	}
	if got := s.RateAt(ri(99)); !got.Equal(ri(2)) {
		t.Errorf("RateAt(99) = %s", got)
	}
}

func TestValidateDrift(t *testing.T) {
	s := mustRates(t, []RateSeg{
		{At: ri(0), Rate: ri(1)},
		{At: ri(5), Rate: rf(10, 9)},
	})
	if err := s.ValidateDrift(rf(1, 2)); err != nil {
		t.Errorf("rates within [1/2, 3/2] should validate: %v", err)
	}
	if err := s.ValidateDrift(rf(1, 10)); err == nil {
		t.Error("10/9 > 1+1/10 should fail validation")
	}
}

func TestValidateRange(t *testing.T) {
	s := mustRates(t, []RateSeg{
		{At: ri(0), Rate: ri(2)},
		{At: ri(5), Rate: ri(1)},
	})
	if err := s.ValidateRange(ri(6), ri(10), ri(1), ri(1)); err != nil {
		t.Errorf("window rate exactly 1 should validate: %v", err)
	}
	if err := s.ValidateRange(ri(0), ri(10), ri(1), ri(1)); err == nil {
		t.Error("window containing rate 2 should fail")
	}
}

func TestWithRateFrom(t *testing.T) {
	s := mustRates(t, []RateSeg{
		{At: ri(0), Rate: ri(1)},
		{At: ri(10), Rate: ri(2)},
	})
	gamma := rf(10, 9)
	mod, err := s.WithRateFrom(ri(5), gamma)
	if err != nil {
		t.Fatal(err)
	}
	if got := mod.RateAt(ri(4)); !got.Equal(ri(1)) {
		t.Errorf("rate before surgery changed: %s", got)
	}
	if got := mod.RateAt(ri(5)); !got.Equal(gamma) {
		t.Errorf("rate at surgery = %s, want γ", got)
	}
	if got := mod.RateAt(ri(50)); !got.Equal(gamma) {
		t.Errorf("rate after surgery = %s, want γ (old segments dropped)", got)
	}
	// HW agrees before the surgery point.
	if got, want := mod.HW(ri(5)), s.HW(ri(5)); !got.Equal(want) {
		t.Errorf("HW(5) = %s, want %s", got, want)
	}
	// Original untouched.
	if got := s.RateAt(ri(5)); !got.Equal(ri(1)) {
		t.Error("original schedule mutated")
	}
}

func TestWithRateFromAtZero(t *testing.T) {
	s := Constant(ri(1))
	mod, err := s.WithRateFrom(ri(0), ri(2))
	if err != nil {
		t.Fatal(err)
	}
	if got := mod.HW(ri(3)); !got.Equal(ri(6)) {
		t.Errorf("HW(3) = %s, want 6", got)
	}
}

func TestModifyWindow(t *testing.T) {
	// Paper's Bounded Increase surgery: add ρ/4 to rates in a window.
	s := mustRates(t, []RateSeg{
		{At: ri(0), Rate: ri(1)},
		{At: ri(10), Rate: rf(9, 8)},
	})
	delta := rf(1, 8) // ρ/4 for ρ = 1/2
	mod, err := s.ModifyWindow(ri(6), ri(12), func(r rat.Rat) rat.Rat { return r.Add(delta) })
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ t, want rat.Rat }{
		{ri(0), ri(1)},
		{ri(5), ri(1)},
		{ri(6), rf(9, 8)},   // 1 + 1/8
		{ri(10), rf(10, 8)}, // 9/8 + 1/8
		{ri(11), rf(10, 8)},
		{ri(12), rf(9, 8)}, // restored
		{ri(20), rf(9, 8)},
	}
	for _, tt := range cases {
		if got := mod.RateAt(tt.t); !got.Equal(tt.want) {
			t.Errorf("RateAt(%s) = %s, want %s", tt.t, got, tt.want)
		}
	}
}

func TestModifyWindowErrors(t *testing.T) {
	s := Constant(ri(1))
	if _, err := s.ModifyWindow(ri(7), ri(5), func(r rat.Rat) rat.Rat { return r }); err == nil {
		t.Error("inverted window should error")
	}
	if _, err := s.ModifyWindow(ri(-1), ri(5), func(r rat.Rat) rat.Rat { return r }); err == nil {
		t.Error("negative start should error")
	}
}

// TestModifyWindowZeroWidthNoOp: [t, t) contains no time, so a window that
// collapses to a point returns the schedule unmodified instead of erroring —
// a searched rate-surgery window degenerating to a point must never abort
// the whole search.
func TestModifyWindowZeroWidthNoOp(t *testing.T) {
	s := Constant(ri(1))
	double := func(r rat.Rat) rat.Rat { return r.Add(r) }
	mod, err := s.ModifyWindow(ri(5), ri(5), double)
	if err != nil {
		t.Fatalf("zero-width window errored: %v", err)
	}
	segs := mod.Rates()
	if len(segs) != 1 || !segs[0].Rate.Equal(ri(1)) {
		t.Fatalf("zero-width window modified the schedule: %+v", segs)
	}
}

// TestAgreesBefore: the precondition check Engine.SwapSchedule stands on —
// two schedules agree before t exactly when their rate functions coincide on
// [0, t), independent of how the segment lists are cut.
func TestAgreesBefore(t *testing.T) {
	base := mustRates(t, []RateSeg{
		{At: ri(0), Rate: ri(1)},
		{At: ri(10), Rate: rf(9, 8)},
	})
	mod, err := base.ModifyWindow(ri(4), ri(8), func(rat.Rat) rat.Rat { return rf(3, 2) })
	if err != nil {
		t.Fatal(err)
	}
	if !base.AgreesBefore(base, ri(100)) {
		t.Error("schedule does not agree with itself")
	}
	if !mod.AgreesBefore(base, ri(4)) || !base.AgreesBefore(mod, ri(4)) {
		t.Error("window surgery at 4 must agree before its own start")
	}
	if mod.AgreesBefore(base, ri(5)) || base.AgreesBefore(mod, ri(5)) {
		t.Error("window surgery must disagree once the window opens")
	}
	// Vacuous domain: nothing precedes 0, so any two schedules agree.
	if !Constant(ri(1)).AgreesBefore(Constant(rf(1, 2)), ri(0)) {
		t.Error("empty prefix must agree vacuously")
	}
	// Segment cuts don't matter: a redundant breakpoint with an equal rate
	// describes the same function.
	redundant := mustRates(t, []RateSeg{
		{At: ri(0), Rate: ri(1)},
		{At: ri(3), Rate: ri(1)},
		{At: ri(10), Rate: rf(9, 8)},
	})
	if !redundant.AgreesBefore(base, ri(100)) || !base.AgreesBefore(redundant, ri(100)) {
		t.Error("redundant segmentation of the same rate function must agree")
	}
}

func TestModifyWindowCoalesces(t *testing.T) {
	s := Constant(ri(1))
	mod, err := s.ModifyWindow(ri(2), ri(4), func(r rat.Rat) rat.Rat { return r })
	if err != nil {
		t.Fatal(err)
	}
	if got := len(mod.Rates()); got != 1 {
		t.Errorf("identity surgery should coalesce to 1 segment, got %d", got)
	}
}

// Property: HW is strictly increasing and RealAt inverts it, for random
// small schedules.
func TestQuickHWInverse(t *testing.T) {
	f := func(rates [3]uint8, probe uint8) bool {
		segs := []RateSeg{{At: ri(0), Rate: rf(int64(rates[0]%4)+1, 2)}}
		at := int64(0)
		for _, r := range rates[1:] {
			at += int64(r%6) + 1
			segs = append(segs, RateSeg{At: ri(at), Rate: rf(int64(r%4)+1, 2)})
		}
		s, err := FromRates(segs)
		if err != nil {
			return false
		}
		h := rf(int64(probe), 2)
		real, err := s.RealAt(h)
		if err != nil {
			return false
		}
		return s.HW(real).Equal(h)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: WithRateFrom preserves HW readings before the surgery point.
func TestQuickWithRateFromPrefix(t *testing.T) {
	f := func(rates [3]uint8, cutU, probeU uint8) bool {
		segs := []RateSeg{{At: ri(0), Rate: rf(int64(rates[0]%4)+1, 2)}}
		at := int64(0)
		for _, r := range rates[1:] {
			at += int64(r%6) + 1
			segs = append(segs, RateSeg{At: ri(at), Rate: rf(int64(r%4)+1, 2)})
		}
		s, err := FromRates(segs)
		if err != nil {
			return false
		}
		cut := rf(int64(cutU%30), 2)
		mod, err := s.WithRateFrom(cut, rf(10, 9))
		if err != nil {
			return false
		}
		probe := rf(int64(probeU%30), 2)
		if probe.Greater(cut) {
			probe = cut
		}
		return mod.HW(probe).Equal(s.HW(probe))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
