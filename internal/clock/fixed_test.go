package clock

import (
	"testing"

	"gcs/internal/fixed"
	"gcs/internal/rat"
)

// detectScale runs the detector over a schedule plus extra denominators, the
// way the engine does at construction.
func detectScale(t *testing.T, s *Schedule, extraDens ...int64) int64 {
	t.Helper()
	d := fixed.NewDetector()
	s.AddToDetector(d)
	for _, den := range extraDens {
		d.AddDen(den)
	}
	scale, ok := d.Scale()
	if !ok {
		t.Fatal("scale detection failed")
	}
	return scale
}

func TestFixedScheduleMatchesRatLane(t *testing.T) {
	s, err := FromRates([]RateSeg{
		{At: rat.FromInt(0), Rate: rat.MustFrac(9, 8)},
		{At: rat.MustFrac(7, 2), Rate: rat.MustFrac(17, 16)},
		{At: rat.FromInt(6), Rate: rat.MustFrac(5, 4)},
	})
	if err != nil {
		t.Fatal(err)
	}
	scale := detectScale(t, s, 8)
	fs, ok := s.CompileFixed(scale)
	if !ok {
		t.Fatal("CompileFixed failed on a grid-friendly schedule")
	}
	// Sweep the grid: every on-grid real time must evaluate identically in
	// both lanes, and every resulting reading must invert identically.
	for tick := int64(0); tick < 12*scale; tick += scale / 8 {
		tr := fixed.ToRat(tick, scale)
		wantHW := s.HW(tr)
		hwTick, ok := fs.HWTicks(tick)
		if !ok {
			// Off-grid reading: the rat lane owns it — just check it truly
			// is off-grid at this scale.
			if _, convOK := fixed.FromRat(wantHW, scale); convOK {
				t.Fatalf("HWTicks(%d) refused an on-grid reading %s", tick, wantHW)
			}
			continue
		}
		if got := fixed.ToRat(hwTick, scale); got.Key() != wantHW.Key() {
			t.Fatalf("HWTicks(%d) = %s, want %s", tick, got.Key(), wantHW.Key())
		}
		// Invert the reading back.
		wantReal, err := s.RealAt(wantHW)
		if err != nil {
			t.Fatal(err)
		}
		realTick, ok := fs.RealAtTicks(hwTick)
		if !ok {
			if _, convOK := fixed.FromRat(wantReal, scale); convOK {
				t.Fatalf("RealAtTicks(%d) refused an on-grid time %s", hwTick, wantReal)
			}
			continue
		}
		if got := fixed.ToRat(realTick, scale); got.Key() != wantReal.Key() {
			t.Fatalf("RealAtTicks(%d) = %s, want %s", hwTick, got.Key(), wantReal.Key())
		}
	}
}

func TestFixedScheduleDiverse(t *testing.T) {
	scheds, err := Diverse(16, rat.FromInt(1), rat.MustFrac(5, 4), 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	d := fixed.NewDetector()
	for _, s := range scheds {
		s.AddToDetector(d)
	}
	d.AddDen(8) // the benchmarks' adversary delay quantization
	scale, ok := d.Scale()
	if !ok {
		t.Fatal("Diverse schedules must fit the bounded scale")
	}
	for i, s := range scheds {
		fs, ok := s.CompileFixed(scale)
		if !ok {
			t.Fatalf("schedule %d did not compile", i)
		}
		for tick := int64(0); tick <= 32*scale; tick += scale / 8 {
			hwTick, ok := fs.HWTicks(tick)
			if !ok {
				continue
			}
			want := s.HW(fixed.ToRat(tick, scale))
			if got := fixed.ToRat(hwTick, scale); got.Key() != want.Key() {
				t.Fatalf("schedule %d: HWTicks(%d) = %s, want %s", i, tick, got.Key(), want.Key())
			}
		}
	}
}

func TestFixedScheduleOffGridFallsBack(t *testing.T) {
	// Rate 10/7 at scale 16: the schedule compiles (its breakpoint data is
	// on-grid), but readings that land on sevenths report !ok per value.
	s := Constant(rat.MustFrac(10, 7))
	fs, ok := s.CompileFixed(16)
	if !ok {
		t.Fatal("constant 10/7 schedule must compile: its breakpoints are on-grid")
	}
	if _, ok := fs.HWTicks(1); ok {
		t.Fatal("HWTicks(1) = 10/7 ticks is off-grid and must fall back")
	}
	if hw, ok := fs.HWTicks(7); !ok || hw != 10 {
		t.Fatalf("HWTicks(7) = %d, %v; want 10, true", hw, ok)
	}
	if _, ok := s.CompileFixed(0); ok {
		t.Fatal("scale 0 must not compile")
	}
}

func TestRealAtTicksBelowDomain(t *testing.T) {
	s := Constant(rat.FromInt(1))
	fs, ok := s.CompileFixed(16)
	if !ok {
		t.Fatal("constant schedule must compile")
	}
	if _, ok := fs.RealAtTicks(-1); ok {
		t.Fatal("negative reading must fall back to the rat lane")
	}
	if _, ok := fs.HWTicks(-1); ok {
		t.Fatal("negative time must fall back to the rat lane")
	}
}
