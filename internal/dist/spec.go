// Package dist turns internal/search into a coordinator/worker service: a
// coordinator partitions each campaign generation into deterministic shards
// and dispatches them to workers over a versioned JSON-over-HTTP protocol;
// workers rebuild the shard from the wire generation and run the same
// prefix-cached evaluation the single-process search runs; the coordinator
// merges shard results with the argmax-by-candidate-index reduction.
//
// The whole design leans on one invariant, proved and enforced in
// internal/search: a Campaign's merge is byte-identical to single-process
// Search for any shard layout, any shard count, and any arrival order
// (EngineSteps excepted — trunk prefixes replay once per shard). dist
// therefore owes no correctness argument of its own; what it adds is the
// service plumbing — a campaign *spec* both sides rebuild identical
// search.Options from, worker timeout/retry with reassignment to surviving
// workers, and local degradation (a shard no worker can evaluate runs on the
// coordinator, with the reason recorded in Result.Notes) — so a worker crash
// mid-campaign changes nothing about the final bytes.
package dist

import (
	"fmt"

	"gcs/internal/algorithms"
	"gcs/internal/core"
	"gcs/internal/network"
	"gcs/internal/rat"
	"gcs/internal/search"
	"gcs/internal/sim"
)

// CellSpec names one topology instance of a campaign. Cells are specs, not
// objects: coordinator and worker each rebuild the network from the spec, so
// only plain data crosses the wire.
type CellSpec struct {
	// Name labels the cell in progress events and results (defaults to
	// "topology/n" when empty).
	Name string `json:"name,omitempty"`
	// Topology is one of line | ring | grid | star | complete | two-node.
	Topology string `json:"topology"`
	// N is the node count (grid uses the nearest square; two-node ignores it).
	N int `json:"n,omitempty"`
	// Diameter parameterizes the two-node cell's distance d and the star /
	// complete edge length (default 1). Line, ring, and grid derive their
	// diameter from N.
	Diameter rat.Rat `json:"diameter,omitempty"`
	// Duration is the cell's real-time horizon.
	Duration rat.Rat `json:"duration"`
}

// Label returns the cell's display name.
func (c CellSpec) Label() string {
	if c.Name != "" {
		return c.Name
	}
	if c.Topology == "two-node" {
		return fmt.Sprintf("two-node d=%s", c.Diameter)
	}
	return fmt.Sprintf("%s n=%d", c.Topology, c.N)
}

// Network rebuilds the cell's network. Deterministic in the spec alone:
// coordinator and workers agree on the topology by construction.
func (c CellSpec) Network() (*network.Network, error) {
	switch c.Topology {
	case "line":
		return network.Line(c.N)
	case "ring":
		return network.Ring(c.N)
	case "grid":
		side := 1
		for (side+1)*(side+1) <= c.N {
			side++
		}
		return network.Grid2D(side, side)
	case "star":
		return network.Star(c.N, c.edge())
	case "complete":
		return network.Complete(c.N, c.edge())
	case "two-node":
		if c.Diameter.Sign() <= 0 {
			return nil, fmt.Errorf("dist: two-node cell needs a positive diameter, got %s", c.Diameter)
		}
		return network.TwoNode(c.Diameter)
	default:
		return nil, fmt.Errorf("dist: unknown topology %q (want line | ring | grid | star | complete | two-node)", c.Topology)
	}
}

// edge is the star/complete edge length: Diameter when given, else 1.
func (c CellSpec) edge() rat.Rat {
	if c.Diameter.Sign() > 0 {
		return c.Diameter
	}
	return rat.FromInt(1)
}

// CampaignSpec is a whole distributed campaign in plain data: the protocol,
// the cells, the move-set budget, and the adversary — everything both sides
// need to rebuild identical search.Options. It is the unit the wire protocol
// ships (inside every ShardRequest) and the unit `gcssearch plan` prices.
type CampaignSpec struct {
	// Protocol is one of the gcssim names: null | max-gossip | max-flood |
	// bounded-max | gradient | llw | root-sync | rbs.
	Protocol string `json:"protocol"`
	// Cells are searched one after another; each is its own Campaign.
	Cells []CellSpec `json:"cells"`
	// Rho is the drift bound ρ (default 1/2).
	Rho rat.Rat `json:"rho,omitempty"`
	// Adversary seeds the search and serves as the tail for unscripted
	// decisions: midpoint | zero | max | random (default midpoint).
	Adversary string `json:"adversary,omitempty"`
	// Seed feeds the random adversary.
	Seed uint64 `json:"seed,omitempty"`
	// Objective is global | local | margin (default global). The margin
	// objective compares against the linear envelope f(d) = 1 + d.
	Objective string `json:"objective,omitempty"`

	// Search budget, zero meaning the search.Options default.
	Rounds         int     `json:"rounds,omitempty"`
	Beam           int     `json:"beam,omitempty"`
	DelayMutations int     `json:"delay_mutations,omitempty"`
	RateWindows    int     `json:"rate_windows,omitempty"`
	MutateTail     rat.Rat `json:"mutate_tail,omitempty"`
	// DisablePrefixCache re-simulates every candidate from scratch.
	DisablePrefixCache bool `json:"disable_prefix_cache,omitempty"`
	// Threads bounds each evaluator's local worker pool (0 = GOMAXPROCS).
	// A worker process may override it with its own capacity.
	Threads int `json:"threads,omitempty"`
}

// Validate checks the spec rebuilds: every cell's network, the protocol, the
// adversary, and the objective.
func (s *CampaignSpec) Validate() error {
	if len(s.Cells) == 0 {
		return fmt.Errorf("dist: campaign has no cells")
	}
	for i := range s.Cells {
		if _, err := s.Cells[i].Network(); err != nil {
			return fmt.Errorf("dist: cell %d: %w", i, err)
		}
		if s.Cells[i].Duration.Sign() <= 0 {
			return fmt.Errorf("dist: cell %d (%s): non-positive duration %s", i, s.Cells[i].Label(), s.Cells[i].Duration)
		}
	}
	if _, err := buildProtocol(s.Protocol); err != nil {
		return err
	}
	if _, err := buildAdversary(s.adversaryName(), s.Seed); err != nil {
		return err
	}
	if _, err := search.ParseObjective(s.objectiveName()); err != nil {
		return err
	}
	if s.MutateTail.Sign() < 0 || s.MutateTail.Greater(rat.FromInt(1)) {
		return fmt.Errorf("dist: mutate_tail %s outside [0, 1]", s.MutateTail)
	}
	return nil
}

func (s *CampaignSpec) adversaryName() string {
	if s.Adversary == "" {
		return "midpoint"
	}
	return s.Adversary
}

func (s *CampaignSpec) objectiveName() string {
	if s.Objective == "" {
		return "global"
	}
	return s.Objective
}

func (s *CampaignSpec) rho() rat.Rat {
	if s.Rho.Sign() > 0 {
		return s.Rho
	}
	return rat.MustFrac(1, 2)
}

// CellOptions rebuilds the search.Options for cell i. Both sides of the wire
// call exactly this, so coordinator-side Campaign state and worker-side
// EvaluateShard always describe the same search — the precondition for the
// byte-identity guarantee.
func (s *CampaignSpec) CellOptions(i int) (search.Options, error) {
	if i < 0 || i >= len(s.Cells) {
		return search.Options{}, fmt.Errorf("dist: cell %d of %d", i, len(s.Cells))
	}
	cell := s.Cells[i]
	net, err := cell.Network()
	if err != nil {
		return search.Options{}, err
	}
	proto, err := buildProtocol(s.Protocol)
	if err != nil {
		return search.Options{}, err
	}
	base, err := buildAdversary(s.adversaryName(), s.Seed)
	if err != nil {
		return search.Options{}, err
	}
	obj, err := search.ParseObjective(s.objectiveName())
	if err != nil {
		return search.Options{}, err
	}
	opt := search.Options{
		Net:                net,
		Protocol:           proto,
		Duration:           cell.Duration,
		Rho:                s.rho(),
		Base:               base,
		Objective:          obj,
		Rounds:             s.Rounds,
		Beam:               s.Beam,
		DelayMutations:     s.DelayMutations,
		RateWindows:        s.RateWindows,
		MutateTail:         s.MutateTail,
		DisablePrefixCache: s.DisablePrefixCache,
		Workers:            s.Threads,
	}
	if obj == search.ObjectiveGradientMargin {
		// The same envelope gcssim -search compares against: f(d) = 1 + d.
		opt.Gradient = core.LinearGradient(rat.FromInt(1), rat.FromInt(1))
	}
	return opt, nil
}

// buildProtocol maps the gcssim protocol vocabulary onto constructors.
func buildProtocol(name string) (sim.Protocol, error) {
	switch name {
	case "null":
		return algorithms.Null(), nil
	case "max-gossip":
		return algorithms.MaxGossip(rat.FromInt(1)), nil
	case "max-flood":
		return algorithms.MaxFlood(rat.FromInt(1)), nil
	case "bounded-max":
		return algorithms.BoundedMax(rat.FromInt(1), rat.FromInt(1)), nil
	case "gradient":
		return algorithms.Gradient(algorithms.DefaultGradientParams()), nil
	case "llw":
		return algorithms.LLW(algorithms.DefaultLLWParams()), nil
	case "root-sync":
		return algorithms.RootSync(rat.FromInt(1), 0), nil
	case "rbs":
		return algorithms.RBS(rat.FromInt(2), 0), nil
	default:
		return nil, fmt.Errorf("dist: unknown protocol %q", name)
	}
}

// buildAdversary maps the gcssim adversary vocabulary onto constructors. All
// four are stateless, hence shard-safe; stateful bases enter campaigns only
// through the programmatic API, where Campaign.Shardable gates dispatch.
func buildAdversary(name string, seed uint64) (sim.Adversary, error) {
	switch name {
	case "midpoint":
		return sim.Midpoint(), nil
	case "zero":
		return sim.FractionAdversary{Frac: rat.Rat{}}, nil
	case "max":
		return sim.FractionAdversary{Frac: rat.FromInt(1)}, nil
	case "random":
		return sim.HashAdversary{Seed: seed, Denom: 8}, nil
	default:
		return nil, fmt.Errorf("dist: unknown adversary %q", name)
	}
}
