package dist

import (
	"fmt"
	"time"

	"gcs/internal/engine"
	"gcs/internal/network"
	"gcs/internal/perf"
	"gcs/internal/rat"
)

// CellPlan prices one cell of a campaign without executing any engine step:
// exact candidate-count upper bounds from the move-set arithmetic, engine
// steps from a topology cost model, wall-clock from a measured ns/step.
type CellPlan struct {
	Cell  CellSpec `json:"cell"`
	Nodes int      `json:"nodes"`
	// Lane is the arithmetic lane a zero-step probe engine for this cell
	// detects ("fixed" or "rat"), and NsPerStep / CostSource the lane's
	// modeled step cost — fixed-lane cells price several times cheaper than
	// rat-lane cells once the snapshot carries lane-tagged measurements.
	Lane       string  `json:"lane"`
	NsPerStep  float64 `json:"ns_per_step"`
	CostSource string  `json:"cost_source"`
	// Generations is the maximum number of evaluated generations: the
	// initial base generation plus the mutation-round budget.
	Generations int `json:"generations"`
	// CandidatesPerGen bounds each generation's pool: index 0 is the initial
	// generation (exactly 1, the unmutated base), later entries the per-round
	// upper bound Beam × (rate flips + windowed surgery + delay snaps).
	// Deduplication and beam convergence only shrink the real pools.
	CandidatesPerGen []int `json:"candidates_per_gen"`
	// MaxCandidates is the sum of CandidatesPerGen.
	MaxCandidates int `json:"max_candidates"`
	// StepsPerCandidate estimates one candidate's full execution length:
	// n init events plus duration × (one timer per node per time unit + one
	// delivery per directed edge per time unit) — the event density of the
	// gossip-style protocols the repo ships.
	StepsPerCandidate uint64 `json:"steps_per_candidate"`
	// EstSteps = MaxCandidates × StepsPerCandidate.
	EstSteps uint64 `json:"est_steps"`
}

// Plan prices a whole campaign.
type Plan struct {
	Cells []CellPlan `json:"cells"`
	// MaxCandidates and EstSteps total the per-cell figures.
	MaxCandidates int    `json:"max_candidates"`
	EstSteps      uint64 `json:"est_steps"`
	// NsPerStep and CostSource are the applied cost model (a BENCH_perf
	// measurement name, or "default").
	NsPerStep  float64 `json:"ns_per_step"`
	CostSource string  `json:"cost_source"`
	// EstSerial is the estimated single-evaluator wall-clock; EstParallel
	// divides by the planned worker count (ideal speedup — an upper bound on
	// the benefit, not a promise).
	EstSerialNs   float64 `json:"est_serial_ns"`
	EstParallelNs float64 `json:"est_parallel_ns"`
	Workers       int     `json:"workers"`
}

// EstSerial returns the serial estimate as a duration.
func (p *Plan) EstSerial() time.Duration { return time.Duration(p.EstSerialNs) }

// EstParallel returns the parallel estimate as a duration.
func (p *Plan) EstParallel() time.Duration { return time.Duration(p.EstParallelNs) }

// PlanCampaign prices spec against a cost model for a fleet of `workers`
// evaluators (0 = 1). No candidate is evaluated: the counts are arithmetic
// over the spec, and the only engine work is one zero-step probe per cell to
// detect the arithmetic lane its evaluations will run on, so lane-tagged
// snapshots price fixed-lane and rat-lane cells at their measured costs.
func PlanCampaign(spec CampaignSpec, model perf.CostModel, workers int) (*Plan, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if workers < 1 {
		workers = 1
	}
	// Mirror search.Options defaults without running normalize: the planner
	// must not need a live search.
	rounds, beam, delayMut := spec.Rounds, spec.Beam, spec.DelayMutations
	if rounds <= 0 {
		rounds = 4
	}
	if beam <= 0 {
		beam = 2
	}
	if delayMut <= 0 {
		delayMut = 16
	}
	p := &Plan{NsPerStep: model.NsPerStep, CostSource: model.Source, Workers: workers}
	for _, cell := range spec.Cells {
		net, err := cell.Network()
		if err != nil {
			return nil, err
		}
		n := net.N()
		lane := probeLane(spec, net)
		// Per mutation generation, each of the Beam parents contributes at
		// most: 2 whole-run rate flips per node (to 1−ρ and 1+ρ; the third
		// choice always matches the current rate), 2 windowed pins per node
		// per window, and |delaySnaps| = 3 snaps per sampled decision.
		perParent := 2*n + 2*n*spec.RateWindows + 3*delayMut
		cp := CellPlan{
			Cell:             cell,
			Nodes:            n,
			Generations:      1 + rounds,
			CandidatesPerGen: []int{1},
		}
		cp.MaxCandidates = 1
		for r := 0; r < rounds; r++ {
			cp.CandidatesPerGen = append(cp.CandidatesPerGen, beam*perParent)
			cp.MaxCandidates += beam * perParent
		}
		cp.StepsPerCandidate = estimateSteps(net, cell.Duration)
		cp.EstSteps = uint64(cp.MaxCandidates) * cp.StepsPerCandidate
		cp.Lane = lane
		cp.NsPerStep, cp.CostSource = model.ForLane(lane)
		p.Cells = append(p.Cells, cp)
		p.MaxCandidates += cp.MaxCandidates
		p.EstSteps += cp.EstSteps
		p.EstSerialNs += float64(cp.EstSteps) * cp.NsPerStep
	}
	p.EstParallelNs = p.EstSerialNs / float64(workers)
	return p, nil
}

// probeLane builds a zero-step engine with the cell's network, protocol,
// base adversary, drift bound, and the default unit-rate schedules, and asks
// which arithmetic lane detection picks. The probe mirrors the engines the
// campaign's search will construct (mutated rates stay on the 1±ρ grid, so
// the base configuration's lane is the campaign's lane); any construction
// error prices conservatively as the rat lane.
func probeLane(spec CampaignSpec, net *network.Network) string {
	proto, err := buildProtocol(spec.Protocol)
	if err != nil {
		return "rat"
	}
	adv, err := buildAdversary(spec.adversaryName(), spec.Seed)
	if err != nil {
		return "rat"
	}
	eng, err := engine.New(net,
		engine.WithProtocol(proto),
		engine.WithAdversary(adv),
		engine.WithRho(spec.rho()),
	)
	if err != nil {
		return "rat"
	}
	return eng.TimeLane()
}

// estimateSteps models one candidate run's dispatched events: n inits, and
// per unit of real time one timer firing per node plus one delivery per
// directed neighbor edge — the event density of periodic-gossip protocols.
// It is an order-of-magnitude planning figure, not a measurement.
func estimateSteps(net interface {
	N() int
	Neighbors(i int) []int
}, duration rat.Rat) uint64 {
	n := net.N()
	edges := 0
	for i := 0; i < n; i++ {
		edges += len(net.Neighbors(i))
	}
	dur := duration.Float64()
	steps := float64(n) + dur*float64(n+edges)
	if steps < float64(n) {
		steps = float64(n)
	}
	return uint64(steps)
}

// Render formats a plan as the human-readable `gcssearch plan` report.
func (p *Plan) Render() string {
	out := ""
	for i, cp := range p.Cells {
		out += fmt.Sprintf("cell %d %-20s %d nodes, %d generations, ≤ %d candidates, ~%d steps/candidate, ~%d engine steps, %s lane @ %.0f ns/step\n",
			i, cp.Cell.Label(), cp.Nodes, cp.Generations, cp.MaxCandidates, cp.StepsPerCandidate, cp.EstSteps, cp.Lane, cp.NsPerStep)
	}
	out += fmt.Sprintf("total: ≤ %d candidates, ~%d engine steps\n", p.MaxCandidates, p.EstSteps)
	out += fmt.Sprintf("cost model: %.0f ns/step (%s)\n", p.NsPerStep, p.CostSource)
	out += fmt.Sprintf("estimated wall-clock: %s serial, %s across %d evaluator(s)\n",
		p.EstSerial().Round(time.Millisecond), p.EstParallel().Round(time.Millisecond), p.Workers)
	return out
}
