package dist

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"gcs/internal/perf"
	"gcs/internal/rat"
	"gcs/internal/search"
)

// e13LongSpec is the acceptance workload: the E13 -long two-node diameter-16
// search configuration (the same cell BenchmarkSearchPrefixCached measures).
func e13LongSpec() CampaignSpec {
	return CampaignSpec{
		Protocol: "gradient",
		Cells: []CellSpec{{
			Topology: "two-node",
			Diameter: rat.FromInt(16),
			Duration: rat.FromInt(32),
		}},
		Rho:            rat.MustFrac(1, 2),
		Rounds:         3,
		Beam:           2,
		DelayMutations: 8,
		MutateTail:     rat.MustFrac(1, 2),
	}
}

// singleProcess runs the spec's one cell through plain search.Search.
func singleProcess(t *testing.T, spec CampaignSpec) *search.Result {
	t.Helper()
	opt, err := spec.CellOptions(0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := search.Search(opt)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// resultsMatch asserts byte-identity of the distributed contract: best
// value, winning candidate index, witness, schedule script, rates,
// schedules, and the search accounting — everything except EngineSteps
// (shard-layout dependent by design) and Notes (degradations are the
// coordinator's story to tell).
func resultsMatch(t *testing.T, want, got *search.Result) {
	t.Helper()
	if !got.Best.Equal(want.Best) || !got.Baseline.Equal(want.Baseline) {
		t.Fatalf("values differ: best %s vs %s, baseline %s vs %s", got.Best, want.Best, got.Baseline, want.Baseline)
	}
	if got.BestCandidate != want.BestCandidate {
		t.Fatalf("best candidate index differs: %d vs %d", got.BestCandidate, want.BestCandidate)
	}
	if got.Rounds != want.Rounds || got.Evaluated != want.Evaluated {
		t.Fatalf("rounds/evaluated differ: %d/%d vs %d/%d", got.Rounds, got.Evaluated, want.Rounds, want.Evaluated)
	}
	if got.CandidateSteps != want.CandidateSteps {
		t.Fatalf("candidate steps differ: %d vs %d", got.CandidateSteps, want.CandidateSteps)
	}
	if got.Witness.I != want.Witness.I || got.Witness.J != want.Witness.J ||
		!got.Witness.Skew.Equal(want.Witness.Skew) || !got.Witness.At.Equal(want.Witness.At) {
		t.Fatalf("witness differs: %+v vs %+v", got.Witness, want.Witness)
	}
	if len(got.Script) != len(want.Script) {
		t.Fatalf("script sizes differ: %d vs %d", len(got.Script), len(want.Script))
	}
	for k, v := range want.Script {
		gv, ok := got.Script[k]
		if !ok || !gv.Equal(v) {
			t.Fatalf("script entry %v differs: %s vs %s (present=%v)", k, gv, v, ok)
		}
	}
	if len(got.Rates) != len(want.Rates) {
		t.Fatalf("rates lengths differ: %d vs %d", len(got.Rates), len(want.Rates))
	}
	for i := range want.Rates {
		if !got.Rates[i].Equal(want.Rates[i]) {
			t.Fatalf("rate %d differs: %s vs %s", i, got.Rates[i], want.Rates[i])
		}
	}
	if len(got.Schedules) != len(want.Schedules) {
		t.Fatalf("schedule counts differ: %d vs %d", len(got.Schedules), len(want.Schedules))
	}
	for i := range want.Schedules {
		ga, wa := got.Schedules[i].Rates(), want.Schedules[i].Rates()
		if len(ga) != len(wa) {
			t.Fatalf("schedule %d has %d vs %d segments", i, len(ga), len(wa))
		}
		for k := range wa {
			if !ga[k].At.Equal(wa[k].At) || !ga[k].Rate.Equal(wa[k].Rate) {
				t.Fatalf("schedule %d segment %d differs", i, k)
			}
		}
	}
}

// startWorkers spawns k in-process workers.
func startWorkers(t *testing.T, k int) ([]*httptest.Server, []string) {
	t.Helper()
	servers := make([]*httptest.Server, k)
	urls := make([]string, k)
	for i := range servers {
		servers[i] = httptest.NewServer((&Worker{}).Handler())
		urls[i] = servers[i].URL
		t.Cleanup(servers[i].Close)
	}
	return servers, urls
}

// TestDistributedMatchesSingleProcess: the acceptance matrix — 1, 2, and 4
// in-process workers produce byte-identical results to single-process
// Search on the E13 -long workload.
func TestDistributedMatchesSingleProcess(t *testing.T) {
	spec := e13LongSpec()
	want := singleProcess(t, spec)
	for _, k := range []int{1, 2, 4} {
		k := k
		t.Run(fmt.Sprintf("workers=%d", k), func(t *testing.T) {
			_, urls := startWorkers(t, k)
			var events []ProgressEvent
			coord := &Coordinator{
				Spec:    spec,
				Workers: urls,
				Timeout: 30 * time.Second,
				Progress: func(ev ProgressEvent) {
					events = append(events, ev)
				},
			}
			cells, err := coord.Run()
			if err != nil {
				t.Fatal(err)
			}
			if len(cells) != 1 {
				t.Fatalf("got %d cell results, want 1", len(cells))
			}
			resultsMatch(t, want, cells[0].Result)
			if len(cells[0].Result.Notes) != 0 {
				t.Fatalf("healthy fleet produced degradation notes: %v", cells[0].Result.Notes)
			}
			if len(events) != want.Rounds+1 && len(events) != want.Rounds+2 {
				// One event per evaluated generation: the initial one, every
				// mutation round, and possibly a final non-improving round.
				t.Fatalf("got %d progress events for %d rounds", len(events), want.Rounds)
			}
			for _, ev := range events {
				if ev.Local != 0 {
					t.Fatalf("healthy fleet degraded to local evaluation: %+v", ev)
				}
			}
		})
	}
}

// TestDistributedSurvivesWorkerKill: killing a worker mid-campaign changes
// nothing about the final bytes. With a survivor the shard is reassigned;
// with no survivors it degrades to coordinator-local evaluation and says so
// in Result.Notes.
func TestDistributedSurvivesWorkerKill(t *testing.T) {
	spec := e13LongSpec()
	want := singleProcess(t, spec)

	t.Run("reassigned-to-survivor", func(t *testing.T) {
		servers, urls := startWorkers(t, 2)
		killed := false
		coord := &Coordinator{
			Spec:    spec,
			Workers: urls,
			Timeout: 30 * time.Second,
			Progress: func(ev ProgressEvent) {
				if !killed {
					// Crash worker 0 after the first merged generation: the
					// next generation's shard 0 dispatch must fail over.
					servers[0].Close()
					killed = true
				}
			},
		}
		cells, err := coord.Run()
		if err != nil {
			t.Fatal(err)
		}
		resultsMatch(t, want, cells[0].Result)
		if !killed {
			t.Fatal("kill hook never ran")
		}
		if len(cells[0].Result.Notes) != 0 {
			t.Fatalf("surviving worker should absorb the shard silently, got notes: %v", cells[0].Result.Notes)
		}
	})

	t.Run("degrades-to-local", func(t *testing.T) {
		servers, urls := startWorkers(t, 1)
		killed := false
		coord := &Coordinator{
			Spec:    spec,
			Workers: urls,
			Timeout: 30 * time.Second,
			Progress: func(ev ProgressEvent) {
				if !killed {
					servers[0].Close()
					killed = true
				}
			},
		}
		cells, err := coord.Run()
		if err != nil {
			t.Fatal(err)
		}
		resultsMatch(t, want, cells[0].Result)
		notes := cells[0].Result.Notes
		if len(notes) == 0 {
			t.Fatal("whole-fleet loss left no degradation note")
		}
		for _, n := range notes {
			if !strings.Contains(n, "degraded to coordinator-local evaluation") {
				t.Fatalf("unexpected note: %q", n)
			}
		}
	})
}

// TestDistributedNoWorkersRunsLocally: an empty fleet is the in-process
// pool, still byte-identical.
func TestDistributedNoWorkersRunsLocally(t *testing.T) {
	spec := e13LongSpec()
	want := singleProcess(t, spec)
	coord := &Coordinator{Spec: spec}
	cells, err := coord.Run()
	if err != nil {
		t.Fatal(err)
	}
	resultsMatch(t, want, cells[0].Result)
}

// TestWorkerRejectsVersionMismatch: the wire protocol is versioned and the
// worker refuses requests it might misinterpret.
func TestWorkerRejectsVersionMismatch(t *testing.T) {
	_, urls := startWorkers(t, 1)
	body, err := json.Marshal(ShardRequest{Version: ProtocolVersion + 1, Spec: e13LongSpec()})
	if err != nil {
		t.Fatal(err)
	}
	res, err := http.Post(urls[0]+PathShard, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusBadRequest {
		t.Fatalf("version mismatch got HTTP %d, want 400", res.StatusCode)
	}
	var sr ShardResponse
	if err := json.NewDecoder(res.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sr.Error, "protocol version") {
		t.Fatalf("mismatch error %q does not name the protocol version", sr.Error)
	}
	if err := Ping(nil, urls[0]); err != nil {
		t.Fatalf("ping failed on a live worker: %v", err)
	}
}

// TestPlanCampaign: `gcssearch plan` pricing — exact candidate bounds and a
// ns/step-based wall-clock estimate, no engine constructed.
func TestPlanCampaign(t *testing.T) {
	spec := e13LongSpec()
	model := perf.CostModel{NsPerStep: 2000, Source: "test"}
	plan, err := PlanCampaign(spec, model, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Cells) != 1 {
		t.Fatalf("got %d cell plans, want 1", len(plan.Cells))
	}
	cp := plan.Cells[0]
	if cp.Nodes != 2 {
		t.Fatalf("two-node cell planned %d nodes", cp.Nodes)
	}
	if cp.Generations != 1+spec.Rounds {
		t.Fatalf("planned %d generations, want %d", cp.Generations, 1+spec.Rounds)
	}
	// Per mutation generation: Beam × (2 rate flips per node + 3 snaps per
	// sampled decision) = 2 × (4 + 24) = 56; plus the initial base.
	wantPerGen := spec.Beam * (2*2 + 3*spec.DelayMutations)
	if cp.CandidatesPerGen[1] != wantPerGen {
		t.Fatalf("planned %d candidates/gen, want %d", cp.CandidatesPerGen[1], wantPerGen)
	}
	if cp.MaxCandidates != 1+spec.Rounds*wantPerGen {
		t.Fatalf("planned %d max candidates, want %d", cp.MaxCandidates, 1+spec.Rounds*wantPerGen)
	}
	// The bound must actually bound: the real run evaluates fewer (dedup,
	// early convergence).
	real := singleProcess(t, spec)
	if real.Evaluated > cp.MaxCandidates {
		t.Fatalf("plan bound %d below real evaluation count %d", cp.MaxCandidates, real.Evaluated)
	}
	if plan.EstSteps == 0 || plan.EstSerialNs <= 0 {
		t.Fatalf("plan has empty cost estimate: %+v", plan)
	}
	if plan.EstParallelNs*4 != plan.EstSerialNs {
		t.Fatalf("parallel estimate %f not serial/4 (%f)", plan.EstParallelNs, plan.EstSerialNs)
	}
	if !strings.Contains(plan.Render(), "ns/step") {
		t.Fatal("plan report does not mention the cost model")
	}
}

// TestSpecValidate rejects the misconfigurations a CLI user will actually
// produce.
func TestSpecValidate(t *testing.T) {
	bad := []CampaignSpec{
		{},
		{Protocol: "gradient"},
		{Protocol: "nope", Cells: []CellSpec{{Topology: "line", N: 3, Duration: rat.FromInt(4)}}},
		{Protocol: "gradient", Cells: []CellSpec{{Topology: "möbius", N: 3, Duration: rat.FromInt(4)}}},
		{Protocol: "gradient", Cells: []CellSpec{{Topology: "line", N: 3}}},
		{Protocol: "gradient", Adversary: "nope", Cells: []CellSpec{{Topology: "line", N: 3, Duration: rat.FromInt(4)}}},
		{Protocol: "gradient", Objective: "nope", Cells: []CellSpec{{Topology: "line", N: 3, Duration: rat.FromInt(4)}}},
		{Protocol: "gradient", Cells: []CellSpec{{Topology: "two-node", Duration: rat.FromInt(4)}}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Fatalf("spec %d validated: %+v", i, s)
		}
	}
	good := e13LongSpec()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestPlanCampaignLanePricing: with a lane-tagged snapshot, each cell is
// priced at its probed lane's measured ns/step, not the lane-agnostic figure.
func TestPlanCampaignLanePricing(t *testing.T) {
	spec := e13LongSpec()
	model := perf.CostModel{
		NsPerStep: 2000, Source: "legacy",
		Lanes: map[string]perf.LaneCost{
			"fixed": {NsPerStep: 500, Source: "SearchPrefixCached/E13"},
			"rat":   {NsPerStep: 1500, Source: "SearchPrefixCached/E13/rat"},
		},
	}
	plan, err := PlanCampaign(spec, model, 1)
	if err != nil {
		t.Fatal(err)
	}
	cp := plan.Cells[0]
	if cp.Lane != "fixed" {
		t.Fatalf("two-node midpoint cell probed lane %q, want fixed", cp.Lane)
	}
	if cp.NsPerStep != 500 || cp.CostSource != "SearchPrefixCached/E13" {
		t.Fatalf("cell priced %v ns/step (%s), want the fixed lane's cost", cp.NsPerStep, cp.CostSource)
	}
	if want := float64(plan.EstSteps) * 500; plan.EstSerialNs != want {
		t.Fatalf("serial estimate %f, want %f from the fixed-lane cost", plan.EstSerialNs, want)
	}
	if !strings.Contains(plan.Render(), "fixed lane") {
		t.Fatal("plan report does not show the per-cell lane")
	}
}
