package dist

import (
	"gcs/internal/engine"
	"gcs/internal/obs"
	"gcs/internal/search"
)

// CoordinatorMetrics is the coordinator's instrument set: fleet health
// (retries, dead workers, local degradation), dispatch latency, and the
// campaign accounting that must reconcile exactly with the merged Result —
// EngineSteps.Value() equals the sum of Result.EngineSteps over the
// coordinator's cells, CandidateSteps likewise, because both are advanced
// from the very same absorbed ShardResults.
type CoordinatorMetrics struct {
	// Cells counts completed cells, Generations merged generations.
	Cells       *obs.Counter
	Generations *obs.Counter
	// GenerationSeconds is the per-generation wall clock (plan + dispatch +
	// merge), CandidatesPerGen observed via Candidates.
	GenerationSeconds *obs.Histogram
	// Candidates counts candidate evaluations absorbed across all shards.
	Candidates *obs.Counter
	// EngineSteps / CandidateSteps mirror the campaign accounting: events
	// dispatched by absorbed shards, and their from-scratch equivalent.
	EngineSteps    *obs.Counter
	CandidateSteps *obs.Counter
	// ShardsRemote / ShardsLocal count where shards actually evaluated.
	ShardsRemote *obs.Counter
	ShardsLocal  *obs.Counter
	// DispatchSeconds is the per-shard remote round-trip latency,
	// failed attempts included.
	DispatchSeconds *obs.Histogram
	// Retries counts shard reassignments (a worker attempt failed and the
	// shard moved on — to another worker or to the local fallback).
	Retries *obs.Counter
	// DeadWorkers counts workers marked dead (at most once per worker per
	// Run).
	DeadWorkers *obs.Counter
	// LocalFallbacks counts shards degraded to coordinator-local evaluation.
	LocalFallbacks *obs.Counter
}

// NewCoordinatorMetrics registers the coordinator instrument set in r.
func NewCoordinatorMetrics(r *obs.Registry) *CoordinatorMetrics {
	return &CoordinatorMetrics{
		Cells:             r.Counter("gcs_coord_cells_total", "campaign cells completed"),
		Generations:       r.Counter("gcs_coord_generations_total", "campaign generations merged"),
		GenerationSeconds: r.Histogram("gcs_coord_generation_seconds", "wall-clock seconds per merged generation", obs.LatencyBuckets()),
		Candidates:        r.Counter("gcs_coord_candidates_total", "candidate evaluations absorbed"),
		EngineSteps:       r.Counter("gcs_coord_engine_steps_total", "engine events dispatched by absorbed shards"),
		CandidateSteps:    r.Counter("gcs_coord_candidate_steps_total", "from-scratch-equivalent engine events of absorbed shards"),
		ShardsRemote:      r.Counter("gcs_coord_shards_remote_total", "shards evaluated by workers"),
		ShardsLocal:       r.Counter("gcs_coord_shards_local_total", "shards evaluated on the coordinator"),
		DispatchSeconds:   r.Histogram("gcs_coord_shard_dispatch_seconds", "per-shard worker round-trip latency, failures included", obs.LatencyBuckets()),
		Retries:           r.Counter("gcs_coord_shard_retries_total", "shard reassignments after a failed worker attempt"),
		DeadWorkers:       r.Counter("gcs_coord_dead_workers_total", "workers marked dead"),
		LocalFallbacks:    r.Counter("gcs_coord_local_fallbacks_total", "shards degraded to coordinator-local evaluation"),
	}
}

// absorbShards records the campaign accounting of one merged generation —
// the same ShardResults Campaign.Absorb merges, so the counters reconcile
// exactly with the final Result.
func (m *CoordinatorMetrics) absorbShards(results []*search.ShardResult) {
	if m == nil {
		return
	}
	m.Generations.Inc()
	for _, sr := range results {
		if sr == nil {
			continue
		}
		m.Candidates.Add(uint64(sr.Evaluated))
		m.EngineSteps.Add(sr.Dispatched)
		m.CandidateSteps.Add(sr.FullSteps)
	}
}

// WorkerMetrics is the worker's instrument set: request traffic, per-shard
// evaluation timing, and the evaluation volume this worker actually
// performed. SearchMetrics/EngineMetrics instrument the worker's evaluation
// internals (prefix-cache savings, live engine step counters) and land in
// the same registry.
type WorkerMetrics struct {
	// Requests counts HTTP requests by outcome; UnknownPaths the requests
	// answered with the versioned JSON 404.
	Requests     *obs.Counter
	UnknownPaths *obs.Counter
	// Shards counts shard evaluations served, ShardErrors the ones that
	// failed (bad spec, unshardable campaign, evaluation error).
	Shards      *obs.Counter
	ShardErrors *obs.Counter
	// ShardSeconds is the per-shard evaluation wall clock.
	ShardSeconds *obs.Histogram
	// Candidates counts candidate evaluations served, EngineSteps the engine
	// events their evaluation dispatched (trunk replays included).
	Candidates  *obs.Counter
	EngineSteps *obs.Counter

	// Engine instruments every engine the worker's evaluations construct;
	// its step counter advances live while a shard is being evaluated.
	Engine *engine.Metrics
}

// NewWorkerMetrics registers the worker instrument set in r.
func NewWorkerMetrics(r *obs.Registry) *WorkerMetrics {
	return &WorkerMetrics{
		Requests:     r.Counter("gcs_worker_requests_total", "HTTP requests served"),
		UnknownPaths: r.Counter("gcs_worker_unknown_paths_total", "requests answered with the versioned JSON 404"),
		Shards:       r.Counter("gcs_worker_shards_total", "shard evaluations served"),
		ShardErrors:  r.Counter("gcs_worker_shard_errors_total", "shard evaluations that failed"),
		ShardSeconds: r.Histogram("gcs_worker_shard_seconds", "per-shard evaluation wall clock", obs.LatencyBuckets()),
		Candidates:   r.Counter("gcs_worker_candidates_total", "candidate evaluations served"),
		EngineSteps:  r.Counter("gcs_worker_engine_steps_total", "engine events dispatched by served shards"),
		Engine:       engine.NewMetrics(r),
	}
}

// absorb records one served shard's accounting.
func (m *WorkerMetrics) absorb(sr *search.ShardResult) {
	if m == nil || sr == nil {
		return
	}
	m.Shards.Inc()
	m.Candidates.Add(uint64(sr.Evaluated))
	m.EngineSteps.Add(sr.Dispatched)
}
