package dist

import (
	"gcs/internal/search"
)

// ProtocolVersion is the wire-protocol version. Coordinator and worker must
// agree exactly: every request carries it, the worker rejects mismatches
// with HTTP 400, and the coordinator treats a mismatch as a dead worker
// (retry elsewhere, then local fallback) — never as data. Bump it whenever
// the JSON shape of ShardRequest/ShardResponse or the search wire types
// (Generation, ShardResult, the DecisionLog codec) changes incompatibly.
const ProtocolVersion = 1

// Wire paths served by Worker.Handler.
const (
	// PathShard evaluates one shard: POST a ShardRequest, receive a
	// ShardResponse.
	PathShard = "/v1/shard"
	// PathPing is the liveness/version probe: GET, receive a PingResponse.
	PathPing = "/v1/ping"
)

// ShardRequest asks a worker to evaluate candidates [Lo, Hi) of a campaign
// generation. The request is self-contained — spec, cell index, and wire
// generation — so workers hold no session state: any shard may go to any
// worker, in any order, which is what makes retry-on-survivors trivial.
type ShardRequest struct {
	Version    int                `json:"version"`
	Spec       CampaignSpec       `json:"spec"`
	Cell       int                `json:"cell"`
	Generation *search.Generation `json:"generation"`
	Lo         int                `json:"lo"`
	Hi         int                `json:"hi"`
}

// ShardResponse carries a shard's evaluation outcome. Error reports a
// worker-side failure to evaluate (bad spec, version mismatch already
// rejected at 400, unshardable campaign): the coordinator treats it like a
// transport failure and reassigns the shard. A candidate whose evaluation
// itself errors is NOT a worker failure — it arrives inside Result
// (ErrID/ErrMsg) and fails the campaign identically to single-process
// Search.
type ShardResponse struct {
	Version int                 `json:"version"`
	Result  *search.ShardResult `json:"result,omitempty"`
	Error   string              `json:"error,omitempty"`
}

// PingResponse answers the liveness probe.
type PingResponse struct {
	Version int    `json:"version"`
	Status  string `json:"status"`
}
