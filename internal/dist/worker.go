package dist

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"gcs/internal/obs"
	"gcs/internal/search"
)

// Worker serves shard evaluations. It is stateless between requests: every
// ShardRequest carries the full campaign spec and wire generation, so a
// fleet of workers needs no membership protocol — start any number, point
// the coordinator at them, kill them freely. (The metrics registry is
// operational state, not protocol state: it observes the worker, it never
// changes what the worker computes.)
type Worker struct {
	// Threads bounds the local evaluation pool for each shard (0: the
	// request's spec setting, or GOMAXPROCS). Worker capacity is a local
	// concern: it changes evaluation speed, never evaluation bytes.
	Threads int
	// Registry, when non-nil, instruments the worker: Handler registers the
	// worker instrument set in it (plus the engine instruments the
	// evaluations advance live) and serves its snapshot on GET /v1/metrics.
	Registry *obs.Registry
	// Debug mounts the /debug/pprof profiling endpoints on the handler —
	// opt-in, profiles expose more than counters do.
	Debug bool

	metOnce sync.Once
	met     *WorkerMetrics
}

// Metrics returns the worker's instrument set, registering it on first use
// (nil when the worker has no Registry).
func (w *Worker) Metrics() *WorkerMetrics {
	if w.Registry == nil {
		return nil
	}
	w.metOnce.Do(func() {
		w.met = NewWorkerMetrics(w.Registry)
	})
	return w.met
}

// Handler returns the worker's HTTP handler: POST PathShard evaluates a
// shard, GET PathPing probes liveness and version, GET obs.PathMetrics
// serves the metrics snapshot (when instrumented), and /debug/pprof is
// mounted when Debug is set. Unknown paths answer with the versioned JSON
// error shape the /v1 protocol speaks everywhere else, not the default Go
// 404 page.
func (w *Worker) Handler() http.Handler {
	met := w.Metrics()
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(rw http.ResponseWriter, r *http.Request) {
		if met != nil {
			met.Requests.Inc()
			met.UnknownPaths.Inc()
		}
		writeJSON(rw, http.StatusNotFound, ShardResponse{
			Version: ProtocolVersion, Error: "unknown path",
		})
	})
	mux.HandleFunc(PathPing, func(rw http.ResponseWriter, r *http.Request) {
		if met != nil {
			met.Requests.Inc()
		}
		if r.Method != http.MethodGet {
			http.Error(rw, "ping is GET", http.StatusMethodNotAllowed)
			return
		}
		writeJSON(rw, http.StatusOK, PingResponse{Version: ProtocolVersion, Status: "ok"})
	})
	mux.HandleFunc(PathShard, func(rw http.ResponseWriter, r *http.Request) {
		if met != nil {
			met.Requests.Inc()
		}
		if r.Method != http.MethodPost {
			http.Error(rw, "shard is POST", http.StatusMethodNotAllowed)
			return
		}
		var req ShardRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeJSON(rw, http.StatusBadRequest, ShardResponse{
				Version: ProtocolVersion, Error: fmt.Sprintf("decode request: %v", err),
			})
			return
		}
		if req.Version != ProtocolVersion {
			writeJSON(rw, http.StatusBadRequest, ShardResponse{
				Version: ProtocolVersion,
				Error:   fmt.Sprintf("protocol version %d, worker speaks %d", req.Version, ProtocolVersion),
			})
			return
		}
		start := time.Now()
		result, err := w.evaluate(&req)
		if met != nil {
			met.ShardSeconds.ObserveDuration(time.Since(start))
			if err != nil {
				met.ShardErrors.Inc()
			}
			met.absorb(result)
		}
		if err != nil {
			writeJSON(rw, http.StatusUnprocessableEntity, ShardResponse{
				Version: ProtocolVersion, Error: err.Error(),
			})
			return
		}
		writeJSON(rw, http.StatusOK, ShardResponse{Version: ProtocolVersion, Result: result})
	})
	if w.Registry != nil {
		mux.Handle(obs.PathMetrics, obs.Handler(w.Registry))
	}
	if w.Debug {
		obs.AttachPprof(mux)
	}
	return mux
}

// evaluate rebuilds the shard's search options from the spec and runs the
// local prefix-cached evaluator on the requested range.
func (w *Worker) evaluate(req *ShardRequest) (*search.ShardResult, error) {
	opt, err := req.Spec.CellOptions(req.Cell)
	if err != nil {
		return nil, err
	}
	if w.Threads > 0 {
		opt.Workers = w.Threads
	}
	if met := w.Metrics(); met != nil {
		// Live instrumentation: the engines this evaluation constructs
		// advance the worker's engine step counters while the shard runs.
		// (opt.Metrics stays nil — campaign-absorb counters belong to the
		// coordinator, the side that actually calls Absorb.)
		opt.EngineMetrics = met.Engine
	}
	return search.EvaluateShard(opt, req.Generation, req.Lo, req.Hi)
}

func writeJSON(rw http.ResponseWriter, status int, v any) {
	rw.Header().Set("Content-Type", "application/json")
	rw.WriteHeader(status)
	_ = json.NewEncoder(rw).Encode(v)
}
