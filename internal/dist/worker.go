package dist

import (
	"encoding/json"
	"fmt"
	"net/http"

	"gcs/internal/search"
)

// Worker serves shard evaluations. It is stateless between requests: every
// ShardRequest carries the full campaign spec and wire generation, so a
// fleet of workers needs no membership protocol — start any number, point
// the coordinator at them, kill them freely.
type Worker struct {
	// Threads bounds the local evaluation pool for each shard (0: the
	// request's spec setting, or GOMAXPROCS). Worker capacity is a local
	// concern: it changes evaluation speed, never evaluation bytes.
	Threads int
}

// Handler returns the worker's HTTP handler: POST PathShard evaluates a
// shard, GET PathPing probes liveness and version.
func (w *Worker) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(PathPing, func(rw http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(rw, "ping is GET", http.StatusMethodNotAllowed)
			return
		}
		writeJSON(rw, http.StatusOK, PingResponse{Version: ProtocolVersion, Status: "ok"})
	})
	mux.HandleFunc(PathShard, func(rw http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(rw, "shard is POST", http.StatusMethodNotAllowed)
			return
		}
		var req ShardRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeJSON(rw, http.StatusBadRequest, ShardResponse{
				Version: ProtocolVersion, Error: fmt.Sprintf("decode request: %v", err),
			})
			return
		}
		if req.Version != ProtocolVersion {
			writeJSON(rw, http.StatusBadRequest, ShardResponse{
				Version: ProtocolVersion,
				Error:   fmt.Sprintf("protocol version %d, worker speaks %d", req.Version, ProtocolVersion),
			})
			return
		}
		result, err := w.evaluate(&req)
		if err != nil {
			writeJSON(rw, http.StatusUnprocessableEntity, ShardResponse{
				Version: ProtocolVersion, Error: err.Error(),
			})
			return
		}
		writeJSON(rw, http.StatusOK, ShardResponse{Version: ProtocolVersion, Result: result})
	})
	return mux
}

// evaluate rebuilds the shard's search options from the spec and runs the
// local prefix-cached evaluator on the requested range.
func (w *Worker) evaluate(req *ShardRequest) (*search.ShardResult, error) {
	opt, err := req.Spec.CellOptions(req.Cell)
	if err != nil {
		return nil, err
	}
	if w.Threads > 0 {
		opt.Workers = w.Threads
	}
	return search.EvaluateShard(opt, req.Generation, req.Lo, req.Hi)
}

func writeJSON(rw http.ResponseWriter, status int, v any) {
	rw.Header().Set("Content-Type", "application/json")
	rw.WriteHeader(status)
	_ = json.NewEncoder(rw).Encode(v)
}
