package dist

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"gcs/internal/obs"
)

// startInstrumentedWorkers spawns k in-process workers, each with its own
// registry, and returns the Worker values alongside the servers.
func startInstrumentedWorkers(t *testing.T, k int) ([]*Worker, []*httptest.Server, []string) {
	t.Helper()
	workers := make([]*Worker, k)
	servers := make([]*httptest.Server, k)
	urls := make([]string, k)
	for i := range servers {
		workers[i] = &Worker{Registry: obs.NewRegistry()}
		servers[i] = httptest.NewServer(workers[i].Handler())
		urls[i] = servers[i].URL
		t.Cleanup(servers[i].Close)
	}
	return workers, servers, urls
}

// scrapeSnapshot reads one /v1/metrics?format=json snapshot.
func scrapeSnapshot(t *testing.T, url string) obs.Snapshot {
	t.Helper()
	res, err := http.Get(url + obs.PathMetrics + "?format=json")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var snap obs.Snapshot
	if err := json.NewDecoder(res.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	return snap
}

// counterValue reads a counter out of a snapshot (0 when absent — a worker
// that has served nothing yet has registered nothing).
func counterValue(snap obs.Snapshot, name string) float64 {
	if ms, ok := snap.Get(name); ok {
		return ms.Value
	}
	return 0
}

// TestMetricsReconcileWithResult is the acceptance identity: a healthy
// 2-worker campaign's coordinator counters equal the merged Result's
// accounting exactly — same absorbed ShardResults on both sides — and the
// workers' own step counters sum to the same total.
func TestMetricsReconcileWithResult(t *testing.T) {
	spec := e13LongSpec()
	workers, _, urls := startInstrumentedWorkers(t, 2)
	reg := obs.NewRegistry()
	coord := &Coordinator{
		Spec:    spec,
		Workers: urls,
		Timeout: 30 * time.Second,
		Metrics: NewCoordinatorMetrics(reg),
	}
	cells, err := coord.Run()
	if err != nil {
		t.Fatal(err)
	}
	res := cells[0].Result
	m := coord.Metrics
	if got := m.EngineSteps.Value(); got != res.EngineSteps {
		t.Fatalf("coordinator engine-steps counter %d != Result.EngineSteps %d", got, res.EngineSteps)
	}
	if got := m.CandidateSteps.Value(); got != res.CandidateSteps {
		t.Fatalf("coordinator candidate-steps counter %d != Result.CandidateSteps %d", got, res.CandidateSteps)
	}
	if got := m.Candidates.Value(); got != uint64(res.Evaluated) {
		t.Fatalf("coordinator candidates counter %d != Result.Evaluated %d", got, res.Evaluated)
	}
	if m.Cells.Value() != 1 {
		t.Fatalf("cells counter = %d, want 1", m.Cells.Value())
	}
	if m.Generations.Value() == 0 || m.GenerationSeconds.Count() != m.Generations.Value() {
		t.Fatalf("generation timing count %d != generations %d (or zero)",
			m.GenerationSeconds.Count(), m.Generations.Value())
	}
	if m.ShardsLocal.Value() != 0 || m.Retries.Value() != 0 || m.DeadWorkers.Value() != 0 {
		t.Fatalf("healthy fleet recorded degradation: local=%d retries=%d dead=%d",
			m.ShardsLocal.Value(), m.Retries.Value(), m.DeadWorkers.Value())
	}
	if m.DispatchSeconds.Count() != m.ShardsRemote.Value() {
		t.Fatalf("dispatch timing count %d != remote shards %d",
			m.DispatchSeconds.Count(), m.ShardsRemote.Value())
	}

	// The fleet's own accounting covers the whole campaign: every dispatched
	// event was dispatched by exactly one worker.
	var workerSteps, workerCands, workerShards uint64
	for _, w := range workers {
		wm := w.Metrics()
		workerSteps += wm.EngineSteps.Value()
		workerCands += wm.Candidates.Value()
		workerShards += wm.Shards.Value()
		// The live engine counter saw at least the shard accounting: trunks
		// and from-scratch runs all step through instrumented engines.
		if wm.Engine.Steps.Value() < wm.EngineSteps.Value() {
			t.Fatalf("live engine counter %d below absorbed shard steps %d",
				wm.Engine.Steps.Value(), wm.EngineSteps.Value())
		}
	}
	if workerSteps != res.EngineSteps {
		t.Fatalf("workers dispatched %d engine steps, Result says %d", workerSteps, res.EngineSteps)
	}
	if workerCands != uint64(res.Evaluated) {
		t.Fatalf("workers evaluated %d candidates, Result says %d", workerCands, res.Evaluated)
	}
	if workerShards != m.ShardsRemote.Value() {
		t.Fatalf("workers served %d shards, coordinator dispatched %d", workerShards, m.ShardsRemote.Value())
	}

	// The same figures are live on the wire, in both exposition formats.
	snap := scrapeSnapshot(t, urls[0])
	if got := counterValue(snap, "gcs_worker_engine_steps_total"); got != float64(workers[0].Metrics().EngineSteps.Value()) {
		t.Fatalf("scraped engine steps %v != in-process counter %d", got, workers[0].Metrics().EngineSteps.Value())
	}
	httpRes, err := http.Get(urls[0] + obs.PathMetrics)
	if err != nil {
		t.Fatal(err)
	}
	defer httpRes.Body.Close()
	text, err := io.ReadAll(httpRes.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"# TYPE gcs_worker_shards_total counter", "gcs_worker_shard_seconds_bucket{le="} {
		if !strings.Contains(string(text), want) {
			t.Fatalf("Prometheus exposition missing %q:\n%s", want, text)
		}
	}
}

// TestMetricsScrapeMidCampaign scrapes a worker's /v1/metrics continuously
// while the campaign runs (the -race build makes this a concurrency test of
// the whole pipeline) and asserts every shard counter reading is monotone.
func TestMetricsScrapeMidCampaign(t *testing.T) {
	spec := e13LongSpec()
	workers, _, urls := startInstrumentedWorkers(t, 2)
	done := make(chan struct{})
	var wg sync.WaitGroup
	type reading struct{ shards, steps float64 }
	var readings []reading
	wg.Add(1)
	go func() {
		// No t.Fatal here — FailNow must stay on the test goroutine. A scrape
		// that errors (transient dial limits under -race) is just skipped.
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			res, err := http.Get(urls[0] + obs.PathMetrics + "?format=json")
			if err == nil {
				var snap obs.Snapshot
				err = json.NewDecoder(res.Body).Decode(&snap)
				res.Body.Close()
				if err == nil {
					readings = append(readings, reading{
						shards: counterValue(snap, "gcs_worker_shards_total"),
						steps:  counterValue(snap, "gcs_worker_engine_steps_total"),
					})
				}
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	coord := &Coordinator{
		Spec:    spec,
		Workers: urls,
		Timeout: 30 * time.Second,
		Metrics: NewCoordinatorMetrics(obs.NewRegistry()),
	}
	cells, err := coord.Run()
	close(done)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	resultsMatch(t, singleProcess(t, spec), cells[0].Result)

	if len(readings) < 2 {
		t.Fatalf("only %d mid-campaign scrapes landed", len(readings))
	}
	for i := 1; i < len(readings); i++ {
		if readings[i].shards < readings[i-1].shards || readings[i].steps < readings[i-1].steps {
			t.Fatalf("scrape %d went backwards: %+v then %+v", i, readings[i-1], readings[i])
		}
	}
	final := workers[0].Metrics()
	last := readings[len(readings)-1]
	if last.shards > float64(final.Shards.Value()) || last.steps > float64(final.EngineSteps.Value()) {
		t.Fatalf("last scrape %+v exceeds final counters shards=%d steps=%d",
			last, final.Shards.Value(), final.EngineSteps.Value())
	}
}

// TestMetricsCountRetriesAndDeadWorkers kills fleet members mid-campaign and
// asserts the coordinator's health counters record it: a reassigned shard is
// a retry plus a dead worker; a whole-fleet loss adds local fallbacks. The
// merged bytes stay identical throughout.
func TestMetricsCountRetriesAndDeadWorkers(t *testing.T) {
	spec := e13LongSpec()
	want := singleProcess(t, spec)

	t.Run("reassigned-to-survivor", func(t *testing.T) {
		_, servers, urls := startInstrumentedWorkers(t, 2)
		killed := false
		coord := &Coordinator{
			Spec:    spec,
			Workers: urls,
			Timeout: 30 * time.Second,
			Metrics: NewCoordinatorMetrics(obs.NewRegistry()),
			Progress: func(ev ProgressEvent) {
				if !killed {
					servers[0].Close()
					killed = true
				}
			},
		}
		cells, err := coord.Run()
		if err != nil {
			t.Fatal(err)
		}
		resultsMatch(t, want, cells[0].Result)
		m := coord.Metrics
		if m.Retries.Value() == 0 {
			t.Fatal("reassignment after a worker kill advanced no retry counter")
		}
		if m.DeadWorkers.Value() != 1 {
			t.Fatalf("dead-worker counter = %d, want 1", m.DeadWorkers.Value())
		}
		if m.LocalFallbacks.Value() != 0 {
			t.Fatalf("survivor absorbed the shard, yet %d local fallbacks recorded", m.LocalFallbacks.Value())
		}
	})

	t.Run("degrades-to-local", func(t *testing.T) {
		_, servers, urls := startInstrumentedWorkers(t, 1)
		killed := false
		coord := &Coordinator{
			Spec:    spec,
			Workers: urls,
			Timeout: 30 * time.Second,
			Metrics: NewCoordinatorMetrics(obs.NewRegistry()),
			Progress: func(ev ProgressEvent) {
				if !killed {
					servers[0].Close()
					killed = true
				}
			},
		}
		cells, err := coord.Run()
		if err != nil {
			t.Fatal(err)
		}
		resultsMatch(t, want, cells[0].Result)
		m := coord.Metrics
		if m.Retries.Value() == 0 || m.DeadWorkers.Value() != 1 {
			t.Fatalf("whole-fleet loss: retries=%d dead=%d, want >0/1", m.Retries.Value(), m.DeadWorkers.Value())
		}
		if m.LocalFallbacks.Value() == 0 || m.ShardsLocal.Value() == 0 {
			t.Fatalf("degradation recorded no local evaluation: fallbacks=%d local=%d",
				m.LocalFallbacks.Value(), m.ShardsLocal.Value())
		}
		// Degradation must not break the reconciliation identity.
		if m.EngineSteps.Value() != cells[0].Result.EngineSteps {
			t.Fatalf("degraded run: counter %d != Result.EngineSteps %d",
				m.EngineSteps.Value(), cells[0].Result.EngineSteps)
		}
	})
}

// TestWorkerUnknownPathJSON404: unknown paths answer with the versioned JSON
// error shape, not Go's text 404, and the miss is counted.
func TestWorkerUnknownPathJSON404(t *testing.T) {
	workers, _, urls := startInstrumentedWorkers(t, 1)
	res, err := http.Get(urls[0] + "/v1/nope")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown path got HTTP %d, want 404", res.StatusCode)
	}
	if ct := res.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Fatalf("unknown path served Content-Type %q, want JSON", ct)
	}
	var sr ShardResponse
	if err := json.NewDecoder(res.Body).Decode(&sr); err != nil {
		t.Fatalf("unknown-path body is not the versioned JSON error: %v", err)
	}
	if sr.Version != ProtocolVersion || sr.Error != "unknown path" {
		t.Fatalf("unknown-path error = %+v, want version %d, \"unknown path\"", sr, ProtocolVersion)
	}
	if got := workers[0].Metrics().UnknownPaths.Value(); got != 1 {
		t.Fatalf("unknown-path counter = %d, want 1", got)
	}
}

// TestWorkerPprofOptIn: /debug/pprof exists only behind Debug.
func TestWorkerPprofOptIn(t *testing.T) {
	plain := httptest.NewServer((&Worker{Registry: obs.NewRegistry()}).Handler())
	defer plain.Close()
	res, err := http.Get(plain.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof reachable without -debug: HTTP %d", res.StatusCode)
	}

	debug := httptest.NewServer((&Worker{Registry: obs.NewRegistry(), Debug: true}).Handler())
	defer debug.Close()
	res, err = http.Get(debug.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("pprof index with -debug: HTTP %d, want 200", res.StatusCode)
	}
}
