package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"gcs/internal/search"
)

// DefaultShardTimeout bounds one shard round-trip when Coordinator.Timeout
// is zero.
const DefaultShardTimeout = 120 * time.Second

// ProgressEvent reports one merged generation: `gcssearch run` streams these
// as JSON lines.
type ProgressEvent struct {
	Cell       int    `json:"cell"`
	CellName   string `json:"cell_name"`
	Round      int    `json:"round"`
	Candidates int    `json:"candidates"`
	Shards     int    `json:"shards"`
	// Remote and Local count where the generation's shards actually ran;
	// Local > 0 with workers configured means degradation happened (the
	// reasons land in Result.Notes).
	Remote    int    `json:"remote"`
	Local     int    `json:"local"`
	Evaluated int    `json:"evaluated"` // cumulative candidate evaluations in the cell
	Best      string `json:"best"`      // best objective value merged so far (exact rational)
}

// CellResult pairs a cell with its merged search outcome.
type CellResult struct {
	Cell   CellSpec       `json:"cell"`
	Result *search.Result `json:"result"`
}

// Coordinator drives a campaign spec against a worker fleet. Correctness
// does not depend on the fleet: any shard any worker fails to return — dead
// process, timeout, version mismatch, garbage response — is reassigned to
// surviving workers and, when none survive, evaluated locally, with the
// degradation reason appended to the cell's Result.Notes. The merged bytes
// equal single-process search.Search on every cell regardless (EngineSteps
// excepted; see search.Campaign).
type Coordinator struct {
	Spec CampaignSpec
	// Workers are base URLs ("http://host:port"); empty runs every shard
	// locally (the in-process pool).
	Workers []string
	// Shards is the number of shards per generation (0: one per worker, or 1
	// when no workers). Empty shards are skipped, so any value is safe.
	Shards int
	// Timeout bounds one shard round-trip (0: DefaultShardTimeout).
	Timeout time.Duration
	// Progress, when non-nil, receives one event per merged generation.
	Progress func(ProgressEvent)
	// Client is the HTTP client for worker calls (nil: http.DefaultClient).
	Client *http.Client
	// Metrics, when non-nil, instruments the run: fleet health, dispatch
	// latency, and campaign accounting that reconciles exactly with the
	// merged Results. Purely observational — it never changes scheduling.
	Metrics *CoordinatorMetrics

	mu   sync.Mutex
	dead map[string]bool
}

// Run executes every cell of the campaign in order and returns the merged
// results. The first failing cell aborts the run — a candidate evaluation
// error is a campaign result in the same sense single-process Search's error
// is, not a fleet condition to retry.
func (c *Coordinator) Run() ([]CellResult, error) {
	if err := c.Spec.Validate(); err != nil {
		return nil, err
	}
	c.dead = make(map[string]bool)
	out := make([]CellResult, 0, len(c.Spec.Cells))
	for i := range c.Spec.Cells {
		res, err := c.runCell(i)
		if err != nil {
			return nil, fmt.Errorf("dist: cell %d (%s): %w", i, c.Spec.Cells[i].Label(), err)
		}
		out = append(out, CellResult{Cell: c.Spec.Cells[i], Result: res})
	}
	return out, nil
}

// runCell drives one cell's Campaign generation by generation.
func (c *Coordinator) runCell(cell int) (*search.Result, error) {
	opt, err := c.Spec.CellOptions(cell)
	if err != nil {
		return nil, err
	}
	campaign, err := search.NewCampaign(opt)
	if err != nil {
		return nil, err
	}
	var notes []string
	sharded := campaign.Shardable() && len(c.Workers) > 0
	if !campaign.Shardable() && len(c.Workers) > 0 {
		notes = append(notes, "campaign is not shardable (serial-only base adversary): evaluated entirely on the coordinator")
	}
	for !campaign.Done() {
		start := time.Now()
		var ev ProgressEvent
		if sharded {
			ev, err = c.runGenerationSharded(cell, campaign, &notes)
		} else {
			ev, err = c.runGenerationLocal(campaign)
		}
		if err != nil {
			return nil, err
		}
		if c.Metrics != nil {
			c.Metrics.GenerationSeconds.ObserveDuration(time.Since(start))
		}
		ev.Cell = cell
		ev.CellName = c.Spec.Cells[cell].Label()
		ev.Evaluated = campaign.Evaluated()
		ev.Best = campaign.BestValue().String()
		if c.Progress != nil {
			c.Progress(ev)
		}
	}
	res, err := campaign.Result()
	if err != nil {
		return nil, err
	}
	if c.Metrics != nil {
		c.Metrics.Cells.Inc()
	}
	res.Notes = append(res.Notes, notes...)
	return res, nil
}

// runGenerationLocal evaluates the whole pending generation in-process —
// the no-workers path and the unshardable-campaign path.
func (c *Coordinator) runGenerationLocal(campaign *search.Campaign) (ProgressEvent, error) {
	n := campaign.NumPending()
	round := campaign.Round()
	sr, err := campaign.EvaluateRange(0, n)
	if err != nil {
		return ProgressEvent{}, err
	}
	if err := campaign.Absorb([]*search.ShardResult{sr}); err != nil {
		return ProgressEvent{}, err
	}
	if c.Metrics != nil {
		c.Metrics.absorbShards([]*search.ShardResult{sr})
		c.Metrics.ShardsLocal.Inc()
	}
	return ProgressEvent{Round: round, Candidates: n, Shards: 1, Local: 1}, nil
}

// runGenerationSharded partitions the pending generation into contiguous
// shards, dispatches them to the fleet concurrently, and merges. Shards a
// worker cannot return degrade to local evaluation; the reasons accumulate
// in notes.
func (c *Coordinator) runGenerationSharded(cell int, campaign *search.Campaign, notes *[]string) (ProgressEvent, error) {
	gen := campaign.Generation()
	n := len(gen.Candidates)
	round := campaign.Round()
	shards := c.Shards
	if shards <= 0 {
		shards = len(c.Workers)
	}
	if shards < 1 {
		shards = 1
	}

	type span struct{ lo, hi int }
	var spans []span
	for s := 0; s < shards; s++ {
		lo, hi := s*n/shards, (s+1)*n/shards
		if lo < hi {
			spans = append(spans, span{lo, hi})
		}
	}

	results := make([]*search.ShardResult, len(spans))
	remote := make([]bool, len(spans))
	shardNotes := make([]string, len(spans))
	errs := make([]error, len(spans))
	var wg sync.WaitGroup
	for si, sp := range spans {
		si, sp := si, sp
		wg.Add(1)
		go func() {
			defer wg.Done()
			sr, wasRemote, note := c.evaluateShard(cell, campaign, gen, sp.lo, sp.hi, si)
			if sr == nil {
				// Local fallback failed too: a genuine evaluation-layer
				// problem, surfaced as the cell error.
				errs[si] = fmt.Errorf("shard [%d, %d): %s", sp.lo, sp.hi, note)
				return
			}
			results[si], remote[si], shardNotes[si] = sr, wasRemote, note
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return ProgressEvent{}, err
		}
	}
	ev := ProgressEvent{Round: round, Candidates: n, Shards: len(spans)}
	for si := range spans {
		if remote[si] {
			ev.Remote++
		} else {
			ev.Local++
		}
		if shardNotes[si] != "" {
			*notes = append(*notes, shardNotes[si])
		}
	}
	if err := campaign.Absorb(results); err != nil {
		return ProgressEvent{}, err
	}
	if c.Metrics != nil {
		c.Metrics.absorbShards(results)
		c.Metrics.ShardsRemote.Add(uint64(ev.Remote))
		c.Metrics.ShardsLocal.Add(uint64(ev.Local))
	}
	return ev, nil
}

// evaluateShard obtains one shard's result: try the fleet (starting at a
// shard-dependent worker, reassigning on every transport failure), then fall
// back to coordinator-local evaluation. It returns the result, whether a
// worker produced it, and a degradation note ("" when none). A nil result
// means even local evaluation failed; the note then carries the error.
func (c *Coordinator) evaluateShard(cell int, campaign *search.Campaign, gen *search.Generation, lo, hi, shard int) (*search.ShardResult, bool, string) {
	var lastErr error
	tried := 0
	for attempt := 0; attempt < len(c.Workers); attempt++ {
		url := c.Workers[(shard+attempt)%len(c.Workers)]
		if c.isDead(url) {
			continue
		}
		tried++
		start := time.Now()
		sr, err := c.callShard(url, cell, gen, lo, hi)
		if c.Metrics != nil {
			c.Metrics.DispatchSeconds.ObserveDuration(time.Since(start))
		}
		if err == nil {
			return sr, true, ""
		}
		if c.Metrics != nil {
			c.Metrics.Retries.Inc()
		}
		lastErr = fmt.Errorf("worker %s: %w", url, err)
		c.markDead(url)
	}
	if lastErr == nil {
		if tried == 0 {
			lastErr = fmt.Errorf("no surviving workers")
		}
	}
	if c.Metrics != nil {
		c.Metrics.LocalFallbacks.Inc()
	}
	sr, err := campaign.EvaluateRange(lo, hi)
	if err != nil {
		return nil, false, fmt.Sprintf("local fallback failed: %v (after %v)", err, lastErr)
	}
	note := fmt.Sprintf("round %d shard [%d, %d) degraded to coordinator-local evaluation: %v", gen.Round, lo, hi, lastErr)
	return sr, false, note
}

// callShard performs one worker round-trip.
func (c *Coordinator) callShard(url string, cell int, gen *search.Generation, lo, hi int) (*search.ShardResult, error) {
	body, err := json.Marshal(ShardRequest{
		Version:    ProtocolVersion,
		Spec:       c.Spec,
		Cell:       cell,
		Generation: gen,
		Lo:         lo,
		Hi:         hi,
	})
	if err != nil {
		return nil, err
	}
	timeout := c.Timeout
	if timeout <= 0 {
		timeout = DefaultShardTimeout
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url+PathShard, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	client := c.Client
	if client == nil {
		client = http.DefaultClient
	}
	httpRes, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer httpRes.Body.Close()
	var res ShardResponse
	if err := json.NewDecoder(httpRes.Body).Decode(&res); err != nil {
		return nil, fmt.Errorf("decode response (HTTP %d): %w", httpRes.StatusCode, err)
	}
	if res.Error != "" {
		return nil, fmt.Errorf("HTTP %d: %s", httpRes.StatusCode, res.Error)
	}
	if httpRes.StatusCode != http.StatusOK || res.Result == nil {
		return nil, fmt.Errorf("HTTP %d with no result", httpRes.StatusCode)
	}
	if res.Version != ProtocolVersion {
		return nil, fmt.Errorf("worker speaks protocol %d, coordinator %d", res.Version, ProtocolVersion)
	}
	return res.Result, nil
}

func (c *Coordinator) isDead(url string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dead[url]
}

func (c *Coordinator) markDead(url string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.dead[url] {
		c.dead[url] = true
		if c.Metrics != nil {
			c.Metrics.DeadWorkers.Inc()
		}
	}
}

// Ping probes a worker's liveness and protocol version.
func Ping(client *http.Client, url string) error {
	if client == nil {
		client = http.DefaultClient
	}
	res, err := client.Get(url + PathPing)
	if err != nil {
		return err
	}
	defer res.Body.Close()
	var ping PingResponse
	if err := json.NewDecoder(res.Body).Decode(&ping); err != nil {
		return fmt.Errorf("dist: decode ping from %s: %w", url, err)
	}
	if ping.Version != ProtocolVersion {
		return fmt.Errorf("dist: worker %s speaks protocol %d, coordinator %d", url, ping.Version, ProtocolVersion)
	}
	return nil
}
