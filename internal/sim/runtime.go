package sim

import (
	"container/heap"
	"fmt"

	"gcs/internal/rat"
	"gcs/internal/trace"
)

// Runtime is a node's interface to the simulated world during callbacks. It
// deliberately exposes no real-time information: everything a node can learn
// is its hardware clock, the static network parameters, and its messages.
type Runtime struct {
	sim   *state
	id    int
	hwNow rat.Rat
	decls []logicalDecl
}

// ID returns this node's index.
func (rt *Runtime) ID() int { return rt.id }

// N returns the number of nodes.
func (rt *Runtime) N() int { return rt.sim.cfg.Net.N() }

// Neighbors returns this node's gossip neighbors. The caller must not modify
// the returned slice.
func (rt *Runtime) Neighbors() []int { return rt.sim.cfg.Net.Neighbors(rt.id) }

// Dist returns the message delay uncertainty to node j (static knowledge in
// the model).
func (rt *Runtime) Dist(j int) rat.Rat { return rt.sim.cfg.Net.Dist(rt.id, j) }

// Rho returns the hardware drift bound ρ (static knowledge in the model).
func (rt *Runtime) Rho() rat.Rat { return rt.sim.cfg.Rho }

// HW returns the node's current hardware-clock reading.
func (rt *Runtime) HW() rat.Rat { return rt.hwNow }

// Logical returns the node's current logical-clock value per its latest
// declaration.
func (rt *Runtime) Logical() rat.Rat {
	d := rt.decls[len(rt.decls)-1]
	return d.Value.Add(d.Mult.Mul(rt.hwNow.Sub(d.HW0)))
}

// LogicalMult returns the multiplier of the latest declaration.
func (rt *Runtime) LogicalMult() rat.Rat { return rt.decls[len(rt.decls)-1].Mult }

// SetLogical declares the node's logical clock: from the current hardware
// reading H₀ on, L(H) = value + mult·(H − H₀). mult must be >= 0.
// Requirement 1 of the paper (validity) additionally demands effective rate
// >= 1/2 and no downward jumps; the validity checker in internal/core
// verifies that post hoc rather than restricting algorithms a priori.
func (rt *Runtime) SetLogical(value, mult rat.Rat) {
	if mult.Sign() < 0 {
		rt.sim.fail(fmt.Errorf("sim: node %d declared negative logical multiplier %s", rt.id, mult))
		return
	}
	rt.decls = append(rt.decls, logicalDecl{Real: rt.sim.now, HW0: rt.hwNow, Value: value, Mult: mult})
}

// Send transmits msg to node `to`. The adversary assigns the delay.
func (rt *Runtime) Send(to int, msg Message) {
	s := rt.sim
	if to < 0 || to >= rt.N() || to == rt.id {
		s.fail(fmt.Errorf("sim: node %d sends to invalid node %d", rt.id, to))
		return
	}
	if msg == nil {
		s.fail(fmt.Errorf("sim: node %d sends nil message", rt.id))
		return
	}
	pair := [2]int{rt.id, to}
	seq := s.pairSeq[pair]
	s.pairSeq[pair] = seq + 1
	bound := s.cfg.Net.Dist(rt.id, to)
	delay := s.cfg.Adversary.Delay(rt.id, to, seq, s.now, bound)
	if delay.Sign() < 0 || delay.Greater(bound) {
		s.fail(fmt.Errorf("sim: adversary delay %s for %d→%d (seq %d) outside [0, %s]",
			delay, rt.id, to, seq, bound))
		return
	}
	recv := s.now.Add(delay)
	key := trace.MsgKey{From: rt.id, To: to, Seq: seq}
	s.ledger[key] = trace.MsgRecord{
		Key:      key,
		SendReal: s.now,
		Delay:    delay,
		Payload:  msg.MsgString(),
	}
	s.record(trace.Action{Node: rt.id, Kind: trace.KindSend, Real: s.now, HW: rt.hwNow,
		Peer: to, MsgSeq: seq, Payload: msg.MsgString()})
	heap.Push(&s.queue, &event{
		time:    recv,
		kind:    trace.KindRecv,
		node:    to,
		from:    rt.id,
		msgSeq:  seq,
		payload: msg,
		seq:     s.nextSeq(),
	})
}

// SetTimerAtHW schedules OnTimer(timerID) to fire when this node's hardware
// clock reads hw, which must be >= the current reading.
func (rt *Runtime) SetTimerAtHW(hw rat.Rat, timerID int) {
	s := rt.sim
	if hw.Less(rt.hwNow) {
		s.fail(fmt.Errorf("sim: node %d sets timer at hardware time %s < current %s", rt.id, hw, rt.hwNow))
		return
	}
	real, err := s.cfg.Schedules[rt.id].RealAt(hw)
	if err != nil {
		s.fail(fmt.Errorf("sim: node %d timer: %w", rt.id, err))
		return
	}
	heap.Push(&s.queue, &event{
		time:    real,
		kind:    trace.KindTimer,
		node:    rt.id,
		from:    -1,
		timerID: timerID,
		seq:     s.nextSeq(),
	})
}
