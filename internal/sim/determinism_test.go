package sim

import (
	"testing"
	"testing/quick"

	"gcs/internal/clock"
	"gcs/internal/network"
	"gcs/internal/rat"
	"gcs/internal/trace"
)

// chatterNode exercises timers, sends, logical declarations, and
// message-driven sends, parameterized to vary behavior across quick-check
// draws.
type chatterNode struct {
	id     int
	period rat.Rat
	mult   rat.Rat
	relay  bool
}

func (c *chatterNode) Init(rt *Runtime) {
	rt.SetTimerAtHW(rt.HW().Add(c.period), 1)
}

func (c *chatterNode) OnTimer(rt *Runtime, _ int) {
	for _, j := range rt.Neighbors() {
		rt.Send(j, pingMsg{Val: rt.Logical()})
	}
	rt.SetLogical(rt.Logical(), c.mult)
	rt.SetTimerAtHW(rt.HW().Add(c.period), 1)
}

func (c *chatterNode) OnMessage(rt *Runtime, from int, msg Message) {
	m, ok := msg.(pingMsg)
	if !ok {
		return
	}
	if m.Val.Greater(rt.Logical()) {
		rt.SetLogical(m.Val, rat.FromInt(1))
		if c.relay {
			for _, j := range rt.Neighbors() {
				if j != from {
					rt.Send(j, pingMsg{Val: m.Val})
				}
			}
		}
	}
}

type chatterProtocol struct {
	period rat.Rat
	mult   rat.Rat
	relay  bool
}

func (p chatterProtocol) Name() string { return "chatter" }
func (p chatterProtocol) CloneState(n Node) Node {
	c := *n.(*chatterNode)
	return &c
}
func (p chatterProtocol) NewNode(id int) Node {
	return &chatterNode{id: id, period: p.period, mult: p.mult, relay: p.relay}
}

// TestQuickRunDeterministic re-runs random configurations and demands
// bit-identical traces: the foundation the construction verifiers stand on.
func TestQuickRunDeterministic(t *testing.T) {
	f := func(nRaw, seedRaw uint8, relay bool, rateBits [6]uint8) bool {
		n := int(nRaw%5) + 3
		net, err := network.Line(n)
		if err != nil {
			return false
		}
		scheds := make([]*clock.Schedule, n)
		for i := range scheds {
			// Rates in {1, 9/8, 5/4}.
			num := int64(rateBits[i%len(rateBits)]%3)*1 + 8
			scheds[i] = clock.Constant(rat.MustFrac(num, 8))
		}
		cfg := Config{
			Net:       net,
			Schedules: scheds,
			Adversary: HashAdversary{Seed: uint64(seedRaw), Denom: 8},
			Protocol:  chatterProtocol{period: rat.FromInt(1), mult: rat.FromInt(1), relay: relay},
			Duration:  rat.FromInt(12),
			Rho:       rat.MustFrac(1, 2),
		}
		a, err := Run(cfg)
		if err != nil {
			return false
		}
		b, err := Run(cfg)
		if err != nil {
			return false
		}
		if len(a.Actions) != len(b.Actions) {
			return false
		}
		for i := range a.Actions {
			if a.Actions[i] != b.Actions[i] {
				return false
			}
		}
		return trace.CheckIndistinguishable(a, b) == nil && trace.PrefixEqual(a, b, cfg.Duration) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickLedgerConsistent checks ledger invariants on random runs: every
// delivered message has recv = send + delay, delays within [0, d], and every
// recv action has a matching ledger entry.
func TestQuickLedgerConsistent(t *testing.T) {
	f := func(nRaw, seedRaw uint8) bool {
		n := int(nRaw%5) + 3
		net, err := network.Line(n)
		if err != nil {
			return false
		}
		scheds := make([]*clock.Schedule, n)
		for i := range scheds {
			scheds[i] = clock.Constant(rat.FromInt(1))
		}
		cfg := Config{
			Net:       net,
			Schedules: scheds,
			Adversary: HashAdversary{Seed: uint64(seedRaw), Denom: 4},
			Protocol:  chatterProtocol{period: rat.FromInt(1), mult: rat.FromInt(1)},
			Duration:  rat.FromInt(10),
			Rho:       rat.MustFrac(1, 2),
		}
		exec, err := Run(cfg)
		if err != nil {
			return false
		}
		for key, rec := range exec.Ledger {
			d := net.Dist(key.From, key.To)
			if rec.Delay.Sign() < 0 || rec.Delay.Greater(d) {
				return false
			}
			if rec.Delivered && !rec.RecvReal.Equal(rec.SendReal.Add(rec.Delay)) {
				return false
			}
		}
		recvs := 0
		for _, a := range exec.Actions {
			if a.Kind != trace.KindRecv {
				continue
			}
			recvs++
			rec, ok := exec.Ledger[trace.MsgKey{From: a.Peer, To: a.Node, Seq: a.MsgSeq}]
			if !ok || !rec.Delivered || !rec.RecvReal.Equal(a.Real) {
				return false
			}
		}
		delivered := 0
		for _, rec := range exec.Ledger {
			if rec.Delivered {
				delivered++
			}
		}
		return recvs == delivered
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickHWMonotone checks that per-node hardware readings in the trace
// are nondecreasing and consistent with the schedule.
func TestQuickHWMonotone(t *testing.T) {
	f := func(seedRaw uint8) bool {
		n := 4
		net, err := network.Line(n)
		if err != nil {
			return false
		}
		scheds := make([]*clock.Schedule, n)
		for i := range scheds {
			scheds[i] = clock.Constant(rat.MustFrac(int64(seedRaw%3)+8, 8))
		}
		cfg := Config{
			Net:       net,
			Schedules: scheds,
			Adversary: Midpoint(),
			Protocol:  chatterProtocol{period: rat.FromInt(1), mult: rat.FromInt(1), relay: true},
			Duration:  rat.FromInt(8),
			Rho:       rat.MustFrac(1, 2),
		}
		exec, err := Run(cfg)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			var prev rat.Rat
			for _, a := range exec.NodeActions(i) {
				if a.HW.Less(prev) {
					return false
				}
				if !exec.HWAt(i, a.Real).Equal(a.HW) {
					return false
				}
				prev = a.HW
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
