package sim

import (
	"fmt"
	"testing"

	"gcs/internal/clock"
	"gcs/internal/network"
	"gcs/internal/rat"
	"gcs/internal/trace"
)

func ri(n int64) rat.Rat    { return rat.FromInt(n) }
func rf(n, d int64) rat.Rat { return rat.MustFrac(n, d) }

// pingMsg is a test payload.
type pingMsg struct {
	Val rat.Rat
}

func (m pingMsg) MsgString() string { return "ping:" + m.Val.String() }

// pingNode node 0 sends its hardware time to node 1 every period; node 1
// records receipt count via logical jumps.
type pingNode struct {
	id     int
	period rat.Rat
}

func (p *pingNode) Init(rt *Runtime) {
	if p.id == 0 {
		rt.SetTimerAtHW(p.period, 1)
	}
}

func (p *pingNode) OnTimer(rt *Runtime, timerID int) {
	rt.Send(1, pingMsg{Val: rt.HW()})
	rt.SetTimerAtHW(rt.HW().Add(p.period), 1)
}

func (p *pingNode) OnMessage(rt *Runtime, from int, msg Message) {
	m, ok := msg.(pingMsg)
	if !ok {
		return
	}
	// Jump logical clock to the received value if ahead.
	if m.Val.Greater(rt.Logical()) {
		rt.SetLogical(m.Val, rat.FromInt(1))
	}
}

type pingProtocol struct{ period rat.Rat }

func (p pingProtocol) Name() string        { return "ping" }
func (p pingProtocol) NewNode(id int) Node { return &pingNode{id: id, period: p.period} }
func (p pingProtocol) CloneState(n Node) Node {
	c := *n.(*pingNode)
	return &c
}

func twoNodeConfig(t *testing.T, sched0, sched1 *clock.Schedule, adv Adversary, dur rat.Rat) Config {
	t.Helper()
	net, err := network.TwoNode(ri(2))
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Net:       net,
		Schedules: []*clock.Schedule{sched0, sched1},
		Adversary: adv,
		Protocol:  pingProtocol{period: ri(1)},
		Duration:  dur,
		Rho:       rf(1, 2),
	}
}

func TestRunBasics(t *testing.T) {
	cfg := twoNodeConfig(t, clock.Constant(ri(1)), clock.Constant(ri(1)), Midpoint(), ri(10))
	exec, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Node 0 fires timers at HW 1..10 → 10 sends.
	var sends, recvs int
	for _, a := range exec.NodeActions(0) {
		if a.Kind == trace.KindSend {
			sends++
		}
	}
	for _, a := range exec.NodeActions(1) {
		if a.Kind == trace.KindRecv {
			recvs++
		}
	}
	if sends != 10 {
		t.Errorf("sends = %d, want 10", sends)
	}
	// Delay = bound/2 = 1, so the send at t=10 arrives at 11 > horizon.
	if recvs != 9 {
		t.Errorf("recvs = %d, want 9", recvs)
	}
	// Ledger: 10 messages, 9 delivered.
	if len(exec.Ledger) != 10 {
		t.Errorf("ledger size = %d, want 10", len(exec.Ledger))
	}
	delivered := 0
	for _, rec := range exec.Ledger {
		if rec.Delivered {
			delivered++
			if !rec.Delay.Equal(ri(1)) {
				t.Errorf("delay = %s, want 1", rec.Delay)
			}
			if !rec.RecvReal.Equal(rec.SendReal.Add(rec.Delay)) {
				t.Error("recv != send + delay")
			}
		}
	}
	if delivered != 9 {
		t.Errorf("delivered = %d, want 9", delivered)
	}
}

func TestRunDeterministic(t *testing.T) {
	mk := func() *trace.Execution {
		cfg := twoNodeConfig(t, clock.Constant(ri(1)), clock.Constant(rf(9, 8)), HashAdversary{Seed: 7}, ri(20))
		exec, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return exec
	}
	a, b := mk(), mk()
	if len(a.Actions) != len(b.Actions) {
		t.Fatalf("action counts differ: %d vs %d", len(a.Actions), len(b.Actions))
	}
	for i := range a.Actions {
		x, y := a.Actions[i], b.Actions[i]
		if x != y {
			t.Fatalf("action %d differs: %+v vs %+v", i, x, y)
		}
	}
	if err := trace.PrefixEqual(a, b, ri(20)); err != nil {
		t.Fatal(err)
	}
}

func TestHardwareClockDrivesTimers(t *testing.T) {
	// Rate 2 is outside [1-ρ, 1+ρ] for ρ = 1/2, so Run must reject it.
	cfg := twoNodeConfig(t, clock.Constant(ri(2)), clock.Constant(ri(1)), Midpoint(), ri(5))
	if _, err := Run(cfg); err == nil {
		t.Fatal("expected drift validation error for rate-2 clock")
	}
	// Use rate 3/2 instead (within ρ = 1/2): the HW-1 timer fires at real 2/3.
	cfg = twoNodeConfig(t, clock.Constant(rf(3, 2)), clock.Constant(ri(1)), Midpoint(), ri(6))
	exec, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// First timer at HW=1 → real time 2/3.
	for _, a := range exec.NodeActions(0) {
		if a.Kind == trace.KindTimer {
			if !a.Real.Equal(rf(2, 3)) {
				t.Errorf("first timer at real %s, want 2/3", a.Real)
			}
			if !a.HW.Equal(ri(1)) {
				t.Errorf("first timer at HW %s, want 1", a.HW)
			}
			break
		}
	}
}

func TestLogicalClockCompilation(t *testing.T) {
	// Node 1 jumps its logical clock to received values. With node 0 at rate
	// 3/2 and node 1 at rate 1, node 1's logical clock jumps above H_1.
	cfg := twoNodeConfig(t, clock.Constant(rf(3, 2)), clock.Constant(ri(1)), FractionAdversary{Frac: rat.Rat{}}, ri(12))
	exec, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// At real time 12, node 0's HW = 18; its last send ≤ 12 carried HW = 18
	// (timer 18 at real 12). Delay 0 → node 1 receives it at real 12 and
	// jumps to 18.
	l1 := exec.LogicalAt(1, ri(12))
	if !l1.Equal(ri(18)) {
		t.Errorf("L_1(12) = %s, want 18", l1)
	}
	// Between receipts the logical clock advances at hardware rate 1.
	mid := exec.LogicalAt(1, rf(21, 2)) // right after the t=10.5 jump? probe continuity
	if mid.Greater(ri(18)) {
		t.Errorf("L_1(10.5) = %s exceeds final value", mid)
	}
	// Logical clocks never decrease (upward jumps only in this protocol).
	if exec.Logical[1].MinJump(rat.Rat{}, ri(12)).Sign() < 0 {
		t.Error("logical clock of node 1 has a downward jump")
	}
	if exec.Logical[1].MinSlope(rat.Rat{}, ri(12)).Less(ri(1)) {
		t.Error("logical clock of node 1 has slope < 1")
	}
}

func TestConfigValidation(t *testing.T) {
	net, _ := network.TwoNode(ri(1))
	good := Config{
		Net:       net,
		Schedules: []*clock.Schedule{clock.Constant(ri(1)), clock.Constant(ri(1))},
		Adversary: Midpoint(),
		Protocol:  pingProtocol{period: ri(1)},
		Duration:  ri(1),
		Rho:       rf(1, 2),
	}
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"nil net", func(c *Config) { c.Net = nil }},
		{"schedule count", func(c *Config) { c.Schedules = c.Schedules[:1] }},
		{"nil adversary", func(c *Config) { c.Adversary = nil }},
		{"nil protocol", func(c *Config) { c.Protocol = nil }},
		{"zero duration", func(c *Config) { c.Duration = rat.Rat{} }},
		{"rho too big", func(c *Config) { c.Rho = ri(1) }},
		{"drift violation", func(c *Config) {
			c.Schedules = []*clock.Schedule{clock.Constant(ri(3)), clock.Constant(ri(1))}
		}},
	}
	for _, tc := range cases {
		cfg := good
		cfg.Schedules = append([]*clock.Schedule{}, good.Schedules...)
		tc.mutate(&cfg)
		if _, err := Run(cfg); err == nil {
			t.Errorf("%s: want error", tc.name)
		}
	}
}

// badDelayAdversary returns delays exceeding the bound.
type badDelayAdversary struct{}

func (badDelayAdversary) Delay(_, _ int, _ uint64, _ rat.Rat, bound rat.Rat) rat.Rat {
	return bound.Add(ri(1))
}

func TestAdversaryDelayValidation(t *testing.T) {
	cfg := twoNodeConfig(t, clock.Constant(ri(1)), clock.Constant(ri(1)), badDelayAdversary{}, ri(5))
	if _, err := Run(cfg); err == nil {
		t.Fatal("expected delay-bound violation error")
	}
}

// pastTimerNode sets a timer in the past from Init.
type pastTimerNode struct{ fired bool }

func (n *pastTimerNode) Init(rt *Runtime) {
	rt.SetTimerAtHW(rt.HW().Add(ri(1)), 1)
}
func (n *pastTimerNode) OnTimer(rt *Runtime, id int) {
	rt.SetTimerAtHW(rt.HW().Sub(ri(1)), 2) // in the past: must fail the run
}
func (n *pastTimerNode) OnMessage(rt *Runtime, from int, msg Message) {}

type pastTimerProtocol struct{}

func (pastTimerProtocol) Name() string        { return "past-timer" }
func (pastTimerProtocol) NewNode(id int) Node { return &pastTimerNode{} }
func (pastTimerProtocol) CloneState(n Node) Node {
	c := *n.(*pastTimerNode)
	return &c
}

func TestPastTimerRejected(t *testing.T) {
	net, _ := network.TwoNode(ri(1))
	cfg := Config{
		Net:       net,
		Schedules: []*clock.Schedule{clock.Constant(ri(1)), clock.Constant(ri(1))},
		Adversary: Midpoint(),
		Protocol:  pastTimerProtocol{},
		Duration:  ri(5),
		Rho:       rf(1, 2),
	}
	if _, err := Run(cfg); err == nil {
		t.Fatal("expected past-timer error")
	}
}

func TestScriptedAdversary(t *testing.T) {
	script := map[trace.MsgKey]rat.Rat{
		{From: 0, To: 1, Seq: 0}: rf(3, 2),
	}
	adv := ScriptedAdversary{Delays: script, Fallback: Midpoint()}
	cfg := twoNodeConfig(t, clock.Constant(ri(1)), clock.Constant(ri(1)), adv, ri(5))
	exec, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rec := exec.Ledger[trace.MsgKey{From: 0, To: 1, Seq: 0}]
	if !rec.Delay.Equal(rf(3, 2)) {
		t.Errorf("scripted delay = %s, want 3/2", rec.Delay)
	}
	rec = exec.Ledger[trace.MsgKey{From: 0, To: 1, Seq: 1}]
	if !rec.Delay.Equal(ri(1)) {
		t.Errorf("fallback delay = %s, want 1", rec.Delay)
	}
}

func TestHashAdversaryDeterministicAndBounded(t *testing.T) {
	adv := HashAdversary{Seed: 99}
	bound := ri(4)
	seen := map[string]bool{}
	for seq := uint64(0); seq < 50; seq++ {
		d1 := adv.Delay(0, 1, seq, ri(0), bound)
		d2 := adv.Delay(0, 1, seq, ri(7), bound) // send time must not matter
		if !d1.Equal(d2) {
			t.Fatal("hash adversary depends on send time")
		}
		if d1.Sign() < 0 || d1.Greater(bound) {
			t.Fatalf("delay %s out of bounds", d1)
		}
		seen[d1.String()] = true
	}
	if len(seen) < 3 {
		t.Errorf("hash adversary produced only %d distinct delays in 50 draws", len(seen))
	}
}

func TestIndistinguishabilitySelf(t *testing.T) {
	cfg := twoNodeConfig(t, clock.Constant(ri(1)), clock.Constant(rf(9, 8)), HashAdversary{Seed: 3}, ri(15))
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.CheckIndistinguishable(a, b); err != nil {
		t.Fatal(err)
	}
}

func TestMsgString(t *testing.T) {
	m := pingMsg{Val: rf(3, 2)}
	if got, want := m.MsgString(), "ping:3/2"; got != want {
		t.Errorf("MsgString = %q, want %q", got, want)
	}
	// Equal values must produce equal strings regardless of how computed.
	v := ri(3).Div(ri(2))
	if (pingMsg{Val: v}).MsgString() != m.MsgString() {
		t.Error("canonical strings differ for equal values")
	}
}

func TestPerNodeActionOrder(t *testing.T) {
	cfg := twoNodeConfig(t, clock.Constant(ri(1)), clock.Constant(ri(1)), Midpoint(), ri(8))
	exec, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < exec.N(); i++ {
		actions := exec.NodeActions(i)
		if len(actions) == 0 || actions[0].Kind != trace.KindInit {
			t.Fatalf("node %d first action is not init", i)
		}
		for k := 1; k < len(actions); k++ {
			if actions[k].Real.Less(actions[k-1].Real) {
				t.Fatalf("node %d actions out of order", i)
			}
			if actions[k].HW.Less(actions[k-1].HW) {
				t.Fatalf("node %d hardware readings out of order", i)
			}
		}
	}
}

func ExampleRun() {
	net, _ := network.TwoNode(rat.FromInt(2))
	cfg := Config{
		Net:       net,
		Schedules: []*clock.Schedule{clock.Constant(rat.FromInt(1)), clock.Constant(rat.FromInt(1))},
		Adversary: Midpoint(),
		Protocol:  pingProtocol{period: rat.FromInt(1)},
		Duration:  rat.FromInt(4),
		Rho:       rat.MustFrac(1, 2),
	}
	exec, err := Run(cfg)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("actions:", len(exec.Actions))
	// Output: actions: 13
}

// introspectNode exercises the Runtime accessors from inside callbacks.
type introspectNode struct {
	t     *testing.T
	wantN int
}

func (n *introspectNode) Init(rt *Runtime) {
	if rt.ID() < 0 || rt.ID() >= n.wantN {
		n.t.Errorf("bad ID %d", rt.ID())
	}
	if rt.N() != n.wantN {
		n.t.Errorf("N = %d, want %d", rt.N(), n.wantN)
	}
	if !rt.Rho().Equal(rf(1, 2)) {
		n.t.Errorf("Rho = %s", rt.Rho())
	}
	for _, j := range rt.Neighbors() {
		if rt.Dist(j).Sign() <= 0 {
			n.t.Errorf("Dist(%d) = %s", j, rt.Dist(j))
		}
	}
	if !rt.LogicalMult().Equal(ri(1)) {
		n.t.Errorf("default mult = %s", rt.LogicalMult())
	}
	rt.SetLogical(rt.Logical(), rf(3, 2))
	if !rt.LogicalMult().Equal(rf(3, 2)) {
		n.t.Errorf("mult after SetLogical = %s", rt.LogicalMult())
	}
}
func (n *introspectNode) OnTimer(*Runtime, int)            {}
func (n *introspectNode) OnMessage(*Runtime, int, Message) {}

type introspectProtocol struct {
	t *testing.T
	n int
}

func (p introspectProtocol) Name() string        { return "introspect" }
func (p introspectProtocol) NewNode(id int) Node { return &introspectNode{t: p.t, wantN: p.n} }
func (p introspectProtocol) CloneState(n Node) Node {
	c := *n.(*introspectNode)
	return &c
}

func TestRuntimeAccessors(t *testing.T) {
	net, _ := network.Line(4)
	scheds := make([]*clock.Schedule, 4)
	for i := range scheds {
		scheds[i] = clock.Constant(ri(1))
	}
	if _, err := Run(Config{
		Net: net, Schedules: scheds, Adversary: Midpoint(),
		Protocol: introspectProtocol{t: t, n: 4}, Duration: ri(2), Rho: rf(1, 2),
	}); err != nil {
		t.Fatal(err)
	}
}

// negMultNode declares an invalid negative multiplier.
type negMultNode struct{}

func (negMultNode) Init(rt *Runtime)                 { rt.SetLogical(ri(0), ri(-1)) }
func (negMultNode) OnTimer(*Runtime, int)            {}
func (negMultNode) OnMessage(*Runtime, int, Message) {}

type negMultProtocol struct{}

func (negMultProtocol) Name() string           { return "neg-mult" }
func (negMultProtocol) NewNode(int) Node       { return negMultNode{} }
func (negMultProtocol) CloneState(n Node) Node { return n }

func TestNegativeMultRejected(t *testing.T) {
	net, _ := network.TwoNode(ri(1))
	cfg := Config{
		Net:       net,
		Schedules: []*clock.Schedule{clock.Constant(ri(1)), clock.Constant(ri(1))},
		Adversary: Midpoint(),
		Protocol:  negMultProtocol{},
		Duration:  ri(2),
		Rho:       rf(1, 2),
	}
	if _, err := Run(cfg); err == nil {
		t.Fatal("negative multiplier should fail the run")
	}
}

// badSendNode sends to itself.
type badSendNode struct{ id int }

func (n badSendNode) Init(rt *Runtime)               { rt.Send(rt.ID(), pingMsg{Val: ri(1)}) }
func (badSendNode) OnTimer(*Runtime, int)            {}
func (badSendNode) OnMessage(*Runtime, int, Message) {}

type badSendProtocol struct{}

func (badSendProtocol) Name() string           { return "bad-send" }
func (badSendProtocol) NewNode(id int) Node    { return badSendNode{id: id} }
func (badSendProtocol) CloneState(n Node) Node { return n }

func TestSelfSendRejected(t *testing.T) {
	net, _ := network.TwoNode(ri(1))
	cfg := Config{
		Net:       net,
		Schedules: []*clock.Schedule{clock.Constant(ri(1)), clock.Constant(ri(1))},
		Adversary: Midpoint(),
		Protocol:  badSendProtocol{},
		Duration:  ri(2),
		Rho:       rf(1, 2),
	}
	if _, err := Run(cfg); err == nil {
		t.Fatal("self-send should fail the run")
	}
}

// nilMsgNode sends a nil payload.
type nilMsgNode struct{}

func (nilMsgNode) Init(rt *Runtime)                 { rt.Send(1, nil) }
func (nilMsgNode) OnTimer(*Runtime, int)            {}
func (nilMsgNode) OnMessage(*Runtime, int, Message) {}

type nilMsgProtocol struct{}

func (nilMsgProtocol) Name() string           { return "nil-msg" }
func (nilMsgProtocol) NewNode(int) Node       { return nilMsgNode{} }
func (nilMsgProtocol) CloneState(n Node) Node { return n }

func TestNilMessageRejected(t *testing.T) {
	net, _ := network.TwoNode(ri(1))
	cfg := Config{
		Net:       net,
		Schedules: []*clock.Schedule{clock.Constant(ri(1)), clock.Constant(ri(1))},
		Adversary: Midpoint(),
		Protocol:  nilMsgProtocol{},
		Duration:  ri(2),
		Rho:       rf(1, 2),
	}
	if _, err := Run(cfg); err == nil {
		t.Fatal("nil message should fail the run")
	}
}

// farSenderNode sends directly to a distant (non-neighbor) node, which the
// model permits: distances bound delays for every pair.
type farSenderNode struct{ id int }

func (n farSenderNode) Init(rt *Runtime) {
	if n.id == 0 {
		rt.Send(rt.N()-1, pingMsg{Val: ri(42)})
	}
}
func (farSenderNode) OnTimer(*Runtime, int)            {}
func (farSenderNode) OnMessage(*Runtime, int, Message) {}

type farSenderProtocol struct{}

func (farSenderProtocol) Name() string           { return "far-sender" }
func (farSenderProtocol) NewNode(id int) Node    { return farSenderNode{id: id} }
func (farSenderProtocol) CloneState(n Node) Node { return n }

func TestLongDistanceSend(t *testing.T) {
	net, err := network.Line(5)
	if err != nil {
		t.Fatal(err)
	}
	scheds := make([]*clock.Schedule, 5)
	for i := range scheds {
		scheds[i] = clock.Constant(ri(1))
	}
	exec, err := Run(Config{
		Net: net, Schedules: scheds, Adversary: Midpoint(),
		Protocol: farSenderProtocol{}, Duration: ri(5), Rho: rf(1, 2),
	})
	if err != nil {
		t.Fatal(err)
	}
	rec, ok := exec.Ledger[trace.MsgKey{From: 0, To: 4, Seq: 0}]
	if !ok {
		t.Fatal("long-distance message missing from ledger")
	}
	// Midpoint delay over distance 4 is 2.
	if !rec.Delay.Equal(ri(2)) {
		t.Errorf("delay = %s, want 2", rec.Delay)
	}
	if !rec.Delivered {
		t.Error("message not delivered")
	}
}

func TestHashAdversaryString(t *testing.T) {
	if got := (HashAdversary{Seed: 42}).String(); got != "hash-42" {
		t.Errorf("String = %q", got)
	}
}

func TestFuncAdversary(t *testing.T) {
	adv := FuncAdversary(func(_, _ int, _ uint64, _ rat.Rat, bound rat.Rat) rat.Rat {
		return bound
	})
	if got := adv.Delay(0, 1, 0, ri(0), ri(3)); !got.Equal(ri(3)) {
		t.Errorf("FuncAdversary delay = %s", got)
	}
}
