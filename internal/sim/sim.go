// Package sim is the batch-run compatibility facade over the incremental
// simulation core in internal/engine.
//
// Historically this package held the monolithic record-everything simulator;
// the event loop, runtime, and adversaries now live in internal/engine,
// which exposes them incrementally (Step / RunUntil / RunFor + Observers).
// Every type here is an alias for its engine counterpart, so existing
// callers — the algorithm portfolio, the lower-bound constructions, the
// experiments — compile and behave exactly as before, and a sim.Protocol is
// an engine.Protocol with no conversion.
//
// Run executes a Config to its horizon and returns the full recorded trace,
// implemented as an Engine with a trace.Recorder attached. Callers that do
// not need the trace should build an engine.Engine directly and observe it
// online instead.
package sim

import (
	"gcs/internal/engine"
	"gcs/internal/trace"
)

// Core model types, aliased from the engine core.
type (
	// Message is a payload with a canonical string form.
	Message = engine.Message
	// Node is one timed automaton.
	Node = engine.Node
	// Protocol instantiates per-node automata.
	Protocol = engine.Protocol
	// BulkCloneProtocol is the optional slab-clone extension Engine.Fork
	// prefers over per-node CloneState.
	BulkCloneProtocol = engine.BulkCloneProtocol
	// Runtime is a node's interface to the simulated world.
	Runtime = engine.Runtime
	// Adversary chooses message delays.
	Adversary = engine.Adversary
	// CheckedAdversary is an Adversary whose decision can fail with a
	// precise error (e.g. an exhausted script with no fallback).
	CheckedAdversary = engine.CheckedAdversary
	// Config fully describes a batch run.
	Config = engine.Config
)

// Concrete adversaries, aliased from the engine core.
type (
	// FractionAdversary delays every message by a fixed fraction of the
	// bound.
	FractionAdversary = engine.FractionAdversary
	// ScriptedAdversary replays exact per-message delays.
	ScriptedAdversary = engine.ScriptedAdversary
	// FuncAdversary adapts a function.
	FuncAdversary = engine.FuncAdversary
	// HashAdversary draws reproducible pseudo-random delays.
	HashAdversary = engine.HashAdversary
)

// Midpoint returns the frac=1/2 adversary used throughout the constructions.
func Midpoint() FractionAdversary { return engine.Midpoint() }

// Run executes the configuration to its horizon and returns the trace.
func Run(cfg Config) (*trace.Execution, error) { return engine.Run(cfg) }
