// Package sim is a deterministic discrete-event simulator for networks of
// timed automata with drifting hardware clocks, following the model of
// Fan & Lynch (PODC 2004), §3.
//
// Each node runs a Node automaton that can observe only its hardware-clock
// readings and received messages — never real time. The adversary supplies
// each node's hardware rate schedule (see internal/clock) and chooses every
// message's delay within [0, d(from,to)].
//
// Determinism: events are ordered by (real time, kind, destination node,
// peer, per-pair message sequence / timer id, scheduling sequence). Two runs
// with the same configuration produce identical traces, and — crucially for
// the lower-bound constructions — per-node event order is invariant under
// the per-node monotone time remappings used by the Add Skew and Bounded
// Increase lemmas, because ties are broken by node-visible keys rather than
// by wall-clock accidents.
package sim

import (
	"container/heap"
	"errors"
	"fmt"

	"gcs/internal/clock"
	"gcs/internal/network"
	"gcs/internal/piecewise"
	"gcs/internal/rat"
	"gcs/internal/trace"
)

// Message is the payload of a simulated message. MsgString must be a
// canonical, value-determined encoding: trace equivalence compares messages
// by this string, so two payloads with equal meaning must produce equal
// strings.
type Message interface {
	MsgString() string
}

// Node is one timed automaton. Implementations must be deterministic
// functions of the observations delivered through Runtime (hardware
// readings, messages); they must not consult real time, randomness, or
// global state.
type Node interface {
	// Init is called once at real time 0.
	Init(rt *Runtime)
	// OnTimer is called when a timer set via SetTimerAtHW fires.
	OnTimer(rt *Runtime, timerID int)
	// OnMessage is called when a message arrives.
	OnMessage(rt *Runtime, from int, msg Message)
}

// Protocol instantiates per-node automata.
type Protocol interface {
	Name() string
	// NewNode creates the automaton for node id. Static environment data is
	// available through the Runtime during callbacks.
	NewNode(id int) Node
}

// Adversary chooses message delays. Delay must return a value in
// [0, bound]; the simulator validates and fails the run otherwise.
type Adversary interface {
	Delay(from, to int, seq uint64, sendReal rat.Rat, bound rat.Rat) rat.Rat
}

// Config fully describes a run.
type Config struct {
	Net       *network.Network
	Schedules []*clock.Schedule // one per node
	Adversary Adversary
	Protocol  Protocol
	Duration  rat.Rat
	Rho       rat.Rat // drift bound ρ; exposed to algorithms, validates schedules
}

// Run executes the configuration to its horizon and returns the trace.
func Run(cfg Config) (*trace.Execution, error) {
	if cfg.Net == nil {
		return nil, errors.New("sim: nil network")
	}
	n := cfg.Net.N()
	if len(cfg.Schedules) != n {
		return nil, fmt.Errorf("sim: %d schedules for %d nodes", len(cfg.Schedules), n)
	}
	if cfg.Adversary == nil {
		return nil, errors.New("sim: nil adversary")
	}
	if cfg.Protocol == nil {
		return nil, errors.New("sim: nil protocol")
	}
	if cfg.Duration.Sign() <= 0 {
		return nil, fmt.Errorf("sim: non-positive duration %s", cfg.Duration)
	}
	if cfg.Rho.Sign() < 0 || cfg.Rho.GreaterEq(rat.FromInt(1)) {
		return nil, fmt.Errorf("sim: drift ρ=%s outside [0,1)", cfg.Rho)
	}
	for i, s := range cfg.Schedules {
		if s == nil {
			return nil, fmt.Errorf("sim: nil schedule for node %d", i)
		}
		if err := s.ValidateDrift(cfg.Rho); err != nil {
			return nil, fmt.Errorf("sim: node %d: %w", i, err)
		}
	}

	s := &state{cfg: cfg}
	s.ledger = make(map[trace.MsgKey]trace.MsgRecord)
	s.pairSeq = make(map[[2]int]uint64)
	s.perNode = make([][]int, n)
	s.runtimes = make([]*Runtime, n)
	s.nodes = make([]Node, n)
	for i := 0; i < n; i++ {
		s.runtimes[i] = &Runtime{sim: s, id: i}
		s.nodes[i] = cfg.Protocol.NewNode(i)
		// Default logical clock L = H until the node declares otherwise.
		s.runtimes[i].decls = []logicalDecl{{}}
		s.runtimes[i].decls[0].Mult = rat.FromInt(1)
	}
	// Seed init events.
	for i := 0; i < n; i++ {
		heap.Push(&s.queue, &event{kind: trace.KindInit, node: i, from: -1, seq: s.nextSeq()})
	}
	for s.queue.Len() > 0 && s.err == nil {
		ev, ok := heap.Pop(&s.queue).(*event)
		if !ok {
			return nil, errors.New("sim: corrupt event queue")
		}
		if ev.time.Greater(cfg.Duration) {
			continue // beyond horizon; drain to keep ledger bookkeeping simple
		}
		s.dispatch(ev)
	}
	if s.err != nil {
		return nil, s.err
	}
	return s.compile()
}

// logicalDecl is one logical-clock declaration: from hardware reading HW0 on,
// L(H) = Value + Mult·(H − HW0). Real is the real time of the declaration.
type logicalDecl struct {
	Real  rat.Rat
	HW0   rat.Rat
	Value rat.Rat
	Mult  rat.Rat
}

type state struct {
	cfg      Config
	queue    eventQueue
	seq      uint64
	now      rat.Rat
	actions  []trace.Action
	perNode  [][]int
	ledger   map[trace.MsgKey]trace.MsgRecord
	pairSeq  map[[2]int]uint64
	runtimes []*Runtime
	nodes    []Node
	err      error
}

func (s *state) nextSeq() uint64 {
	s.seq++
	return s.seq
}

func (s *state) fail(err error) {
	if s.err == nil {
		s.err = err
	}
}

func (s *state) record(a trace.Action) {
	s.perNode[a.Node] = append(s.perNode[a.Node], len(s.actions))
	s.actions = append(s.actions, a)
}

func (s *state) dispatch(ev *event) {
	s.now = ev.time
	rt := s.runtimes[ev.node]
	hw := s.cfg.Schedules[ev.node].HW(ev.time)
	rt.hwNow = hw
	switch ev.kind {
	case trace.KindInit:
		s.record(trace.Action{Node: ev.node, Kind: trace.KindInit, Real: ev.time, HW: hw, Peer: -1})
		s.nodes[ev.node].Init(rt)
	case trace.KindTimer:
		s.record(trace.Action{Node: ev.node, Kind: trace.KindTimer, Real: ev.time, HW: hw, Peer: -1, TimerID: ev.timerID})
		s.nodes[ev.node].OnTimer(rt, ev.timerID)
	case trace.KindRecv:
		key := trace.MsgKey{From: ev.from, To: ev.node, Seq: ev.msgSeq}
		rec := s.ledger[key]
		rec.Delivered = true
		rec.RecvReal = ev.time
		s.ledger[key] = rec
		s.record(trace.Action{Node: ev.node, Kind: trace.KindRecv, Real: ev.time, HW: hw,
			Peer: ev.from, MsgSeq: ev.msgSeq, Payload: ev.payload.MsgString()})
		s.nodes[ev.node].OnMessage(rt, ev.from, ev.payload)
	default:
		s.fail(fmt.Errorf("sim: unknown event kind %v", ev.kind))
	}
}

func (s *state) compile() (*trace.Execution, error) {
	n := s.cfg.Net.N()
	exec := &trace.Execution{
		Net:       s.cfg.Net,
		Schedules: s.cfg.Schedules,
		Duration:  s.cfg.Duration,
		Actions:   s.actions,
		PerNode:   s.perNode,
		Ledger:    s.ledger,
		Logical:   make([]*piecewise.PLF, n),
		Hardware:  make([]*piecewise.PLF, n),
	}
	for i := 0; i < n; i++ {
		exec.Hardware[i] = s.cfg.Schedules[i].HWFunc()
		plf, err := compileLogical(s.cfg.Schedules[i], s.runtimes[i].decls, s.cfg.Duration)
		if err != nil {
			return nil, fmt.Errorf("sim: node %d logical clock: %w", i, err)
		}
		exec.Logical[i] = plf
	}
	return exec, nil
}

// compileLogical merges a node's logical-clock declarations with its
// hardware rate schedule into an exact piecewise-linear L(t) over real time.
// Between declarations, L(t) = Value + Mult·(H(t) − HW0), so within one
// hardware rate segment the real-time slope is Mult·rate.
func compileLogical(sched *clock.Schedule, decls []logicalDecl, duration rat.Rat) (*piecewise.PLF, error) {
	if len(decls) == 0 {
		return nil, errors.New("no logical declarations")
	}
	plf := piecewise.New(rat.Rat{}, decls[0].Value, decls[0].Mult.Mul(sched.RateAt(rat.Rat{})))
	rateBreaks := sched.Rates()
	ri := 0 // index of the rate segment in effect
	advanceRate := func(t rat.Rat) {
		for ri+1 < len(rateBreaks) && rateBreaks[ri+1].At.LessEq(t) {
			ri++
		}
	}
	cur := decls[0]
	emit := func(at rat.Rat, d logicalDecl) error {
		advanceRate(at)
		v := d.Value.Add(d.Mult.Mul(sched.HW(at).Sub(d.HW0)))
		return plf.Append(at, v, d.Mult.Mul(rateBreaks[ri].Rate))
	}
	for k := 1; k < len(decls); k++ {
		d := decls[k]
		// Rate breakpoints strictly between the previous declaration and this
		// one change the real-time slope of the current declaration.
		for _, rb := range rateBreaks {
			if rb.At.Greater(cur.Real) && rb.At.Less(d.Real) && rb.At.LessEq(duration) {
				if err := emit(rb.At, cur); err != nil {
					return nil, err
				}
			}
		}
		if d.Real.Greater(duration) {
			return plf, nil
		}
		if err := emit(d.Real, d); err != nil {
			return nil, err
		}
		cur = d
	}
	for _, rb := range rateBreaks {
		if rb.At.Greater(cur.Real) && rb.At.LessEq(duration) {
			if err := emit(rb.At, cur); err != nil {
				return nil, err
			}
		}
	}
	return plf, nil
}
