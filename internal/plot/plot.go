// Package plot renders exact piecewise-linear simulation data as ASCII
// charts for terminals: skew-versus-time lines and gradient-profile bars.
// Sampling is only for display; all underlying analysis stays exact.
package plot

import (
	"fmt"
	"strings"

	"gcs/internal/rat"
	"gcs/internal/trace"
)

// Series is one named curve sampled on the shared time grid.
type Series struct {
	Name   string
	Values []float64
}

// TimeSeries samples f(t) = L_i(t) − L_j(t) on a width-point grid.
func TimeSeries(e *trace.Execution, i, j int, width int) Series {
	if width < 2 {
		width = 2
	}
	vals := make([]float64, width)
	dur := e.Duration
	for k := 0; k < width; k++ {
		t := dur.Mul(rat.MustFrac(int64(k), int64(width-1)))
		vals[k] = e.LogicalAt(i, t).Sub(e.LogicalAt(j, t)).Float64()
	}
	return Series{Name: fmt.Sprintf("L%d-L%d", i, j), Values: vals}
}

// Chart renders one or more series as a height-row ASCII chart with a
// shared y-scale. Each series uses its own glyph.
func Chart(title string, height int, series ...Series) string {
	if len(series) == 0 {
		return "(no series)\n"
	}
	if height < 3 {
		height = 3
	}
	width := 0
	lo, hi := series[0].Values[0], series[0].Values[0]
	for _, s := range series {
		if len(s.Values) > width {
			width = len(s.Values)
		}
		for _, v := range s.Values {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	if hi == lo {
		hi = lo + 1
	}
	glyphs := []byte{'*', 'o', '+', 'x', '#', '@'}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		g := glyphs[si%len(glyphs)]
		for k, v := range s.Values {
			row := int((hi - v) / (hi - lo) * float64(height-1))
			if row < 0 {
				row = 0
			}
			if row >= height {
				row = height - 1
			}
			grid[row][k] = g
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	for r, line := range grid {
		label := ""
		switch r {
		case 0:
			label = fmt.Sprintf("%8.2f", hi)
		case height - 1:
			label = fmt.Sprintf("%8.2f", lo)
		default:
			label = strings.Repeat(" ", 8)
		}
		fmt.Fprintf(&b, "%s |%s|\n", label, string(line))
	}
	fmt.Fprintf(&b, "%s  t=0%st=end\n", strings.Repeat(" ", 8), strings.Repeat("-", max(0, width-7)))
	var legend []string
	for si, s := range series {
		legend = append(legend, fmt.Sprintf("%c %s", glyphs[si%len(glyphs)], s.Name))
	}
	fmt.Fprintf(&b, "%s  %s\n", strings.Repeat(" ", 8), strings.Join(legend, "   "))
	return b.String()
}

// Bars renders label/value pairs as a horizontal bar chart (used for the
// empirical gradient profile f̂(d)).
func Bars(title string, labels []string, values []float64, width int) string {
	if width < 10 {
		width = 10
	}
	maxVal := 0.0
	maxLabel := 0
	for i, v := range values {
		if v > maxVal {
			maxVal = v
		}
		if len(labels[i]) > maxLabel {
			maxLabel = len(labels[i])
		}
	}
	if maxVal == 0 {
		maxVal = 1
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	for i, v := range values {
		n := int(v / maxVal * float64(width))
		fmt.Fprintf(&b, "%-*s |%s %.3f\n", maxLabel, labels[i], strings.Repeat("█", n), v)
	}
	return b.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
