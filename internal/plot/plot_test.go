package plot

import (
	"strings"
	"testing"

	"gcs/internal/algorithms"
	"gcs/internal/clock"
	"gcs/internal/network"
	"gcs/internal/rat"
	"gcs/internal/sim"
	"gcs/internal/trace"
)

func run(t *testing.T) *trace.Execution {
	t.Helper()
	net, err := network.Line(4)
	if err != nil {
		t.Fatal(err)
	}
	scheds := []*clock.Schedule{
		clock.Constant(rat.MustFrac(5, 4)),
		clock.Constant(rat.FromInt(1)),
		clock.Constant(rat.FromInt(1)),
		clock.Constant(rat.FromInt(1)),
	}
	exec, err := sim.Run(sim.Config{
		Net:       net,
		Schedules: scheds,
		Adversary: sim.Midpoint(),
		Protocol:  algorithms.MaxGossip(rat.FromInt(1)),
		Duration:  rat.FromInt(16),
		Rho:       rat.MustFrac(1, 2),
	})
	if err != nil {
		t.Fatal(err)
	}
	return exec
}

func TestTimeSeries(t *testing.T) {
	e := run(t)
	s := TimeSeries(e, 0, 3, 40)
	if len(s.Values) != 40 {
		t.Fatalf("values = %d", len(s.Values))
	}
	if s.Values[0] != 0 {
		t.Errorf("initial skew %f, want 0", s.Values[0])
	}
	// Skew never negative for the fast-head pair.
	for k, v := range s.Values {
		if v < 0 {
			t.Errorf("negative skew %f at sample %d", v, k)
		}
	}
	if s.Name != "L0-L3" {
		t.Errorf("name = %q", s.Name)
	}
}

func TestChart(t *testing.T) {
	e := run(t)
	out := Chart("skew", 8, TimeSeries(e, 0, 3, 50), TimeSeries(e, 0, 1, 50))
	if !strings.Contains(out, "skew") || !strings.Contains(out, "L0-L3") || !strings.Contains(out, "L0-L1") {
		t.Errorf("chart missing pieces:\n%s", out)
	}
	if strings.Count(out, "\n") < 10 {
		t.Errorf("chart too short:\n%s", out)
	}
	if !strings.ContainsAny(out, "*o") {
		t.Error("chart has no data glyphs")
	}
}

func TestChartDegenerate(t *testing.T) {
	if got := Chart("x", 5); got != "(no series)\n" {
		t.Errorf("empty chart = %q", got)
	}
	// Constant series: flat line, no division by zero.
	s := Series{Name: "flat", Values: []float64{2, 2, 2}}
	out := Chart("flat", 3, s)
	if !strings.Contains(out, "flat") {
		t.Error("flat chart broken")
	}
}

func TestBars(t *testing.T) {
	out := Bars("profile", []string{"d=1", "d=2"}, []float64{1, 2}, 20)
	if !strings.Contains(out, "d=1") || !strings.Contains(out, "█") {
		t.Errorf("bars broken:\n%s", out)
	}
	// All-zero values must not divide by zero.
	out = Bars("zeros", []string{"a"}, []float64{0}, 20)
	if !strings.Contains(out, "a") {
		t.Error("zero bars broken")
	}
}
