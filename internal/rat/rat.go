// Package rat implements exact rational arithmetic for simulated time.
//
// The gradient-clock-synchronization lower-bound constructions (Fan & Lynch,
// PODC 2004) depend on *exact* equalities between remapped event times and
// hardware-clock readings: execution β is indistinguishable from execution α
// only if H_i^α(T_α(π)) = H_i^β(T_β(π)) holds exactly for every action π.
// Floating point would turn those equalities into epsilon comparisons and
// could reorder simultaneous events, so all simulated time in this repository
// is rational.
//
// Rat is an immutable value type. The common case (numerator and denominator
// fitting comfortably in int64) runs allocation-free; results that overflow
// the fast path transparently fall back to math/big and are demoted back to
// the fast representation whenever they fit again.
package rat

import (
	"fmt"
	"math/big"
	"math/bits"
	"strconv"
)

// Rat is an exact rational number. The zero value is 0.
//
// Invariants when b == nil: den > 0 and gcd(|num|, den) == 1, except that the
// zero value is stored as num == 0, den == 0 and is interpreted as 0/1.
// When b != nil the value lives in b (normalized by math/big) and num/den are
// meaningless.
type Rat struct {
	num int64
	den int64
	b   *big.Rat
}

// fastLimit bounds operand magnitude for the allocation-free paths: products
// of two operands stay below 2^60 and sums of two such products below 2^61,
// so no intermediate overflows int64.
const fastLimit = int64(1) << 30

// FromInt returns the rational n/1.
func FromInt(n int64) Rat {
	if n == 0 {
		return Rat{}
	}
	return Rat{num: n, den: 1}
}

// FromFrac returns the rational n/d in lowest terms.
// It reports an error when d == 0.
func FromFrac(n, d int64) (Rat, error) {
	if d == 0 {
		return Rat{}, fmt.Errorf("rat: zero denominator in %d/%d", n, d)
	}
	if d == minInt64 || n == minInt64 {
		// Negation/abs of math.MinInt64 overflows; route through big.
		return fromBig(new(big.Rat).SetFrac(big.NewInt(n), big.NewInt(d))), nil
	}
	if d < 0 {
		n, d = -n, -d
	}
	return normSmall(n, d), nil
}

// MustFrac is FromFrac for constant operands; it panics on a zero
// denominator, which is a programming error.
func MustFrac(n, d int64) Rat {
	r, err := FromFrac(n, d)
	if err != nil {
		panic(err)
	}
	return r
}

// Parse parses "n", "n/d", or a decimal such as "1.25" (the syntaxes accepted
// by big.Rat.SetString).
func Parse(s string) (Rat, error) {
	b, ok := new(big.Rat).SetString(s)
	if !ok {
		return Rat{}, fmt.Errorf("rat: cannot parse %q", s)
	}
	return fromBig(b), nil
}

// MustParse is Parse for trusted constant inputs; it panics on a syntax
// error, which is a programming error.
func MustParse(s string) Rat {
	r, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return r
}

const minInt64 = -1 << 63

// parts returns the fast-path numerator and denominator, mapping the zero
// value to 0/1. Only valid when r.b == nil.
func (r Rat) parts() (int64, int64) {
	if r.den == 0 {
		return 0, 1
	}
	return r.num, r.den
}

func (r Rat) isBig() bool { return r.b != nil }

// toBig returns the value as a big.Rat. The result must not be mutated when
// it aliases r's internal representation.
func (r Rat) toBig() *big.Rat {
	if r.b != nil {
		return r.b
	}
	n, d := r.parts()
	return new(big.Rat).SetFrac64(n, d)
}

// fromBig converts a big.Rat into a Rat, demoting to the fast representation
// when the normalized numerator and denominator fit in int64. fromBig takes
// ownership of b.
func fromBig(b *big.Rat) Rat {
	if b.Num().IsInt64() && b.Denom().IsInt64() {
		n, d := b.Num().Int64(), b.Denom().Int64()
		if d != 0 { // big.Rat guarantees d >= 1
			if n == 0 {
				return Rat{}
			}
			return Rat{num: n, den: d}
		}
	}
	return Rat{b: b}
}

// gcd64 returns the greatest common divisor of non-negative x and y.
func gcd64(x, y int64) int64 {
	for y != 0 {
		x, y = y, x%y
	}
	return x
}

// normSmall reduces n/d (d > 0, both within int64 with no overflow pending)
// to lowest terms.
func normSmall(n, d int64) Rat {
	if n == 0 {
		return Rat{}
	}
	a := n
	if a < 0 {
		a = -a
	}
	if g := gcd64(a, d); g > 1 {
		n /= g
		d /= g
	}
	return Rat{num: n, den: d}
}

func small(v int64) bool { return v > -fastLimit && v < fastLimit }

// Add returns r + o.
func (r Rat) Add(o Rat) Rat {
	if !r.isBig() && !o.isBig() {
		a, b := r.parts()
		c, d := o.parts()
		if small(a) && small(b) && small(c) && small(d) {
			return addSmall(a, b, c, d)
		}
	}
	return fromBig(new(big.Rat).Add(r.toBig(), o.toBig()))
}

// Sub returns r - o.
func (r Rat) Sub(o Rat) Rat {
	if !r.isBig() && !o.isBig() {
		a, b := r.parts()
		c, d := o.parts()
		if small(a) && small(b) && small(c) && small(d) {
			return addSmall(a, b, -c, d)
		}
	}
	return fromBig(new(big.Rat).Sub(r.toBig(), o.toBig()))
}

// addSmall adds a/b + c/d, both in lowest terms with 0 < b, d < 2^30 and
// |a|, |c| < 2^30, so no intermediate overflows int64. It follows Knuth
// (TAOCP 4.5.1): with g = gcd(b, d), the only factor the wide sum can share
// with the denominator divides g — so when g == 1 (coprime denominators,
// and in particular every integer operand) the sum is already in lowest
// terms and no gcd of the wide products is computed at all. This is the
// engine's hottest arithmetic, called once or more per simulated event.
func addSmall(a, b, c, d int64) Rat {
	g := gcd64(b, d)
	if g == 1 {
		n := a*d + c*b
		if n == 0 {
			return Rat{}
		}
		return Rat{num: n, den: b * d}
	}
	// b = g·b', d = g·d' with gcd(b', d') = 1: the sum is t/(b'·d'·g) with
	// t coprime to b' and d', so only g2 = gcd(|t|, g) remains to cancel.
	dg := d / g
	t := a*dg + c*(b/g)
	if t == 0 {
		return Rat{}
	}
	at := t
	if at < 0 {
		at = -at
	}
	g2 := gcd64(at, g)
	return Rat{num: t / g2, den: (b / g2) * dg}
}

// Mul returns r * o.
func (r Rat) Mul(o Rat) Rat {
	if !r.isBig() && !o.isBig() {
		a, b := r.parts()
		c, d := o.parts()
		// Cross-reduce first so products of already-reduced operands stay
		// small in the common case.
		aa, cc := a, c
		if aa < 0 {
			aa = -aa
		}
		if cc < 0 {
			cc = -cc
		}
		if g := gcd64(aa, d); g > 1 {
			a /= g
			d /= g
		}
		if g := gcd64(cc, b); g > 1 {
			c /= g
			b /= g
		}
		if small(a) && small(b) && small(c) && small(d) {
			// After cross-reduction a⊥d and c⊥b (and a⊥b, c⊥d as reduced
			// inputs), so a·c / (b·d) is already in lowest terms.
			n := a * c
			if n == 0 {
				return Rat{}
			}
			return Rat{num: n, den: b * d}
		}
	}
	return fromBig(new(big.Rat).Mul(r.toBig(), o.toBig()))
}

// Div returns r / o. Division by zero is a programming error and panics,
// matching math/big.Rat semantics.
func (r Rat) Div(o Rat) Rat {
	return r.Mul(o.Inv())
}

// Inv returns 1/r. It panics when r is zero, matching math/big.Rat semantics.
func (r Rat) Inv() Rat {
	if r.IsZero() {
		panic("rat: division by zero")
	}
	if !r.isBig() {
		n, d := r.parts()
		if n < 0 {
			if n == minInt64 {
				return fromBig(new(big.Rat).Inv(r.toBig()))
			}
			return Rat{num: -d, den: -n}
		}
		return Rat{num: d, den: n}
	}
	return fromBig(new(big.Rat).Inv(r.toBig()))
}

// Neg returns -r.
func (r Rat) Neg() Rat {
	if !r.isBig() {
		n, d := r.parts()
		if n == 0 {
			return Rat{}
		}
		if n == minInt64 {
			return fromBig(new(big.Rat).Neg(r.toBig()))
		}
		return Rat{num: -n, den: d}
	}
	return fromBig(new(big.Rat).Neg(r.toBig()))
}

// Abs returns |r|.
func (r Rat) Abs() Rat {
	if r.Sign() < 0 {
		return r.Neg()
	}
	return r
}

// Sign returns -1, 0, or +1 according to the sign of r.
func (r Rat) Sign() int {
	if r.isBig() {
		return r.b.Sign()
	}
	switch {
	case r.num > 0:
		return 1
	case r.num < 0:
		return -1
	default:
		return 0
	}
}

// Cmp compares r and o, returning -1, 0, or +1.
func (r Rat) Cmp(o Rat) int {
	if !r.isBig() && !o.isBig() {
		a, b := r.parts()
		c, d := o.parts()
		return cmpCross(a, b, c, d)
	}
	return r.toBig().Cmp(o.toBig())
}

// cmpCross compares a/b with c/d for b, d > 0 using 128-bit intermediates.
func cmpCross(a, b, c, d int64) int {
	// Compare a*d with c*b.
	sa, sc := sign64(a), sign64(c)
	if sa != sc {
		if sa < sc {
			return -1
		}
		return 1
	}
	if sa == 0 {
		return 0
	}
	ad := mag128(a, d)
	cb := mag128(c, b)
	cmp := ad.cmp(cb)
	if sa < 0 {
		return -cmp
	}
	return cmp
}

func sign64(v int64) int {
	switch {
	case v > 0:
		return 1
	case v < 0:
		return -1
	default:
		return 0
	}
}

type u128 struct{ hi, lo uint64 }

// mag128 returns |x|*|y| as an unsigned 128-bit value.
func mag128(x, y int64) u128 {
	ux := uint64(x)
	if x < 0 {
		ux = -uint64(x)
	}
	uy := uint64(y)
	if y < 0 {
		uy = -uint64(y)
	}
	hi, lo := bits.Mul64(ux, uy)
	return u128{hi: hi, lo: lo}
}

func (u u128) cmp(v u128) int {
	switch {
	case u.hi != v.hi:
		if u.hi < v.hi {
			return -1
		}
		return 1
	case u.lo != v.lo:
		if u.lo < v.lo {
			return -1
		}
		return 1
	default:
		return 0
	}
}

// Equal reports whether r == o.
func (r Rat) Equal(o Rat) bool { return r.Cmp(o) == 0 }

// Less reports whether r < o.
func (r Rat) Less(o Rat) bool { return r.Cmp(o) < 0 }

// LessEq reports whether r <= o.
func (r Rat) LessEq(o Rat) bool { return r.Cmp(o) <= 0 }

// Greater reports whether r > o.
func (r Rat) Greater(o Rat) bool { return r.Cmp(o) > 0 }

// GreaterEq reports whether r >= o.
func (r Rat) GreaterEq(o Rat) bool { return r.Cmp(o) >= 0 }

// IsZero reports whether r == 0.
func (r Rat) IsZero() bool { return r.Sign() == 0 }

// IsInt reports whether r is an integer.
func (r Rat) IsInt() bool {
	if r.isBig() {
		return r.b.IsInt()
	}
	_, d := r.parts()
	return d == 1
}

// Min returns the smaller of r and o.
func Min(r, o Rat) Rat {
	if r.Cmp(o) <= 0 {
		return r
	}
	return o
}

// Max returns the larger of r and o.
func Max(r, o Rat) Rat {
	if r.Cmp(o) >= 0 {
		return r
	}
	return o
}

// Floor returns the largest integer <= r.
func (r Rat) Floor() int64 {
	if r.isBig() {
		q := new(big.Int).Quo(r.b.Num(), r.b.Denom())
		if r.b.Sign() < 0 && !r.b.IsInt() {
			q.Sub(q, big.NewInt(1))
		}
		return q.Int64()
	}
	n, d := r.parts()
	q := n / d
	if n%d != 0 && n < 0 {
		q--
	}
	return q
}

// Ceil returns the smallest integer >= r.
func (r Rat) Ceil() int64 {
	f := r.Floor()
	if r.Equal(FromInt(f)) {
		return f
	}
	return f + 1
}

// Float64 returns the nearest float64 value (for reporting only; never feed
// the result back into time arithmetic).
func (r Rat) Float64() float64 {
	if !r.isBig() {
		n, d := r.parts()
		return float64(n) / float64(d)
	}
	f, _ := r.b.Float64()
	return f
}

// Num returns the normalized numerator and whether it fits in int64.
func (r Rat) Num() (int64, bool) {
	if r.isBig() {
		if r.b.Num().IsInt64() {
			return r.b.Num().Int64(), true
		}
		return 0, false
	}
	n, _ := r.parts()
	return n, true
}

// Den returns the normalized denominator (always positive) and whether it
// fits in int64.
func (r Rat) Den() (int64, bool) {
	if r.isBig() {
		if r.b.Denom().IsInt64() {
			return r.b.Denom().Int64(), true
		}
		return 0, false
	}
	_, d := r.parts()
	return d, true
}

// String renders r as "n" or "n/d". It is on the simulator's hot path
// (message payload canonicalization), hence strconv rather than fmt.
func (r Rat) String() string {
	if r.isBig() {
		if r.b.IsInt() {
			return r.b.Num().String()
		}
		return r.b.RatString()
	}
	n, d := r.parts()
	if d == 1 {
		return strconv.FormatInt(n, 10)
	}
	var buf [41]byte // len("-9223372036854775808/9223372036854775807")
	out := strconv.AppendInt(buf[:0], n, 10)
	out = append(out, '/')
	out = strconv.AppendInt(out, d, 10)
	return string(out)
}

// Key returns a canonical string usable as a map key. Rat itself must not be
// used as a map key because the big fallback makes == identity-based.
func (r Rat) Key() string { return r.String() }

// MarshalText implements encoding.TextMarshaler ("n" or "n/d"), making Rat
// usable in JSON maps and config files.
func (r Rat) MarshalText() ([]byte, error) { return []byte(r.String()), nil }

// UnmarshalText implements encoding.TextUnmarshaler, accepting the syntaxes
// Parse accepts.
func (r *Rat) UnmarshalText(text []byte) error {
	v, err := Parse(string(text))
	if err != nil {
		return err
	}
	*r = v
	return nil
}
