package rat

import (
	"math/big"
	"testing"
)

// FuzzArith checks the fast small-operand paths of Add, Sub, and Mul against
// math/big on arbitrary fractions, including results in lowest terms (the
// Knuth-style reduced addition and the cross-reduced multiplication skip the
// final gcd on a structural argument; this is the executable version of that
// argument).
func FuzzArith(f *testing.F) {
	f.Add(int64(1), int64(2), int64(1), int64(3))
	f.Add(int64(-7), int64(12), int64(5), int64(18))
	f.Add(int64(0), int64(1), int64(-4), int64(6))
	f.Add(int64(1)<<29, int64(3), int64(-1)<<29, int64(9))
	f.Add(int64(6), int64(4), int64(10), int64(15))
	f.Fuzz(func(t *testing.T, a, b, c, d int64) {
		if b == 0 || d == 0 {
			return
		}
		x, err := FromFrac(a, b)
		if err != nil {
			return
		}
		y, err := FromFrac(c, d)
		if err != nil {
			return
		}
		bx, by := x.toBig(), y.toBig()
		check := func(opName string, got Rat, want *big.Rat) {
			t.Helper()
			if got.toBig().Cmp(want) != 0 {
				t.Fatalf("(%s) %s (%s) = %s, big.Rat = %s", x, opName, y, got, want.RatString())
			}
			if !got.isBig() {
				n, dd := got.parts()
				if dd <= 0 {
					t.Fatalf("(%s) %s (%s) = %d/%d: non-positive denominator", x, opName, y, n, dd)
				}
				an := n
				if an < 0 {
					an = -an
				}
				if n != 0 && gcd64(an, dd) != 1 {
					t.Fatalf("(%s) %s (%s) = %d/%d: not in lowest terms", x, opName, y, n, dd)
				}
			}
		}
		check("+", x.Add(y), new(big.Rat).Add(bx, by))
		check("-", x.Sub(y), new(big.Rat).Sub(bx, by))
		check("*", x.Mul(y), new(big.Rat).Mul(bx, by))
	})
}

// FuzzParse checks that any string Parse accepts round-trips through String
// and agrees with math/big.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{"0", "1", "-1", "3/4", "-3/4", "1.25", "1e3",
		"9223372036854775807", "-9223372036854775808/3",
		"123456789123456789123456789/987654321987654321"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		r, err := Parse(s)
		if err != nil {
			return // rejected input: nothing to check
		}
		want, ok := new(big.Rat).SetString(s)
		if !ok {
			t.Fatalf("Parse accepted %q but big.Rat rejects it", s)
		}
		if r.toBig().Cmp(want) != 0 {
			t.Fatalf("Parse(%q) = %s, big.Rat = %s", s, r, want.RatString())
		}
		back, err := Parse(r.String())
		if err != nil || !back.Equal(r) {
			t.Fatalf("String round trip failed for %q → %s", s, r)
		}
	})
}
