package rat

import (
	"math/big"
	"testing"
)

// FuzzParse checks that any string Parse accepts round-trips through String
// and agrees with math/big.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{"0", "1", "-1", "3/4", "-3/4", "1.25", "1e3",
		"9223372036854775807", "-9223372036854775808/3",
		"123456789123456789123456789/987654321987654321"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		r, err := Parse(s)
		if err != nil {
			return // rejected input: nothing to check
		}
		want, ok := new(big.Rat).SetString(s)
		if !ok {
			t.Fatalf("Parse accepted %q but big.Rat rejects it", s)
		}
		if r.toBig().Cmp(want) != 0 {
			t.Fatalf("Parse(%q) = %s, big.Rat = %s", s, r, want.RatString())
		}
		back, err := Parse(r.String())
		if err != nil || !back.Equal(r) {
			t.Fatalf("String round trip failed for %q → %s", s, r)
		}
	})
}
