package rat

import (
	"encoding/json"
	"math"
	"math/big"
	"testing"
	"testing/quick"
)

func TestFromInt(t *testing.T) {
	tests := []struct {
		in   int64
		want string
	}{
		{0, "0"},
		{1, "1"},
		{-7, "-7"},
		{math.MaxInt64, "9223372036854775807"},
		{math.MinInt64, "-9223372036854775808"},
	}
	for _, tt := range tests {
		if got := FromInt(tt.in).String(); got != tt.want {
			t.Errorf("FromInt(%d) = %s, want %s", tt.in, got, tt.want)
		}
	}
}

func TestFromFrac(t *testing.T) {
	tests := []struct {
		n, d    int64
		want    string
		wantErr bool
	}{
		{1, 2, "1/2", false},
		{2, 4, "1/2", false},
		{-2, 4, "-1/2", false},
		{2, -4, "-1/2", false},
		{-2, -4, "1/2", false},
		{0, 5, "0", false},
		{7, 1, "7", false},
		{1, 0, "", true},
		{math.MinInt64, 2, "-4611686018427387904", false},
		{1, math.MinInt64, "-1/9223372036854775808", false},
	}
	for _, tt := range tests {
		got, err := FromFrac(tt.n, tt.d)
		if (err != nil) != tt.wantErr {
			t.Errorf("FromFrac(%d,%d) err = %v, wantErr %v", tt.n, tt.d, err, tt.wantErr)
			continue
		}
		if err == nil && got.String() != tt.want {
			t.Errorf("FromFrac(%d,%d) = %s, want %s", tt.n, tt.d, got.String(), tt.want)
		}
	}
}

func TestParse(t *testing.T) {
	tests := []struct {
		in      string
		want    string
		wantErr bool
	}{
		{"3/4", "3/4", false},
		{"-3/4", "-3/4", false},
		{"10", "10", false},
		{"1.25", "5/4", false},
		{"0.5", "1/2", false},
		{"", "", true},
		{"x", "", true},
	}
	for _, tt := range tests {
		got, err := Parse(tt.in)
		if (err != nil) != tt.wantErr {
			t.Errorf("Parse(%q) err = %v, wantErr %v", tt.in, err, tt.wantErr)
			continue
		}
		if err == nil && got.String() != tt.want {
			t.Errorf("Parse(%q) = %s, want %s", tt.in, got.String(), tt.want)
		}
	}
}

func TestZeroValue(t *testing.T) {
	var z Rat
	if !z.IsZero() {
		t.Error("zero value is not zero")
	}
	if got := z.Add(FromInt(3)); !got.Equal(FromInt(3)) {
		t.Errorf("0 + 3 = %s", got)
	}
	if got := z.Mul(FromInt(3)); !got.IsZero() {
		t.Errorf("0 * 3 = %s", got)
	}
	if z.String() != "0" {
		t.Errorf("zero String = %q", z.String())
	}
	if z.Sign() != 0 {
		t.Errorf("zero Sign = %d", z.Sign())
	}
}

func TestArithmeticBasics(t *testing.T) {
	half := MustFrac(1, 2)
	third := MustFrac(1, 3)
	tests := []struct {
		name string
		got  Rat
		want string
	}{
		{"half+third", half.Add(third), "5/6"},
		{"half-third", half.Sub(third), "1/6"},
		{"half*third", half.Mul(third), "1/6"},
		{"half/third", half.Div(third), "3/2"},
		{"neg", half.Neg(), "-1/2"},
		{"abs", half.Neg().Abs(), "1/2"},
		{"inv", MustFrac(-2, 3).Inv(), "-3/2"},
	}
	for _, tt := range tests {
		if tt.got.String() != tt.want {
			t.Errorf("%s = %s, want %s", tt.name, tt.got, tt.want)
		}
	}
}

func TestInvZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Inv of zero did not panic")
		}
	}()
	_ = Rat{}.Inv()
}

func TestBigFallbackAndDemotion(t *testing.T) {
	// Exceed the fast path, then come back.
	huge := FromInt(1 << 40)
	x := huge.Mul(huge) // 2^80, must go big
	if !x.isBig() {
		t.Fatalf("2^80 should use the big representation")
	}
	back := x.Div(huge).Div(huge)
	if !back.Equal(FromInt(1)) {
		t.Errorf("2^80 / 2^40 / 2^40 = %s, want 1", back)
	}
	if back.isBig() {
		t.Errorf("result of demotion should be small")
	}
}

func TestCmpAcrossRepresentations(t *testing.T) {
	big1 := FromInt(1 << 40).Mul(FromInt(1 << 40)) // 2^80
	small1 := FromInt(5)
	if big1.Cmp(small1) != 1 {
		t.Error("2^80 should compare greater than 5")
	}
	if small1.Cmp(big1) != -1 {
		t.Error("5 should compare less than 2^80")
	}
	if big1.Cmp(big1.Add(Rat{})) != 0 {
		t.Error("2^80 should equal itself")
	}
}

func TestFloorCeil(t *testing.T) {
	tests := []struct {
		in         Rat
		floor, cel int64
	}{
		{MustFrac(7, 2), 3, 4},
		{MustFrac(-7, 2), -4, -3},
		{FromInt(5), 5, 5},
		{FromInt(-5), -5, -5},
		{MustFrac(1, 3), 0, 1},
		{MustFrac(-1, 3), -1, 0},
		{Rat{}, 0, 0},
	}
	for _, tt := range tests {
		if got := tt.in.Floor(); got != tt.floor {
			t.Errorf("Floor(%s) = %d, want %d", tt.in, got, tt.floor)
		}
		if got := tt.in.Ceil(); got != tt.cel {
			t.Errorf("Ceil(%s) = %d, want %d", tt.in, got, tt.cel)
		}
	}
}

func TestMinMax(t *testing.T) {
	a, b := MustFrac(1, 3), MustFrac(1, 2)
	if !Min(a, b).Equal(a) || !Min(b, a).Equal(a) {
		t.Error("Min wrong")
	}
	if !Max(a, b).Equal(b) || !Max(b, a).Equal(b) {
		t.Error("Max wrong")
	}
}

func TestIsInt(t *testing.T) {
	if !FromInt(3).IsInt() {
		t.Error("3 should be an integer")
	}
	if MustFrac(1, 2).IsInt() {
		t.Error("1/2 should not be an integer")
	}
	if !(Rat{}).IsInt() {
		t.Error("0 should be an integer")
	}
}

func TestFloat64(t *testing.T) {
	if got := MustFrac(1, 2).Float64(); got != 0.5 {
		t.Errorf("Float64(1/2) = %v", got)
	}
	if got := FromInt(-3).Float64(); got != -3 {
		t.Errorf("Float64(-3) = %v", got)
	}
}

func TestNumDen(t *testing.T) {
	r := MustFrac(-6, 8)
	n, ok := r.Num()
	if !ok || n != -3 {
		t.Errorf("Num = %d,%v want -3,true", n, ok)
	}
	d, ok := r.Den()
	if !ok || d != 4 {
		t.Errorf("Den = %d,%v want 4,true", d, ok)
	}
}

// ---- property tests against math/big reference ----

// qr is a quick-check generatable rational.
type qr struct {
	N int64
	D int64
}

func (q qr) rat() Rat {
	d := q.D
	if d == 0 {
		d = 1
	}
	r, err := FromFrac(q.N, d)
	if err != nil {
		panic(err)
	}
	return r
}

func (q qr) big() *big.Rat {
	d := q.D
	if d == 0 {
		d = 1
	}
	return new(big.Rat).SetFrac(big.NewInt(q.N), big.NewInt(d))
}

func quickCfg() *quick.Config {
	return &quick.Config{MaxCount: 2000}
}

func TestQuickAddMatchesBig(t *testing.T) {
	f := func(x, y qr) bool {
		got := x.rat().Add(y.rat())
		want := new(big.Rat).Add(x.big(), y.big())
		return got.toBig().Cmp(want) == 0
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestQuickSubMatchesBig(t *testing.T) {
	f := func(x, y qr) bool {
		got := x.rat().Sub(y.rat())
		want := new(big.Rat).Sub(x.big(), y.big())
		return got.toBig().Cmp(want) == 0
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestQuickMulMatchesBig(t *testing.T) {
	f := func(x, y qr) bool {
		got := x.rat().Mul(y.rat())
		want := new(big.Rat).Mul(x.big(), y.big())
		return got.toBig().Cmp(want) == 0
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestQuickDivMatchesBig(t *testing.T) {
	f := func(x, y qr) bool {
		if y.rat().IsZero() {
			return true
		}
		got := x.rat().Div(y.rat())
		want := new(big.Rat).Quo(x.big(), y.big())
		return got.toBig().Cmp(want) == 0
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestQuickCmpMatchesBig(t *testing.T) {
	f := func(x, y qr) bool {
		return x.rat().Cmp(y.rat()) == x.big().Cmp(y.big())
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestQuickNegAbsInvolution(t *testing.T) {
	f := func(x qr) bool {
		r := x.rat()
		if !r.Neg().Neg().Equal(r) {
			return false
		}
		if r.Abs().Sign() < 0 {
			return false
		}
		return r.Abs().Equal(r) || r.Abs().Equal(r.Neg())
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestQuickAddAssociativeCommutative(t *testing.T) {
	f := func(x, y, z qr) bool {
		a, b, c := x.rat(), y.rat(), z.rat()
		if !a.Add(b).Equal(b.Add(a)) {
			return false
		}
		return a.Add(b).Add(c).Equal(a.Add(b.Add(c)))
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestQuickMulDistributesOverAdd(t *testing.T) {
	f := func(x, y, z qr) bool {
		a, b, c := x.rat(), y.rat(), z.rat()
		return a.Mul(b.Add(c)).Equal(a.Mul(b).Add(a.Mul(c)))
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestQuickFloorMatchesBig(t *testing.T) {
	f := func(x qr) bool {
		r := x.rat()
		fl := r.Floor()
		// fl <= r < fl+1
		return FromInt(fl).LessEq(r) && r.Less(FromInt(fl).Add(FromInt(1)))
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestQuickStringRoundTrip(t *testing.T) {
	f := func(x qr) bool {
		r := x.rat()
		back, err := Parse(r.String())
		return err == nil && back.Equal(r)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func BenchmarkAddFastPath(b *testing.B) {
	x, y := MustFrac(355, 113), MustFrac(22, 7)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = x.Add(y)
	}
}

func BenchmarkAddBigPath(b *testing.B) {
	x := FromInt(1 << 40).Mul(FromInt(1 << 40))
	y := MustFrac(22, 7)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = x.Add(y)
	}
}

func BenchmarkCmpFastPath(b *testing.B) {
	x, y := MustFrac(355, 113), MustFrac(22, 7)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = x.Cmp(y)
	}
}

func TestTextMarshaling(t *testing.T) {
	type payload struct {
		When Rat `json:"when"`
	}
	in := payload{When: MustFrac(7, 3)}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != `{"when":"7/3"}` {
		t.Errorf("marshal = %s", data)
	}
	var out payload
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if !out.When.Equal(in.When) {
		t.Errorf("round trip = %s", out.When)
	}
	if err := json.Unmarshal([]byte(`{"when":"zzz"}`), &out); err == nil {
		t.Error("bad text should fail to unmarshal")
	}
}

func TestQuickTextRoundTrip(t *testing.T) {
	f := func(x qr) bool {
		r := x.rat()
		data, err := r.MarshalText()
		if err != nil {
			return false
		}
		var back Rat
		if err := back.UnmarshalText(data); err != nil {
			return false
		}
		return back.Equal(r)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}
