package lowerbound

import (
	"fmt"
	"strings"

	"gcs/internal/rat"
)

// RenderFigure1 draws the paper's Figure 1 — the hardware clock rates of
// nodes 1..D in execution β of the Add Skew lemma — as ASCII art. Thick
// segments (█) mark the interval during which a node runs at rate γ; thin
// segments (─) mark rate 1. Node k runs at γ for τ/γ time longer than node
// k+1 for k = i..j−1.
func RenderFigure1(res *AddSkewResult, s rat.Rat, width int) string {
	if width < 20 {
		width = 20
	}
	var b strings.Builder
	tPrime := res.TPrime
	span := tPrime.Sub(s)
	if span.Sign() <= 0 {
		return "(empty window)\n"
	}
	fmt.Fprintf(&b, "hardware clock rates in β (window [%s, %s], γ-speed shown thick)\n", s, tPrime)
	fmt.Fprintf(&b, "%6s  %s\n", "node", "time →")
	for k, tk := range res.Tk {
		// Fraction of the window before the node speeds up.
		frac := tk.Sub(s).Div(span).Float64()
		if frac < 0 {
			frac = 0
		}
		if frac > 1 {
			frac = 1
		}
		plain := int(frac * float64(width))
		if plain > width {
			plain = width
		}
		fmt.Fprintf(&b, "%6d  %s%s  Tk=%s\n", k,
			strings.Repeat("─", plain), strings.Repeat("█", width-plain), tk)
	}
	return b.String()
}

// RenderRounds formats the per-round table of a MainTheoremResult, matching
// the paper's Δ_k ≥ k/24·n_k milestones.
func RenderRounds(res *MainTheoremResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "main theorem construction on %d nodes (diameter %d)\n", res.D, res.D-1)
	fmt.Fprintf(&b, "%3s %6s %11s %12s %12s %10s %12s %10s %6s\n",
		"k", "n_k", "pair", "Δ_k", "gain", "loss", "Δ_{k+1}", "target", "met")
	for _, r := range res.Rounds {
		fmt.Fprintf(&b, "%3d %6d %11s %12s %12s %10s %12s %10s %6v\n",
			r.K, r.NK, fmt.Sprintf("(%d,%d)", r.IK, r.JK),
			trimRat(r.SkewStart), trimRat(r.AddSkewGain), trimRat(r.ExtensionLoss),
			trimRat(r.NextSkew), trimRat(r.Target), r.TargetMet)
	}
	fmt.Fprintf(&b, "final adjacent pair (%d,%d): skew %s (paper target after %d rounds: %s)\n",
		res.AdjacentI, res.AdjacentI+1, trimRat(res.AdjacentSkew), len(res.Rounds), trimRat(res.PaperTarget))
	return b.String()
}

// trimRat renders a rational compactly: exact when short, decimal otherwise.
func trimRat(r rat.Rat) string {
	s := r.String()
	if len(s) <= 10 {
		return s
	}
	return fmt.Sprintf("%.4f", r.Float64())
}
