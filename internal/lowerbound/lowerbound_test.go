package lowerbound

import (
	"strings"
	"testing"

	"gcs/internal/algorithms"
	"gcs/internal/clock"
	"gcs/internal/network"
	"gcs/internal/rat"
	"gcs/internal/sim"
	"gcs/internal/trace"
)

// lineAlpha builds a clean rate-1, midpoint-delay execution on a line, the
// standing precondition environment for the lemmas.
func lineAlpha(t *testing.T, proto sim.Protocol, n int, dur rat.Rat, p Params) (sim.Config, *trace.Execution) {
	t.Helper()
	net, err := network.Line(n)
	if err != nil {
		t.Fatal(err)
	}
	scheds := make([]*clock.Schedule, n)
	for i := range scheds {
		scheds[i] = clock.Constant(ri(1))
	}
	cfg := sim.Config{
		Net:       net,
		Schedules: scheds,
		Adversary: sim.Midpoint(),
		Protocol:  proto,
		Duration:  dur,
		Rho:       p.Rho,
	}
	exec, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return cfg, exec
}

func TestAddSkewOnLine(t *testing.T) {
	p := DefaultParams()
	for _, proto := range algorithms.All() {
		proto := proto
		t.Run(proto.Name(), func(t *testing.T) {
			n := 9
			span := int64(n - 1)
			dur := p.Tau().Mul(ri(span))
			cfg, alpha := lineAlpha(t, proto, n, dur, p)
			positions := make([]rat.Rat, n)
			for k := range positions {
				positions[k] = ri(int64(k))
			}
			res, err := AddSkew(AddSkewInput{
				Cfg: cfg, Alpha: alpha, Positions: positions,
				I: 0, J: n - 1, S: rat.Rat{}, Params: p,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Gain.Less(res.GuaranteedGain) {
				t.Errorf("gain %s < guaranteed %s", res.Gain, res.GuaranteedGain)
			}
			// Gain fraction is 1/10 at ρ=1/2, span 8 → guaranteed 4/5.
			if !res.GuaranteedGain.Equal(rf(4, 5)) {
				t.Errorf("guaranteed gain = %s, want 4/5", res.GuaranteedGain)
			}
			// Interior nodes' speed-up times are strictly between S and T'.
			for k := 1; k < n-1; k++ {
				if !res.Tk[k].Greater(res.Tk[0]) || !res.Tk[k].Less(res.Tk[n-1]) {
					t.Errorf("Tk[%d]=%s not interior", k, res.Tk[k])
				}
				// Figure 1: node k runs at γ for τ/γ longer than node k+1.
				gap := res.Tk[k+1].Sub(res.Tk[k])
				if !gap.Equal(p.Tau().Div(p.Gamma())) {
					t.Errorf("Tk gap at %d = %s, want τ/γ = %s", k, gap, p.Tau().Div(p.Gamma()))
				}
			}
		})
	}
}

func TestAddSkewInteriorPair(t *testing.T) {
	// Apply the lemma to an interior pair (2, 6) of a 9-node line.
	p := DefaultParams()
	proto := algorithms.MaxGossip(ri(1))
	n := 9
	span := int64(4)
	// S > 0: run longer than the window.
	warmup := ri(6)
	dur := warmup.Add(p.Tau().Mul(ri(span)))
	cfg, alpha := lineAlpha(t, proto, n, dur, p)
	positions := make([]rat.Rat, n)
	for k := range positions {
		positions[k] = ri(int64(k))
	}
	res, err := AddSkew(AddSkewInput{
		Cfg: cfg, Alpha: alpha, Positions: positions,
		I: 2, J: 6, S: warmup, Params: p,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Nodes left of I (0,1,2) all share Tk = S; right of J share Tk = T'.
	for k := 0; k <= 2; k++ {
		if !res.Tk[k].Equal(warmup) {
			t.Errorf("Tk[%d] = %s, want S = %s", k, res.Tk[k], warmup)
		}
	}
	for k := 6; k < n; k++ {
		if !res.Tk[k].Equal(res.TPrime) {
			t.Errorf("Tk[%d] = %s, want T' = %s", k, res.Tk[k], res.TPrime)
		}
	}
	if res.Gain.Less(res.GuaranteedGain) {
		t.Errorf("gain %s < guaranteed %s", res.Gain, res.GuaranteedGain)
	}
}

func TestAddSkewPreconditionViolations(t *testing.T) {
	p := DefaultParams()
	proto := algorithms.Null()
	n := 3
	positions := []rat.Rat{ri(0), ri(1), ri(2)}

	// Wrong adversary (delays not d/2) must be rejected.
	net, _ := network.Line(n)
	scheds := []*clock.Schedule{clock.Constant(ri(1)), clock.Constant(ri(1)), clock.Constant(ri(1))}
	cfg := sim.Config{
		Net: net, Schedules: scheds,
		Adversary: sim.FractionAdversary{Frac: rf(1, 4)},
		Protocol:  algorithms.MaxGossip(ri(1)), Duration: p.Tau().Mul(ri(2)), Rho: p.Rho,
	}
	alpha, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := AddSkew(AddSkewInput{Cfg: cfg, Alpha: alpha, Positions: positions, I: 0, J: 2, S: rat.Rat{}, Params: p}); err == nil {
		t.Error("quarter-delay α should fail the delay precondition")
	}

	// Wrong rates (not 1 in the window) must be rejected.
	cfg2 := cfg
	cfg2.Adversary = sim.Midpoint()
	cfg2.Schedules = []*clock.Schedule{clock.Constant(rf(9, 8)), clock.Constant(ri(1)), clock.Constant(ri(1))}
	alpha2, err := sim.Run(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := AddSkew(AddSkewInput{Cfg: cfg2, Alpha: alpha2, Positions: positions, I: 0, J: 2, S: rat.Rat{}, Params: p}); err == nil {
		t.Error("fast-clock α should fail the rate precondition")
	}

	// Mismatched duration.
	cfg3 := cfg
	cfg3.Adversary = sim.Midpoint()
	alpha3, err := sim.Run(cfg3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := AddSkew(AddSkewInput{Cfg: cfg3, Alpha: alpha3, Positions: positions, I: 0, J: 2, S: ri(1), Params: p}); err == nil {
		t.Error("S inconsistent with duration should be rejected")
	}
	_ = proto
}

func TestBoundedIncreaseGradientVsMax(t *testing.T) {
	p := DefaultParams()
	n := 7
	dur := ri(20)
	protos := []sim.Protocol{
		algorithms.MaxGossip(ri(1)),
		algorithms.Gradient(algorithms.DefaultGradientParams()),
	}
	results := map[string]*BoundedIncreaseResult{}
	for _, proto := range protos {
		cfg, alpha := lineAlpha(t, proto, n, dur, p)
		res, err := BoundedIncrease(BoundedIncreaseInput{Cfg: cfg, Alpha: alpha, I: 3, Params: p})
		if err != nil {
			t.Fatalf("%s: %v", proto.Name(), err)
		}
		results[proto.Name()] = res
		// Basic sanity: increase is at least the validity rate (clock must
		// advance at >= 1/2 per unit).
		if res.MaxIncrease.Less(rf(1, 2)) {
			t.Errorf("%s: max increase %s < 1/2", proto.Name(), res.MaxIncrease)
		}
	}
	// The gradient algorithm's structural increase cap is FastMult·(1+ρ/2)
	// on rate-1 windows here; verify it is respected.
	grad := results["gradient"]
	capVal := algorithms.DefaultGradientParams().FastMult.Mul(rf(5, 4))
	if grad.MaxIncrease.Greater(capVal) {
		t.Errorf("gradient increase %s exceeds structural cap %s", grad.MaxIncrease, capVal)
	}
}

func TestBoundedIncreasePreconditions(t *testing.T) {
	p := DefaultParams()
	// Too short a run.
	cfg, alpha := lineAlpha(t, algorithms.Null(), 3, ri(2), p)
	if _, err := BoundedIncrease(BoundedIncreaseInput{Cfg: cfg, Alpha: alpha, I: 1, Params: p}); err == nil {
		t.Error("duration 2 < τ + 1/2 should be rejected at ρ=1/2? τ=2, τ+1/2=5/2 > 2")
	}
	// Rates outside [1, 1+ρ/2].
	net, _ := network.Line(3)
	scheds := []*clock.Schedule{clock.Constant(rf(3, 4)), clock.Constant(ri(1)), clock.Constant(ri(1))}
	cfg2 := sim.Config{Net: net, Schedules: scheds, Adversary: sim.Midpoint(),
		Protocol: algorithms.Null(), Duration: ri(10), Rho: p.Rho}
	alpha2, err := sim.Run(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BoundedIncrease(BoundedIncreaseInput{Cfg: cfg2, Alpha: alpha2, I: 1, Params: p}); err == nil {
		t.Error("rate 3/4 < 1 should be rejected")
	}
}

func TestMainTheoremSmall(t *testing.T) {
	p := DefaultParams()
	res, err := MainTheorem(MainTheoremInput{
		Protocol: algorithms.MaxGossip(ri(1)),
		Params:   p,
		Branch:   3,
		Rounds:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.D != 10 {
		t.Fatalf("D = %d, want 10", res.D)
	}
	if len(res.Rounds) != 2 {
		t.Fatalf("rounds = %d, want 2", len(res.Rounds))
	}
	// Round 0 works on the full span; round 1 on a third of it.
	if res.Rounds[0].NK != 9 || res.Rounds[1].NK != 3 {
		t.Errorf("round spans = %d, %d; want 9, 3", res.Rounds[0].NK, res.Rounds[1].NK)
	}
	// Every round's Add Skew gain meets the lemma bound n_k/10.
	for _, r := range res.Rounds {
		want := rf(r.NK, 10)
		if r.AddSkewGain.Less(want) {
			t.Errorf("round %d gain %s < %s", r.K, r.AddSkewGain, want)
		}
	}
	// The construction ends with a positive adjacent skew.
	if res.AdjacentSkew.Sign() <= 0 {
		t.Errorf("final adjacent skew %s not positive", res.AdjacentSkew)
	}
	// Rendering works.
	out := RenderRounds(res)
	if !strings.Contains(out, "final adjacent pair") {
		t.Errorf("render missing summary: %s", out)
	}
}

func TestMainTheoremGradientAlgorithm(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	p := DefaultParams()
	res, err := MainTheorem(MainTheoremInput{
		Protocol: algorithms.Gradient(algorithms.DefaultGradientParams()),
		Params:   p,
		Branch:   4,
		Rounds:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.AdjacentSkew.Sign() <= 0 {
		t.Errorf("adjacent skew %s not positive", res.AdjacentSkew)
	}
}

func TestMainTheoremInputValidation(t *testing.T) {
	p := DefaultParams()
	if _, err := MainTheorem(MainTheoremInput{Protocol: algorithms.Null(), Params: p, Branch: 1, Rounds: 1}); err == nil {
		t.Error("branch 1 should be rejected")
	}
	if _, err := MainTheorem(MainTheoremInput{Protocol: algorithms.Null(), Params: p, Branch: 2, Rounds: 0}); err == nil {
		t.Error("rounds 0 should be rejected")
	}
	if _, err := MainTheorem(MainTheoremInput{Protocol: algorithms.Null(), Params: p, Branch: 2, Rounds: 40}); err == nil {
		t.Error("absurd size should be rejected")
	}
}

func TestCounterexampleMaxGossip(t *testing.T) {
	p := DefaultParams()
	dc := ri(16)
	res, err := Counterexample(CounterexampleInput{
		Protocol: algorithms.MaxGossip(ri(1)),
		Dc:       dc,
		SwitchAt: ri(40),
		Duration: ri(48),
		Params:   p,
	})
	if err != nil {
		t.Fatal(err)
	}
	// After the switch, y jumps ~drift·Dc ahead of z at distance 1. Demand
	// at least Dc/8 — an order-of-Dc violation (f(1) cannot be O(1)).
	if res.PeakYZ.Val.Less(dc.Div(ri(8))) {
		t.Errorf("peak y−z skew %s too small (want ≥ %s)", res.PeakYZ.Val, dc.Div(ri(8)))
	}
	// Before the switch the pair was comparatively close.
	if !res.PreSwitchYZ.Val.Less(res.PeakYZ.Val) {
		t.Errorf("pre-switch skew %s not below peak %s", res.PreSwitchYZ.Val, res.PeakYZ.Val)
	}
}

func TestCounterexampleGradientResists(t *testing.T) {
	p := DefaultParams()
	dc := ri(16)
	maxRes, err := Counterexample(CounterexampleInput{
		Protocol: algorithms.MaxGossip(ri(1)),
		Dc:       dc, SwitchAt: ri(40), Duration: ri(48), Params: p,
	})
	if err != nil {
		t.Fatal(err)
	}
	gradRes, err := Counterexample(CounterexampleInput{
		Protocol: algorithms.Gradient(algorithms.DefaultGradientParams()),
		Dc:       dc, SwitchAt: ri(40), Duration: ri(48), Params: p,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The rate-based algorithm cannot jump: its post-switch local skew grows
	// at a bounded rate and stays well under the max algorithm's spike.
	if !gradRes.PeakYZ.Val.Less(maxRes.PeakYZ.Val) {
		t.Errorf("gradient peak %s not below max-gossip peak %s",
			gradRes.PeakYZ.Val, maxRes.PeakYZ.Val)
	}
}

func TestCounterexampleValidation(t *testing.T) {
	p := DefaultParams()
	if _, err := Counterexample(CounterexampleInput{
		Protocol: algorithms.Null(), Dc: rf(1, 2), SwitchAt: ri(1), Duration: ri(2), Params: p,
	}); err == nil {
		t.Error("Dc < 1 should be rejected")
	}
	if _, err := Counterexample(CounterexampleInput{
		Protocol: algorithms.Null(), Dc: ri(2), SwitchAt: ri(5), Duration: ri(3), Params: p,
	}); err == nil {
		t.Error("Duration < SwitchAt should be rejected")
	}
}

func TestRenderFigure1(t *testing.T) {
	p := DefaultParams()
	proto := algorithms.MaxGossip(ri(1))
	n := 5
	dur := p.Tau().Mul(ri(int64(n - 1)))
	cfg, alpha := lineAlpha(t, proto, n, dur, p)
	positions := make([]rat.Rat, n)
	for k := range positions {
		positions[k] = ri(int64(k))
	}
	res, err := AddSkew(AddSkewInput{Cfg: cfg, Alpha: alpha, Positions: positions, I: 0, J: n - 1, S: rat.Rat{}, Params: p})
	if err != nil {
		t.Fatal(err)
	}
	out := RenderFigure1(res, rat.Rat{}, 40)
	if !strings.Contains(out, "█") || !strings.Contains(out, "Tk=") {
		t.Errorf("figure rendering unexpected:\n%s", out)
	}
	lines := strings.Count(out, "\n")
	if lines < n+2 {
		t.Errorf("figure has %d lines, want >= %d", lines, n+2)
	}
}
