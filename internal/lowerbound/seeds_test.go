package lowerbound

import (
	"strings"
	"testing"

	"gcs/internal/algorithms"
	"gcs/internal/core"
	"gcs/internal/engine"
	"gcs/internal/rat"
	"gcs/internal/sim"
)

// TestShiftSeedRealizesBound: the Shift construction's exported seed —
// script plus surgery schedules — must replay to an execution whose skew
// reaches the certified implied bound, which is exactly what the search gets
// when it injects the seed.
func TestShiftSeedRealizesBound(t *testing.T) {
	p := DefaultParams()
	proto := algorithms.Gradient(algorithms.DefaultGradientParams())
	shift, err := Shift(proto, rat.FromInt(2), p)
	if err != nil {
		t.Fatal(err)
	}
	seed, err := shift.Seed()
	if err != nil {
		t.Fatal(err)
	}
	if len(seed.Script) == 0 && len(shift.BetaCfg.Net.Neighbors(0)) > 0 {
		// A protocol that never sends would have an empty script; the
		// gradient protocol sends every period.
		t.Fatal("shift seed exported an empty script")
	}
	if len(seed.Schedules) != 2 {
		t.Fatalf("shift seed has %d schedules, want 2", len(seed.Schedules))
	}
	for i, s := range seed.Schedules {
		if err := s.ValidateDrift(p.Rho); err != nil {
			t.Fatalf("seed schedule %d violates drift: %v", i, err)
		}
	}
	// Replay the seed the way the search evaluates it: scripted delays over
	// a midpoint tail, the seed's schedules, tracked online.
	skew, err := core.NewSkewTracker(shift.BetaCfg.Net, seed.Schedules)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := engine.New(shift.BetaCfg.Net,
		engine.WithProtocol(proto),
		engine.WithAdversary(engine.ScriptedAdversary{Delays: seed.Script, Fallback: engine.Midpoint()}),
		engine.WithSchedules(seed.Schedules),
		engine.WithRho(p.Rho),
		engine.WithObservers(skew),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.RunUntil(shift.BetaCfg.Duration); err != nil {
		t.Fatal(err)
	}
	if got := skew.Global().Skew; got.Less(shift.SkewBeta.Abs()) {
		t.Fatalf("seed replay reaches %s, below the construction's %s", got, shift.SkewBeta.Abs())
	}
}

// TestMainTheoremSeedExports: the iterated construction's final execution
// exports a seed with the composed script and schedules.
func TestMainTheoremSeedExports(t *testing.T) {
	res, err := MainTheorem(MainTheoremInput{
		Protocol: algorithms.MaxGossip(rat.FromInt(1)),
		Params:   DefaultParams(),
		Branch:   2,
		Rounds:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	seed, err := res.Seed()
	if err != nil {
		t.Fatal(err)
	}
	if len(seed.Schedules) != res.D {
		t.Fatalf("theorem seed has %d schedules for %d nodes", len(seed.Schedules), res.D)
	}
	if len(seed.Script) == 0 {
		t.Fatal("theorem seed exported an empty script")
	}
	// The exported script is a copy: mutating an entry must not corrupt the
	// result's own config.
	sa := res.FinalCfg.Adversary.(sim.ScriptedAdversary)
	for k, v := range seed.Script {
		if v.IsZero() {
			continue
		}
		seed.Script[k] = rat.Rat{}
		if !sa.Delays[k].Equal(v) {
			t.Fatalf("mutating the exported script changed the construction's script at %v", k)
		}
		return
	}
	t.Fatal("no nonzero delay in the exported script to exercise the copy check")
}

// TestSeedFromUnscriptedConfig: a config whose adversary is not scripted
// has no seed to export and says so.
func TestSeedFromUnscriptedConfig(t *testing.T) {
	res := &MainTheoremResult{FinalCfg: sim.Config{Adversary: sim.Midpoint()}}
	if _, err := res.Seed(); err == nil || !strings.Contains(err.Error(), "not scripted") {
		t.Fatalf("unscripted seed export: %v", err)
	}
}
