package lowerbound

import (
	"testing"
	"testing/quick"

	"gcs/internal/algorithms"
	"gcs/internal/clock"
	"gcs/internal/network"
	"gcs/internal/rat"
	"gcs/internal/sim"
)

// TestQuickAddSkewRandomized fuzzes the Add Skew lemma over random line
// sizes, interior pairs, warmup lengths, and protocols: the certificate
// (indistinguishability + rate/delay bounds + guaranteed gain) must hold for
// every valid input, and the per-node speed-up times must form the Figure 1
// staircase.
func TestQuickAddSkewRandomized(t *testing.T) {
	p := DefaultParams()
	protos := []sim.Protocol{
		algorithms.Null(),
		algorithms.MaxGossip(ri(1)),
		algorithms.MaxFlood(ri(1)),
		algorithms.BoundedMax(ri(1), ri(1)),
		algorithms.Gradient(algorithms.DefaultGradientParams()),
		algorithms.LLW(algorithms.DefaultLLWParams()),
	}
	f := func(nRaw, iRaw, jRaw, warmRaw, protoRaw uint8) bool {
		n := int(nRaw%7) + 4 // 4..10 nodes
		i := int(iRaw) % (n - 1)
		j := i + 1 + int(jRaw)%(n-1-i)
		warmup := ri(int64(warmRaw % 8))
		proto := protos[int(protoRaw)%len(protos)]

		net, err := network.Line(n)
		if err != nil {
			return false
		}
		scheds := make([]*clock.Schedule, n)
		for k := range scheds {
			scheds[k] = clock.Constant(ri(1))
		}
		span := int64(j - i)
		cfg := sim.Config{
			Net:       net,
			Schedules: scheds,
			Adversary: sim.Midpoint(),
			Protocol:  proto,
			Duration:  warmup.Add(p.Tau().Mul(ri(span))),
			Rho:       p.Rho,
		}
		alpha, err := sim.Run(cfg)
		if err != nil {
			return false
		}
		positions := make([]rat.Rat, n)
		for k := range positions {
			positions[k] = ri(int64(k))
		}
		res, err := AddSkew(AddSkewInput{
			Cfg: cfg, Alpha: alpha, Positions: positions,
			I: i, J: j, S: warmup, Params: p,
		})
		if err != nil {
			t.Logf("n=%d i=%d j=%d warmup=%s proto=%s: %v", n, i, j, warmup, proto.Name(), err)
			return false
		}
		// Figure 1 staircase between i and j.
		step := p.Tau().Div(p.Gamma())
		for k := i; k < j; k++ {
			if !res.Tk[k+1].Sub(res.Tk[k]).Equal(step) {
				return false
			}
		}
		return res.Gain.GreaterEq(res.GuaranteedGain)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickShiftGainExact checks the shift separation formula d/(8+4ρ)·2 on
// random distances: for rate-1 symmetric α the β skew equals the gain
// exactly.
func TestQuickShiftGainExact(t *testing.T) {
	p := DefaultParams()
	f := func(dRaw uint8) bool {
		d := ri(int64(dRaw%20) + 1)
		res, err := Shift(algorithms.MaxGossip(ri(1)), d, p)
		if err != nil {
			return false
		}
		// Symmetric α ⇒ skew(α) = 0 and separation = skew(β).
		if !res.SkewAlpha.IsZero() {
			return false
		}
		return res.Separation.Equal(res.SkewBeta) &&
			res.Separation.GreaterEq(p.GainFraction().Mul(d))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestMainTheoremBranchSweep runs tiny constructions across branch factors:
// milestones must hold regardless of the branch choice.
func TestMainTheoremBranchSweep(t *testing.T) {
	p := DefaultParams()
	for _, branch := range []int64{2, 3, 5, 8} {
		res, err := MainTheorem(MainTheoremInput{
			Protocol: algorithms.MaxGossip(ri(1)),
			Params:   p,
			Branch:   branch,
			Rounds:   2,
		})
		if err != nil {
			t.Fatalf("branch %d: %v", branch, err)
		}
		for _, r := range res.Rounds {
			if !r.TargetMet {
				t.Errorf("branch %d round %d: milestone not met (Δ=%s, target=%s)",
					branch, r.K, r.NextSkew, r.Target)
			}
		}
	}
}
