package lowerbound

import (
	"testing"

	"gcs/internal/algorithms"
	"gcs/internal/rat"
)

func ri(n int64) rat.Rat    { return rat.FromInt(n) }
func rf(n, d int64) rat.Rat { return rat.MustFrac(n, d) }

func TestParams(t *testing.T) {
	p := DefaultParams()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if !p.Tau().Equal(ri(2)) {
		t.Errorf("τ = %s, want 2", p.Tau())
	}
	if !p.Gamma().Equal(rf(10, 9)) {
		t.Errorf("γ = %s, want 10/9", p.Gamma())
	}
	if !p.GainFraction().Equal(rf(1, 10)) {
		t.Errorf("gain fraction = %s, want 1/10", p.GainFraction())
	}
	if !p.RateBandHigh().Equal(rf(5, 4)) {
		t.Errorf("rate band = %s, want 5/4", p.RateBandHigh())
	}
	// γ stays within the band (claim 6.3 viability).
	if p.Gamma().Greater(p.RateBandHigh()) {
		t.Error("γ exceeds 1+ρ/2")
	}
	bad := Params{Rho: ri(1)}
	if err := bad.Validate(); err == nil {
		t.Error("ρ = 1 should be invalid")
	}
}

func TestShiftAcrossProtocols(t *testing.T) {
	p := DefaultParams()
	for _, proto := range algorithms.All() {
		proto := proto
		t.Run(proto.Name(), func(t *testing.T) {
			for _, d := range []rat.Rat{ri(1), ri(2), ri(4)} {
				res, err := Shift(proto, d, p)
				if err != nil {
					t.Fatalf("d=%s: %v", d, err)
				}
				want := p.GainFraction().Mul(d)
				if res.Separation.Less(want) {
					t.Errorf("d=%s: separation %s < guaranteed %s", d, res.Separation, want)
				}
				// The implied worst-case skew is at least half the separation.
				if res.Implied.Mul(ri(2)).Less(want) {
					t.Errorf("d=%s: implied bound %s too small", d, res.Implied)
				}
			}
		})
	}
}

func TestShiftRejectsBadInput(t *testing.T) {
	p := DefaultParams()
	if _, err := Shift(algorithms.Null(), rf(1, 2), p); err == nil {
		t.Error("d < 1 should error")
	}
	if _, err := Shift(algorithms.Null(), ri(1), Params{Rho: ri(0)}); err == nil {
		t.Error("ρ = 0 should error")
	}
}

func TestShiftBetaIsValidExecution(t *testing.T) {
	// The β execution must itself satisfy the model: drift-bounded rates and
	// delays within [0, d] (sim.Run validates both; this test documents it).
	res, err := Shift(algorithms.MaxGossip(ri(1)), ri(4), DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if res.Beta.Duration.GreaterEq(res.Alpha.Duration) {
		t.Errorf("β duration %s should be shorter than α duration %s",
			res.Beta.Duration, res.Alpha.Duration)
	}
	// T' = S + (τ/γ)d = 0 + (2·9/10)·4 = 36/5.
	if !res.Beta.Duration.Equal(rf(36, 5)) {
		t.Errorf("T' = %s, want 36/5", res.Beta.Duration)
	}
}
