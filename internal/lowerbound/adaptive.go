// The §2 counterexample scheduler in general, online form.
//
// The scripted Counterexample fixes the switch time in advance: it knows the
// hardware schedules, computes when the stale view will have drifted far
// enough, and collapses the x→y delay at exactly that real time. The paper's
// adversary, however, is *online*: it watches the execution and reacts
// (Fan & Lynch, PODC 2004, §2 — "the adversary then changes the delay").
// AdaptiveScheduler is that adversary in general form, for any topology and
// any hardware schedules. It holds every message out of a designated fast
// Source at its full delay bound — every node's view of the source is
// maximally stale — and every message out of a designated Front node
// equally stale (fresh news spreads as late as possible), while return
// traffic flows instantly, exactly the scripted §2 delay shape. Meanwhile
// it watches the hardware-clock readings in the event stream it is
// scheduling (via the engine's adversary feedback hooks): the moment an
// event at the front shows the source has run ahead by the release
// threshold, it collapses the Source→Front delay to zero. Front jumps to
// the fresh value while its neighbors are still a full delay behind the
// news — the §2 gradient violation — without the adversary ever having
// been told when the run's clocks would diverge.
package lowerbound

import (
	"fmt"

	"gcs/internal/clock"
	"gcs/internal/engine"
	"gcs/internal/network"
	"gcs/internal/piecewise"
	"gcs/internal/rat"
	"gcs/internal/sim"
	"gcs/internal/trace"
)

// AdaptiveScheduler is an online (adaptive) delay adversary implementing the
// generalized §2 strategy. It is stateful: it implements engine.Observer to
// receive the run it is scheduling, and engine.StatefulAdversary so
// Engine.Fork can clone its state at a fork point — a trunk and its forks
// then trigger independently, each from its own observation stream.
//
// One AdaptiveScheduler instance belongs to one run (or one run tree, via
// cloning). To schedule a second independent run, construct a fresh one or
// clone a pristine instance.
type AdaptiveScheduler struct {
	net       *network.Network
	source    int
	front     int
	threshold rat.Rat

	hw       []rat.Rat // latest observed hardware reading per node
	released bool
	relAt    rat.Rat // real time of the release decision
}

var (
	_ engine.Adversary         = (*AdaptiveScheduler)(nil)
	_ engine.StatefulAdversary = (*AdaptiveScheduler)(nil)
	_ engine.Observer          = (*AdaptiveScheduler)(nil)
	_ engine.DenomHinter       = (*AdaptiveScheduler)(nil)
)

// NewAdaptiveScheduler builds the generalized §2 adversary for net: hold
// source- and front-outgoing traffic maximally stale, release the
// source→front edge once the hardware gap observed at a front event reaches
// threshold (> 0). source and front must be distinct nodes; front is
// conventionally the node whose stale-then-fresh jump the construction
// exposes (the paper's y, with the fast x as source).
func NewAdaptiveScheduler(net *network.Network, source, front int, threshold rat.Rat) (*AdaptiveScheduler, error) {
	if net == nil {
		return nil, fmt.Errorf("lowerbound: adaptive scheduler: nil network")
	}
	n := net.N()
	if source < 0 || source >= n || front < 0 || front >= n || source == front {
		return nil, fmt.Errorf("lowerbound: adaptive scheduler: invalid source %d / front %d for %d nodes", source, front, n)
	}
	if threshold.Sign() <= 0 {
		return nil, fmt.Errorf("lowerbound: adaptive scheduler: non-positive release threshold %s", threshold)
	}
	return &AdaptiveScheduler{
		net:       net,
		source:    source,
		front:     front,
		threshold: threshold,
		hw:        make([]rat.Rat, n),
	}, nil
}

// AutoThreshold returns the conventional release threshold for a run of the
// given duration: ρ·dur/3, the hardware gap a source running at 1+ρ/2 over
// rate-1 peers accumulates by two thirds of the run — late enough for the
// held-back skew to build, early enough for the release to play out.
func AutoThreshold(rho, dur rat.Rat) rat.Rat {
	return rho.Mul(dur).Div(rat.FromInt(3))
}

// Source returns the designated fast node x.
func (a *AdaptiveScheduler) Source() int { return a.source }

// Front returns the designated release target y.
func (a *AdaptiveScheduler) Front() int { return a.front }

// Released reports whether the release has fired, and at what real time.
func (a *AdaptiveScheduler) Released() (rat.Rat, bool) { return a.relAt, a.released }

// Delay implements engine.Adversary, the scripted §2 delay shape made
// state-dependent: messages out of the source travel at the full bound
// (stale views everywhere) except source→front after the release (the news
// arrives instantly); messages out of the front travel at the full bound
// (its fresh value reaches its neighbors as late as possible); all other
// traffic is instant. Delay is a pure read of the observer-accumulated
// state, so cloned schedulers replaying identical streams make identical
// decisions.
func (a *AdaptiveScheduler) Delay(from, to int, _ uint64, _ rat.Rat, bound rat.Rat) rat.Rat {
	switch {
	case from == a.source && to == a.front:
		if a.released {
			return rat.Rat{}
		}
		return bound
	case from == a.source || from == a.front:
		return bound
	default:
		return rat.Rat{}
	}
}

// DelayDenom implements engine.DenomHinter: every delay this scheduler
// returns is zero or the bound itself — integer multiples of the bound —
// so D = 1 and the adaptive lower-bound runs stay on the fixed-point lane
// whenever the schedules and bounds themselves fit the grid.
func (a *AdaptiveScheduler) DelayDenom() int64 { return 1 }

// OnAction implements engine.Observer: track each node's hardware reading
// and arm the release the first time an event at the front node shows the
// source's reading ahead of the front's by the threshold. Evaluating only
// at front events, against the front's exact current reading, keeps the
// trigger conservative: the retained source reading can only lag the truth,
// so the release can fire late but never before the real gap exists. The
// trigger depends only on the observed action stream, so it fires at the
// same event in every byte-identical run.
func (a *AdaptiveScheduler) OnAction(act trace.Action) {
	if act.Kind == trace.KindSend {
		return // sends carry the same reading as their enclosing event
	}
	a.hw[act.Node] = act.HW
	if !a.released && act.Node == a.front && a.hw[a.source].Sub(act.HW).GreaterEq(a.threshold) {
		a.released = true
		a.relAt = act.Real
	}
}

// OnSend implements engine.Observer (no-op: OnAction carries the readings).
func (a *AdaptiveScheduler) OnSend(trace.MsgRecord) {}

// OnDeliver implements engine.Observer (no-op).
func (a *AdaptiveScheduler) OnDeliver(trace.MsgRecord) {}

// Clone returns an independent scheduler carrying the full trigger state.
func (a *AdaptiveScheduler) Clone() *AdaptiveScheduler {
	c := *a
	c.hw = append([]rat.Rat(nil), a.hw...)
	return &c
}

// CloneAdversary implements engine.StatefulAdversary.
func (a *AdaptiveScheduler) CloneAdversary() engine.Adversary { return a.Clone() }

// String returns a debugging label.
func (a *AdaptiveScheduler) String() string {
	return fmt.Sprintf("adaptive(%d→%d @ %s)", a.source, a.front, a.threshold)
}

// AdaptiveCounterexampleInput configures the online form of the §2
// scenario: the same three-node x–y–z geometry as Counterexample, but the
// switch is *discovered* by the adversary (release when the observed
// hardware gap between x and y reaches Threshold) instead of scripted at a
// known real time.
type AdaptiveCounterexampleInput struct {
	Protocol sim.Protocol
	// Dc is the x−y distance (the paper's "D").
	Dc rat.Rat
	// Threshold is the observed HW(x) − HW(y) gap that triggers the release;
	// zero selects AutoThreshold(ρ, Duration).
	Threshold rat.Rat
	// Duration of the run (long enough for the release to fire and play out).
	Duration rat.Rat
	Params   Params
}

// AdaptiveCounterexampleResult certifies the online gradient violation.
type AdaptiveCounterexampleResult struct {
	Exec *trace.Execution
	// ReleasedAt is the real time the online trigger fired.
	ReleasedAt rat.Rat
	// PeakYZ is the largest L_y − L_z observed after the release; the
	// gradient property would require it ≤ f(1), here it scales with Dc.
	PeakYZ piecewise.Extremum
	// PreReleaseYZ is the largest |L_y − L_z| before the release (small).
	PreReleaseYZ piecewise.Extremum
	// Ratio = PeakYZ / Dc (reported as float for readability).
	Ratio float64
}

// AdaptiveCounterexample runs the §2 construction with the online scheduler:
// same geometry and rates as Counterexample, but no scripted switch time —
// the adversary watches the run and releases itself. It errors if the
// release never fires within the run (threshold unreachable), since then no
// violation was constructed.
func AdaptiveCounterexample(in AdaptiveCounterexampleInput) (*AdaptiveCounterexampleResult, error) {
	p := in.Params
	if err := p.Validate(); err != nil {
		return nil, err
	}
	one := rat.FromInt(1)
	if in.Dc.Less(one) {
		return nil, fmt.Errorf("lowerbound: Dc = %s < 1", in.Dc)
	}
	if in.Duration.Sign() <= 0 {
		return nil, fmt.Errorf("lowerbound: non-positive duration %s", in.Duration)
	}
	threshold := in.Threshold
	if threshold.IsZero() {
		threshold = AutoThreshold(p.Rho, in.Duration)
	}
	const x, y, z = 0, 1, 2
	dxy := in.Dc
	dxz := in.Dc.Add(one)
	dist := [][]rat.Rat{
		{{}, dxy, dxz},
		{dxy, {}, one},
		{dxz, one, {}},
	}
	adj := [][]int{{1, 2}, {0, 2}, {0, 1}}
	net, err := network.New(fmt.Sprintf("adaptive-counterexample-D%s", in.Dc), dist, adj)
	if err != nil {
		return nil, err
	}
	scheds := []*clock.Schedule{
		clock.Constant(p.RateBandHigh()),
		clock.Constant(one),
		clock.Constant(one),
	}
	adv, err := NewAdaptiveScheduler(net, x, y, threshold)
	if err != nil {
		return nil, err
	}
	exec, err := sim.Run(sim.Config{
		Net:       net,
		Schedules: scheds,
		Adversary: adv,
		Protocol:  in.Protocol,
		Duration:  in.Duration,
		Rho:       p.Rho,
	})
	if err != nil {
		return nil, fmt.Errorf("lowerbound: adaptive counterexample run: %w", err)
	}
	relAt, ok := adv.Released()
	if !ok {
		return nil, fmt.Errorf("lowerbound: adaptive counterexample: release threshold %s never reached within duration %s", threshold, in.Duration)
	}
	res := &AdaptiveCounterexampleResult{Exec: exec, ReleasedAt: relAt}
	res.PeakYZ = piecewise.MaxDiff(exec.Logical[y], exec.Logical[z], relAt, in.Duration)
	preEnd := relAt.Sub(one)
	if preEnd.Sign() < 0 {
		preEnd = rat.Rat{}
	}
	res.PreReleaseYZ = piecewise.MaxAbsDiff(exec.Logical[y], exec.Logical[z], rat.Rat{}, preEnd)
	res.Ratio = res.PeakYZ.Val.Float64() / in.Dc.Float64()
	return res, nil
}
