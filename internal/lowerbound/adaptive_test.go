package lowerbound

import (
	"strings"
	"testing"

	"gcs/internal/algorithms"
	"gcs/internal/clock"
	"gcs/internal/core"
	"gcs/internal/engine"
	"gcs/internal/network"
	"gcs/internal/obs"
	"gcs/internal/rat"
	"gcs/internal/sim"
)

// TestAdaptiveSchedulerDecisions: full delay everywhere before the release,
// zero on the source→front edge after, full elsewhere; the release fires at
// the first observed event where the hardware gap reaches the threshold.
func TestAdaptiveSchedulerDecisions(t *testing.T) {
	net, err := network.Line(3)
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams()
	adv, err := NewAdaptiveScheduler(net, 0, 2, rat.MustFrac(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := adv.Released(); ok {
		t.Fatal("released before any observation")
	}
	bound := rat.FromInt(2)
	if d := adv.Delay(0, 2, 0, rat.Rat{}, bound); !d.Equal(bound) {
		t.Fatalf("pre-release delay %s, want full bound %s", d, bound)
	}

	scheds := []*clock.Schedule{
		clock.Constant(p.RateBandHigh()),
		clock.Constant(rat.FromInt(1)),
		clock.Constant(rat.FromInt(1)),
	}
	eng, err := engine.New(net,
		engine.WithProtocol(algorithms.MaxGossip(rat.FromInt(1))),
		engine.WithAdversary(adv),
		engine.WithSchedules(scheds),
		engine.WithRho(p.Rho),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.RunUntil(rat.FromInt(8)); err != nil {
		t.Fatal(err)
	}
	relAt, ok := adv.Released()
	if !ok {
		t.Fatal("release never fired")
	}
	// Gap grows at ρ/2 = 1/4 per unit: threshold 1/2 is reachable from t=2 on.
	if relAt.Less(rat.FromInt(2)) {
		t.Fatalf("released at %s, before the gap could reach the threshold", relAt)
	}
	if d := adv.Delay(0, 2, 9, rat.Rat{}, bound); !d.IsZero() {
		t.Fatalf("post-release source→front delay %s, want 0", d)
	}
	if d := adv.Delay(0, 1, 9, rat.Rat{}, bound); !d.Equal(bound) {
		t.Fatalf("post-release off-edge delay %s, want full bound", d)
	}
}

// TestAdaptiveSchedulerFixedLane: the DelayDenom hint (delays are zero or
// the bound — D = 1) lets an adaptive run engage the fixed-point lane,
// counted via Metrics.FixedLaneRuns, and the fixed-lane run's trigger lands
// on exactly the forced rat-lane run's release instant.
func TestAdaptiveSchedulerFixedLane(t *testing.T) {
	net, err := network.Line(3)
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams()
	run := func(lane engine.Lane) (*AdaptiveScheduler, *engine.Metrics) {
		t.Helper()
		adv, err := NewAdaptiveScheduler(net, 0, 2, rat.MustFrac(1, 2))
		if err != nil {
			t.Fatal(err)
		}
		scheds := []*clock.Schedule{
			clock.Constant(p.RateBandHigh()),
			clock.Constant(rat.FromInt(1)),
			clock.Constant(rat.FromInt(1)),
		}
		met := engine.NewMetrics(obs.NewRegistry())
		eng, err := engine.New(net,
			engine.WithProtocol(algorithms.MaxGossip(rat.FromInt(1))),
			engine.WithAdversary(adv),
			engine.WithSchedules(scheds),
			engine.WithRho(p.Rho),
			engine.WithLane(lane),
			engine.WithMetrics(met),
		)
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.RunUntil(rat.FromInt(8)); err != nil {
			t.Fatal(err)
		}
		return adv, met
	}
	fixedAdv, fixedMet := run(engine.LaneAuto)
	if fixedMet.FixedLaneRuns.Value() != 1 || fixedMet.RatLaneRuns.Value() != 0 {
		t.Fatalf("adaptive run off the fixed lane: fixed=%d rat=%d",
			fixedMet.FixedLaneRuns.Value(), fixedMet.RatLaneRuns.Value())
	}
	ratAdv, ratMet := run(engine.LaneRat)
	if ratMet.RatLaneRuns.Value() != 1 {
		t.Fatalf("forced rat run counted %d rat-lane runs", ratMet.RatLaneRuns.Value())
	}
	fAt, fOK := fixedAdv.Released()
	rAt, rOK := ratAdv.Released()
	if fOK != rOK || !fOK || !fAt.Equal(rAt) {
		t.Fatalf("release differs across lanes: fixed (%s, %v) vs rat (%s, %v)", fAt, fOK, rAt, rOK)
	}
}

// TestAdaptiveSchedulerClone: the clone carries the trigger state and then
// evolves independently of the original.
func TestAdaptiveSchedulerClone(t *testing.T) {
	net, err := network.TwoNode(rat.FromInt(2))
	if err != nil {
		t.Fatal(err)
	}
	adv, err := NewAdaptiveScheduler(net, 0, 1, rat.FromInt(1))
	if err != nil {
		t.Fatal(err)
	}
	c, ok := engine.CloneAdversaryState(adv)
	if !ok {
		t.Fatal("adaptive scheduler not cloneable")
	}
	clone, ok := c.(*AdaptiveScheduler)
	if !ok || clone == adv {
		t.Fatalf("clone %T shares the original", c)
	}
	clone.hw[0] = rat.FromInt(5)
	if adv.hw[0].Equal(rat.FromInt(5)) {
		t.Fatal("mutating the clone's state reached the original")
	}
}

// TestNewAdaptiveSchedulerValidation: loud errors on bad roles/thresholds.
func TestNewAdaptiveSchedulerValidation(t *testing.T) {
	net, err := network.Line(3)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name          string
		source, front int
		threshold     rat.Rat
		want          string
	}{
		{"same node", 1, 1, rat.FromInt(1), "invalid source"},
		{"out of range", 0, 7, rat.FromInt(1), "invalid source"},
		{"zero threshold", 0, 2, rat.Rat{}, "threshold"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewAdaptiveScheduler(net, tc.source, tc.front, tc.threshold)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %v does not mention %q", err, tc.want)
			}
		})
	}
	if _, err := NewAdaptiveScheduler(nil, 0, 1, rat.FromInt(1)); err == nil {
		t.Fatal("nil network accepted")
	}
}

// TestAdaptiveCounterexampleSpikesMaxBased: the online scheduler reproduces
// the §2 story with no scripted switch time — max-based algorithms show a
// Θ(D) spike between nodes at distance 1, the gradient algorithm does not.
func TestAdaptiveCounterexampleSpikesMaxBased(t *testing.T) {
	p := DefaultParams()
	dc := rat.FromInt(32)
	// Long enough for the auto threshold to fire and the release to play out.
	dur := dc.Div(p.Rho.Div(rat.FromInt(2))).Add(dc).Add(rat.FromInt(8))
	run := func(proto sim.Protocol) *AdaptiveCounterexampleResult {
		t.Helper()
		res, err := AdaptiveCounterexample(AdaptiveCounterexampleInput{
			Protocol: proto,
			Dc:       dc,
			Duration: dur,
			Params:   p,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	spike := run(algorithms.MaxGossip(rat.FromInt(1)))
	if spike.Ratio < 0.2 {
		t.Fatalf("max-gossip adaptive peak/Dc = %.3f, want a Θ(D) spike", spike.Ratio)
	}
	if spike.ReleasedAt.Sign() <= 0 || spike.ReleasedAt.GreaterEq(dur) {
		t.Fatalf("release at %s outside the run", spike.ReleasedAt)
	}
	flat := run(algorithms.Gradient(algorithms.DefaultGradientParams()))
	if flat.Ratio >= spike.Ratio/2 {
		t.Fatalf("gradient adaptive peak/Dc = %.3f vs max-gossip %.3f: rate cap did not damp the spike", flat.Ratio, spike.Ratio)
	}
}

// TestAdaptiveCounterexampleUnreachableThreshold: a threshold the run can
// never accumulate errors instead of silently reporting a no-release run.
func TestAdaptiveCounterexampleUnreachableThreshold(t *testing.T) {
	_, err := AdaptiveCounterexample(AdaptiveCounterexampleInput{
		Protocol:  algorithms.MaxGossip(rat.FromInt(1)),
		Dc:        rat.FromInt(4),
		Threshold: rat.FromInt(1000),
		Duration:  rat.FromInt(20),
		Params:    DefaultParams(),
	})
	if err == nil || !strings.Contains(err.Error(), "never reached") {
		t.Fatalf("unreachable threshold: %v", err)
	}
}

// TestAdaptiveTwoNodeAttainsShiftBound is the acceptance bar from the
// roadmap: on the two-node cell, the generalized §2 online scheduler — full
// staleness plus a fast source, no per-protocol tuning — must force at
// least the certified Shift lower bound out of every protocol in the
// portfolio, exactly as the scripted beam search does.
func TestAdaptiveTwoNodeAttainsShiftBound(t *testing.T) {
	p := DefaultParams()
	d := rat.FromInt(2)
	dur := p.Tau().Mul(d)
	for _, proto := range algorithms.All() {
		proto := proto
		t.Run(proto.Name(), func(t *testing.T) {
			shift, err := Shift(proto, d, p)
			if err != nil {
				t.Fatal(err)
			}
			net, err := network.TwoNode(d)
			if err != nil {
				t.Fatal(err)
			}
			adv, err := NewAdaptiveScheduler(net, 0, 1, AutoThreshold(p.Rho, dur))
			if err != nil {
				t.Fatal(err)
			}
			scheds := []*clock.Schedule{
				clock.Constant(p.RateBandHigh()),
				clock.Constant(rat.FromInt(1)),
			}
			skew, err := core.NewSkewTracker(net, scheds)
			if err != nil {
				t.Fatal(err)
			}
			eng, err := engine.New(net,
				engine.WithProtocol(proto),
				engine.WithAdversary(adv),
				engine.WithSchedules(scheds),
				engine.WithRho(p.Rho),
				engine.WithObservers(skew),
			)
			if err != nil {
				t.Fatal(err)
			}
			if err := eng.RunUntil(dur); err != nil {
				t.Fatal(err)
			}
			if err := skew.Err(); err != nil {
				t.Fatal(err)
			}
			got := skew.Global().Skew
			if got.Less(shift.Implied) {
				t.Fatalf("adaptive skew %s below the certified Shift bound %s", got, shift.Implied)
			}
		})
	}
}
