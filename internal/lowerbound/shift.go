package lowerbound

import (
	"fmt"

	"gcs/internal/clock"
	"gcs/internal/network"
	"gcs/internal/rat"
	"gcs/internal/sim"
	"gcs/internal/trace"
)

// ShiftResult certifies the folklore Ω(d) bound (§5, claim 1) for one
// protocol and one distance: two indistinguishable executions whose skews
// between the two nodes differ by at least d/(8+4ρ) ≥ d/12, so in at least
// one of them the pair's skew is at least half that — no algorithm can keep
// two nodes at distance d closer than Ω(d) in every execution.
type ShiftResult struct {
	D          rat.Rat // the pair's distance
	Alpha      *trace.Execution
	Beta       *trace.Execution
	SkewAlpha  rat.Rat // L_0 − L_1 at the end of α
	SkewBeta   rat.Rat // L_0 − L_1 at the end of β
	Separation rat.Rat // SkewBeta − SkewAlpha ≥ GuaranteedGain
	// Implied is max(|SkewAlpha|, |SkewBeta|) ≥ Separation/2: a lower bound
	// on this algorithm's worst-case f(d).
	Implied rat.Rat
	// BetaCfg is the configuration that re-simulated β (γ speed-up schedules
	// plus the scripted delays); Seed exports it to the worst-case search.
	BetaCfg sim.Config
}

// Shift runs the two-node construction for the given protocol and distance
// d ≥ 1. It is Lemma 6.1 applied to the two-point line {0, d}: the base
// execution has rate-1 clocks and midpoint (d/2) delays; the transformed
// execution speeds node 0 by γ inside the window, remaining indistinguishable
// while node 0 gains d·(1/(8+4ρ)) of logical time on node 1.
func Shift(proto sim.Protocol, d rat.Rat, p Params) (*ShiftResult, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if d.Less(rat.FromInt(1)) {
		return nil, fmt.Errorf("lowerbound: shift distance %s < 1", d)
	}
	net, err := network.TwoNode(d)
	if err != nil {
		return nil, err
	}
	tau := p.Tau()
	cfg := sim.Config{
		Net:       net,
		Schedules: []*clock.Schedule{clock.Constant(rat.FromInt(1)), clock.Constant(rat.FromInt(1))},
		Adversary: sim.Midpoint(),
		Protocol:  proto,
		Duration:  tau.Mul(d),
		Rho:       p.Rho,
	}
	alpha, err := sim.Run(cfg)
	if err != nil {
		return nil, fmt.Errorf("lowerbound: shift α: %w", err)
	}
	res, err := AddSkew(AddSkewInput{
		Cfg:       cfg,
		Alpha:     alpha,
		Positions: []rat.Rat{{}, d},
		I:         0,
		J:         1,
		S:         rat.Rat{},
		Params:    p,
	})
	if err != nil {
		return nil, fmt.Errorf("lowerbound: shift: %w", err)
	}
	out := &ShiftResult{
		D:          d,
		Alpha:      alpha,
		Beta:       res.Beta,
		SkewAlpha:  res.SkewAlpha,
		SkewBeta:   res.SkewBeta,
		Separation: res.Gain,
		BetaCfg:    res.BetaCfg,
	}
	out.Implied = rat.Max(out.SkewAlpha.Abs(), out.SkewBeta.Abs())
	return out, nil
}
