package lowerbound

import (
	"testing"

	"gcs/internal/algorithms"
)

func BenchmarkMainTheoremD65(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := MainTheorem(MainTheoremInput{
			Protocol: algorithms.MaxGossip(ri(1)),
			Params:   DefaultParams(),
			Branch:   4,
			Rounds:   3,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}
