package lowerbound

import (
	"fmt"

	"gcs/internal/clock"
	"gcs/internal/core"
	"gcs/internal/piecewise"
	"gcs/internal/rat"
	"gcs/internal/sim"
	"gcs/internal/trace"
)

// BoundedIncreaseInput describes an application of Lemma 7.1 to node I of a
// recorded execution.
//
// Preconditions on Alpha (verified): duration ≥ τ + 1/2; every hardware rate
// within [1, 1+ρ/2] at all times; every delivered message to or from node I
// has delay within [d/4, 3d/4].
type BoundedIncreaseInput struct {
	Cfg    sim.Config
	Alpha  *trace.Execution
	I      int
	Params Params
}

// BoundedIncreaseResult certifies one application of the lemma.
//
// The lemma (contrapositive form): for an algorithm guaranteeing skew at most
// f(1) between distance-1 nodes, no node may gain more than 16·f(1) logical
// time in any unit of real time after τ. Constructively: if node I gains
// quickly, the speed-up execution β forces skew between node I and a
// distance-1 neighbor equal to what I gains over a 1/8 window plus whatever
// skew α already had — a certified lower bound on the algorithm's true f(1).
type BoundedIncreaseResult struct {
	I int
	// MaxIncrease is sup over unit windows in [τ, ℓ(α)] of L_I(t+1) − L_I(t)
	// in α, attained at IncreaseAt. The lemma: f(1) ≥ MaxIncrease/16.
	MaxIncrease rat.Rat
	IncreaseAt  rat.Rat
	// T0 is the chosen speed-up anchor: the densest 1/8-window in α starts
	// at T0; node I's clock runs ρ/4 fast during [T0 − τ, T0] in β.
	T0 rat.Rat
	// WindowGain = L^α_I(T0+1/8) − L^α_I(T0).
	WindowGain rat.Rat
	// Beta is the re-simulated speed-up execution (duration = the remapped
	// horizon m(ℓ(α)) so that node I observes exactly α's actions).
	Beta *trace.Execution
	// BetaSkew is max over distance-1 neighbors j of L^β_I(T0) − L^β_j(T0),
	// attained against BetaPeer.
	BetaSkew rat.Rat
	BetaPeer int
	// ImpliedF1 is the certified lower bound on this algorithm's worst-case
	// f(1): max(BetaSkew, MaxIncrease/16).
	ImpliedF1 rat.Rat
}

// BoundedIncrease measures node I's fastest unit-window logical increase in
// Alpha and performs the lemma's speed-up construction: node I's hardware
// rate gains ρ/4 during [T0 − τ, T0] (totalling exactly 1/4 extra hardware
// time, claim 7.2); all of node I's message delays are re-scripted so every
// node sees identical actions at identical hardware readings; the
// re-simulated β is checked for indistinguishability. In β node I reaches
// L^α_I(T0 + 1/8) by real time T0 while its neighbors' clocks are untouched.
func BoundedIncrease(in BoundedIncreaseInput) (*BoundedIncreaseResult, error) {
	p := in.Params
	if err := p.Validate(); err != nil {
		return nil, err
	}
	tau := p.Tau()
	alpha := in.Alpha
	T := alpha.Duration
	half := rat.MustFrac(1, 2)
	if T.Less(tau.Add(half)) {
		return nil, fmt.Errorf("lowerbound: duration %s < τ + 1/2", T)
	}
	n := alpha.N()
	if in.I < 0 || in.I >= n {
		return nil, fmt.Errorf("lowerbound: node %d out of range", in.I)
	}
	// Precondition 1: rates within [1, 1+ρ/2] at all times.
	if err := trace.CheckRateBounds(alpha, rat.Rat{}, T, rat.FromInt(1), p.RateBandHigh()); err != nil {
		return nil, fmt.Errorf("lowerbound: bounded-increase precondition (rates): %w", err)
	}
	// Precondition 2: node I's delivered message delays within [d/4, 3d/4].
	quarter, threeQ := rat.MustFrac(1, 4), rat.MustFrac(3, 4)
	for key, rec := range alpha.Ledger {
		if (key.From != in.I && key.To != in.I) || !rec.Delivered {
			continue
		}
		d := alpha.Net.Dist(key.From, key.To)
		if rec.Delay.Less(quarter.Mul(d)) || rec.Delay.Greater(threeQ.Mul(d)) {
			return nil, fmt.Errorf("lowerbound: bounded-increase precondition (delays): message %v delay %s outside [d/4, 3d/4]",
				key, rec.Delay)
		}
	}

	res := &BoundedIncreaseResult{I: in.I}
	inc := core.MaxIncreasePerUnit(alpha, in.I, tau, T)
	res.MaxIncrease = inc.Val
	res.IncreaseAt = inc.At

	// Choose T0: densest 1/8-window within [τ, T − 1/2]. Staying 1/2 clear
	// of the end keeps T0 inside β's (slightly shorter) domain.
	eighth := rat.MustFrac(1, 8)
	t0, gain := densestWindow(alpha.Logical[in.I], tau, T.Sub(half), eighth)
	res.T0, res.WindowGain = t0, gain

	s0 := t0.Sub(tau)
	if s0.Sign() < 0 {
		return nil, fmt.Errorf("lowerbound: T0 = %s gives negative speed-up start", t0)
	}
	delta := p.Rho.Div(rat.FromInt(4))
	schedI, err := in.Cfg.Schedules[in.I].ModifyWindow(s0, t0, func(r rat.Rat) rat.Rat { return r.Add(delta) })
	if err != nil {
		return nil, fmt.Errorf("lowerbound: rate surgery: %w", err)
	}
	scheds := make([]*clock.Schedule, n)
	copy(scheds, in.Cfg.Schedules)
	scheds[in.I] = schedI

	// Node I's event-time remap: m(t) = H_β⁻¹(H_α(t)) ≤ t, with t − m(t) ≤
	// 1/4 (claim 7.2).
	remapI := func(t rat.Rat) (rat.Rat, error) {
		return schedI.RealAt(alpha.HWAt(in.I, t))
	}

	// β's horizon: node I has observed exactly α's actions when its hardware
	// reads H_α_I(T), i.e. at real time m(T).
	horizon, err := remapI(T)
	if err != nil {
		return nil, fmt.Errorf("lowerbound: horizon remap: %w", err)
	}
	if t0.GreaterEq(horizon) {
		return nil, fmt.Errorf("lowerbound: T0 = %s beyond β horizon %s", t0, horizon)
	}

	// Scripted delays: identical for messages not involving I; remapped send
	// (From = I) or receive (To = I) times otherwise.
	script := make(map[trace.MsgKey]rat.Rat, len(alpha.Ledger))
	for key, rec := range alpha.Ledger {
		switch {
		case !rec.Delivered:
			// In flight at ℓ(α): keep it in flight.
			script[key] = alpha.Net.Dist(key.From, key.To)
		case key.From == in.I:
			ms, err := remapI(rec.SendReal)
			if err != nil {
				return nil, fmt.Errorf("lowerbound: remap send %v: %w", key, err)
			}
			script[key] = rec.RecvReal.Sub(ms)
		case key.To == in.I:
			mr, err := remapI(rec.RecvReal)
			if err != nil {
				return nil, fmt.Errorf("lowerbound: remap recv %v: %w", key, err)
			}
			script[key] = mr.Sub(rec.SendReal)
		default:
			script[key] = rec.Delay
		}
	}

	betaCfg := in.Cfg
	betaCfg.Schedules = scheds
	betaCfg.Adversary = sim.ScriptedAdversary{Delays: script, Fallback: failingAdversary{}}
	betaCfg.Duration = horizon

	beta, err := sim.Run(betaCfg)
	if err != nil {
		return nil, fmt.Errorf("lowerbound: β re-simulation: %w", err)
	}
	if err := trace.CheckIndistinguishable(alpha, beta); err != nil {
		return nil, fmt.Errorf("lowerbound: bounded-increase indistinguishability: %w", err)
	}
	res.Beta = beta

	// Claim 7.3 consequence: H^β_I(T0) = H^α_I(T0) + 1/4 ≥ H^α_I(T0 + 1/8),
	// so by indistinguishability and validity L^β_I(T0) ≥ L^α_I(T0 + 1/8).
	if got, want := beta.LogicalAt(in.I, t0), alpha.LogicalAt(in.I, t0.Add(eighth)); got.Less(want) {
		return nil, fmt.Errorf("lowerbound: claim 7.3 failed: L^β_I(T0)=%s < L^α_I(T0+1/8)=%s", got, want)
	}

	// Skew certified at T0 against the closest neighbors.
	one := rat.FromInt(1)
	first := true
	for j := 0; j < n; j++ {
		if j == in.I || !alpha.Net.Dist(in.I, j).Equal(one) {
			continue
		}
		skew := beta.LogicalAt(in.I, t0).Sub(beta.LogicalAt(j, t0))
		if first || skew.Greater(res.BetaSkew) {
			first = false
			res.BetaSkew = skew
			res.BetaPeer = j
		}
	}
	if first {
		return nil, fmt.Errorf("lowerbound: node %d has no distance-1 neighbor", in.I)
	}
	res.ImpliedF1 = rat.Max(res.BetaSkew, res.MaxIncrease.Div(rat.FromInt(16)))
	return res, nil
}

// densestWindow finds the start t maximizing L(t+w) − L(t) for t in
// [from, to−w], scanning breakpoint-aligned candidates exactly.
func densestWindow(l *piecewise.PLF, from, to, w rat.Rat) (rat.Rat, rat.Rat) {
	best := from
	bestGain := l.Eval(from.Add(w)).Sub(l.Eval(from))
	consider := func(t rat.Rat) {
		if t.Less(from) || t.Greater(to.Sub(w)) {
			return
		}
		if g := l.Eval(t.Add(w)).Sub(l.Eval(t)); g.Greater(bestGain) {
			best, bestGain = t, g
		}
	}
	for _, b := range l.Breakpoints() {
		consider(b)
		consider(b.Sub(w))
	}
	consider(to.Sub(w))
	return best, bestGain
}
