package lowerbound

import (
	"testing"

	"gcs/internal/algorithms"
	"gcs/internal/clock"
	"gcs/internal/rat"
	"gcs/internal/sim"
	"gcs/internal/trace"
)

// TestVerifierCatchesCorruptedScript re-simulates a correct Add Skew β with
// one scripted delay perturbed: the indistinguishability checker must reject
// the corrupted execution. This is the negative test for the verification
// machinery itself — a verifier that accepts everything would make every
// certificate in this package worthless.
func TestVerifierCatchesCorruptedScript(t *testing.T) {
	p := DefaultParams()
	proto := algorithms.MaxGossip(ri(1))
	n := 7
	dur := p.Tau().Mul(ri(int64(n - 1)))
	cfg, alpha := lineAlpha(t, proto, n, dur, p)
	positions := make([]rat.Rat, n)
	for k := range positions {
		positions[k] = ri(int64(k))
	}
	res, err := AddSkew(AddSkewInput{
		Cfg: cfg, Alpha: alpha, Positions: positions,
		I: 0, J: n - 1, S: rat.Rat{}, Params: p,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Rebuild β's adversary with one delay nudged by 1/8 (still within
	// bounds so the simulation itself succeeds).
	scripted, ok := res.BetaCfg.Adversary.(sim.ScriptedAdversary)
	if !ok {
		t.Fatal("β adversary is not scripted")
	}
	corrupted := make(map[trace.MsgKey]rat.Rat, len(scripted.Delays))
	var victim trace.MsgKey
	found := false
	for key, d := range scripted.Delays {
		corrupted[key] = d
		// Pick a delivered mid-run message between adjacent nodes.
		if !found {
			if rec, ok := alpha.Ledger[key]; ok && rec.Delivered &&
				rec.RecvReal.Greater(ri(2)) && rec.RecvReal.Less(res.TPrime) {
				victim = key
				found = true
			}
		}
	}
	if !found {
		t.Fatal("no suitable victim message")
	}
	corrupted[victim] = corrupted[victim].Add(rf(1, 8))

	badCfg := res.BetaCfg
	badCfg.Adversary = sim.ScriptedAdversary{Delays: corrupted, Fallback: sim.Midpoint()}
	bad, err := sim.Run(badCfg)
	if err != nil {
		t.Fatalf("corrupted β should still simulate (delays remain legal): %v", err)
	}
	if err := trace.CheckIndistinguishable(alpha, bad); err == nil {
		t.Fatal("verifier accepted a corrupted β: the certificate machinery is broken")
	}
}

// TestVerifierCatchesWrongSchedule perturbs one node's rate surgery point:
// hardware readings shift and the checker must notice.
func TestVerifierCatchesWrongSchedule(t *testing.T) {
	p := DefaultParams()
	proto := algorithms.MaxGossip(ri(1))
	n := 5
	dur := p.Tau().Mul(ri(int64(n - 1)))
	cfg, alpha := lineAlpha(t, proto, n, dur, p)
	positions := make([]rat.Rat, n)
	for k := range positions {
		positions[k] = ri(int64(k))
	}
	res, err := AddSkew(AddSkewInput{
		Cfg: cfg, Alpha: alpha, Positions: positions,
		I: 0, J: n - 1, S: rat.Rat{}, Params: p,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Node 2 speeds up 1/2 earlier than the construction demands.
	wrong, err := cfg.Schedules[2].WithRateFrom(res.Tk[2].Sub(rf(1, 2)), p.Gamma())
	if err != nil {
		t.Fatal(err)
	}
	badCfg := res.BetaCfg
	badCfg.Schedules = append([]*clock.Schedule{}, res.BetaCfg.Schedules...)
	badCfg.Schedules[2] = wrong
	bad, err := sim.Run(badCfg)
	if err != nil {
		// Acceptable: the corrupted schedule can break delay legality, which
		// is also a detection.
		return
	}
	if err := trace.CheckIndistinguishable(alpha, bad); err == nil {
		t.Fatal("verifier accepted a β with a perturbed rate schedule")
	}
}
