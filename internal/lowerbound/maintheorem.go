package lowerbound

import (
	"fmt"

	"gcs/internal/clock"
	"gcs/internal/network"
	"gcs/internal/rat"
	"gcs/internal/sim"
	"gcs/internal/trace"
)

// MainTheoremInput configures the iterated construction of Theorem 8.1.
//
// The line has n₀ = Branch^Rounds unit-spaced intervals (n₀+1 nodes). Each
// round applies the Add Skew lemma to the current pair (i_k, j_k) with
// j_k − i_k = n_k, extends the resulting β_k with a quiet midpoint-delay
// segment, and picks the best sub-pair at separation n_{k+1} = n_k/Branch by
// the pigeonhole of claim 8.5.
//
// The paper's branching factor is 384·τ·f(1), chosen so the Bounded Increase
// lemma guarantees the skew added per round is twice the skew lost during
// the extension; with that value, Ω(log D / log log D) rounds fit in a
// diameter-D network. The factor is configurable because 384·τ·f(1) forces
// astronomically large networks; the per-round certificates report the
// actual gain and loss so the guaranteed-versus-measured comparison is
// explicit at any branching factor.
type MainTheoremInput struct {
	Protocol sim.Protocol
	Params   Params
	// Branch is the block shrink factor B = n_k / n_{k+1} (≥ 2).
	Branch int64
	// Rounds is the number of Add Skew applications R; the network has
	// Branch^Rounds + 1 nodes.
	Rounds int
}

// Round reports one iteration k → k+1.
type Round struct {
	K      int   // round index (0-based)
	NK     int64 // separation n_k of the pair worked on
	IK, JK int
	// SkewStart = L_{i_k} − L_{j_k} at ℓ(α_k) (the paper's Δ_k).
	SkewStart rat.Rat
	// AddSkewGain is the certified gain from Lemma 6.1 (≥ n_k/(8+4ρ)).
	AddSkewGain rat.Rat
	// SkewAfterBeta = L_{i_k} − L_{j_k} at ℓ(β_k).
	SkewAfterBeta rat.Rat
	// ExtensionLoss is how much the pair's skew decayed during the
	// extension (the quantity the Bounded Increase lemma caps).
	ExtensionLoss rat.Rat
	// NextNK, NextIK, NextJK describe the sub-pair chosen by pigeonhole.
	NextNK         int64
	NextIK, NextJK int
	// NextSkew = Δ_{k+1} for the chosen sub-pair at ℓ(α_{k+1}).
	NextSkew rat.Rat
	// Target is the paper's property 1.2 milestone: (k+1)/24 · n_{k+1}.
	Target rat.Rat
	// TargetMet reports NextSkew ≥ Target. Guaranteed only when Branch ≥
	// 384·τ·f(1); informational otherwise.
	TargetMet bool
}

// MainTheoremResult is the outcome of the full construction.
type MainTheoremResult struct {
	D      int // number of nodes
	Rounds []Round
	// Final is the last execution α_R, and FinalCfg the configuration that
	// produced it (composed schedules plus the scripted delays); Seed
	// exports FinalCfg to the worst-case search.
	Final    *trace.Execution
	FinalCfg sim.Config
	// AdjacentI and AdjacentSkew: the adjacent pair (i, i+1) with the
	// largest final skew — the paper's claim 8.7 quantity, which it proves
	// reaches k/24 = Ω(log D / log log D).
	AdjacentI    int
	AdjacentSkew rat.Rat
	// PaperTarget = R/24: the adjacent skew property 1.2 + claim 8.7 would
	// guarantee after R rounds at the paper's branching factor.
	PaperTarget rat.Rat
}

// MainTheorem runs the Theorem 8.1 construction against a protocol.
func MainTheorem(in MainTheoremInput) (*MainTheoremResult, error) {
	p := in.Params
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if in.Branch < 2 {
		return nil, fmt.Errorf("lowerbound: branch %d < 2", in.Branch)
	}
	if in.Rounds < 1 {
		return nil, fmt.Errorf("lowerbound: rounds %d < 1", in.Rounds)
	}
	n0 := int64(1)
	for r := 0; r < in.Rounds; r++ {
		if n0 > 1<<20/in.Branch {
			return nil, fmt.Errorf("lowerbound: %d rounds at branch %d is too large", in.Rounds, in.Branch)
		}
		n0 *= in.Branch
	}
	d := int(n0) + 1
	net, err := network.Line(d)
	if err != nil {
		return nil, err
	}
	positions := make([]rat.Rat, d)
	for k := range positions {
		positions[k] = rat.FromInt(int64(k))
	}

	tau := p.Tau()
	one := rat.FromInt(1)
	half := rat.MustFrac(1, 2)

	// α₀: rate-1 clocks, midpoint delays, duration τ·n₀.
	scheds := make([]*clock.Schedule, d)
	for k := range scheds {
		scheds[k] = clock.Constant(one)
	}
	cfg := sim.Config{
		Net:       net,
		Schedules: scheds,
		Adversary: sim.Midpoint(),
		Protocol:  in.Protocol,
		Duration:  tau.Mul(rat.FromInt(n0)),
		Rho:       p.Rho,
	}
	alpha, err := sim.Run(cfg)
	if err != nil {
		return nil, fmt.Errorf("lowerbound: α₀: %w", err)
	}

	res := &MainTheoremResult{D: d, PaperTarget: rat.FromInt(int64(in.Rounds)).Div(rat.FromInt(24))}
	ik, jk, nk := 0, int(n0), n0

	for k := 0; k < in.Rounds; k++ {
		round := Round{K: k, NK: nk, IK: ik, JK: jk, SkewStart: alpha.FinalSkew(ik, jk)}
		s := cfg.Duration.Sub(tau.Mul(rat.FromInt(nk)))
		as, err := AddSkew(AddSkewInput{
			Cfg: cfg, Alpha: alpha, Positions: positions,
			I: ik, J: jk, S: s, Params: p,
		})
		if err != nil {
			return nil, fmt.Errorf("lowerbound: round %d add-skew: %w", k, err)
		}
		round.AddSkewGain = as.Gain
		round.SkewAfterBeta = as.SkewBeta

		nk1 := nk / in.Branch

		// Extension: a quiet slack segment absorbing in-flight stragglers
		// (slack = T − T' = n_k/(4+2ρ) covers the latest remapped receipt),
		// then the clean window of length τ·n_{k+1} required by the next
		// round's Add Skew preconditions.
		slack := cfg.Duration.Sub(as.TPrime)
		extDur := as.TPrime.Add(slack).Add(tau.Mul(rat.FromInt(nk1)))

		nextScheds := make([]*clock.Schedule, d)
		for i := range nextScheds {
			ns, err := as.BetaCfg.Schedules[i].WithRateFrom(as.TPrime, one)
			if err != nil {
				return nil, fmt.Errorf("lowerbound: round %d extension schedule %d: %w", k, i, err)
			}
			nextScheds[i] = ns
		}
		// Extension delays: replay β_k verbatim for messages it delivered;
		// give α-in-flight messages midpoint delays (they arrive after T' —
		// verified by the prefix check); keep remapped delays for messages
		// delivered in α but pushed past T' by the remap (they land inside
		// the slack); fresh messages get midpoint delays.
		script := make(map[trace.MsgKey]rat.Rat, len(as.Beta.Ledger))
		for key, rec := range as.Beta.Ledger {
			switch {
			case rec.Delivered:
				script[key] = rec.Delay
			case as.InFlight[key]:
				script[key] = half.Mul(net.Dist(key.From, key.To))
			default:
				script[key] = rec.Delay
			}
		}
		nextCfg := sim.Config{
			Net:       net,
			Schedules: nextScheds,
			Adversary: sim.ScriptedAdversary{Delays: script, Fallback: sim.Midpoint()},
			Protocol:  in.Protocol,
			Duration:  extDur,
			Rho:       p.Rho,
		}
		next, err := sim.Run(nextCfg)
		if err != nil {
			return nil, fmt.Errorf("lowerbound: round %d extension: %w", k, err)
		}
		// The extension must leave β_k's past untouched (claim 8.3 setup).
		if err := trace.PrefixEqual(as.Beta, next, as.TPrime); err != nil {
			return nil, fmt.Errorf("lowerbound: round %d extension prefix: %w", k, err)
		}
		// Property 1.4 (rates in [1, 1+ρ/2]) and 1.5 (delays in
		// [d/4, 3d/4]) for the next iteration's preconditions.
		if err := trace.CheckRateBounds(next, rat.Rat{}, extDur, one, p.RateBandHigh()); err != nil {
			return nil, fmt.Errorf("lowerbound: round %d property 1.4: %w", k, err)
		}
		if err := trace.CheckDelayBounds(next, rat.Rat{}, extDur, rat.MustFrac(1, 4), rat.MustFrac(3, 4)); err != nil {
			return nil, fmt.Errorf("lowerbound: round %d property 1.5: %w", k, err)
		}

		round.ExtensionLoss = as.SkewBeta.Sub(next.FinalSkew(ik, jk))

		// Claim 8.5's pigeonhole: the best aligned sub-pair at separation
		// n_{k+1} inherits at least a 1/Branch share of the pair's skew.
		bestI, first := ik, true
		var bestSkew rat.Rat
		for i2 := ik; i2+int(nk1) <= jk; i2 += int(nk1) {
			skew := next.FinalSkew(i2, i2+int(nk1))
			if first || skew.Greater(bestSkew) {
				first = false
				bestI, bestSkew = i2, skew
			}
		}
		round.NextNK = nk1
		round.NextIK, round.NextJK = bestI, bestI+int(nk1)
		round.NextSkew = bestSkew
		round.Target = rat.FromInt(int64(k + 1)).Mul(rat.FromInt(nk1)).Div(rat.FromInt(24))
		round.TargetMet = bestSkew.GreaterEq(round.Target)
		res.Rounds = append(res.Rounds, round)

		alpha, cfg = next, nextCfg
		ik, jk, nk = bestI, bestI+int(nk1), nk1
	}

	res.Final = alpha
	res.FinalCfg = cfg
	first := true
	for i := 0; i+1 < d; i++ {
		skew := alpha.FinalSkew(i, i+1)
		if first || skew.Greater(res.AdjacentSkew) {
			first = false
			res.AdjacentI = i
			res.AdjacentSkew = skew
		}
	}
	return res, nil
}
