// Package lowerbound implements the adversarial constructions of Fan &
// Lynch, "Gradient Clock Synchronization" (PODC 2004), as executable,
// self-verifying procedures.
//
// Each construction takes a concrete clock synchronization protocol, builds
// the executions from the corresponding proof by surgery on hardware-clock
// rate schedules and message delays, re-simulates them, and checks every
// side condition the proof relies on:
//
//   - Shift (§5, claim 1): the folklore two-node argument giving f(d) = Ω(d).
//   - AddSkew (Lemma 6.1): an execution transformation that adds
//     (x_j−x_i)/12 skew between two chosen nodes while remaining
//     indistinguishable to every node.
//   - BoundedIncrease (Lemma 7.1): the speed-up probe showing a node that
//     raises its logical clock quickly can be driven to violate any claimed
//     f(1) bound.
//   - MainTheorem (Theorem 8.1): the iterated construction forcing
//     Ω(log D / log log D) skew between some adjacent pair on a line.
//   - Counterexample (§2): the 3-node schedule under which max-based
//     algorithms put D+1 skew between nodes at distance 1.
//
// All checks are exact (rational arithmetic); a construction that fails any
// side condition returns an error instead of a certificate.
package lowerbound

import (
	"fmt"

	"gcs/internal/rat"
)

// Params are the drift-derived constants of the constructions.
type Params struct {
	// Rho is the hardware drift bound ρ ∈ (0, 1).
	Rho rat.Rat
}

// DefaultParams uses ρ = 1/2: large enough that drift effects appear in
// short simulations, and giving the small exact constants τ = 2, γ = 10/9.
func DefaultParams() Params {
	return Params{Rho: rat.MustFrac(1, 2)}
}

// Validate checks 0 < ρ < 1.
func (p Params) Validate() error {
	if p.Rho.Sign() <= 0 || p.Rho.GreaterEq(rat.FromInt(1)) {
		return fmt.Errorf("lowerbound: ρ = %s outside (0, 1)", p.Rho)
	}
	return nil
}

// Tau returns τ = 1/ρ (the paper's window-length unit).
func (p Params) Tau() rat.Rat { return rat.FromInt(1).Div(p.Rho) }

// Gamma returns γ = 1 + ρ/(4+ρ), the speed-up rate of the Add Skew lemma.
// Note γ ≤ 1 + ρ/4 < 1 + ρ/2, so sped-up clocks stay within the rate band
// [1, 1+ρ/2] that the main theorem maintains (claim 6.3 / property 1.4).
func (p Params) Gamma() rat.Rat {
	one := rat.FromInt(1)
	return one.Add(p.Rho.Div(rat.FromInt(4).Add(p.Rho)))
}

// GainFraction returns the guaranteed Add Skew gain per unit of position
// separation: (1/2)·τ·(1−1/γ) = 1/(2(4+2ρ)) ≥ 1/12 for ρ < 1. The paper
// states the weaker constant 1/12 (claim 6.5).
func (p Params) GainFraction() rat.Rat {
	one := rat.FromInt(1)
	gamma := p.Gamma()
	return p.Tau().Mul(one.Sub(one.Div(gamma))).Div(rat.FromInt(2))
}

// RateBandHigh returns 1 + ρ/2, the upper rate bound that property 1.4 of
// the main theorem maintains on every execution α_k.
func (p Params) RateBandHigh() rat.Rat {
	return rat.FromInt(1).Add(p.Rho.Div(rat.FromInt(2)))
}
