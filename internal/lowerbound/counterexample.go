package lowerbound

import (
	"fmt"

	"gcs/internal/clock"
	"gcs/internal/network"
	"gcs/internal/piecewise"
	"gcs/internal/rat"
	"gcs/internal/sim"
	"gcs/internal/trace"
)

// CounterexampleInput configures the §2 scenario showing that max-based
// algorithms violate the gradient property.
//
// Three nodes x, y, z in a line: d(x,y) = Dc, d(y,z) = 1, d(x,z) = Dc + 1.
// Node x's hardware clock runs at 1+ρ/2 while y's and z's run at 1. Messages
// from x travel at full delay (Dc to y, Dc+1 to z) until SwitchAt, when the
// x→y delay drops to (near) zero: y learns how far ahead x really is and
// jumps, while z is still one second behind the news — so for about a
// second, y is ≈ drift·Dc ahead of z although d(y,z) = 1.
type CounterexampleInput struct {
	Protocol sim.Protocol
	// Dc is the x−y distance (the paper's "D").
	Dc rat.Rat
	// SwitchAt is the real time at which the x→y delay collapses.
	SwitchAt rat.Rat
	// Duration of the run (> SwitchAt + a few units).
	Duration rat.Rat
	Params   Params
}

// CounterexampleResult certifies the gradient violation.
type CounterexampleResult struct {
	Exec *trace.Execution
	// PeakYZ is the largest L_y − L_z observed after the switch, with the
	// time it occurred. The gradient property would require it ≤ f(1); here
	// it scales with Dc.
	PeakYZ piecewise.Extremum
	// PreSwitchYZ is the largest |L_y − L_z| before the switch (small).
	PreSwitchYZ piecewise.Extremum
	// Ratio = PeakYZ / Dc (reported as float for readability).
	Ratio float64
}

// Counterexample runs the §2 construction against the given protocol
// (intended: MaxGossip / MaxFlood; running it against Gradient shows the
// violation disappearing).
func Counterexample(in CounterexampleInput) (*CounterexampleResult, error) {
	p := in.Params
	if err := p.Validate(); err != nil {
		return nil, err
	}
	one := rat.FromInt(1)
	if in.Dc.Less(one) {
		return nil, fmt.Errorf("lowerbound: Dc = %s < 1", in.Dc)
	}
	if !in.SwitchAt.Greater(rat.Rat{}) || !in.Duration.Greater(in.SwitchAt) {
		return nil, fmt.Errorf("lowerbound: need 0 < SwitchAt < Duration")
	}
	const x, y, z = 0, 1, 2
	dxy := in.Dc
	dyz := one
	dxz := in.Dc.Add(one)
	dist := [][]rat.Rat{
		{{}, dxy, dxz},
		{dxy, {}, dyz},
		{dxz, dyz, {}},
	}
	adj := [][]int{{1, 2}, {0, 2}, {0, 1}}
	net, err := network.New(fmt.Sprintf("counterexample-D%s", in.Dc), dist, adj)
	if err != nil {
		return nil, err
	}

	// x runs fast; y and z at 1 (the paper wants h_x > h_y > h_z; equal
	// rates for y and z suffice because the delay asymmetry does the work).
	scheds := []*clock.Schedule{
		clock.Constant(p.RateBandHigh()),
		clock.Constant(one),
		clock.Constant(one),
	}

	switchAt := in.SwitchAt
	adv := sim.FuncAdversary(func(from, to int, _ uint64, sendReal rat.Rat, bound rat.Rat) rat.Rat {
		switch {
		case from == x && to == y:
			if sendReal.Less(switchAt) {
				return bound // full delay Dc: y's view of x is stale
			}
			return rat.Rat{} // the news arrives instantly
		case from == x && to == z:
			return bound // z stays maximally stale throughout
		case from == y && to == z:
			return bound // the catch-up reaches z one second late
		default:
			return rat.Rat{} // return traffic is irrelevant; keep it fast
		}
	})

	exec, err := sim.Run(sim.Config{
		Net:       net,
		Schedules: scheds,
		Adversary: adv,
		Protocol:  in.Protocol,
		Duration:  in.Duration,
		Rho:       p.Rho,
	})
	if err != nil {
		return nil, fmt.Errorf("lowerbound: counterexample run: %w", err)
	}

	res := &CounterexampleResult{Exec: exec}
	res.PeakYZ = piecewise.MaxDiff(exec.Logical[y], exec.Logical[z], switchAt, in.Duration)
	// The pre-switch window stops just short of SwitchAt so the jump that
	// occurs at the switch itself (right-continuous evaluation) is not
	// attributed to the quiet phase.
	preEnd := switchAt.Sub(one)
	if preEnd.Sign() < 0 {
		preEnd = rat.Rat{}
	}
	res.PreSwitchYZ = piecewise.MaxAbsDiff(exec.Logical[y], exec.Logical[z], rat.Rat{}, preEnd)
	res.Ratio = res.PeakYZ.Val.Float64() / in.Dc.Float64()
	return res, nil
}
