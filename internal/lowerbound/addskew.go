package lowerbound

import (
	"fmt"

	"gcs/internal/clock"
	"gcs/internal/rat"
	"gcs/internal/sim"
	"gcs/internal/trace"
)

// AddSkewInput describes an application of Lemma 6.1.
//
// The lemma is stated in the paper for the line network with nodes 1..D at
// unit spacing; it generalizes verbatim to any set of nodes on a line with
// positions x_0 ≤ x_1 ≤ … and distances d(a,b) = |x_a − x_b| (the two-node
// Ω(d) argument is the special case with positions {0, d}). All formulas
// below substitute position differences for the paper's index differences.
type AddSkewInput struct {
	// Cfg is the configuration that produced Alpha (protocol, network,
	// schedules, adversary, ρ).
	Cfg sim.Config
	// Alpha is the base execution, of duration Cfg.Duration = T.
	Alpha *trace.Execution
	// Positions are the line coordinates x_k; Cfg.Net distances must equal
	// |x_a − x_b|.
	Positions []rat.Rat
	// I, J are the nodes whose skew the construction increases (x_I < x_J).
	I, J int
	// S is the start of the clean window: on [S, T] every hardware rate in
	// Alpha must be exactly 1 and every message received must have delay
	// exactly |x_a−x_b|/2, with T = S + τ·(x_J − x_I).
	S rat.Rat
	// Params supplies ρ (and hence τ, γ).
	Params Params
}

// AddSkewResult is the verified certificate of one lemma application.
type AddSkewResult struct {
	// Beta is the constructed execution of duration TPrime.
	Beta *trace.Execution
	// BetaCfg is the configuration that re-simulated Beta (surgery schedules
	// plus the scripted-delay adversary).
	BetaCfg sim.Config
	// TPrime = S + (τ/γ)(x_J − x_I), the duration of Beta.
	TPrime rat.Rat
	// Tk are the per-node speed-up times: node k runs at rate γ on
	// (Tk[k], T'].
	Tk []rat.Rat
	// SkewAlpha = L^α_I(T) − L^α_J(T); SkewBeta = L^β_I(T') − L^β_J(T').
	SkewAlpha, SkewBeta rat.Rat
	// Gain = SkewBeta − SkewAlpha; GuaranteedGain = (x_J − x_I)·(1/(8+4ρ))
	// ≥ (x_J − x_I)/12, the lemma's claim.
	Gain, GuaranteedGain rat.Rat
	// InFlight marks messages that were sent but not received in α; their β
	// delays were pinned to the maximum to keep them undelivered. When β is
	// extended (main theorem), these are re-assigned midpoint delays, while
	// messages delivered in α whose remapped receipt falls beyond T' must
	// keep their remapped delays.
	InFlight map[trace.MsgKey]bool
}

// checkAddSkewPre verifies the lemma's preconditions on α.
func checkAddSkewPre(in AddSkewInput, T rat.Rat) error {
	if err := in.Params.Validate(); err != nil {
		return err
	}
	n := in.Cfg.Net.N()
	if len(in.Positions) != n {
		return fmt.Errorf("lowerbound: %d positions for %d nodes", len(in.Positions), n)
	}
	for k := 1; k < n; k++ {
		if in.Positions[k].Less(in.Positions[k-1]) {
			return fmt.Errorf("lowerbound: positions not nondecreasing at %d", k)
		}
	}
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			want := in.Positions[b].Sub(in.Positions[a])
			if !in.Cfg.Net.Dist(a, b).Equal(want) {
				return fmt.Errorf("lowerbound: d(%d,%d)=%s but positions give %s", a, b, in.Cfg.Net.Dist(a, b), want)
			}
		}
	}
	if in.I < 0 || in.J >= n || !in.Positions[in.I].Less(in.Positions[in.J]) {
		return fmt.Errorf("lowerbound: invalid pair (%d,%d)", in.I, in.J)
	}
	if in.S.Sign() < 0 {
		return fmt.Errorf("lowerbound: negative window start %s", in.S)
	}
	if !T.Equal(in.Cfg.Duration) {
		return fmt.Errorf("lowerbound: window end %s != α duration %s (need ℓ(α) = S + τ(x_J−x_I))", T, in.Cfg.Duration)
	}
	// Precondition 2: rate exactly 1 on [S, T].
	one := rat.FromInt(1)
	if err := trace.CheckRateBounds(in.Alpha, in.S, T, one, one); err != nil {
		return fmt.Errorf("lowerbound: add-skew precondition (rates): %w", err)
	}
	// Precondition 1: delay exactly d/2 for messages received in [S, T].
	half := rat.MustFrac(1, 2)
	if err := trace.CheckDelayBounds(in.Alpha, in.S, T, half, half); err != nil {
		return fmt.Errorf("lowerbound: add-skew precondition (delays): %w", err)
	}
	return nil
}

// remap is the event-time transformation of the lemma: identity up to Tk,
// compressed by 1/γ afterwards.
func remap(t, tk, gamma rat.Rat) rat.Rat {
	if t.LessEq(tk) {
		return t
	}
	return tk.Add(t.Sub(tk).Div(gamma))
}

// AddSkew applies Lemma 6.1: it constructs β from α, re-simulates it, and
// verifies indistinguishability, the rate bounds, the delay bounds, and the
// skew gain. Any violated side condition returns an error.
func AddSkew(in AddSkewInput) (*AddSkewResult, error) {
	tau := in.Params.Tau()
	gamma := in.Params.Gamma()
	span := in.Positions[in.J].Sub(in.Positions[in.I])
	T := in.S.Add(tau.Mul(span))
	if err := checkAddSkewPre(in, T); err != nil {
		return nil, err
	}
	tPrime := in.S.Add(tau.Div(gamma).Mul(span))
	n := in.Cfg.Net.N()

	// Per-node speed-up times Tk (using positions in place of indices).
	tk := make([]rat.Rat, n)
	for k := 0; k < n; k++ {
		switch {
		case in.Positions[k].LessEq(in.Positions[in.I]):
			tk[k] = in.S
		case in.Positions[k].GreaterEq(in.Positions[in.J]):
			tk[k] = tPrime
		default:
			tk[k] = in.S.Add(tau.Div(gamma).Mul(in.Positions[k].Sub(in.Positions[in.I])))
		}
	}

	// Surgery on the rate schedules: keep α's rates up to Tk, run at γ after.
	// (The lemma's statement writes rate 1 before Tk because α's window rates
	// are 1; outside the window the rates must simply be unchanged for the
	// executions to be identical up to S.)
	scheds := make([]*clock.Schedule, n)
	for k := 0; k < n; k++ {
		s, err := in.Cfg.Schedules[k].WithRateFrom(tk[k], gamma)
		if err != nil {
			return nil, fmt.Errorf("lowerbound: schedule surgery node %d: %w", k, err)
		}
		scheds[k] = s
	}

	// Scripted delays realizing the remapped receive times.
	script := make(map[trace.MsgKey]rat.Rat, len(in.Alpha.Ledger))
	inFlight := make(map[trace.MsgKey]bool)
	for key, rec := range in.Alpha.Ledger {
		sendB := remap(rec.SendReal, tk[key.From], gamma)
		if !rec.Delivered {
			// In flight at ℓ(α): keep it in flight in β by assigning the
			// maximum delay; the indistinguishability check would catch any
			// early arrival this fails to prevent.
			script[key] = in.Cfg.Net.Dist(key.From, key.To)
			inFlight[key] = true
			continue
		}
		recvB := remap(rec.RecvReal, tk[key.To], gamma)
		delay := recvB.Sub(sendB)
		if delay.Sign() < 0 {
			return nil, fmt.Errorf("lowerbound: remapped delay for %v is negative (%s)", key, delay)
		}
		script[key] = delay
	}

	betaCfg := in.Cfg
	betaCfg.Schedules = scheds
	betaCfg.Adversary = sim.ScriptedAdversary{Delays: script, Fallback: failingAdversary{}}
	betaCfg.Duration = tPrime

	beta, err := sim.Run(betaCfg)
	if err != nil {
		return nil, fmt.Errorf("lowerbound: β re-simulation: %w", err)
	}

	// Claim 6.2: indistinguishability.
	if err := trace.CheckIndistinguishable(in.Alpha, beta); err != nil {
		return nil, fmt.Errorf("lowerbound: add-skew claim 6.2: %w", err)
	}
	// Claim 6.3: β's rates within [1, γ] on (S, T'] and unchanged before.
	if err := trace.CheckRateBounds(beta, in.S, tPrime, rat.FromInt(1), gamma); err != nil {
		return nil, fmt.Errorf("lowerbound: add-skew claim 6.3: %w", err)
	}
	// Claim 6.4: delays of messages received in (S, T'] within
	// [d/4, 3d/4].
	if err := trace.CheckDelayBounds(beta, in.S, tPrime, rat.MustFrac(1, 4), rat.MustFrac(3, 4)); err != nil {
		return nil, fmt.Errorf("lowerbound: add-skew claim 6.4: %w", err)
	}

	res := &AddSkewResult{
		Beta:           beta,
		BetaCfg:        betaCfg,
		TPrime:         tPrime,
		Tk:             tk,
		SkewAlpha:      in.Alpha.FinalSkew(in.I, in.J),
		SkewBeta:       beta.FinalSkew(in.I, in.J),
		GuaranteedGain: in.Params.GainFraction().Mul(span),
		InFlight:       inFlight,
	}
	res.Gain = res.SkewBeta.Sub(res.SkewAlpha)
	// Claim 6.5: the skew gain.
	if res.Gain.Less(res.GuaranteedGain) {
		return nil, fmt.Errorf("lowerbound: add-skew claim 6.5 failed: gain %s < guaranteed %s",
			res.Gain, res.GuaranteedGain)
	}
	return res, nil
}

// failingAdversary fails the run when consulted: the scripted delays must
// cover every send a faithful re-simulation performs, so reaching the
// fallback means the construction diverged.
type failingAdversary struct{}

var _ sim.Adversary = failingAdversary{}

// Delay returns an out-of-bounds value, failing the simulation with a
// diagnosable error.
func (failingAdversary) Delay(int, int, uint64, rat.Rat, rat.Rat) rat.Rat {
	return rat.FromInt(-1)
}
