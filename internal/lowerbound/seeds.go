// Seed exporters: every certified construction can hand its adversary — the
// scripted message delays plus the surgically modified hardware schedules of
// the execution it built — to the worst-case search (internal/search) as an
// initial candidate. Seeded with a construction, the automated hunter starts
// at, not below, the proven bound, and mutates outward from there.

package lowerbound

import (
	"fmt"

	"gcs/internal/clock"
	"gcs/internal/rat"
	"gcs/internal/sim"
	"gcs/internal/trace"
)

// AdversarySeed is a replayable worst-case adversary extracted from a
// construction: the exact delay script and hardware schedules of the
// constructed execution. Convert it to a search.Seed (the structures are
// field-identical) to inject it into a Search beam.
type AdversarySeed struct {
	// Name labels the construction the seed came from.
	Name string
	// Script is the per-message delay script of the constructed execution.
	Script map[trace.MsgKey]rat.Rat
	// Schedules are the construction's hardware schedules (rate surgery
	// included), one per node.
	Schedules []*clock.Schedule
}

// seedFromCfg extracts the script and schedules from a re-simulation config
// whose adversary is scripted.
func seedFromCfg(name string, cfg sim.Config) (AdversarySeed, error) {
	sa, ok := cfg.Adversary.(sim.ScriptedAdversary)
	if !ok {
		return AdversarySeed{}, fmt.Errorf("lowerbound: %s adversary is %T, not scripted; no seed to export", name, cfg.Adversary)
	}
	script := make(map[trace.MsgKey]rat.Rat, len(sa.Delays))
	for k, v := range sa.Delays {
		script[k] = v
	}
	return AdversarySeed{
		Name:      name,
		Script:    script,
		Schedules: append([]*clock.Schedule(nil), cfg.Schedules...),
	}, nil
}

// Seed exports the β execution's adversary: the remapped delay script plus
// the Tk/γ speed-up schedules of Lemma 6.1.
func (r *AddSkewResult) Seed() (AdversarySeed, error) {
	return seedFromCfg("add-skew β", r.BetaCfg)
}

// Seed exports the two-node Shift construction's β execution as a search
// seed: a candidate that already realizes the certified Ω(d) separation.
func (r *ShiftResult) Seed() (AdversarySeed, error) {
	return seedFromCfg("shift β", r.BetaCfg)
}

// Seed exports the final execution α_R of the main theorem's iterated
// construction: the composed delay script and rate schedules that force the
// Ω(log D / log log D) adjacent skew.
func (r *MainTheoremResult) Seed() (AdversarySeed, error) {
	return seedFromCfg("main-theorem α_R", r.FinalCfg)
}
