package scenario

import (
	"bytes"
	"testing"
)

// TestRegistriesBuild: both registries construct without error, names are
// unique, every scenario validates, and the smoke subset covers every
// family, fault kind, and drift profile it promises CI.
func TestRegistriesBuild(t *testing.T) {
	for _, reg := range []struct {
		name  string
		build func() ([]Scenario, error)
		want  int
	}{
		{"smoke", Smoke, 5},
		{"matrix", Matrix, 24},
	} {
		scs, err := reg.build()
		if err != nil {
			t.Fatalf("%s: %v", reg.name, err)
		}
		if len(scs) != reg.want {
			t.Fatalf("%s: %d scenarios, want %d", reg.name, len(scs), reg.want)
		}
		seen := make(map[string]bool)
		for _, sc := range scs {
			if seen[sc.Name] {
				t.Errorf("%s: duplicate scenario name %q", reg.name, sc.Name)
			}
			seen[sc.Name] = true
			if err := sc.Model.Validate(); err != nil {
				t.Errorf("%s: %s: %v", reg.name, sc.Name, err)
			}
			if sc.Net == nil || sc.Protocol == nil || sc.Duration.Sign() <= 0 {
				t.Errorf("%s: %s: incomplete scenario %+v", reg.name, sc.Name, sc)
			}
			// Node 0 is the adaptive source and must never be crashed.
			if _, ok := sc.Model.Crash[0]; ok {
				t.Errorf("%s: %s crashes node 0, the adaptive source", reg.name, sc.Name)
			}
		}
	}

	// Smoke coverage: every fault kind and drift profile appears.
	scs, err := Smoke()
	if err != nil {
		t.Fatal(err)
	}
	faults, drifts, protos := map[string]bool{}, map[string]bool{}, map[string]bool{}
	for _, sc := range scs {
		faults[sc.Fault] = true
		drifts[sc.Drift.String()] = true
		protos[sc.Protocol.Name()] = true
	}
	for _, f := range []string{"none", "crash", "loss", "partition", "churn"} {
		if !faults[f] {
			t.Errorf("smoke subset misses fault kind %q", f)
		}
	}
	for _, d := range []DriftProfile{DriftHomogeneous, DriftHeterogeneous, DriftBursty} {
		if !drifts[d.String()] {
			t.Errorf("smoke subset misses drift profile %q", d)
		}
	}
	if len(protos) < 2 {
		t.Errorf("smoke subset runs %d protocols, want both max-based ones", len(protos))
	}
}

// TestRunScenarioDeterministic: the same scenario run twice in one process
// yields identical reports and byte-identical golden JSON — the property the
// committed BENCH_matrix.json diff check in CI stands on.
func TestRunScenarioDeterministic(t *testing.T) {
	scs, err := Smoke()
	if err != nil {
		t.Fatal(err)
	}
	sc := scs[0] // torus-3x3 fault-free: the cheapest cell
	repA, err := RunScenario(sc, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	repB, err := RunScenario(sc, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if repA != repB {
		t.Fatalf("reports differ across reruns:\n%+v\n%+v", repA, repB)
	}
	if !repA.Pass {
		t.Fatalf("smoke scenario %s fails its certified bound: worst %s > bound %s",
			repA.Name, repA.Worst, repA.Bound)
	}
	bytesA, err := MarshalReports([]Report{repA})
	if err != nil {
		t.Fatal(err)
	}
	bytesB, err := MarshalReports([]Report{repB})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bytesA, bytesB) {
		t.Fatal("marshaled goldens differ across reruns")
	}
	if bytesA[len(bytesA)-1] != '\n' {
		t.Fatal("golden JSON misses its trailing newline")
	}
}

// TestCertifiedBoundShape: the gate takes the minimum of its two envelopes
// and faults only ever widen it.
func TestCertifiedBoundShape(t *testing.T) {
	base := BoundInput{
		Diameter: ri(2),
		Period:   ri(1),
		Rho:      rf(1, 2),
		Duration: ri(16),
	}
	bound, term := CertifiedBound(base)
	if bound.Sign() <= 0 {
		t.Fatalf("bound %s not positive", bound)
	}
	if term != "diameter" {
		t.Fatalf("fault-free long run gated by %q, want the diameter term", term)
	}

	// A short horizon flips the gate to the drift cap, which is exactly
	// 2ρ·dur.
	short := base
	short.Duration = ri(2)
	capBound, capTerm := CertifiedBound(short)
	if capTerm != "drift-cap" {
		t.Fatalf("short run gated by %q, want drift-cap", capTerm)
	}
	if want := ri(2).Mul(short.Rho).Mul(short.Duration); !capBound.Equal(want) {
		t.Fatalf("drift cap %s, want 2ρ·dur = %s", capBound, want)
	}

	// Each fault kind widens (or keeps) the propagation envelope, never
	// narrows it.
	for _, c := range []struct {
		name  string
		model FaultModel
	}{
		{"crash", FaultModel{Crash: map[int][]Window{1: {{From: ri(4), To: ri(6)}}}}},
		{"loss", FaultModel{LossNum: 1, LossDen: 8}},
		{"partition", FaultModel{Partitions: []Partition{{Window: Window{From: ri(4), To: ri(6)}}}}},
		{"churn", FaultModel{ChurnNum: 1, ChurnDen: 8, ChurnPeriod: ri(2)}},
	} {
		faulted := base
		faulted.Fault = c.model
		fb, _ := CertifiedBound(faulted)
		if fb.Less(bound) {
			t.Errorf("%s: faulted bound %s below fault-free %s", c.name, fb, bound)
		}
	}

	// A larger diameter propagation envelope is strictly wider.
	wider := base
	wider.Diameter = ri(4)
	wb, _ := CertifiedBound(wider)
	if !bound.Less(wb) {
		t.Errorf("diameter 4 bound %s not above diameter 2 bound %s", wb, bound)
	}
}
