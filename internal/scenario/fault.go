// Package scenario is the deterministic, seeded scenario matrix: topology
// generator families (internal/network) × fault models (this file) × drift
// profiles (drift.go), each instance run through both the scripted beam
// search and the adaptive online scheduler and gated against a certified
// D-dependent bound (bound.go). The committed BENCH_matrix.json golden is
// regenerated and diff-checked in CI, so "does searched skew track the
// bound on every family?" is a standing conformance test, not a one-off
// experiment.
package scenario

import (
	"fmt"
	"hash/fnv"
	"sort"

	"gcs/internal/engine"
	"gcs/internal/rat"
)

// Window is a half-open real-time interval [From, To).
type Window struct {
	From, To rat.Rat
}

// Contains reports whether t lies in [From, To).
func (w Window) Contains(t rat.Rat) bool { return w.From.LessEq(t) && t.Less(w.To) }

func (w Window) validate(what string) error {
	if w.From.Sign() < 0 || !w.From.Less(w.To) {
		return fmt.Errorf("scenario: %s window [%s, %s) is empty or negative", what, w.From, w.To)
	}
	return nil
}

// Partition is a transient network partition: while Window is active, every
// message with exactly one endpoint in Side is dropped. Messages within
// either side still flow.
type Partition struct {
	Window Window
	// Side marks one side of the cut, indexed by node ID. Immutable after
	// construction: FaultModel values are shared across engine forks.
	Side []bool
}

// FaultModel is a deterministic, composable fault configuration. Every drop
// decision is a pure function of the message identity (from, to, per-pair
// seq) and its send time plus the model's immutable configuration, so fault
// behavior replays identically across engine forks, prefix-cached search
// trunks, and both arithmetic lanes. The zero value is the fault-free model.
type FaultModel struct {
	// Crash holds per-node fail-silent windows: while any window of
	// Crash[i] is active, every message to or from node i is dropped. The
	// window's end is the restart — the node's hardware clock keeps running
	// throughout (a crashed node goes mute, it does not reset), matching
	// the paper's model where clocks are never restarted.
	Crash map[int][]Window

	// LossNum/LossDen drop each message independently with probability
	// LossNum/LossDen, decided by an FNV-1a hash of (LossSeed, from, to,
	// seq) — deterministic and order-independent.
	LossNum, LossDen int64
	LossSeed         uint64

	// Partitions are transient cuts; see Partition.
	Partitions []Partition

	// Churn takes undirected edges down for whole periods: during period k
	// (real time [k·ChurnPeriod, (k+1)·ChurnPeriod)), edge {i, j} is down
	// iff hash(ChurnSeed, min(i,j), max(i,j), k) mod ChurnDen < ChurnNum.
	// Messages on a down edge are dropped in both directions.
	ChurnNum, ChurnDen int64
	ChurnPeriod        rat.Rat
	ChurnSeed          uint64
}

// Validate checks the configuration is well-formed.
func (m FaultModel) Validate() error {
	for node, ws := range m.Crash {
		for _, w := range ws {
			if err := w.validate(fmt.Sprintf("crash[%d]", node)); err != nil {
				return err
			}
		}
	}
	if m.LossNum < 0 || (m.LossNum > 0 && m.LossDen <= 0) {
		return fmt.Errorf("scenario: loss probability %d/%d invalid", m.LossNum, m.LossDen)
	}
	if m.LossNum > 0 && m.LossNum >= m.LossDen {
		return fmt.Errorf("scenario: loss probability %d/%d would drop every message", m.LossNum, m.LossDen)
	}
	for i, p := range m.Partitions {
		if err := p.Window.validate(fmt.Sprintf("partition[%d]", i)); err != nil {
			return err
		}
	}
	if m.ChurnNum < 0 || (m.ChurnNum > 0 && m.ChurnDen <= 0) {
		return fmt.Errorf("scenario: churn probability %d/%d invalid", m.ChurnNum, m.ChurnDen)
	}
	if m.ChurnNum > 0 {
		if m.ChurnNum >= m.ChurnDen {
			return fmt.Errorf("scenario: churn probability %d/%d would keep every edge down", m.ChurnNum, m.ChurnDen)
		}
		if m.ChurnPeriod.Sign() <= 0 {
			return fmt.Errorf("scenario: churn period %s must be positive", m.ChurnPeriod)
		}
	}
	return nil
}

// IsZero reports whether the model injects no faults at all.
func (m FaultModel) IsZero() bool {
	return len(m.Crash) == 0 && m.LossNum == 0 && len(m.Partitions) == 0 && m.ChurnNum == 0
}

// Drop reports whether the message from→to with per-pair sequence seq, sent
// at real time sendReal, is lost. Pure in its arguments and the model.
func (m FaultModel) Drop(from, to int, seq uint64, sendReal rat.Rat) bool {
	for _, w := range m.Crash[from] {
		if w.Contains(sendReal) {
			return true
		}
	}
	for _, w := range m.Crash[to] {
		if w.Contains(sendReal) {
			return true
		}
	}
	if m.LossNum > 0 &&
		int64(fnvMix(m.LossSeed, uint64(from), uint64(to), seq)%uint64(m.LossDen)) < m.LossNum {
		return true
	}
	for _, p := range m.Partitions {
		if p.Window.Contains(sendReal) && side(p.Side, from) != side(p.Side, to) {
			return true
		}
	}
	if m.ChurnNum > 0 {
		lo, hi := from, to
		if hi < lo {
			lo, hi = hi, lo
		}
		k := sendReal.Div(m.ChurnPeriod).Floor()
		if int64(fnvMix(m.ChurnSeed, uint64(lo), uint64(hi), uint64(k))%uint64(m.ChurnDen)) < m.ChurnNum {
			return true
		}
	}
	return false
}

// CrashTotal returns the summed length of all crash and partition windows —
// the outage time the certified bound must grant the protocol.
func (m FaultModel) CrashTotal() rat.Rat {
	var total rat.Rat
	// Map iteration order does not matter: addition is commutative and
	// exact, so the sum is identical for any order.
	nodes := make([]int, 0, len(m.Crash))
	for node := range m.Crash {
		nodes = append(nodes, node)
	}
	sort.Ints(nodes)
	for _, node := range nodes {
		for _, w := range m.Crash[node] {
			total = total.Add(w.To.Sub(w.From))
		}
	}
	for _, p := range m.Partitions {
		total = total.Add(p.Window.To.Sub(p.Window.From))
	}
	return total
}

func side(s []bool, node int) bool { return node < len(s) && s[node] }

// fnvMix hashes 64-bit words with FNV-1a, little-endian per word (the same
// construction engine.HashAdversary uses for order-independent decisions).
func fnvMix(vals ...uint64) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, v := range vals {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		_, _ = h.Write(buf[:])
	}
	return h.Sum64()
}

// FaultAdversary layers a FaultModel over an inner delay adversary: Drop
// removes faulted messages before the engine asks anyone for a delay, and
// everything else — delay decisions, observer feedback, fork cloning, lane
// hints — passes through to Inner. It is a value type with no mutable state
// of its own, so trunk/fork byte-identity reduces to the Inner adversary's
// own contract.
type FaultAdversary struct {
	Model FaultModel
	Inner engine.Adversary
}

var (
	_ engine.Adversary         = FaultAdversary{}
	_ engine.CheckedAdversary  = FaultAdversary{}
	_ engine.DropAdversary     = FaultAdversary{}
	_ engine.AdversaryWrapper  = FaultAdversary{}
	_ engine.StatefulAdversary = FaultAdversary{}
	_ engine.DenomHinter       = FaultAdversary{}
)

// Delay implements Adversary by delegation.
func (f FaultAdversary) Delay(from, to int, seq uint64, sendReal, bound rat.Rat) rat.Rat {
	return f.Inner.Delay(from, to, seq, sendReal, bound)
}

// DelayChecked implements CheckedAdversary: Inner's checked path when it has
// one, its plain Delay otherwise.
func (f FaultAdversary) DelayChecked(from, to int, seq uint64, sendReal, bound rat.Rat) (rat.Rat, error) {
	if ca, ok := f.Inner.(engine.CheckedAdversary); ok {
		return ca.DelayChecked(from, to, seq, sendReal, bound)
	}
	return f.Inner.Delay(from, to, seq, sendReal, bound), nil
}

// Drop implements engine.DropAdversary as a pure function of the message
// identity and the immutable model.
func (f FaultAdversary) Drop(from, to int, seq uint64, sendReal rat.Rat) bool {
	return f.Model.Drop(from, to, seq, sendReal)
}

// Unwrap implements engine.AdversaryWrapper: observer feedback and further
// chain walking reach the inner adversary.
func (f FaultAdversary) Unwrap() engine.Adversary { return f.Inner }

// CloneAdversary implements StatefulAdversary transparently: the model is
// immutable and shared, a stateful Inner is cloned. Returns nil (not
// cloneable) when Inner is stateful but refuses to clone.
func (f FaultAdversary) CloneAdversary() engine.Adversary {
	if f.Inner == nil {
		return f
	}
	inner, ok := engine.CloneAdversaryState(f.Inner)
	if !ok {
		return nil
	}
	return FaultAdversary{Model: f.Model, Inner: inner}
}

// DelayDenom implements engine.DenomHinter by delegation, so a faulted run
// keeps the fixed-point lane whenever the inner adversary's delays are
// quantized. Dropping the hint here would silently push every faulted
// search onto the rat lane.
func (f FaultAdversary) DelayDenom() int64 {
	if h, ok := f.Inner.(engine.DenomHinter); ok {
		return h.DelayDenom()
	}
	return 0
}
