package scenario

import (
	"fmt"

	"gcs/internal/clock"
	"gcs/internal/rat"
)

// DriftProfile selects the hardware-rate environment a scenario starts
// from. Search rate mutations may still push individual nodes anywhere in
// [1−ρ, 1+ρ]; the profile is the base landscape those mutations perturb.
type DriftProfile int

const (
	// DriftHomogeneous runs every node at rate 1.
	DriftHomogeneous DriftProfile = iota
	// DriftHeterogeneous gives every node its own constant rate, spread
	// deterministically across the inner band [1−ρ/2, 1+ρ/2].
	DriftHeterogeneous
	// DriftBursty starts homogeneous and applies windowed rate surgery to
	// the middle third of the run: even nodes burst to 1+ρ/2, odd nodes
	// sag to 1−ρ/2, then everyone returns to rate 1.
	DriftBursty
)

// String names the profile for reports.
func (p DriftProfile) String() string {
	switch p {
	case DriftHomogeneous:
		return "homogeneous"
	case DriftHeterogeneous:
		return "heterogeneous"
	case DriftBursty:
		return "bursty"
	}
	return fmt.Sprintf("drift(%d)", int(p))
}

// driftSeed decorrelates heterogeneous rate assignments across scenarios.
const driftSeed = 0x5ce0a11ce

// Schedules builds the profile's per-node hardware schedules for n nodes
// over [0, dur] under drift bound rho.
func (p DriftProfile) Schedules(n int, rho, dur rat.Rat) ([]*clock.Schedule, error) {
	one := rat.FromInt(1)
	half := rho.Div(rat.FromInt(2))
	switch p {
	case DriftHomogeneous:
		scheds := make([]*clock.Schedule, n)
		for i := range scheds {
			scheds[i] = clock.Constant(one)
		}
		return scheds, nil
	case DriftHeterogeneous:
		return clock.Diverse(n, one.Sub(half), one.Add(half), 8, driftSeed)
	case DriftBursty:
		third := dur.Div(rat.FromInt(3))
		from, to := third, third.Mul(rat.FromInt(2))
		scheds := make([]*clock.Schedule, n)
		for i := range scheds {
			burst := one.Sub(half)
			if i%2 == 0 {
				burst = one.Add(half)
			}
			s, err := clock.Constant(one).ModifyWindow(from, to, func(rat.Rat) rat.Rat { return burst })
			if err != nil {
				return nil, err
			}
			scheds[i] = s
		}
		return scheds, nil
	}
	return nil, fmt.Errorf("scenario: unknown drift profile %d", int(p))
}
