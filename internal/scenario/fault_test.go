package scenario

import (
	"testing"

	"gcs/internal/algorithms"
	"gcs/internal/engine"
	"gcs/internal/network"
	"gcs/internal/obs"
	"gcs/internal/rat"
	"gcs/internal/search"
	"gcs/internal/trace"
)

func ri(n int64) rat.Rat    { return rat.FromInt(n) }
func rf(n, d int64) rat.Rat { return rat.MustFrac(n, d) }

func TestFaultModelValidate(t *testing.T) {
	cases := []struct {
		name  string
		model FaultModel
		ok    bool
	}{
		{"zero", FaultModel{}, true},
		{"crash", FaultModel{Crash: map[int][]Window{1: {{From: ri(1), To: ri(2)}}}}, true},
		{"empty-crash-window", FaultModel{Crash: map[int][]Window{1: {{From: ri(2), To: ri(2)}}}}, false},
		{"negative-crash-window", FaultModel{Crash: map[int][]Window{1: {{From: ri(-1), To: ri(2)}}}}, false},
		{"loss", FaultModel{LossNum: 1, LossDen: 8}, true},
		{"loss-no-den", FaultModel{LossNum: 1}, false},
		{"loss-certain", FaultModel{LossNum: 8, LossDen: 8}, false},
		{"loss-negative", FaultModel{LossNum: -1, LossDen: 8}, false},
		{"partition", FaultModel{Partitions: []Partition{{Window: Window{From: ri(1), To: ri(3)}}}}, true},
		{"partition-empty-window", FaultModel{Partitions: []Partition{{Window: Window{From: ri(3), To: ri(1)}}}}, false},
		{"churn", FaultModel{ChurnNum: 1, ChurnDen: 8, ChurnPeriod: ri(2)}, true},
		{"churn-no-period", FaultModel{ChurnNum: 1, ChurnDen: 8}, false},
		{"churn-certain", FaultModel{ChurnNum: 8, ChurnDen: 8, ChurnPeriod: ri(2)}, false},
	}
	for _, c := range cases {
		if err := c.model.Validate(); (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
	if !(FaultModel{}).IsZero() {
		t.Error("zero model is not IsZero")
	}
	if (FaultModel{LossNum: 1, LossDen: 8}).IsZero() {
		t.Error("loss model claims IsZero")
	}
}

func TestFaultModelDropSemantics(t *testing.T) {
	crash := FaultModel{Crash: map[int][]Window{2: {{From: ri(3), To: ri(6)}}}}
	// A crash window silences the node in both directions, half-open.
	for _, c := range []struct {
		from, to int
		at       rat.Rat
		want     bool
	}{
		{2, 0, ri(3), true},  // sender crashed, window start inclusive
		{0, 2, ri(5), true},  // receiver crashed
		{2, 0, ri(6), false}, // window end exclusive: the restart
		{0, 1, ri(4), false}, // neither endpoint crashed
	} {
		if got := crash.Drop(c.from, c.to, 1, c.at); got != c.want {
			t.Errorf("crash.Drop(%d, %d, at %s) = %v, want %v", c.from, c.to, c.at, got, c.want)
		}
	}

	part := FaultModel{Partitions: []Partition{{
		Window: Window{From: ri(4), To: ri(8)},
		Side:   []bool{true, true},
	}}}
	// Only messages straddling the cut during the window are dropped; Side
	// treats out-of-range nodes as the false side.
	for _, c := range []struct {
		from, to int
		at       rat.Rat
		want     bool
	}{
		{1, 2, ri(5), true},  // crosses the cut
		{0, 1, ri(5), false}, // both inside Side
		{2, 3, ri(5), false}, // both outside Side
		{1, 2, ri(2), false}, // before the window
		{1, 2, ri(8), false}, // window end exclusive
	} {
		if got := part.Drop(c.from, c.to, 1, c.at); got != c.want {
			t.Errorf("partition.Drop(%d, %d, at %s) = %v, want %v", c.from, c.to, c.at, got, c.want)
		}
	}

	// Churn is symmetric: edge {i, j} is down in both directions within a
	// period, and every decision is pure — recomputing never flips it.
	churn := FaultModel{ChurnNum: 1, ChurnDen: 2, ChurnPeriod: ri(2), ChurnSeed: 5}
	sawDown, sawUp := false, false
	for k := int64(0); k < 8; k++ {
		at := ri(2 * k)
		fwd := churn.Drop(0, 1, uint64(k), at)
		if back := churn.Drop(1, 0, uint64(k)+100, at); back != fwd {
			t.Errorf("churn asymmetric in period %d: 0→1 %v, 1→0 %v", k, fwd, back)
		}
		if again := churn.Drop(0, 1, uint64(k), at); again != fwd {
			t.Errorf("churn.Drop not pure in period %d", k)
		}
		if fwd {
			sawDown = true
		} else {
			sawUp = true
		}
	}
	if !sawDown || !sawUp {
		t.Errorf("churn at 1/2 over 8 periods never varied (down=%v up=%v); seed degenerate", sawDown, sawUp)
	}

	// Loss is per-message: with p = 1/2 some sequence numbers on the same
	// pair drop and others pass, deterministically.
	loss := FaultModel{LossNum: 1, LossDen: 2, LossSeed: 99}
	sawDrop, sawPass := false, false
	for seq := uint64(0); seq < 16; seq++ {
		d := loss.Drop(0, 1, seq, ri(1))
		if again := loss.Drop(0, 1, seq, ri(1)); again != d {
			t.Fatalf("loss.Drop not pure at seq %d", seq)
		}
		if d {
			sawDrop = true
		} else {
			sawPass = true
		}
	}
	if !sawDrop || !sawPass {
		t.Errorf("loss at 1/2 over 16 messages never varied (drop=%v pass=%v); seed degenerate", sawDrop, sawPass)
	}
}

func TestFaultModelCrashTotal(t *testing.T) {
	m := FaultModel{
		Crash: map[int][]Window{
			1: {{From: ri(1), To: ri(3)}},                           // 2
			4: {{From: ri(2), To: ri(4)}, {From: ri(6), To: ri(7)}}, // 3
		},
		Partitions: []Partition{{Window: Window{From: ri(5), To: ri(9)}}}, // 4
	}
	if got := m.CrashTotal(); !got.Equal(ri(9)) {
		t.Errorf("CrashTotal = %s, want 9", got)
	}
	if got := (FaultModel{}).CrashTotal(); !got.IsZero() {
		t.Errorf("zero model CrashTotal = %s, want 0", got)
	}
}

// TestFaultAdversaryDropsAtEngine: a partition covering the whole run on a
// two-node network drops every message at the engine level — send actions
// and Dropped ledger records still appear (the sender cannot tell), nothing
// is ever delivered, the Dropped counter counts every loss, and the run
// still drains to its horizon.
func TestFaultAdversaryDropsAtEngine(t *testing.T) {
	net, err := network.TwoNode(ri(1))
	if err != nil {
		t.Fatal(err)
	}
	model := FaultModel{Partitions: []Partition{{
		Window: Window{From: ri(0), To: ri(100)},
		Side:   []bool{true},
	}}}
	met := engine.NewMetrics(obs.NewRegistry())
	rec := trace.NewRecorder(net.N())
	var sends, drops, delivers int
	counter := engine.Funcs{
		Send: func(r trace.MsgRecord) {
			sends++
			if r.Dropped {
				drops++
			}
		},
		Deliver: func(trace.MsgRecord) { delivers++ },
	}
	eng, err := engine.New(net,
		engine.WithProtocol(algorithms.MaxGossip(ri(1))),
		engine.WithAdversary(FaultAdversary{Model: model, Inner: engine.Midpoint()}),
		engine.WithRho(rf(1, 2)),
		engine.WithMetrics(met),
		engine.WithObservers(rec, counter),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.RunUntil(ri(10)); err != nil {
		t.Fatal(err)
	}
	if sends == 0 {
		t.Fatal("no messages sent; the test is vacuous")
	}
	if drops != sends || delivers != 0 {
		t.Fatalf("sends=%d drops=%d delivers=%d; want every send dropped, none delivered", sends, drops, delivers)
	}
	if got := met.Dropped.Value(); got != uint64(drops) {
		t.Fatalf("Dropped counter %d, want %d", got, drops)
	}
}

// TestDecisionLogSkipsDropped: the search's decision log records only
// messages the adversary actually delayed — a dropped message never reaches
// the inner adversary, so replaying or mutating its (nonexistent) decision
// is meaningless and must not be offered to the search.
func TestDecisionLogSkipsDropped(t *testing.T) {
	net, err := network.Line(3)
	if err != nil {
		t.Fatal(err)
	}
	model := FaultModel{LossNum: 1, LossDen: 2, LossSeed: 99}
	log := search.NewDecisionLog(net)
	rec := trace.NewRecorder(net.N())
	eng, err := engine.New(net,
		engine.WithProtocol(algorithms.MaxGossip(ri(1))),
		engine.WithAdversary(FaultAdversary{Model: model, Inner: engine.Midpoint()}),
		engine.WithRho(rf(1, 2)),
		engine.WithObservers(log, rec),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.RunUntil(ri(10)); err != nil {
		t.Fatal(err)
	}
	exec, err := eng.Execution(rec)
	if err != nil {
		t.Fatal(err)
	}
	dropped := make(map[trace.MsgKey]bool)
	deliveredCount := 0
	for k, r := range exec.Ledger {
		if r.Dropped {
			dropped[k] = true
		} else {
			deliveredCount++
		}
	}
	if len(dropped) == 0 || deliveredCount == 0 {
		t.Fatalf("want a mix of dropped (%d) and delivered (%d) messages", len(dropped), deliveredCount)
	}
	if log.Len() != deliveredCount {
		t.Fatalf("decision log has %d decisions, want one per delivered message (%d)", log.Len(), deliveredCount)
	}
	for _, d := range log.Decisions() {
		if dropped[d.Key] {
			t.Fatalf("decision log recorded dropped message %v", d.Key)
		}
	}
}

// unhintedAdversary is a minimal Adversary with no DenomHinter: the wrapper
// must report "no hint" rather than inventing a quantization.
type unhintedAdversary struct{}

func (unhintedAdversary) Delay(_, _ int, _ uint64, _, bound rat.Rat) rat.Rat { return bound }

// TestFaultAdversaryDelegation: the wrapper forwards the lane hint and the
// unwrap chain so a faulted run keeps the inner adversary's fixed-point
// quantization and observer feedback.
func TestFaultAdversaryDelegation(t *testing.T) {
	hinted := FaultAdversary{Inner: engine.HashAdversary{Seed: 7, Denom: 8}}
	if got := hinted.DelayDenom(); got != 8 {
		t.Errorf("DelayDenom with hash inner = %d, want 8", got)
	}
	unhinted := FaultAdversary{Inner: unhintedAdversary{}}
	if got := unhinted.DelayDenom(); got != 0 {
		t.Errorf("DelayDenom with unhinted inner = %d, want 0 (no hint)", got)
	}
	if inner := hinted.Unwrap(); inner == nil {
		t.Error("Unwrap returned nil for a wrapped inner")
	}
	// A stateless inner clones to the same composite; the shared immutable
	// model is not copied.
	clone := hinted.CloneAdversary()
	if clone == nil {
		t.Fatal("CloneAdversary returned nil for a stateless inner")
	}
	if _, ok := clone.(FaultAdversary); !ok {
		t.Fatalf("CloneAdversary returned %T, want FaultAdversary", clone)
	}
}
