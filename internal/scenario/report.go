package scenario

import (
	"encoding/json"
	"fmt"

	"gcs/internal/clock"
	"gcs/internal/core"
	"gcs/internal/engine"
	"gcs/internal/lowerbound"
	"gcs/internal/rat"
	"gcs/internal/search"
)

// RunOptions is the per-scenario search budget. The zero value selects the
// smoke defaults (the E14 smoke budget: 2 rounds, beam 2, 6 delay
// mutations, serial-deterministic parallel evaluation).
type RunOptions struct {
	Rounds         int
	Beam           int
	DelayMutations int
	Workers        int
}

func (o RunOptions) withDefaults() RunOptions {
	if o.Rounds == 0 {
		o.Rounds = 2
	}
	if o.Beam == 0 {
		o.Beam = 2
	}
	if o.DelayMutations == 0 {
		o.DelayMutations = 6
	}
	return o
}

// Report is one scenario's structured result. All rational quantities are
// exact decimal-free strings, so the committed golden file diffs cleanly or
// not at all — there is no float formatting to drift.
type Report struct {
	Name     string `json:"name"`
	Family   string `json:"family"`
	Fault    string `json:"fault"`
	Drift    string `json:"drift"`
	Protocol string `json:"protocol"`
	N        int    `json:"n"`
	Diameter string `json:"diameter"`
	Duration string `json:"duration"`
	// Baseline is the unmutated faulted Midpoint run; Searched the beam
	// search's worst case over delay and rate mutations; Adaptive the
	// online scheduler's forced skew. Worst = max(Searched, Adaptive).
	Baseline string `json:"baseline"`
	Searched string `json:"searched"`
	Adaptive string `json:"adaptive"`
	Worst    string `json:"worst"`
	// Bound is the certified D-dependent envelope (bound.go) and BoundTerm
	// which of its two terms gated ("diameter" or "drift-cap"). Margin =
	// Bound − Worst; Pass iff Margin >= 0.
	Bound     string `json:"bound"`
	BoundTerm string `json:"bound_term"`
	Margin    string `json:"margin"`
	Pass      bool   `json:"pass"`
}

// RunScenario executes one scenario: the scripted beam search and the
// adaptive online scheduler, both against the scenario's fault model and
// drift profile, gated against the certified bound.
func RunScenario(sc Scenario, opt RunOptions) (Report, error) {
	opt = opt.withDefaults()
	if err := sc.Model.Validate(); err != nil {
		return Report{}, fmt.Errorf("%s: %w", sc.Name, err)
	}
	scheds, err := sc.Drift.Schedules(sc.Net.N(), sc.Rho, sc.Duration)
	if err != nil {
		return Report{}, fmt.Errorf("%s: drift schedules: %w", sc.Name, err)
	}
	res, err := search.Search(search.Options{
		Net:            sc.Net,
		Protocol:       sc.Protocol,
		Duration:       sc.Duration,
		Rho:            sc.Rho,
		Schedules:      scheds,
		Base:           FaultAdversary{Model: sc.Model, Inner: engine.Midpoint()},
		Objective:      search.ObjectiveGlobalSkew,
		Rounds:         opt.Rounds,
		Beam:           opt.Beam,
		DelayMutations: opt.DelayMutations,
		Workers:        opt.Workers,
	})
	if err != nil {
		return Report{}, fmt.Errorf("%s: search: %w", sc.Name, err)
	}
	adaptive, err := adaptiveSkew(sc, scheds)
	if err != nil {
		return Report{}, fmt.Errorf("%s: adaptive run: %w", sc.Name, err)
	}
	worst := rat.Max(res.Best, adaptive)
	bound, term := CertifiedBound(BoundInput{
		Diameter: sc.Net.Diameter(),
		Period:   sc.Period,
		Rho:      sc.Rho,
		Duration: sc.Duration,
		Fault:    sc.Model,
	})
	return Report{
		Name:      sc.Name,
		Family:    sc.Family,
		Fault:     sc.Fault,
		Drift:     sc.Drift.String(),
		Protocol:  sc.Protocol.Name(),
		N:         sc.Net.N(),
		Diameter:  sc.Net.Diameter().String(),
		Duration:  sc.Duration.String(),
		Baseline:  res.Baseline.String(),
		Searched:  res.Best.String(),
		Adaptive:  adaptive.String(),
		Worst:     worst.String(),
		Bound:     bound.String(),
		BoundTerm: term,
		Margin:    bound.Sub(worst).String(),
		Pass:      worst.LessEq(bound),
	}, nil
}

// adaptiveSkew runs the generalized §2 online scheduler against the
// scenario's fault model: source node 0 on the fast 1+ρ/2 band, the
// release front at the node farthest from it, the release threshold at the
// conventional ρ·dur/3 — all through the FaultAdversary wrapper, so the
// scheduler's observations include the faults it must schedule around.
func adaptiveSkew(sc Scenario, base []*clock.Schedule) (rat.Rat, error) {
	const source = 0
	front, far := source, rat.Rat{}
	for j := 0; j < sc.Net.N(); j++ {
		if j != source && far.Less(sc.Net.Dist(source, j)) {
			front, far = j, sc.Net.Dist(source, j)
		}
	}
	sched, err := lowerbound.NewAdaptiveScheduler(sc.Net, source, front,
		lowerbound.AutoThreshold(sc.Rho, sc.Duration))
	if err != nil {
		return rat.Rat{}, err
	}
	p := lowerbound.Params{Rho: sc.Rho}
	scheds := make([]*clock.Schedule, len(base))
	copy(scheds, base)
	scheds[source] = clock.Constant(p.RateBandHigh())
	skew, err := core.NewSkewTracker(sc.Net, scheds)
	if err != nil {
		return rat.Rat{}, err
	}
	eng, err := engine.New(sc.Net,
		engine.WithProtocol(sc.Protocol),
		engine.WithAdversary(FaultAdversary{Model: sc.Model, Inner: sched}),
		engine.WithSchedules(scheds),
		engine.WithRho(sc.Rho),
		engine.WithObservers(skew),
	)
	if err != nil {
		return rat.Rat{}, err
	}
	if err := eng.RunUntil(sc.Duration); err != nil {
		return rat.Rat{}, err
	}
	if err := skew.Err(); err != nil {
		return rat.Rat{}, err
	}
	return skew.Global().Skew, nil
}

// RunMatrix runs every scenario in order and returns the reports in the
// same order. Deterministic: rerunning yields byte-identical reports.
func RunMatrix(scs []Scenario, opt RunOptions) ([]Report, error) {
	reports := make([]Report, 0, len(scs))
	for _, sc := range scs {
		rep, err := RunScenario(sc, opt)
		if err != nil {
			return nil, err
		}
		reports = append(reports, rep)
	}
	return reports, nil
}

// MarshalReports renders reports as the committed golden JSON: indented,
// trailing newline, key order fixed by the struct.
func MarshalReports(reports []Report) ([]byte, error) {
	b, err := json.MarshalIndent(reports, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
