package scenario

import (
	"fmt"

	"gcs/internal/algorithms"
	"gcs/internal/network"
	"gcs/internal/rat"
	"gcs/internal/sim"
)

// Scenario is one registered cell of the matrix: a generated topology, a
// fault model sized to the run, a drift profile, and a protocol. All fields
// are deterministic in the registry: rebuilding the matrix in a fresh
// process yields byte-identical scenarios.
type Scenario struct {
	Name     string
	Family   string // topology family key, e.g. "torus-3x3"
	Fault    string // fault model key: none | crash | loss | partition | churn
	Drift    DriftProfile
	Model    FaultModel
	Net      *network.Network
	Protocol sim.Protocol
	Period   rat.Rat // the protocol's gossip period
	Rho      rat.Rat
	Duration rat.Rat
}

// family is a named deterministic topology instance.
type family struct {
	key string
	net *network.Network
}

// smokeFamilies are the small instances the CI smoke matrix runs; seeds are
// shared with the topology generator tests, so the shapes are pinned twice.
func smokeFamilies() ([]family, error) {
	return buildFamilies([]familySpec{
		{"torus-3x3", func() (*network.Network, error) { return network.Torus(3, 3) }},
		{"dreg-10-3", func() (*network.Network, error) { return network.DRegular(10, 3, 7) }},
		{"ba-12-m2", func() (*network.Network, error) { return network.BarabasiAlbert(12, 2, 5) }},
		{"bdr-12-deg3", func() (*network.Network, error) { return network.BoundedDegreeRandom(12, 3, 3) }},
	})
}

// fullFamilies are the larger instances of the full matrix.
func fullFamilies() ([]family, error) {
	return buildFamilies([]familySpec{
		{"torus-4x4", func() (*network.Network, error) { return network.Torus(4, 4) }},
		{"dreg-16-4", func() (*network.Network, error) { return network.DRegular(16, 4, 21) }},
		{"ba-20-m2", func() (*network.Network, error) { return network.BarabasiAlbert(20, 2, 9) }},
		{"bdr-16-deg4", func() (*network.Network, error) { return network.BoundedDegreeRandom(16, 4, 11) }},
	})
}

type familySpec struct {
	key   string
	build func() (*network.Network, error)
}

func buildFamilies(specs []familySpec) ([]family, error) {
	out := make([]family, 0, len(specs))
	for _, s := range specs {
		net, err := s.build()
		if err != nil {
			return nil, fmt.Errorf("scenario: building family %s: %w", s.key, err)
		}
		out = append(out, family{key: s.key, net: net})
	}
	return out, nil
}

// namedFault is a fault model sized to a concrete run (windows placed
// relative to the duration, cuts relative to n).
type namedFault struct {
	key   string
	model FaultModel
}

// faultsFor builds the standard fault set for an n-node run of the given
// duration. Node 0 is never crashed: it is the adaptive scheduler's source
// role (the matrix crashes only non-root nodes, matching the issue's
// crash/restart contract).
func faultsFor(n int, dur rat.Rat) []namedFault {
	quarter := dur.Div(rat.FromInt(4))
	third := dur.Div(rat.FromInt(3))
	half := dur.Div(rat.FromInt(2))
	two := rat.FromInt(2)
	side := make([]bool, n)
	for i := 0; i < n/2; i++ {
		side[i] = true
	}
	return []namedFault{
		{"none", FaultModel{}},
		{"crash", FaultModel{Crash: map[int][]Window{
			1:     {{From: quarter, To: quarter.Add(two)}},
			n / 2: {{From: half, To: half.Add(two)}},
		}}},
		{"loss", FaultModel{LossNum: 1, LossDen: 8, LossSeed: 0x10550001}},
		{"partition", FaultModel{Partitions: []Partition{
			{Window: Window{From: third, To: third.Add(two)}, Side: side},
		}}},
		{"churn", FaultModel{ChurnNum: 1, ChurnDen: 8, ChurnPeriod: two, ChurnSeed: 0xc4021}},
	}
}

// scenarioRho is the matrix drift bound — the repo's conventional ρ = 1/2.
func scenarioRho() rat.Rat { return rat.MustFrac(1, 2) }

// scenarioDuration scales the horizon with the family diameter, 4·(D+2):
// long enough that the propagation envelope (not the 2ρ·dur drift cap)
// gates the fault-free rows, short enough that the full matrix stays a
// seconds-scale run.
func scenarioDuration(net *network.Network) rat.Rat {
	return rat.FromInt(4).Mul(net.Diameter().Add(rat.FromInt(2)))
}

func buildScenario(fam family, fault namedFault, drift DriftProfile, proto sim.Protocol) Scenario {
	dur := scenarioDuration(fam.net)
	return Scenario{
		Name:     fmt.Sprintf("%s/%s/%s/%s", fam.key, fault.key, drift, proto.Name()),
		Family:   fam.key,
		Fault:    fault.key,
		Drift:    drift,
		Model:    fault.model,
		Net:      fam.net,
		Protocol: proto,
		Period:   rat.FromInt(1),
		Rho:      scenarioRho(),
		Duration: dur,
	}
}

// Smoke returns the CI subset: every family, every fault kind, every drift
// profile, and both max-based protocols appear at least once, but the total
// stays small enough to regenerate on every pull request.
func Smoke() ([]Scenario, error) {
	fams, err := smokeFamilies()
	if err != nil {
		return nil, err
	}
	gossip := algorithms.MaxGossip(rat.FromInt(1))
	flood := algorithms.MaxFlood(rat.FromInt(1))
	pick := func(fam family, faultKey string, drift DriftProfile, proto sim.Protocol) (Scenario, error) {
		for _, f := range faultsFor(fam.net.N(), scenarioDuration(fam.net)) {
			if f.key == faultKey {
				return buildScenario(fam, f, drift, proto), nil
			}
		}
		return Scenario{}, fmt.Errorf("scenario: unknown fault key %q", faultKey)
	}
	specs := []struct {
		fam   int
		fault string
		drift DriftProfile
		proto sim.Protocol
	}{
		{0, "none", DriftHeterogeneous, gossip},
		{0, "crash", DriftHomogeneous, flood},
		{1, "loss", DriftHomogeneous, gossip},
		{2, "partition", DriftBursty, gossip},
		{3, "churn", DriftHeterogeneous, gossip},
	}
	out := make([]Scenario, 0, len(specs))
	for _, s := range specs {
		sc, err := pick(fams[s.fam], s.fault, s.drift, s.proto)
		if err != nil {
			return nil, err
		}
		out = append(out, sc)
	}
	return out, nil
}

// Matrix returns the full registry: every family × every fault model under
// MaxGossip with the drift profile rotated per cell, plus a MaxFlood row on
// each family's fault-free cell.
func Matrix() ([]Scenario, error) {
	fams, err := fullFamilies()
	if err != nil {
		return nil, err
	}
	gossip := algorithms.MaxGossip(rat.FromInt(1))
	flood := algorithms.MaxFlood(rat.FromInt(1))
	var out []Scenario
	for fi, fam := range fams {
		faults := faultsFor(fam.net.N(), scenarioDuration(fam.net))
		for fj, fault := range faults {
			drift := DriftProfile((fi + fj) % 3)
			out = append(out, buildScenario(fam, fault, drift, gossip))
			if fault.key == "none" {
				out = append(out, buildScenario(fam, fault, drift, flood))
			}
		}
	}
	return out, nil
}
