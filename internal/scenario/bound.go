package scenario

import (
	"gcs/internal/rat"
)

// BoundInput parameterizes the certified skew envelope for one scenario.
type BoundInput struct {
	Diameter rat.Rat    // D, in the paper's delay-uncertainty units
	Period   rat.Rat    // the protocol's gossip period (hardware time)
	Rho      rat.Rat    // drift bound
	Duration rat.Rat    // run horizon (real time)
	Fault    FaultModel // outage windows and loss/churn intensities
}

// CertifiedBound returns the D-dependent worst-case skew envelope the matrix
// gates against, for the max-based protocols (MaxGossip/MaxFlood) the matrix
// runs, plus the name of the term that bound it.
//
// Two analytic envelopes, both sound for max-based logical clocks, and the
// gate takes their minimum:
//
//   - Propagation ("diameter"): a hardware-period-P gossip cycle takes at
//     most P/(1−ρ) real time, and each hop adds at most its delay bound
//     (≤ D); after the initial cycle, information at any node is at most
//     (D+1)·(P/(1−ρ) + 1)·D/D… conservatively (D+1) cycle-plus-hop terms —
//     plus the fault allowance A (total outage time from crash/partition
//     windows, and a resend allowance for loss/churn) — real time stale.
//     A max-based clock running at most (1+ρ) then shows skew at most
//     (1+ρ)·((D+1)·(P/(1−ρ) + 1) + A).
//
//   - Drift cap ("drift-cap"): from equal starts, L_i ≤ (1+ρ)·t and
//     L_j ≥ (1−ρ)·t for every max-based clock (dropping messages only
//     lowers maxima, so faults cannot break the floor), so skew never
//     exceeds 2ρ·dur over the horizon.
//
// These are audited envelopes, not the paper's tight bounds; the committed
// golden matrix (margin column per scenario) is the regression gate that
// keeps searched skew inside them on every family.
func CertifiedBound(in BoundInput) (rat.Rat, string) {
	one := rat.FromInt(1)
	cyclesReal := in.Period.Div(one.Sub(in.Rho)) // one gossip cycle, real time
	hops := in.Diameter.Add(one)                 // (D+1) cycle-plus-hop terms
	stale := hops.Mul(cyclesReal.Add(one)).Add(faultAllowance(in, cyclesReal))
	prop := one.Add(in.Rho).Mul(stale)
	cap := rat.FromInt(2).Mul(in.Rho).Mul(in.Duration)
	if cap.Less(prop) {
		return cap, "drift-cap"
	}
	return prop, "diameter"
}

// faultAllowance grants the propagation envelope extra staleness for
// injected faults: the full length of every crash/partition outage window
// (propagation can stall completely while a cut or crashed node blocks the
// only path), plus resend allowances for probabilistic loss and churn —
// each lost hop waits at most one more gossip cycle for the next copy, and
// a churned edge additionally waits out its down period, scaled by twice
// the configured fault rate per hop (generous for the sub-1/2 rates the
// matrix uses).
func faultAllowance(in BoundInput, cyclesReal rat.Rat) rat.Rat {
	allow := in.Fault.CrashTotal()
	two := rat.FromInt(2)
	hops := in.Diameter.Add(rat.FromInt(1))
	if in.Fault.LossNum > 0 {
		rate := rat.MustFrac(in.Fault.LossNum, in.Fault.LossDen)
		allow = allow.Add(hops.Mul(cyclesReal).Mul(two.Mul(rate).Add(rat.FromInt(1))))
	}
	if in.Fault.ChurnNum > 0 {
		rate := rat.MustFrac(in.Fault.ChurnNum, in.Fault.ChurnDen)
		perHop := cyclesReal.Add(in.Fault.ChurnPeriod)
		allow = allow.Add(hops.Mul(perHop).Mul(two.Mul(rate).Add(rat.FromInt(1))))
	}
	return allow
}
