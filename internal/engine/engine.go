// Package engine is the incremental discrete-event simulation core for
// networks of timed automata with drifting hardware clocks, following the
// model of Fan & Lynch (PODC 2004), §3.
//
// Unlike the original batch runner (now the compatibility wrapper Run), an
// Engine is constructed once and then driven step by step: Step dispatches
// the single next event, RunUntil(t) dispatches everything through real time
// t, and RunFor(r) extends the covered horizon by r. Consumers observe the
// run through the Observer interface instead of receiving a buffered trace,
// so metrics can be computed online in memory independent of event count,
// schedules can be perturbed between phases of a run, and a run can stop
// early the moment a property of interest is violated.
//
// Each node runs a Node automaton that can observe only its hardware-clock
// readings and received messages — never real time. The adversary supplies
// each node's hardware rate schedule (see internal/clock) and chooses every
// message's delay within [0, d(from,to)].
//
// Engine state is forkable: Fork returns an independent engine at the exact
// same point of the run (deep-cloned event queue and per-node state via the
// Protocol.CloneState contract), and SetAdversary rebinds a fork's delay
// adversary, so a shared execution prefix is simulated once and branched —
// the structure of the paper's constructions (perturb a base execution,
// keep the prefix indistinguishable) and the engine of the prefix-cached
// worst-case search in internal/search.
//
// Determinism: events are ordered by (real time, kind, destination node,
// peer, per-pair message sequence / timer id, scheduling sequence). Two runs
// with the same configuration produce identical event streams, and —
// crucially for the lower-bound constructions — per-node event order is
// invariant under the per-node monotone time remappings used by the Add Skew
// and Bounded Increase lemmas, because ties are broken by node-visible keys
// rather than by wall-clock accidents.
package engine

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"

	"gcs/internal/clock"
	"gcs/internal/network"
	"gcs/internal/piecewise"
	"gcs/internal/rat"
	"gcs/internal/trace"
)

// Message is the payload of a simulated message. MsgString must be a
// canonical, value-determined encoding: trace equivalence compares messages
// by this string, so two payloads with equal meaning must produce equal
// strings.
type Message interface {
	MsgString() string
}

// Node is one timed automaton. Implementations must be deterministic
// functions of the observations delivered through Runtime (hardware
// readings, messages); they must not consult real time, randomness, or
// global state.
type Node interface {
	// Init is called once at real time 0.
	Init(rt *Runtime)
	// OnTimer is called when a timer set via SetTimerAtHW fires.
	OnTimer(rt *Runtime, timerID int)
	// OnMessage is called when a message arrives.
	OnMessage(rt *Runtime, from int, msg Message)
}

// Protocol instantiates per-node automata.
type Protocol interface {
	Name() string
	// NewNode creates the automaton for node id. Static environment data is
	// available through the Runtime during callbacks.
	NewNode(id int) Node
	// CloneState returns an independent copy of a node automaton previously
	// created by this protocol's NewNode, carrying all of its mutable state:
	// after the call, driving the clone and the original from identical
	// engine states must produce identical behavior, and mutating one must
	// never affect the other. Stateless nodes (and value-type nodes) may be
	// returned as-is. Engine.Fork relies on this contract to duplicate
	// per-node state when a run is branched mid-execution.
	CloneState(node Node) Node
}

// BulkCloneProtocol is an optional Protocol extension for forking: CloneStates
// clones every node automaton in one call, so the protocol can slab-allocate
// the clones instead of paying one allocation per node. Engine.Fork prefers
// it over per-node CloneState when implemented. The contract is CloneState's,
// element-wise: out[i] must be an independent, non-nil clone of nodes[i].
type BulkCloneProtocol interface {
	CloneStates(nodes []Node) []Node
}

// Adversary chooses message delays. Delay must return a value in
// [0, bound]; the engine validates and fails the run otherwise.
type Adversary interface {
	Delay(from, to int, seq uint64, sendReal rat.Rat, bound rat.Rat) rat.Rat
}

// Config fully describes a batch run for the Run compatibility wrapper.
type Config struct {
	Net       *network.Network
	Schedules []*clock.Schedule // one per node
	Adversary Adversary
	Protocol  Protocol
	Duration  rat.Rat
	Rho       rat.Rat // drift bound ρ; exposed to algorithms, validates schedules
}

// Engine is an incremental simulation: an event queue over a fixed network,
// protocol, adversary, and set of hardware schedules, driven by Step,
// RunUntil, and RunFor, and observed through attached Observers.
type Engine struct {
	net    *network.Network
	scheds []*clock.Schedule
	adv    Adversary
	proto  Protocol
	rho    rat.Rat

	obs        []Observer
	clockObs   []ClockObserver
	horizonObs []HorizonObserver

	// Adversary feedback hooks (see stateful.go): when the adversary
	// observes the run, it is notified of each event before the regular
	// observers, through these dedicated fields rather than the observer
	// lists, so SetAdversary can rebind them without disturbing attached
	// metrics.
	advObs        Observer
	advClockObs   ClockObserver
	advHorizonObs HorizonObserver
	// advDrop is the adversary chain's fault layer (resolved through
	// AdversaryWrapper.Unwrap by bindAdversary, nil when no layer drops):
	// consulted once per send, before the delay decision.
	advDrop DropAdversary

	queue    eventQueue
	seq      uint64
	pairSeq  []uint64 // per-(from,to) message counters, indexed from*n+to
	runtimes []Runtime
	nodes    []Node

	now     rat.Rat // real time of the last dispatched event
	horizon rat.Rat // time through which the run is complete
	steps   uint64  // dispatched event count
	err     error

	// Fixed-point lane (see lane.go): scale > 0 means the run landed on a
	// common tick grid at construction and the hot path computes event keys,
	// clock readings, and clock inversions on int64 ticks, value-by-value
	// falling back to rat. fscheds (one compiled schedule per node) is
	// immutable and shared with forks.
	lane      Lane
	scale     int64
	fscheds   []*clock.FixedSchedule
	nowTick   int64 // e.now in ticks; valid iff nowTickOK
	nowTickOK bool

	// met is the optional instrument set (see metrics.go). Nil-checked on
	// the hot path: an uninstrumented engine pays one predictable branch.
	met *Metrics
}

// Option configures an Engine under construction.
type Option func(*Engine)

// WithProtocol sets the protocol instantiating per-node automata
// (required).
func WithProtocol(p Protocol) Option { return func(e *Engine) { e.proto = p } }

// WithAdversary sets the delay adversary. Default: Midpoint().
func WithAdversary(a Adversary) Option { return func(e *Engine) { e.adv = a } }

// WithSchedules sets the per-node hardware rate schedules. Default: every
// node runs at constant rate 1.
func WithSchedules(scheds []*clock.Schedule) Option {
	return func(e *Engine) { e.scheds = scheds }
}

// WithRho sets the drift bound ρ ∈ [0, 1); schedules are validated against
// it. Default: 0 (which admits only rate-1 schedules).
func WithRho(rho rat.Rat) Option { return func(e *Engine) { e.rho = rho } }

// WithObservers attaches observers at construction, before any event is
// dispatched. Equivalent to calling Observe before the first Step.
func WithObservers(obs ...Observer) Option {
	return func(e *Engine) { e.Observe(obs...) }
}

// New builds an Engine over net and seeds every node's init event at real
// time 0. Nothing runs until the engine is driven with Step, RunUntil, or
// RunFor.
func New(net *network.Network, opts ...Option) (*Engine, error) {
	if net == nil {
		return nil, errors.New("engine: nil network")
	}
	e := &Engine{net: net}
	for _, opt := range opts {
		opt(e)
	}
	n := net.N()
	if e.scheds == nil {
		e.scheds = make([]*clock.Schedule, n)
		for i := range e.scheds {
			e.scheds[i] = clock.Constant(rat.FromInt(1))
		}
	}
	if len(e.scheds) != n {
		return nil, fmt.Errorf("engine: %d schedules for %d nodes", len(e.scheds), n)
	}
	if e.adv == nil {
		e.adv = Midpoint()
	}
	e.bindAdversary(e.adv)
	if e.proto == nil {
		return nil, errors.New("engine: nil protocol (use WithProtocol)")
	}
	if e.rho.Sign() < 0 || e.rho.GreaterEq(rat.FromInt(1)) {
		return nil, fmt.Errorf("engine: drift ρ=%s outside [0,1)", e.rho)
	}
	for i, s := range e.scheds {
		if s == nil {
			return nil, fmt.Errorf("engine: nil schedule for node %d", i)
		}
		if err := s.ValidateDrift(e.rho); err != nil {
			return nil, fmt.Errorf("engine: node %d: %w", i, err)
		}
	}
	e.pairSeq = make([]uint64, n*n)
	e.runtimes = make([]Runtime, n)
	e.nodes = make([]Node, n)
	for i := 0; i < n; i++ {
		e.runtimes[i] = Runtime{eng: e, id: i}
		e.nodes[i] = e.proto.NewNode(i)
		// Default logical clock L = H until the node declares otherwise.
		e.runtimes[i].decls = []trace.Decl{{Node: i, Mult: rat.FromInt(1)}}
	}
	e.detectLane()
	if e.met != nil {
		if e.scale > 0 {
			e.met.FixedLaneRuns.Inc()
		} else {
			e.met.RatLaneRuns.Inc()
		}
	}
	// Observers attached via WithObservers ran before lane detection; hand
	// them the detected scale now.
	for _, o := range e.obs {
		if a, ok := o.(FixedLaneAdopter); ok {
			a.AdoptFixedLane(e.scale)
		}
	}
	for i := 0; i < n; i++ {
		idx := e.queue.alloc()
		// Init events carry their hardware reading: H(0) = 0 by the Schedule
		// contract. Their tick key is exact whenever the lane is on.
		e.queue.slab[idx] = event{kind: trace.KindInit, node: i, from: -1, seq: e.nextSeq(),
			tickOK: e.nowTickOK, hw: rat.Rat{}, hasHW: true}
		e.queue.push(idx)
	}
	return e, nil
}

// Observe attaches observers to the event stream. Observers attached before
// the first Step see the complete run; observers attached mid-run see events
// from that point on. An observer implementing FixedLaneAdopter is handed the
// engine's detected tick scale (0 on the rat lane) so it can mirror its own
// state onto the grid; adoption never changes results, only arithmetic.
func (e *Engine) Observe(obs ...Observer) {
	for _, o := range obs {
		if o == nil {
			continue
		}
		e.obs = append(e.obs, o)
		if c, ok := o.(ClockObserver); ok {
			e.clockObs = append(e.clockObs, c)
		}
		if h, ok := o.(HorizonObserver); ok {
			e.horizonObs = append(e.horizonObs, h)
		}
		if a, ok := o.(FixedLaneAdopter); ok {
			a.AdoptFixedLane(e.scale)
		}
	}
}

// N returns the number of nodes.
func (e *Engine) N() int { return e.net.N() }

// Net returns the network.
func (e *Engine) Net() *network.Network { return e.net }

// Schedules returns the per-node hardware schedules (shared, immutable).
func (e *Engine) Schedules() []*clock.Schedule { return e.scheds }

// Adversary returns the delay adversary currently bound to the engine. For
// a fork of an engine with a stateful adversary this is the fork's own
// clone, carrying the decision state accumulated up to the fork point —
// which is how the prefix-cached search rebinds a fork's script while
// keeping the tail adversary's state.
func (e *Engine) Adversary() Adversary { return e.adv }

// Now returns the real time of the last dispatched event.
func (e *Engine) Now() rat.Rat { return e.now }

// Horizon returns the real time through which the run is complete: no
// pending event at time <= Horizon remains undispatched.
func (e *Engine) Horizon() rat.Rat { return e.horizon }

// Steps returns the number of events dispatched so far.
func (e *Engine) Steps() uint64 { return e.steps }

// Pending returns the number of events waiting in the queue.
func (e *Engine) Pending() int { return e.queue.Len() }

// Err returns the sticky error that failed the run, if any.
func (e *Engine) Err() error { return e.err }

// Step dispatches the single next pending event, advancing the horizon to
// its time. It returns false when the queue is empty (every node is idle and
// no messages are in flight). After an error the engine is poisoned: Step
// keeps returning the same error.
//
// Steady-state stepping is allocation-free on the engine's side: the
// dispatched event's slab slot is recycled through the queue's free list, so
// the only allocations per step are whatever the node callbacks themselves
// perform (message payloads, protocol state).
func (e *Engine) Step() (bool, error) {
	if e.err != nil {
		return false, e.err
	}
	if e.queue.Len() == 0 {
		return false, nil
	}
	idx := e.queue.pop()
	ev := e.queue.slab[idx] // copy out: the slot is reusable during dispatch
	e.queue.release(idx)
	if e.met != nil {
		e.met.Recycled.Inc()
	}
	e.dispatch(&ev)
	if ev.time.Greater(e.horizon) {
		e.horizon = ev.time
	}
	if e.err != nil {
		return false, e.err
	}
	return true, nil
}

// RunUntil dispatches every pending event with time <= t, in deterministic
// order, then advances the horizon to t and notifies HorizonObservers. t
// must not precede the current horizon.
func (e *Engine) RunUntil(t rat.Rat) error {
	if e.err != nil {
		return e.err
	}
	if t.Less(e.horizon) {
		return fmt.Errorf("engine: RunUntil(%s) before horizon %s", t, e.horizon)
	}
	for e.queue.Len() > 0 {
		if e.queue.slab[e.queue.top()].time.Greater(t) {
			break
		}
		idx := e.queue.pop()
		ev := e.queue.slab[idx] // copy out: the slot is reusable during dispatch
		e.queue.release(idx)
		if e.met != nil {
			e.met.Recycled.Inc()
		}
		e.dispatch(&ev)
		if e.err != nil {
			return e.err
		}
	}
	e.horizon = t
	if e.advHorizonObs != nil {
		e.advHorizonObs.OnHorizon(t)
	}
	for _, h := range e.horizonObs {
		h.OnHorizon(t)
	}
	return nil
}

// RunFor extends the covered horizon by r > 0.
func (e *Engine) RunFor(r rat.Rat) error {
	if r.Sign() <= 0 {
		return fmt.Errorf("engine: non-positive RunFor duration %s", r)
	}
	return e.RunUntil(e.horizon.Add(r))
}

func (e *Engine) nextSeq() uint64 {
	e.seq++
	return e.seq
}

func (e *Engine) fail(err error) {
	if e.err == nil {
		e.err = err
	}
}

func (e *Engine) emitAction(a trace.Action) {
	if e.advObs != nil {
		e.advObs.OnAction(a)
	}
	for _, o := range e.obs {
		o.OnAction(a)
	}
}

// observed reports whether anything listens to the event stream: attached
// observers or the adversary's feedback hook. When nothing does, dispatch
// skips building delivery records and actions entirely (payload strings
// included).
func (e *Engine) observed() bool { return e.advObs != nil || len(e.obs) > 0 }

func (e *Engine) dispatch(ev *event) {
	e.now = ev.time
	e.nowTick, e.nowTickOK = ev.tick, ev.tickOK
	e.steps++
	if e.met != nil {
		e.met.Steps.Inc()
	}
	rt := &e.runtimes[ev.node]
	// Every event carries the destination's hardware reading, computed once
	// at scheduling time and carried across forks — branches sharing a
	// prefix never re-derive a queued event's reading. The recompute branch
	// is defense in depth; all alloc sites populate the cache.
	hw := ev.hw
	if !ev.hasHW {
		hw = e.scheds[ev.node].HW(ev.time)
	}
	rt.hwNow = hw
	switch ev.kind {
	case trace.KindInit:
		e.emitAction(trace.Action{Node: ev.node, Kind: trace.KindInit, Real: ev.time, HW: hw, Peer: -1})
		e.nodes[ev.node].Init(rt)
	case trace.KindTimer:
		e.emitAction(trace.Action{Node: ev.node, Kind: trace.KindTimer, Real: ev.time, HW: hw, Peer: -1, TimerID: ev.timerID})
		e.nodes[ev.node].OnTimer(rt, ev.timerID)
	case trace.KindRecv:
		if e.observed() {
			// The canonical payload string was cached at Send; recompute it
			// only when the message was sent while the run was unobserved and
			// an observer attached mid-flight.
			payload := ev.payStr
			if !ev.hasStr {
				payload = ev.payload.MsgString()
			}
			rec := trace.MsgRecord{
				Key:       trace.MsgKey{From: ev.from, To: ev.node, Seq: ev.msgSeq},
				SendReal:  ev.sendReal,
				RecvReal:  ev.time,
				Delay:     ev.delay,
				Payload:   payload,
				Delivered: true,
			}
			if e.advObs != nil {
				e.advObs.OnDeliver(rec)
			}
			for _, o := range e.obs {
				o.OnDeliver(rec)
			}
			e.emitAction(trace.Action{Node: ev.node, Kind: trace.KindRecv, Real: ev.time, HW: hw,
				Peer: ev.from, MsgSeq: ev.msgSeq, Payload: payload})
		}
		e.nodes[ev.node].OnMessage(rt, ev.from, ev.payload)
	default:
		e.fail(fmt.Errorf("engine: unknown event kind %v", ev.kind))
	}
}

// Execution compiles the engine's clocks through the current horizon and
// combines them with rec's buffered trace into a complete Execution. rec
// must have been attached (via Observe or WithObservers) before the first
// event was dispatched for the trace to be complete.
func (e *Engine) Execution(rec *trace.Recorder) (*trace.Execution, error) {
	if e.err != nil {
		return nil, e.err
	}
	n := e.net.N()
	logical := make([]*piecewise.PLF, n)
	hardware := make([]*piecewise.PLF, n)
	for i := 0; i < n; i++ {
		hardware[i] = e.scheds[i].HWFunc()
		plf, err := compileLogicalCached(e.scheds[i], e.runtimes[i].decls, e.horizon, e.met)
		if err != nil {
			return nil, fmt.Errorf("engine: node %d logical clock: %w", i, err)
		}
		logical[i] = plf
	}
	return rec.Execution(e.net, e.scheds, e.horizon, logical, hardware), nil
}

// Run executes a batch configuration and returns its recorded trace. It is
// the legacy record-everything API, now a thin compatibility wrapper: it
// builds an Engine, attaches a trace.Recorder, drives the run to
// cfg.Duration, and compiles the Execution — byte-identical to the original
// monolithic runner.
func Run(cfg Config) (*trace.Execution, error) {
	if cfg.Net == nil {
		return nil, errors.New("engine: nil network")
	}
	if len(cfg.Schedules) != cfg.Net.N() {
		return nil, fmt.Errorf("engine: %d schedules for %d nodes", len(cfg.Schedules), cfg.Net.N())
	}
	if cfg.Adversary == nil {
		return nil, errors.New("engine: nil adversary")
	}
	if cfg.Duration.Sign() <= 0 {
		return nil, fmt.Errorf("engine: non-positive duration %s", cfg.Duration)
	}
	eng, err := New(cfg.Net,
		WithProtocol(cfg.Protocol),
		WithAdversary(cfg.Adversary),
		WithSchedules(cfg.Schedules),
		WithRho(cfg.Rho),
	)
	if err != nil {
		return nil, err
	}
	rec := trace.NewRecorder(cfg.Net.N())
	eng.Observe(rec)
	if err := eng.RunUntil(cfg.Duration); err != nil {
		return nil, err
	}
	return eng.Execution(rec)
}

// logicalCacheCap bounds the compiled-schedule memo. 512 entries cover the
// working set of a candidate fleet (nodes × live horizons) with room to
// spare; eviction is FIFO, so a scan over many distinct keys degrades to
// plain compilation rather than unbounded growth.
const logicalCacheCap = 512

// logicalCache memoizes compileLogical across engines, keyed by the exact
// inputs that determine its output: the schedule (pointer identity — a
// Schedule is immutable, and forks share their parent's schedule pointers),
// a fingerprint of the node's declaration history, and the horizon. Forked
// runs that end at the same horizon with the same declarations — e.g. a
// candidate fleet branched off one trunk whose mutations leave some nodes'
// behavior untouched — compile each distinct logical clock once.
var logicalCache = struct {
	sync.Mutex
	m     map[logicalKey]*piecewise.PLF
	order []logicalKey // insertion order for FIFO eviction
}{m: make(map[logicalKey]*piecewise.PLF)}

type logicalKey struct {
	sched   *clock.Schedule
	decls   string
	horizon string
}

// declsFingerprint canonically encodes a declaration history. Every field
// that compileLogical reads is included, so equal fingerprints (with equal
// schedule and horizon) imply equal compiled clocks.
func declsFingerprint(decls []trace.Decl) string {
	var b strings.Builder
	for _, d := range decls {
		b.WriteString(strconv.Itoa(d.Node))
		b.WriteByte('@')
		b.WriteString(d.Real.String())
		b.WriteByte(',')
		b.WriteString(d.HW0.String())
		b.WriteByte(',')
		b.WriteString(d.Value.String())
		b.WriteByte(',')
		b.WriteString(d.Mult.String())
		b.WriteByte(';')
	}
	return b.String()
}

// compileLogicalCached is compileLogical behind the memo: hits return a
// clone of the cached PLF (callers own their result and may mutate it),
// misses compile, store a private clone, and return the original. met, when
// non-nil, has its clock-cache hit/miss counters advanced.
func compileLogicalCached(sched *clock.Schedule, decls []trace.Decl, horizon rat.Rat, met *Metrics) (*piecewise.PLF, error) {
	key := logicalKey{sched: sched, decls: declsFingerprint(decls), horizon: horizon.String()}
	logicalCache.Lock()
	if plf, ok := logicalCache.m[key]; ok {
		logicalCache.Unlock()
		if met != nil {
			met.ClockCacheHits.Inc()
		}
		return plf.Clone(), nil
	}
	logicalCache.Unlock()
	if met != nil {
		met.ClockCacheMisses.Inc()
	}
	plf, err := compileLogical(sched, decls, horizon)
	if err != nil {
		return nil, err
	}
	logicalCache.Lock()
	if _, ok := logicalCache.m[key]; !ok {
		if len(logicalCache.order) >= logicalCacheCap {
			oldest := logicalCache.order[0]
			logicalCache.order = logicalCache.order[1:]
			delete(logicalCache.m, oldest)
		}
		logicalCache.m[key] = plf.Clone()
		logicalCache.order = append(logicalCache.order, key)
	}
	logicalCache.Unlock()
	return plf, nil
}

// compileLogical merges a node's logical-clock declarations with its
// hardware rate schedule into an exact piecewise-linear L(t) over real time,
// truncated at the horizon.
// Between declarations, L(t) = Value + Mult·(H(t) − HW0), so within one
// hardware rate segment the real-time slope is Mult·rate.
func compileLogical(sched *clock.Schedule, decls []trace.Decl, horizon rat.Rat) (*piecewise.PLF, error) {
	if len(decls) == 0 {
		return nil, errors.New("no logical declarations")
	}
	plf := piecewise.New(rat.Rat{}, decls[0].Value, decls[0].Mult.Mul(sched.RateAt(rat.Rat{})))
	rateBreaks := sched.RatesView() // read-only walk; never modified
	ri := 0                         // index of the rate segment in effect
	advanceRate := func(t rat.Rat) {
		for ri+1 < len(rateBreaks) && rateBreaks[ri+1].At.LessEq(t) {
			ri++
		}
	}
	cur := decls[0]
	emit := func(at rat.Rat, d trace.Decl) error {
		advanceRate(at)
		v := d.Value.Add(d.Mult.Mul(sched.HW(at).Sub(d.HW0)))
		return plf.Append(at, v, d.Mult.Mul(rateBreaks[ri].Rate))
	}
	for k := 1; k < len(decls); k++ {
		d := decls[k]
		// Rate breakpoints strictly between the previous declaration and this
		// one change the real-time slope of the current declaration.
		for _, rb := range rateBreaks {
			if rb.At.Greater(cur.Real) && rb.At.Less(d.Real) && rb.At.LessEq(horizon) {
				if err := emit(rb.At, cur); err != nil {
					return nil, err
				}
			}
		}
		if d.Real.Greater(horizon) {
			return plf, nil
		}
		if err := emit(d.Real, d); err != nil {
			return nil, err
		}
		cur = d
	}
	for _, rb := range rateBreaks {
		if rb.At.Greater(cur.Real) && rb.At.LessEq(horizon) {
			if err := emit(rb.At, cur); err != nil {
				return nil, err
			}
		}
	}
	return plf, nil
}
