package engine

// Allocation-budget regression tests for the engine hot path. The event
// queue recycles dispatched events through a slab free list, so in steady
// state Step allocates nothing of its own: every allocation charged here
// comes from the node callbacks (payload boxing, payload canonicalization
// for observers). These tests pin that property — a change that reintroduces
// per-event garbage fails them long before it shows up in a benchmark.

import (
	"testing"

	"gcs/internal/network"
	"gcs/internal/obs"
	"gcs/internal/rat"
	"gcs/internal/trace"
)

// metricsModes runs a subtest once uninstrumented and once with a full
// obs-backed Metrics set attached, asserting the same allocation budget in
// both: instrumentation is pre-registered atomic counters, so enabling it
// must not cost a single allocation per step.
func metricsModes(t *testing.T, run func(t *testing.T, met *Metrics)) {
	t.Run("bare", func(t *testing.T) { run(t, nil) })
	t.Run("instrumented", func(t *testing.T) {
		run(t, NewMetrics(obs.NewRegistry()))
	})
}

// pulseNode re-arms a timer forever and never sends: the pure engine loop
// (pop, dispatch, timer push) with no protocol-side allocations at all.
type pulseNode struct{}

func (pulseNode) Init(rt *Runtime) { rt.SetTimerAtHW(rat.FromInt(1), 1) }
func (pulseNode) OnTimer(rt *Runtime, _ int) {
	rt.SetTimerAtHW(rt.HW().Add(rat.FromInt(1)), 1)
}
func (pulseNode) OnMessage(*Runtime, int, Message) {}

type pulseProtocol struct{}

func (pulseProtocol) Name() string           { return "pulse" }
func (pulseProtocol) NewNode(int) Node       { return pulseNode{} }
func (pulseProtocol) CloneState(n Node) Node { return n }

// warm drives the engine past construction transients (init events, first
// slab growth) so the measured region is genuinely steady-state.
func warm(t *testing.T, eng *Engine, steps int) {
	t.Helper()
	for i := 0; i < steps; i++ {
		ok, err := eng.Step()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("engine drained after %d steps; workload must be self-sustaining", i)
		}
	}
}

func stepAllocs(t *testing.T, eng *Engine, runs int) float64 {
	t.Helper()
	avg := testing.AllocsPerRun(runs, func() {
		if ok, err := eng.Step(); err != nil || !ok {
			t.Fatalf("step failed mid-measurement: ok=%v err=%v", ok, err)
		}
	})
	if err := eng.Err(); err != nil {
		t.Fatal(err)
	}
	return avg
}

// TestStepSteadyStateZeroAlloc pins the engine's own per-step cost at zero:
// a timer-only workload on the two-node cell, no observers, must dispatch
// with no allocations at all once warm — the slab free list absorbs every
// recycled event.
func TestStepSteadyStateZeroAlloc(t *testing.T) {
	metricsModes(t, func(t *testing.T, met *Metrics) {
		net, err := network.TwoNode(rat.FromInt(8))
		if err != nil {
			t.Fatal(err)
		}
		eng, err := New(net, WithProtocol(pulseProtocol{}), WithRho(rf(1, 2)), WithMetrics(met))
		if err != nil {
			t.Fatal(err)
		}
		warm(t, eng, 64)
		if avg := stepAllocs(t, eng, 512); avg != 0 {
			t.Fatalf("steady-state Step on timer-only workload: %.2f allocs/step, want 0", avg)
		}
		if met != nil && met.Steps.Value() == 0 {
			t.Fatal("instrumented run advanced no step counter")
		}
	})
}

// TestStepSteadyStateBudgetLine pins the messaging budget on the E13-style
// line workload (5 gossiping nodes, no observers): the only allocations per
// step are the sender's payload boxing — the engine contributes none, and
// without observers no payload string is built. The budget of 1 allows one
// boxed payload per step on average with no headroom for engine-side
// garbage.
func TestStepSteadyStateBudgetLine(t *testing.T) {
	metricsModes(t, func(t *testing.T, met *Metrics) {
		eng := newTestEngine(t, 5, tickProtocol{period: ri(1)}, WithMetrics(met))
		warm(t, eng, 256)
		const budget = 1.0
		if avg := stepAllocs(t, eng, 1024); avg > budget {
			t.Fatalf("steady-state Step on gossip line: %.2f allocs/step, budget %.1f", avg, budget)
		}
	})
}

// TestStepSteadyStateBudgetObserved is the same line workload with an
// attached observer: each sent message additionally canonicalizes its
// payload exactly once (cached into the event, reused at delivery), so the
// budget rises by the cost of one MsgString per send — for echoMsg that is
// two allocations (rat string + concat). A third MsgString call per message,
// or any engine-side garbage, breaks the budget.
func TestStepSteadyStateBudgetObserved(t *testing.T) {
	metricsModes(t, func(t *testing.T, met *Metrics) {
		var count int
		eng := newTestEngine(t, 5, tickProtocol{period: ri(1)},
			WithObservers(Funcs{Action: func(trace.Action) { count++ }}),
			WithMetrics(met))
		warm(t, eng, 256)
		const budget = 2.5
		if avg := stepAllocs(t, eng, 1024); avg > budget {
			t.Fatalf("steady-state Step on observed gossip line: %.2f allocs/step, budget %.1f", avg, budget)
		}
		if count == 0 {
			t.Fatal("observer never fired; measurement did not cover the observed path")
		}
	})
}

// TestForkAllocBudget pins Fork's bulk-copy cost: a fixed number of slab
// copies plus one CloneState per node, independent of how many events are
// pending. The budgets are generous against today's measured cost (engine
// struct + 3 queue slices + pairSeq + runtimes + decl slab + nodes + n node
// clones ≈ 8 + n) but far below the old element-wise clone, which paid one
// allocation per pending event.
func TestForkAllocBudget(t *testing.T) {
	cases := []struct {
		name   string
		eng    func(t *testing.T, met *Metrics) *Engine
		n      int
		warmup int
	}{
		{
			name: "two-node-cell",
			eng: func(t *testing.T, met *Metrics) *Engine {
				net, err := network.TwoNode(rat.FromInt(8))
				if err != nil {
					t.Fatal(err)
				}
				eng, err := New(net, WithProtocol(tickProtocol{period: ri(1)}), WithRho(rf(1, 2)), WithMetrics(met))
				if err != nil {
					t.Fatal(err)
				}
				return eng
			},
			n:      2,
			warmup: 64,
		},
		{
			name: "e13-line",
			eng: func(t *testing.T, met *Metrics) *Engine {
				return newTestEngine(t, 5, tickProtocol{period: ri(1)}, WithMetrics(met))
			},
			n:      5,
			warmup: 256,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			metricsModes(t, func(t *testing.T, met *Metrics) {
				eng := tc.eng(t, met)
				warm(t, eng, tc.warmup)
				budget := float64(12 + 2*tc.n)
				avg := testing.AllocsPerRun(64, func() {
					if _, err := eng.Fork(); err != nil {
						t.Fatal(err)
					}
				})
				if avg > budget {
					t.Fatalf("Fork with %d pending events: %.1f allocs, budget %.0f",
						eng.Pending(), avg, budget)
				}
				if met != nil && met.Forks.Value() == 0 {
					t.Fatal("instrumented Fork advanced no fork counter")
				}
			})
		})
	}
}
