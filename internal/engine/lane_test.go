package engine

import (
	"testing"

	"gcs/internal/clock"
	"gcs/internal/fixed"
	"gcs/internal/network"
	"gcs/internal/obs"
	"gcs/internal/rat"
	"gcs/internal/trace"
)

// TestDetectLaneEngages: a common-denominator configuration engages the
// fixed lane at construction with a scale covering rates, delay bounds, and
// the adversary's quantization hint.
func TestDetectLaneEngages(t *testing.T) {
	scheds, err := clock.Diverse(3, ri(1), rf(5, 4), 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	eng := newTestEngine(t, 3, tickProtocol{period: ri(1)},
		WithSchedules(scheds),
		WithAdversary(HashAdversary{Seed: 7, Denom: 8}),
	)
	if got := eng.TimeLane(); got != "fixed" {
		t.Fatalf("TimeLane = %q, want fixed", got)
	}
	if eng.FixedScale() <= 0 {
		t.Fatalf("FixedScale = %d, want positive", eng.FixedScale())
	}
	// The scale must absorb the adversary quantization (delays are eighths of
	// unit-denominator distance bounds) and every rate denominator.
	if eng.FixedScale()%8 != 0 {
		t.Errorf("scale %d does not cover the adversary's eighths", eng.FixedScale())
	}
}

// TestDetectLaneForcedRat: WithLane(LaneRat) skips detection entirely.
func TestDetectLaneForcedRat(t *testing.T) {
	eng := newTestEngine(t, 3, tickProtocol{period: ri(1)}, WithLane(LaneRat))
	if got := eng.TimeLane(); got != "rat" {
		t.Fatalf("TimeLane = %q, want rat", got)
	}
	if eng.FixedScale() != 0 {
		t.Fatalf("FixedScale = %d on the rat lane, want 0", eng.FixedScale())
	}
}

// TestDetectLaneOverflowFallsBack: coprime rate denominators whose LCM
// exceeds MaxScale defeat detection, and the engine silently runs rational.
func TestDetectLaneOverflowFallsBack(t *testing.T) {
	// Primes near 2^11 whose pairwise products already pass 2^32 when
	// combined with the third: 2039 · 2053 · 2063 · 2069 ≈ 2^44.
	primes := []int64{2039, 2053, 2063, 2069}
	scheds := make([]*clock.Schedule, 4)
	for i, p := range primes {
		scheds[i] = clock.Constant(rat.MustFrac(p+1, p))
	}
	net, err := network.Line(4)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(net, WithProtocol(tickProtocol{period: ri(1)}), WithRho(rf(1, 2)),
		WithSchedules(scheds))
	if err != nil {
		t.Fatal(err)
	}
	if got := eng.TimeLane(); got != "rat" {
		t.Fatalf("TimeLane = %q, want rat after LCM overflow", got)
	}
	// The run still works, just on the reference lane.
	if err := eng.RunUntil(ri(4)); err != nil {
		t.Fatal(err)
	}
}

// hintlessAdversary implements Adversary but not DenomHinter.
type hintlessAdversary struct{}

func (hintlessAdversary) Delay(_, _ int, _ uint64, _ rat.Rat, bound rat.Rat) rat.Rat {
	return bound
}

// TestDenomHinterImpls pins the delay-quantization hints each adversary
// advertises to lane detection.
func TestDenomHinterImpls(t *testing.T) {
	if got := (FractionAdversary{Frac: rf(1, 3)}).DelayDenom(); got != 3 {
		t.Errorf("FractionAdversary{1/3}: DelayDenom = %d, want 3", got)
	}
	if got := (HashAdversary{Denom: 12}).DelayDenom(); got != 12 {
		t.Errorf("HashAdversary{Denom:12}: DelayDenom = %d, want 12", got)
	}
	// Denom <= 0 means the documented default of sixteenths.
	if got := (HashAdversary{}).DelayDenom(); got != 16 {
		t.Errorf("HashAdversary{}: DelayDenom = %d, want 16", got)
	}
	scripted := ScriptedAdversary{
		Delays: map[trace.MsgKey]rat.Rat{
			{From: 0, To: 1, Seq: 0}: rf(1, 6),
			{From: 1, To: 0, Seq: 0}: rf(3, 4),
		},
		Fallback: FractionAdversary{Frac: rf(1, 5)},
	}
	// lcm(6, 4, 5) = 60.
	if got := scripted.DelayDenom(); got != 60 {
		t.Errorf("ScriptedAdversary: DelayDenom = %d, want 60", got)
	}
	// Midpoint is FractionAdversary{1/2}, so its hint folds in as well.
	scripted.Fallback = Midpoint()
	if got := scripted.DelayDenom(); got != 12 {
		t.Errorf("ScriptedAdversary with midpoint fallback: DelayDenom = %d, want 12", got)
	}
	// A fallback that cannot advertise a hint poisons the whole script's.
	scripted.Fallback = hintlessAdversary{}
	if got := scripted.DelayDenom(); got != 0 {
		t.Errorf("ScriptedAdversary with hintless fallback: DelayDenom = %d, want 0", got)
	}
}

// TestLaneMetrics: construction increments exactly one of the lane counters,
// and a fully on-grid run records zero per-value fallbacks.
func TestLaneMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	met := NewMetrics(reg)
	eng := newTestEngine(t, 3, tickProtocol{period: ri(1)},
		WithAdversary(HashAdversary{Seed: 7, Denom: 8}),
		WithMetrics(met),
	)
	if eng.TimeLane() != "fixed" {
		t.Fatalf("TimeLane = %q, want fixed", eng.TimeLane())
	}
	if met.FixedLaneRuns.Value() != 1 || met.RatLaneRuns.Value() != 0 {
		t.Fatalf("lane counters after fixed construction: fixed=%d rat=%d",
			met.FixedLaneRuns.Value(), met.RatLaneRuns.Value())
	}
	if err := eng.RunUntil(ri(8)); err != nil {
		t.Fatal(err)
	}
	if got := met.FixedFallbacks.Value(); got != 0 {
		t.Errorf("on-grid run recorded %d fallbacks, want 0", got)
	}

	ratEng := newTestEngine(t, 3, tickProtocol{period: ri(1)},
		WithLane(LaneRat), WithMetrics(met))
	if ratEng.TimeLane() != "rat" {
		t.Fatalf("TimeLane = %q, want rat", ratEng.TimeLane())
	}
	if met.RatLaneRuns.Value() != 1 {
		t.Fatalf("RatLaneRuns = %d after rat construction, want 1", met.RatLaneRuns.Value())
	}
}

// TestForkInheritsLane: a fork reuses the parent's scale and compiled
// schedules without re-running detection.
func TestForkInheritsLane(t *testing.T) {
	eng := newTestEngine(t, 3, tickProtocol{period: ri(1)},
		WithAdversary(HashAdversary{Seed: 7, Denom: 8}))
	if eng.TimeLane() != "fixed" {
		t.Fatalf("TimeLane = %q, want fixed", eng.TimeLane())
	}
	if err := eng.RunFor(ri(2)); err != nil {
		t.Fatal(err)
	}
	fork, err := eng.Fork()
	if err != nil {
		t.Fatal(err)
	}
	if fork.TimeLane() != "fixed" || fork.FixedScale() != eng.FixedScale() {
		t.Fatalf("fork lane %q scale %d, want fixed at parent scale %d",
			fork.TimeLane(), fork.FixedScale(), eng.FixedScale())
	}
}

// TestDetectorEvalFactor pins the two-grid detection rule: the value grid is
// the time grid refined by the LCM of the rate denominators, so hardware
// readings H(t) = t·p/q of on-grid times stay on grid.
func TestDetectorEvalFactor(t *testing.T) {
	d := fixed.NewDetector()
	d.AddDen(8)      // times land on eighths
	d.AddEvalDen(16) // a rate 17/16 multiplies values onto 128ths
	scale, ok := d.Scale()
	if !ok {
		t.Fatal("detector failed on a bounded configuration")
	}
	if scale%128 != 0 {
		t.Fatalf("scale %d does not refine the value grid (want a multiple of 128)", scale)
	}
}
