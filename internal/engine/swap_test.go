package engine

import (
	"strings"
	"testing"

	"gcs/internal/clock"
	"gcs/internal/obs"
	"gcs/internal/rat"
)

// swapTestScheds builds n constant-rate-1 schedules plus a variant of node
// `node` whose rates inside [from, to) are pinned to `pin`.
func swapTestScheds(t *testing.T, n, node int, from, to, pin rat.Rat) (base, swapped []*clock.Schedule) {
	t.Helper()
	base = make([]*clock.Schedule, n)
	for i := range base {
		base[i] = clock.Constant(ri(1))
	}
	s, err := base[node].ModifyWindow(from, to, func(rat.Rat) rat.Rat { return pin })
	if err != nil {
		t.Fatal(err)
	}
	swapped = append([]*clock.Schedule(nil), base...)
	swapped[node] = s
	return base, swapped
}

// TestSwapScheduleMatchesFreshRun: fork a trunk just before the mutated
// window opens, swap the schedule in, and drive the fork in lockstep with a
// fresh engine built on the swapped set from time zero — every dispatch must
// land on the same instant, and the queued timers (hardware targets) must
// re-derive to exactly the fresh run's firing times. (The cross-protocol
// byte-identical matrix lives in the root package's fork_test.go.)
func TestSwapScheduleMatchesFreshRun(t *testing.T) {
	from := ri(3)
	base, swappedSet := swapTestScheds(t, 3, 1, from, ri(6), rf(3, 2))
	fresh := newTestEngine(t, 3, tickProtocol{period: ri(1)}, WithSchedules(swappedSet))
	trunk := newTestEngine(t, 3, tickProtocol{period: ri(1)}, WithSchedules(base))
	for {
		nt, ok := trunk.NextEventTime()
		if !ok || !nt.Less(from) {
			break
		}
		if _, err := trunk.Step(); err != nil {
			t.Fatal(err)
		}
	}
	fork, err := trunk.Fork()
	if err != nil {
		t.Fatal(err)
	}
	if err := fork.SwapSchedule(1, swappedSet[1]); err != nil {
		t.Fatal(err)
	}
	// Lockstep to the horizon: the prefix replays on the fresh engine, then
	// both dispatch the re-derived suffix.
	for fresh.Steps() < fork.Steps() {
		if ok, err := fresh.Step(); err != nil || !ok {
			t.Fatalf("fresh prefix replay: ok=%v err=%v", ok, err)
		}
	}
	for {
		fOK, err := fork.Step()
		if err != nil {
			t.Fatal(err)
		}
		gOK, err := fresh.Step()
		if err != nil {
			t.Fatal(err)
		}
		if fOK != gOK {
			t.Fatalf("fork ok=%v, fresh ok=%v at step %d", fOK, gOK, fork.Steps())
		}
		if !fOK {
			break
		}
		if !fork.Now().Equal(fresh.Now()) {
			t.Fatalf("step %d: fork at %s, fresh at %s", fork.Steps(), fork.Now(), fresh.Now())
		}
		if fork.Steps() > 200 {
			break // both engines agree over a long window; stop the unbounded tick run
		}
	}
}

// TestSwapScheduleErrors: every precondition fails loudly — invalid node,
// nil schedule, drift-bound violation, divergence before Now(), and a
// poisoned engine — and a successful swap counts in the metrics.
func TestSwapScheduleErrors(t *testing.T) {
	reg := obs.NewRegistry()
	met := NewMetrics(reg)
	base, swappedSet := swapTestScheds(t, 3, 1, ri(3), ri(6), rf(3, 2))
	eng := newTestEngine(t, 3, tickProtocol{period: ri(1)}, WithSchedules(base), WithMetrics(met))
	if err := eng.RunUntil(ri(2)); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		node int
		s    *clock.Schedule
		want string
	}{
		{"invalid node", 7, swappedSet[1], "invalid node"},
		{"nil schedule", 1, nil, "nil schedule"},
		{"drift violation", 1, clock.Constant(ri(3)), "drift"},
		{"pre-now divergence", 1, clock.Constant(rf(5, 4)), "diverges"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := eng.SwapSchedule(tc.node, tc.s)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %v does not mention %q", err, tc.want)
			}
		})
	}
	if met.ScheduleSwaps.Value() != 0 {
		t.Fatalf("rejected swaps counted: %d", met.ScheduleSwaps.Value())
	}
	if err := eng.SwapSchedule(1, swappedSet[1]); err != nil {
		t.Fatal(err)
	}
	if met.ScheduleSwaps.Value() != 1 {
		t.Fatalf("ScheduleSwaps = %d, want 1", met.ScheduleSwaps.Value())
	}

	bad := newTestEngine(t, 2, selfSendProtocol{})
	if _, err := bad.Step(); err == nil {
		t.Fatal("self-send did not fail the run")
	}
	if err := bad.SwapSchedule(0, clock.Constant(ri(1))); err == nil || !strings.Contains(err.Error(), "failed engine") {
		t.Fatalf("swap on poisoned engine: %v", err)
	}
}

// TestSwapScheduleCopiesOnWrite: swapping a fork's schedule never leaks into
// the trunk it was forked from — the schedule slices are shared by reference
// at fork time and must be copied before mutation.
func TestSwapScheduleCopiesOnWrite(t *testing.T) {
	base, swappedSet := swapTestScheds(t, 3, 1, ri(3), ri(6), rf(3, 2))
	trunk := newTestEngine(t, 3, tickProtocol{period: ri(1)}, WithSchedules(base))
	if err := trunk.RunUntil(ri(2)); err != nil {
		t.Fatal(err)
	}
	fork, err := trunk.Fork()
	if err != nil {
		t.Fatal(err)
	}
	if err := fork.SwapSchedule(1, swappedSet[1]); err != nil {
		t.Fatal(err)
	}
	if trunk.scheds[1] != base[1] {
		t.Fatal("swap on the fork replaced the trunk's schedule")
	}
	if fork.scheds[1] != swappedSet[1] {
		t.Fatal("swap did not take on the fork")
	}
}

// TestSwapScheduleOffGridDropsLane: a swapped schedule whose rates do not fit
// the detected tick grid drops the engine to the rat lane — and the run still
// agrees with a fresh rat-lane engine on the swapped set.
func TestSwapScheduleOffGridDropsLane(t *testing.T) {
	base, _ := swapTestScheds(t, 3, 1, ri(3), ri(6), rf(3, 2))
	// An in-drift rate with a huge denominator: off any detected scale.
	offGrid, err := base[1].ModifyWindow(ri(3), ri(6), func(rat.Rat) rat.Rat {
		return rat.MustFrac(1000003, 1000002)
	})
	if err != nil {
		t.Fatal(err)
	}
	eng := newTestEngine(t, 3, tickProtocol{period: ri(1)}, WithSchedules(base))
	if eng.scale == 0 {
		t.Skip("fixed lane not engaged; lane-drop path unreachable")
	}
	if err := eng.RunUntil(ri(2)); err != nil {
		t.Fatal(err)
	}
	if err := eng.SwapSchedule(1, offGrid); err != nil {
		t.Fatal(err)
	}
	if eng.scale != 0 || eng.fscheds != nil || eng.nowTickOK {
		t.Fatalf("off-grid swap kept the fixed lane: scale=%d", eng.scale)
	}
	if err := eng.RunUntil(ri(8)); err != nil {
		t.Fatal(err)
	}
}
