package engine

import (
	"strings"
	"testing"

	"gcs/internal/clock"
	"gcs/internal/rat"
	"gcs/internal/trace"
)

// countingAdversary is a minimal adaptive adversary: it observes the run and
// delays each message by 0 until it has seen Trigger dispatched events, then
// by the full bound. Cloneable.
type countingAdversary struct {
	trigger int
	seen    int
}

func (a *countingAdversary) Delay(_, _ int, _ uint64, _ rat.Rat, bound rat.Rat) rat.Rat {
	if a.seen >= a.trigger {
		return bound
	}
	return rat.Rat{}
}

func (a *countingAdversary) OnAction(act trace.Action) {
	if act.Kind != trace.KindSend {
		a.seen++
	}
}
func (a *countingAdversary) OnSend(trace.MsgRecord)    {}
func (a *countingAdversary) OnDeliver(trace.MsgRecord) {}

func (a *countingAdversary) CloneAdversary() Adversary {
	c := *a
	return &c
}

// observingAdversary is stateful (it watches the run) but not cloneable: no
// CloneAdversary method.
type observingAdversary struct{ seen int }

func (a *observingAdversary) Delay(_, _ int, _ uint64, _ rat.Rat, bound rat.Rat) rat.Rat {
	return bound
}
func (a *observingAdversary) OnAction(trace.Action)     { a.seen++ }
func (a *observingAdversary) OnSend(trace.MsgRecord)    {}
func (a *observingAdversary) OnDeliver(trace.MsgRecord) {}

// clockOnlyObserving subscribes to declarations but cannot be cloned: it
// must classify as stateful-not-cloneable like any other observing
// adversary.
type clockOnlyObserving struct{}

func (clockOnlyObserving) Delay(_, _ int, _ uint64, _ rat.Rat, bound rat.Rat) rat.Rat {
	return bound
}
func (clockOnlyObserving) OnDeclare(trace.Decl) {}

// TestCloneAdversaryState: the classification table — stateless shared,
// stateful cloned, observing-without-clone refused, and ScriptedAdversary
// transparent over each.
func TestCloneAdversaryState(t *testing.T) {
	if c, ok := CloneAdversaryState(Midpoint()); !ok || c == nil {
		t.Fatalf("stateless adversary not shareable: %v %v", c, ok)
	}
	counting := &countingAdversary{trigger: 3}
	c, ok := CloneAdversaryState(counting)
	if !ok {
		t.Fatal("cloneable stateful adversary reported not cloneable")
	}
	if c.(*countingAdversary) == counting {
		t.Fatal("clone is the same instance")
	}
	if _, ok := CloneAdversaryState(&observingAdversary{}); ok {
		t.Fatal("observing adversary without CloneAdversary reported cloneable")
	}
	if _, ok := CloneAdversaryState(clockOnlyObserving{}); ok {
		t.Fatal("ClockObserver-only adversary without CloneAdversary reported cloneable")
	}

	// Scripted wrappers delegate to the tail.
	if _, ok := CloneAdversaryState(ScriptedAdversary{Fallback: Midpoint()}); !ok {
		t.Fatal("scripted over stateless tail not cloneable")
	}
	sc, ok := CloneAdversaryState(ScriptedAdversary{Fallback: counting})
	if !ok {
		t.Fatal("scripted over cloneable tail not cloneable")
	}
	if sc.(ScriptedAdversary).Fallback.(*countingAdversary) == counting {
		t.Fatal("scripted clone shares its tail state")
	}
	if _, ok := CloneAdversaryState(ScriptedAdversary{Fallback: &observingAdversary{}}); ok {
		t.Fatal("scripted over non-cloneable tail reported cloneable")
	}
}

// TestAdversaryFeedback: an observing adversary sees exactly the event
// stream a regular observer sees, including through a Scripted wrapper.
func TestAdversaryFeedback(t *testing.T) {
	adv := &countingAdversary{trigger: 1 << 30}
	var regular int
	eng := newTestEngine(t, 3, tickProtocol{period: ri(1)},
		WithAdversary(ScriptedAdversary{Fallback: adv}),
		WithObservers(Funcs{Action: func(a trace.Action) {
			if a.Kind != trace.KindSend {
				regular++
			}
		}}),
	)
	if err := eng.RunUntil(ri(5)); err != nil {
		t.Fatal(err)
	}
	if adv.seen == 0 || adv.seen != regular {
		t.Fatalf("adversary feedback saw %d events, regular observer %d", adv.seen, regular)
	}

	// The pointer form of the wrapper unwraps identically: feedback still
	// reaches the tail.
	ptrTail := &countingAdversary{trigger: 1 << 30}
	ptrEng := newTestEngine(t, 3, tickProtocol{period: ri(1)},
		WithAdversary(&ScriptedAdversary{Fallback: ptrTail}))
	if err := ptrEng.RunUntil(ri(5)); err != nil {
		t.Fatal(err)
	}
	if ptrTail.seen != adv.seen {
		t.Fatalf("pointer-wrapped tail saw %d events, value-wrapped %d", ptrTail.seen, adv.seen)
	}
}

// declWatcherAdversary subscribes only to the clock-declaration stream: no
// Observer, just ClockObserver. Feedback must still reach it.
type declWatcherAdversary struct{ decls int }

func (a *declWatcherAdversary) Delay(_, _ int, _ uint64, _ rat.Rat, bound rat.Rat) rat.Rat {
	return bound
}
func (a *declWatcherAdversary) OnDeclare(trace.Decl) { a.decls++ }
func (a *declWatcherAdversary) CloneAdversary() Adversary {
	c := *a
	return &c
}

// TestClockOnlyAdversaryFeedback: an adversary implementing only
// ClockObserver (not the three-method Observer) still receives declaration
// feedback — each hook is resolved independently — and is classified as
// stateful.
func TestClockOnlyAdversaryFeedback(t *testing.T) {
	adv := &declWatcherAdversary{}
	if _, ok := CloneAdversaryState(adv); !ok {
		t.Fatal("clock-only stateful adversary with CloneAdversary reported not cloneable")
	}
	// Node 0 runs fast so its gossiped readings exceed the successors'
	// logical clocks and force SetLogical declarations.
	scheds := func() []*clock.Schedule {
		return []*clock.Schedule{
			clock.Constant(rf(3, 2)), clock.Constant(ri(1)), clock.Constant(ri(1)),
		}
	}
	eng := newTestEngine(t, 3, tickProtocol{period: ri(1)},
		WithAdversary(adv), WithSchedules(scheds()))
	if err := eng.RunUntil(ri(8)); err != nil {
		t.Fatal(err)
	}
	if adv.decls == 0 {
		t.Fatal("ClockObserver-only adversary received no declaration feedback")
	}
	// Wrapped in a script, the declarations still reach the tail.
	tail := &declWatcherAdversary{}
	wrapped := newTestEngine(t, 3, tickProtocol{period: ri(1)},
		WithAdversary(ScriptedAdversary{Fallback: tail}), WithSchedules(scheds()))
	if err := wrapped.RunUntil(ri(8)); err != nil {
		t.Fatal(err)
	}
	if tail.decls != adv.decls {
		t.Fatalf("wrapped clock-only tail saw %d declarations, bare adversary %d", tail.decls, adv.decls)
	}
}

// TestForkClonesStatefulAdversary: after a fork, trunk and fork adversaries
// evolve independently, and the fork's behavior matches a fresh run (same
// observations ⇒ same decisions).
func TestForkClonesStatefulAdversary(t *testing.T) {
	build := func() (*Engine, *countingAdversary) {
		adv := &countingAdversary{trigger: 5}
		return newTestEngine(t, 3, tickProtocol{period: ri(1)}, WithAdversary(adv)), adv
	}
	fresh, freshAdv := build()
	if err := fresh.RunUntil(ri(6)); err != nil {
		t.Fatal(err)
	}

	trunk, trunkAdv := build()
	for trunk.Steps() < fresh.Steps()/2 {
		if ok, err := trunk.Step(); err != nil || !ok {
			t.Fatalf("ok=%v err=%v", ok, err)
		}
	}
	seenAtFork := trunkAdv.seen
	fork, err := trunk.Fork()
	if err != nil {
		t.Fatal(err)
	}
	forkAdv, ok := fork.Adversary().(*countingAdversary)
	if !ok || forkAdv == trunkAdv {
		t.Fatalf("fork adversary %T shares trunk state", fork.Adversary())
	}
	if forkAdv.seen != seenAtFork {
		t.Fatalf("fork adversary state %d, want the trunk's fork-point state %d", forkAdv.seen, seenAtFork)
	}
	if err := fork.RunUntil(ri(6)); err != nil {
		t.Fatal(err)
	}
	if trunkAdv.seen != seenAtFork {
		t.Fatalf("driving the fork mutated the trunk adversary: %d → %d", seenAtFork, trunkAdv.seen)
	}
	if fork.Steps() != fresh.Steps() || forkAdv.seen != freshAdv.seen {
		t.Fatalf("fork steps=%d seen=%d, fresh steps=%d seen=%d",
			fork.Steps(), forkAdv.seen, fresh.Steps(), freshAdv.seen)
	}
}

// TestForkRefusesNonCloneableStatefulAdversary: forking with an observing,
// non-cloneable adversary fails loudly instead of silently sharing state.
func TestForkRefusesNonCloneableStatefulAdversary(t *testing.T) {
	eng := newTestEngine(t, 2, silentProtocol{}, WithAdversary(&observingAdversary{}))
	if _, err := eng.Fork(); err == nil || !strings.Contains(err.Error(), "not cloneable") {
		t.Fatalf("fork with non-cloneable stateful adversary: %v", err)
	}
	// The same tail hidden behind a Scripted wrapper is equally refused.
	wrapped := newTestEngine(t, 2, silentProtocol{},
		WithAdversary(ScriptedAdversary{Fallback: &observingAdversary{}}))
	if _, err := wrapped.Fork(); err == nil || !strings.Contains(err.Error(), "not cloneable") {
		t.Fatalf("fork with wrapped non-cloneable adversary: %v", err)
	}
}

// TestSetAdversaryRebindsFeedback: after SetAdversary the new adversary's
// feedback hook is live and the old one is detached.
func TestSetAdversaryRebindsFeedback(t *testing.T) {
	first := &countingAdversary{trigger: 1 << 30}
	eng := newTestEngine(t, 3, tickProtocol{period: ri(1)}, WithAdversary(first))
	if err := eng.RunUntil(ri(3)); err != nil {
		t.Fatal(err)
	}
	seen := first.seen
	if seen == 0 {
		t.Fatal("first adversary observed nothing")
	}
	second := &countingAdversary{trigger: 1 << 30}
	if err := eng.SetAdversary(second); err != nil {
		t.Fatal(err)
	}
	if err := eng.RunUntil(ri(6)); err != nil {
		t.Fatal(err)
	}
	if first.seen != seen {
		t.Fatalf("detached adversary kept observing: %d → %d", seen, first.seen)
	}
	if second.seen == 0 {
		t.Fatal("rebound adversary observed nothing")
	}
}
