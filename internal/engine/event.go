package engine

import (
	"gcs/internal/rat"
	"gcs/internal/trace"
)

// event is a scheduled occurrence. Ordering must be a deterministic function
// of node-visible data wherever possible so that the per-node order is
// invariant under the monotone time remappings used by the lower-bound
// constructions: (time, kind, node, peer, msgSeq/timerID, seq).
type event struct {
	time     rat.Rat
	kind     trace.Kind
	node     int // destination node
	from     int // Recv only
	msgSeq   uint64
	timerID  int
	payload  Message
	sendReal rat.Rat // Recv only: real send time, for the delivery record
	delay    rat.Rat // Recv only: adversary-chosen delay
	seq      uint64  // global scheduling sequence, final tie-breaker
	index    int     // heap bookkeeping
}

// kindRank orders simultaneous events: inits, then message deliveries, then
// timers.
func kindRank(k trace.Kind) int {
	switch k {
	case trace.KindInit:
		return 0
	case trace.KindRecv:
		return 1
	case trace.KindTimer:
		return 2
	default:
		return 3
	}
}

// less is the deterministic total order on events.
func (e *event) less(o *event) bool {
	if c := e.time.Cmp(o.time); c != 0 {
		return c < 0
	}
	if a, b := kindRank(e.kind), kindRank(o.kind); a != b {
		return a < b
	}
	if e.node != o.node {
		return e.node < o.node
	}
	if e.from != o.from {
		return e.from < o.from
	}
	if e.msgSeq != o.msgSeq {
		return e.msgSeq < o.msgSeq
	}
	if e.timerID != o.timerID {
		return e.timerID < o.timerID
	}
	return e.seq < o.seq
}

// eventQueue is a binary heap of events implementing container/heap.
type eventQueue struct {
	items []*event
}

func (q *eventQueue) Len() int { return len(q.items) }

func (q *eventQueue) Less(i, j int) bool { return q.items[i].less(q.items[j]) }

func (q *eventQueue) Swap(i, j int) {
	q.items[i], q.items[j] = q.items[j], q.items[i]
	q.items[i].index = i
	q.items[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev, ok := x.(*event)
	if !ok {
		panic("engine: push of non-event")
	}
	ev.index = len(q.items)
	q.items = append(q.items, ev)
}

func (q *eventQueue) Pop() any {
	old := q.items
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	q.items = old[:n-1]
	return ev
}
