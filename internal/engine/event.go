package engine

import (
	"gcs/internal/rat"
	"gcs/internal/trace"
)

// event is a scheduled occurrence. Ordering must be a deterministic function
// of node-visible data wherever possible so that the per-node order is
// invariant under the monotone time remappings used by the lower-bound
// constructions: (time, kind, node, peer, msgSeq/timerID, seq).
type event struct {
	time     rat.Rat
	kind     trace.Kind
	node     int // destination node
	from     int // Recv only
	msgSeq   uint64
	timerID  int
	payload  Message
	payStr   string  // Recv only: canonical payload string, cached at Send
	hasStr   bool    // payStr is valid (it may legitimately be "")
	sendReal rat.Rat // Recv only: real send time, for the delivery record
	delay    rat.Rat // Recv only: adversary-chosen delay
	seq      uint64  // global scheduling sequence, final tie-breaker

	// Fixed-lane key: time as exact ticks of 1/engine.scale, valid iff
	// tickOK. Two tickOK events compare by integer ticks; any other pair
	// compares by exact rational time — the orders agree because a tick
	// count represents its time exactly.
	tick   int64
	tickOK bool
	// Cached hardware reading of the destination node at `time`, computed
	// when the event was scheduled: dispatch never re-evaluates the clock,
	// and forks inherit queued readings instead of re-deriving them.
	hw    rat.Rat
	hasHW bool
	// hwTarget marks hw as the event's source of truth rather than a cache:
	// a timer fires when the node's hardware clock reads hw, and time/tick
	// are merely that target pushed through the node's current rate
	// schedule. SwapSchedule re-derives time and tick from hw for such
	// events; for time-authoritative events (init, recv — a delivery's real
	// time is send + delay regardless of the recipient's clock) it instead
	// re-derives the cached reading from the unchanged time.
	hwTarget bool
}

// kindRank orders simultaneous events: inits, then message deliveries, then
// timers.
func kindRank(k trace.Kind) int {
	switch k {
	case trace.KindInit:
		return 0
	case trace.KindRecv:
		return 1
	case trace.KindTimer:
		return 2
	default:
		return 3
	}
}

// less is the deterministic total order on events. The seq tie-breaker is
// unique per event, so the order is strict and total — the pop order of any
// correct heap over it is the same, independent of internal heap layout.
func (e *event) less(o *event) bool {
	if e.tickOK && o.tickOK {
		// Same grid, exact values: integer comparison is the rational
		// comparison. Equal ticks mean equal times — fall through to the
		// deterministic tie-breakers.
		if e.tick != o.tick {
			return e.tick < o.tick
		}
	} else if c := e.time.Cmp(o.time); c != 0 {
		return c < 0
	}
	if a, b := kindRank(e.kind), kindRank(o.kind); a != b {
		return a < b
	}
	if e.node != o.node {
		return e.node < o.node
	}
	if e.from != o.from {
		return e.from < o.from
	}
	if e.msgSeq != o.msgSeq {
		return e.msgSeq < o.msgSeq
	}
	if e.timerID != o.timerID {
		return e.timerID < o.timerID
	}
	return e.seq < o.seq
}

// eventQueue is a slab-backed binary min-heap. Events live in a per-engine
// slab and are addressed by index: the heap itself is a flat []int32, so
// sift operations move 4-byte indices instead of chasing per-event pointers,
// dispatched slots return to a free list instead of the garbage collector
// (steady-state stepping allocates no events), and Fork clones the whole
// queue with three bulk copies instead of one allocation per pending event.
type eventQueue struct {
	slab []event // stable storage, addressed by index
	heap []int32 // heap order over slab indices
	free []int32 // recycled slab slots
}

// Len returns the number of pending events.
func (q *eventQueue) Len() int { return len(q.heap) }

// alloc returns a free slab slot, growing the slab only when the free list
// is empty. The returned slot's previous contents are undefined; the caller
// must overwrite it fully before push.
func (q *eventQueue) alloc() int32 {
	if n := len(q.free); n > 0 {
		idx := q.free[n-1]
		q.free = q.free[:n-1]
		return idx
	}
	q.slab = append(q.slab, event{})
	return int32(len(q.slab) - 1)
}

// release returns a slot to the free list, clearing it so the payload
// reference does not pin delivered messages in memory.
func (q *eventQueue) release(idx int32) {
	q.slab[idx] = event{}
	q.free = append(q.free, idx)
}

// push inserts slot idx into the heap order.
func (q *eventQueue) push(idx int32) {
	q.heap = append(q.heap, idx)
	q.up(len(q.heap) - 1)
}

// top returns the slab index of the minimum event. The heap must be
// non-empty.
func (q *eventQueue) top() int32 { return q.heap[0] }

// pop removes and returns the slab index of the minimum event. The caller
// owns the slot and must release it once done.
func (q *eventQueue) pop() int32 {
	idx := q.heap[0]
	last := len(q.heap) - 1
	q.heap[0] = q.heap[last]
	q.heap = q.heap[:last]
	if last > 0 {
		q.down(0)
	}
	return idx
}

func (q *eventQueue) less(a, b int32) bool {
	return q.slab[a].less(&q.slab[b])
}

func (q *eventQueue) up(i int) {
	h := q.heap
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (q *eventQueue) down(i int) {
	h := q.heap
	n := len(h)
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		min := left
		if right := left + 1; right < n && q.less(h[right], h[left]) {
			min = right
		}
		if !q.less(h[min], h[i]) {
			break
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
}

// cloneFrom replaces q's contents with a bulk copy of src: three slice
// copies, independent of the number of pending events' contents. Payload
// references are shared — the Message contract demands value-determined,
// never-mutated payloads.
func (q *eventQueue) cloneFrom(src *eventQueue) {
	q.slab = append(q.slab[:0], src.slab...)
	q.heap = append(q.heap[:0], src.heap...)
	q.free = append(q.free[:0], src.free...)
}
