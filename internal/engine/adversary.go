package engine

import (
	"hash/fnv"
	"strconv"

	"gcs/internal/rat"
	"gcs/internal/trace"
)

// FractionAdversary assigns every message the delay frac·bound. frac must be
// in [0, 1]. The paper's constructions use frac = 1/2 ("message delay
// between k1 and k2 is |k1−k2|/2").
type FractionAdversary struct {
	Frac rat.Rat
}

var _ Adversary = FractionAdversary{}

// Delay implements Adversary.
func (a FractionAdversary) Delay(_, _ int, _ uint64, _ rat.Rat, bound rat.Rat) rat.Rat {
	return a.Frac.Mul(bound)
}

// Midpoint returns the frac=1/2 adversary used throughout the constructions.
func Midpoint() FractionAdversary { return FractionAdversary{Frac: rat.MustFrac(1, 2)} }

// ScriptedAdversary replays exact per-message delays from a script, falling
// back to Fallback for messages outside the script. The Add Skew
// re-simulation uses it to realize the remapped receive times.
type ScriptedAdversary struct {
	Delays   map[trace.MsgKey]rat.Rat
	Fallback Adversary
}

var _ Adversary = ScriptedAdversary{}

// Delay implements Adversary.
func (a ScriptedAdversary) Delay(from, to int, seq uint64, sendReal rat.Rat, bound rat.Rat) rat.Rat {
	if d, ok := a.Delays[trace.MsgKey{From: from, To: to, Seq: seq}]; ok {
		return d
	}
	return a.Fallback.Delay(from, to, seq, sendReal, bound)
}

// FuncAdversary adapts a function to the Adversary interface. The function
// must be deterministic in its arguments.
type FuncAdversary func(from, to int, seq uint64, sendReal rat.Rat, bound rat.Rat) rat.Rat

var _ Adversary = FuncAdversary(nil)

// Delay implements Adversary.
func (f FuncAdversary) Delay(from, to int, seq uint64, sendReal rat.Rat, bound rat.Rat) rat.Rat {
	return f(from, to, seq, sendReal, bound)
}

// HashAdversary assigns pseudo-random delays frac·bound with frac drawn
// deterministically from a hash of (seed, from, to, seq) — independent of
// event processing order, so runs are reproducible. Delays are quantized to
// Denom-ths of the bound to keep rational arithmetic small.
type HashAdversary struct {
	Seed  uint64
	Denom int64 // quantization; 0 means 16
}

var _ Adversary = HashAdversary{}

// Delay implements Adversary.
func (a HashAdversary) Delay(from, to int, seq uint64, _ rat.Rat, bound rat.Rat) rat.Rat {
	denom := a.Denom
	if denom <= 0 {
		denom = 16
	}
	h := fnv.New64a()
	write := func(v uint64) {
		var buf [8]byte
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		_, _ = h.Write(buf[:])
	}
	write(a.Seed)
	write(uint64(from))
	write(uint64(to))
	write(seq)
	num := int64(h.Sum64() % uint64(denom+1)) // in [0, denom]
	return rat.MustFrac(num, denom).Mul(bound)
}

// String returns a debugging label.
func (a HashAdversary) String() string { return "hash-" + strconv.FormatUint(a.Seed, 10) }
