package engine

import (
	"fmt"
	"hash/fnv"
	"strconv"

	"gcs/internal/rat"
	"gcs/internal/trace"
)

// CheckedAdversary is an optional Adversary extension for adversaries whose
// delay decision can fail (for example, a script with no entry for a message
// and no fallback). When the engine's adversary implements it, the engine
// calls DelayChecked instead of Delay and fails the run with the returned
// error — a precise diagnosis instead of a generic range violation or a
// panic deep inside the event loop.
type CheckedAdversary interface {
	Adversary
	// DelayChecked returns the delay for the message, or an error when the
	// adversary defines no decision for it.
	DelayChecked(from, to int, seq uint64, sendReal rat.Rat, bound rat.Rat) (rat.Rat, error)
}

// DropAdversary is an optional Adversary extension for fault models. Before
// asking the adversary to price a delay, the engine asks the chain's drop
// layer (resolved through AdversaryWrapper.Unwrap by bindAdversary) whether
// the message is lost: a dropped message consumes its per-pair sequence
// number and is recorded in the ledger with Dropped set, but is never
// assigned a delay and never delivered. The sender's Send action is still
// emitted — a fail-silent loss is invisible to the sender, matching the
// paper's indistinguishability arguments.
//
// Drop must be a pure function of its arguments (plus immutable
// configuration): engine forks and the prefix-cached search replay message
// sends live, so a drop decision that depended on hidden mutable state
// would diverge between a trunk and its fork.
type DropAdversary interface {
	Adversary
	// Drop reports whether the message from→to with per-pair sequence seq,
	// sent at real time sendReal, is lost.
	Drop(from, to int, seq uint64, sendReal rat.Rat) bool
}

// FractionAdversary assigns every message the delay frac·bound. frac must be
// in [0, 1]. The paper's constructions use frac = 1/2 ("message delay
// between k1 and k2 is |k1−k2|/2").
type FractionAdversary struct {
	Frac rat.Rat
}

var _ Adversary = FractionAdversary{}

// Delay implements Adversary.
func (a FractionAdversary) Delay(_, _ int, _ uint64, _ rat.Rat, bound rat.Rat) rat.Rat {
	return a.Frac.Mul(bound)
}

// Midpoint returns the frac=1/2 adversary used throughout the constructions.
func Midpoint() FractionAdversary { return FractionAdversary{Frac: rat.MustFrac(1, 2)} }

// ScriptedAdversary replays exact per-message delays from a script, falling
// back to the Fallback tail adversary for messages beyond the script. The
// Add Skew re-simulation uses it to realize the remapped receive times, and
// the worst-case search (internal/search) uses it to branch a run: a
// captured decision prefix replays exactly while decisions past the script
// end are delegated to the tail.
//
// Semantics past the script end are explicit: a message with no script entry
// is delegated to Fallback, and a nil Fallback is a scripting error —
// DelayChecked reports it, the engine fails the run with it, and a direct
// Delay call panics with the same message (it has no error channel).
type ScriptedAdversary struct {
	Delays   map[trace.MsgKey]rat.Rat
	Fallback Adversary
}

var (
	_ CheckedAdversary  = ScriptedAdversary{}
	_ StatefulAdversary = ScriptedAdversary{}
	_ AdversaryWrapper  = ScriptedAdversary{}
)

// Unwrap implements AdversaryWrapper: the script is bookkeeping over the
// Fallback tail, which owns observation state and fault configuration.
func (a ScriptedAdversary) Unwrap() Adversary { return a.Fallback }

// CloneAdversary implements StatefulAdversary transparently: the script map
// is never mutated during replay, so the clone shares it, while a stateful
// Fallback tail is cloned so two branches replaying the same script never
// share tail state. When the Fallback is stateful but not cloneable the
// wrapper cannot be cloned either — CloneAdversary returns nil, which
// CloneAdversaryState and Engine.Fork report as "not cloneable".
func (a ScriptedAdversary) CloneAdversary() Adversary {
	if a.Fallback == nil {
		return a
	}
	tail, ok := CloneAdversaryState(a.Fallback)
	if !ok {
		return nil
	}
	return ScriptedAdversary{Delays: a.Delays, Fallback: tail}
}

// Delay implements Adversary. It panics on a message outside the script when
// no Fallback is set; inside an Engine the CheckedAdversary path turns that
// condition into a failed run instead.
func (a ScriptedAdversary) Delay(from, to int, seq uint64, sendReal rat.Rat, bound rat.Rat) rat.Rat {
	d, err := a.DelayChecked(from, to, seq, sendReal, bound)
	if err != nil {
		panic(err)
	}
	return d
}

// DelayChecked implements CheckedAdversary: it returns the scripted delay,
// delegates to the Fallback tail for messages beyond the script, and errors
// when the script is exhausted with no tail to fall back to.
func (a ScriptedAdversary) DelayChecked(from, to int, seq uint64, sendReal rat.Rat, bound rat.Rat) (rat.Rat, error) {
	if d, ok := a.Delays[trace.MsgKey{From: from, To: to, Seq: seq}]; ok {
		return d, nil
	}
	if a.Fallback == nil {
		return rat.Rat{}, fmt.Errorf("engine: scripted adversary has no delay for message %d→%d seq %d and no Fallback tail (script exhausted?)", from, to, seq)
	}
	return a.Fallback.Delay(from, to, seq, sendReal, bound), nil
}

// FuncAdversary adapts a function to the Adversary interface. The function
// must be deterministic in its arguments.
type FuncAdversary func(from, to int, seq uint64, sendReal rat.Rat, bound rat.Rat) rat.Rat

var _ Adversary = FuncAdversary(nil)

// Delay implements Adversary.
func (f FuncAdversary) Delay(from, to int, seq uint64, sendReal rat.Rat, bound rat.Rat) rat.Rat {
	return f(from, to, seq, sendReal, bound)
}

// HashAdversary assigns pseudo-random delays frac·bound with frac drawn
// deterministically from a hash of (seed, from, to, seq) — independent of
// event processing order, so runs are reproducible. Delays are quantized to
// Denom-ths of the bound to keep rational arithmetic small.
type HashAdversary struct {
	Seed  uint64
	Denom int64 // quantization; 0 means 16
}

var _ Adversary = HashAdversary{}

// Delay implements Adversary.
func (a HashAdversary) Delay(from, to int, seq uint64, _ rat.Rat, bound rat.Rat) rat.Rat {
	denom := a.Denom
	if denom <= 0 {
		denom = 16
	}
	h := fnv.New64a()
	write := func(v uint64) {
		var buf [8]byte
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		_, _ = h.Write(buf[:])
	}
	write(a.Seed)
	write(uint64(from))
	write(uint64(to))
	write(seq)
	num := int64(h.Sum64() % uint64(denom+1)) // in [0, denom]
	return rat.MustFrac(num, denom).Mul(bound)
}

// String returns a debugging label.
func (a HashAdversary) String() string { return "hash-" + strconv.FormatUint(a.Seed, 10) }
