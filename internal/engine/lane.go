package engine

import (
	"sync/atomic"

	"gcs/internal/clock"
	"gcs/internal/fixed"
)

// Lane selects the arithmetic lane for an engine's hot path.
//
// The fixed lane is purely an execution strategy: every value it produces is
// exact and normalized identically to the rat lane's, so traces, ledgers,
// and search results are byte-identical whichever lane runs (pinned by the
// cross-lane differential tests). Any single value that does not land on the
// detected grid falls back to rational arithmetic for that value alone.
type Lane uint8

const (
	// LaneAuto (the default) detects at construction whether the run's
	// rates, delays, and schedule breakpoints share a bounded common
	// denominator, and runs event keys, clock evaluation, and clock
	// inversion on scaled int64 ticks when they do.
	LaneAuto Lane = iota
	// LaneRat forces exact rational arithmetic everywhere, skipping
	// detection. The reference lane for differential testing, and the
	// fallback when detection fails.
	LaneRat
)

// String returns "auto" or "rat".
func (l Lane) String() string {
	if l == LaneRat {
		return "rat"
	}
	return "auto"
}

// WithLane selects the engine's arithmetic lane (default LaneAuto).
func WithLane(l Lane) Option { return func(e *Engine) { e.lane = l } }

// defaultLane is the process-wide lane for engines built with LaneAuto.
// Differential tests flip it to force whole subsystems (search, campaigns)
// onto the rat lane without threading an option through every constructor.
var defaultLane atomic.Uint32

// SetDefaultLane sets the process-wide lane used by engines constructed
// with LaneAuto. Intended for tests and experiments; the zero value is
// LaneAuto.
func SetDefaultLane(l Lane) { defaultLane.Store(uint32(l)) }

// DefaultLane returns the process-wide lane for LaneAuto engines.
func DefaultLane() Lane { return Lane(defaultLane.Load()) }

// FixedLaneAdopter is an optional Observer extension: an observer that can
// mirror its own state in scaled int64 ticks implements it, and Observe (or
// New, for observers attached via WithObservers) hands it the engine's
// detected scale — 0 when the run stays on the rat lane. Adoption is purely
// an execution strategy; an adopting observer must produce byte-identical
// results either way (SkewTracker.AdoptFixedLane is the canonical
// implementation).
type FixedLaneAdopter interface {
	AdoptFixedLane(scale int64)
}

// DenomHinter is an optional Adversary extension advertising the delay
// quantization: DelayDenom returns a positive D such that every delay the
// adversary can return has a denominator dividing D times the denominator of
// the bound it was given, or 0 when no such bound is known. The engine folds
// the hint into fixed-lane scale detection; a missing or wrong hint never
// affects correctness — off-grid delays fall back to the rat lane value by
// value — it only decides how often the fast lane engages.
type DenomHinter interface {
	DelayDenom() int64
}

// DelayDenom implements DenomHinter: delays are Frac·bound.
func (a FractionAdversary) DelayDenom() int64 {
	den, ok := a.Frac.Den()
	if !ok {
		return 0
	}
	return den
}

// DelayDenom implements DenomHinter: delays are quantized to Denom-ths of
// the bound.
func (a HashAdversary) DelayDenom() int64 {
	if a.Denom <= 0 {
		return 16
	}
	return a.Denom
}

// DelayDenom implements DenomHinter: the bounded LCM of every scripted
// delay's denominator and the Fallback tail's own hint. Map iteration order
// does not matter — the LCM is commutative.
func (a ScriptedAdversary) DelayDenom() int64 {
	d := int64(1)
	for _, delay := range a.Delays {
		den, ok := delay.Den()
		if !ok {
			return 0
		}
		d, ok = fixed.LCM(d, den)
		if !ok {
			return 0
		}
	}
	if a.Fallback != nil {
		h, ok := a.Fallback.(DenomHinter)
		if !ok {
			return 0
		}
		fd := h.DelayDenom()
		if fd <= 0 {
			return 0
		}
		var lok bool
		d, lok = fixed.LCM(d, fd)
		if !lok {
			return 0
		}
	}
	return d
}

// detectLane runs fixed-lane scale detection at construction: the bounded
// LCM over every schedule's grid requirements, every pairwise message-delay
// bound, and the adversary's advertised delay quantization. On success the
// engine compiles each schedule onto the grid and runs its hot path in
// ticks; on any failure it silently stays on the rat lane.
func (e *Engine) detectLane() {
	lane := e.lane
	if lane == LaneAuto {
		lane = DefaultLane()
	}
	if lane == LaneRat {
		return
	}
	det := fixed.NewDetector()
	for _, s := range e.scheds {
		s.AddToDetector(det)
	}
	n := e.net.N()
	distDen := int64(1)
	distDenOK := true
	for i := 0; i < n && detOK(det); i++ {
		for j := i + 1; j < n; j++ {
			d := e.net.Dist(i, j)
			det.AddValue(d)
			if den, ok := d.Den(); ok && distDenOK {
				distDen, distDenOK = fixed.LCM(distDen, den)
			}
		}
	}
	if h, ok := e.adv.(DenomHinter); ok {
		if d := h.DelayDenom(); d > 0 {
			det.AddDen(d)
			// Delays are multiples of bound/D, so their denominators divide
			// D·den(bound): fold the product when it stays in range.
			if distDenOK {
				if prod, ok := fixed.Mul(d, distDen); ok {
					det.AddDen(prod)
				}
			}
		}
	}
	scale, ok := det.Scale()
	if !ok {
		return
	}
	fs := make([]*clock.FixedSchedule, n)
	for i, s := range e.scheds {
		f, ok := s.CompileFixed(scale)
		if !ok {
			return
		}
		fs[i] = f
	}
	e.scale = scale
	e.fscheds = fs
	e.nowTickOK = true
}

// detOK reports whether the detector can still succeed, letting the
// quadratic distance sweep stop early once detection is lost.
func detOK(d *fixed.Detector) bool {
	_, ok := d.Scale()
	return ok
}

// TimeLane reports the arithmetic lane the engine runs on: "fixed" when
// scale detection succeeded at construction, "rat" otherwise. Forks inherit
// the parent's lane.
func (e *Engine) TimeLane() string {
	if e.scale > 0 {
		return "fixed"
	}
	return "rat"
}

// FixedScale returns the detected tick scale (ticks per time unit), or 0 on
// the rat lane.
func (e *Engine) FixedScale() int64 { return e.scale }
