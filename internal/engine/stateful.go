package engine

// Stateful (adaptive) adversaries.
//
// The base Adversary contract is a pure function of its arguments, which is
// what lets the engine hand one instance to any number of runs. Online
// strategies — the paper's §2 counterexample scheduler reacts to the
// execution it is scheduling — need two extensions:
//
//   - feedback: an adversary that also implements Observer (and optionally
//     ClockObserver / HorizonObserver) is attached to the event stream of
//     every engine it is bound to, automatically, by New, Fork, and
//     SetAdversary. Its Delay decisions may then depend on everything it has
//     observed so far. A ScriptedAdversary is transparent here: the feedback
//     reaches its Fallback tail.
//
//   - forking: an adversary with mutable state must not be shared between a
//     trunk and its forks (their observation streams diverge, so shared
//     state would silently corrupt both branches). StatefulAdversary
//     declares the clone operation, mirroring Protocol.CloneState; Fork
//     clones the adversary at the fork point and refuses — with a precise
//     error — to fork an observing adversary that cannot be cloned.

// StatefulAdversary is an optional Adversary extension for adversaries that
// carry mutable decision state (typically accumulated via observer
// feedback). It mirrors the Protocol.CloneState contract: Engine.Fork calls
// CloneAdversary so the trunk and the fork continue with independent state.
type StatefulAdversary interface {
	Adversary
	// CloneAdversary returns an independent copy carrying all mutable state:
	// after the call, driving the clone and the original against identical
	// event streams must produce identical decisions, and mutating one must
	// never affect the other. A wrapper whose inner adversary is stateful
	// but not cloneable may return nil to report that no clone exists.
	CloneAdversary() Adversary
}

// CloneAdversaryState returns an independent copy of adv's mutable decision
// state: CloneAdversary's result for a StatefulAdversary, adv itself for a
// stateless adversary (sharing is safe — there is no state). ok is false
// when adv is stateful but not cloneable: it observes the run (implements
// any of the feedback interfaces — Observer, ClockObserver,
// HorizonObserver) without implementing StatefulAdversary, or its
// CloneAdversary returned nil. Fork and the prefix-cached search use this
// to decide between cloning and refusing / degrading.
func CloneAdversaryState(adv Adversary) (Adversary, bool) {
	if sa, ok := adv.(StatefulAdversary); ok {
		c := sa.CloneAdversary()
		return c, c != nil
	}
	if adversaryObserves(adv) {
		return nil, false
	}
	return adv, true
}

// AdversaryWrapper is an optional Adversary extension for decorators — a
// script replaying recorded delays over a live tail, a fault layer dropping
// messages before its inner strategy prices the rest. Unwrap exposes the
// decorated adversary so engine plumbing (observer feedback, the drop hook)
// can walk the chain to the layer that owns each concern.
type AdversaryWrapper interface {
	Adversary
	// Unwrap returns the decorated adversary, or nil when there is none.
	Unwrap() Adversary
}

// feedbackTarget resolves the value whose observer interfaces receive an
// engine's feedback: the innermost adversary of the wrapper chain (wrappers
// are delay bookkeeping or fault configuration, not observation state —
// feedback must reach the tail that owns the state). nil when the chain
// ends without a tail (a scripted adversary with no Fallback).
func feedbackTarget(adv Adversary) any {
	for {
		w, ok := adv.(AdversaryWrapper)
		if !ok {
			return adv
		}
		inner := w.Unwrap()
		if inner == nil {
			return nil
		}
		adv = inner
	}
}

// dropTarget resolves the outermost DropAdversary of a wrapper chain, or nil
// when no layer implements fault drops. Walking through wrappers is what
// keeps fault semantics alive when search wraps a faulted base adversary in
// replay scripts: the script layer forwards Unwrap to the fault layer.
func dropTarget(adv Adversary) DropAdversary {
	for adv != nil {
		if d, ok := adv.(DropAdversary); ok {
			return d
		}
		w, ok := adv.(AdversaryWrapper)
		if !ok {
			return nil
		}
		adv = w.Unwrap()
	}
	return nil
}

// adversaryObserves reports whether the adversary (or its tail) subscribes
// to any of the engine's feedback interfaces — and therefore accumulates
// observation state.
func adversaryObserves(adv Adversary) bool {
	switch feedbackTarget(adv).(type) {
	case Observer, ClockObserver, HorizonObserver:
		return true
	}
	return false
}

// bindAdversary points the engine at adv and wires its feedback hooks —
// each observer interface resolved independently, so an adversary
// implementing only ClockObserver or HorizonObserver still hears its
// stream. The hooks are kept out of the regular observer lists so
// SetAdversary can replace them without disturbing attached metrics.
func (e *Engine) bindAdversary(adv Adversary) {
	e.adv = adv
	t := feedbackTarget(adv)
	e.advObs, _ = t.(Observer)
	e.advClockObs, _ = t.(ClockObserver)
	e.advHorizonObs, _ = t.(HorizonObserver)
	e.advDrop = dropTarget(adv)
}
