package engine

// Stateful (adaptive) adversaries.
//
// The base Adversary contract is a pure function of its arguments, which is
// what lets the engine hand one instance to any number of runs. Online
// strategies — the paper's §2 counterexample scheduler reacts to the
// execution it is scheduling — need two extensions:
//
//   - feedback: an adversary that also implements Observer (and optionally
//     ClockObserver / HorizonObserver) is attached to the event stream of
//     every engine it is bound to, automatically, by New, Fork, and
//     SetAdversary. Its Delay decisions may then depend on everything it has
//     observed so far. A ScriptedAdversary is transparent here: the feedback
//     reaches its Fallback tail.
//
//   - forking: an adversary with mutable state must not be shared between a
//     trunk and its forks (their observation streams diverge, so shared
//     state would silently corrupt both branches). StatefulAdversary
//     declares the clone operation, mirroring Protocol.CloneState; Fork
//     clones the adversary at the fork point and refuses — with a precise
//     error — to fork an observing adversary that cannot be cloned.

// StatefulAdversary is an optional Adversary extension for adversaries that
// carry mutable decision state (typically accumulated via observer
// feedback). It mirrors the Protocol.CloneState contract: Engine.Fork calls
// CloneAdversary so the trunk and the fork continue with independent state.
type StatefulAdversary interface {
	Adversary
	// CloneAdversary returns an independent copy carrying all mutable state:
	// after the call, driving the clone and the original against identical
	// event streams must produce identical decisions, and mutating one must
	// never affect the other. A wrapper whose inner adversary is stateful
	// but not cloneable may return nil to report that no clone exists.
	CloneAdversary() Adversary
}

// CloneAdversaryState returns an independent copy of adv's mutable decision
// state: CloneAdversary's result for a StatefulAdversary, adv itself for a
// stateless adversary (sharing is safe — there is no state). ok is false
// when adv is stateful but not cloneable: it observes the run (implements
// any of the feedback interfaces — Observer, ClockObserver,
// HorizonObserver) without implementing StatefulAdversary, or its
// CloneAdversary returned nil. Fork and the prefix-cached search use this
// to decide between cloning and refusing / degrading.
func CloneAdversaryState(adv Adversary) (Adversary, bool) {
	if sa, ok := adv.(StatefulAdversary); ok {
		c := sa.CloneAdversary()
		return c, c != nil
	}
	if adversaryObserves(adv) {
		return nil, false
	}
	return adv, true
}

// feedbackTarget resolves the value whose observer interfaces receive an
// engine's feedback: the adversary itself, or the Fallback tail for a
// ScriptedAdversary — in value or pointer form, since both satisfy the
// Adversary interface (the script wrapper is delay bookkeeping, not state —
// feedback must reach the tail that owns the state). nil when there is no
// target (a scripted adversary with no tail).
func feedbackTarget(adv Adversary) any {
	var tail Adversary
	switch sc := adv.(type) {
	case ScriptedAdversary:
		tail = sc.Fallback
	case *ScriptedAdversary:
		tail = sc.Fallback
	default:
		return adv
	}
	if tail == nil {
		return nil
	}
	return feedbackTarget(tail)
}

// adversaryObserves reports whether the adversary (or its tail) subscribes
// to any of the engine's feedback interfaces — and therefore accumulates
// observation state.
func adversaryObserves(adv Adversary) bool {
	switch feedbackTarget(adv).(type) {
	case Observer, ClockObserver, HorizonObserver:
		return true
	}
	return false
}

// bindAdversary points the engine at adv and wires its feedback hooks —
// each observer interface resolved independently, so an adversary
// implementing only ClockObserver or HorizonObserver still hears its
// stream. The hooks are kept out of the regular observer lists so
// SetAdversary can replace them without disturbing attached metrics.
func (e *Engine) bindAdversary(adv Adversary) {
	e.adv = adv
	t := feedbackTarget(adv)
	e.advObs, _ = t.(Observer)
	e.advClockObs, _ = t.(ClockObserver)
	e.advHorizonObs, _ = t.(HorizonObserver)
}
