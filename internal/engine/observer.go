package engine

import (
	"gcs/internal/rat"
	"gcs/internal/trace"
)

// Observer receives the event stream of a running Engine. Consumers
// subscribe to the stream instead of receiving a buffered trace, which is
// what lets metrics run online with no trace retention.
//
// Callbacks fire synchronously during Step/RunUntil/RunFor, in the exact
// deterministic order the simulator processes events:
//
//   - OnSend fires when a node transmits, after the adversary fixed the
//     delay (the record's Delivered field is false);
//   - OnDeliver fires when a message arrives, before the receiving node's
//     callback runs (Delivered is true and RecvReal is set);
//   - OnAction fires for every recorded node action in trace order. For
//     dispatched events (init, timer, recv) it fires before the node's own
//     callback runs; for send actions it fires at transmit time, from
//     inside the sending node's still-executing callback, right after the
//     matching OnSend.
//
// Observers must not retain or mutate the Engine from inside callbacks.
type Observer interface {
	OnAction(a trace.Action)
	OnSend(rec trace.MsgRecord)
	OnDeliver(rec trace.MsgRecord)
}

// ClockObserver is an optional Observer extension: observers that also
// implement it are notified of every logical-clock declaration a node makes
// (Runtime.SetLogical). Every node starts with the implicit identity
// declaration L = H (Value 0, Mult 1 at hardware reading 0), which is not
// announced. Online skew and validity trackers are ClockObservers.
type ClockObserver interface {
	OnDeclare(d trace.Decl)
}

// HorizonObserver is an optional Observer extension: OnHorizon(t) fires when
// RunUntil or RunFor completes a horizon, guaranteeing no further events at
// times <= t. Online trackers use it to close out interval maxima exactly at
// the horizon without the caller flushing by hand.
type HorizonObserver interface {
	OnHorizon(t rat.Rat)
}

// Funcs adapts plain functions to the observer interfaces; nil fields are
// ignored. It implements Observer, ClockObserver, and HorizonObserver, which
// makes ad-hoc stream consumers (counters, loggers, early-stop probes)
// one-liners.
type Funcs struct {
	Action  func(a trace.Action)
	Send    func(rec trace.MsgRecord)
	Deliver func(rec trace.MsgRecord)
	Declare func(d trace.Decl)
	Horizon func(t rat.Rat)
}

// OnAction implements Observer.
func (f Funcs) OnAction(a trace.Action) {
	if f.Action != nil {
		f.Action(a)
	}
}

// OnSend implements Observer.
func (f Funcs) OnSend(rec trace.MsgRecord) {
	if f.Send != nil {
		f.Send(rec)
	}
}

// OnDeliver implements Observer.
func (f Funcs) OnDeliver(rec trace.MsgRecord) {
	if f.Deliver != nil {
		f.Deliver(rec)
	}
}

// OnDeclare implements ClockObserver.
func (f Funcs) OnDeclare(d trace.Decl) {
	if f.Declare != nil {
		f.Declare(d)
	}
}

// OnHorizon implements HorizonObserver.
func (f Funcs) OnHorizon(t rat.Rat) {
	if f.Horizon != nil {
		f.Horizon(t)
	}
}
