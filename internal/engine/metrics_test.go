package engine

import (
	"testing"

	"gcs/internal/obs"
	"gcs/internal/trace"
)

// TestMetricsCountSteps pins the instrument semantics: Steps mirrors
// Engine.Steps across both driving APIs, Recycled tracks it in steady state,
// and a fork keeps aggregating into the same instruments.
func TestMetricsCountSteps(t *testing.T) {
	reg := obs.NewRegistry()
	met := NewMetrics(reg)
	eng := newTestEngine(t, 3, tickProtocol{period: ri(1)}, WithMetrics(met))
	for i := 0; i < 10; i++ {
		ok, err := eng.Step()
		if err != nil || !ok {
			t.Fatalf("step %d: ok=%v err=%v", i, ok, err)
		}
	}
	if met.Steps.Value() != eng.Steps() {
		t.Fatalf("Steps counter %d != engine steps %d", met.Steps.Value(), eng.Steps())
	}
	if met.Recycled.Value() != met.Steps.Value() {
		t.Fatalf("Recycled %d != Steps %d in steady state", met.Recycled.Value(), met.Steps.Value())
	}
	if err := eng.RunUntil(ri(4)); err != nil {
		t.Fatal(err)
	}
	if met.Steps.Value() != eng.Steps() {
		t.Fatalf("after RunUntil: Steps counter %d != engine steps %d", met.Steps.Value(), eng.Steps())
	}

	fork, err := eng.Fork()
	if err != nil {
		t.Fatal(err)
	}
	if met.Forks.Value() != 1 {
		t.Fatalf("Forks = %d, want 1", met.Forks.Value())
	}
	before := met.Steps.Value()
	if err := fork.RunFor(ri(2)); err != nil {
		t.Fatal(err)
	}
	if met.Steps.Value() != before+(fork.Steps()-eng.Steps()) {
		t.Fatalf("fork steps did not aggregate into the shared counter")
	}
}

// TestMetricsClockCache drives Execution twice with identical inputs: the
// second compile of every node's logical clock must be a cache hit.
func TestMetricsClockCache(t *testing.T) {
	reg := obs.NewRegistry()
	met := NewMetrics(reg)
	eng := newTestEngine(t, 3, tickProtocol{period: ri(1)}, WithMetrics(met))
	rec := trace.NewRecorder(eng.N())
	eng.Observe(rec)
	if err := eng.RunUntil(ri(4)); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Execution(rec); err != nil {
		t.Fatal(err)
	}
	hits, misses := met.ClockCacheHits.Value(), met.ClockCacheMisses.Value()
	if hits+misses != uint64(eng.N()) {
		t.Fatalf("first Execution compiled %d clocks, want %d", hits+misses, eng.N())
	}
	if _, err := eng.Execution(rec); err != nil {
		t.Fatal(err)
	}
	if got := met.ClockCacheHits.Value(); got != hits+uint64(eng.N()) {
		t.Fatalf("second Execution: %d hits, want %d (every clock cached)", got, hits+uint64(eng.N()))
	}
	if got := met.ClockCacheMisses.Value(); got != misses {
		t.Fatalf("second Execution missed %d times, want 0 new misses", got-misses)
	}
}
