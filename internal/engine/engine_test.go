package engine

import (
	"testing"

	"gcs/internal/clock"
	"gcs/internal/network"
	"gcs/internal/rat"
	"gcs/internal/trace"
)

func ri(n int64) rat.Rat    { return rat.FromInt(n) }
func rf(n, d int64) rat.Rat { return rat.MustFrac(n, d) }

// echoMsg is a test payload.
type echoMsg struct{ Val rat.Rat }

func (m echoMsg) MsgString() string { return "echo:" + m.Val.String() }

// tickNode sends its hardware reading to its successor every period and
// adopts greater received values.
type tickNode struct {
	id     int
	period rat.Rat
}

func (n *tickNode) Init(rt *Runtime) { rt.SetTimerAtHW(n.period, 1) }

func (n *tickNode) OnTimer(rt *Runtime, _ int) {
	if next := n.id + 1; next < rt.N() {
		rt.Send(next, echoMsg{Val: rt.HW()})
	}
	rt.SetTimerAtHW(rt.HW().Add(n.period), 1)
}

func (n *tickNode) OnMessage(rt *Runtime, _ int, msg Message) {
	if m, ok := msg.(echoMsg); ok && m.Val.Greater(rt.Logical()) {
		rt.SetLogical(m.Val, ri(1))
	}
}

type tickProtocol struct{ period rat.Rat }

func (p tickProtocol) Name() string        { return "tick" }
func (p tickProtocol) NewNode(id int) Node { return &tickNode{id: id, period: p.period} }
func (p tickProtocol) CloneState(n Node) Node {
	c := *n.(*tickNode)
	return &c
}

// silentNode does nothing: only init events exist.
type silentNode struct{}

func (silentNode) Init(*Runtime)                    {}
func (silentNode) OnTimer(*Runtime, int)            {}
func (silentNode) OnMessage(*Runtime, int, Message) {}

type silentProtocol struct{}

func (silentProtocol) Name() string           { return "silent" }
func (silentProtocol) NewNode(int) Node       { return silentNode{} }
func (silentProtocol) CloneState(n Node) Node { return n }

func newTestEngine(t *testing.T, n int, proto Protocol, opts ...Option) *Engine {
	t.Helper()
	net, err := network.Line(n)
	if err != nil {
		t.Fatal(err)
	}
	all := append([]Option{WithProtocol(proto), WithRho(rf(1, 2))}, opts...)
	eng, err := New(net, all...)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func TestStepDrainsToIdle(t *testing.T) {
	eng := newTestEngine(t, 3, silentProtocol{})
	for i := 0; i < 3; i++ {
		ok, err := eng.Step()
		if err != nil || !ok {
			t.Fatalf("step %d: ok=%v err=%v", i, ok, err)
		}
	}
	ok, err := eng.Step()
	if err != nil || ok {
		t.Fatalf("idle step: ok=%v err=%v, want exhausted queue", ok, err)
	}
	if eng.Steps() != 3 {
		t.Errorf("Steps = %d, want 3", eng.Steps())
	}
	if !eng.Now().IsZero() || !eng.Horizon().IsZero() {
		t.Errorf("Now=%s Horizon=%s, want 0", eng.Now(), eng.Horizon())
	}
}

func TestRunUntilAndRunForAdvanceHorizon(t *testing.T) {
	eng := newTestEngine(t, 3, tickProtocol{period: ri(1)})
	if err := eng.RunUntil(ri(4)); err != nil {
		t.Fatal(err)
	}
	if !eng.Horizon().Equal(ri(4)) {
		t.Errorf("horizon = %s, want 4", eng.Horizon())
	}
	if eng.Now().Greater(ri(4)) {
		t.Errorf("Now = %s beyond horizon", eng.Now())
	}
	if eng.Pending() == 0 {
		t.Error("no pending events beyond horizon; timers should persist")
	}
	if err := eng.RunFor(ri(2)); err != nil {
		t.Fatal(err)
	}
	if !eng.Horizon().Equal(ri(6)) {
		t.Errorf("horizon = %s, want 6", eng.Horizon())
	}
	if err := eng.RunUntil(ri(5)); err == nil {
		t.Error("RunUntil before horizon should error")
	}
	if err := eng.RunFor(rat.Rat{}); err == nil {
		t.Error("RunFor(0) should error")
	}
}

func TestObserverStreamCounts(t *testing.T) {
	var actions, sends, delivers, decls int
	var horizons []rat.Rat
	obs := Funcs{
		Action:  func(trace.Action) { actions++ },
		Send:    func(rec trace.MsgRecord) { sends++ },
		Deliver: func(rec trace.MsgRecord) { delivers++ },
		Declare: func(trace.Decl) { decls++ },
		Horizon: func(tm rat.Rat) { horizons = append(horizons, tm) },
	}
	eng := newTestEngine(t, 2, tickProtocol{period: ri(1)}, WithObservers(obs),
		WithSchedules([]*clock.Schedule{clock.Constant(rf(11, 8)), clock.Constant(ri(1))}))
	if err := eng.RunUntil(ri(6)); err != nil {
		t.Fatal(err)
	}
	if sends == 0 || delivers == 0 || decls == 0 {
		t.Fatalf("stream incomplete: sends=%d delivers=%d decls=%d", sends, delivers, decls)
	}
	if delivers > sends {
		t.Errorf("delivers %d > sends %d", delivers, sends)
	}
	// Actions: 2 inits + timers + sends + recvs; every send and deliver has
	// a matching action.
	if actions < 2+sends+delivers {
		t.Errorf("actions = %d, want >= %d", actions, 2+sends+delivers)
	}
	if len(horizons) != 1 || !horizons[0].Equal(ri(6)) {
		t.Errorf("horizons = %v, want [6]", horizons)
	}
}

func TestObserveMidRunSeesSuffixOnly(t *testing.T) {
	var pre, post int
	eng := newTestEngine(t, 2, tickProtocol{period: ri(1)},
		WithObservers(Funcs{Action: func(trace.Action) { pre++ }}))
	if err := eng.RunUntil(ri(3)); err != nil {
		t.Fatal(err)
	}
	preAt3 := pre
	eng.Observe(Funcs{Action: func(trace.Action) { post++ }})
	if err := eng.RunUntil(ri(6)); err != nil {
		t.Fatal(err)
	}
	if post >= pre {
		t.Errorf("late observer saw %d of %d actions; want a strict suffix", post, pre)
	}
	if pre-preAt3 != post {
		t.Errorf("late observer saw %d actions, want %d", post, pre-preAt3)
	}
}

func TestDefaultsRunWithProtocolOnly(t *testing.T) {
	net, err := network.Line(3)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(net, WithProtocol(tickProtocol{period: ri(1)}))
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.RunUntil(ri(3)); err != nil {
		t.Fatal(err)
	}
	if eng.Steps() == 0 {
		t.Error("no events dispatched under default schedules/adversary")
	}
}

func TestConstructionErrors(t *testing.T) {
	net, err := network.Line(3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(nil, WithProtocol(silentProtocol{})); err == nil {
		t.Error("nil network accepted")
	}
	if _, err := New(net); err == nil {
		t.Error("missing protocol accepted")
	}
	if _, err := New(net, WithProtocol(silentProtocol{}), WithRho(ri(1))); err == nil {
		t.Error("rho = 1 accepted")
	}
	if _, err := New(net, WithProtocol(silentProtocol{}),
		WithSchedules([]*clock.Schedule{clock.Constant(ri(1))})); err == nil {
		t.Error("schedule count mismatch accepted")
	}
	if _, err := New(net, WithProtocol(silentProtocol{}), WithRho(rf(1, 2)),
		WithSchedules([]*clock.Schedule{clock.Constant(ri(3)), clock.Constant(ri(1)), clock.Constant(ri(1))})); err == nil {
		t.Error("drift-violating schedule accepted")
	}
}

// selfSendNode triggers an engine failure on init.
type selfSendNode struct{}

func (selfSendNode) Init(rt *Runtime)                 { rt.Send(rt.ID(), echoMsg{Val: ri(1)}) }
func (selfSendNode) OnTimer(*Runtime, int)            {}
func (selfSendNode) OnMessage(*Runtime, int, Message) {}

type selfSendProtocol struct{}

func (selfSendProtocol) Name() string           { return "self-send" }
func (selfSendProtocol) NewNode(int) Node       { return selfSendNode{} }
func (selfSendProtocol) CloneState(n Node) Node { return n }

func TestErrorPoisonsEngine(t *testing.T) {
	eng := newTestEngine(t, 2, selfSendProtocol{})
	_, err := eng.Step()
	if err == nil {
		t.Fatal("self-send did not fail the run")
	}
	if _, err2 := eng.Step(); err2 != err {
		t.Errorf("second Step error = %v, want the sticky %v", err2, err)
	}
	if err2 := eng.RunUntil(ri(5)); err2 != err {
		t.Errorf("RunUntil error = %v, want the sticky %v", err2, err)
	}
	rec := trace.NewRecorder(2)
	if _, err2 := eng.Execution(rec); err2 != err {
		t.Errorf("Execution error = %v, want the sticky %v", err2, err)
	}
	if eng.Err() != err {
		t.Errorf("Err() = %v, want %v", eng.Err(), err)
	}
}

func TestRecorderRoundTrip(t *testing.T) {
	net, err := network.Line(3)
	if err != nil {
		t.Fatal(err)
	}
	scheds := []*clock.Schedule{clock.Constant(ri(1)), clock.Constant(rf(9, 8)), clock.Constant(ri(1))}
	cfg := Config{
		Net:       net,
		Schedules: scheds,
		Adversary: Midpoint(),
		Protocol:  tickProtocol{period: ri(1)},
		Duration:  ri(10),
		Rho:       rf(1, 2),
	}
	batch, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(net, WithProtocol(cfg.Protocol), WithAdversary(cfg.Adversary),
		WithSchedules(scheds), WithRho(cfg.Rho))
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.NewRecorder(3)
	eng.Observe(rec)
	if err := eng.RunUntil(ri(10)); err != nil {
		t.Fatal(err)
	}
	manual, err := eng.Execution(rec)
	if err != nil {
		t.Fatal(err)
	}
	if len(manual.Actions) != len(batch.Actions) {
		t.Fatalf("actions: %d vs %d", len(manual.Actions), len(batch.Actions))
	}
	for i := range manual.Actions {
		if manual.Actions[i] != batch.Actions[i] {
			t.Fatalf("action %d differs: %+v vs %+v", i, manual.Actions[i], batch.Actions[i])
		}
	}
	if len(manual.Ledger) != len(batch.Ledger) {
		t.Fatalf("ledger: %d vs %d", len(manual.Ledger), len(batch.Ledger))
	}
	if err := trace.PrefixEqual(manual, batch, ri(10)); err != nil {
		t.Fatal(err)
	}
	if err := trace.CheckIndistinguishable(batch, manual); err != nil {
		t.Fatal(err)
	}
}
