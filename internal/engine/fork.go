package engine

import (
	"errors"
	"fmt"

	"gcs/internal/clock"
	"gcs/internal/fixed"
	"gcs/internal/rat"
	"gcs/internal/trace"
)

// Fork returns an independent engine positioned at the exact point of this
// run: same dispatched history, same pending events, same per-node state.
// Driving the fork forward is byte-identical to driving the original — until
// their adversaries diverge (see SetAdversary), which is the point: a shared
// execution prefix is simulated once, then branched.
//
// The fork clones everything mutable — the event queue, the per-pair
// message sequence counters, the scheduling sequence, each node's Runtime
// (hardware reading, logical-clock declarations), and each node automaton
// via the Protocol's CloneState contract — as a handful of bulk slab copies
// rather than element-wise deep clones: the queue's slab/heap/free arrays
// copy in three memmoves, the runtimes copy as one contiguous slab, and
// every node's declaration history lands in one shared backing array (each
// node's slice is capped at its own length, so a post-fork append copies on
// write instead of bleeding into a neighbor's history). The immutable
// environment — the network, the hardware schedules, ρ — is shared. A
// stateless adversary is inherited by reference; a StatefulAdversary is
// cloned via CloneAdversary so trunk and fork decide from independent state,
// and an adversary that observes the run without being cloneable fails the
// fork with a precise error (sharing it would silently corrupt both
// branches). Message payloads queued in flight are shared too: payloads must
// be value-determined and never mutated after Send, which the Message
// contract already demands.
//
// The fork starts with no observers (the cloned adversary's own feedback
// hook rebinds automatically — it is not part of the observer lists). To
// continue online metrics across the fork point, Clone the trackers that
// watched the prefix (SkewTracker.Clone, DecisionLog.Clone, Recorder.Clone,
// ...) and attach the clones with Observe before driving the fork.
//
// Fork must be called between steps, never from inside an observer or node
// callback, and fails on an engine already poisoned by an error.
func (e *Engine) Fork() (*Engine, error) {
	if e.err != nil {
		return nil, fmt.Errorf("engine: fork of failed engine: %w", e.err)
	}
	adv, ok := CloneAdversaryState(e.adv)
	if !ok {
		return nil, fmt.Errorf("engine: fork with stateful adversary %T that is not cloneable (it — or, for a scripted wrapper, its Fallback tail — observes the run without a usable CloneAdversary; implement StatefulAdversary on the value that owns the state)", e.adv)
	}
	n := e.net.N()
	f := &Engine{
		net:     e.net,
		scheds:  e.scheds,
		proto:   e.proto,
		rho:     e.rho,
		seq:     e.seq,
		now:     e.now,
		horizon: e.horizon,
		steps:   e.steps,
		met:     e.met, // forks aggregate into the parent's instruments

		// The fixed lane is immutable environment: the compiled schedules
		// are shared, the tick clock copies. Queued events' tick keys and
		// cached hardware readings ride along in the slab copy below — a
		// fork re-derives nothing the trunk already computed.
		lane:      e.lane,
		scale:     e.scale,
		fscheds:   e.fscheds,
		nowTick:   e.nowTick,
		nowTickOK: e.nowTickOK,
	}
	if e.met != nil {
		e.met.Forks.Inc()
	}
	f.bindAdversary(adv)
	f.queue.cloneFrom(&e.queue)
	f.pairSeq = append([]uint64(nil), e.pairSeq...)

	// Runtimes copy as one slab; the declaration histories share one backing
	// array, each node's slice capped at its own length so appends after the
	// fork reallocate instead of clobbering the next node's prefix.
	totalDecls := 0
	for i := range e.runtimes {
		totalDecls += len(e.runtimes[i].decls)
	}
	// Each node's slice gets declSlack spare capacity inside the shared slab,
	// so the first post-fork declarations append in place instead of paying a
	// reallocation per node; a node's cap ends where its neighbor's region
	// starts, so overflowing the slack still copies on write.
	const declSlack = 8
	declSlab := make([]trace.Decl, 0, totalDecls+declSlack*n)
	f.runtimes = make([]Runtime, n)
	for i := 0; i < n; i++ {
		rt := &e.runtimes[i]
		start := len(declSlab)
		declSlab = append(declSlab, rt.decls...)
		end := len(declSlab)
		f.runtimes[i] = Runtime{
			eng:   f,
			id:    i,
			hwNow: rt.hwNow,
			decls: declSlab[start : end : end+declSlack],
		}
		declSlab = declSlab[:end+declSlack]
	}
	if bc, ok := e.proto.(BulkCloneProtocol); ok {
		f.nodes = bc.CloneStates(e.nodes)
		if len(f.nodes) != n {
			return nil, fmt.Errorf("engine: protocol %s CloneStates returned %d nodes for %d", e.proto.Name(), len(f.nodes), n)
		}
		for i, node := range f.nodes {
			if node == nil {
				return nil, fmt.Errorf("engine: protocol %s CloneStates returned nil for node %d", e.proto.Name(), i)
			}
		}
		return f, nil
	}
	f.nodes = make([]Node, n)
	for i := 0; i < n; i++ {
		node := e.proto.CloneState(e.nodes[i])
		if node == nil {
			return nil, fmt.Errorf("engine: protocol %s CloneState returned nil for node %d", e.proto.Name(), i)
		}
		f.nodes[i] = node
	}
	return f, nil
}

// NextEventTime returns the real time of the earliest pending event; ok is
// false when the queue is empty (every node idle, nothing in flight). The
// prefix-cached search uses it to fork a rate mutant at exactly the first
// event at/after its mutated window's start, without dispatching anything.
func (e *Engine) NextEventTime() (rat.Rat, bool) {
	if e.queue.Len() == 0 {
		return rat.Rat{}, false
	}
	return e.queue.slab[e.queue.top()].time, true
}

// SwapSchedule replaces node's hardware rate schedule mid-run. The new
// schedule must satisfy the engine's drift bound and agree with the current
// one on [0, Now()) — everything already dispatched must have happened
// identically under it — and from there on it is authoritative: queued timer
// events of the node re-derive their firing times from their hardware-clock
// targets through the new schedule (the target reading is the timer's source
// of truth — see SetTimerAtHW), queued deliveries to the node keep their
// real times (send + delay is schedule-independent) and re-derive the cached
// hardware reading, and the queue re-establishes its order under the moved
// times. Driving the engine afterwards is byte-identical to a fresh run that
// used the new schedule from time 0: the prefix agrees by the precondition,
// and the suffix sees exactly the re-derived values a fresh run would have
// computed.
//
// On the fixed-point lane the swapped schedule is recompiled onto the tick
// grid; if it does not fit (the detected scale saw only the old schedules),
// the engine drops to the rat lane for the rest of the run — arithmetic
// changes, results do not. Combined with Fork this is the paper's schedule
// surgery made incremental: fork the shared prefix, swap in the mutated
// schedule, and only the suffix re-simulates.
func (e *Engine) SwapSchedule(node int, s *clock.Schedule) error {
	if e.err != nil {
		return fmt.Errorf("engine: SwapSchedule on failed engine: %w", e.err)
	}
	if node < 0 || node >= e.net.N() {
		return fmt.Errorf("engine: SwapSchedule of invalid node %d", node)
	}
	if s == nil {
		return errors.New("engine: SwapSchedule with nil schedule")
	}
	if err := s.ValidateDrift(e.rho); err != nil {
		return fmt.Errorf("engine: SwapSchedule node %d: %w", node, err)
	}
	if !s.AgreesBefore(e.scheds[node], e.now) {
		return fmt.Errorf("engine: SwapSchedule node %d: schedule diverges from the current one before now=%s, invalidating dispatched history", node, e.now)
	}
	// Copy on write: scheds (and fscheds below) are shared with the engine
	// this one was forked from — never mutate them in place.
	scheds := append([]*clock.Schedule(nil), e.scheds...)
	scheds[node] = s
	e.scheds = scheds
	if e.scale > 0 {
		if fs, ok := s.CompileFixed(e.scale); ok {
			fscheds := append([]*clock.FixedSchedule(nil), e.fscheds...)
			fscheds[node] = fs
			e.fscheds = fscheds
		} else {
			// The swapped schedule is off the detected grid: the whole run
			// drops to the rat lane. Queued tick keys stay valid for ordering
			// (they are exact representations of their times under the old
			// scale) but nothing derives new ticks from here on.
			e.scale = 0
			e.fscheds = nil
			e.nowTickOK = false
		}
	}
	q := &e.queue
	moved := false
	for _, idx := range q.heap {
		ev := &q.slab[idx]
		if ev.node != node {
			continue
		}
		switch {
		case ev.hwTarget:
			// Timer: the hardware target is authoritative. Re-derive the
			// firing time through the new schedule, mirroring SetTimerAtHW's
			// lane logic. Pending events are at/after the divergence window,
			// so the re-derived time never lands before Now().
			ev.tickOK = false
			if e.scale > 0 {
				if ht, ok := fixed.FromRat(ev.hw, e.scale); ok {
					if tt, ok := e.fscheds[node].RealAtTicks(ht); ok {
						ev.tick, ev.tickOK = tt, true
						ev.time = fixed.ToRat(tt, e.scale)
					}
				}
				if !ev.tickOK && e.met != nil {
					e.met.FixedFallbacks.Inc()
				}
			}
			if !ev.tickOK {
				real, err := s.RealAt(ev.hw)
				if err != nil {
					err = fmt.Errorf("engine: SwapSchedule node %d timer target %s: %w", node, ev.hw, err)
					e.fail(err)
					return err
				}
				ev.time = real
			}
			moved = true
		case ev.kind == trace.KindRecv:
			// Delivery: real time is authoritative and schedule-independent;
			// only the cached hardware reading re-derives, mirroring Send.
			hwOK := false
			if ev.tickOK && e.scale > 0 {
				if ht, ok := e.fscheds[node].HWTicks(ev.tick); ok {
					ev.hw = fixed.ToRat(ht, e.scale)
					hwOK = true
				} else if e.met != nil {
					e.met.FixedFallbacks.Inc()
				}
			}
			if !hwOK {
				ev.hw = s.HW(ev.time)
			}
		}
	}
	if moved {
		// Timer times moved: re-establish the heap bottom-up. The order is a
		// strict total order (seq tie-breaker), so any correct heap pops the
		// same sequence — full re-heapify cannot perturb determinism.
		for i := len(q.heap)/2 - 1; i >= 0; i-- {
			q.down(i)
		}
	}
	if e.met != nil {
		e.met.ScheduleSwaps.Inc()
	}
	return nil
}

// SetAdversary replaces the engine's delay adversary. Decisions already made
// are fixed (their deliveries sit in the queue); only future sends consult
// the new adversary. Combined with Fork this branches a run: fork the shared
// prefix, hand each fork its own adversary, and drive the suffixes
// independently.
//
// An adversary with observer feedback hooks is rebound to the event stream
// from this point on (it sees nothing retroactively); the previous
// adversary's hooks are detached. Like NewEngine, SetAdversary performs no
// up-front decision validation — a CheckedAdversary that cannot decide a
// later message (e.g. a ScriptedAdversary with an exhausted script and nil
// Fallback) fails the run at that send with its precise DelayChecked error.
func (e *Engine) SetAdversary(a Adversary) error {
	if a == nil {
		return errors.New("engine: nil adversary")
	}
	e.bindAdversary(a)
	return nil
}
