package engine

import (
	"errors"
	"fmt"

	"gcs/internal/trace"
)

// Fork returns an independent engine positioned at the exact point of this
// run: same dispatched history, same pending events, same per-node state.
// Driving the fork forward is byte-identical to driving the original — until
// their adversaries diverge (see SetAdversary), which is the point: a shared
// execution prefix is simulated once, then branched.
//
// The fork deep-clones everything mutable: the event queue, the per-pair
// message sequence counters, the scheduling sequence, each node's Runtime
// (hardware reading, logical-clock declarations), and each node automaton
// via the Protocol's CloneState contract. The immutable environment — the
// network, the hardware schedules, ρ — is shared. A stateless adversary is
// inherited by reference; a StatefulAdversary is cloned via CloneAdversary
// so trunk and fork decide from independent state, and an adversary that
// observes the run without being cloneable fails the fork with a precise
// error (sharing it would silently corrupt both branches). Message payloads
// queued in flight are shared too: payloads must be value-determined and
// never mutated after Send, which the Message contract already demands.
//
// The fork starts with no observers (the cloned adversary's own feedback
// hook rebinds automatically — it is not part of the observer lists). To
// continue online metrics across the fork point, Clone the trackers that
// watched the prefix (SkewTracker.Clone, DecisionLog.Clone, Recorder.Clone,
// ...) and attach the clones with Observe before driving the fork.
//
// Fork must be called between steps, never from inside an observer or node
// callback, and fails on an engine already poisoned by an error.
func (e *Engine) Fork() (*Engine, error) {
	if e.err != nil {
		return nil, fmt.Errorf("engine: fork of failed engine: %w", e.err)
	}
	adv, ok := CloneAdversaryState(e.adv)
	if !ok {
		return nil, fmt.Errorf("engine: fork with stateful adversary %T that is not cloneable (it — or, for a scripted wrapper, its Fallback tail — observes the run without a usable CloneAdversary; implement StatefulAdversary on the value that owns the state)", e.adv)
	}
	n := e.net.N()
	f := &Engine{
		net:     e.net,
		scheds:  e.scheds,
		proto:   e.proto,
		rho:     e.rho,
		seq:     e.seq,
		now:     e.now,
		horizon: e.horizon,
		steps:   e.steps,
	}
	f.bindAdversary(adv)
	f.queue.items = make([]*event, len(e.queue.items))
	for i, ev := range e.queue.items {
		c := *ev
		f.queue.items[i] = &c
	}
	f.pairSeq = make(map[[2]int]uint64, len(e.pairSeq))
	for k, v := range e.pairSeq {
		f.pairSeq[k] = v
	}
	f.runtimes = make([]*Runtime, n)
	f.nodes = make([]Node, n)
	for i := 0; i < n; i++ {
		rt := e.runtimes[i]
		f.runtimes[i] = &Runtime{
			eng:   f,
			id:    i,
			hwNow: rt.hwNow,
			decls: append([]trace.Decl(nil), rt.decls...),
		}
		node := e.proto.CloneState(e.nodes[i])
		if node == nil {
			return nil, fmt.Errorf("engine: protocol %s CloneState returned nil for node %d", e.proto.Name(), i)
		}
		f.nodes[i] = node
	}
	return f, nil
}

// SetAdversary replaces the engine's delay adversary. Decisions already made
// are fixed (their deliveries sit in the queue); only future sends consult
// the new adversary. Combined with Fork this branches a run: fork the shared
// prefix, hand each fork its own adversary, and drive the suffixes
// independently.
//
// An adversary with observer feedback hooks is rebound to the event stream
// from this point on (it sees nothing retroactively); the previous
// adversary's hooks are detached. Like NewEngine, SetAdversary performs no
// up-front decision validation — a CheckedAdversary that cannot decide a
// later message (e.g. a ScriptedAdversary with an exhausted script and nil
// Fallback) fails the run at that send with its precise DelayChecked error.
func (e *Engine) SetAdversary(a Adversary) error {
	if a == nil {
		return errors.New("engine: nil adversary")
	}
	e.bindAdversary(a)
	return nil
}
