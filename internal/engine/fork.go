package engine

import (
	"errors"
	"fmt"

	"gcs/internal/trace"
)

// Fork returns an independent engine positioned at the exact point of this
// run: same dispatched history, same pending events, same per-node state.
// Driving the fork forward is byte-identical to driving the original — until
// their adversaries diverge (see SetAdversary), which is the point: a shared
// execution prefix is simulated once, then branched.
//
// The fork clones everything mutable — the event queue, the per-pair
// message sequence counters, the scheduling sequence, each node's Runtime
// (hardware reading, logical-clock declarations), and each node automaton
// via the Protocol's CloneState contract — as a handful of bulk slab copies
// rather than element-wise deep clones: the queue's slab/heap/free arrays
// copy in three memmoves, the runtimes copy as one contiguous slab, and
// every node's declaration history lands in one shared backing array (each
// node's slice is capped at its own length, so a post-fork append copies on
// write instead of bleeding into a neighbor's history). The immutable
// environment — the network, the hardware schedules, ρ — is shared. A
// stateless adversary is inherited by reference; a StatefulAdversary is
// cloned via CloneAdversary so trunk and fork decide from independent state,
// and an adversary that observes the run without being cloneable fails the
// fork with a precise error (sharing it would silently corrupt both
// branches). Message payloads queued in flight are shared too: payloads must
// be value-determined and never mutated after Send, which the Message
// contract already demands.
//
// The fork starts with no observers (the cloned adversary's own feedback
// hook rebinds automatically — it is not part of the observer lists). To
// continue online metrics across the fork point, Clone the trackers that
// watched the prefix (SkewTracker.Clone, DecisionLog.Clone, Recorder.Clone,
// ...) and attach the clones with Observe before driving the fork.
//
// Fork must be called between steps, never from inside an observer or node
// callback, and fails on an engine already poisoned by an error.
func (e *Engine) Fork() (*Engine, error) {
	if e.err != nil {
		return nil, fmt.Errorf("engine: fork of failed engine: %w", e.err)
	}
	adv, ok := CloneAdversaryState(e.adv)
	if !ok {
		return nil, fmt.Errorf("engine: fork with stateful adversary %T that is not cloneable (it — or, for a scripted wrapper, its Fallback tail — observes the run without a usable CloneAdversary; implement StatefulAdversary on the value that owns the state)", e.adv)
	}
	n := e.net.N()
	f := &Engine{
		net:     e.net,
		scheds:  e.scheds,
		proto:   e.proto,
		rho:     e.rho,
		seq:     e.seq,
		now:     e.now,
		horizon: e.horizon,
		steps:   e.steps,
		met:     e.met, // forks aggregate into the parent's instruments

		// The fixed lane is immutable environment: the compiled schedules
		// are shared, the tick clock copies. Queued events' tick keys and
		// cached hardware readings ride along in the slab copy below — a
		// fork re-derives nothing the trunk already computed.
		lane:      e.lane,
		scale:     e.scale,
		fscheds:   e.fscheds,
		nowTick:   e.nowTick,
		nowTickOK: e.nowTickOK,
	}
	if e.met != nil {
		e.met.Forks.Inc()
	}
	f.bindAdversary(adv)
	f.queue.cloneFrom(&e.queue)
	f.pairSeq = append([]uint64(nil), e.pairSeq...)

	// Runtimes copy as one slab; the declaration histories share one backing
	// array, each node's slice capped at its own length so appends after the
	// fork reallocate instead of clobbering the next node's prefix.
	totalDecls := 0
	for i := range e.runtimes {
		totalDecls += len(e.runtimes[i].decls)
	}
	// Each node's slice gets declSlack spare capacity inside the shared slab,
	// so the first post-fork declarations append in place instead of paying a
	// reallocation per node; a node's cap ends where its neighbor's region
	// starts, so overflowing the slack still copies on write.
	const declSlack = 8
	declSlab := make([]trace.Decl, 0, totalDecls+declSlack*n)
	f.runtimes = make([]Runtime, n)
	for i := 0; i < n; i++ {
		rt := &e.runtimes[i]
		start := len(declSlab)
		declSlab = append(declSlab, rt.decls...)
		end := len(declSlab)
		f.runtimes[i] = Runtime{
			eng:   f,
			id:    i,
			hwNow: rt.hwNow,
			decls: declSlab[start : end : end+declSlack],
		}
		declSlab = declSlab[:end+declSlack]
	}
	if bc, ok := e.proto.(BulkCloneProtocol); ok {
		f.nodes = bc.CloneStates(e.nodes)
		if len(f.nodes) != n {
			return nil, fmt.Errorf("engine: protocol %s CloneStates returned %d nodes for %d", e.proto.Name(), len(f.nodes), n)
		}
		for i, node := range f.nodes {
			if node == nil {
				return nil, fmt.Errorf("engine: protocol %s CloneStates returned nil for node %d", e.proto.Name(), i)
			}
		}
		return f, nil
	}
	f.nodes = make([]Node, n)
	for i := 0; i < n; i++ {
		node := e.proto.CloneState(e.nodes[i])
		if node == nil {
			return nil, fmt.Errorf("engine: protocol %s CloneState returned nil for node %d", e.proto.Name(), i)
		}
		f.nodes[i] = node
	}
	return f, nil
}

// SetAdversary replaces the engine's delay adversary. Decisions already made
// are fixed (their deliveries sit in the queue); only future sends consult
// the new adversary. Combined with Fork this branches a run: fork the shared
// prefix, hand each fork its own adversary, and drive the suffixes
// independently.
//
// An adversary with observer feedback hooks is rebound to the event stream
// from this point on (it sees nothing retroactively); the previous
// adversary's hooks are detached. Like NewEngine, SetAdversary performs no
// up-front decision validation — a CheckedAdversary that cannot decide a
// later message (e.g. a ScriptedAdversary with an exhausted script and nil
// Fallback) fails the run at that send with its precise DelayChecked error.
func (e *Engine) SetAdversary(a Adversary) error {
	if a == nil {
		return errors.New("engine: nil adversary")
	}
	e.bindAdversary(a)
	return nil
}
