package engine

import (
	"strings"
	"testing"
)

// TestForkMatchesFreshRun: fork at every possible step boundary of a short
// run; each fork driven to the horizon must land on exactly the fresh run's
// counters and queue state. (The full cross-protocol byte-identical matrix
// lives in the root package's fork_test.go; this exercises every boundary.)
func TestForkMatchesFreshRun(t *testing.T) {
	dur := ri(6)
	fresh := newTestEngine(t, 3, tickProtocol{period: ri(1)})
	if err := fresh.RunUntil(dur); err != nil {
		t.Fatal(err)
	}
	total := fresh.Steps()
	if total == 0 {
		t.Fatal("empty reference run")
	}
	for cut := uint64(0); cut <= total; cut++ {
		trunk := newTestEngine(t, 3, tickProtocol{period: ri(1)})
		for trunk.Steps() < cut {
			if ok, err := trunk.Step(); err != nil || !ok {
				t.Fatalf("cut %d: ok=%v err=%v", cut, ok, err)
			}
		}
		fork, err := trunk.Fork()
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if err := fork.RunUntil(dur); err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if fork.Steps() != total || fork.Pending() != fresh.Pending() || !fork.Now().Equal(fresh.Now()) {
			t.Fatalf("cut %d: fork steps=%d pending=%d now=%s, fresh steps=%d pending=%d now=%s",
				cut, fork.Steps(), fork.Pending(), fork.Now(), total, fresh.Pending(), fresh.Now())
		}
	}
}

// TestForkIndependence: driving a fork never moves the trunk, and vice
// versa; node state is deep-cloned, not shared.
func TestForkIndependence(t *testing.T) {
	trunk := newTestEngine(t, 3, tickProtocol{period: ri(1)})
	if err := trunk.RunUntil(ri(3)); err != nil {
		t.Fatal(err)
	}
	fork, err := trunk.Fork()
	if err != nil {
		t.Fatal(err)
	}
	stepsBefore, pendingBefore := trunk.Steps(), trunk.Pending()
	if err := fork.RunUntil(ri(6)); err != nil {
		t.Fatal(err)
	}
	if trunk.Steps() != stepsBefore || trunk.Pending() != pendingBefore {
		t.Fatalf("driving the fork moved the trunk: steps %d→%d pending %d→%d",
			stepsBefore, trunk.Steps(), pendingBefore, trunk.Pending())
	}
	if err := trunk.RunUntil(ri(6)); err != nil {
		t.Fatal(err)
	}
	if trunk.Steps() != fork.Steps() {
		t.Fatalf("trunk finished with %d steps, fork with %d", trunk.Steps(), fork.Steps())
	}
}

// TestForkErrors: a poisoned engine refuses to fork, and SetAdversary
// rejects nil.
func TestForkErrors(t *testing.T) {
	eng := newTestEngine(t, 2, selfSendProtocol{})
	if _, err := eng.Step(); err == nil {
		t.Fatal("self-send did not fail the run")
	}
	if _, err := eng.Fork(); err == nil || !strings.Contains(err.Error(), "fork of failed engine") {
		t.Fatalf("fork of poisoned engine: %v", err)
	}
	ok := newTestEngine(t, 2, silentProtocol{})
	if err := ok.SetAdversary(nil); err == nil {
		t.Fatal("nil adversary accepted")
	}
	if err := ok.SetAdversary(Midpoint()); err != nil {
		t.Fatal(err)
	}
}

// TestSetAdversaryCheckedOnFork: a ScriptedAdversary with a nil Fallback
// bound to a fork via SetAdversary must fail the run through the
// CheckedAdversary path with the precise DelayChecked error — exactly as if
// it had been bound at construction — never by panicking inside the event
// loop. (SetAdversary performs no up-front validation; the check is the
// per-send CheckedAdversary dispatch, which must survive rebinding.)
func TestSetAdversaryCheckedOnFork(t *testing.T) {
	trunk := newTestEngine(t, 3, tickProtocol{period: ri(1)})
	if err := trunk.RunUntil(ri(2)); err != nil {
		t.Fatal(err)
	}
	fork, err := trunk.Fork()
	if err != nil {
		t.Fatal(err)
	}
	if err := fork.SetAdversary(ScriptedAdversary{}); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("exhausted script on a fork panicked instead of failing the run: %v", r)
		}
	}()
	err = fork.RunUntil(ri(6))
	if err == nil || !strings.Contains(err.Error(), "no Fallback") {
		t.Fatalf("fork with scripted nil-fallback adversary: %v, want the DelayChecked script-exhaustion error", err)
	}
	if fork.Err() == nil {
		t.Fatal("run not poisoned by the scripted-adversary error")
	}
	// The trunk is unaffected and still runs under its own adversary.
	if err := trunk.RunUntil(ri(6)); err != nil {
		t.Fatal(err)
	}
}

// nilCloneProtocol violates the CloneState contract.
type nilCloneProtocol struct{ silentProtocol }

func (nilCloneProtocol) CloneState(Node) Node { return nil }

// TestForkNilCloneRejected: a protocol whose CloneState returns nil fails
// the fork with a precise error instead of a later panic.
func TestForkNilCloneRejected(t *testing.T) {
	eng := newTestEngine(t, 2, nilCloneProtocol{})
	if _, err := eng.Fork(); err == nil || !strings.Contains(err.Error(), "CloneState returned nil") {
		t.Fatalf("nil CloneState: %v", err)
	}
}
