package engine

import "gcs/internal/obs"

// Metrics is the engine's instrument set: pre-registered obs counters the
// hot path increments with single atomic adds — no allocation, no lock, no
// name lookup — so an instrumented engine stays inside the zero-alloc
// budgets pinned in alloc_test.go. One Metrics value may be shared by many
// engines (a worker's whole evaluation fleet aggregates into one registry);
// forks inherit their parent's Metrics.
type Metrics struct {
	// Steps counts dispatched events (one per Step/RunUntil dispatch).
	Steps *obs.Counter
	// Recycled counts event slab slots returned to the free list — in steady
	// state it tracks Steps exactly; a divergence means events are being
	// dropped without dispatch or the slab is growing.
	Recycled *obs.Counter
	// Forks counts Engine.Fork calls.
	Forks *obs.Counter
	// ClockCacheHits / ClockCacheMisses count compiled-logical-clock memo
	// outcomes during Execution.
	ClockCacheHits   *obs.Counter
	ClockCacheMisses *obs.Counter
}

// NewMetrics registers the engine instrument set in r. Repeated calls with
// the same registry return counters backed by the same instruments.
func NewMetrics(r *obs.Registry) *Metrics {
	return &Metrics{
		Steps:            r.Counter("gcs_engine_steps_total", "engine events dispatched"),
		Recycled:         r.Counter("gcs_engine_events_recycled_total", "event slab slots recycled through the free list"),
		Forks:            r.Counter("gcs_engine_forks_total", "engine forks taken"),
		ClockCacheHits:   r.Counter("gcs_engine_clock_cache_hits_total", "compiled logical-clock cache hits"),
		ClockCacheMisses: r.Counter("gcs_engine_clock_cache_misses_total", "compiled logical-clock cache misses"),
	}
}

// WithMetrics attaches an instrument set to an Engine under construction.
// nil detaches (the default): an uninstrumented engine pays not even the
// atomic adds.
func WithMetrics(m *Metrics) Option { return func(e *Engine) { e.met = m } }

// Metrics returns the engine's instrument set (nil when uninstrumented).
func (e *Engine) Metrics() *Metrics { return e.met }
