package engine

import "gcs/internal/obs"

// Metrics is the engine's instrument set: pre-registered obs counters the
// hot path increments with single atomic adds — no allocation, no lock, no
// name lookup — so an instrumented engine stays inside the zero-alloc
// budgets pinned in alloc_test.go. One Metrics value may be shared by many
// engines (a worker's whole evaluation fleet aggregates into one registry);
// forks inherit their parent's Metrics.
type Metrics struct {
	// Steps counts dispatched events (one per Step/RunUntil dispatch).
	Steps *obs.Counter
	// Recycled counts event slab slots returned to the free list — in steady
	// state it tracks Steps exactly; a divergence means events are being
	// dropped without dispatch or the slab is growing.
	Recycled *obs.Counter
	// Forks counts Engine.Fork calls.
	Forks *obs.Counter
	// ScheduleSwaps counts Engine.SwapSchedule calls — mid-run schedule
	// replacements that re-derived queued events onto a new rate schedule.
	ScheduleSwaps *obs.Counter
	// ClockCacheHits / ClockCacheMisses count compiled-logical-clock memo
	// outcomes during Execution.
	ClockCacheHits   *obs.Counter
	ClockCacheMisses *obs.Counter
	// FixedLaneRuns counts engines whose scale detection engaged the
	// fixed-point lane at construction; RatLaneRuns counts engines that
	// stayed on (or were forced onto) the rat lane. Forks are not runs and
	// count toward neither.
	FixedLaneRuns *obs.Counter
	RatLaneRuns   *obs.Counter
	// FixedFallbacks counts individual values a fixed-lane engine had to
	// compute in rational arithmetic because they fell off the tick grid
	// (an off-grid delay, reading, or timer inversion). A high rate relative
	// to Steps means the detected scale misses the run's real grid.
	FixedFallbacks *obs.Counter
	// Dropped counts messages removed at send by the adversary chain's
	// fault layer (DropAdversary): they consume their sequence number but
	// are never assigned a delay or delivered.
	Dropped *obs.Counter
}

// NewMetrics registers the engine instrument set in r. Repeated calls with
// the same registry return counters backed by the same instruments.
func NewMetrics(r *obs.Registry) *Metrics {
	return &Metrics{
		Steps:            r.Counter("gcs_engine_steps_total", "engine events dispatched"),
		Recycled:         r.Counter("gcs_engine_events_recycled_total", "event slab slots recycled through the free list"),
		Forks:            r.Counter("gcs_engine_forks_total", "engine forks taken"),
		ScheduleSwaps:    r.Counter("gcs_engine_schedule_swaps_total", "mid-run schedule swaps re-deriving queued events"),
		ClockCacheHits:   r.Counter("gcs_engine_clock_cache_hits_total", "compiled logical-clock cache hits"),
		ClockCacheMisses: r.Counter("gcs_engine_clock_cache_misses_total", "compiled logical-clock cache misses"),
		FixedLaneRuns:    r.Counter("gcs_engine_fixed_lane_runs_total", "engines constructed on the fixed-point tick lane"),
		RatLaneRuns:      r.Counter("gcs_engine_rat_lane_runs_total", "engines constructed on the exact-rational lane"),
		FixedFallbacks:   r.Counter("gcs_engine_fixed_fallbacks_total", "off-grid values computed in rational arithmetic by fixed-lane engines"),
		Dropped:          r.Counter("gcs_engine_msgs_dropped_total", "messages dropped at send by the adversary's fault layer"),
	}
}

// WithMetrics attaches an instrument set to an Engine under construction.
// nil detaches (the default): an uninstrumented engine pays not even the
// atomic adds.
func WithMetrics(m *Metrics) Option { return func(e *Engine) { e.met = m } }

// Metrics returns the engine's instrument set (nil when uninstrumented).
func (e *Engine) Metrics() *Metrics { return e.met }
