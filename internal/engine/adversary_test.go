package engine

import (
	"strings"
	"testing"

	"gcs/internal/rat"
	"gcs/internal/trace"
)

// TestHashAdversarySeedDeterminism: the delay is a pure function of
// (seed, from, to, seq) — two adversaries with the same seed agree
// everywhere, and a different seed produces a different delay somewhere.
func TestHashAdversarySeedDeterminism(t *testing.T) {
	a := HashAdversary{Seed: 42, Denom: 16}
	b := HashAdversary{Seed: 42, Denom: 16}
	other := HashAdversary{Seed: 43, Denom: 16}
	bound := rat.FromInt(3)
	differs := false
	for from := 0; from < 4; from++ {
		for to := 0; to < 4; to++ {
			if to == from {
				continue
			}
			for seq := uint64(0); seq < 16; seq++ {
				da := a.Delay(from, to, seq, rat.Rat{}, bound)
				db := b.Delay(from, to, seq, rat.FromInt(7), bound) // sendReal must not matter
				if !da.Equal(db) {
					t.Fatalf("same seed disagrees at %d→%d seq %d: %s vs %s", from, to, seq, da, db)
				}
				if !da.Equal(other.Delay(from, to, seq, rat.Rat{}, bound)) {
					differs = true
				}
			}
		}
	}
	if !differs {
		t.Fatal("seeds 42 and 43 produced identical delays on every probed message")
	}
}

// TestHashAdversaryDelayRange: for every probed input and quantization the
// delay lies in [0, bound] and is an exact multiple of bound/denom.
func TestHashAdversaryDelayRange(t *testing.T) {
	for _, denom := range []int64{0, 1, 8, 16, 64} {
		a := HashAdversary{Seed: 7, Denom: denom}
		eff := denom
		if eff <= 0 {
			eff = 16
		}
		for _, bound := range []rat.Rat{rat.FromInt(1), rat.FromInt(5), rat.MustFrac(3, 2)} {
			for seq := uint64(0); seq < 64; seq++ {
				d := a.Delay(0, 1, seq, rat.Rat{}, bound)
				if d.Sign() < 0 || d.Greater(bound) {
					t.Fatalf("denom=%d bound=%s seq=%d: delay %s outside [0, %s]", denom, bound, seq, d, bound)
				}
				// d = k/eff · bound for an integer k.
				steps := d.Div(bound).Mul(rat.FromInt(eff))
				if !steps.IsInt() {
					t.Fatalf("denom=%d bound=%s seq=%d: delay %s not quantized to %d-ths", denom, bound, seq, d, eff)
				}
			}
		}
	}
	if got := (HashAdversary{Seed: 9}).String(); got != "hash-9" {
		t.Fatalf("String() = %q", got)
	}
}

// TestScriptedAdversaryChecked: scripted keys replay, unscripted keys
// delegate to the tail, and a missing tail is an explicit error (and a
// panic on the unchecked path, which has no error channel).
func TestScriptedAdversaryChecked(t *testing.T) {
	key := trace.MsgKey{From: 0, To: 1, Seq: 2}
	bound := rat.FromInt(4)
	sa := ScriptedAdversary{
		Delays:   map[trace.MsgKey]rat.Rat{key: rat.FromInt(3)},
		Fallback: FractionAdversary{Frac: rat.MustFrac(1, 4)},
	}
	if d, err := sa.DelayChecked(0, 1, 2, rat.Rat{}, bound); err != nil || !d.Equal(rat.FromInt(3)) {
		t.Fatalf("scripted key: got %s, %v", d, err)
	}
	if d, err := sa.DelayChecked(1, 0, 0, rat.Rat{}, bound); err != nil || !d.Equal(rat.FromInt(1)) {
		t.Fatalf("tail key: got %s, %v (want bound/4)", d, err)
	}

	bare := ScriptedAdversary{Delays: map[trace.MsgKey]rat.Rat{key: rat.FromInt(3)}}
	if _, err := bare.DelayChecked(1, 0, 0, rat.Rat{}, bound); err == nil ||
		!strings.Contains(err.Error(), "no Fallback") {
		t.Fatalf("missing tail: got %v, want explicit no-Fallback error", err)
	}
	func() {
		defer func() {
			if r := recover(); r == nil {
				t.Fatal("unchecked Delay past the script should panic, not nil-deref")
			}
		}()
		bare.Delay(1, 0, 0, rat.Rat{}, bound)
	}()
}
