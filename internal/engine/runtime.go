package engine

import (
	"fmt"

	"gcs/internal/fixed"
	"gcs/internal/rat"
	"gcs/internal/trace"
)

// Runtime is a node's interface to the simulated world during callbacks. It
// deliberately exposes no real-time information: everything a node can learn
// is its hardware clock, the static network parameters, and its messages.
type Runtime struct {
	eng   *Engine
	id    int
	hwNow rat.Rat
	decls []trace.Decl
}

// ID returns this node's index.
func (rt *Runtime) ID() int { return rt.id }

// N returns the number of nodes.
func (rt *Runtime) N() int { return rt.eng.net.N() }

// Neighbors returns this node's gossip neighbors. The caller must not modify
// the returned slice.
func (rt *Runtime) Neighbors() []int { return rt.eng.net.Neighbors(rt.id) }

// Dist returns the message delay uncertainty to node j (static knowledge in
// the model).
func (rt *Runtime) Dist(j int) rat.Rat { return rt.eng.net.Dist(rt.id, j) }

// Rho returns the hardware drift bound ρ (static knowledge in the model).
func (rt *Runtime) Rho() rat.Rat { return rt.eng.rho }

// HW returns the node's current hardware-clock reading.
func (rt *Runtime) HW() rat.Rat { return rt.hwNow }

// Logical returns the node's current logical-clock value per its latest
// declaration.
func (rt *Runtime) Logical() rat.Rat {
	d := rt.decls[len(rt.decls)-1]
	return d.Value.Add(d.Mult.Mul(rt.hwNow.Sub(d.HW0)))
}

// LogicalMult returns the multiplier of the latest declaration.
func (rt *Runtime) LogicalMult() rat.Rat { return rt.decls[len(rt.decls)-1].Mult }

// SetLogical declares the node's logical clock: from the current hardware
// reading H₀ on, L(H) = value + mult·(H − H₀). mult must be >= 0.
// Requirement 1 of the paper (validity) additionally demands effective rate
// >= 1/2 and no downward jumps; the validity checkers in internal/core
// verify that (online or post hoc) rather than restricting algorithms a
// priori.
func (rt *Runtime) SetLogical(value, mult rat.Rat) {
	e := rt.eng
	if mult.Sign() < 0 {
		e.fail(fmt.Errorf("engine: node %d declared negative logical multiplier %s", rt.id, mult))
		return
	}
	d := trace.Decl{Node: rt.id, Real: e.now, HW0: rt.hwNow, Value: value, Mult: mult}
	rt.decls = append(rt.decls, d)
	if e.advClockObs != nil {
		e.advClockObs.OnDeclare(d)
	}
	for _, o := range e.clockObs {
		o.OnDeclare(d)
	}
}

// Send transmits msg to node `to`. The adversary assigns the delay.
func (rt *Runtime) Send(to int, msg Message) {
	e := rt.eng
	if to < 0 || to >= rt.N() || to == rt.id {
		e.fail(fmt.Errorf("engine: node %d sends to invalid node %d", rt.id, to))
		return
	}
	if msg == nil {
		e.fail(fmt.Errorf("engine: node %d sends nil message", rt.id))
		return
	}
	pair := rt.id*rt.N() + to
	seq := e.pairSeq[pair]
	e.pairSeq[pair] = seq + 1
	bound := e.net.Dist(rt.id, to)
	if e.advDrop != nil && e.advDrop.Drop(rt.id, to, seq, e.now) {
		// A faulted message consumes its sequence number but is never
		// priced or delivered. The Send action is still emitted — the
		// loss is invisible to the sender — and the ledger records the
		// message as Dropped so checkers and decision logs can tell a
		// fault from an undelivered in-flight message.
		if e.met != nil {
			e.met.Dropped.Inc()
		}
		if e.observed() {
			payload := msg.MsgString()
			rec := trace.MsgRecord{
				Key:      trace.MsgKey{From: rt.id, To: to, Seq: seq},
				SendReal: e.now,
				Payload:  payload,
				Dropped:  true,
			}
			if e.advObs != nil {
				e.advObs.OnSend(rec)
			}
			for _, o := range e.obs {
				o.OnSend(rec)
			}
			e.emitAction(trace.Action{Node: rt.id, Kind: trace.KindSend, Real: e.now,
				HW: rt.hwNow, Peer: to, MsgSeq: seq, Payload: payload})
		}
		return
	}
	var delay rat.Rat
	if ca, ok := e.adv.(CheckedAdversary); ok {
		var derr error
		delay, derr = ca.DelayChecked(rt.id, to, seq, e.now, bound)
		if derr != nil {
			e.fail(derr)
			return
		}
	} else {
		delay = e.adv.Delay(rt.id, to, seq, e.now, bound)
	}
	if delay.Sign() < 0 || delay.Greater(bound) {
		e.fail(fmt.Errorf("engine: adversary delay %s for %d→%d (seq %d) outside [0, %s]",
			delay, rt.id, to, seq, bound))
		return
	}
	recv := e.now.Add(delay)
	// Fixed lane: the receive tick is now + delay in integers when the delay
	// lands on the grid; the recipient's hardware reading at that tick comes
	// from the compiled schedule. Every miss falls back to the rat lane for
	// that value alone.
	var recvTick int64
	recvTickOK := false
	if e.nowTickOK {
		if dt, ok := fixed.FromRat(delay, e.scale); ok {
			recvTick, recvTickOK = fixed.Add(e.nowTick, dt)
		}
		if !recvTickOK && e.met != nil {
			e.met.FixedFallbacks.Inc()
		}
	}
	var hwRecv rat.Rat
	hwOK := false
	if recvTickOK {
		if ht, ok := e.fscheds[to].HWTicks(recvTick); ok {
			hwRecv = fixed.ToRat(ht, e.scale)
			hwOK = true
		} else if e.met != nil {
			e.met.FixedFallbacks.Inc()
		}
	}
	if !hwOK {
		hwRecv = e.scheds[to].HW(recv)
	}
	var payload string
	hasStr := e.observed()
	if hasStr {
		// Canonicalize once: the delivery record at dispatch reuses this
		// string instead of calling MsgString a second time.
		payload = msg.MsgString()
		rec := trace.MsgRecord{
			Key:      trace.MsgKey{From: rt.id, To: to, Seq: seq},
			SendReal: e.now,
			Delay:    delay,
			Payload:  payload,
		}
		if e.advObs != nil {
			e.advObs.OnSend(rec)
		}
		for _, o := range e.obs {
			o.OnSend(rec)
		}
		e.emitAction(trace.Action{Node: rt.id, Kind: trace.KindSend, Real: e.now, HW: rt.hwNow,
			Peer: to, MsgSeq: seq, Payload: payload})
	}
	idx := e.queue.alloc()
	e.queue.slab[idx] = event{
		time:     recv,
		kind:     trace.KindRecv,
		node:     to,
		from:     rt.id,
		msgSeq:   seq,
		payload:  msg,
		payStr:   payload,
		hasStr:   hasStr,
		sendReal: e.now,
		delay:    delay,
		seq:      e.nextSeq(),
		tick:     recvTick,
		tickOK:   recvTickOK,
		hw:       hwRecv,
		hasHW:    true,
	}
	e.queue.push(idx)
}

// SetTimerAtHW schedules OnTimer(timerID) to fire when this node's hardware
// clock reads hw, which must be >= the current reading.
func (rt *Runtime) SetTimerAtHW(hw rat.Rat, timerID int) {
	e := rt.eng
	if hw.Less(rt.hwNow) {
		e.fail(fmt.Errorf("engine: node %d sets timer at hardware time %s < current %s", rt.id, hw, rt.hwNow))
		return
	}
	// Fixed lane: invert the compiled schedule in ticks. The rat lane owns
	// every miss and every error case (off-grid target, inexact division by
	// the rate numerator). Either way the event caches the target reading —
	// H(RealAt(hw)) = hw exactly, the clock being continuous and strictly
	// increasing — so dispatch never inverts or re-evaluates.
	var real rat.Rat
	var realTick int64
	tickOK := false
	if e.scale > 0 {
		if ht, ok := fixed.FromRat(hw, e.scale); ok {
			if tt, ok := e.fscheds[rt.id].RealAtTicks(ht); ok {
				realTick, tickOK = tt, true
				real = fixed.ToRat(tt, e.scale)
			}
		}
		if !tickOK && e.met != nil {
			e.met.FixedFallbacks.Inc()
		}
	}
	if !tickOK {
		var err error
		real, err = e.scheds[rt.id].RealAt(hw)
		if err != nil {
			e.fail(fmt.Errorf("engine: node %d timer: %w", rt.id, err))
			return
		}
	}
	idx := e.queue.alloc()
	e.queue.slab[idx] = event{
		time:    real,
		kind:    trace.KindTimer,
		node:    rt.id,
		from:    -1,
		timerID: timerID,
		seq:     e.nextSeq(),
		tick:    realTick,
		tickOK:  tickOK,
		hw:      hw,
		hasHW:   true,
		// The target reading, not a cache: SwapSchedule re-derives time and
		// tick from hw when the node's schedule changes under a queued timer.
		hwTarget: true,
	}
	e.queue.push(idx)
}
