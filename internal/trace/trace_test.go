package trace

import (
	"strings"
	"testing"

	"gcs/internal/clock"
	"gcs/internal/network"
	"gcs/internal/piecewise"
	"gcs/internal/rat"
)

func ri(n int64) rat.Rat    { return rat.FromInt(n) }
func rf(n, d int64) rat.Rat { return rat.MustFrac(n, d) }

// buildExec assembles a 2-node execution by hand.
func buildExec(t *testing.T, dur rat.Rat, rates []rat.Rat, actions []Action) *Execution {
	t.Helper()
	net, err := network.TwoNode(ri(2))
	if err != nil {
		t.Fatal(err)
	}
	scheds := make([]*clock.Schedule, 2)
	logical := make([]*piecewise.PLF, 2)
	hardware := make([]*piecewise.PLF, 2)
	for i := range scheds {
		scheds[i] = clock.Constant(rates[i])
		hardware[i] = scheds[i].HWFunc()
		logical[i] = scheds[i].HWFunc()
	}
	perNode := make([][]int, 2)
	for idx, a := range actions {
		perNode[a.Node] = append(perNode[a.Node], idx)
	}
	return &Execution{
		Net:       net,
		Schedules: scheds,
		Duration:  dur,
		Actions:   actions,
		PerNode:   perNode,
		Ledger:    map[MsgKey]MsgRecord{},
		Logical:   logical,
		Hardware:  hardware,
	}
}

func TestKindString(t *testing.T) {
	tests := []struct {
		k    Kind
		want string
	}{
		{KindInit, "init"},
		{KindRecv, "recv"},
		{KindTimer, "timer"},
		{KindSend, "send"},
		{Kind(99), "kind(99)"},
	}
	for _, tt := range tests {
		if got := tt.k.String(); got != tt.want {
			t.Errorf("Kind(%d).String() = %q, want %q", tt.k, got, tt.want)
		}
	}
}

func TestExecutionAccessors(t *testing.T) {
	e := buildExec(t, ri(10), []rat.Rat{ri(1), rf(5, 4)}, []Action{
		{Node: 0, Kind: KindInit, Peer: -1},
		{Node: 1, Kind: KindInit, Peer: -1},
		{Node: 0, Kind: KindTimer, Real: ri(1), HW: ri(1), Peer: -1, TimerID: 1},
	})
	if e.N() != 2 {
		t.Errorf("N = %d", e.N())
	}
	if got := e.HWAt(1, ri(4)); !got.Equal(ri(5)) {
		t.Errorf("HWAt(1,4) = %s, want 5", got)
	}
	if got := e.LogicalAt(1, ri(4)); !got.Equal(ri(5)) {
		t.Errorf("LogicalAt(1,4) = %s, want 5", got)
	}
	// L1 - L0 at duration: 25/2 - 10 = 5/2.
	if got := e.FinalSkew(1, 0); !got.Equal(rf(5, 2)) {
		t.Errorf("FinalSkew = %s, want 5/2", got)
	}
	ext := e.MaxAbsSkew(0, 1, rat.Rat{}, ri(10))
	if !ext.Val.Equal(rf(5, 2)) || !ext.At.Equal(ri(10)) {
		t.Errorf("MaxAbsSkew = %s at %s", ext.Val, ext.At)
	}
	acts := e.NodeActions(0)
	if len(acts) != 2 || acts[1].Kind != KindTimer {
		t.Errorf("NodeActions(0) = %+v", acts)
	}
}

func TestCheckIndistinguishableIdentical(t *testing.T) {
	mk := func() *Execution {
		return buildExec(t, ri(10), []rat.Rat{ri(1), ri(1)}, []Action{
			{Node: 0, Kind: KindInit, Peer: -1},
			{Node: 1, Kind: KindInit, Peer: -1},
			{Node: 0, Kind: KindTimer, Real: ri(2), HW: ri(2), Peer: -1, TimerID: 1},
		})
	}
	if err := CheckIndistinguishable(mk(), mk()); err != nil {
		t.Fatal(err)
	}
}

func TestCheckIndistinguishablePrefix(t *testing.T) {
	// alpha has two timers at node 0; beta is a shorter run covering only
	// the first. Indistinguishability holds because beta's horizon excludes
	// the second.
	alpha := buildExec(t, ri(10), []rat.Rat{ri(1), ri(1)}, []Action{
		{Node: 0, Kind: KindInit, Peer: -1},
		{Node: 1, Kind: KindInit, Peer: -1},
		{Node: 0, Kind: KindTimer, Real: ri(2), HW: ri(2), Peer: -1, TimerID: 1},
		{Node: 0, Kind: KindTimer, Real: ri(8), HW: ri(8), Peer: -1, TimerID: 1},
	})
	beta := buildExec(t, ri(5), []rat.Rat{ri(1), ri(1)}, []Action{
		{Node: 0, Kind: KindInit, Peer: -1},
		{Node: 1, Kind: KindInit, Peer: -1},
		{Node: 0, Kind: KindTimer, Real: ri(2), HW: ri(2), Peer: -1, TimerID: 1},
	})
	if err := CheckIndistinguishable(alpha, beta); err != nil {
		t.Fatal(err)
	}
	// The reverse fails: alpha (longer horizon) has actions beta lacks...
	// beta as the base with alpha as the constructed execution demands
	// alpha's horizon-limited view to include the HW-8 timer, which beta
	// lacks.
	if err := CheckIndistinguishable(beta, alpha); err == nil {
		t.Error("expected mismatch when constructed execution has extra actions")
	}
}

func TestCheckIndistinguishableHWShift(t *testing.T) {
	// Same actions, but at different hardware readings: must fail.
	alpha := buildExec(t, ri(10), []rat.Rat{ri(1), ri(1)}, []Action{
		{Node: 0, Kind: KindTimer, Real: ri(2), HW: ri(2), Peer: -1, TimerID: 1},
	})
	beta := buildExec(t, ri(10), []rat.Rat{ri(1), ri(1)}, []Action{
		{Node: 0, Kind: KindTimer, Real: ri(2), HW: ri(3), Peer: -1, TimerID: 1},
	})
	err := CheckIndistinguishable(alpha, beta)
	if err == nil {
		t.Fatal("expected hardware-reading mismatch")
	}
	if !strings.Contains(err.Error(), "differs") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestCheckIndistinguishablePayload(t *testing.T) {
	mk := func(payload string) *Execution {
		return buildExec(t, ri(10), []rat.Rat{ri(1), ri(1)}, []Action{
			{Node: 0, Kind: KindRecv, Real: ri(2), HW: ri(2), Peer: 1, MsgSeq: 0, Payload: payload},
		})
	}
	if err := CheckIndistinguishable(mk("v:1"), mk("v:1")); err != nil {
		t.Fatal(err)
	}
	if err := CheckIndistinguishable(mk("v:1"), mk("v:2")); err == nil {
		t.Error("expected payload mismatch")
	}
}

func TestCheckDelayBounds(t *testing.T) {
	e := buildExec(t, ri(10), []rat.Rat{ri(1), ri(1)}, nil)
	key := MsgKey{From: 0, To: 1, Seq: 0}
	e.Ledger[key] = MsgRecord{
		Key: key, SendReal: ri(1), RecvReal: ri(2), Delay: ri(1), Delivered: true,
	}
	// d(0,1) = 2; delay 1 = d/2 within [1/4, 3/4]·d.
	if err := CheckDelayBounds(e, rat.Rat{}, ri(10), rf(1, 4), rf(3, 4)); err != nil {
		t.Fatal(err)
	}
	// Tighter bounds fail.
	if err := CheckDelayBounds(e, rat.Rat{}, ri(10), rf(5, 8), ri(1)); err == nil {
		t.Error("expected delay bound violation")
	}
	// Outside the window: ignored.
	if err := CheckDelayBounds(e, ri(5), ri(10), rf(5, 8), ri(1)); err != nil {
		t.Errorf("message outside window should be ignored: %v", err)
	}
	// Undelivered: ignored.
	e.Ledger[key] = MsgRecord{Key: key, SendReal: ri(1), Delay: ri(2), Delivered: false}
	if err := CheckDelayBounds(e, rat.Rat{}, ri(10), rf(1, 2), rf(1, 2)); err != nil {
		t.Errorf("undelivered message should be ignored: %v", err)
	}
}

func TestCheckRateBounds(t *testing.T) {
	e := buildExec(t, ri(10), []rat.Rat{ri(1), rf(9, 8)}, nil)
	if err := CheckRateBounds(e, rat.Rat{}, ri(10), ri(1), rf(5, 4)); err != nil {
		t.Fatal(err)
	}
	if err := CheckRateBounds(e, rat.Rat{}, ri(10), ri(1), ri(1)); err == nil {
		t.Error("expected rate bound violation for 9/8 > 1")
	}
}

func TestPrefixEqual(t *testing.T) {
	mk := func(extra bool) *Execution {
		acts := []Action{
			{Node: 0, Kind: KindInit, Peer: -1},
			{Node: 1, Kind: KindInit, Peer: -1},
			{Node: 0, Kind: KindTimer, Real: ri(2), HW: ri(2), Peer: -1, TimerID: 1},
		}
		if extra {
			acts = append(acts, Action{Node: 0, Kind: KindTimer, Real: ri(7), HW: ri(7), Peer: -1, TimerID: 1})
		}
		return buildExec(t, ri(10), []rat.Rat{ri(1), ri(1)}, acts)
	}
	// Equal up to t=5 even though one has a later extra action.
	if err := PrefixEqual(mk(false), mk(true), ri(5)); err != nil {
		t.Fatal(err)
	}
	// Not equal up to t=8.
	if err := PrefixEqual(mk(false), mk(true), ri(8)); err == nil {
		t.Error("expected prefix mismatch at t=8")
	}
}

func TestPrefixEqualDifferentRealTimes(t *testing.T) {
	a := buildExec(t, ri(10), []rat.Rat{ri(1), ri(1)}, []Action{
		{Node: 0, Kind: KindTimer, Real: ri(2), HW: ri(2), Peer: -1, TimerID: 1},
	})
	b := buildExec(t, ri(10), []rat.Rat{ri(1), ri(1)}, []Action{
		{Node: 0, Kind: KindTimer, Real: ri(3), HW: ri(2), Peer: -1, TimerID: 1},
	})
	// Same observation but different real time: PrefixEqual is stricter
	// than indistinguishability and must fail.
	if err := PrefixEqual(a, b, ri(5)); err == nil {
		t.Error("expected real-time mismatch")
	}
}
