package trace

import (
	"gcs/internal/clock"
	"gcs/internal/network"
	"gcs/internal/piecewise"
	"gcs/internal/rat"
)

// Recorder is the full-trace observer: it buffers every action and message
// record streamed by an engine, exactly reproducing the ledger and action
// log the batch simulator used to build in place. Recording is just one more
// observer — attach a Recorder for post-hoc analysis, or leave it off and
// run with online trackers in O(1) memory per event.
//
// A Recorder must be attached before the first event is dispatched to
// capture a complete trace.
type Recorder struct {
	actions []Action
	perNode [][]int
	ledger  map[MsgKey]MsgRecord
}

// NewRecorder returns a Recorder for an n-node system.
func NewRecorder(n int) *Recorder {
	return &Recorder{
		perNode: make([][]int, n),
		ledger:  make(map[MsgKey]MsgRecord),
	}
}

// OnAction implements the engine Observer interface: it appends the action
// to the trace in processing order.
func (r *Recorder) OnAction(a Action) {
	r.perNode[a.Node] = append(r.perNode[a.Node], len(r.actions))
	r.actions = append(r.actions, a)
}

// OnSend implements the engine Observer interface: it opens the message's
// ledger entry.
func (r *Recorder) OnSend(rec MsgRecord) { r.ledger[rec.Key] = rec }

// OnDeliver implements the engine Observer interface: it closes the
// message's ledger entry with the realized receive time.
func (r *Recorder) OnDeliver(rec MsgRecord) { r.ledger[rec.Key] = rec }

// Clone returns an independent copy of the recorder's buffers. Attach the
// clone to a forked engine to keep recording a branched run: the clone
// carries the shared prefix, and the original keeps recording its own branch
// untouched.
func (r *Recorder) Clone() *Recorder {
	c := &Recorder{
		actions: append([]Action(nil), r.actions...),
		perNode: make([][]int, len(r.perNode)),
		ledger:  make(map[MsgKey]MsgRecord, len(r.ledger)),
	}
	for i, idxs := range r.perNode {
		if idxs != nil {
			c.perNode[i] = append([]int(nil), idxs...)
		}
	}
	for k, v := range r.ledger {
		c.ledger[k] = v
	}
	return c
}

// Actions returns the number of actions recorded so far.
func (r *Recorder) Actions() int { return len(r.actions) }

// Messages returns the number of ledger entries recorded so far.
func (r *Recorder) Messages() int { return len(r.ledger) }

// Execution assembles the recorded trace with the environment and compiled
// clocks into a complete Execution. The buffers are copied, so the returned
// Execution is a stable snapshot: the engine can keep running (and the
// Recorder keep recording) without corrupting it, and a later Execution
// call yields the extended trace.
func (r *Recorder) Execution(net *network.Network, scheds []*clock.Schedule, duration rat.Rat,
	logical, hardware []*piecewise.PLF) *Execution {
	var actions []Action
	if r.actions != nil {
		actions = make([]Action, len(r.actions))
		copy(actions, r.actions)
	}
	perNode := make([][]int, len(r.perNode))
	for i, idxs := range r.perNode {
		if idxs == nil {
			continue
		}
		perNode[i] = make([]int, len(idxs))
		copy(perNode[i], idxs)
	}
	ledger := make(map[MsgKey]MsgRecord, len(r.ledger))
	for k, v := range r.ledger {
		ledger[k] = v
	}
	return &Execution{
		Net:       net,
		Schedules: scheds,
		Duration:  duration,
		Actions:   actions,
		PerNode:   perNode,
		Ledger:    ledger,
		Logical:   logical,
		Hardware:  hardware,
	}
}
