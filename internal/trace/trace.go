// Package trace records executions of the simulated timed-automaton system
// and implements the indistinguishability comparison at the heart of the
// Fan & Lynch lower-bound arguments.
//
// An Execution holds, for every node, the ordered sequence of actions it
// observed (init, timer firings, message receipts, sends), each stamped with
// both the real time and the node's hardware-clock reading, plus the
// compiled hardware and logical clocks as exact piecewise-linear functions
// of real time, and a ledger of every message with its realized delay.
//
// The paper's indistinguishability principle (§3): if the same actions occur
// in the same per-node order at the same hardware-clock readings in two
// executions, every node behaves identically in both. CheckIndistinguishable
// verifies exactly that property between a constructed execution and its
// original, which is what makes the Add Skew and Bounded Increase
// constructions checkable rather than merely asserted.
package trace

import (
	"fmt"
	"strconv"
	"strings"

	"gcs/internal/clock"
	"gcs/internal/network"
	"gcs/internal/piecewise"
	"gcs/internal/rat"
)

// Kind classifies node actions.
type Kind int

// Action kinds. Recv sorts before Timer at equal times in the simulator's
// deterministic event order.
const (
	KindInit Kind = iota + 1
	KindRecv
	KindTimer
	KindSend
)

// String returns a short name for the kind.
func (k Kind) String() string {
	switch k {
	case KindInit:
		return "init"
	case KindRecv:
		return "recv"
	case KindTimer:
		return "timer"
	case KindSend:
		return "send"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Action is one observable step at one node.
type Action struct {
	Node    int
	Kind    Kind
	Real    rat.Rat // real time of occurrence (adversary-visible only)
	HW      rat.Rat // the node's hardware reading at occurrence (node-visible)
	Peer    int     // sender (Recv) or destination (Send); -1 otherwise
	MsgSeq  uint64  // ordinal of the message on its ordered pair (Recv/Send)
	TimerID int     // Timer only
	Payload string  // canonical message string (Recv/Send)
}

// observation is the node-visible part of an Action, used for
// indistinguishability. Built with strconv: it runs once per action per
// check over whole executions.
func (a Action) observation() string {
	var b strings.Builder
	b.Grow(32 + len(a.Payload))
	b.WriteString(a.Kind.String())
	b.WriteString("|hw=")
	b.WriteString(a.HW.String())
	b.WriteString("|peer=")
	b.WriteString(strconv.Itoa(a.Peer))
	b.WriteString("|mseq=")
	b.WriteString(strconv.FormatUint(a.MsgSeq, 10))
	b.WriteString("|timer=")
	b.WriteString(strconv.Itoa(a.TimerID))
	b.WriteByte('|')
	b.WriteString(a.Payload)
	return b.String()
}

// Decl is one logical-clock declaration by a node: from hardware reading HW0
// on, L(H) = Value + Mult·(H − HW0). Real is the real time of the
// declaration (adversary-visible only; nodes declare in terms of HW0).
// Declarations are streamed to engine ClockObservers, which is how online
// metrics follow logical clocks without retaining a trace.
type Decl struct {
	Node  int
	Real  rat.Rat
	HW0   rat.Rat
	Value rat.Rat
	Mult  rat.Rat
}

// MsgKey identifies the seq-th message sent from From to To in an execution.
type MsgKey struct {
	From, To int
	Seq      uint64
}

// MsgRecord is a ledger entry for one message.
type MsgRecord struct {
	Key       MsgKey
	SendReal  rat.Rat
	RecvReal  rat.Rat // meaningful only when Delivered
	Delay     rat.Rat
	Payload   string
	Delivered bool // received within the execution horizon
	Dropped   bool // removed by the adversary's fault model at send; never delivered
}

// Execution is a completed run.
type Execution struct {
	Net       *network.Network
	Schedules []*clock.Schedule
	Duration  rat.Rat
	Actions   []Action // in processing order
	PerNode   [][]int  // indices into Actions, per node
	Ledger    map[MsgKey]MsgRecord
	Logical   []*piecewise.PLF // per-node logical clock over real time
	Hardware  []*piecewise.PLF // per-node hardware clock over real time
}

// N returns the number of nodes.
func (e *Execution) N() int { return e.Net.N() }

// LogicalAt returns L_i(t).
func (e *Execution) LogicalAt(i int, t rat.Rat) rat.Rat { return e.Logical[i].Eval(t) }

// HWAt returns H_i(t).
func (e *Execution) HWAt(i int, t rat.Rat) rat.Rat { return e.Schedules[i].HW(t) }

// FinalSkew returns L_i(duration) − L_j(duration).
func (e *Execution) FinalSkew(i, j int) rat.Rat {
	return e.LogicalAt(i, e.Duration).Sub(e.LogicalAt(j, e.Duration))
}

// MaxAbsSkew returns the maximum of |L_i − L_j| over [from, to].
func (e *Execution) MaxAbsSkew(i, j int, from, to rat.Rat) piecewise.Extremum {
	return piecewise.MaxAbsDiff(e.Logical[i], e.Logical[j], from, to)
}

// NodeActions returns node i's actions in order.
func (e *Execution) NodeActions(i int) []Action {
	out := make([]Action, len(e.PerNode[i]))
	for k, idx := range e.PerNode[i] {
		out[k] = e.Actions[idx]
	}
	return out
}

// CheckIndistinguishable verifies that beta is indistinguishable from alpha
// to every node, in the sense of §3 of the paper, up to beta's horizon:
// for every node i, the sequence of actions i observes in beta must match,
// action for action and hardware reading for hardware reading, the prefix of
// i's actions in alpha with hardware readings ≤ H_i^β(ℓ(β)); and beta must
// contain that entire prefix (no missing actions).
func CheckIndistinguishable(alpha, beta *Execution) error {
	if alpha.N() != beta.N() {
		return fmt.Errorf("trace: node counts differ: %d vs %d", alpha.N(), beta.N())
	}
	for i := 0; i < alpha.N(); i++ {
		horizon := beta.HWAt(i, beta.Duration)
		av := alpha.NodeActions(i)
		bv := beta.NodeActions(i)
		// The alpha prefix visible within beta's horizon.
		var aPrefix []Action
		for _, a := range av {
			if a.HW.LessEq(horizon) {
				aPrefix = append(aPrefix, a)
			}
		}
		if len(aPrefix) != len(bv) {
			return fmt.Errorf("trace: node %d observes %d actions in beta, want %d (horizon H=%s)",
				i, len(bv), len(aPrefix), horizon)
		}
		for k := range bv {
			if ao, bo := aPrefix[k].observation(), bv[k].observation(); ao != bo {
				return fmt.Errorf("trace: node %d action %d differs:\n  alpha: %s\n  beta:  %s", i, k, ao, bo)
			}
		}
	}
	return nil
}

// CheckDelayBounds verifies every delivered message's delay lies within
// [lo·d(i,j), hi·d(i,j)] for messages received in the real-time window
// (from, to]. The Add Skew lemma both assumes such bounds on α's suffix
// (lo = hi = 1/2) and guarantees them on β ([1/4, 3/4]).
func CheckDelayBounds(e *Execution, from, to, lo, hi rat.Rat) error {
	for key, rec := range e.Ledger {
		if !rec.Delivered {
			continue
		}
		if rec.RecvReal.LessEq(from) || rec.RecvReal.Greater(to) {
			continue
		}
		d := e.Net.Dist(key.From, key.To)
		if rec.Delay.Less(lo.Mul(d)) || rec.Delay.Greater(hi.Mul(d)) {
			return fmt.Errorf("trace: message %v delay %s outside [%s, %s]·%s",
				key, rec.Delay, lo, hi, d)
		}
	}
	return nil
}

// CheckRateBounds verifies every node's hardware rate lies within [lo, hi]
// during [from, to].
func CheckRateBounds(e *Execution, from, to, lo, hi rat.Rat) error {
	for i, s := range e.Schedules {
		if err := s.ValidateRange(from, to, lo, hi); err != nil {
			return fmt.Errorf("trace: node %d: %w", i, err)
		}
	}
	return nil
}

// PrefixEqual verifies that two executions are identical (same actions, same
// real times, same per-node order) up to real time t. Used to confirm that
// the main-theorem extension α_{k+1} really extends β_k without perturbing
// its past.
func PrefixEqual(a, b *Execution, t rat.Rat) error {
	if a.N() != b.N() {
		return fmt.Errorf("trace: node counts differ: %d vs %d", a.N(), b.N())
	}
	for i := 0; i < a.N(); i++ {
		av := a.NodeActions(i)
		bv := b.NodeActions(i)
		var af, bf []Action
		for _, x := range av {
			if x.Real.LessEq(t) {
				af = append(af, x)
			}
		}
		for _, x := range bv {
			if x.Real.LessEq(t) {
				bf = append(bf, x)
			}
		}
		if len(af) != len(bf) {
			return fmt.Errorf("trace: node %d has %d vs %d actions before %s", i, len(af), len(bf), t)
		}
		for k := range af {
			if af[k].observation() != bf[k].observation() || !af[k].Real.Equal(bf[k].Real) {
				return fmt.Errorf("trace: node %d action %d differs before %s:\n  a: %s @%s\n  b: %s @%s",
					i, k, t, af[k].observation(), af[k].Real, bf[k].observation(), bf[k].Real)
			}
		}
	}
	return nil
}
