package experiments

import (
	"fmt"
	"math"

	"gcs/internal/clock"
	"gcs/internal/core"
	"gcs/internal/network"
	"gcs/internal/rat"
	"gcs/internal/sim"
)

// E6Options configures the empirical gradient-profile experiment.
type E6Options struct {
	Protocols []sim.Protocol
	N         int
	Duration  rat.Rat
	// Seed drives the reproducible random delay adversary; FastEnd makes
	// node 0 run at 1+ρ/2 to create skew pressure.
	Seed    uint64
	FastEnd bool
	Rho     rat.Rat
	// Distances restricts reported rows (nil = all observed distances).
	Distances []int64
}

// DefaultE6 returns the benchmark configuration.
func DefaultE6(protos []sim.Protocol) E6Options {
	return E6Options{
		Protocols: protos,
		N:         17,
		Duration:  rat.FromInt(64),
		Seed:      7,
		FastEnd:   true,
		Rho:       rat.MustFrac(1, 2),
		Distances: []int64{1, 2, 4, 8, 16},
	}
}

// E6Profile is one protocol's empirical f̂(d).
type E6Profile struct {
	Protocol string
	Points   []core.ProfilePoint
	Global   rat.Rat
	Local    rat.Rat
	// FitC is the minimal c with f̂(d) ≤ c·(d + log₂ D) across all observed
	// distances — how the measured profile compares to the paper's
	// conjectured achievable bound O(d + log D).
	FitC float64
}

// fitC computes max over points of f̂(d)/(d + log₂ D).
func fitC(points []core.ProfilePoint, diameter float64) float64 {
	logD := math.Log2(math.Max(diameter, 2))
	c := 0.0
	for _, pt := range points {
		if v := pt.MaxSkew.Float64() / (pt.Dist.Float64() + logD); v > c {
			c = v
		}
	}
	return c
}

// E6Profiles measures f̂(d) = max skew among pairs at distance d on a line
// under drift pressure and randomized delays. The gradient property is
// visible as f̂ growing with d (small at d=1) versus the max-based
// algorithms' flat profile near the global skew.
func E6Profiles(opt E6Options) ([]E6Profile, *Table, error) {
	var profiles []E6Profile
	for _, proto := range opt.Protocols {
		net, err := network.Line(opt.N)
		if err != nil {
			return nil, nil, err
		}
		scheds, err := clock.Diverse(opt.N, rat.FromInt(1),
			rat.FromInt(1).Add(opt.Rho.Div(rat.FromInt(2))), 4, opt.Seed)
		if err != nil {
			return nil, nil, err
		}
		if opt.FastEnd {
			scheds[0] = clock.Constant(rat.FromInt(1).Add(opt.Rho.Div(rat.FromInt(2))))
		}
		exec, err := sim.Run(sim.Config{
			Net:       net,
			Schedules: scheds,
			Adversary: sim.HashAdversary{Seed: opt.Seed, Denom: 8},
			Protocol:  proto,
			Duration:  opt.Duration,
			Rho:       opt.Rho,
		})
		if err != nil {
			return nil, nil, fmt.Errorf("e6 %s: %w", proto.Name(), err)
		}
		if err := core.CheckValidity(exec); err != nil {
			return nil, nil, fmt.Errorf("e6 %s violates validity: %w", proto.Name(), err)
		}
		points := core.SkewProfile(exec)
		profiles = append(profiles, E6Profile{
			Protocol: proto.Name(),
			Points:   points,
			Global:   core.GlobalSkew(exec).Skew,
			Local:    core.LocalSkew(exec).Skew,
			FitC:     fitC(points, net.Diameter().Float64()),
		})
	}

	table := &Table{
		ID:     "E6",
		Title:  "empirical gradient profiles f̂(d) on a drifting line (Requirement 2's measured left-hand side)",
		Header: []string{"protocol"},
	}
	for _, d := range opt.Distances {
		table.Header = append(table.Header, fmt.Sprintf("f̂(%d)", d))
	}
	table.Header = append(table.Header, "global", "local/global", "fit c: f̂≤c(d+log₂D)")
	for _, p := range profiles {
		row := []string{p.Protocol}
		byDist := map[string]rat.Rat{}
		for _, pt := range p.Points {
			byDist[pt.Dist.Key()] = pt.MaxSkew
		}
		for _, d := range opt.Distances {
			if v, ok := byDist[rat.FromInt(d).Key()]; ok {
				row = append(row, fmtRat(v))
			} else {
				row = append(row, "-")
			}
		}
		ratio := 0.0
		if p.Global.Sign() > 0 {
			ratio = p.Local.Float64() / p.Global.Float64()
		}
		row = append(row, fmtRat(p.Global), fmt.Sprintf("%.2f", ratio), fmt.Sprintf("%.3f", p.FitC))
		table.Rows = append(table.Rows, row)
	}
	table.Notes = append(table.Notes,
		"expected shape: null grows unboundedly with time at all d; max-gossip/max-flood keep global small but local ≈ global (no gradient); gradient keeps f̂(1) well below f̂(16)")
	return profiles, table, nil
}
