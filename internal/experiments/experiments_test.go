package experiments

import (
	"encoding/json"
	"strings"
	"testing"

	"gcs/internal/algorithms"
	"gcs/internal/rat"
	"gcs/internal/sim"
)

// smallProtos keeps experiment tests fast: one jump-based and one
// rate-based algorithm.
func smallProtos() []sim.Protocol {
	return []sim.Protocol{
		algorithms.MaxGossip(rat.FromInt(1)),
		algorithms.Gradient(algorithms.DefaultGradientParams()),
	}
}

func TestTableRender(t *testing.T) {
	tb := &Table{
		ID:     "T",
		Title:  "demo",
		Header: []string{"a", "bee"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
		Notes:  []string{"hello"},
	}
	out := tb.Render()
	for _, want := range []string{"== T: demo ==", "a", "bee", "333", "note: hello"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestE1(t *testing.T) {
	opt := DefaultE1(smallProtos())
	opt.Distances = []int64{1, 2}
	rows, table, err := E1Shift(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	for _, r := range rows {
		if !r.OK {
			t.Errorf("%s d=%s: separation %s below guarantee %s", r.Protocol, r.D, r.Separation, r.Guaranteed)
		}
	}
	if !strings.Contains(table.Render(), "REPRODUCED") {
		t.Error("E1 table missing reproduction verdict")
	}
}

func TestE2(t *testing.T) {
	opt := DefaultE2(smallProtos())
	opt.Lines = []int{5, 9}
	rows, table, figure, err := E2AddSkew(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	for _, r := range rows {
		if !r.OK {
			t.Errorf("%s n=%d: gain below guarantee", r.Protocol, r.N)
		}
	}
	if !strings.Contains(figure, "█") {
		t.Error("figure 1 not rendered")
	}
	_ = table.Render()
}

func TestE3(t *testing.T) {
	opt := DefaultE3(smallProtos())
	opt.N = 5
	opt.Duration = rat.FromInt(12)
	opt.Node = 2
	rows, table, err := E3BoundedIncrease(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.ImpliedF1.Sign() <= 0 {
			t.Errorf("%s: implied f(1) = %s not positive", r.Protocol, r.ImpliedF1)
		}
	}
	_ = table.Render()
}

func TestE4(t *testing.T) {
	opt := DefaultE4(smallProtos()[:1])
	opt.Branch = 3
	opt.RoundsList = []int{1, 2}
	rows, table, err := E4MainTheorem(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if !r.AllTargets {
			t.Errorf("R=%d: not all round targets met", r.Rounds)
		}
		if r.AdjacentSkew.Less(r.PaperTarget) {
			t.Errorf("R=%d: adjacent skew %s < target %s", r.Rounds, r.AdjacentSkew, r.PaperTarget)
		}
	}
	_ = table.Render()
}

func TestE5(t *testing.T) {
	opt := DefaultE5(smallProtos())
	opt.Dcs = []int64{8}
	rows, table, err := E5Counterexample(opt)
	if err != nil {
		t.Fatal(err)
	}
	var maxPeak, gradPeak float64
	for _, r := range rows {
		switch r.Protocol {
		case "max-gossip":
			maxPeak = r.Peak.Float64()
		case "gradient":
			gradPeak = r.Peak.Float64()
		}
	}
	if maxPeak <= gradPeak {
		t.Errorf("max-gossip peak %.3f should exceed gradient peak %.3f", maxPeak, gradPeak)
	}
	if maxPeak < 2 { // Dc=8, drift 1/4 → expect ≈ 2+
		t.Errorf("max-gossip peak %.3f too small for Dc=8", maxPeak)
	}
	_ = table.Render()
}

func TestE6(t *testing.T) {
	opt := DefaultE6(smallProtos())
	opt.N = 9
	opt.Duration = rat.FromInt(32)
	opt.Distances = []int64{1, 4, 8}
	profiles, table, err := E6Profiles(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(profiles) != 2 {
		t.Fatalf("profiles = %d", len(profiles))
	}
	for _, p := range profiles {
		if len(p.Points) == 0 {
			t.Errorf("%s: empty profile", p.Protocol)
		}
		// f̂ is trivially monotone-bounded by global.
		for _, pt := range p.Points {
			if pt.MaxSkew.Greater(p.Global) {
				t.Errorf("%s: f̂(%s)=%s exceeds global %s", p.Protocol, pt.Dist, pt.MaxSkew, p.Global)
			}
		}
	}
	_ = table.Render()
}

func TestE7(t *testing.T) {
	opt := DefaultE7(smallProtos())
	opt.Diameters = []int{4, 8}
	opt.Duration = rat.FromInt(24)
	rows, table, err := E7TDMA(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	_ = table.Render()
}

func TestE8(t *testing.T) {
	opt := DefaultE8(smallProtos())
	opt.N = 9
	opt.Duration = rat.FromInt(40)
	opt.TrackDists = []int{1, 4}
	opt.CrossAt = rat.FromInt(20)
	rows, table, err := E8Applications(opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.SiblingSkew.Greater(r.GlobalSkew) {
			t.Errorf("%s: sibling skew exceeds global", r.Protocol)
		}
		if len(r.TrackErrPct) != 2 {
			t.Errorf("%s: tracking errors = %v", r.Protocol, r.TrackErrPct)
		}
	}
	_ = table.Render()
}

func TestE9(t *testing.T) {
	opt := DefaultE9()
	opt.N = 9
	opt.Duration = rat.FromInt(24)
	opt.Thresholds = opt.Thresholds[:2]
	opt.FastMults = opt.FastMults[:2]
	opt.JumpCaps = opt.JumpCaps[:2]
	gradRows, capRows, gt, ct, err := E9Ablations(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(gradRows) != 4 || len(capRows) != 2 {
		t.Fatalf("rows = %d, %d", len(gradRows), len(capRows))
	}
	// Larger caps permit at least as much adversarial local skew.
	if capRows[0].AdvPeak.Greater(capRows[1].AdvPeak) {
		t.Errorf("cap %s adversarial peak %s exceeds cap %s peak %s",
			capRows[0].Cap, capRows[0].AdvPeak, capRows[1].Cap, capRows[1].AdvPeak)
	}
	_ = gt.Render()
	_ = ct.Render()
}

func TestE10(t *testing.T) {
	opt := DefaultE10(smallProtos())
	opt.Duration = rat.FromInt(24)
	rows, table, err := E10Topologies(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 { // 2 protocols × 4 topologies
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Local.Greater(r.Global) {
			t.Errorf("%s on %s: local %s > global %s", r.Protocol, r.Topology, r.Local, r.Global)
		}
	}
	_ = table.Render()
}

func TestE11(t *testing.T) {
	opt := DefaultE11(smallProtos())
	opt.N = 9
	opt.Duration = rat.FromInt(24)
	opt.Seeds = []uint64{1, 2, 3}
	rows, table, err := E11Seeds(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.LocalMedian > r.LocalMax || r.GlobalMed > r.GlobalMax {
			t.Errorf("%s: median exceeds max", r.Protocol)
		}
		if r.LocalMax > r.GlobalMax {
			t.Errorf("%s: local max exceeds global max", r.Protocol)
		}
	}
	_ = table.Render()
}

func TestMedianMax(t *testing.T) {
	if m := median([]float64{3, 1, 2}); m != 2 {
		t.Errorf("median odd = %f", m)
	}
	if m := median([]float64{4, 1, 2, 3}); m != 2.5 {
		t.Errorf("median even = %f", m)
	}
	if m := median(nil); m != 0 {
		t.Errorf("median empty = %f", m)
	}
	if m := maxOf([]float64{1, 5, 2}); m != 5 {
		t.Errorf("maxOf = %f", m)
	}
}

func TestE12(t *testing.T) {
	opt := DefaultE12(smallProtos())
	opt.Sizes = []int{17, 33}
	opt.Duration = rat.FromInt(16)
	rows, table, err := E12StreamScale(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	for _, r := range rows {
		if r.Events == 0 || r.Messages == 0 {
			t.Errorf("%s n=%d: empty run (events=%d messages=%d)", r.Protocol, r.N, r.Events, r.Messages)
		}
		if !r.Valid {
			t.Errorf("%s n=%d: validity violated", r.Protocol, r.N)
		}
		if r.Local.Greater(r.Global) {
			t.Errorf("%s n=%d: local skew %s exceeds global %s", r.Protocol, r.N, r.Local, r.Global)
		}
	}
	if !strings.Contains(table.Render(), "E12") {
		t.Error("table missing E12 id")
	}
}

// TestTableNonFiniteJSON: a ratio column hitting ±Inf/NaN must survive the
// gcsbench -json path — fmtFloat renders the non-finite values as stable
// strings, json.Marshal succeeds, and the output round-trips.
func TestTableNonFiniteJSON(t *testing.T) {
	zero := 0.0
	tb := &Table{
		ID:     "T",
		Title:  "degenerate ratios",
		Header: []string{"steps/cand", "resim/cand", "saved"},
		Rows: [][]string{{
			fmtFloat("%.1f", 1/zero),      // +Inf: zero candidates evaluated
			fmtFloat("%.1f", -1/zero),     // -Inf
			fmtFloat("%.0f%%", zero/zero), // NaN: zero-step run
		}},
	}
	data, err := json.Marshal([]*Table{tb})
	if err != nil {
		t.Fatalf("non-finite cells broke json.Marshal: %v", err)
	}
	if !json.Valid(data) {
		t.Fatalf("marshaled table is not valid JSON: %s", data)
	}
	var back []Table
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if got := back[0].Rows[0]; got[0] != "inf" || got[1] != "-inf" || got[2] != "nan" {
		t.Fatalf("non-finite cells rendered as %v, want inf/-inf/nan", got)
	}
	// Finite values keep their ordinary formatting.
	if got := fmtFloat("%.1f", 2.5); got != "2.5" {
		t.Fatalf("fmtFloat(2.5) = %q", got)
	}
}

func TestE14(t *testing.T) {
	opt, err := DefaultE14(smallProtos())
	if err != nil {
		t.Fatal(err)
	}
	rows, table, err := E14AdaptiveAdversary(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(smallProtos())*len(opt.Cells) {
		t.Fatalf("rows = %d, want %d", len(rows), len(smallProtos())*len(opt.Cells))
	}
	twoNode := 0
	for _, r := range rows {
		if !r.OK {
			t.Errorf("%s on %s: adaptive %s below its floor (baseline %s, shift %s)",
				r.Protocol, r.Cell, r.Adaptive, r.Baseline, r.ShiftBound)
		}
		// On two-node cells (the production floor's own condition) the
		// online scheduler must attain the certified bound the scripted
		// search already recovers.
		if strings.HasPrefix(r.Cell, "two-node") {
			twoNode++
			if r.Adaptive.Less(r.ShiftBound) {
				t.Errorf("%s on %s: adaptive %s below certified Shift bound %s",
					r.Protocol, r.Cell, r.Adaptive, r.ShiftBound)
			}
		}
	}
	if twoNode == 0 {
		t.Error("smoke configuration has no two-node cell")
	}
	if !strings.Contains(table.Render(), "E14") {
		t.Error("table missing E14 id")
	}
}

// TestE14LongCells: -long adds a larger two-node cell and a line.
func TestE14LongCells(t *testing.T) {
	opt, err := DefaultE14(smallProtos())
	if err != nil {
		t.Fatal(err)
	}
	long, err := LongE14Cells(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(long.Cells) != len(opt.Cells)+2 {
		t.Fatalf("long cells = %d, want %d", len(long.Cells), len(opt.Cells)+2)
	}
	var bigTwo, line bool
	for _, c := range long.Cells {
		if c.Net.N() == 2 && c.Net.Diameter().Equal(rat.FromInt(8)) {
			bigTwo = true
		}
		if c.Net.N() == 5 {
			line = true
		}
	}
	if !bigTwo || !line {
		t.Fatalf("long cells missing the d=8 two-node or the line: %+v", long.Cells)
	}
}

func TestE13(t *testing.T) {
	opt, err := DefaultE13(smallProtos())
	if err != nil {
		t.Fatal(err)
	}
	rows, table, err := E13SearchWorstCase(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(smallProtos())*len(opt.Cells) {
		t.Fatalf("rows = %d, want %d", len(rows), len(smallProtos())*len(opt.Cells))
	}
	seeded := 0
	for _, r := range rows {
		if !r.OK {
			t.Errorf("%s on %s: searched %s below its floor (baseline %s, shift %s)",
				r.Protocol, r.Cell, r.Searched, r.Baseline, r.ShiftBound)
		}
		if r.Searched.Less(r.Baseline) {
			t.Errorf("%s on %s: searched %s < midpoint baseline %s",
				r.Protocol, r.Cell, r.Searched, r.Baseline)
		}
		if r.Evaluated == 0 {
			t.Errorf("%s on %s: no candidates evaluated", r.Protocol, r.Cell)
		}
		if r.Seeded {
			seeded++
			// A seeded two-node cell carries the certified construction in
			// its beam: reaching the Shift bound is structural, not luck.
			if r.Searched.Less(r.ShiftBound) {
				t.Errorf("%s on %s: seeded search %s below certified bound %s",
					r.Protocol, r.Cell, r.Searched, r.ShiftBound)
			}
		}
		if r.StepsPerCand > r.ResimPerCand {
			t.Errorf("%s on %s: prefix-cached %.1f steps/cand exceeds resim %.1f",
				r.Protocol, r.Cell, r.StepsPerCand, r.ResimPerCand)
		}
	}
	if seeded == 0 {
		t.Error("no cell was seeded with a certified construction")
	}
	if !strings.Contains(table.Render(), "E13") {
		t.Error("table missing E13 id")
	}
}

// TestE13LongCells: the -long configuration reaches diameter 64, seeds the
// scale cells, and enables windowed mutations on the small cells.
func TestE13LongCells(t *testing.T) {
	opt, err := DefaultE13(smallProtos())
	if err != nil {
		t.Fatal(err)
	}
	long, err := LongE13Cells(opt)
	if err != nil {
		t.Fatal(err)
	}
	if long.Rounds != opt.Rounds+1 {
		t.Errorf("long rounds = %d, want %d", long.Rounds, opt.Rounds+1)
	}
	var d64, windowed, theorem bool
	for _, c := range long.Cells {
		if c.Net.Diameter().Equal(rat.FromInt(64)) && c.Seed == E13SeedShift && !c.MutateTail.IsZero() {
			d64 = true
		}
		if c.RateWindows > 0 {
			windowed = true
		}
		if c.Seed == E13SeedTheorem {
			theorem = true
		}
	}
	if !d64 {
		t.Error("no seeded, tail-biased diameter-64 cell in -long mode")
	}
	if !windowed {
		t.Error("no cell enables windowed rate mutations in -long mode")
	}
	if !theorem {
		t.Error("no MainTheorem-seeded cell in -long mode")
	}
}
