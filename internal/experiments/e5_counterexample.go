package experiments

import (
	"fmt"

	"gcs/internal/lowerbound"
	"gcs/internal/rat"
	"gcs/internal/sim"
)

// E5Options configures the §2 counterexample sweep.
type E5Options struct {
	Protocols []sim.Protocol
	Dcs       []int64
	Params    lowerbound.Params
}

// DefaultE5 returns the benchmark configuration.
func DefaultE5(protos []sim.Protocol) E5Options {
	return E5Options{
		Protocols: protos,
		Dcs:       []int64{4, 8, 16, 32, 64},
		Params:    lowerbound.DefaultParams(),
	}
}

// E5Row is one scenario outcome.
type E5Row struct {
	Protocol   string
	Dc         rat.Rat
	PreSwitch  rat.Rat
	Peak       rat.Rat
	PeakOverDc float64
	LinearInDc bool
}

// E5Counterexample reproduces the paper's §2 story: under the delay-switch
// schedule, max-based algorithms put Θ(D) skew between two nodes at distance
// 1; the gradient algorithm's rate cap prevents the spike.
func E5Counterexample(opt E5Options) ([]E5Row, *Table, error) {
	var rows []E5Row
	for _, proto := range opt.Protocols {
		for _, dcv := range opt.Dcs {
			dc := rat.FromInt(dcv)
			// Run long enough for the x−y gap to accumulate: the drift is
			// ρ/2 per unit, so D/(ρ/2) units builds ≈ D of skew.
			switchAt := dc.Div(opt.Params.Rho.Div(rat.FromInt(2))).Add(dc)
			res, err := lowerbound.Counterexample(lowerbound.CounterexampleInput{
				Protocol: proto,
				Dc:       dc,
				SwitchAt: switchAt,
				Duration: switchAt.Add(rat.FromInt(8)),
				Params:   opt.Params,
			})
			if err != nil {
				return nil, nil, fmt.Errorf("e5 %s Dc=%d: %w", proto.Name(), dcv, err)
			}
			rows = append(rows, E5Row{
				Protocol:   proto.Name(),
				Dc:         dc,
				PreSwitch:  res.PreSwitchYZ.Val,
				Peak:       res.PeakYZ.Val,
				PeakOverDc: res.Ratio,
				LinearInDc: res.Ratio > 0.2,
			})
		}
	}
	table := &Table{
		ID:     "E5",
		Title:  "§2 counterexample: y−z skew at distance 1 after the x→y delay collapse (paper: D+1 for max-based algorithms)",
		Header: []string{"protocol", "Dc", "pre-switch |y−z|", "peak y−z", "peak/Dc", "Θ(D) spike"},
	}
	for _, r := range rows {
		table.Rows = append(table.Rows, []string{
			r.Protocol, fmtRat(r.Dc), fmtRat(r.PreSwitch), fmtRat(r.Peak),
			fmtFloat("%.3f", r.PeakOverDc), fmtBool(r.LinearInDc),
		})
	}
	table.Notes = append(table.Notes,
		"paper: max-based algorithms allow D-scale skew at distance 1 (gradient property violated); expected shape: peak/Dc ≈ drift constant for max-*, near zero for gradient")
	return rows, table, nil
}
