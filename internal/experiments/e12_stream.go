package experiments

import (
	"fmt"

	"gcs/internal/clock"
	"gcs/internal/core"
	"gcs/internal/engine"
	"gcs/internal/network"
	"gcs/internal/rat"
	"gcs/internal/sim"
	"gcs/internal/trace"
)

// E12Options configures the streaming scale experiment: skew metrics on
// lines far larger than the recorded path can hold, measured online with no
// trace retention.
type E12Options struct {
	Protocols []sim.Protocol
	Sizes     []int // line lengths
	Duration  rat.Rat
	Seed      uint64
	Rho       rat.Rat
}

// DefaultE12 returns the benchmark configuration. Long mode appends larger
// lines in the caller.
func DefaultE12(protos []sim.Protocol) E12Options {
	return E12Options{
		Protocols: protos,
		Sizes:     []int{33, 65, 129},
		Duration:  rat.FromInt(32),
		Seed:      7,
		Rho:       rat.MustFrac(1, 2),
	}
}

// E12Row is one streamed measurement.
type E12Row struct {
	Protocol string
	N        int
	Events   uint64
	Messages uint64
	Global   rat.Rat
	Local    rat.Rat
	Valid    bool
}

// E12StreamScale runs each protocol on drifting lines of growing size using
// the streaming engine with online trackers: memory stays O(nodes²)
// regardless of event count, so sizes and durations that would exhaust the
// recorded path run flat, and the global/local skew trajectories remain
// measurable at diameters the post-hoc checkers never reach.
func E12StreamScale(opt E12Options) ([]E12Row, *Table, error) {
	var rows []E12Row
	for _, proto := range opt.Protocols {
		for _, n := range opt.Sizes {
			net, err := network.Line(n)
			if err != nil {
				return nil, nil, err
			}
			scheds, err := clock.Diverse(n, rat.FromInt(1),
				rat.FromInt(1).Add(opt.Rho.Div(rat.FromInt(2))), 4, opt.Seed)
			if err != nil {
				return nil, nil, err
			}
			skew, err := core.NewSkewTracker(net, scheds)
			if err != nil {
				return nil, nil, err
			}
			valid := core.NewValidityTracker(scheds)
			var messages uint64
			eng, err := engine.New(net,
				engine.WithProtocol(proto),
				engine.WithAdversary(sim.HashAdversary{Seed: opt.Seed, Denom: 8}),
				engine.WithSchedules(scheds),
				engine.WithRho(opt.Rho),
			)
			if err != nil {
				return nil, nil, err
			}
			eng.Observe(skew, valid, engine.Funcs{
				Send: func(trace.MsgRecord) { messages++ },
			})
			if err := eng.RunUntil(opt.Duration); err != nil {
				return nil, nil, fmt.Errorf("E12 %s n=%d: %w", proto.Name(), n, err)
			}
			if err := skew.Err(); err != nil {
				return nil, nil, fmt.Errorf("E12 %s n=%d tracker: %w", proto.Name(), n, err)
			}
			rows = append(rows, E12Row{
				Protocol: proto.Name(),
				N:        n,
				Events:   eng.Steps(),
				Messages: messages,
				Global:   skew.Global().Skew,
				Local:    skew.Local().Skew,
				Valid:    valid.Err() == nil,
			})
		}
	}
	table := &Table{
		ID:     "E12",
		Title:  "streaming scale: online skew on large lines (no trace retention)",
		Header: []string{"protocol", "n", "events", "messages", "global skew", "local skew", "valid"},
		Notes: []string{
			"metrics computed online by engine observers in O(n²) state;",
			"the recorded path would buffer every event of every run above",
		},
	}
	for _, r := range rows {
		table.Rows = append(table.Rows, []string{
			r.Protocol,
			fmt.Sprintf("%d", r.N),
			fmt.Sprintf("%d", r.Events),
			fmt.Sprintf("%d", r.Messages),
			fmtRat(r.Global),
			fmtRat(r.Local),
			fmtBool(r.Valid),
		})
	}
	return rows, table, nil
}
