package experiments

import (
	"fmt"
	"math"

	"gcs/internal/lowerbound"
	"gcs/internal/rat"
	"gcs/internal/sim"
)

// E4Options configures the main-theorem sweep.
type E4Options struct {
	Protocols []sim.Protocol
	Branch    int64
	// RoundsList sweeps R; each entry runs a line of Branch^R + 1 nodes.
	RoundsList []int
	Params     lowerbound.Params
}

// DefaultE4 returns the benchmark configuration. Branch 4 with up to 3
// rounds keeps runs in seconds; cmd/gcsbench -long extends the sweep.
func DefaultE4(protos []sim.Protocol) E4Options {
	return E4Options{
		Protocols:  protos,
		Branch:     4,
		RoundsList: []int{1, 2, 3},
		Params:     lowerbound.DefaultParams(),
	}
}

// E4Row is one construction outcome.
type E4Row struct {
	Protocol     string
	D            int
	Rounds       int
	AdjacentSkew rat.Rat
	PaperTarget  rat.Rat // R/24
	// LogShape = log D / log log D (natural logs), the asymptotic the
	// theorem proves adjacent skew must track.
	LogShape   float64
	AllTargets bool
}

// E4MainTheorem runs the Theorem 8.1 construction for each protocol at
// growing diameters and reports the adjacent-pair skew against both the
// paper's explicit R/24 milestone and the log D / log log D shape.
func E4MainTheorem(opt E4Options) ([]E4Row, *Table, error) {
	var rows []E4Row
	for _, proto := range opt.Protocols {
		for _, r := range opt.RoundsList {
			res, err := lowerbound.MainTheorem(lowerbound.MainTheoremInput{
				Protocol: proto,
				Params:   opt.Params,
				Branch:   opt.Branch,
				Rounds:   r,
			})
			if err != nil {
				return nil, nil, fmt.Errorf("e4 %s R=%d: %w", proto.Name(), r, err)
			}
			all := true
			for _, rd := range res.Rounds {
				all = all && rd.TargetMet
			}
			dd := float64(res.D - 1)
			rows = append(rows, E4Row{
				Protocol:     proto.Name(),
				D:            res.D,
				Rounds:       r,
				AdjacentSkew: res.AdjacentSkew,
				PaperTarget:  res.PaperTarget,
				LogShape:     math.Log(dd) / math.Log(math.Log(math.Max(dd, 3))),
				AllTargets:   all,
			})
		}
	}
	table := &Table{
		ID:     "E4",
		Title:  "Main theorem (8.1): adjacent-pair skew forced by the iterated construction vs Ω(log D / log log D)",
		Header: []string{"protocol", "nodes", "rounds", "adjacent skew", "target R/24", "logD/loglogD", "targets met"},
	}
	allOK := true
	for _, r := range rows {
		table.Rows = append(table.Rows, []string{
			r.Protocol, fmt.Sprintf("%d", r.D), fmt.Sprintf("%d", r.Rounds),
			fmtRat(r.AdjacentSkew), fmtRat(r.PaperTarget),
			fmt.Sprintf("%.3f", r.LogShape), fmtBool(r.AllTargets),
		})
		allOK = allOK && r.AllTargets && r.AdjacentSkew.GreaterEq(r.PaperTarget)
	}
	if allOK {
		table.Notes = append(table.Notes,
			"paper: some adjacent pair is forced to k/24 = Ω(log D / log log D) skew; measured: every per-round Δ_k ≥ k/24·n_k milestone met and final adjacent skew ≥ R/24 — REPRODUCED (branch factor reduced from the paper's 384τf(1); per-round gain/loss certified)")
	}
	return rows, table, nil
}
