package experiments

import (
	"fmt"

	"gcs/internal/clock"
	"gcs/internal/core"
	"gcs/internal/network"
	"gcs/internal/rat"
	"gcs/internal/sim"
)

// E10Options configures the topology sweep.
type E10Options struct {
	Protocols []sim.Protocol
	Duration  rat.Rat
	Rho       rat.Rat
	Seed      uint64
}

// DefaultE10 returns the benchmark configuration.
func DefaultE10(protos []sim.Protocol) E10Options {
	return E10Options{
		Protocols: protos,
		Duration:  rat.FromInt(48),
		Rho:       rat.MustFrac(1, 2),
		Seed:      17,
	}
}

// E10Row is one (protocol, topology) outcome.
type E10Row struct {
	Protocol string
	Topology string
	Diameter rat.Rat
	Local    rat.Rat
	Global   rat.Rat
	Messages int
}

// e10Topologies builds the sweep set. The paper's model is
// topology-agnostic (distances are delay uncertainties); the sweep checks
// that the local-vs-global separation persists beyond the line used in the
// constructions.
func e10Topologies() ([]*network.Network, error) {
	line, err := network.Line(17)
	if err != nil {
		return nil, err
	}
	ring, err := network.Ring(16)
	if err != nil {
		return nil, err
	}
	grid, err := network.Grid2D(4, 4)
	if err != nil {
		return nil, err
	}
	star, err := network.Star(12, rat.FromInt(1))
	if err != nil {
		return nil, err
	}
	return []*network.Network{line, ring, grid, star}, nil
}

// E10Topologies runs every protocol on line, ring, grid, and star networks
// under diverse drift and random delays, reporting local and global skew.
func E10Topologies(opt E10Options) ([]E10Row, *Table, error) {
	nets, err := e10Topologies()
	if err != nil {
		return nil, nil, err
	}
	var rows []E10Row
	for _, proto := range opt.Protocols {
		for _, net := range nets {
			n := net.N()
			scheds, err := clock.Diverse(n, rat.FromInt(1),
				rat.FromInt(1).Add(opt.Rho.Div(rat.FromInt(2))), 4, opt.Seed)
			if err != nil {
				return nil, nil, err
			}
			exec, err := sim.Run(sim.Config{
				Net:       net,
				Schedules: scheds,
				Adversary: sim.HashAdversary{Seed: opt.Seed, Denom: 8},
				Protocol:  proto,
				Duration:  opt.Duration,
				Rho:       opt.Rho,
			})
			if err != nil {
				return nil, nil, fmt.Errorf("e10 %s on %s: %w", proto.Name(), net.Name(), err)
			}
			if err := core.CheckValidity(exec); err != nil {
				return nil, nil, fmt.Errorf("e10 %s on %s: %w", proto.Name(), net.Name(), err)
			}
			rows = append(rows, E10Row{
				Protocol: proto.Name(),
				Topology: net.Name(),
				Diameter: net.Diameter(),
				Local:    core.LocalSkew(exec).Skew,
				Global:   core.GlobalSkew(exec).Skew,
				Messages: len(exec.Ledger),
			})
		}
	}
	table := &Table{
		ID:     "E10",
		Title:  "topology sweep: local vs global skew across line, ring, grid, star",
		Header: []string{"protocol", "topology", "diameter", "local skew", "global skew", "messages"},
	}
	for _, r := range rows {
		table.Rows = append(table.Rows, []string{
			r.Protocol, r.Topology, fmtRat(r.Diameter), fmtRat(r.Local), fmtRat(r.Global),
			fmt.Sprintf("%d", r.Messages),
		})
	}
	table.Notes = append(table.Notes,
		"the model is topology-agnostic; denser topologies (grid, star) shrink both diameters and skews, matching the paper's D-dependence")
	return rows, table, nil
}
