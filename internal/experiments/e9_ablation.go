package experiments

import (
	"fmt"

	"gcs/internal/algorithms"
	"gcs/internal/clock"
	"gcs/internal/core"
	"gcs/internal/lowerbound"
	"gcs/internal/network"
	"gcs/internal/rat"
	"gcs/internal/sim"
)

// E9Options configures the design-choice ablations (DESIGN.md §5).
type E9Options struct {
	N        int
	Duration rat.Rat
	Rho      rat.Rat
	Seed     uint64
	// Thresholds and FastMults sweep the gradient protocol.
	Thresholds []rat.Rat
	FastMults  []rat.Rat
	// JumpCaps sweeps BoundedMax and probes Lemma 7.1 per cap.
	JumpCaps []rat.Rat
	Params   lowerbound.Params
}

// DefaultE9 returns the benchmark configuration.
func DefaultE9() E9Options {
	return E9Options{
		N:        17,
		Duration: rat.FromInt(48),
		Rho:      rat.MustFrac(1, 2),
		Seed:     7,
		Thresholds: []rat.Rat{
			rat.MustFrac(1, 2), rat.FromInt(1), rat.FromInt(2), rat.FromInt(4),
		},
		FastMults: []rat.Rat{rat.FromInt(2), rat.FromInt(4), rat.FromInt(8)},
		JumpCaps: []rat.Rat{
			rat.MustFrac(1, 4), rat.FromInt(1), rat.FromInt(4), rat.FromInt(64),
		},
		Params: lowerbound.DefaultParams(),
	}
}

// E9GradientRow is one gradient-parameter outcome.
type E9GradientRow struct {
	Threshold rat.Rat
	FastMult  rat.Rat
	Local     rat.Rat
	Global    rat.Rat
	Messages  int
}

// E9CapRow is one BoundedMax jump-cap outcome.
type E9CapRow struct {
	Cap rat.Rat
	// MaxIncrease is the Lemma 7.1 quantity on the clean line (≈ how
	// "jumpy" the algorithm is).
	MaxIncrease rat.Rat
	// AdvPeak is the §2 adversarial distance-1 skew at Dc = 16.
	AdvPeak rat.Rat
	Local   rat.Rat
	Global  rat.Rat
}

// E9Ablations sweeps the two design knobs DESIGN.md calls out:
//
//  1. the gradient protocol's (threshold, fast-multiplier): lower thresholds
//     buy tighter local skew at the cost of more mode switches; the fast
//     multiplier must exceed (1+ρ)/(1−ρ) to catch drifting clocks at all;
//  2. BoundedMax's jump cap: the knob that walks from gradient-like bounded
//     increase (small cap) to MaxGossip's unbounded jumps (huge cap),
//     showing the Bounded Increase lemma's quantity and the adversarial
//     local skew rising together.
func E9Ablations(opt E9Options) ([]E9GradientRow, []E9CapRow, *Table, *Table, error) {
	runLine := func(proto sim.Protocol) (*core.PairSkew, *core.PairSkew, int, error) {
		net, err := network.Line(opt.N)
		if err != nil {
			return nil, nil, 0, err
		}
		scheds, err := clock.Diverse(opt.N, rat.FromInt(1),
			rat.FromInt(1).Add(opt.Rho.Div(rat.FromInt(2))), 4, opt.Seed)
		if err != nil {
			return nil, nil, 0, err
		}
		exec, err := sim.Run(sim.Config{
			Net:       net,
			Schedules: scheds,
			Adversary: sim.HashAdversary{Seed: opt.Seed, Denom: 8},
			Protocol:  proto,
			Duration:  opt.Duration,
			Rho:       opt.Rho,
		})
		if err != nil {
			return nil, nil, 0, err
		}
		if err := core.CheckValidity(exec); err != nil {
			return nil, nil, 0, err
		}
		l := core.LocalSkew(exec)
		g := core.GlobalSkew(exec)
		return &l, &g, len(exec.Ledger), nil
	}

	var gradRows []E9GradientRow
	for _, th := range opt.Thresholds {
		for _, fm := range opt.FastMults {
			params := algorithms.GradientParams{
				Period:    rat.FromInt(1),
				Threshold: th,
				FastMult:  fm,
			}
			local, global, msgs, err := runLine(algorithms.Gradient(params))
			if err != nil {
				return nil, nil, nil, nil, fmt.Errorf("e9 gradient th=%s fm=%s: %w", th, fm, err)
			}
			gradRows = append(gradRows, E9GradientRow{
				Threshold: th, FastMult: fm,
				Local: local.Skew, Global: global.Skew, Messages: msgs,
			})
		}
	}

	var capRows []E9CapRow
	for _, c := range opt.JumpCaps {
		proto := algorithms.BoundedMax(rat.FromInt(1), c)
		local, global, _, err := runLine(proto)
		if err != nil {
			return nil, nil, nil, nil, fmt.Errorf("e9 cap=%s: %w", c, err)
		}
		// Lemma 7.1 probe on the clean line.
		inc, err := cleanLineIncrease(proto, opt.Params)
		if err != nil {
			return nil, nil, nil, nil, fmt.Errorf("e9 cap=%s probe: %w", c, err)
		}
		// §2 adversarial local skew.
		dc := rat.FromInt(16)
		switchAt := dc.Div(opt.Rho.Div(rat.FromInt(2))).Add(dc)
		cex, err := lowerbound.Counterexample(lowerbound.CounterexampleInput{
			Protocol: proto, Dc: dc, SwitchAt: switchAt,
			Duration: switchAt.Add(rat.FromInt(8)), Params: opt.Params,
		})
		if err != nil {
			return nil, nil, nil, nil, fmt.Errorf("e9 cap=%s counterexample: %w", c, err)
		}
		capRows = append(capRows, E9CapRow{
			Cap: c, MaxIncrease: inc, AdvPeak: cex.PeakYZ.Val,
			Local: local.Skew, Global: global.Skew,
		})
	}

	gt := &Table{
		ID:     "E9a",
		Title:  "gradient protocol ablation: threshold × fast-multiplier → local/global skew, message cost",
		Header: []string{"threshold", "fastMult", "local skew", "global skew", "messages"},
	}
	for _, r := range gradRows {
		gt.Rows = append(gt.Rows, []string{
			fmtRat(r.Threshold), fmtRat(r.FastMult), fmtRat(r.Local), fmtRat(r.Global),
			fmt.Sprintf("%d", r.Messages),
		})
	}
	gt.Notes = append(gt.Notes,
		"the multiplier must exceed the worst rate ratio across the network to catch up at all ((1+ρ)/(1−ρ) in the extreme; max/min observed rate here), but over-aggressive multipliers overshoot and oscillate, inflating both skews — moderate multiplier + small threshold wins")

	ct := &Table{
		ID:     "E9b",
		Title:  "BoundedMax jump-cap ablation: bounded increase vs adversarial distance-1 skew (Lemma 7.1 in action)",
		Header: []string{"cap", "max L(t+1)-L(t)", "adversarial d=1 skew", "local skew", "global skew"},
	}
	for _, r := range capRows {
		ct.Rows = append(ct.Rows, []string{
			fmtRat(r.Cap), fmtRat(r.MaxIncrease), fmtRat(r.AdvPeak), fmtRat(r.Local), fmtRat(r.Global),
		})
	}
	ct.Notes = append(ct.Notes,
		"expected shape: adversarial local skew grows with the cap — fast clock-raising is exactly what the Bounded Increase lemma punishes")
	return gradRows, capRows, gt, ct, nil
}

// cleanLineIncrease measures the worst unit-window increase across interior
// nodes of a clean (rates-1, midpoint) line — the Lemma 7.1 quantity.
func cleanLineIncrease(proto sim.Protocol, p lowerbound.Params) (rat.Rat, error) {
	const n = 9
	net, err := network.Line(n)
	if err != nil {
		return rat.Rat{}, err
	}
	scheds := make([]*clock.Schedule, n)
	for i := range scheds {
		scheds[i] = clock.Constant(rat.FromInt(1))
	}
	cfg := sim.Config{
		Net: net, Schedules: scheds, Adversary: sim.Midpoint(),
		Protocol: proto, Duration: rat.FromInt(24), Rho: p.Rho,
	}
	exec, err := sim.Run(cfg)
	if err != nil {
		return rat.Rat{}, err
	}
	worst := rat.Rat{}
	for i := 1; i < n-1; i++ {
		if v := core.MaxIncreasePerUnit(exec, i, p.Tau(), exec.Duration).Val; v.Greater(worst) {
			worst = v
		}
	}
	return worst, nil
}
