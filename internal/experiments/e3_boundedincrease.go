package experiments

import (
	"fmt"

	"gcs/internal/clock"
	"gcs/internal/core"
	"gcs/internal/lowerbound"
	"gcs/internal/network"
	"gcs/internal/rat"
	"gcs/internal/sim"
)

// E3Options configures the Bounded Increase experiment.
type E3Options struct {
	Protocols []sim.Protocol
	N         int
	Duration  rat.Rat
	// Node probes a specific node when >= 0; otherwise the node with the
	// largest measured increase is probed.
	Node   int
	Seed   uint64
	Params lowerbound.Params
}

// DefaultE3 returns the benchmark configuration. The base execution uses
// drift-diverse rates within the lemma's allowed band [1, 1+ρ/2] — on a
// perfectly clean line no algorithm ever jumps and the probe is vacuous.
func DefaultE3(protos []sim.Protocol) E3Options {
	return E3Options{
		Protocols: protos,
		N:         9,
		Duration:  rat.FromInt(24),
		Node:      -1,
		Seed:      5,
		Params:    lowerbound.DefaultParams(),
	}
}

// E3Row is one protocol's measurement.
type E3Row struct {
	Protocol    string
	Node        int
	MaxIncrease rat.Rat
	WindowGain  rat.Rat
	BetaSkew    rat.Rat
	ImpliedF1   rat.Rat
}

// E3BoundedIncrease probes Lemma 7.1: how fast each protocol raises a
// logical clock, and the distance-1 skew the speed-up adversary extracts
// from that. The lemma's reading: implied f(1) ≥ max(betaSkew,
// maxIncrease/16) — algorithms that jump (max-based) pay in forced local
// skew; rate-bounded algorithms (gradient) do not.
func E3BoundedIncrease(opt E3Options) ([]E3Row, *Table, error) {
	var rows []E3Row
	for _, proto := range opt.Protocols {
		net, err := network.Line(opt.N)
		if err != nil {
			return nil, nil, err
		}
		// Rates diverse within [1, 1+ρ/2] (precondition 1 of the lemma),
		// midpoint delays (within [d/4, 3d/4], precondition 2): drift makes
		// jump-based algorithms actually jump.
		scheds, err := clock.Diverse(opt.N, rat.FromInt(1), opt.Params.RateBandHigh(), 4, opt.Seed)
		if err != nil {
			return nil, nil, err
		}
		cfg := sim.Config{
			Net:       net,
			Schedules: scheds,
			Adversary: sim.Midpoint(),
			Protocol:  proto,
			Duration:  opt.Duration,
			Rho:       opt.Params.Rho,
		}
		alpha, err := sim.Run(cfg)
		if err != nil {
			return nil, nil, fmt.Errorf("e3 %s: %w", proto.Name(), err)
		}
		probe := opt.Node
		if probe < 0 {
			// Probe the node whose clock climbed fastest.
			var worst rat.Rat
			for i := 0; i < opt.N; i++ {
				if v := core.MaxIncreasePerUnit(alpha, i, opt.Params.Tau(), alpha.Duration).Val; v.Greater(worst) {
					worst, probe = v, i
				}
			}
		}
		res, err := lowerbound.BoundedIncrease(lowerbound.BoundedIncreaseInput{
			Cfg: cfg, Alpha: alpha, I: probe, Params: opt.Params,
		})
		if err != nil {
			return nil, nil, fmt.Errorf("e3 %s: %w", proto.Name(), err)
		}
		rows = append(rows, E3Row{
			Protocol:    proto.Name(),
			Node:        probe,
			MaxIncrease: res.MaxIncrease,
			WindowGain:  res.WindowGain,
			BetaSkew:    res.BetaSkew,
			ImpliedF1:   res.ImpliedF1,
		})
	}
	table := &Table{
		ID:     "E3",
		Title:  "Bounded Increase lemma (7.1): unit-window logical gain and the local skew the speed-up execution certifies",
		Header: []string{"protocol", "node", "max L(t+1)-L(t)", "best 1/8-window", "β skew @ d=1", "implied f(1) ≥"},
	}
	for _, r := range rows {
		table.Rows = append(table.Rows, []string{
			r.Protocol, fmt.Sprintf("%d", r.Node), fmtRat(r.MaxIncrease), fmtRat(r.WindowGain),
			fmtRat(r.BetaSkew), fmtRat(r.ImpliedF1),
		})
	}
	table.Notes = append(table.Notes,
		"paper: an f-GCS algorithm must keep L(t+1)−L(t) ≤ 16·f(1); measured: the gradient protocol's increase is a small constant while β-skew certifies f(1) lower bounds for each protocol")
	return rows, table, nil
}
