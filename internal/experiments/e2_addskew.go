package experiments

import (
	"fmt"

	"gcs/internal/clock"
	"gcs/internal/lowerbound"
	"gcs/internal/network"
	"gcs/internal/rat"
	"gcs/internal/sim"
)

// E2Options configures the Add Skew lemma experiment.
type E2Options struct {
	Protocols []sim.Protocol
	// Lines is the list of line sizes (node counts) to run.
	Lines []int
	// Pairs, per line size, chooses (I, J); nil means (0, n−1).
	Params lowerbound.Params
	// RenderFigure renders Figure 1 for the first run when true.
	RenderFigure bool
	FigureWidth  int
}

// DefaultE2 returns the benchmark configuration.
func DefaultE2(protos []sim.Protocol) E2Options {
	return E2Options{
		Protocols:    protos,
		Lines:        []int{5, 9, 17, 33},
		Params:       lowerbound.DefaultParams(),
		RenderFigure: true,
		FigureWidth:  48,
	}
}

// E2Row is one lemma application.
type E2Row struct {
	Protocol   string
	N          int
	I, J       int
	Gain       rat.Rat
	Guaranteed rat.Rat
	OK         bool
}

// E2AddSkew applies Lemma 6.1 on lines of increasing size, for every
// protocol, verifying all four claims of the lemma (indistinguishability,
// rate bounds, delay bounds, gain); it also renders Figure 1's rate
// schedule.
func E2AddSkew(opt E2Options) ([]E2Row, *Table, string, error) {
	var rows []E2Row
	var figure string
	for _, proto := range opt.Protocols {
		for _, n := range opt.Lines {
			res, err := runAddSkewLine(proto, n, opt.Params)
			if err != nil {
				return nil, nil, "", fmt.Errorf("e2 %s n=%d: %w", proto.Name(), n, err)
			}
			rows = append(rows, E2Row{
				Protocol:   proto.Name(),
				N:          n,
				I:          0,
				J:          n - 1,
				Gain:       res.Gain,
				Guaranteed: res.GuaranteedGain,
				OK:         res.Gain.GreaterEq(res.GuaranteedGain),
			})
			if figure == "" && opt.RenderFigure {
				figure = lowerbound.RenderFigure1(res, rat.Rat{}, opt.FigureWidth)
			}
		}
	}
	table := &Table{
		ID:     "E2",
		Title:  "Add Skew lemma (6.1): certified gain vs guaranteed (x_J−x_I)/(8+4ρ); claims 6.2–6.4 verified per run",
		Header: []string{"protocol", "nodes", "pair", "gain", "guaranteed", "ok"},
	}
	allOK := true
	for _, r := range rows {
		table.Rows = append(table.Rows, []string{
			r.Protocol, fmt.Sprintf("%d", r.N), fmt.Sprintf("(%d,%d)", r.I, r.J),
			fmtRat(r.Gain), fmtRat(r.Guaranteed), fmtBool(r.OK),
		})
		allOK = allOK && r.OK
	}
	if allOK {
		table.Notes = append(table.Notes,
			"paper: β adds ≥ (j−i)/12 skew while indistinguishable; measured: every application certified — REPRODUCED")
	}
	return rows, table, figure, nil
}

// runAddSkewLine builds the clean α on a unit line and applies the lemma to
// the endpoints.
func runAddSkewLine(proto sim.Protocol, n int, p lowerbound.Params) (*lowerbound.AddSkewResult, error) {
	net, err := network.Line(n)
	if err != nil {
		return nil, err
	}
	scheds := make([]*clock.Schedule, n)
	for i := range scheds {
		scheds[i] = clock.Constant(rat.FromInt(1))
	}
	span := int64(n - 1)
	cfg := sim.Config{
		Net:       net,
		Schedules: scheds,
		Adversary: sim.Midpoint(),
		Protocol:  proto,
		Duration:  p.Tau().Mul(rat.FromInt(span)),
		Rho:       p.Rho,
	}
	alpha, err := sim.Run(cfg)
	if err != nil {
		return nil, err
	}
	positions := make([]rat.Rat, n)
	for k := range positions {
		positions[k] = rat.FromInt(int64(k))
	}
	return lowerbound.AddSkew(lowerbound.AddSkewInput{
		Cfg: cfg, Alpha: alpha, Positions: positions,
		I: 0, J: n - 1, S: rat.Rat{}, Params: p,
	})
}
