package experiments

import (
	"fmt"

	"gcs/internal/lowerbound"
	"gcs/internal/rat"
	"gcs/internal/sim"
)

// E1Options configures the Ω(d) shift experiment.
type E1Options struct {
	Protocols []sim.Protocol
	Distances []int64
	Params    lowerbound.Params
}

// DefaultE1 returns the benchmark configuration.
func DefaultE1(protos []sim.Protocol) E1Options {
	return E1Options{
		Protocols: protos,
		Distances: []int64{1, 2, 4, 8, 16, 32},
		Params:    lowerbound.DefaultParams(),
	}
}

// E1Row is one measurement.
type E1Row struct {
	Protocol   string
	D          rat.Rat
	SkewAlpha  rat.Rat
	SkewBeta   rat.Rat
	Separation rat.Rat
	Guaranteed rat.Rat
	Implied    rat.Rat
	OK         bool
}

// E1Shift runs the two-node shift construction across protocols and
// distances. The paper's claim: some execution puts Ω(d) skew between the
// two nodes, whatever the algorithm. "OK" records Separation ≥ Guaranteed.
func E1Shift(opt E1Options) ([]E1Row, *Table, error) {
	var rows []E1Row
	for _, proto := range opt.Protocols {
		for _, d := range opt.Distances {
			res, err := lowerbound.Shift(proto, rat.FromInt(d), opt.Params)
			if err != nil {
				return nil, nil, fmt.Errorf("e1 %s d=%d: %w", proto.Name(), d, err)
			}
			guaranteed := opt.Params.GainFraction().Mul(rat.FromInt(d))
			rows = append(rows, E1Row{
				Protocol:   proto.Name(),
				D:          res.D,
				SkewAlpha:  res.SkewAlpha,
				SkewBeta:   res.SkewBeta,
				Separation: res.Separation,
				Guaranteed: guaranteed,
				Implied:    res.Implied,
				OK:         res.Separation.GreaterEq(guaranteed),
			})
		}
	}
	table := &Table{
		ID:     "E1",
		Title:  "Ω(d) shift bound (§5 claim 1): two indistinguishable executions separated by ≥ d/(8+4ρ)",
		Header: []string{"protocol", "d", "skew(α)", "skew(β)", "separation", "guaranteed", "implied f(d)≥", "ok"},
	}
	allOK := true
	for _, r := range rows {
		table.Rows = append(table.Rows, []string{
			r.Protocol, fmtRat(r.D), fmtRat(r.SkewAlpha), fmtRat(r.SkewBeta),
			fmtRat(r.Separation), fmtRat(r.Guaranteed), fmtRat(r.Implied), fmtBool(r.OK),
		})
		allOK = allOK && r.OK
	}
	if allOK {
		table.Notes = append(table.Notes, "paper: f(d) = Ω(d); measured: separation grows linearly in d for every protocol — REPRODUCED")
	} else {
		table.Notes = append(table.Notes, "separation below guarantee for some row — investigate")
	}
	return rows, table, nil
}
