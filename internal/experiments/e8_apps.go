package experiments

import (
	"fmt"

	"gcs/internal/clock"
	"gcs/internal/network"
	"gcs/internal/rat"
	"gcs/internal/sim"
	"gcs/internal/workload"
)

// E8Options configures the application-level experiment.
type E8Options struct {
	Protocols []sim.Protocol
	N         int
	Duration  rat.Rat
	Rho       rat.Rat
	Seed      uint64
	// Tracking distances to probe (sensor 0 to sensor d).
	TrackDists []int
	Speed      rat.Rat
	CrossAt    rat.Rat
}

// DefaultE8 returns the benchmark configuration.
func DefaultE8(protos []sim.Protocol) E8Options {
	return E8Options{
		Protocols:  protos,
		N:          15,
		Duration:   rat.FromInt(60),
		Rho:        rat.MustFrac(1, 2),
		Seed:       13,
		TrackDists: []int{1, 2, 4, 8},
		Speed:      rat.MustFrac(1, 2),
		CrossAt:    rat.FromInt(30),
	}
}

// E8Row is one protocol's application metrics.
type E8Row struct {
	Protocol    string
	SiblingSkew rat.Rat
	GlobalSkew  rat.Rat
	// TrackErrPct[i] is the velocity error at TrackDists[i].
	TrackErrPct []float64
}

// E8Applications runs the two §1 motivating applications on every protocol:
// data-fusion sibling consistency in a binary aggregation tree, and
// target-tracking velocity error as a function of sensor separation.
func E8Applications(opt E8Options) ([]E8Row, *Table, error) {
	var rows []E8Row
	for _, proto := range opt.Protocols {
		net, err := network.Line(opt.N)
		if err != nil {
			return nil, nil, err
		}
		scheds, err := clock.Diverse(opt.N, rat.FromInt(1),
			rat.FromInt(1).Add(opt.Rho.Div(rat.FromInt(2))), 4, opt.Seed)
		if err != nil {
			return nil, nil, err
		}
		exec, err := sim.Run(sim.Config{
			Net:       net,
			Schedules: scheds,
			Adversary: sim.HashAdversary{Seed: opt.Seed, Denom: 8},
			Protocol:  proto,
			Duration:  opt.Duration,
			Rho:       opt.Rho,
		})
		if err != nil {
			return nil, nil, fmt.Errorf("e8 %s: %w", proto.Name(), err)
		}
		fusion, err := workload.FusionConsistency(exec, workload.BinaryFusionTree(opt.N))
		if err != nil {
			return nil, nil, err
		}
		row := E8Row{
			Protocol:    proto.Name(),
			SiblingSkew: fusion.Worst.MaxSkew,
			GlobalSkew:  fusion.GlobalSkew,
		}
		for _, d := range opt.TrackDists {
			rep, err := workload.Tracking(exec, workload.TrackingConfig{
				I: 0, J: d, CrossAt: opt.CrossAt, Speed: opt.Speed,
			})
			if err != nil {
				return nil, nil, fmt.Errorf("e8 %s track d=%d: %w", proto.Name(), d, err)
			}
			row.TrackErrPct = append(row.TrackErrPct, rep.ErrPct)
		}
		rows = append(rows, row)
	}
	table := &Table{
		ID:     "E8",
		Title:  "application metrics (§1 motivation): fusion sibling skew and tracking velocity error vs sensor distance",
		Header: []string{"protocol", "sibling skew", "global skew"},
	}
	for _, d := range opt.TrackDists {
		table.Header = append(table.Header, fmt.Sprintf("vel.err%%@d=%d", d))
	}
	for _, r := range rows {
		row := []string{r.Protocol, fmtRat(r.SiblingSkew), fmtRat(r.GlobalSkew)}
		for _, e := range r.TrackErrPct {
			row = append(row, fmt.Sprintf("%.1f", e))
		}
		table.Rows = append(table.Rows, row)
	}
	table.Notes = append(table.Notes,
		"expected shape: velocity error falls with sensor distance for fixed skew (the paper's gradient motivation); sibling skew ≪ global skew for the gradient algorithm")
	return rows, table, nil
}
