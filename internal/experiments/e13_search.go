package experiments

import (
	"fmt"

	"gcs/internal/lowerbound"
	"gcs/internal/network"
	"gcs/internal/rat"
	"gcs/internal/search"
	"gcs/internal/sim"
)

// E13Cell is one topology instance of the worst-case search sweep.
type E13Cell struct {
	Name     string
	Net      *network.Network
	Duration rat.Rat
}

// E13Options configures the adversary-search experiment: for every protocol
// × topology cell, hunt a skew-maximizing execution and compare it with the
// Midpoint baseline and (at the cell's diameter) the certified Shift bound.
type E13Options struct {
	Protocols []sim.Protocol
	Cells     []E13Cell
	Params    lowerbound.Params

	// Search budget per cell.
	Rounds         int
	Beam           int
	DelayMutations int
	Workers        int
}

// DefaultE13 returns the benchmark configuration: the two-node network the
// Shift bound certifies (searched over the same horizon τ·d the
// construction uses) plus a short drifting line.
func DefaultE13(protos []sim.Protocol) (E13Options, error) {
	p := lowerbound.DefaultParams()
	d := rat.FromInt(2)
	two, err := network.TwoNode(d)
	if err != nil {
		return E13Options{}, err
	}
	line, err := network.Line(5)
	if err != nil {
		return E13Options{}, err
	}
	return E13Options{
		Protocols: protos,
		Cells: []E13Cell{
			{Name: "two-node d=2", Net: two, Duration: p.Tau().Mul(d)},
			{Name: "line n=5", Net: line, Duration: rat.FromInt(8)},
		},
		Params:         p,
		Rounds:         3,
		Beam:           2,
		DelayMutations: 8,
	}, nil
}

// LongE13Cells appends the larger sweeps of -long mode.
func LongE13Cells(opt E13Options) (E13Options, error) {
	d := rat.FromInt(4)
	two, err := network.TwoNode(d)
	if err != nil {
		return opt, err
	}
	ring, err := network.Ring(6)
	if err != nil {
		return opt, err
	}
	opt.Cells = append(opt.Cells,
		E13Cell{Name: "two-node d=4", Net: two, Duration: opt.Params.Tau().Mul(d)},
		E13Cell{Name: "ring n=6", Net: ring, Duration: rat.FromInt(10)},
	)
	opt.Rounds++
	return opt, nil
}

// E13Row is one protocol × topology measurement.
type E13Row struct {
	Protocol string
	Cell     string
	Baseline rat.Rat // global skew under the Midpoint seed
	Searched rat.Rat // searched worst-case global skew
	// ShiftBound is the certified two-node lower bound at the cell's
	// diameter (max measured skew of the Shift construction's execution
	// pair) — the floor any sound worst-case hunter must reach on the
	// two-node cells, and a reference line elsewhere.
	ShiftBound rat.Rat
	Evaluated  int
	OK         bool // Searched ≥ Baseline, and ≥ ShiftBound on two-node cells
}

// E13SearchWorstCase runs the parallel adversary search across the protocol
// portfolio: the repo's first workload where the simulator is driven by an
// optimizer instead of a fixed scenario. "OK" asserts the searched adversary
// dominates the Midpoint baseline everywhere and recovers at least the
// certified Shift separation on the two-node cells.
func E13SearchWorstCase(opt E13Options) ([]E13Row, *Table, error) {
	var rows []E13Row
	for _, proto := range opt.Protocols {
		for _, cell := range opt.Cells {
			res, err := search.Search(search.Options{
				Net:            cell.Net,
				Protocol:       proto,
				Duration:       cell.Duration,
				Rho:            opt.Params.Rho,
				Objective:      search.ObjectiveGlobalSkew,
				Rounds:         opt.Rounds,
				Beam:           opt.Beam,
				DelayMutations: opt.DelayMutations,
				Workers:        opt.Workers,
			})
			if err != nil {
				return nil, nil, fmt.Errorf("e13 %s %s: %w", proto.Name(), cell.Name, err)
			}
			shift, err := lowerbound.Shift(proto, cell.Net.Diameter(), opt.Params)
			if err != nil {
				return nil, nil, fmt.Errorf("e13 %s %s shift reference: %w", proto.Name(), cell.Name, err)
			}
			ok := res.Best.GreaterEq(res.Baseline)
			if cell.Net.N() == 2 {
				ok = ok && res.Best.GreaterEq(shift.Implied)
			}
			rows = append(rows, E13Row{
				Protocol:   proto.Name(),
				Cell:       cell.Name,
				Baseline:   res.Baseline,
				Searched:   res.Best,
				ShiftBound: shift.Implied,
				Evaluated:  res.Evaluated,
				OK:         ok,
			})
		}
	}
	table := &Table{
		ID:     "E13",
		Title:  "worst-case adversary search: searched skew vs Midpoint baseline and certified Shift bound",
		Header: []string{"protocol", "topology", "midpoint", "searched", "shift f(D)≥", "evals", "ok"},
	}
	allOK := true
	for _, r := range rows {
		table.Rows = append(table.Rows, []string{
			r.Protocol, r.Cell, fmtRat(r.Baseline), fmtRat(r.Searched),
			fmtRat(r.ShiftBound), fmt.Sprintf("%d", r.Evaluated), fmtBool(r.OK),
		})
		allOK = allOK && r.OK
	}
	if allOK {
		table.Notes = append(table.Notes,
			"searched adversaries dominate the Midpoint baseline on every cell and recover",
			"the certified Shift separation on the two-node cells — the automated hunter is",
			"at least as strong as the paper's hand construction there")
	} else {
		table.Notes = append(table.Notes, "some cell fell below its floor — investigate")
	}
	return rows, table, nil
}
