package experiments

import (
	"fmt"

	"gcs/internal/lowerbound"
	"gcs/internal/network"
	"gcs/internal/rat"
	"gcs/internal/search"
	"gcs/internal/sim"
)

// E13SeedKind selects which certified construction seeds a cell's search
// beam (ROADMAP "smarter search mutations": start the hunter at, not below,
// the proven bound).
type E13SeedKind int

// Seed kinds.
const (
	// E13SeedNone searches from the unmutated base only.
	E13SeedNone E13SeedKind = iota
	// E13SeedShift seeds the Shift construction's β execution (two-node
	// cells: the candidate already realizes the certified Ω(d) separation).
	E13SeedShift
	// E13SeedTheorem seeds the MainTheorem final execution α_R (line cells
	// sized Branch^TheoremRounds + 1).
	E13SeedTheorem
)

// E13Cell is one topology instance of the worst-case search sweep.
type E13Cell struct {
	Name     string
	Net      *network.Network
	Duration rat.Rat
	// Seed selects the certified construction injected into the beam.
	Seed E13SeedKind
	// Branch and TheoremRounds configure the E13SeedTheorem construction.
	Branch        int64
	TheoremRounds int
	// MutateTail, when nonzero, restricts delay mutations to the tail of the
	// decision log (the construction-surgery shape; maximizes prefix reuse
	// on the -long scale cells).
	MutateTail rat.Rat
	// RateWindows enables windowed rate-schedule mutations for this cell.
	// The scale cells leave it off: windowed mutants change clocks from
	// inside the run and evaluate from scratch, which would dilute the
	// prefix-cache saving the scale cells exist to measure.
	RateWindows int
}

// E13Options configures the adversary-search experiment: for every protocol
// × topology cell, hunt a skew-maximizing execution and compare it with the
// Midpoint baseline and (at the cell's diameter) the certified Shift bound.
type E13Options struct {
	Protocols []sim.Protocol
	Cells     []E13Cell
	Params    lowerbound.Params

	// Search budget per cell.
	Rounds         int
	Beam           int
	DelayMutations int
	Workers        int
}

// DefaultE13 returns the benchmark configuration: the two-node network the
// Shift bound certifies (searched over the same horizon τ·d the
// construction uses, seeded by the construction itself) plus a short
// drifting line.
func DefaultE13(protos []sim.Protocol) (E13Options, error) {
	p := lowerbound.DefaultParams()
	d := rat.FromInt(2)
	two, err := network.TwoNode(d)
	if err != nil {
		return E13Options{}, err
	}
	line, err := network.Line(5)
	if err != nil {
		return E13Options{}, err
	}
	return E13Options{
		Protocols: protos,
		Cells: []E13Cell{
			{Name: "two-node d=2", Net: two, Duration: p.Tau().Mul(d), Seed: E13SeedShift},
			{Name: "line n=5", Net: line, Duration: rat.FromInt(8)},
		},
		Params:         p,
		Rounds:         3,
		Beam:           2,
		DelayMutations: 8,
	}, nil
}

// LongE13Cells appends the scale sweeps of -long mode: two-node cells out to
// diameter 64 (tail-biased mutations over the certified seed, the workload
// where prefix-cached evaluation pays), a ring, and a MainTheorem-seeded
// line. It also enables windowed rate mutations and one extra round.
func LongE13Cells(opt E13Options) (E13Options, error) {
	tau := opt.Params.Tau()
	half := rat.MustFrac(1, 2)
	for _, d := range []int64{4, 16, 64} {
		dd := rat.FromInt(d)
		two, err := network.TwoNode(dd)
		if err != nil {
			return opt, err
		}
		opt.Cells = append(opt.Cells, E13Cell{
			Name: fmt.Sprintf("two-node d=%d", d), Net: two, Duration: tau.Mul(dd),
			Seed: E13SeedShift, MutateTail: half,
		})
	}
	ring, err := network.Ring(6)
	if err != nil {
		return opt, err
	}
	opt.Cells = append(opt.Cells, E13Cell{Name: "ring n=6", Net: ring, Duration: rat.FromInt(10), RateWindows: 2})
	// MainTheorem cell: Branch^Rounds + 1 = 5 nodes; the final execution α_R
	// of the one-round construction runs for τ·n₀ + τ·n₁ (the β window plus
	// its slack, then the next clean window), which the cell's duration must
	// match for the seed to realize the theorem's skew.
	theoremLine, err := network.Line(5)
	if err != nil {
		return opt, err
	}
	opt.Cells = append(opt.Cells, E13Cell{
		Name: "theorem line n=5", Net: theoremLine,
		Duration: tau.Mul(rat.FromInt(4)).Add(tau),
		Seed:     E13SeedTheorem, Branch: 4, TheoremRounds: 1,
		RateWindows: 2,
	})
	opt.Rounds++
	return opt, nil
}

// E13Row is one protocol × topology measurement.
type E13Row struct {
	Protocol string
	Cell     string
	Baseline rat.Rat // global skew under the Midpoint seed
	Searched rat.Rat // searched worst-case global skew
	// ShiftBound is the certified two-node lower bound at the cell's
	// diameter (max measured skew of the Shift construction's execution
	// pair) — the floor any sound worst-case hunter must reach on the
	// two-node cells, and a reference line elsewhere.
	ShiftBound rat.Rat
	Seeded     bool // a certified construction entered the beam
	Evaluated  int
	// StepsPerCand is the engine events dispatched per evaluated candidate
	// under prefix-cached evaluation; ResimPerCand is what from-scratch
	// re-simulation would have dispatched. SavedPct = 1 − Steps/Resim.
	StepsPerCand float64
	ResimPerCand float64
	SavedPct     float64
	OK           bool // Searched ≥ Baseline, and ≥ ShiftBound on two-node cells
}

// cellSeeds builds the cell's certified seed for one protocol. A
// construction that fails on this protocol (its side conditions are
// protocol-dependent) degrades to an unseeded search rather than failing
// the sweep.
func cellSeeds(opt E13Options, cell E13Cell, proto sim.Protocol, shift *lowerbound.ShiftResult) []search.Seed {
	var seed lowerbound.AdversarySeed
	var err error
	switch cell.Seed {
	case E13SeedShift:
		seed, err = shift.Seed()
	case E13SeedTheorem:
		var mt *lowerbound.MainTheoremResult
		mt, err = lowerbound.MainTheorem(lowerbound.MainTheoremInput{
			Protocol: proto, Params: opt.Params,
			Branch: cell.Branch, Rounds: cell.TheoremRounds,
		})
		if err == nil {
			seed, err = mt.Seed()
		}
	default:
		return nil
	}
	if err != nil {
		return nil
	}
	return []search.Seed{search.Seed(seed)}
}

// E13SearchWorstCase runs the parallel adversary search across the protocol
// portfolio: the repo's first workload where the simulator is driven by an
// optimizer instead of a fixed scenario. "OK" asserts the searched adversary
// dominates the Midpoint baseline everywhere and recovers at least the
// certified Shift separation on the two-node cells.
func E13SearchWorstCase(opt E13Options) ([]E13Row, *Table, error) {
	var rows []E13Row
	var searchNotes []string
	for _, proto := range opt.Protocols {
		for _, cell := range opt.Cells {
			shift, err := lowerbound.Shift(proto, cell.Net.Diameter(), opt.Params)
			if err != nil {
				return nil, nil, fmt.Errorf("e13 %s %s shift reference: %w", proto.Name(), cell.Name, err)
			}
			seeds := cellSeeds(opt, cell, proto, shift)
			res, err := search.Search(search.Options{
				Net:            cell.Net,
				Protocol:       proto,
				Duration:       cell.Duration,
				Rho:            opt.Params.Rho,
				Objective:      search.ObjectiveGlobalSkew,
				Seeds:          seeds,
				Rounds:         opt.Rounds,
				Beam:           opt.Beam,
				DelayMutations: opt.DelayMutations,
				MutateTail:     cell.MutateTail,
				RateWindows:    cell.RateWindows,
				Workers:        opt.Workers,
			})
			if err != nil {
				return nil, nil, fmt.Errorf("e13 %s %s: %w", proto.Name(), cell.Name, err)
			}
			for _, note := range res.Notes {
				searchNotes = append(searchNotes, fmt.Sprintf("%s %s: %s", proto.Name(), cell.Name, note))
			}
			ok := res.Best.GreaterEq(res.Baseline)
			if cell.Net.N() == 2 {
				ok = ok && res.Best.GreaterEq(shift.Implied)
			}
			rows = append(rows, E13Row{
				Protocol:     proto.Name(),
				Cell:         cell.Name,
				Baseline:     res.Baseline,
				Searched:     res.Best,
				ShiftBound:   shift.Implied,
				Seeded:       len(seeds) > 0,
				Evaluated:    res.Evaluated,
				StepsPerCand: res.StepsPerCandidate(),
				ResimPerCand: res.ResimPerCandidate(),
				SavedPct:     100 * res.SavedFraction(),
				OK:           ok,
			})
		}
	}
	table := &Table{
		ID:     "E13",
		Title:  "worst-case adversary search: searched skew vs Midpoint baseline and certified Shift bound",
		Header: []string{"protocol", "topology", "midpoint", "searched", "shift f(D)≥", "seeded", "evals", "steps/cand", "resim/cand", "saved", "ok"},
	}
	allOK := true
	for _, r := range rows {
		table.Rows = append(table.Rows, []string{
			r.Protocol, r.Cell, fmtRat(r.Baseline), fmtRat(r.Searched),
			fmtRat(r.ShiftBound), fmtBool(r.Seeded), fmt.Sprintf("%d", r.Evaluated),
			fmtFloat("%.1f", r.StepsPerCand), fmtFloat("%.1f", r.ResimPerCand),
			fmtFloat("%.0f%%", r.SavedPct), fmtBool(r.OK),
		})
		allOK = allOK && r.OK
	}
	if allOK {
		table.Notes = append(table.Notes,
			"searched adversaries dominate the Midpoint baseline on every cell and recover",
			"the certified Shift separation on the two-node cells — the automated hunter is",
			"at least as strong as the paper's hand construction there; steps/cand vs",
			"resim/cand is the prefix-cache saving per evaluated candidate")
	} else {
		table.Notes = append(table.Notes, "some cell fell below its floor — investigate")
	}
	// Surface per-cell search degradations (Result.Notes) in the table: a
	// serial-fallback cell evaluates slower and its script is not
	// independently replayable, which a reader of the JSON output must see.
	table.Notes = append(table.Notes, searchNotes...)
	return rows, table, nil
}
