package experiments

import (
	"strconv"

	"gcs/internal/scenario"
)

// MatrixTable renders scenario matrix reports (internal/scenario) in the
// experiment table format, so the text mode of `gcsbench -matrix` reads
// like the rest of the suite. The JSON golden (BENCH_matrix.json) is
// emitted from the reports directly, not from this table.
func MatrixTable(reports []scenario.Report) *Table {
	t := &Table{
		ID:     "MX",
		Title:  "scenario matrix: generated topologies × fault models × drift profiles, searched + adaptive skew vs certified D-dependent bound",
		Header: []string{"scenario", "n", "D", "dur", "baseline", "searched", "adaptive", "worst", "bound", "term", "margin", "pass"},
	}
	allPass := true
	for _, r := range reports {
		t.Rows = append(t.Rows, []string{
			r.Name, strconv.Itoa(r.N), r.Diameter, r.Duration,
			r.Baseline, r.Searched, r.Adaptive, r.Worst,
			r.Bound, r.BoundTerm, r.Margin, fmtBool(r.Pass),
		})
		allPass = allPass && r.Pass
	}
	if allPass {
		t.Notes = append(t.Notes,
			"every scenario's worst searched/adaptive skew stays within the certified",
			"D-dependent envelope — the diameter term gates the fault-free rows, the",
			"2ρ·dur drift cap gates the faulted ones")
	} else {
		t.Notes = append(t.Notes, "some scenario exceeded its certified bound — investigate before merging")
	}
	return t
}
