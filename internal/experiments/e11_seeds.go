package experiments

import (
	"fmt"
	"sort"

	"gcs/internal/clock"
	"gcs/internal/core"
	"gcs/internal/network"
	"gcs/internal/rat"
	"gcs/internal/sim"
)

// E11Options configures the multi-seed robustness sweep.
type E11Options struct {
	Protocols []sim.Protocol
	N         int
	Duration  rat.Rat
	Rho       rat.Rat
	Seeds     []uint64
}

// DefaultE11 returns the benchmark configuration.
func DefaultE11(protos []sim.Protocol) E11Options {
	return E11Options{
		Protocols: protos,
		N:         17,
		Duration:  rat.FromInt(48),
		Rho:       rat.MustFrac(1, 2),
		Seeds:     []uint64{1, 2, 3, 5, 8, 13, 21, 34},
	}
}

// E11Row aggregates one protocol across seeds.
type E11Row struct {
	Protocol    string
	Seeds       int
	LocalMedian float64
	LocalMax    float64
	GlobalMed   float64
	GlobalMax   float64
}

// E11Seeds runs every protocol across several (drift, delay) seeds and
// aggregates local/global skew. Single-seed experiments can flatter or
// punish an algorithm by accident; this sweep shows which orderings are
// stable. (The lower-bound experiments E1–E5 need no such treatment: their
// schedules are the worst case by construction.)
func E11Seeds(opt E11Options) ([]E11Row, *Table, error) {
	var rows []E11Row
	for _, proto := range opt.Protocols {
		var locals, globals []float64
		for _, seed := range opt.Seeds {
			net, err := network.Line(opt.N)
			if err != nil {
				return nil, nil, err
			}
			scheds, err := clock.Diverse(opt.N, rat.FromInt(1),
				rat.FromInt(1).Add(opt.Rho.Div(rat.FromInt(2))), 4, seed)
			if err != nil {
				return nil, nil, err
			}
			exec, err := sim.Run(sim.Config{
				Net:       net,
				Schedules: scheds,
				Adversary: sim.HashAdversary{Seed: seed, Denom: 8},
				Protocol:  proto,
				Duration:  opt.Duration,
				Rho:       opt.Rho,
			})
			if err != nil {
				return nil, nil, fmt.Errorf("e11 %s seed=%d: %w", proto.Name(), seed, err)
			}
			if err := core.CheckValidity(exec); err != nil {
				return nil, nil, fmt.Errorf("e11 %s seed=%d: %w", proto.Name(), seed, err)
			}
			locals = append(locals, core.LocalSkew(exec).Skew.Float64())
			globals = append(globals, core.GlobalSkew(exec).Skew.Float64())
		}
		rows = append(rows, E11Row{
			Protocol:    proto.Name(),
			Seeds:       len(opt.Seeds),
			LocalMedian: median(locals),
			LocalMax:    maxOf(locals),
			GlobalMed:   median(globals),
			GlobalMax:   maxOf(globals),
		})
	}
	table := &Table{
		ID:     "E11",
		Title:  fmt.Sprintf("multi-seed robustness (%d seeds, %d-node line): skew distributions", len(opt.Seeds), opt.N),
		Header: []string{"protocol", "local med", "local max", "global med", "global max"},
	}
	for _, r := range rows {
		table.Rows = append(table.Rows, []string{
			r.Protocol,
			fmt.Sprintf("%.3f", r.LocalMedian), fmt.Sprintf("%.3f", r.LocalMax),
			fmt.Sprintf("%.3f", r.GlobalMed), fmt.Sprintf("%.3f", r.GlobalMax),
		})
	}
	table.Notes = append(table.Notes,
		"benign-schedule orderings are stable across seeds; contrast with the adversarial schedules of E5/E7 where max-based local skew scales with D")
	return rows, table, nil
}

func median(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	s := append([]float64{}, vs...)
	sort.Float64s(s)
	mid := len(s) / 2
	if len(s)%2 == 1 {
		return s[mid]
	}
	return (s[mid-1] + s[mid]) / 2
}

func maxOf(vs []float64) float64 {
	m := 0.0
	for _, v := range vs {
		if v > m {
			m = v
		}
	}
	return m
}
