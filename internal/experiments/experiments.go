// Package experiments regenerates every checkable result of Fan & Lynch
// (PODC 2004). The paper is a theory paper — its "evaluation" is its
// constructions — so each experiment either executes a construction and
// reports the certified quantities, or measures the behavior the paper
// describes qualitatively (gradient profiles, application-level effects).
//
// Experiment index (see DESIGN.md §4 and EXPERIMENTS.md):
//
//	E1  §5 claim 1      Ω(d) shift bound, per algorithm and distance
//	E2  Lemma 6.1       Add Skew gain vs the guaranteed (x_J−x_I)/12
//	F1  Figure 1        the β rate schedule (rendered and asserted in E2)
//	E3  Lemma 7.1       Bounded Increase: max unit-window gain, implied f(1)
//	E4  Theorem 8.1     iterated construction: adjacent skew vs log D/log log D
//	E5  §2              Srikanth–Toueg counterexample: D+1 skew at distance 1
//	E6  §1/§4           empirical gradient profiles f̂(d) per algorithm
//	E7  §1 (TDMA)       guard-band feasibility vs diameter
//	E8  §1 (apps)       data fusion consistency and tracking velocity error
//	E9  ablations       gradient/counterexample parameter sensitivity
//	E10 topologies      skew metrics across topology families
//	E11 seeds           seed stability of the randomized sweeps
//	E12 streaming       online skew at line sizes beyond the recorded path
//	E13 search          worst-case adversary search vs baseline and Shift bound
//	E14 adaptive        online §2 scheduler (adaptive adversary) vs scripted search
package experiments

import (
	"fmt"
	"math"
	"strings"

	"gcs/internal/rat"
)

// Table is a rendered experiment result. The JSON tags are the stable
// machine-readable schema emitted by gcsbench -json.
type Table struct {
	ID     string     `json:"id"`
	Title  string     `json:"title"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
	// Notes holds free-form commentary lines (paper-vs-measured verdicts).
	Notes []string `json:"notes,omitempty"`
}

// Render formats the table as aligned text.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// fmtRat renders a rational compactly: exact when short, decimal otherwise.
func fmtRat(r rat.Rat) string {
	s := r.String()
	if len(s) <= 10 {
		return s
	}
	return fmt.Sprintf("%.4f", r.Float64())
}

// fmtFloat renders a derived float column (ratios, percentages) with the
// given fmt verb, mapping the non-finite values to stable strings. Table
// cells are strings, so ±Inf/NaN can never corrupt the JSON the tables are
// marshaled into — but "+Inf" spellings vary across formatting paths, and a
// raw float64 leaking into a future schema would make json.Marshal fail
// outright. Every ratio column goes through here so a degenerate run (zero
// candidates, zero steps) renders as "inf"/"nan" and the table stays
// machine-readable.
func fmtFloat(format string, v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "inf"
	case math.IsInf(v, -1):
		return "-inf"
	case math.IsNaN(v):
		return "nan"
	}
	return fmt.Sprintf(format, v)
}

func fmtBool(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}
