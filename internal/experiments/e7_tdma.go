package experiments

import (
	"fmt"

	"gcs/internal/clock"
	"gcs/internal/lowerbound"
	"gcs/internal/network"
	"gcs/internal/rat"
	"gcs/internal/sim"
	"gcs/internal/workload"
)

// E7Options configures the TDMA scaling experiment.
type E7Options struct {
	Protocols []sim.Protocol
	Diameters []int
	TDMA      workload.TDMAConfig
	Duration  rat.Rat
	Rho       rat.Rat
	Seed      uint64
}

// DefaultE7 returns the benchmark configuration: 2 slots of length 8 with a
// guard band of 3 — with two slots, nodes at distance 2 share a slot and
// interfere, so the schedule is collision-free exactly while distance-2
// skew stays ≤ 3. (Three or more slots on a line put same-slot nodes beyond
// interference range, which hides the effect entirely.)
func DefaultE7(protos []sim.Protocol) E7Options {
	return E7Options{
		Protocols: protos,
		Diameters: []int{4, 8, 16, 32},
		TDMA: workload.TDMAConfig{
			Slots:   2,
			SlotLen: rat.FromInt(24),
			Guard:   rat.FromInt(8),
		},
		Duration: rat.FromInt(48),
		Rho:      rat.MustFrac(1, 2),
		Seed:     11,
	}
}

// E7Row is one (protocol, diameter) outcome.
type E7Row struct {
	Protocol  string
	D         int
	WorstSkew rat.Rat
	// Feasible: collision-free on the benign (diverse-drift, random-delay)
	// schedule.
	Feasible bool
	// AdvPeak is the distance-1 skew the §2 delay-switch adversary forces at
	// this diameter; AdvFeasible compares it against the guard band — the
	// paper's actual TDMA claim is about such worst-case schedules.
	AdvPeak     rat.Rat
	AdvFeasible bool
}

// E7TDMA evaluates, per diameter, whether the fixed guard band still
// prevents collisions — the paper's claim that "the TDMA protocol with a
// fixed slot granularity will fail as the network grows" for algorithms
// without the gradient property.
func E7TDMA(opt E7Options) ([]E7Row, *Table, error) {
	var rows []E7Row
	for _, proto := range opt.Protocols {
		for _, d := range opt.Diameters {
			n := d + 1
			net, err := network.Line(n)
			if err != nil {
				return nil, nil, err
			}
			// Every node drifts differently within [1, 1+ρ/2].
			scheds, err := clock.Diverse(n, rat.FromInt(1),
				rat.FromInt(1).Add(opt.Rho.Div(rat.FromInt(2))), 4, opt.Seed)
			if err != nil {
				return nil, nil, err
			}
			exec, err := sim.Run(sim.Config{
				Net:       net,
				Schedules: scheds,
				Adversary: sim.HashAdversary{Seed: opt.Seed, Denom: 8},
				Protocol:  proto,
				Duration:  opt.Duration,
				Rho:       opt.Rho,
			})
			if err != nil {
				return nil, nil, fmt.Errorf("e7 %s D=%d: %w", proto.Name(), d, err)
			}
			ok, worst, err := workload.TDMAFeasible(exec, opt.TDMA)
			if err != nil {
				return nil, nil, err
			}
			// Worst case: the §2 delay-switch schedule at this diameter.
			dc := rat.FromInt(int64(d))
			switchAt := dc.Div(opt.Rho.Div(rat.FromInt(2))).Add(dc)
			cex, err := lowerbound.Counterexample(lowerbound.CounterexampleInput{
				Protocol: proto,
				Dc:       dc,
				SwitchAt: switchAt,
				Duration: switchAt.Add(rat.FromInt(8)),
				Params:   lowerbound.Params{Rho: opt.Rho},
			})
			if err != nil {
				return nil, nil, fmt.Errorf("e7 adversarial %s D=%d: %w", proto.Name(), d, err)
			}
			rows = append(rows, E7Row{
				Protocol:    proto.Name(),
				D:           d,
				WorstSkew:   worst,
				Feasible:    ok,
				AdvPeak:     cex.PeakYZ.Val,
				AdvFeasible: cex.PeakYZ.Val.LessEq(opt.TDMA.Guard),
			})
		}
	}
	table := &Table{
		ID:     "E7",
		Title:  fmt.Sprintf("TDMA with fixed guard band %s (slots=%d, slot=%s): feasibility vs diameter", opt.TDMA.Guard, opt.TDMA.Slots, opt.TDMA.SlotLen),
		Header: []string{"protocol", "diameter", "benign skew", "benign ok", "adversarial d=1 skew", "adversarial ok"},
	}
	for _, r := range rows {
		table.Rows = append(table.Rows, []string{
			r.Protocol, fmt.Sprintf("%d", r.D), fmtRat(r.WorstSkew), fmtBool(r.Feasible),
			fmtRat(r.AdvPeak), fmtBool(r.AdvFeasible),
		})
	}
	table.Notes = append(table.Notes,
		"paper (§1): fixed-granularity TDMA cannot scale. Expected shape: null fails even benignly; max-based algorithms survive benign schedules but the §2 adversary forces distance-1 skew ∝ D past any fixed guard; the gradient algorithm's rate cap keeps the adversarial skew bounded far longer")
	return rows, table, nil
}
