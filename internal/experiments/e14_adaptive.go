package experiments

import (
	"fmt"

	"gcs/internal/clock"
	"gcs/internal/core"
	"gcs/internal/engine"
	"gcs/internal/lowerbound"
	"gcs/internal/network"
	"gcs/internal/rat"
	"gcs/internal/search"
	"gcs/internal/sim"
)

// E14Cell is one topology instance of the adaptive-adversary experiment.
type E14Cell struct {
	Name     string
	Net      *network.Network
	Duration rat.Rat
	// Source and Front are the adaptive scheduler's roles: the fast node
	// whose view is held stale, and the node whose edge is released.
	Source, Front int
}

// E14Options configures the adaptive-vs-scripted hunter comparison: for
// every protocol × topology cell, run the generalized §2 online scheduler
// (an adaptive adversary that watches the execution and releases itself),
// run the scripted beam search on the same cell, and put both next to the
// certified Shift bound at the cell's diameter.
type E14Options struct {
	Protocols []sim.Protocol
	Cells     []E14Cell
	Params    lowerbound.Params

	// Scripted-search budget per cell.
	Rounds         int
	Beam           int
	DelayMutations int
	Workers        int
}

// DefaultE14 returns the smoke configuration: the two-node cell the Shift
// bound certifies, searched over the construction's own horizon τ·d — the
// cell on which the adaptive scheduler must attain the certified bound.
func DefaultE14(protos []sim.Protocol) (E14Options, error) {
	p := lowerbound.DefaultParams()
	d := rat.FromInt(2)
	two, err := network.TwoNode(d)
	if err != nil {
		return E14Options{}, err
	}
	return E14Options{
		Protocols: protos,
		Cells: []E14Cell{
			{Name: "two-node d=2", Net: two, Duration: p.Tau().Mul(d), Source: 0, Front: 1},
		},
		Params:         p,
		Rounds:         2,
		Beam:           2,
		DelayMutations: 6,
	}, nil
}

// LongE14Cells appends the -long sweeps: a larger two-node cell and a line,
// where the online strategy runs against topologies the §2 construction
// never named.
func LongE14Cells(opt E14Options) (E14Options, error) {
	tau := opt.Params.Tau()
	d := rat.FromInt(8)
	two, err := network.TwoNode(d)
	if err != nil {
		return opt, err
	}
	opt.Cells = append(opt.Cells, E14Cell{
		Name: "two-node d=8", Net: two, Duration: tau.Mul(d), Source: 0, Front: 1,
	})
	line, err := network.Line(5)
	if err != nil {
		return opt, err
	}
	opt.Cells = append(opt.Cells, E14Cell{
		Name: "line n=5", Net: line, Duration: rat.FromInt(12), Source: 0, Front: 4,
	})
	return opt, nil
}

// E14Row is one protocol × topology measurement.
type E14Row struct {
	Protocol string
	Cell     string
	// Adaptive is the global skew the online scheduler forced; Released is
	// the real time its trigger fired (nil when it never did — the run then
	// simply stayed maximally stale).
	Adaptive rat.Rat
	Released *rat.Rat
	// Searched is the scripted beam search's worst case on the same cell,
	// and Baseline its Midpoint baseline.
	Searched rat.Rat
	Baseline rat.Rat
	// ShiftBound is the certified two-node lower bound at the cell's
	// diameter — the floor the adaptive scheduler must reach on two-node
	// cells.
	ShiftBound rat.Rat
	OK         bool
}

// adaptiveSkew runs the generalized §2 scheduler on one cell: source node on
// the fast 1+ρ/2 rate band, everyone else at rate 1, release threshold at
// the conventional ρ·dur/3. It returns the forced global skew and the
// release time, if the trigger fired.
func adaptiveSkew(cell E14Cell, proto sim.Protocol, p lowerbound.Params) (rat.Rat, *rat.Rat, error) {
	adv, err := lowerbound.NewAdaptiveScheduler(cell.Net, cell.Source, cell.Front,
		lowerbound.AutoThreshold(p.Rho, cell.Duration))
	if err != nil {
		return rat.Rat{}, nil, err
	}
	scheds := make([]*clock.Schedule, cell.Net.N())
	for i := range scheds {
		scheds[i] = clock.Constant(rat.FromInt(1))
	}
	scheds[cell.Source] = clock.Constant(p.RateBandHigh())
	skew, err := core.NewSkewTracker(cell.Net, scheds)
	if err != nil {
		return rat.Rat{}, nil, err
	}
	eng, err := engine.New(cell.Net,
		engine.WithProtocol(proto),
		engine.WithAdversary(adv),
		engine.WithSchedules(scheds),
		engine.WithRho(p.Rho),
		engine.WithObservers(skew),
	)
	if err != nil {
		return rat.Rat{}, nil, err
	}
	if err := eng.RunUntil(cell.Duration); err != nil {
		return rat.Rat{}, nil, err
	}
	if err := skew.Err(); err != nil {
		return rat.Rat{}, nil, err
	}
	var released *rat.Rat
	if at, ok := adv.Released(); ok {
		released = &at
	}
	return skew.Global().Skew, released, nil
}

// E14AdaptiveAdversary runs the comparison. "OK" asserts the online
// scheduler reaches the certified Shift bound on the two-node cells (the
// same floor the scripted search recovers) and never falls below the
// scripted search's own Midpoint baseline elsewhere.
func E14AdaptiveAdversary(opt E14Options) ([]E14Row, *Table, error) {
	var rows []E14Row
	for _, proto := range opt.Protocols {
		for _, cell := range opt.Cells {
			shift, err := lowerbound.Shift(proto, cell.Net.Diameter(), opt.Params)
			if err != nil {
				return nil, nil, fmt.Errorf("e14 %s %s shift reference: %w", proto.Name(), cell.Name, err)
			}
			adaptive, released, err := adaptiveSkew(cell, proto, opt.Params)
			if err != nil {
				return nil, nil, fmt.Errorf("e14 %s %s adaptive run: %w", proto.Name(), cell.Name, err)
			}
			res, err := search.Search(search.Options{
				Net:            cell.Net,
				Protocol:       proto,
				Duration:       cell.Duration,
				Rho:            opt.Params.Rho,
				Objective:      search.ObjectiveGlobalSkew,
				Rounds:         opt.Rounds,
				Beam:           opt.Beam,
				DelayMutations: opt.DelayMutations,
				Workers:        opt.Workers,
			})
			if err != nil {
				return nil, nil, fmt.Errorf("e14 %s %s search: %w", proto.Name(), cell.Name, err)
			}
			ok := adaptive.GreaterEq(res.Baseline)
			if cell.Net.N() == 2 {
				ok = ok && adaptive.GreaterEq(shift.Implied)
			}
			rows = append(rows, E14Row{
				Protocol:   proto.Name(),
				Cell:       cell.Name,
				Adaptive:   adaptive,
				Released:   released,
				Searched:   res.Best,
				Baseline:   res.Baseline,
				ShiftBound: shift.Implied,
				OK:         ok,
			})
		}
	}
	table := &Table{
		ID:     "E14",
		Title:  "adaptive online adversary (§2 scheduler, general form) vs scripted beam search and certified Shift bound",
		Header: []string{"protocol", "topology", "adaptive", "released@", "searched", "midpoint", "shift f(D)≥", "ok"},
	}
	allOK := true
	for _, r := range rows {
		released := "never"
		if r.Released != nil {
			released = fmtRat(*r.Released)
		}
		table.Rows = append(table.Rows, []string{
			r.Protocol, r.Cell, fmtRat(r.Adaptive), released,
			fmtRat(r.Searched), fmtRat(r.Baseline), fmtRat(r.ShiftBound), fmtBool(r.OK),
		})
		allOK = allOK && r.OK
	}
	if allOK {
		table.Notes = append(table.Notes,
			"the online scheduler — which is never told the schedules' divergence times, only",
			"watches the run it delays — dominates the Midpoint baseline on every cell and",
			"recovers the certified Shift separation on the two-node cells, like the scripted",
			"beam search before it")
	} else {
		table.Notes = append(table.Notes, "some cell fell below its floor — investigate")
	}
	return rows, table, nil
}
