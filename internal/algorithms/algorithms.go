// Package algorithms implements clock synchronization algorithms (CSAs) as
// sim.Protocol automata.
//
// The portfolio mirrors the paper's discussion:
//
//   - Null: L = H, no communication. The do-nothing baseline; accumulates
//     skew at the drift rate and has no global skew bound.
//   - MaxGossip: the simplified Srikanth–Toueg algorithm that §2 of the
//     paper uses to show the gradient property fails: "nodes periodically
//     broadcast their clock values, and any node receiving a value sets its
//     clock value to be the larger of its own clock value and the received
//     value." Global skew is O(D), but a single receipt can yank a node D
//     ahead of a distance-1 neighbor.
//   - MaxFlood: MaxGossip plus immediate forwarding when a receipt increases
//     the clock; tightens global skew, makes the §2 violation sharper.
//   - Gradient: a rate-based catch-up algorithm of the kind the paper
//     conjectures achieves f(d) = O(d + log D): instead of jumping, a node
//     that sees a neighbor ahead by more than a threshold raises its logical
//     rate multiplier; increase per unit time is bounded by a constant, in
//     the spirit of the Bounded Increase lemma.
//   - RBS: a reference-broadcast scheme after Elson et al.: a beacon node
//     broadcasts pulses; receivers align their logical clocks to the pulse
//     frame. Intended for Star topologies where the beacon-to-leaf delay
//     spread is the distance.
//
// All message payloads implement sim.Message with canonical value-determined
// strings, which the indistinguishability checker compares.
package algorithms

import (
	"strconv"

	"gcs/internal/rat"
	"gcs/internal/sim"
)

// ValueMsg carries a logical clock value.
type ValueMsg struct {
	Val rat.Rat
}

// MsgString implements sim.Message. It is called for every message the
// simulator observes, so the common small-rational case is rendered into a
// stack buffer and converted with a single allocation.
func (m ValueMsg) MsgString() string {
	n, nok := m.Val.Num()
	d, dok := m.Val.Den()
	if !nok || !dok {
		return "v:" + m.Val.String()
	}
	var buf [44]byte // len("v:" + "-9223372036854775808/9223372036854775807")
	out := append(buf[:0], 'v', ':')
	out = strconv.AppendInt(out, n, 10)
	if d != 1 {
		out = append(out, '/')
		out = strconv.AppendInt(out, d, 10)
	}
	return string(out)
}

// PulseMsg is an RBS beacon pulse.
type PulseMsg struct {
	Index int64
}

// MsgString implements sim.Message.
func (m PulseMsg) MsgString() string { return "pulse:" + strconv.FormatInt(m.Index, 10) }

const tickTimer = 1

// ---- Null ----

type nullProto struct{}

// Null returns the no-communication baseline protocol with L = H.
func Null() sim.Protocol { return nullProto{} }

func (nullProto) Name() string         { return "null" }
func (nullProto) NewNode(int) sim.Node { return nullNode{} }

// CloneState implements sim.Protocol; nullNode is stateless.
func (nullProto) CloneState(n sim.Node) sim.Node { return n }

type nullNode struct{}

func (nullNode) Init(*sim.Runtime)                        {}
func (nullNode) OnTimer(*sim.Runtime, int)                {}
func (nullNode) OnMessage(*sim.Runtime, int, sim.Message) {}

// ---- MaxGossip ----

type maxProto struct {
	period rat.Rat
	flood  bool
}

// MaxGossip returns the simplified Srikanth–Toueg protocol: every period (in
// hardware time) broadcast the logical clock to gossip neighbors; on receipt
// of a larger value, jump to it.
func MaxGossip(period rat.Rat) sim.Protocol { return maxProto{period: period} }

// MaxFlood is MaxGossip plus immediate re-broadcast whenever a receipt
// increases the clock, propagating the maximum at network speed.
func MaxFlood(period rat.Rat) sim.Protocol { return maxProto{period: period, flood: true} }

func (p maxProto) Name() string {
	if p.flood {
		return "max-flood"
	}
	return "max-gossip"
}

func (p maxProto) NewNode(int) sim.Node { return &maxNode{period: p.period, flood: p.flood} }

// CloneState implements sim.Protocol. A maxNode carries only immutable
// configuration (its mutable state — the logical clock — lives in the
// Runtime), so forks share the automaton itself.
func (p maxProto) CloneState(n sim.Node) sim.Node { return n }

// maxNode holds configuration only; its callbacks never write a field.
// CloneState shares it across forks on that basis.
type maxNode struct {
	period rat.Rat
	flood  bool
}

func (n *maxNode) Init(rt *sim.Runtime) {
	rt.SetTimerAtHW(rt.HW().Add(n.period), tickTimer)
}

func (n *maxNode) OnTimer(rt *sim.Runtime, _ int) {
	n.broadcast(rt)
	rt.SetTimerAtHW(rt.HW().Add(n.period), tickTimer)
}

func (n *maxNode) broadcast(rt *sim.Runtime) {
	// Box the payload once: the same immutable value goes to every neighbor.
	msg := sim.Message(ValueMsg{Val: rt.Logical()})
	for _, j := range rt.Neighbors() {
		rt.Send(j, msg)
	}
}

func (n *maxNode) OnMessage(rt *sim.Runtime, _ int, msg sim.Message) {
	m, ok := msg.(ValueMsg)
	if !ok {
		return
	}
	if m.Val.Greater(rt.Logical()) {
		rt.SetLogical(m.Val, rat.FromInt(1))
		if n.flood {
			n.broadcast(rt)
		}
	}
}

// ---- Gradient ----

// GradientParams configures the rate-based gradient protocol.
type GradientParams struct {
	// Period between neighbor exchanges, in hardware time.
	Period rat.Rat
	// Threshold above which a node enters fast mode: if the best neighbor
	// estimate exceeds the local logical clock by more than Threshold, the
	// node raises its multiplier.
	Threshold rat.Rat
	// FastMult is the catch-up multiplier (> 1). Increase per real second is
	// at most FastMult·(1+ρ), a constant — the structural property the
	// Bounded Increase lemma says any good gradient algorithm must have.
	FastMult rat.Rat
}

// DefaultGradientParams returns the parameters used by the benchmarks:
// period 1, threshold 1, fast multiplier 4. The fast multiplier must exceed
// (1+ρ)/(1−ρ) or a slow-hardware node in fast mode still cannot catch a
// fast-hardware node; with the repository default ρ = 1/2 that ratio is 3,
// so 4 leaves headroom. (Real deployments have ρ ≈ 10⁻⁴; the simulations use
// a huge drift to make effects visible in short runs.)
func DefaultGradientParams() GradientParams {
	return GradientParams{
		Period:    rat.FromInt(1),
		Threshold: rat.FromInt(1),
		FastMult:  rat.FromInt(4),
	}
}

type gradientProto struct {
	params GradientParams
}

// Gradient returns the rate-based gradient protocol.
func Gradient(params GradientParams) sim.Protocol { return gradientProto{params: params} }

func (p gradientProto) Name() string { return "gradient" }

func (p gradientProto) NewNode(int) sim.Node {
	return &gradientNode{params: p.params}
}

// CloneState implements sim.Protocol: the neighbor-estimate table is the
// node's mutable state; it is shared copy-on-write (see estSet.clone), so
// cloning is a single struct copy regardless of degree.
func (p gradientProto) CloneState(n sim.Node) sim.Node {
	g := n.(*gradientNode)
	return &gradientNode{params: g.params, est: g.est.clone(), fast: g.fast}
}

// CloneStates implements sim.BulkCloneProtocol: all clones come out of one
// slab, so a whole-network fork costs two allocations however wide the net.
func (p gradientProto) CloneStates(nodes []sim.Node) []sim.Node {
	slab := make([]gradientNode, len(nodes))
	out := make([]sim.Node, len(nodes))
	for i, n := range nodes {
		g := n.(*gradientNode)
		slab[i] = gradientNode{params: g.params, est: g.est.clone(), fast: g.fast}
		out[i] = &slab[i]
	}
	return out
}

type gradientNode struct {
	params GradientParams
	est    estSet
	fast   bool
}

func (n *gradientNode) Init(rt *sim.Runtime) {
	rt.SetTimerAtHW(rt.HW().Add(n.params.Period), tickTimer)
}

func (n *gradientNode) OnTimer(rt *sim.Runtime, _ int) {
	msg := sim.Message(ValueMsg{Val: rt.Logical()})
	for _, j := range rt.Neighbors() {
		rt.Send(j, msg)
	}
	n.adjust(rt)
	rt.SetTimerAtHW(rt.HW().Add(n.params.Period), tickTimer)
}

func (n *gradientNode) OnMessage(rt *sim.Runtime, from int, msg sim.Message) {
	m, ok := msg.(ValueMsg)
	if !ok {
		return
	}
	n.est.init(rt)
	n.est.store(from, nbrEst{val: m.Val, atHW: rt.HW(), set: true})
	n.adjust(rt)
}

// adjust recomputes the rate mode from the freshest neighbor estimates.
// Slots follow the runtime's neighbor order, so the sweep sees estimates in
// the same order the map version's per-neighbor lookups did.
func (n *gradientNode) adjust(rt *sim.Runtime) {
	l := rt.Logical()
	hw := rt.HW()
	var maxAhead rat.Rat
	for i := range n.est.slots {
		e := &n.est.slots[i]
		if !e.set {
			continue
		}
		if ahead := e.value(hw).Sub(l); ahead.Greater(maxAhead) {
			maxAhead = ahead
		}
	}
	wantFast := maxAhead.Greater(n.params.Threshold)
	if wantFast == n.fast {
		return
	}
	n.fast = wantFast
	mult := rat.FromInt(1)
	if wantFast {
		mult = n.params.FastMult
	}
	rt.SetLogical(l, mult)
}

// ---- RBS ----

type rbsProto struct {
	period rat.Rat
	beacon int
}

// RBS returns a reference-broadcast protocol: the beacon node broadcasts
// pulse k at hardware time k·period to its gossip neighbors; every receiver
// aligns its logical clock to the pulse frame (pulse k ↦ logical time
// k·period), jumping only forward so validity is preserved.
func RBS(period rat.Rat, beacon int) sim.Protocol { return rbsProto{period: period, beacon: beacon} }

func (p rbsProto) Name() string { return "rbs" }

func (p rbsProto) NewNode(id int) sim.Node {
	return &rbsNode{period: p.period, beacon: p.beacon, id: id}
}

// CloneState implements sim.Protocol.
func (p rbsProto) CloneState(n sim.Node) sim.Node {
	c := *n.(*rbsNode)
	return &c
}

type rbsNode struct {
	period rat.Rat
	beacon int
	id     int
	pulse  int64
}

func (n *rbsNode) Init(rt *sim.Runtime) {
	if n.id == n.beacon {
		rt.SetTimerAtHW(rt.HW().Add(n.period), tickTimer)
	}
}

func (n *rbsNode) OnTimer(rt *sim.Runtime, _ int) {
	if n.id != n.beacon {
		return
	}
	n.pulse++
	for _, j := range rt.Neighbors() {
		rt.Send(j, PulseMsg{Index: n.pulse})
	}
	rt.SetTimerAtHW(rt.HW().Add(n.period), tickTimer)
}

func (n *rbsNode) OnMessage(rt *sim.Runtime, _ int, msg sim.Message) {
	m, ok := msg.(PulseMsg)
	if !ok {
		return
	}
	target := rat.FromInt(m.Index).Mul(n.period)
	if target.Greater(rt.Logical()) {
		rt.SetLogical(target, rat.FromInt(1))
	}
}

// All returns the benchmark portfolio with default parameters: Null,
// MaxGossip, MaxFlood, BoundedMax (jump cap 1), Gradient, LLW (blocking
// gradient), and RootSync (root 0), each exchanging every 1 hardware time
// unit. (RBS is excluded: it needs a designated beacon topology.)
func All() []sim.Protocol {
	one := rat.FromInt(1)
	return []sim.Protocol{
		Null(),
		MaxGossip(one),
		MaxFlood(one),
		BoundedMax(one, one),
		Gradient(DefaultGradientParams()),
		LLW(DefaultLLWParams()),
		RootSync(one, 0),
	}
}
