package algorithms

import (
	"gcs/internal/rat"
	"gcs/internal/sim"
)

// LLWParams configures the blocking gradient protocol.
type LLWParams struct {
	// Period between neighbor exchanges, in hardware time.
	Period rat.Rat
	// Kappa is the skew quantum: a node goes fast when its deficit to the
	// most-advanced neighbor exceeds its lead over the most-lagging one by
	// at least κ (maxAhead ≥ maxBehind + κ). Relative comparison is what
	// prevents both the unbounded chain-drag of a pure pull rule and the
	// deadlock of an absolute blocking rule.
	Kappa rat.Rat
	// FastMult is the catch-up multiplier (> 1).
	FastMult rat.Rat
}

// DefaultLLWParams mirrors DefaultGradientParams' aggressiveness.
func DefaultLLWParams() LLWParams {
	return LLWParams{
		Period:   rat.FromInt(1),
		Kappa:    rat.FromInt(1),
		FastMult: rat.FromInt(2),
	}
}

// LLW returns the blocking gradient protocol, a simplified form of the rule
// with which Lenzen, Locher and Wattenhofer later settled the paper's open
// problem (f(d) = Θ(d·log_{1/ρ}(D/d)) gradient skew). The paper itself
// conjectures such an algorithm exists (§9: "We are currently analyzing one
// such candidate algorithm").
//
// Difference from Gradient: Gradient's rule is purely pull-based — a node
// runs fast whenever its best neighbor estimate is far enough ahead,
// regardless of how far its other neighbors lag. LLW compares lead against
// lag (fast iff maxAhead ≥ maxBehind + κ), which propagates back-pressure
// along chains in quantized steps and is the key idea behind the optimal
// gradient bound.
func LLW(params LLWParams) sim.Protocol { return llwProto{params: params} }

type llwProto struct {
	params LLWParams
}

func (p llwProto) Name() string { return "llw" }

func (p llwProto) NewNode(int) sim.Node {
	return &llwNode{params: p.params}
}

// CloneState implements sim.Protocol: the neighbor-estimate table is the
// node's mutable state; it is shared copy-on-write (see estSet.clone), so
// cloning is a single struct copy regardless of degree.
func (p llwProto) CloneState(n sim.Node) sim.Node {
	l := n.(*llwNode)
	return &llwNode{params: l.params, est: l.est.clone(), fast: l.fast}
}

// CloneStates implements sim.BulkCloneProtocol: all clones come out of one
// slab, so a whole-network fork costs two allocations however wide the net.
func (p llwProto) CloneStates(nodes []sim.Node) []sim.Node {
	slab := make([]llwNode, len(nodes))
	out := make([]sim.Node, len(nodes))
	for i, n := range nodes {
		l := n.(*llwNode)
		slab[i] = llwNode{params: l.params, est: l.est.clone(), fast: l.fast}
		out[i] = &slab[i]
	}
	return out
}

type llwNode struct {
	params LLWParams
	est    estSet
	fast   bool
}

func (n *llwNode) Init(rt *sim.Runtime) {
	rt.SetTimerAtHW(rt.HW().Add(n.params.Period), tickTimer)
}

func (n *llwNode) OnTimer(rt *sim.Runtime, _ int) {
	l := rt.Logical()
	for _, j := range rt.Neighbors() {
		rt.Send(j, ValueMsg{Val: l})
	}
	n.adjust(rt)
	rt.SetTimerAtHW(rt.HW().Add(n.params.Period), tickTimer)
}

func (n *llwNode) OnMessage(rt *sim.Runtime, from int, msg sim.Message) {
	m, ok := msg.(ValueMsg)
	if !ok {
		return
	}
	n.est.init(rt)
	n.est.store(from, nbrEst{val: m.Val, atHW: rt.HW(), set: true})
	n.adjust(rt)
}

func (n *llwNode) adjust(rt *sim.Runtime) {
	l := rt.Logical()
	hw := rt.HW()
	var maxAhead, maxBehind rat.Rat
	seen := 0
	for i := range n.est.slots {
		e := &n.est.slots[i]
		if !e.set {
			continue
		}
		seen++
		diff := e.value(hw).Sub(l)
		if diff.Greater(maxAhead) {
			maxAhead = diff
		}
		if diff.Neg().Greater(maxBehind) {
			maxBehind = diff.Neg()
		}
	}
	// Fast mode: the deficit to the front exceeds the lead over the back by
	// at least a quantum.
	wantFast := seen > 0 && maxAhead.GreaterEq(maxBehind.Add(n.params.Kappa))
	if wantFast == n.fast {
		return
	}
	n.fast = wantFast
	mult := rat.FromInt(1)
	if wantFast {
		mult = n.params.FastMult
	}
	rt.SetLogical(l, mult)
}
