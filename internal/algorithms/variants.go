package algorithms

import (
	"gcs/internal/rat"
	"gcs/internal/sim"
)

// ---- BoundedMax ----

// BoundedMax is MaxGossip with the jump size capped: on receipt of a larger
// value, the clock moves forward by at most `cap`.
//
// It is the natural ablation point for the Bounded Increase lemma: its
// maximum increase per unit time is roughly cap × (receipts per unit), so
// sweeping cap interpolates between the gradient algorithm's bounded
// behaviour (small cap) and MaxGossip's unbounded jumps (cap = ∞) — and the
// Lemma 7.1 probe shows the implied f(1) growing with cap.
func BoundedMax(period, jumpCap rat.Rat) sim.Protocol {
	return boundedMaxProto{period: period, cap: jumpCap}
}

type boundedMaxProto struct {
	period rat.Rat
	cap    rat.Rat
}

func (p boundedMaxProto) Name() string { return "bounded-max" }

func (p boundedMaxProto) NewNode(int) sim.Node {
	return &boundedMaxNode{period: p.period, cap: p.cap}
}

// CloneState implements sim.Protocol. A boundedMaxNode carries only
// immutable configuration, so forks share the automaton itself.
func (p boundedMaxProto) CloneState(n sim.Node) sim.Node { return n }

type boundedMaxNode struct {
	period rat.Rat
	cap    rat.Rat
}

func (n *boundedMaxNode) Init(rt *sim.Runtime) {
	rt.SetTimerAtHW(rt.HW().Add(n.period), tickTimer)
}

func (n *boundedMaxNode) OnTimer(rt *sim.Runtime, _ int) {
	l := rt.Logical()
	for _, j := range rt.Neighbors() {
		rt.Send(j, ValueMsg{Val: l})
	}
	rt.SetTimerAtHW(rt.HW().Add(n.period), tickTimer)
}

func (n *boundedMaxNode) OnMessage(rt *sim.Runtime, _ int, msg sim.Message) {
	m, ok := msg.(ValueMsg)
	if !ok {
		return
	}
	l := rt.Logical()
	if !m.Val.Greater(l) {
		return
	}
	target := rat.Min(m.Val, l.Add(n.cap))
	rt.SetLogical(target, rat.FromInt(1))
}

// ---- RootSync ----

// RootSync is a hierarchical scheme: every node tracks the clock of a
// designated root. The root gossips its logical clock; every other node
// adopts the largest root-originated value it has heard (never below its own
// hardware clock, preserving validity) and forwards its clock each period.
// This approximates external-synchronization algorithms (Ostrovsky &
// Patt-Shamir's setting, discussed in §2): good global alignment to the
// source, but — like all max-style schemes — no gradient guarantee, since a
// stale branch jumps when fresher root values finally arrive.
func RootSync(period rat.Rat, root int) sim.Protocol {
	return rootSyncProto{period: period, root: root}
}

type rootSyncProto struct {
	period rat.Rat
	root   int
}

func (p rootSyncProto) Name() string { return "root-sync" }

func (p rootSyncProto) NewNode(id int) sim.Node {
	return &rootSyncNode{period: p.period, root: p.root, id: id}
}

// CloneState implements sim.Protocol. A rootSyncNode carries only immutable
// configuration, so forks share the automaton itself.
func (p rootSyncProto) CloneState(n sim.Node) sim.Node { return n }

type rootSyncNode struct {
	period rat.Rat
	root   int
	id     int
}

func (n *rootSyncNode) Init(rt *sim.Runtime) {
	rt.SetTimerAtHW(rt.HW().Add(n.period), tickTimer)
}

func (n *rootSyncNode) OnTimer(rt *sim.Runtime, _ int) {
	l := rt.Logical()
	for _, j := range rt.Neighbors() {
		rt.Send(j, ValueMsg{Val: l})
	}
	rt.SetTimerAtHW(rt.HW().Add(n.period), tickTimer)
}

func (n *rootSyncNode) OnMessage(rt *sim.Runtime, _ int, msg sim.Message) {
	m, ok := msg.(ValueMsg)
	if !ok {
		return
	}
	// The root ignores incoming values: it is the time source. Everyone
	// else adopts larger values, which ultimately originate at the root or
	// at a faster hardware clock along the way.
	if n.id == n.root {
		return
	}
	if m.Val.Greater(rt.Logical()) {
		rt.SetLogical(m.Val, rat.FromInt(1))
	}
}
