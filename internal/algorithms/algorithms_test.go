package algorithms

import (
	"testing"

	"gcs/internal/clock"
	"gcs/internal/core"
	"gcs/internal/network"
	"gcs/internal/rat"
	"gcs/internal/sim"
	"gcs/internal/trace"
)

func ri(n int64) rat.Rat    { return rat.FromInt(n) }
func rf(n, d int64) rat.Rat { return rat.MustFrac(n, d) }

// lineRun runs a protocol on a line of n nodes with the given per-node rates.
func lineRun(t *testing.T, proto sim.Protocol, n int, rates []rat.Rat, adv sim.Adversary, dur rat.Rat) *trace.Execution {
	t.Helper()
	net, err := network.Line(n)
	if err != nil {
		t.Fatal(err)
	}
	scheds := make([]*clock.Schedule, n)
	for i := range scheds {
		r := ri(1)
		if rates != nil {
			r = rates[i]
		}
		scheds[i] = clock.Constant(r)
	}
	exec, err := sim.Run(sim.Config{
		Net:       net,
		Schedules: scheds,
		Adversary: adv,
		Protocol:  proto,
		Duration:  dur,
		Rho:       rf(1, 2),
	})
	if err != nil {
		t.Fatal(err)
	}
	return exec
}

func TestNullAccumulatesDrift(t *testing.T) {
	// Rates 3/2 and 1: with L = H the skew after time T is T/2.
	rates := []rat.Rat{rf(3, 2), ri(1)}
	e := lineRun(t, Null(), 2, rates, sim.Midpoint(), ri(20))
	if err := core.CheckValidity(e); err != nil {
		t.Fatal(err)
	}
	if got := e.FinalSkew(0, 1); !got.Equal(ri(10)) {
		t.Errorf("final skew = %s, want 10", got)
	}
	// No messages at all.
	if len(e.Ledger) != 0 {
		t.Errorf("null protocol sent %d messages", len(e.Ledger))
	}
}

func TestMaxGossipConverges(t *testing.T) {
	// Node 0 fast, others at rate 1. Max algorithm keeps global skew bounded
	// by roughly drift·period + diameter-delay, far below the Null drift.
	n := 5
	rates := []rat.Rat{rf(3, 2), ri(1), ri(1), ri(1), ri(1)}
	e := lineRun(t, MaxGossip(ri(1)), n, rates, sim.Midpoint(), ri(40))
	if err := core.CheckValidity(e); err != nil {
		t.Fatal(err)
	}
	g := core.GlobalSkew(e)
	// Null would reach 20; max gossip must stay well below.
	if g.Skew.GreaterEq(ri(10)) {
		t.Errorf("global skew %s too large for max-gossip", g.Skew)
	}
	// Logical clocks are monotone (only upward jumps).
	for i := 0; i < n; i++ {
		if e.Logical[i].MinJump(rat.Rat{}, e.Duration).Sign() < 0 {
			t.Errorf("node %d jumped down", i)
		}
	}
}

func TestMaxFloodTighterThanGossip(t *testing.T) {
	n := 6
	rates := []rat.Rat{rf(3, 2), ri(1), ri(1), ri(1), ri(1), ri(1)}
	gossip := lineRun(t, MaxGossip(ri(1)), n, rates, sim.Midpoint(), ri(30))
	flood := lineRun(t, MaxFlood(ri(1)), n, rates, sim.Midpoint(), ri(30))
	gs := core.GlobalSkew(gossip).Skew
	fs := core.GlobalSkew(flood).Skew
	if fs.Greater(gs) {
		t.Errorf("flood skew %s > gossip skew %s", fs, gs)
	}
	// Flooding must produce at least as many messages.
	if len(flood.Ledger) < len(gossip.Ledger) {
		t.Errorf("flood sent %d msgs < gossip %d", len(flood.Ledger), len(gossip.Ledger))
	}
}

func TestGradientValidityAndBoundedIncrease(t *testing.T) {
	n := 6
	rates := []rat.Rat{rf(3, 2), ri(1), ri(1), ri(1), ri(1), rf(1, 2)}
	params := DefaultGradientParams()
	e := lineRun(t, Gradient(params), n, rates, sim.Midpoint(), ri(40))
	if err := core.CheckValidity(e); err != nil {
		t.Fatal(err)
	}
	// Structural bounded increase: max increase per unit real time is at
	// most FastMult·(1+ρ) = 3/2 · 3/2 = 9/4.
	bound := params.FastMult.Mul(rf(3, 2))
	for i := 0; i < n; i++ {
		inc := core.MaxIncreasePerUnit(e, i, rat.Rat{}, e.Duration)
		if inc.Val.Greater(bound) {
			t.Errorf("node %d increase %s exceeds structural bound %s", i, inc.Val, bound)
		}
	}
	// And it still tracks the fast node: global skew far below Null's 20.
	g := core.GlobalSkew(e)
	if g.Skew.GreaterEq(ri(15)) {
		t.Errorf("gradient global skew %s too large", g.Skew)
	}
}

func TestGradientKeepsLocalSkewSmall(t *testing.T) {
	// All rate 1 except a fast end node; adversarial half-delay messages.
	n := 8
	rates := make([]rat.Rat, n)
	for i := range rates {
		rates[i] = ri(1)
	}
	rates[0] = rf(5, 4)
	e := lineRun(t, Gradient(DefaultGradientParams()), n, rates, sim.Midpoint(), ri(60))
	local := core.LocalSkew(e)
	global := core.GlobalSkew(e)
	if local.Skew.Greater(global.Skew) {
		t.Errorf("local skew %s exceeds global %s", local.Skew, global.Skew)
	}
	// The gradient property in action: local skew should be a small constant
	// here (threshold + catch-up lag), well under the diameter-scale bound.
	if local.Skew.Greater(ri(6)) {
		t.Errorf("local skew %s unexpectedly large", local.Skew)
	}
}

func TestRBSOnStar(t *testing.T) {
	n := 5
	net, err := network.Star(n, ri(1))
	if err != nil {
		t.Fatal(err)
	}
	scheds := make([]*clock.Schedule, n)
	for i := range scheds {
		scheds[i] = clock.Constant(ri(1))
	}
	scheds[2] = clock.Constant(rf(9, 8))
	exec, err := sim.Run(sim.Config{
		Net:       net,
		Schedules: scheds,
		Adversary: sim.HashAdversary{Seed: 5, Denom: 8},
		Protocol:  RBS(ri(2), 0),
		Duration:  ri(30),
		Rho:       rf(1, 2),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := core.CheckValidity(exec); err != nil {
		t.Fatal(err)
	}
	// Leaves track the pulse frame: pairwise leaf skew stays bounded by
	// pulse period + delay spread, not by drift × duration.
	worst := core.GlobalSkew(exec)
	if worst.Skew.Greater(ri(6)) {
		t.Errorf("RBS worst skew %s too large", worst.Skew)
	}
	// Only the beacon sends pulses.
	for key := range exec.Ledger {
		if key.From != 0 {
			t.Errorf("non-beacon node %d sent a message", key.From)
		}
	}
}

func TestAllPortfolio(t *testing.T) {
	ps := All()
	if len(ps) != 7 {
		t.Fatalf("All() returned %d protocols", len(ps))
	}
	names := map[string]bool{}
	for _, p := range ps {
		names[p.Name()] = true
		if p.NewNode(0) == nil {
			t.Errorf("%s returns nil node", p.Name())
		}
	}
	for _, want := range []string{"null", "max-gossip", "max-flood", "bounded-max", "gradient", "llw", "root-sync"} {
		if !names[want] {
			t.Errorf("missing protocol %s", want)
		}
	}
}

func TestMsgStrings(t *testing.T) {
	if got := (ValueMsg{Val: rf(7, 2)}).MsgString(); got != "v:7/2" {
		t.Errorf("ValueMsg string = %q", got)
	}
	if got := (PulseMsg{Index: 3}).MsgString(); got != "pulse:3" {
		t.Errorf("PulseMsg string = %q", got)
	}
}
