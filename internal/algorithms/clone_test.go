package algorithms

import (
	"testing"

	"gcs/internal/rat"
	"gcs/internal/sim"
)

// TestCloneStateIndependence: every protocol's CloneState must deep-copy
// mutable node state — mutating the original after cloning must never leak
// into the clone. The map-carrying protocols (gradient, llw) are the ones
// that would break silently under a shallow copy.
func TestCloneStateIndependence(t *testing.T) {
	one := rat.FromInt(1)

	g := Gradient(DefaultGradientParams())
	gn := g.NewNode(0).(*gradientNode)
	gn.est[1] = estimate{val: one, atHW: one}
	gn.fast = true
	gc := g.CloneState(gn).(*gradientNode)
	if !gc.fast || len(gc.est) != 1 || !gc.est[1].val.Equal(one) {
		t.Fatalf("gradient clone lost state: %+v", gc)
	}
	gn.est[2] = estimate{val: one, atHW: one}
	gn.est[1] = estimate{val: rat.FromInt(5), atHW: one}
	if len(gc.est) != 1 || !gc.est[1].val.Equal(one) {
		t.Fatalf("gradient clone shares the estimate map: %+v", gc.est)
	}

	l := LLW(DefaultLLWParams())
	ln := l.NewNode(0).(*llwNode)
	ln.est[1] = estimate{val: one, atHW: one}
	lc := l.CloneState(ln).(*llwNode)
	ln.est[2] = estimate{val: one, atHW: one}
	if len(lc.est) != 1 {
		t.Fatalf("llw clone shares the estimate map: %+v", lc.est)
	}

	r := RBS(one, 0)
	rn := r.NewNode(0).(*rbsNode)
	rn.pulse = 7
	rc := r.CloneState(rn).(*rbsNode)
	rn.pulse = 9
	if rc.pulse != 7 {
		t.Fatalf("rbs clone shares the pulse counter: %d", rc.pulse)
	}

	// Whole-portfolio sanity: CloneState returns a node of the same concrete
	// type and never the nil interface.
	protos := append(All(), RBS(one, 0))
	for _, p := range protos {
		n := p.NewNode(0)
		c := p.CloneState(n)
		if c == nil {
			t.Fatalf("%s: CloneState returned nil", p.Name())
		}
		if got, want := nodeType(c), nodeType(n); got != want {
			t.Fatalf("%s: clone type %s, want %s", p.Name(), got, want)
		}
	}
}

func nodeType(n sim.Node) string {
	switch n.(type) {
	case nullNode:
		return "null"
	case *maxNode:
		return "max"
	case *boundedMaxNode:
		return "bounded-max"
	case *gradientNode:
		return "gradient"
	case *llwNode:
		return "llw"
	case *rootSyncNode:
		return "root-sync"
	case *rbsNode:
		return "rbs"
	default:
		return "unknown"
	}
}
