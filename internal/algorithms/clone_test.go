package algorithms

import (
	"testing"

	"gcs/internal/rat"
	"gcs/internal/sim"
)

// TestCloneStateIndependence: every protocol's CloneState must isolate
// mutable node state — mutating either side after cloning must never leak
// into the other. The estimate-carrying protocols (gradient, llw) share
// their slot pages copy-on-write, so the independence under test here is
// exactly the copy-on-first-write discipline in estSet.
func TestCloneStateIndependence(t *testing.T) {
	one := rat.FromInt(1)
	five := rat.FromInt(5)

	g := Gradient(DefaultGradientParams())
	gn := g.NewNode(0).(*gradientNode)
	gn.est = estSet{nbrs: []int{1, 2}, slots: make([]nbrEst, 2), owned: true}
	gn.est.store(1, nbrEst{val: one, atHW: one, set: true})
	gn.fast = true
	gc := g.CloneState(gn).(*gradientNode)
	if !gc.fast || !gc.est.slots[0].set || !gc.est.slots[0].val.Equal(one) {
		t.Fatalf("gradient clone lost state: %+v", gc)
	}
	if gn.est.owned || gc.est.owned {
		t.Fatal("gradient clone left a side owning the shared page")
	}
	// Writes on the original after cloning must not leak into the clone.
	gn.est.store(2, nbrEst{val: one, atHW: one, set: true})
	gn.est.store(1, nbrEst{val: five, atHW: one, set: true})
	if gc.est.slots[1].set || !gc.est.slots[0].val.Equal(one) {
		t.Fatalf("gradient clone shares the estimate page: %+v", gc.est.slots)
	}
	// ... and writes on the clone must not leak back into the original.
	gc.est.store(1, nbrEst{val: rat.FromInt(9), atHW: one, set: true})
	if !gn.est.slots[0].val.Equal(five) {
		t.Fatalf("gradient original sees the clone's write: %+v", gn.est.slots)
	}

	l := LLW(DefaultLLWParams())
	ln := l.NewNode(0).(*llwNode)
	ln.est = estSet{nbrs: []int{1, 2}, slots: make([]nbrEst, 2), owned: true}
	ln.est.store(1, nbrEst{val: one, atHW: one, set: true})
	lc := l.CloneState(ln).(*llwNode)
	ln.est.store(2, nbrEst{val: one, atHW: one, set: true})
	if lc.est.slots[1].set || !lc.est.slots[0].val.Equal(one) {
		t.Fatalf("llw clone shares the estimate page: %+v", lc.est.slots)
	}
	lc.est.store(1, nbrEst{val: five, atHW: one, set: true})
	if !ln.est.slots[0].val.Equal(one) {
		t.Fatalf("llw original sees the clone's write: %+v", ln.est.slots)
	}

	r := RBS(one, 0)
	rn := r.NewNode(0).(*rbsNode)
	rn.pulse = 7
	rc := r.CloneState(rn).(*rbsNode)
	rn.pulse = 9
	if rc.pulse != 7 {
		t.Fatalf("rbs clone shares the pulse counter: %d", rc.pulse)
	}

	// Whole-portfolio sanity: CloneState returns a node of the same concrete
	// type and never the nil interface.
	protos := append(All(), RBS(one, 0))
	for _, p := range protos {
		n := p.NewNode(0)
		c := p.CloneState(n)
		if c == nil {
			t.Fatalf("%s: CloneState returned nil", p.Name())
		}
		if got, want := nodeType(c), nodeType(n); got != want {
			t.Fatalf("%s: clone type %s, want %s", p.Name(), got, want)
		}
	}
}

func nodeType(n sim.Node) string {
	switch n.(type) {
	case nullNode:
		return "null"
	case *maxNode:
		return "max"
	case *boundedMaxNode:
		return "bounded-max"
	case *gradientNode:
		return "gradient"
	case *llwNode:
		return "llw"
	case *rootSyncNode:
		return "root-sync"
	case *rbsNode:
		return "rbs"
	default:
		return "unknown"
	}
}
