// Flat copy-on-write neighbor-estimate state for the gradient-family
// protocols. The estimates used to live in a per-node map[int]estimate,
// which made Engine.Fork's CloneState pass O(nodes·degree) map inserts per
// fork; a slot-indexed slice shared copy-on-write between a node and its
// clones makes cloning a single struct copy, deferring the page copy to the
// first post-fork write of whichever branch writes first.

package algorithms

import (
	"gcs/internal/rat"
	"gcs/internal/sim"
)

// nbrEst is one neighbor slot: the last value heard, anchored at the local
// hardware reading when it arrived. set distinguishes "never heard" — an
// unheard neighbor is skipped exactly like a missing map key was.
type nbrEst struct {
	val  rat.Rat
	atHW rat.Rat
	set  bool
}

// value extrapolates the estimate to the current hardware reading, assuming
// the neighbor's logical clock advances at least at the local hardware rate.
// This is a conservative heuristic, not a proof device.
func (e nbrEst) value(hwNow rat.Rat) rat.Rat {
	return e.val.Add(hwNow.Sub(e.atHW))
}

// estSet holds one node's neighbor estimates, slot-indexed in the engine's
// neighbor order (the order adjust sweeps them in — identical to the map
// version's per-neighbor lookup sweep, so behavior is unchanged). The slots
// page is shared copy-on-write across CloneState: clone() drops ownership on
// both sides, and the first write on either side copies the page.
type estSet struct {
	nbrs  []int    // the runtime's neighbor slice; shared, never written
	slots []nbrEst // one per neighbor; shared until owned
	owned bool     // this node may write slots in place
}

// init binds the slot table to the runtime's neighbor order on first use.
func (s *estSet) init(rt *sim.Runtime) {
	if s.slots != nil {
		return
	}
	s.nbrs = rt.Neighbors()
	s.slots = make([]nbrEst, len(s.nbrs))
	s.owned = true
}

// store records the estimate heard from a neighbor, copying the shared page
// first when a clone still references it. A sender outside the neighbor
// list is ignored — the sweep in adjust never consulted such entries in the
// map version either.
func (s *estSet) store(from int, e nbrEst) {
	for i, j := range s.nbrs {
		if j != from {
			continue
		}
		if !s.owned {
			s.slots = append([]nbrEst(nil), s.slots...)
			s.owned = true
		}
		s.slots[i] = e
		return
	}
}

// clone shares the slot page with a new estSet: both sides lose ownership,
// so whichever writes first copies. O(1) — this is what makes Engine.Fork
// O(queue) instead of O(nodes·degree).
func (s *estSet) clone() estSet {
	s.owned = false
	return estSet{nbrs: s.nbrs, slots: s.slots}
}
