package algorithms

import (
	"testing"

	"gcs/internal/core"
	"gcs/internal/rat"
	"gcs/internal/sim"
)

func TestBoundedMaxCapsJumps(t *testing.T) {
	n := 6
	rates := []rat.Rat{rf(3, 2), ri(1), ri(1), ri(1), ri(1), ri(1)}
	capVal := rf(1, 2)
	e := lineRun(t, BoundedMax(ri(1), capVal), n, rates, sim.Midpoint(), ri(40))
	if err := core.CheckValidity(e); err != nil {
		t.Fatal(err)
	}
	// No logical jump may exceed the cap.
	for i := 0; i < n; i++ {
		for _, b := range e.Logical[i].Breakpoints() {
			if j := e.Logical[i].JumpAt(b); j.Greater(capVal) {
				t.Errorf("node %d jumps by %s > cap %s at %s", i, j, capVal, b)
			}
		}
	}
	// It still tracks the fast node far better than Null (which would reach
	// skew 20 at this drift/duration).
	if g := core.GlobalSkew(e); g.Skew.GreaterEq(ri(15)) {
		t.Errorf("bounded-max global skew %s too large", g.Skew)
	}
}

func TestBoundedMaxInterpolatesToMaxGossip(t *testing.T) {
	n := 6
	rates := []rat.Rat{rf(3, 2), ri(1), ri(1), ri(1), ri(1), ri(1)}
	huge := ri(1000)
	bm := lineRun(t, BoundedMax(ri(1), huge), n, rates, sim.Midpoint(), ri(30))
	mg := lineRun(t, MaxGossip(ri(1)), n, rates, sim.Midpoint(), ri(30))
	// With an unreachable cap, BoundedMax behaves exactly like MaxGossip.
	for i := 0; i < n; i++ {
		if !bm.LogicalAt(i, ri(30)).Equal(mg.LogicalAt(i, ri(30))) {
			t.Errorf("node %d: bounded-max %s != max-gossip %s",
				i, bm.LogicalAt(i, ri(30)), mg.LogicalAt(i, ri(30)))
		}
	}
}

func TestBoundedMaxIncreaseScalesWithCap(t *testing.T) {
	// The Lemma 7.1 ablation: larger caps permit faster unit-window
	// increases (up to what the workload actually demands).
	n := 6
	rates := []rat.Rat{rf(3, 2), ri(1), ri(1), ri(1), ri(1), ri(1)}
	measure := func(capVal rat.Rat) rat.Rat {
		e := lineRun(t, BoundedMax(ri(1), capVal), n, rates, sim.Midpoint(), ri(40))
		worst := rat.Rat{}
		for i := 1; i < n; i++ {
			if v := core.MaxIncreasePerUnit(e, i, ri(2), ri(40)).Val; v.Greater(worst) {
				worst = v
			}
		}
		return worst
	}
	small := measure(rf(1, 8))
	large := measure(ri(4))
	if small.Greater(large) {
		t.Errorf("increase with cap 1/8 (%s) exceeds cap 4 (%s)", small, large)
	}
	// Structural bound: rate 1 between jumps, at most ~period⁻¹+1 receipts
	// per unit each jumping ≤ cap, plus the underlying rate.
	if small.Greater(ri(3)) {
		t.Errorf("cap-1/8 increase %s implausibly large", small)
	}
}

func TestRootSyncFollowsRoot(t *testing.T) {
	n := 6
	// Root (node 0) has the fastest clock: everyone converges to it.
	rates := []rat.Rat{rf(5, 4), ri(1), ri(1), ri(1), ri(1), ri(1)}
	e := lineRun(t, RootSync(ri(1), 0), n, rates, sim.Midpoint(), ri(40))
	if err := core.CheckValidity(e); err != nil {
		t.Fatal(err)
	}
	// Every node ends within a staleness band of the root: the root value
	// needs ~2 hops·(period+delay) to reach node 5.
	for i := 1; i < n; i++ {
		gap := e.LogicalAt(0, ri(40)).Sub(e.LogicalAt(i, ri(40)))
		if gap.Sign() < 0 {
			t.Errorf("node %d ahead of the root", i)
		}
		if gap.Greater(ri(8)) {
			t.Errorf("node %d lags the root by %s", i, gap)
		}
	}
	// The root never adopts others' values: its logical clock is exactly
	// its hardware clock.
	if !e.LogicalAt(0, ri(40)).Equal(e.HWAt(0, ri(40))) {
		t.Error("root's logical clock deviated from its hardware clock")
	}
}

func TestRootSyncIgnoredWhenRootSlow(t *testing.T) {
	// If a non-root node is fastest, its values still propagate (max rule),
	// so global skew stays bounded — but nodes can run ahead of the root.
	n := 5
	rates := []rat.Rat{ri(1), ri(1), rf(5, 4), ri(1), ri(1)}
	e := lineRun(t, RootSync(ri(1), 0), n, rates, sim.Midpoint(), ri(30))
	if err := core.CheckValidity(e); err != nil {
		t.Fatal(err)
	}
	if e.LogicalAt(2, ri(30)).LessEq(e.LogicalAt(0, ri(30))) {
		t.Error("fast non-root node should be ahead of the root")
	}
}

func TestAllPortfolioIncludesVariants(t *testing.T) {
	names := map[string]bool{}
	for _, p := range All() {
		names[p.Name()] = true
	}
	for _, want := range []string{"bounded-max", "root-sync"} {
		if !names[want] {
			t.Errorf("All() missing %s", want)
		}
	}
	if len(All()) != 7 {
		t.Errorf("All() has %d protocols, want 7", len(All()))
	}
}
