package algorithms

import (
	"testing"

	"gcs/internal/core"
	"gcs/internal/rat"
	"gcs/internal/sim"
)

func TestLLWValidityAndBoundedIncrease(t *testing.T) {
	n := 8
	rates := make([]rat.Rat, n)
	for i := range rates {
		rates[i] = ri(1)
	}
	rates[0] = rf(5, 4)
	params := DefaultLLWParams()
	e := lineRun(t, LLW(params), n, rates, sim.Midpoint(), ri(60))
	if err := core.CheckValidity(e); err != nil {
		t.Fatal(err)
	}
	bound := params.FastMult.Mul(rf(3, 2)) // FastMult·(1+ρ)
	for i := 0; i < n; i++ {
		if inc := core.MaxIncreasePerUnit(e, i, rat.Rat{}, e.Duration); inc.Val.Greater(bound) {
			t.Errorf("node %d increase %s exceeds structural bound %s", i, inc.Val, bound)
		}
	}
}

func TestLLWTracksDrift(t *testing.T) {
	// The blocking condition must not prevent global convergence: with a
	// fast head node the chain still follows at bounded distance.
	n := 8
	rates := make([]rat.Rat, n)
	for i := range rates {
		rates[i] = ri(1)
	}
	rates[0] = rf(9, 8) // mild drift: FastMult 2 > 9/8 suffices to follow
	e := lineRun(t, LLW(DefaultLLWParams()), n, rates, sim.Midpoint(), ri(240))
	// Null would put the full 30 = (9/8−1)·240 between nodes 0 and 1. LLW
	// distributes the skew down the staircase: the head's neighbor follows
	// to within a few κ-quanta...
	local := core.LocalSkew(e)
	if local.Skew.GreaterEq(ri(12)) {
		t.Errorf("llw local skew %s too large", local.Skew)
	}
	// ...and node 1 absorbs most of the head's excess.
	if e.LogicalAt(1, ri(240)).Less(ri(255)) {
		t.Errorf("node 1 only reached %s; did not follow the head", e.LogicalAt(1, ri(240)))
	}
}

func TestLLWStaircaseUnderSustainedDrift(t *testing.T) {
	// Under sustained one-end drift the relative-blocking rule settles into
	// a staircase of ≈κ gaps: adjacent skew stays within a few quanta and,
	// crucially, does not grow with time (unlike Null's unbounded drift).
	n := 10
	rates := make([]rat.Rat, n)
	for i := range rates {
		rates[i] = ri(1)
	}
	rates[0] = rf(5, 4)

	short := lineRun(t, LLW(DefaultLLWParams()), n, rates, sim.Midpoint(), ri(60))
	long := lineRun(t, LLW(DefaultLLWParams()), n, rates, sim.Midpoint(), ri(120))
	shortLocal := core.LocalSkew(short).Skew
	longLocal := core.LocalSkew(long).Skew
	// Stable: doubling the horizon must not double the local skew.
	if longLocal.Greater(shortLocal.Mul(rf(3, 2))) {
		t.Errorf("llw local skew grows with time: %s → %s", shortLocal, longLocal)
	}
}

func TestLLWName(t *testing.T) {
	if LLW(DefaultLLWParams()).Name() != "llw" {
		t.Error("wrong name")
	}
}
