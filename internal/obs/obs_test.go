package obs

import (
	"encoding/json"
	"io"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "a counter")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("g", "a gauge")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
	// Idempotent registration returns the same instrument.
	if r.Counter("c_total", "a counter") != c {
		t.Fatal("re-registration returned a different counter")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h_seconds", "latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if got := h.Sum(); math.Abs(got-56.05) > 1e-9 {
		t.Fatalf("sum = %g, want 56.05", got)
	}
	ms, ok := r.Snapshot().Get("h_seconds")
	if !ok {
		t.Fatal("histogram missing from snapshot")
	}
	wantCum := []uint64{1, 3, 4, 5} // le=0.1, 1, 10, +Inf
	if len(ms.Buckets) != len(wantCum) {
		t.Fatalf("bucket count = %d, want %d", len(ms.Buckets), len(wantCum))
	}
	for i, b := range ms.Buckets {
		if b.CumulativeCount != wantCum[i] {
			t.Fatalf("bucket %d cumulative = %d, want %d", i, b.CumulativeCount, wantCum[i])
		}
	}
	if !math.IsInf(ms.Buckets[3].UpperBound, 1) {
		t.Fatal("last bucket should be +Inf")
	}
}

func TestPrometheusRendering(t *testing.T) {
	r := NewRegistry()
	r.Counter("steps_total", "engine steps").Add(42)
	r.Gauge("inflight", "in-flight shards").Set(3)
	r.Histogram("lat_seconds", "latency", []float64{1}).Observe(0.5)
	text := r.Snapshot().Prometheus()
	for _, want := range []string{
		"# TYPE steps_total counter",
		"steps_total 42",
		"# TYPE inflight gauge",
		"inflight 3",
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{le="1"} 1`,
		`lat_seconds_bucket{le="+Inf"} 1`,
		"lat_seconds_sum 0.5",
		"lat_seconds_count 1",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("prometheus rendering missing %q:\n%s", want, text)
		}
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "help").Add(7)
	r.Histogram("h", "help", []float64{1, 2}).Observe(1.5)
	data, err := r.Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v\n%s", err, data)
	}
	h, ok := back.Get("h")
	if !ok || len(h.Buckets) != 3 {
		t.Fatalf("histogram lost in round trip: %+v", h)
	}
	if !math.IsInf(h.Buckets[2].UpperBound, 1) {
		t.Fatalf("+Inf bucket bound lost: %v", h.Buckets[2].UpperBound)
	}
}

// TestRegistryConcurrency hammers every instrument kind from many goroutines
// while snapshots are being taken — the -race gate for the whole package.
// Counter totals must be exact, and concurrently observed snapshots must be
// pointwise monotone in every counter.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	const perWorker = 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	snapDone := make(chan []Snapshot, 1)
	go func() {
		var snaps []Snapshot
		for {
			select {
			case <-stop:
				snapDone <- snaps
				return
			default:
				snaps = append(snaps, r.Snapshot())
			}
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Registration races with registration and with use: every worker
			// asks for the same names.
			c := r.Counter("c_total", "shared counter")
			g := r.Gauge("g", "shared gauge")
			h := r.Histogram("h_seconds", "shared histogram", LatencyBuckets())
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%7) * 0.01)
			}
		}()
	}
	wg.Wait()
	close(stop)
	snaps := <-snapDone

	snap := r.Snapshot()
	c, _ := snap.Get("c_total")
	if want := float64(workers * perWorker); c.Value != want {
		t.Fatalf("counter = %g, want %g", c.Value, want)
	}
	h, _ := snap.Get("h_seconds")
	if h.Count != uint64(workers*perWorker) {
		t.Fatalf("histogram count = %d, want %d", h.Count, workers*perWorker)
	}
	var last float64 = -1
	for _, s := range snaps {
		if m, ok := s.Get("c_total"); ok {
			if m.Value < last {
				t.Fatalf("counter went backwards across snapshots: %g after %g", m.Value, last)
			}
			last = m.Value
		}
	}
}

func TestHubPublishSubscribe(t *testing.T) {
	hub := NewHub(16)
	ch, cancel := hub.Subscribe()
	defer cancel()
	hub.Publish(Event{Scope: "test", Name: "one", Data: 1})
	hub.Publish(Event{Scope: "test", Name: "two", Data: 2})
	for _, want := range []string{"one", "two"} {
		select {
		case ev := <-ch:
			if ev.Name != want {
				t.Fatalf("event = %q, want %q", ev.Name, want)
			}
			if ev.Time.IsZero() {
				t.Fatal("event not timestamped")
			}
		case <-time.After(time.Second):
			t.Fatalf("timed out waiting for %q", want)
		}
	}
	hub.Close()
	if _, ok := <-ch; ok {
		t.Fatal("channel not closed by hub Close")
	}
	// Publishing after close is a silent no-op.
	hub.Publish(Event{Name: "late"})
}

func TestHubSlowSubscriberDrops(t *testing.T) {
	hub := NewHub(1)
	_, cancel := hub.Subscribe()
	defer cancel()
	hub.Publish(Event{Name: "a"})
	hub.Publish(Event{Name: "b"}) // buffer full: dropped, not blocked
	if hub.Dropped() != 1 {
		t.Fatalf("dropped = %d, want 1", hub.Dropped())
	}
}

func TestMetricsHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "help").Add(3)
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()

	res, err := srv.Client().Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	body, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "c_total 3") {
		t.Fatalf("prometheus body missing counter:\n%s", body)
	}

	res2, err := srv.Client().Get(srv.URL + "/?format=json")
	if err != nil {
		t.Fatal(err)
	}
	defer res2.Body.Close()
	var snap Snapshot
	if err := json.NewDecoder(res2.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if m, ok := snap.Get("c_total"); !ok || m.Value != 3 {
		t.Fatalf("json body wrong: %+v ok=%v", m, ok)
	}
}
