package obs

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
)

// Wire paths the observability layer serves, mounted next to the dist
// protocol's /v1 endpoints.
const (
	// PathMetrics serves the registry snapshot: Prometheus text by default,
	// JSON with ?format=json.
	PathMetrics = "/v1/metrics"
	// PathEvents streams run-trace events as JSON lines until the client
	// disconnects.
	PathEvents = "/v1/events"
)

// Handler serves r's snapshot on GET: the Prometheus text exposition format
// by default, the JSON snapshot with ?format=json.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(rw http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			rw.Header().Set("Content-Type", "application/json")
			rw.WriteHeader(http.StatusMethodNotAllowed)
			_ = json.NewEncoder(rw).Encode(map[string]string{"error": "metrics is GET"})
			return
		}
		snap := r.Snapshot()
		if req.URL.Query().Get("format") == "json" {
			data, err := snap.JSON()
			if err != nil {
				http.Error(rw, err.Error(), http.StatusInternalServerError)
				return
			}
			rw.Header().Set("Content-Type", "application/json")
			_, _ = rw.Write(append(data, '\n'))
			return
		}
		rw.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = rw.Write([]byte(snap.Prometheus()))
	})
}

// StreamHandler serves hub subscriptions as JSON lines: each published
// event is one line, flushed immediately, until the client disconnects or
// the hub closes. Events published before the client attached are not
// replayed — attach first, then trigger the run.
func StreamHandler(hub *Hub) http.Handler {
	return http.HandlerFunc(func(rw http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(rw, "events is GET", http.StatusMethodNotAllowed)
			return
		}
		ch, cancel := hub.Subscribe()
		defer cancel()
		rw.Header().Set("Content-Type", "application/x-ndjson")
		rw.Header().Set("Cache-Control", "no-store")
		rw.WriteHeader(http.StatusOK)
		flusher, _ := rw.(http.Flusher)
		if flusher != nil {
			flusher.Flush()
		}
		enc := json.NewEncoder(rw)
		for {
			select {
			case ev, ok := <-ch:
				if !ok {
					return
				}
				if err := enc.Encode(ev); err != nil {
					return
				}
				if flusher != nil {
					flusher.Flush()
				}
			case <-req.Context().Done():
				return
			}
		}
	})
}

// AttachPprof mounts the runtime profiling endpoints under /debug/pprof on
// mux — the opt-in half of the observability surface (CPU and heap profiles
// expose more than counters do; serve them only behind an explicit -debug
// flag).
func AttachPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}
