package obs

import (
	"sync"
	"time"
)

// Event is one structured run-trace event: a timestamped, named occurrence
// with an arbitrary JSON-marshalable payload. The Scope/Name pair is the
// event's identity ("campaign"/"generation", "run"/"result", ...); Data
// carries the layer-specific record (a dist.ProgressEvent, a final result
// summary, a metrics Snapshot).
type Event struct {
	Time  time.Time `json:"time"`
	Scope string    `json:"scope"`
	Name  string    `json:"name"`
	Data  any       `json:"data,omitempty"`
}

// Hub fans run-trace events out to any number of subscribers — the seam
// between a producer that must never block (the coordinator's generation
// loop) and consumers of unknown speed (HTTP streaming clients). Publish is
// non-blocking: a subscriber whose buffer is full loses that event, and the
// loss is counted rather than silently absorbed. Close terminates every
// subscription; a closed hub drops all further publishes.
type Hub struct {
	mu      sync.Mutex
	subs    map[int]chan Event
	next    int
	closed  bool
	buffer  int
	dropped Counter
}

// NewHub returns a hub whose subscribers buffer up to buffer events
// (minimum 1).
func NewHub(buffer int) *Hub {
	if buffer < 1 {
		buffer = 1
	}
	return &Hub{subs: make(map[int]chan Event), buffer: buffer}
}

// Publish delivers ev to every live subscriber without blocking. Timeless
// events are stamped with the current wall clock.
func (h *Hub) Publish(ev Event) {
	if ev.Time.IsZero() {
		ev.Time = time.Now()
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	for _, ch := range h.subs {
		select {
		case ch <- ev:
		default:
			h.dropped.Inc()
		}
	}
}

// Subscribe attaches a new subscriber and returns its event channel plus a
// cancel function. The channel is closed by cancel or by Hub.Close; events
// published before Subscribe are not replayed. Subscribing to a closed hub
// returns an already-closed channel.
func (h *Hub) Subscribe() (<-chan Event, func()) {
	h.mu.Lock()
	defer h.mu.Unlock()
	ch := make(chan Event, h.buffer)
	if h.closed {
		close(ch)
		return ch, func() {}
	}
	id := h.next
	h.next++
	h.subs[id] = ch
	cancel := func() {
		h.mu.Lock()
		defer h.mu.Unlock()
		if c, ok := h.subs[id]; ok {
			delete(h.subs, id)
			close(c)
		}
	}
	return ch, cancel
}

// Close terminates every subscription and rejects further publishes.
func (h *Hub) Close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	for id, ch := range h.subs {
		delete(h.subs, id)
		close(ch)
	}
}

// Dropped returns the number of events lost to slow subscribers.
func (h *Hub) Dropped() uint64 { return h.dropped.Value() }

// Subscribers returns the current subscriber count.
func (h *Hub) Subscribers() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.subs)
}
