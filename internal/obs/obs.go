// Package obs is the repository's dependency-free observability substrate:
// a metrics registry of atomic counters, gauges, and fixed-bucket
// histograms, with snapshot, Prometheus-text, and JSON renderers, plus a
// structured run-trace event API (see trace.go) and an HTTP exposure layer
// (see http.go).
//
// Design constraints, in priority order:
//
//   - Hot-path safety. Counter.Add/Inc, Gauge.Set, and Histogram.Observe are
//     single atomic operations on pre-registered instruments — no allocation,
//     no lock, no map lookup — so the engine's per-step instrumentation can
//     stay inside the zero-alloc budgets pinned in engine/alloc_test.go.
//   - Concurrent scraping. Snapshot reads every instrument atomically while
//     writers keep writing: a /v1/metrics scrape mid-campaign observes
//     monotone counters, never a torn state.
//   - No dependencies. The renderers speak the Prometheus text exposition
//     format directly; nothing outside the standard library is imported.
//
// Instruments are registered once (Registry.Counter et al. are idempotent
// per name) and then shared by reference. Registration is cheap but locked;
// do it at construction time, not per event.
package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing uint64.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous int64 value.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add shifts the value by d (negative d decrements).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket distribution: observations land in the first
// bucket whose upper bound is >= the value, Prometheus-style (cumulative on
// render, per-bucket internally), with a +Inf overflow bucket, a running
// count, and a running sum. The bucket layout is fixed at construction —
// Observe never allocates or locks.
type Histogram struct {
	bounds  []float64 // sorted upper bounds, exclusive of +Inf
	buckets []atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64 // float64 bits, updated by CAS
}

// newHistogram builds a histogram over the given upper bounds (sorted
// ascending; the +Inf bucket is implicit).
func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, buckets: make([]atomic.Uint64, len(bs)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds — the Prometheus convention
// for latency histograms.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// LatencyBuckets is the standard bucket layout for request/shard latencies
// in seconds: 1ms to ~2min, doubling.
func LatencyBuckets() []float64 {
	return ExpBuckets(0.001, 2, 18)
}

// ExpBuckets returns n exponentially growing upper bounds starting at start
// and multiplying by factor.
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Instrument kinds.
const (
	KindCounter   = "counter"
	KindGauge     = "gauge"
	KindHistogram = "histogram"
)

// instrument is one registered metric.
type instrument struct {
	name string
	help string
	kind string

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// Registry is a named set of instruments. Registration is idempotent per
// name: asking for an existing name returns the existing instrument (a kind
// mismatch panics — that is a programming error, not a runtime condition).
type Registry struct {
	mu     sync.Mutex
	order  []*instrument
	byName map[string]*instrument
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*instrument)}
}

// lookup returns the instrument registered under name, creating it with
// build when absent.
func (r *Registry) lookup(name, help, kind string, build func() *instrument) *instrument {
	r.mu.Lock()
	defer r.mu.Unlock()
	if in, ok := r.byName[name]; ok {
		if in.kind != kind {
			panic(fmt.Sprintf("obs: %s registered as %s, requested as %s", name, in.kind, kind))
		}
		return in
	}
	in := build()
	in.name, in.help, in.kind = name, help, kind
	r.byName[name] = in
	r.order = append(r.order, in)
	return in
}

// Counter returns the counter registered under name, creating it if needed.
func (r *Registry) Counter(name, help string) *Counter {
	return r.lookup(name, help, KindCounter, func() *instrument {
		return &instrument{counter: &Counter{}}
	}).counter
}

// Gauge returns the gauge registered under name, creating it if needed.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.lookup(name, help, KindGauge, func() *instrument {
		return &instrument{gauge: &Gauge{}}
	}).gauge
}

// Histogram returns the histogram registered under name, creating it with
// the given bucket upper bounds if needed (an existing histogram keeps its
// original layout).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	return r.lookup(name, help, KindHistogram, func() *instrument {
		return &instrument{hist: newHistogram(bounds)}
	}).hist
}

// Bucket is one cumulative histogram bucket in a snapshot.
type Bucket struct {
	// UpperBound is the bucket's inclusive upper bound; +Inf renders as the
	// JSON string "+Inf".
	UpperBound float64 `json:"upper_bound"`
	// CumulativeCount counts observations <= UpperBound.
	CumulativeCount uint64 `json:"cumulative_count"`
}

// MetricSnapshot is one instrument's state at snapshot time.
type MetricSnapshot struct {
	Name string `json:"name"`
	Help string `json:"help,omitempty"`
	Kind string `json:"kind"`
	// Value carries counter and gauge readings.
	Value float64 `json:"value,omitempty"`
	// Count, Sum, and Buckets carry histogram readings.
	Count   uint64   `json:"count,omitempty"`
	Sum     float64  `json:"sum,omitempty"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Snapshot is a point-in-time reading of a whole registry.
type Snapshot struct {
	Metrics []MetricSnapshot `json:"metrics"`
}

// Snapshot reads every instrument. Counters are read atomically, so any two
// snapshots of the same registry have pointwise monotone counter values;
// histogram count/sum/buckets are each atomic but not mutually consistent
// under concurrent writes (a scrape may see a bucket increment before the
// matching count increment) — cumulative bucket counts are clamped to Count
// so renderings stay well-formed.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	order := append([]*instrument(nil), r.order...)
	r.mu.Unlock()
	s := Snapshot{Metrics: make([]MetricSnapshot, 0, len(order))}
	for _, in := range order {
		ms := MetricSnapshot{Name: in.name, Help: in.help, Kind: in.kind}
		switch in.kind {
		case KindCounter:
			ms.Value = float64(in.counter.Value())
		case KindGauge:
			ms.Value = float64(in.gauge.Value())
		case KindHistogram:
			h := in.hist
			ms.Count = h.Count()
			ms.Sum = h.Sum()
			var cum uint64
			for i := range h.buckets {
				cum += h.buckets[i].Load()
				if cum > ms.Count {
					cum = ms.Count
				}
				ub := math.Inf(1)
				if i < len(h.bounds) {
					ub = h.bounds[i]
				}
				ms.Buckets = append(ms.Buckets, Bucket{UpperBound: ub, CumulativeCount: cum})
			}
		}
		s.Metrics = append(s.Metrics, ms)
	}
	return s
}

// Get returns the snapshot of one metric by name, if present.
func (s Snapshot) Get(name string) (MetricSnapshot, bool) {
	for _, m := range s.Metrics {
		if m.Name == name {
			return m, true
		}
	}
	return MetricSnapshot{}, false
}

// Prometheus renders the snapshot in the Prometheus text exposition format.
func (s Snapshot) Prometheus() string {
	var b strings.Builder
	for _, m := range s.Metrics {
		if m.Help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", m.Name, m.Help)
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", m.Name, m.Kind)
		switch m.Kind {
		case KindCounter, KindGauge:
			fmt.Fprintf(&b, "%s %s\n", m.Name, formatFloat(m.Value))
		case KindHistogram:
			for _, bk := range m.Buckets {
				le := "+Inf"
				if !math.IsInf(bk.UpperBound, 1) {
					le = formatFloat(bk.UpperBound)
				}
				fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", m.Name, le, bk.CumulativeCount)
			}
			fmt.Fprintf(&b, "%s_sum %s\n", m.Name, formatFloat(m.Sum))
			fmt.Fprintf(&b, "%s_count %d\n", m.Name, m.Count)
		}
	}
	return b.String()
}

// JSON renders the snapshot as indented JSON.
func (s Snapshot) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// MarshalJSON renders +Inf bucket bounds as the string "+Inf" — the one
// float64 value encoding/json cannot represent.
func (b Bucket) MarshalJSON() ([]byte, error) {
	ub := "\"+Inf\""
	if !math.IsInf(b.UpperBound, 1) {
		ub = formatFloat(b.UpperBound)
	}
	return []byte(fmt.Sprintf(`{"upper_bound":%s,"cumulative_count":%d}`, ub, b.CumulativeCount)), nil
}

// UnmarshalJSON is the inverse of MarshalJSON.
func (b *Bucket) UnmarshalJSON(data []byte) error {
	var raw struct {
		UpperBound      json.RawMessage `json:"upper_bound"`
		CumulativeCount uint64          `json:"cumulative_count"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	b.CumulativeCount = raw.CumulativeCount
	if string(raw.UpperBound) == `"+Inf"` {
		b.UpperBound = math.Inf(1)
		return nil
	}
	return json.Unmarshal(raw.UpperBound, &b.UpperBound)
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
