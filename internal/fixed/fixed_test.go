package fixed

import (
	"math"
	"testing"

	"gcs/internal/rat"
)

func TestDetector(t *testing.T) {
	d := NewDetector()
	d.AddDen(4)
	d.AddDen(6)
	s, ok := d.Scale()
	if !ok || s != 12 {
		t.Fatalf("scale = %d, %v; want 12, true", s, ok)
	}
	d.AddValue(rat.MustFrac(3, 8))
	s, ok = d.Scale()
	if !ok || s != 24 {
		t.Fatalf("scale = %d, %v; want 24, true", s, ok)
	}
	// Rates contribute numerator and denominator.
	d.AddRate(rat.MustFrac(5, 4))
	s, ok = d.Scale()
	if !ok || s != 120 {
		t.Fatalf("scale = %d, %v; want 120, true", s, ok)
	}
}

func TestDetectorPoison(t *testing.T) {
	d := NewDetector()
	d.AddDen(0)
	if _, ok := d.Scale(); ok {
		t.Fatal("zero denominator should poison the detector")
	}
	d = NewDetector()
	d.AddDen(MaxScale)
	d.AddDen(MaxScale - 1) // coprime-ish; LCM far past the bound
	if _, ok := d.Scale(); ok {
		t.Fatal("LCM past MaxScale should poison the detector")
	}
	// Once poisoned, stays poisoned.
	d.AddDen(1)
	if _, ok := d.Scale(); ok {
		t.Fatal("poisoned detector must not recover")
	}
}

func TestLCMBound(t *testing.T) {
	if l, ok := LCM(6, 10); !ok || l != 30 {
		t.Fatalf("LCM(6,10) = %d, %v; want 30, true", l, ok)
	}
	if _, ok := LCM(MaxScale, 3); ok {
		t.Fatal("LCM above MaxScale must fail")
	}
	if _, ok := LCM(0, 3); ok {
		t.Fatal("LCM of non-positive must fail")
	}
}

func TestFromRatToRat(t *testing.T) {
	const scale = 240
	cases := []struct {
		r     rat.Rat
		ticks int64
		ok    bool
	}{
		{rat.FromInt(0), 0, true},
		{rat.FromInt(3), 720, true},
		{rat.MustFrac(-7, 2), -840, true},
		{rat.MustFrac(1, 16), 15, true},
		{rat.MustFrac(1, 7), 0, false},  // 7 does not divide 240
		{rat.MustFrac(3, 32), 0, false}, // 32 does not divide 240
	}
	for _, c := range cases {
		got, ok := FromRat(c.r, scale)
		if ok != c.ok || got != c.ticks {
			t.Fatalf("FromRat(%s, %d) = %d, %v; want %d, %v", c.r, scale, got, ok, c.ticks, c.ok)
		}
		if ok {
			back := ToRat(got, scale)
			if !back.Equal(c.r) || back.Key() != c.r.Key() {
				t.Fatalf("ToRat(FromRat(%s)) = %s", c.r, back)
			}
		}
	}
}

func TestFromRatOverflow(t *testing.T) {
	if _, ok := FromRat(rat.FromInt(math.MaxInt64/2), 4); ok {
		t.Fatal("FromRat overflow must fail")
	}
	if _, ok := FromRat(rat.FromInt(0), 0); ok {
		t.Fatal("FromRat with scale 0 must fail")
	}
}

func TestCheckedOps(t *testing.T) {
	if v, ok := Add(3, 4); !ok || v != 7 {
		t.Fatalf("Add = %d, %v", v, ok)
	}
	if _, ok := Add(math.MaxInt64, 1); ok {
		t.Fatal("Add overflow must fail")
	}
	if _, ok := Add(math.MinInt64, -1); ok {
		t.Fatal("Add underflow must fail")
	}
	if v, ok := Sub(3, 10); !ok || v != -7 {
		t.Fatalf("Sub = %d, %v", v, ok)
	}
	if _, ok := Sub(0, math.MinInt64); ok {
		t.Fatal("Sub of MinInt64 must fail")
	}
	if v, ok := Mul(1<<30, 4); !ok || v != 1<<32 {
		t.Fatalf("Mul = %d, %v", v, ok)
	}
	if _, ok := Mul(1<<40, 1<<40); ok {
		t.Fatal("Mul overflow must fail")
	}
}

func TestMulDiv(t *testing.T) {
	cases := []struct {
		a, p, q int64
		want    int64
		ok      bool
	}{
		{12, 5, 4, 15, true},
		{-12, 5, 4, -15, true},
		{12, -5, 4, -15, true},
		{-12, -5, 4, 15, true},
		{12, 5, 8, 0, false}, // 60/8 inexact
		{0, 5, 4, 0, true},
		{math.MaxInt64, 2, 2, math.MaxInt64, true}, // 128-bit intermediate
		{math.MaxInt64, 3, 2, 0, false},            // result overflows
		{12, 5, 0, 0, false},
		{12, 5, -4, 0, false},
	}
	for _, c := range cases {
		got, ok := MulDiv(c.a, c.p, c.q)
		if ok != c.ok || got != c.want {
			t.Fatalf("MulDiv(%d, %d, %d) = %d, %v; want %d, %v", c.a, c.p, c.q, got, ok, c.want, c.ok)
		}
	}
}
