package fixed

import (
	"math/big"
	"testing"

	"gcs/internal/rat"
)

// FuzzLane pins the fixed-point lane against internal/rat the same way rat's
// FuzzArith pins rat against math/big.Rat: for random rationals that land on
// a detected common grid, every tick-space operation must agree exactly with
// the rat-space operation, and conversions must round-trip byte-identically.
func FuzzLane(f *testing.F) {
	f.Add(int64(1), int64(2), int64(3), int64(4))
	f.Add(int64(-7), int64(16), int64(5), int64(8))
	f.Add(int64(17), int64(16), int64(1), int64(1))
	f.Add(int64(1), int64(3), int64(1), int64(7))
	f.Add(int64(1)<<40, int64(3), int64(-1), int64(9))
	f.Fuzz(func(t *testing.T, an, ad, bn, bd int64) {
		if ad == 0 || bd == 0 {
			t.Skip()
		}
		a, err := rat.FromFrac(an, ad)
		if err != nil {
			t.Skip()
		}
		b, err := rat.FromFrac(bn, bd)
		if err != nil {
			t.Skip()
		}
		det := NewDetector()
		det.AddValue(a)
		det.AddValue(b)
		scale, ok := det.Scale()
		if !ok {
			return // denominators past MaxScale: lane correctly refuses
		}
		at, aok := FromRat(a, scale)
		bt, bok := FromRat(b, scale)
		// The scale is the LCM of both denominators, so conversion can fail
		// only by magnitude overflow — never by being off-grid.
		if !aok || !bok {
			return
		}

		// Round-trip is byte-identical, and agrees with big.Rat.
		if got := ToRat(at, scale); got.Key() != a.Key() {
			t.Fatalf("round trip %s → %d/%d → %s", a.Key(), at, scale, got.Key())
		}
		want := new(big.Rat).SetFrac64(an, ad)
		if got := new(big.Rat).SetFrac64(at, scale); got.Cmp(want) != 0 {
			t.Fatalf("ticks %d/%d = %s, want %s", at, scale, got, want)
		}

		// Ordering in tick space is ordering in rat space.
		if (at < bt) != a.Less(b) || (at == bt) != a.Equal(b) {
			t.Fatalf("tick order (%d vs %d) disagrees with %s vs %s", at, bt, a, b)
		}

		// Addition and subtraction.
		if sum, ok := Add(at, bt); ok {
			if got, want := ToRat(sum, scale), a.Add(b); got.Key() != want.Key() {
				t.Fatalf("Add: %d ticks = %s, want %s", sum, got.Key(), want.Key())
			}
		}
		if diff, ok := Sub(at, bt); ok {
			if got, want := ToRat(diff, scale), a.Sub(b); got.Key() != want.Key() {
				t.Fatalf("Sub: %d ticks = %s, want %s", diff, got.Key(), want.Key())
			}
		}

		// Multiplying ticks by the rational p/q (clock-rate application): when
		// MulDiv reports exact, the product is on the grid and must match the
		// rat-lane product bit for bit.
		p, pok := b.Num()
		q, qok := b.Den()
		if pok && qok && q > 0 {
			if prod, ok := MulDiv(at, p, q); ok {
				want := a.Mul(b)
				wt, wok := FromRat(want, scale)
				if !wok || wt != prod {
					t.Fatalf("MulDiv(%d, %d, %d) = %d; rat product %s → %d, %v", at, p, q, prod, want, wt, wok)
				}
				if got := ToRat(prod, scale); got.Key() != want.Key() {
					t.Fatalf("MulDiv product %s, want %s", got.Key(), want.Key())
				}
			}
		}
	})
}
