// Package fixed implements the engine's exact scaled-int64 fixed-point lane.
//
// Exact rational arithmetic (internal/rat) is the dominant per-step CPU term
// of the simulation: every event key comparison, clock evaluation, and clock
// inversion cross-multiplies int64 fractions (or worse, falls back to
// big.Rat). Most runs, however, live on a common grid — all rates, delays,
// and offsets share a modest common denominator — and on that grid every
// time value is an integer number of ticks of 1/scale. This package detects
// the grid and provides the checked integer arithmetic for computing on it.
//
// The lane is speculative, never authoritative: every conversion and every
// operation reports whether it was exact, and a caller that gets !ok falls
// back to the rat lane for that value. Exactness is the whole contract — a
// tick count t represents exactly the rational t/scale, so any computation
// that stays in ticks is bit-for-bit the computation the rat lane would have
// performed, just without the gcds. There is no rounding anywhere; the fuzz
// tests pin every operation against internal/rat (which is itself fuzzed
// against math/big.Rat).
//
// Scale detection (Detector) accumulates a bounded least common multiple of
// the denominators in play — clock rates (numerators too: inverting a clock
// divides by the rate's numerator), schedule breakpoints, network distances,
// and the adversary's advertised delay quantization. The bound (MaxScale)
// keeps tick magnitudes far from int64 overflow for any realistic horizon;
// when the LCM would exceed it, detection fails and the run stays on the
// rat lane.
package fixed

import (
	"math"
	"math/bits"

	"gcs/internal/rat"
)

// MaxScale bounds the detected scale. With scale < 2^32 and simulated times
// below 2^20 time units, tick magnitudes stay below 2^52, so sums of a few
// ticks never approach int64 overflow and 128-bit intermediates in MulDiv
// divide out comfortably.
const MaxScale = int64(1) << 32

// Detector accumulates the common-denominator scale of a run. The zero value
// is not usable; construct with NewDetector.
type Detector struct {
	scale int64
	evalF int64
	ok    bool
}

// NewDetector returns a detector with scale 1.
func NewDetector() *Detector { return &Detector{scale: 1, evalF: 1, ok: true} }

// AddDen folds one denominator into the scale (bounded LCM). Non-positive
// denominators and LCM overflow past MaxScale poison the detector.
func (d *Detector) AddDen(den int64) {
	if !d.ok {
		return
	}
	if den <= 0 {
		d.ok = false
		return
	}
	l, ok := LCM(d.scale, den)
	if !ok {
		d.ok = false
		return
	}
	d.scale = l
}

// AddValue folds a rational value's denominator into the scale. Values too
// large for int64 (big.Rat-backed) poison the detector.
func (d *Detector) AddValue(r rat.Rat) {
	den, ok := r.Den()
	if !ok {
		d.ok = false
		return
	}
	d.AddDen(den)
}

// AddRate folds a clock rate into the scale: its denominator (evaluating the
// clock multiplies by the rate) and its numerator (inverting the clock
// divides by it, so hardware targets on the grid invert exactly only when
// the numerator divides the scale).
func (d *Detector) AddRate(r rat.Rat) {
	d.AddValue(r)
	num, ok := r.Num()
	if !ok {
		d.ok = false
		return
	}
	if num < 0 {
		num = -num
	}
	d.AddDen(num)
}

// AddEvalDen folds a denominator that multiplies the detected grid instead
// of joining its LCM. Rationale: the LCM grid 1/s is where *times* live —
// it is closed under the sums and exact inversions the run performs — but a
// clock evaluation H(t) = hw0 + (t−at)·p/q of an arbitrary on-grid time
// divides by the rate denominator q, landing values on the q-times-finer
// grid 1/(s·q). Folding q here (for every rate in play) makes the final
// scale s·lcm(q...) so those readings stay exact in ticks. Best-effort by
// design: an unusable or overflowing factor is dropped — a coarser scale
// never breaks correctness, it only sends more values down the rat lane.
func (d *Detector) AddEvalDen(den int64) {
	if !d.ok || den <= 0 {
		return
	}
	if f, ok := LCM(d.evalF, den); ok {
		d.evalF = f
	}
}

// Scale returns the accumulated scale — the time-grid LCM times the
// evaluation factor when that product stays within MaxScale, the bare
// time-grid LCM otherwise — or ok=false when detection failed (an
// unrepresentable input or an LCM past MaxScale).
func (d *Detector) Scale() (int64, bool) {
	if !d.ok {
		return 0, false
	}
	if d.evalF > 1 && d.scale <= MaxScale/d.evalF {
		return d.scale * d.evalF, true
	}
	return d.scale, true
}

// LCM returns the least common multiple of positive a and b, or ok=false
// when either input is non-positive or the result would exceed MaxScale.
func LCM(a, b int64) (int64, bool) {
	if a <= 0 || b <= 0 {
		return 0, false
	}
	g := gcd(a, b)
	q := a / g
	if q > MaxScale/b {
		return 0, false
	}
	return q * b, true
}

func gcd(x, y int64) int64 {
	for y != 0 {
		x, y = y, x%y
	}
	return x
}

// FromRat converts r to ticks of 1/scale: the exact integer r·scale, or
// ok=false when r is not on the grid (its denominator does not divide scale),
// is big.Rat-backed, or the product overflows.
func FromRat(r rat.Rat, scale int64) (int64, bool) {
	if scale <= 0 {
		return 0, false
	}
	num, ok := r.Num()
	if !ok {
		return 0, false
	}
	den, ok := r.Den()
	if !ok {
		return 0, false
	}
	if den <= 0 || scale%den != 0 {
		return 0, false
	}
	f := scale / den
	if num == 0 {
		return 0, true
	}
	a := num
	if a < 0 {
		a = -a
	}
	if a > math.MaxInt64/f {
		return 0, false
	}
	return num * f, true
}

// ToRat converts ticks of 1/scale back to the exact rational ticks/scale, in
// lowest terms — the same normal form every rat operation produces, so a
// value computed in ticks and converted back is byte-identical (String, Key)
// to the value the rat lane would have computed.
func ToRat(ticks, scale int64) rat.Rat {
	return rat.MustFrac(ticks, scale)
}

// Add returns a+b with overflow detection.
func Add(a, b int64) (int64, bool) {
	c := a + b
	// Overflow iff the operands share a sign and the result does not.
	if (a >= 0) == (b >= 0) && (c >= 0) != (a >= 0) {
		return 0, false
	}
	return c, true
}

// Sub returns a−b with overflow detection.
func Sub(a, b int64) (int64, bool) {
	if b == math.MinInt64 {
		return 0, false
	}
	return Add(a, -b)
}

// Mul returns a·b with overflow detection.
func Mul(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	if a == math.MinInt64 || b == math.MinInt64 {
		return 0, false
	}
	c := a * b
	if c/b != a {
		return 0, false
	}
	return c, true
}

// MulDiv returns a·p/q (q > 0) when the division is exact and the result
// fits in int64, using a 128-bit intermediate so a·p may overflow int64
// freely. ok=false on an inexact division or out-of-range result — the
// caller falls back to the rat lane, it never rounds.
func MulDiv(a, p, q int64) (int64, bool) {
	if q <= 0 {
		return 0, false
	}
	if a == 0 || p == 0 {
		return 0, true
	}
	if a == math.MinInt64 || p == math.MinInt64 {
		return 0, false
	}
	neg := (a < 0) != (p < 0)
	ua, up := uint64(a), uint64(p)
	if a < 0 {
		ua = uint64(-a)
	}
	if p < 0 {
		up = uint64(-p)
	}
	uq := uint64(q)
	hi, lo := bits.Mul64(ua, up)
	if hi >= uq {
		// Quotient would overflow 64 bits.
		return 0, false
	}
	quo, rem := bits.Div64(hi, lo, uq)
	if rem != 0 {
		return 0, false
	}
	if neg {
		if quo > 1<<63 {
			return 0, false
		}
		return -int64(quo), true
	}
	if quo > math.MaxInt64 {
		return 0, false
	}
	return int64(quo), true
}
