package piecewise

import (
	"testing"
	"testing/quick"

	"gcs/internal/rat"
)

func ri(n int64) rat.Rat    { return rat.FromInt(n) }
func rf(n, d int64) rat.Rat { return rat.MustFrac(n, d) }
func eq(a, b rat.Rat) bool  { return a.Equal(b) }
func mustSegs(t *testing.T, segs []Seg) *PLF {
	t.Helper()
	f, err := FromSegs(segs)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestNewEval(t *testing.T) {
	f := New(ri(0), ri(10), rf(1, 2))
	tests := []struct {
		t, want rat.Rat
	}{
		{ri(0), ri(10)},
		{ri(2), ri(11)},
		{ri(100), ri(60)},
		{rf(1, 3), rf(61, 6)},
	}
	for _, tt := range tests {
		if got := f.Eval(tt.t); !eq(got, tt.want) {
			t.Errorf("Eval(%s) = %s, want %s", tt.t, got, tt.want)
		}
	}
}

func TestEvalBeforeStartPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Eval before start did not panic")
		}
	}()
	New(ri(5), ri(0), ri(1)).Eval(ri(4))
}

func TestAppendAndJumps(t *testing.T) {
	// f(t) = t on [0,10); jump to 20 at t=10, slope 2 afterwards.
	f := New(ri(0), ri(0), ri(1))
	if err := f.Append(ri(10), ri(20), ri(2)); err != nil {
		t.Fatal(err)
	}
	if got := f.EvalLeft(ri(10)); !eq(got, ri(10)) {
		t.Errorf("EvalLeft(10) = %s, want 10", got)
	}
	if got := f.Eval(ri(10)); !eq(got, ri(20)) {
		t.Errorf("Eval(10) = %s, want 20", got)
	}
	if got := f.JumpAt(ri(10)); !eq(got, ri(10)) {
		t.Errorf("JumpAt(10) = %s, want 10", got)
	}
	if got := f.Eval(ri(12)); !eq(got, ri(24)) {
		t.Errorf("Eval(12) = %s, want 24", got)
	}
	if f.IsContinuous() {
		t.Error("f should not be continuous")
	}
}

func TestAppendAtSameBreakpointReplaces(t *testing.T) {
	f := New(ri(0), ri(0), ri(1))
	if err := f.Append(ri(5), ri(5), ri(3)); err != nil {
		t.Fatal(err)
	}
	if err := f.Append(ri(5), ri(7), ri(4)); err != nil {
		t.Fatal(err)
	}
	if f.NumSegs() != 2 {
		t.Fatalf("NumSegs = %d, want 2", f.NumSegs())
	}
	if got := f.Eval(ri(6)); !eq(got, ri(11)) {
		t.Errorf("Eval(6) = %s, want 11", got)
	}
}

func TestAppendBeforeLastErrors(t *testing.T) {
	f := New(ri(0), ri(0), ri(1))
	if err := f.Append(ri(5), ri(5), ri(1)); err != nil {
		t.Fatal(err)
	}
	if err := f.Append(ri(3), ri(0), ri(1)); err == nil {
		t.Error("appending before last breakpoint should error")
	}
}

func TestAppendSlopeContinuous(t *testing.T) {
	f := New(ri(0), ri(0), ri(2))
	if err := f.AppendSlope(ri(3), rf(1, 2)); err != nil {
		t.Fatal(err)
	}
	if got := f.Eval(ri(3)); !eq(got, ri(6)) {
		t.Errorf("Eval(3) = %s, want 6", got)
	}
	if got := f.Eval(ri(5)); !eq(got, ri(7)) {
		t.Errorf("Eval(5) = %s, want 7", got)
	}
	if !f.IsContinuous() {
		t.Error("f should be continuous")
	}
}

func TestFromSegsValidation(t *testing.T) {
	if _, err := FromSegs(nil); err == nil {
		t.Error("empty segs should error")
	}
	_, err := FromSegs([]Seg{
		{From: ri(0), V0: ri(0), Slope: ri(1)},
		{From: ri(0), V0: ri(1), Slope: ri(1)},
	})
	if err == nil {
		t.Error("non-increasing From should error")
	}
}

func TestMinMaxSlope(t *testing.T) {
	f := mustSegs(t, []Seg{
		{From: ri(0), V0: ri(0), Slope: ri(1)},
		{From: ri(10), V0: ri(10), Slope: ri(3)},
		{From: ri(20), V0: ri(40), Slope: rf(1, 2)},
	})
	if got := f.MinSlope(ri(0), ri(100)); !eq(got, rf(1, 2)) {
		t.Errorf("MinSlope = %s, want 1/2", got)
	}
	if got := f.MaxSlope(ri(0), ri(100)); !eq(got, ri(3)) {
		t.Errorf("MaxSlope = %s, want 3", got)
	}
	// Window covering only the middle piece.
	if got := f.MinSlope(ri(12), ri(15)); !eq(got, ri(3)) {
		t.Errorf("MinSlope(12,15) = %s, want 3", got)
	}
	// Window straddling the first two pieces.
	if got := f.MaxSlope(ri(5), ri(12)); !eq(got, ri(3)) {
		t.Errorf("MaxSlope(5,12) = %s, want 3", got)
	}
	if got := f.MinSlope(ri(5), ri(12)); !eq(got, ri(1)) {
		t.Errorf("MinSlope(5,12) = %s, want 1", got)
	}
}

func TestMinJump(t *testing.T) {
	f := New(ri(0), ri(0), ri(1))
	_ = f.Append(ri(5), ri(4), ri(1))   // jump of -1
	_ = f.Append(ri(10), ri(20), ri(1)) // jump of +11
	if got := f.MinJump(ri(0), ri(20)); !eq(got, ri(-1)) {
		t.Errorf("MinJump = %s, want -1", got)
	}
	if got := f.MinJump(ri(6), ri(20)); !eq(got, ri(0)) {
		t.Errorf("MinJump(6,20) = %s, want 0", got)
	}
}

func TestInvertAt(t *testing.T) {
	// Hardware-clock-like: continuous, increasing, varying rates.
	f := mustSegs(t, []Seg{
		{From: ri(0), V0: ri(0), Slope: ri(1)},
		{From: ri(10), V0: ri(10), Slope: ri(2)},
		{From: ri(20), V0: ri(30), Slope: rf(1, 2)},
	})
	tests := []struct {
		y, want rat.Rat
	}{
		{ri(0), ri(0)},
		{ri(5), ri(5)},
		{ri(10), ri(10)},
		{ri(20), ri(15)},
		{ri(30), ri(20)},
		{ri(31), ri(22)},
	}
	for _, tt := range tests {
		got, err := f.InvertAt(tt.y)
		if err != nil {
			t.Errorf("InvertAt(%s) error: %v", tt.y, err)
			continue
		}
		if !eq(got, tt.want) {
			t.Errorf("InvertAt(%s) = %s, want %s", tt.y, got, tt.want)
		}
		// Round trip.
		if back := f.Eval(got); !eq(back, tt.y) {
			t.Errorf("Eval(InvertAt(%s)) = %s", tt.y, back)
		}
	}
	if _, err := f.InvertAt(ri(-1)); err == nil {
		t.Error("InvertAt below range should error")
	}
}

func TestInvertAtFlatSegment(t *testing.T) {
	f := mustSegs(t, []Seg{
		{From: ri(0), V0: ri(0), Slope: ri(1)},
		{From: ri(5), V0: ri(5), Slope: ri(0)},
		{From: ri(8), V0: ri(5), Slope: ri(1)},
	})
	got, err := f.InvertAt(ri(5))
	if err != nil {
		t.Fatal(err)
	}
	if !eq(got, ri(5)) {
		t.Errorf("InvertAt(5) = %s, want earliest 5", got)
	}
	got, err = f.InvertAt(ri(6))
	if err != nil {
		t.Fatal(err)
	}
	if !eq(got, ri(9)) {
		t.Errorf("InvertAt(6) = %s, want 9", got)
	}
}

func TestInvertAtSkippedByJump(t *testing.T) {
	f := New(ri(0), ri(0), ri(1))
	_ = f.Append(ri(5), ri(10), ri(1)) // jump over (5,10)
	if _, err := f.InvertAt(ri(7)); err == nil {
		t.Error("InvertAt of skipped value should error")
	}
	got, err := f.InvertAt(ri(10))
	if err != nil {
		t.Fatal(err)
	}
	if !eq(got, ri(5)) {
		t.Errorf("InvertAt(10) = %s, want 5", got)
	}
}

func TestMaxDiff(t *testing.T) {
	// a(t) = t, b = 5 constant: max of a-b on [0,10] is 5 at t=10.
	a := New(ri(0), ri(0), ri(1))
	b := New(ri(0), ri(5), ri(0))
	got := MaxDiff(a, b, ri(0), ri(10))
	if !eq(got.Val, ri(5)) || !eq(got.At, ri(10)) {
		t.Errorf("MaxDiff = %s at %s, want 5 at 10", got.Val, got.At)
	}
	// Max attained at an interior breakpoint of a.
	a2 := New(ri(0), ri(0), ri(2))
	_ = a2.AppendSlope(ri(4), ri(-1)) // peak value 8 at t=4
	got = MaxDiff(a2, b, ri(0), ri(10))
	if !eq(got.Val, ri(3)) || !eq(got.At, ri(4)) {
		t.Errorf("MaxDiff = %s at %s, want 3 at 4", got.Val, got.At)
	}
}

func TestMaxDiffLeftLimitAtJump(t *testing.T) {
	// a rises to 10 then jumps DOWN to 0 at t=5: the max of a-b is the left
	// limit at the jump.
	a := New(ri(0), ri(0), ri(2))
	_ = a.Append(ri(5), ri(0), ri(0))
	b := New(ri(0), ri(0), ri(0))
	got := MaxDiff(a, b, ri(0), ri(10))
	if !eq(got.Val, ri(10)) || !eq(got.At, ri(5)) {
		t.Errorf("MaxDiff = %s at %s, want 10 at 5 (left limit)", got.Val, got.At)
	}
}

func TestMaxAbsDiff(t *testing.T) {
	a := New(ri(0), ri(0), ri(1)) // t
	b := New(ri(0), ri(8), ri(0)) // 8
	got := MaxAbsDiff(a, b, ri(0), ri(10))
	if !eq(got.Val, ri(8)) || !eq(got.At, ri(0)) {
		t.Errorf("MaxAbsDiff = %s at %s, want 8 at 0", got.Val, got.At)
	}
}

func TestBreakpointsIn(t *testing.T) {
	f := mustSegs(t, []Seg{
		{From: ri(0), V0: ri(0), Slope: ri(1)},
		{From: ri(5), V0: ri(5), Slope: ri(1)},
		{From: ri(10), V0: ri(10), Slope: ri(1)},
	})
	got := f.BreakpointsIn(ri(0), ri(10))
	if len(got) != 2 || !eq(got[0], ri(5)) || !eq(got[1], ri(10)) {
		t.Errorf("BreakpointsIn(0,10] = %v", got)
	}
	got = f.BreakpointsIn(ri(5), ri(9))
	if len(got) != 0 {
		t.Errorf("BreakpointsIn(5,9] = %v, want empty", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	f := New(ri(0), ri(0), ri(1))
	g := f.Clone()
	_ = f.Append(ri(5), ri(100), ri(0))
	if g.NumSegs() != 1 {
		t.Error("clone was mutated")
	}
}

// Property: InvertAt is a right inverse of Eval for continuous increasing
// PLFs built from random positive slopes.
func TestQuickInvertRoundTrip(t *testing.T) {
	f := func(slopes [4]uint8, q uint8) bool {
		plf := New(ri(0), ri(0), rf(int64(slopes[0]%7)+1, 1))
		at := int64(0)
		for _, s := range slopes[1:] {
			at += int64(s%5) + 1
			if err := plf.AppendSlope(ri(at), rf(int64(s%7)+1, 2)); err != nil {
				return false
			}
		}
		y := rf(int64(q), 3)
		tVal, err := plf.InvertAt(y)
		if err != nil {
			return false
		}
		return plf.Eval(tVal).Equal(y)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: MaxDiff is an upper bound of the difference on a sample grid.
func TestQuickMaxDiffDominatesGrid(t *testing.T) {
	f := func(sa, sb [3]int8, ja, jb uint8) bool {
		a := New(ri(0), ri(int64(ja)), rf(int64(sa[0]), 3))
		b := New(ri(0), ri(int64(jb)), rf(int64(sb[0]), 3))
		_ = a.AppendSlope(ri(3), rf(int64(sa[1]), 3))
		_ = b.AppendSlope(ri(4), rf(int64(sb[1]), 3))
		_ = a.AppendSlope(ri(7), rf(int64(sa[2]), 3))
		_ = b.AppendSlope(ri(8), rf(int64(sb[2]), 3))
		m := MaxDiff(a, b, ri(0), ri(12))
		for i := int64(0); i <= 24; i++ {
			tt := rf(i, 2)
			if a.Eval(tt).Sub(b.Eval(tt)).Greater(m.Val) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
