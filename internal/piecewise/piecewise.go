// Package piecewise implements piecewise-linear functions of exact rational
// time, with optional jump discontinuities.
//
// Two kinds of clocks in the reproduction are piecewise linear:
//
//   - hardware clocks H_i(t) = ∫ h_i(r) dr: continuous, strictly increasing,
//     slopes are the adversary-chosen rates;
//   - logical clocks L_i(t): piecewise linear with upward jumps (max-based
//     algorithms set their clock forward on message receipt).
//
// Skew analysis reduces to evaluating the maximum of a difference of two
// piecewise-linear functions, which is attained at a breakpoint of either
// function (evaluated from the left and from the right); exact rational
// arithmetic makes those maxima exact.
package piecewise

import (
	"errors"
	"fmt"

	"gcs/internal/rat"
)

// Seg describes one linear piece: on [From, nextFrom) the function value is
// V0 + Slope·(t − From). The final segment extends to +∞.
type Seg struct {
	From  rat.Rat
	V0    rat.Rat
	Slope rat.Rat
}

// PLF is a piecewise-linear function defined on [Start(), +∞). The zero value
// is unusable; construct with New.
type PLF struct {
	segs []Seg
}

// ErrBeforeStart is returned when evaluating or inverting outside the domain.
var ErrBeforeStart = errors.New("piecewise: argument before domain start")

// New returns the function f(t) = v0 + slope·(t − start) on [start, +∞).
func New(start, v0, slope rat.Rat) *PLF {
	return &PLF{segs: []Seg{{From: start, V0: v0, Slope: slope}}}
}

// FromSegs builds a PLF from explicit segments, which must be sorted by
// strictly increasing From.
func FromSegs(segs []Seg) (*PLF, error) {
	if len(segs) == 0 {
		return nil, errors.New("piecewise: no segments")
	}
	out := make([]Seg, len(segs))
	copy(out, segs)
	for i := 1; i < len(out); i++ {
		if !out[i-1].From.Less(out[i].From) {
			return nil, fmt.Errorf("piecewise: segment %d start %s not after %s", i, out[i].From, out[i-1].From)
		}
	}
	return &PLF{segs: out}, nil
}

// Clone returns an independent copy of f.
func (f *PLF) Clone() *PLF {
	segs := make([]Seg, len(f.segs))
	copy(segs, f.segs)
	return &PLF{segs: segs}
}

// Start returns the domain start.
func (f *PLF) Start() rat.Rat { return f.segs[0].From }

// End returns the start of the final segment (the last breakpoint).
func (f *PLF) End() rat.Rat { return f.segs[len(f.segs)-1].From }

// NumSegs returns the number of linear pieces.
func (f *PLF) NumSegs() int { return len(f.segs) }

// Segs returns a copy of the segments.
func (f *PLF) Segs() []Seg {
	out := make([]Seg, len(f.segs))
	copy(out, f.segs)
	return out
}

// Append adds a new piece starting at from with value v0 and the given slope.
// from must be >= the current last breakpoint; appending at exactly the last
// breakpoint replaces the last piece (modelling an instantaneous
// re-declaration).
func (f *PLF) Append(from, v0, slope rat.Rat) error {
	last := &f.segs[len(f.segs)-1]
	switch cmp := from.Cmp(last.From); {
	case cmp < 0:
		return fmt.Errorf("piecewise: append at %s before last breakpoint %s", from, last.From)
	case cmp == 0:
		last.V0 = v0
		last.Slope = slope
		return nil
	default:
		f.segs = append(f.segs, Seg{From: from, V0: v0, Slope: slope})
		return nil
	}
}

// AppendSlope adds a continuous piece: the new piece starts at from with the
// left-limit value and the given slope.
func (f *PLF) AppendSlope(from, slope rat.Rat) error {
	last := f.segs[len(f.segs)-1]
	if from.Less(last.From) {
		return fmt.Errorf("piecewise: append at %s before last breakpoint %s", from, last.From)
	}
	v := last.V0.Add(last.Slope.Mul(from.Sub(last.From)))
	return f.Append(from, v, slope)
}

// locate returns the index of the segment containing t (the last segment with
// From <= t). It returns -1 when t precedes the domain.
func (f *PLF) locate(t rat.Rat) int {
	lo, hi := 0, len(f.segs)-1
	if t.Less(f.segs[0].From) {
		return -1
	}
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if f.segs[mid].From.LessEq(t) {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// Eval returns f(t), using the right-continuous convention at breakpoints.
// Evaluating before the domain start is a programming error and panics.
func (f *PLF) Eval(t rat.Rat) rat.Rat {
	i := f.locate(t)
	if i < 0 {
		panic(fmt.Sprintf("piecewise: Eval(%s) before domain start %s", t, f.segs[0].From))
	}
	s := f.segs[i]
	return s.V0.Add(s.Slope.Mul(t.Sub(s.From)))
}

// EvalLeft returns the left limit lim_{s→t⁻} f(s). At the domain start it
// equals Eval(start).
func (f *PLF) EvalLeft(t rat.Rat) rat.Rat {
	i := f.locate(t)
	if i < 0 {
		panic(fmt.Sprintf("piecewise: EvalLeft(%s) before domain start %s", t, f.segs[0].From))
	}
	s := f.segs[i]
	if t.Equal(s.From) && i > 0 {
		p := f.segs[i-1]
		return p.V0.Add(p.Slope.Mul(t.Sub(p.From)))
	}
	return s.V0.Add(s.Slope.Mul(t.Sub(s.From)))
}

// JumpAt returns Eval(t) − EvalLeft(t): zero where f is continuous.
func (f *PLF) JumpAt(t rat.Rat) rat.Rat {
	return f.Eval(t).Sub(f.EvalLeft(t))
}

// Breakpoints returns the segment start times.
func (f *PLF) Breakpoints() []rat.Rat {
	out := make([]rat.Rat, len(f.segs))
	for i, s := range f.segs {
		out[i] = s.From
	}
	return out
}

// BreakpointsIn returns breakpoints within (from, to].
func (f *PLF) BreakpointsIn(from, to rat.Rat) []rat.Rat {
	var out []rat.Rat
	for _, s := range f.segs {
		if s.From.Greater(from) && s.From.LessEq(to) {
			out = append(out, s.From)
		}
	}
	return out
}

// MinSlope returns the minimum slope among pieces intersecting [from, to].
func (f *PLF) MinSlope(from, to rat.Rat) rat.Rat {
	first := true
	var minS rat.Rat
	for i, s := range f.segs {
		segEnd := to
		if i+1 < len(f.segs) {
			segEnd = f.segs[i+1].From
		}
		if segEnd.Less(from) || s.From.Greater(to) {
			continue
		}
		if first || s.Slope.Less(minS) {
			minS = s.Slope
			first = false
		}
	}
	return minS
}

// MaxSlope returns the maximum slope among pieces intersecting [from, to].
func (f *PLF) MaxSlope(from, to rat.Rat) rat.Rat {
	first := true
	var maxS rat.Rat
	for i, s := range f.segs {
		segEnd := to
		if i+1 < len(f.segs) {
			segEnd = f.segs[i+1].From
		}
		if segEnd.Less(from) || s.From.Greater(to) {
			continue
		}
		if first || s.Slope.Greater(maxS) {
			maxS = s.Slope
			first = false
		}
	}
	return maxS
}

// MinJump returns the most negative jump in (from, to] (zero if none).
func (f *PLF) MinJump(from, to rat.Rat) rat.Rat {
	minJ := rat.Rat{}
	for _, s := range f.segs[1:] {
		if s.From.Greater(from) && s.From.LessEq(to) {
			if j := f.JumpAt(s.From); j.Less(minJ) {
				minJ = j
			}
		}
	}
	return minJ
}

// IsContinuous reports whether f has no jumps.
func (f *PLF) IsContinuous() bool {
	for _, s := range f.segs[1:] {
		if !f.JumpAt(s.From).IsZero() {
			return false
		}
	}
	return true
}

// InvertAt returns the earliest t with f(t) = y. It requires f to be
// nondecreasing (slopes >= 0, jumps >= 0); the caller is responsible for
// that. It returns ErrBeforeStart when y < f(Start()), and an error when y is
// skipped by a jump. When f's final slope is zero and y exceeds the final
// value, it reports an unreachable error.
func (f *PLF) InvertAt(y rat.Rat) (rat.Rat, error) {
	if y.Less(f.segs[0].V0) {
		return rat.Rat{}, ErrBeforeStart
	}
	for i, s := range f.segs {
		var endVal rat.Rat
		lastSeg := i+1 == len(f.segs)
		if !lastSeg {
			next := f.segs[i+1].From
			endVal = s.V0.Add(s.Slope.Mul(next.Sub(s.From)))
			// Value jumps to f.segs[i+1].V0 at next; y strictly between
			// endVal and that is unreachable (handled below by next loop
			// iteration check y < V0).
		}
		if !lastSeg && y.Greater(endVal) {
			if y.Less(f.segs[i+1].V0) {
				return rat.Rat{}, fmt.Errorf("piecewise: value %s skipped by jump at %s", y, f.segs[i+1].From)
			}
			continue
		}
		if y.Less(s.V0) {
			return rat.Rat{}, fmt.Errorf("piecewise: value %s skipped by jump at %s", y, s.From)
		}
		if s.Slope.IsZero() {
			if y.Equal(s.V0) {
				return s.From, nil
			}
			if lastSeg {
				return rat.Rat{}, fmt.Errorf("piecewise: value %s unreachable (flat tail)", y)
			}
			continue
		}
		return s.From.Add(y.Sub(s.V0).Div(s.Slope)), nil
	}
	return rat.Rat{}, fmt.Errorf("piecewise: value %s unreachable", y)
}

// Extremum is the location and value of a maximum.
type Extremum struct {
	At  rat.Rat
	Val rat.Rat
}

// MaxDiff returns the maximum of a(t) − b(t) over [from, to], together with a
// time where it is attained. Both functions must be defined on the interval.
// The maximum of a difference of piecewise-linear functions is attained at an
// interval endpoint or at a breakpoint (from the left or the right), so the
// search is exact.
func MaxDiff(a, b *PLF, from, to rat.Rat) Extremum {
	best := Extremum{At: from, Val: a.Eval(from).Sub(b.Eval(from))}
	consider := func(t rat.Rat) {
		if t.Less(from) || t.Greater(to) {
			return
		}
		if v := a.Eval(t).Sub(b.Eval(t)); v.Greater(best.Val) {
			best = Extremum{At: t, Val: v}
		}
		if v := a.EvalLeft(t).Sub(b.EvalLeft(t)); v.Greater(best.Val) {
			best = Extremum{At: t, Val: v}
		}
	}
	for _, t := range a.BreakpointsIn(from, to) {
		consider(t)
	}
	for _, t := range b.BreakpointsIn(from, to) {
		consider(t)
	}
	consider(to)
	return best
}

// MaxAbsDiff returns the maximum of |a(t) − b(t)| over [from, to].
func MaxAbsDiff(a, b *PLF, from, to rat.Rat) Extremum {
	p := MaxDiff(a, b, from, to)
	n := MaxDiff(b, a, from, to)
	if n.Val.Greater(p.Val) {
		return n
	}
	return p
}
