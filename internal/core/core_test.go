package core

import (
	"testing"

	"gcs/internal/clock"
	"gcs/internal/network"
	"gcs/internal/piecewise"
	"gcs/internal/rat"
	"gcs/internal/trace"
)

func ri(n int64) rat.Rat    { return rat.FromInt(n) }
func rf(n, d int64) rat.Rat { return rat.MustFrac(n, d) }

// synthExec builds a 3-node line execution with hand-made logical clocks.
func synthExec(t *testing.T, logical []*piecewise.PLF, dur rat.Rat) *trace.Execution {
	t.Helper()
	net, err := network.Line(len(logical))
	if err != nil {
		t.Fatal(err)
	}
	scheds := make([]*clock.Schedule, len(logical))
	hw := make([]*piecewise.PLF, len(logical))
	for i := range scheds {
		scheds[i] = clock.Constant(ri(1))
		hw[i] = scheds[i].HWFunc()
	}
	return &trace.Execution{
		Net:       net,
		Schedules: scheds,
		Duration:  dur,
		Logical:   logical,
		Hardware:  hw,
		Ledger:    map[trace.MsgKey]trace.MsgRecord{},
		PerNode:   make([][]int, len(logical)),
	}
}

func TestCheckValidityOK(t *testing.T) {
	l0 := piecewise.New(rat.Rat{}, rat.Rat{}, ri(1))
	l1 := piecewise.New(rat.Rat{}, rat.Rat{}, rf(1, 2)) // exactly the bound
	l2 := piecewise.New(rat.Rat{}, rat.Rat{}, ri(1))
	_ = l2.Append(ri(5), ri(10), ri(1)) // upward jump: allowed
	e := synthExec(t, []*piecewise.PLF{l0, l1, l2}, ri(10))
	if err := CheckValidity(e); err != nil {
		t.Errorf("validity should hold: %v", err)
	}
}

func TestCheckValiditySlowRate(t *testing.T) {
	l0 := piecewise.New(rat.Rat{}, rat.Rat{}, ri(1))
	l1 := piecewise.New(rat.Rat{}, rat.Rat{}, ri(1))
	_ = l1.AppendSlope(ri(3), rf(1, 3)) // rate 1/3 < 1/2
	l2 := piecewise.New(rat.Rat{}, rat.Rat{}, ri(1))
	e := synthExec(t, []*piecewise.PLF{l0, l1, l2}, ri(10))
	if err := CheckValidity(e); err == nil {
		t.Error("rate 1/3 should violate validity")
	}
}

func TestCheckValidityDownwardJump(t *testing.T) {
	l0 := piecewise.New(rat.Rat{}, rat.Rat{}, ri(1))
	l1 := piecewise.New(rat.Rat{}, rat.Rat{}, ri(1))
	_ = l1.Append(ri(4), ri(2), ri(1)) // jumps down from 4 to 2
	l2 := piecewise.New(rat.Rat{}, rat.Rat{}, ri(1))
	e := synthExec(t, []*piecewise.PLF{l0, l1, l2}, ri(10))
	if err := CheckValidity(e); err == nil {
		t.Error("downward jump should violate validity")
	}
}

func TestCheckGradient(t *testing.T) {
	// Node 1 runs 1 ahead of node 0 and 3 ahead of node 2 at the end.
	l0 := piecewise.New(rat.Rat{}, rat.Rat{}, ri(1))
	l1 := piecewise.New(rat.Rat{}, ri(1), ri(1))
	l2 := piecewise.New(rat.Rat{}, rat.Rat{}, ri(1))
	_ = l2.Append(ri(5), ri(3), ri(1)) // jumps to catch up? makes skew vary
	e := synthExec(t, []*piecewise.PLF{l0, l1, l2}, ri(10))

	// Generous bound: f(d) = 10 + 10d.
	rep := CheckGradient(e, LinearGradient(ri(10), ri(10)))
	if !rep.OK {
		t.Errorf("generous bound should pass, worst %+v", rep.Worst)
	}
	if rep.Checked != 3 {
		t.Errorf("checked %d pairs, want 3", rep.Checked)
	}

	// Tight bound f(d) = 1/2: must fail, worst pair identified.
	rep = CheckGradient(e, LinearGradient(rf(1, 2), rat.Rat{}))
	if rep.OK {
		t.Error("tight bound should fail")
	}
	if rep.Worst.Skew.LessEq(rf(1, 2)) {
		t.Errorf("worst skew %s should exceed bound", rep.Worst.Skew)
	}
}

func TestGlobalAndLocalSkew(t *testing.T) {
	// L0 = t, L1 = t+1, L2 = t+5: global worst is (0,2) with 5; local worst
	// among distance-1 pairs is (1,2) with 4.
	l0 := piecewise.New(rat.Rat{}, rat.Rat{}, ri(1))
	l1 := piecewise.New(rat.Rat{}, ri(1), ri(1))
	l2 := piecewise.New(rat.Rat{}, ri(5), ri(1))
	e := synthExec(t, []*piecewise.PLF{l0, l1, l2}, ri(10))

	g := GlobalSkew(e)
	if g.I != 0 || g.J != 2 || !g.Skew.Equal(ri(5)) {
		t.Errorf("GlobalSkew = %+v, want pair (0,2) skew 5", g)
	}
	l := LocalSkew(e)
	if l.I != 1 || l.J != 2 || !l.Skew.Equal(ri(4)) {
		t.Errorf("LocalSkew = %+v, want pair (1,2) skew 4", l)
	}
}

func TestSkewProfile(t *testing.T) {
	l0 := piecewise.New(rat.Rat{}, rat.Rat{}, ri(1))
	l1 := piecewise.New(rat.Rat{}, ri(1), ri(1))
	l2 := piecewise.New(rat.Rat{}, ri(5), ri(1))
	e := synthExec(t, []*piecewise.PLF{l0, l1, l2}, ri(10))
	prof := SkewProfile(e)
	if len(prof) != 2 {
		t.Fatalf("profile has %d distances, want 2", len(prof))
	}
	if !prof[0].Dist.Equal(ri(1)) || prof[0].Pairs != 2 || !prof[0].MaxSkew.Equal(ri(4)) {
		t.Errorf("profile[1] = %+v, want d=1 pairs=2 skew=4", prof[0])
	}
	if !prof[1].Dist.Equal(ri(2)) || prof[1].Pairs != 1 || !prof[1].MaxSkew.Equal(ri(5)) {
		t.Errorf("profile[2] = %+v, want d=2 pairs=1 skew=5", prof[1])
	}
}

func TestMaxIncreasePerUnit(t *testing.T) {
	// L = t with a +7 jump at t=5: max over any unit window is 8.
	l0 := piecewise.New(rat.Rat{}, rat.Rat{}, ri(1))
	l1 := piecewise.New(rat.Rat{}, rat.Rat{}, ri(1))
	_ = l1.Append(ri(5), ri(12), ri(1))
	l2 := piecewise.New(rat.Rat{}, rat.Rat{}, ri(1))
	e := synthExec(t, []*piecewise.PLF{l0, l1, l2}, ri(10))

	got := MaxIncreasePerUnit(e, 1, rat.Rat{}, ri(10))
	if !got.Val.Equal(ri(8)) {
		t.Errorf("MaxIncreasePerUnit = %s, want 8", got.Val)
	}
	// Plain linear clock: exactly 1.
	got = MaxIncreasePerUnit(e, 0, rat.Rat{}, ri(10))
	if !got.Val.Equal(ri(1)) {
		t.Errorf("MaxIncreasePerUnit(linear) = %s, want 1", got.Val)
	}
	// Window shorter than 1: zero extremum.
	got = MaxIncreasePerUnit(e, 0, ri(0), rf(1, 2))
	if !got.Val.IsZero() {
		t.Errorf("short window = %s, want 0", got.Val)
	}
}

func TestLinearGradient(t *testing.T) {
	f := LinearGradient(ri(2), ri(3))
	if got := f(ri(4)); !got.Equal(ri(14)) {
		t.Errorf("f(4) = %s, want 14", got)
	}
}
