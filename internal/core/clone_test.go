package core

import (
	"testing"

	"gcs/internal/clock"
	"gcs/internal/engine"
	"gcs/internal/network"
	"gcs/internal/rat"
)

// TestTrackerCloneEquivalence: trackers cloned mid-run and attached to a
// forked engine must finish with exactly the metrics of trackers that
// watched a fresh end-to-end run — and exactly the post-hoc checkers'
// values on the recorded execution. The original trackers must be untouched
// by the clones' progress.
func TestTrackerCloneEquivalence(t *testing.T) {
	net, err := network.Line(5)
	if err != nil {
		t.Fatal(err)
	}
	scheds := []*clock.Schedule{
		clock.Constant(rat.MustFrac(5, 4)),
		clock.Constant(rat.FromInt(1)),
		clock.Constant(rat.MustFrac(9, 8)),
		clock.Constant(rat.MustFrac(7, 8)),
		clock.Constant(rat.FromInt(1)),
	}
	cfg := engine.Config{
		Net:       net,
		Schedules: scheds,
		Adversary: engine.HashAdversary{Seed: 23, Denom: 8},
		Protocol:  gossipProtocol{period: rat.FromInt(1)},
		Duration:  rat.FromInt(14),
		Rho:       rat.MustFrac(1, 2),
	}
	f := LinearGradient(rat.FromInt(1), rat.FromInt(1))
	exec, fullSt, fullGt, fullVt := runBoth(t, cfg, f)

	// Trunk run: trackers attached from zero, cloned at mid-run, clones
	// finish on a fork.
	st, err := NewSkewTracker(cfg.Net, cfg.Schedules)
	if err != nil {
		t.Fatal(err)
	}
	gt, err := NewGradientTracker(cfg.Net, cfg.Schedules, f)
	if err != nil {
		t.Fatal(err)
	}
	vt := NewValidityTracker(cfg.Schedules)
	trunk, err := engine.New(cfg.Net,
		engine.WithProtocol(cfg.Protocol),
		engine.WithAdversary(cfg.Adversary),
		engine.WithSchedules(cfg.Schedules),
		engine.WithRho(cfg.Rho),
		engine.WithObservers(st, gt, vt),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := trunk.RunUntil(rat.FromInt(7)); err != nil {
		t.Fatal(err)
	}
	midGlobal := st.Global().Skew
	cSt, cGt, cVt := st.Clone(), gt.Clone(), vt.Clone()
	fork, err := trunk.Fork()
	if err != nil {
		t.Fatal(err)
	}
	fork.Observe(cSt, cGt, cVt)
	if err := fork.RunUntil(cfg.Duration); err != nil {
		t.Fatal(err)
	}
	if err := cSt.Err(); err != nil {
		t.Fatal(err)
	}
	checkTrackersMatch(t, exec, cSt, cGt, cVt, f)

	// Originals froze at the fork point.
	if !st.Global().Skew.Equal(midGlobal) {
		t.Fatalf("original tracker moved with the clone: %s vs %s", st.Global().Skew, midGlobal)
	}
	if !st.Time().Equal(rat.FromInt(7)) {
		t.Fatalf("original tracker time %s, want 7", st.Time())
	}

	// Clone-of-clone still matches: the GradientTracker hook rewires each
	// time.
	again := cGt.Clone()
	if again.Violated() != cGt.Violated() {
		t.Fatalf("cloned gradient tracker violation state differs")
	}
	if fullGt.Violated() != cGt.Violated() {
		t.Fatalf("forked gradient tracker violation %v, fresh %v", cGt.Violated(), fullGt.Violated())
	}
	if (fullVt.Err() == nil) != (cVt.Err() == nil) {
		t.Fatalf("forked validity %v, fresh %v", cVt.Err(), fullVt.Err())
	}
	if !fullSt.Global().Skew.Equal(cSt.Global().Skew) {
		t.Fatalf("forked tracker global %s, fresh %s", cSt.Global().Skew, fullSt.Global().Skew)
	}
}
