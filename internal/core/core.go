// Package core defines the gradient clock synchronization problem of
// Fan & Lynch (PODC 2004) §4 as executable checkers over recorded
// executions.
//
//   - Requirement 1 (Validity): every logical clock satisfies
//     L(t+r) − L(t) ≥ r/2 for all r > 0 — equivalently, every linear piece
//     has slope ≥ 1/2 and there are no downward jumps.
//   - Requirement 2 (f-Gradient): |L_i(t) − L_j(t)| ≤ f(d(i,j)) for every
//     pair at every time.
//
// The checkers are exact: logical clocks are piecewise linear in exact
// rational time, so maxima of pairwise differences are computed at
// breakpoints, not sampled.
package core

import (
	"fmt"
	"sort"

	"gcs/internal/piecewise"
	"gcs/internal/rat"
	"gcs/internal/trace"
)

// ValidityRate is the paper's lower bound on logical clock rate (1/2).
var ValidityRate = rat.MustFrac(1, 2)

// CheckValidity verifies Requirement 1 on every node over the full
// execution: minimum logical slope >= 1/2 and no downward jumps.
func CheckValidity(e *trace.Execution) error {
	zero := rat.Rat{}
	for i, l := range e.Logical {
		if s := l.MinSlope(zero, e.Duration); s.Less(ValidityRate) {
			return fmt.Errorf("core: node %d logical rate %s < 1/2 violates validity", i, s)
		}
		if j := l.MinJump(zero, e.Duration); j.Sign() < 0 {
			return fmt.Errorf("core: node %d logical clock jumps down by %s", i, j.Neg())
		}
	}
	return nil
}

// GradientFunc is a candidate gradient bound f: distance → allowed skew.
type GradientFunc func(d rat.Rat) rat.Rat

// LinearGradient returns f(d) = base + slope·d.
func LinearGradient(base, slope rat.Rat) GradientFunc {
	return func(d rat.Rat) rat.Rat { return base.Add(slope.Mul(d)) }
}

// PairSkew is the observed worst skew for one node pair.
type PairSkew struct {
	I, J    int
	Dist    rat.Rat
	Skew    rat.Rat // max |L_i − L_j| over the window
	At      rat.Rat
	Allowed rat.Rat // f(dist); zero-valued when no f was supplied
}

// GradientReport summarizes an f-gradient check.
type GradientReport struct {
	OK bool
	// Worst is the pair with the largest Skew/Allowed ratio (or largest skew
	// when no bound is given).
	Worst PairSkew
	// Checked is the number of pairs examined.
	Checked int
}

// CheckGradient verifies Requirement 2 for the whole execution against f.
func CheckGradient(e *trace.Execution, f GradientFunc) GradientReport {
	rep := GradientReport{OK: true}
	var worstRatio float64
	e.Net.Pairs(func(i, j int) {
		rep.Checked++
		d := e.Net.Dist(i, j)
		allowed := f(d)
		ext := e.MaxAbsSkew(i, j, rat.Rat{}, e.Duration)
		ratio := ext.Val.Float64() / allowed.Float64()
		if ext.Val.Greater(allowed) {
			rep.OK = false
		}
		if ratio > worstRatio {
			worstRatio = ratio
			rep.Worst = PairSkew{I: i, J: j, Dist: d, Skew: ext.Val, At: ext.At, Allowed: allowed}
		}
	})
	return rep
}

// GlobalSkew returns the maximum of |L_i − L_j| over all pairs and all times.
func GlobalSkew(e *trace.Execution) PairSkew {
	var worst PairSkew
	first := true
	e.Net.Pairs(func(i, j int) {
		ext := e.MaxAbsSkew(i, j, rat.Rat{}, e.Duration)
		if first || ext.Val.Greater(worst.Skew) {
			first = false
			worst = PairSkew{I: i, J: j, Dist: e.Net.Dist(i, j), Skew: ext.Val, At: ext.At}
		}
	})
	return worst
}

// LocalSkew returns the maximum of |L_i − L_j| over distance-1 pairs — the
// f(1) the main theorem bounds from below.
func LocalSkew(e *trace.Execution) PairSkew {
	one := rat.FromInt(1)
	var worst PairSkew
	first := true
	e.Net.Pairs(func(i, j int) {
		if !e.Net.Dist(i, j).Equal(one) {
			return
		}
		ext := e.MaxAbsSkew(i, j, rat.Rat{}, e.Duration)
		if first || ext.Val.Greater(worst.Skew) {
			first = false
			worst = PairSkew{I: i, J: j, Dist: one, Skew: ext.Val, At: ext.At}
		}
	})
	return worst
}

// FinalSkewAt returns L_i − L_j at the end of the execution.
func FinalSkewAt(e *trace.Execution, i, j int) rat.Rat { return e.FinalSkew(i, j) }

// ProfilePoint is one point of the empirical gradient profile.
type ProfilePoint struct {
	Dist  rat.Rat
	Pairs int
	// MaxSkew is the empirical f̂(d): the worst skew among pairs at this
	// distance over the whole execution.
	MaxSkew rat.Rat
}

// SkewProfile computes the empirical gradient profile f̂(d) = max skew among
// pairs at each distinct distance. This is the curve Requirement 2 bounds by
// f; plotting it per algorithm is experiment E6.
func SkewProfile(e *trace.Execution) []ProfilePoint {
	byDist := map[string]*ProfilePoint{}
	e.Net.Pairs(func(i, j int) {
		d := e.Net.Dist(i, j)
		key := d.Key()
		p, ok := byDist[key]
		if !ok {
			p = &ProfilePoint{Dist: d}
			byDist[key] = p
		}
		p.Pairs++
		ext := e.MaxAbsSkew(i, j, rat.Rat{}, e.Duration)
		if ext.Val.Greater(p.MaxSkew) {
			p.MaxSkew = ext.Val
		}
	})
	out := make([]ProfilePoint, 0, len(byDist))
	for _, p := range byDist {
		out = append(out, *p)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Dist.Less(out[b].Dist) })
	return out
}

// MaxIncreasePerUnit measures sup_t (L_i(t+1) − L_i(t)) for node i over
// t ∈ [from, to−1]: the quantity the Bounded Increase lemma bounds by
// 16·f(1). For a piecewise-linear L the supremum over a sliding unit window
// is attained with a window endpoint at a breakpoint, so the search over
// candidate windows [b−1, b] and [b, b+1] for each breakpoint b is exact.
func MaxIncreasePerUnit(e *trace.Execution, i int, from, to rat.Rat) piecewise.Extremum {
	one := rat.FromInt(1)
	l := e.Logical[i]
	if to.Sub(from).Less(one) {
		return piecewise.Extremum{At: from}
	}
	best := piecewise.Extremum{At: from, Val: l.Eval(from.Add(one)).Sub(l.Eval(from))}
	consider := func(t rat.Rat) {
		if t.Less(from) || t.Greater(to.Sub(one)) {
			return
		}
		if v := l.Eval(t.Add(one)).Sub(l.Eval(t)); v.Greater(best.Val) {
			best = piecewise.Extremum{At: t, Val: v}
		}
		// Left-limit window: catches suprema approached as the window slides
		// off an upward jump.
		if v := l.EvalLeft(t.Add(one)).Sub(l.EvalLeft(t)); v.Greater(best.Val) {
			best = piecewise.Extremum{At: t, Val: v}
		}
	}
	for _, b := range l.Breakpoints() {
		consider(b)
		consider(b.Sub(one))
	}
	consider(to.Sub(one))
	return best
}
