// Clone support for the online trackers: every tracker can be duplicated
// mid-run, producing an independent tracker with identical state. Cloning is
// the observer-side half of Engine.Fork — fork the engine at a shared prefix,
// clone the trackers that watched the prefix, attach the clones to the fork,
// and each branch's metrics continue exactly as if the whole branch had been
// observed from time zero.

package core

import (
	"gcs/internal/rat"
	"gcs/internal/trace"
)

// Clone returns an independent tracker with identical state: same running
// maxima, same pending time, same deferred right-limit evaluations. The
// immutable environment (network, schedules, merged rate breakpoints) is
// shared; everything mutable is deep-copied. The onPair hook is deliberately
// not carried over — it belongs to the wrapper that installed it
// (GradientTracker.Clone rewires its own).
func (st *SkewTracker) Clone() *SkewTracker {
	return &SkewTracker{
		net:       st.net,
		scheds:    st.scheds,
		n:         st.n,
		cur:       append([]trace.Decl(nil), st.cur...),
		left:      append([]trace.Decl(nil), st.left...),
		breaks:    st.breaks,
		nextBreak: st.nextBreak,
		pending:   st.pending,
		dirty:     append([]int(nil), st.dirty...),
		isDirty:   append([]bool(nil), st.isDirty...),
		pairSkew:  append([]rat.Rat(nil), st.pairSkew...),
		pairAt:    append([]rat.Rat(nil), st.pairAt...),
		pairSet:   append([]bool(nil), st.pairSet...),
		global:    st.global,
		local:     st.local,
		err:       st.err,

		// Fixed lane: compiled schedule mirrors are immutable and shared;
		// tick mirrors deep-copy (all nil when the lane was never adopted).
		// Flush scratch is per-tracker and reallocates on first use.
		scale:      st.scale,
		fscheds:    st.fscheds,
		curT:       append([]declTicks(nil), st.curT...),
		leftT:      append([]declTicks(nil), st.leftT...),
		pendingT:   st.pendingT,
		pendingOK:  st.pendingOK,
		pairSkewT:  append([]int64(nil), st.pairSkewT...),
		pairTickOK: append([]bool(nil), st.pairTickOK...),
	}
}

// Clone returns an independent gradient tracker: the embedded SkewTracker is
// cloned and the first-violation hook is rewired onto the clone.
func (gt *GradientTracker) Clone() *GradientTracker {
	c := &GradientTracker{
		SkewTracker: gt.SkewTracker.Clone(),
		f:           gt.f,
		allowed:     gt.allowed, // immutable after construction
	}
	if gt.violation != nil {
		v := *gt.violation
		c.violation = &v
	}
	c.SkewTracker.onPair = c.observePair
	return c
}

// Clone returns an independent validity tracker with identical state.
func (vt *ValidityTracker) Clone() *ValidityTracker {
	return &ValidityTracker{
		scheds:  vt.scheds,
		cur:     append([]trace.Decl(nil), vt.cur...),
		leftVal: append([]rat.Rat(nil), vt.leftVal...),
		err:     vt.err,
	}
}
