package core

import (
	"testing"

	"gcs/internal/clock"
	"gcs/internal/engine"
	"gcs/internal/network"
	"gcs/internal/rat"
	"gcs/internal/trace"
)

// gossipNode floods its logical value to neighbors every period and adopts
// greater received values — enough protocol dynamics (jumps, timers, relays)
// to stress the trackers.
type gossipNode struct {
	period rat.Rat
}

func (n *gossipNode) Init(rt *engine.Runtime) { rt.SetTimerAtHW(rt.HW().Add(n.period), 1) }

func (n *gossipNode) OnTimer(rt *engine.Runtime, _ int) {
	for _, j := range rt.Neighbors() {
		rt.Send(j, valMsg{Val: rt.Logical()})
	}
	rt.SetTimerAtHW(rt.HW().Add(n.period), 1)
}

func (n *gossipNode) OnMessage(rt *engine.Runtime, _ int, msg engine.Message) {
	if m, ok := msg.(valMsg); ok && m.Val.Greater(rt.Logical()) {
		rt.SetLogical(m.Val, rat.FromInt(1))
	}
}

type valMsg struct{ Val rat.Rat }

func (m valMsg) MsgString() string { return "v:" + m.Val.String() }

type gossipProtocol struct{ period rat.Rat }

func (p gossipProtocol) Name() string               { return "test-gossip" }
func (p gossipProtocol) NewNode(id int) engine.Node { return &gossipNode{period: p.period} }
func (p gossipProtocol) CloneState(n engine.Node) engine.Node {
	c := *n.(*gossipNode)
	return &c
}

// runBoth executes cfg twice — once recorded, once streamed with trackers —
// and returns the recorded execution plus the online trackers after the
// final horizon.
func runBoth(t *testing.T, cfg engine.Config, f GradientFunc) (*trace.Execution, *SkewTracker, *GradientTracker, *ValidityTracker) {
	t.Helper()
	exec, err := engine.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := engine.New(cfg.Net,
		engine.WithProtocol(cfg.Protocol),
		engine.WithAdversary(cfg.Adversary),
		engine.WithSchedules(cfg.Schedules),
		engine.WithRho(cfg.Rho),
	)
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewSkewTracker(cfg.Net, cfg.Schedules)
	if err != nil {
		t.Fatal(err)
	}
	gt, err := NewGradientTracker(cfg.Net, cfg.Schedules, f)
	if err != nil {
		t.Fatal(err)
	}
	vt := NewValidityTracker(cfg.Schedules)
	eng.Observe(st, gt, vt)
	if err := eng.RunUntil(cfg.Duration); err != nil {
		t.Fatal(err)
	}
	if err := st.Err(); err != nil {
		t.Fatal(err)
	}
	return exec, st, gt, vt
}

func checkTrackersMatch(t *testing.T, exec *trace.Execution, st *SkewTracker, gt *GradientTracker, vt *ValidityTracker, f GradientFunc) {
	t.Helper()
	if g, og := GlobalSkew(exec), st.Global(); !og.Skew.Equal(g.Skew) {
		t.Errorf("global skew: online %s (pair %d,%d at %s) vs recorded %s (pair %d,%d at %s)",
			og.Skew, og.I, og.J, og.At, g.Skew, g.I, g.J, g.At)
	}
	if l, ol := LocalSkew(exec), st.Local(); !ol.Skew.Equal(l.Skew) {
		t.Errorf("local skew: online %s vs recorded %s", ol.Skew, l.Skew)
	}
	exec.Net.Pairs(func(i, j int) {
		want := exec.MaxAbsSkew(i, j, rat.Rat{}, exec.Duration).Val
		if got := st.Pair(i, j).Skew; !got.Equal(want) {
			t.Errorf("pair (%d,%d): online %s vs recorded %s", i, j, got, want)
		}
	})
	prof, oprof := SkewProfile(exec), st.Profile()
	if len(prof) != len(oprof) {
		t.Fatalf("profile lengths: online %d vs recorded %d", len(oprof), len(prof))
	}
	for k := range prof {
		if !prof[k].Dist.Equal(oprof[k].Dist) || prof[k].Pairs != oprof[k].Pairs || !prof[k].MaxSkew.Equal(oprof[k].MaxSkew) {
			t.Errorf("profile[%d]: online %+v vs recorded %+v", k, oprof[k], prof[k])
		}
	}
	rep, orep := CheckGradient(exec, f), gt.Report()
	if rep.OK != orep.OK || rep.Checked != orep.Checked {
		t.Errorf("gradient: online OK=%v checked=%d vs recorded OK=%v checked=%d",
			orep.OK, orep.Checked, rep.OK, rep.Checked)
	}
	if rep.Worst.I != orep.Worst.I || rep.Worst.J != orep.Worst.J || !rep.Worst.Skew.Equal(orep.Worst.Skew) {
		t.Errorf("gradient worst: online (%d,%d)=%s vs recorded (%d,%d)=%s",
			orep.Worst.I, orep.Worst.J, orep.Worst.Skew, rep.Worst.I, rep.Worst.J, rep.Worst.Skew)
	}
	perr, oerr := CheckValidity(exec), vt.Err()
	if (perr == nil) != (oerr == nil) {
		t.Errorf("validity: online %v vs recorded %v", oerr, perr)
	}
	if gt.Violated() == rep.OK {
		t.Errorf("Violated()=%v inconsistent with gradient OK=%v", gt.Violated(), rep.OK)
	}
}

func TestOnlineMatchesPostHocConstantRates(t *testing.T) {
	net, err := network.Line(6)
	if err != nil {
		t.Fatal(err)
	}
	scheds := []*clock.Schedule{
		clock.Constant(rat.MustFrac(5, 4)),
		clock.Constant(rat.FromInt(1)),
		clock.Constant(rat.MustFrac(9, 8)),
		clock.Constant(rat.FromInt(1)),
		clock.Constant(rat.MustFrac(7, 8)),
		clock.Constant(rat.FromInt(1)),
	}
	cfg := engine.Config{
		Net:       net,
		Schedules: scheds,
		Adversary: engine.HashAdversary{Seed: 11, Denom: 8},
		Protocol:  gossipProtocol{period: rat.FromInt(1)},
		Duration:  rat.FromInt(16),
		Rho:       rat.MustFrac(1, 2),
	}
	f := LinearGradient(rat.FromInt(1), rat.MustFrac(1, 2))
	exec, st, gt, vt := runBoth(t, cfg, f)
	checkTrackersMatch(t, exec, st, gt, vt, f)
}

// TestOnlineMatchesPostHocRateBreaks exercises the merged rate-breakpoint
// path: skew maxima attained at interior hardware rate changes, between
// declarations, must be caught online.
func TestOnlineMatchesPostHocRateBreaks(t *testing.T) {
	net, err := network.Line(4)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(segs ...clock.RateSeg) *clock.Schedule {
		s, err := clock.FromRates(segs)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	scheds := []*clock.Schedule{
		mk(clock.RateSeg{At: rat.Rat{}, Rate: rat.MustFrac(3, 2)},
			clock.RateSeg{At: rat.FromInt(5), Rate: rat.MustFrac(1, 2)},
			clock.RateSeg{At: rat.FromInt(9), Rate: rat.FromInt(1)}),
		mk(clock.RateSeg{At: rat.Rat{}, Rate: rat.MustFrac(1, 2)},
			clock.RateSeg{At: rat.MustFrac(7, 2), Rate: rat.MustFrac(3, 2)}),
		clock.Constant(rat.FromInt(1)),
		mk(clock.RateSeg{At: rat.Rat{}, Rate: rat.FromInt(1)},
			clock.RateSeg{At: rat.FromInt(5), Rate: rat.MustFrac(3, 2)},
			clock.RateSeg{At: rat.FromInt(6), Rate: rat.MustFrac(1, 2)}),
	}
	cfg := engine.Config{
		Net:       net,
		Schedules: scheds,
		Adversary: engine.Midpoint(),
		Protocol:  gossipProtocol{period: rat.FromInt(2)},
		Duration:  rat.FromInt(12),
		Rho:       rat.MustFrac(1, 2),
	}
	f := LinearGradient(rat.FromInt(2), rat.FromInt(1))
	exec, st, gt, vt := runBoth(t, cfg, f)
	checkTrackersMatch(t, exec, st, gt, vt, f)
}

// redeclareNode declares twice at the same instant — first a bogus downward
// value, then the corrected one. The compiled clock only ever contains the
// final same-instant declaration, so neither checker may flag it.
type redeclareNode struct{ id int }

func (n *redeclareNode) Init(rt *engine.Runtime) {
	if n.id == 0 {
		rt.SetTimerAtHW(rat.FromInt(2), 1)
	}
}

func (n *redeclareNode) OnTimer(rt *engine.Runtime, _ int) {
	l := rt.Logical()
	rt.SetLogical(l.Sub(rat.FromInt(5)), rat.FromInt(1)) // transient: replaced below
	rt.SetLogical(l.Add(rat.FromInt(1)), rat.FromInt(1))
}

func (n *redeclareNode) OnMessage(*engine.Runtime, int, engine.Message) {}

type redeclareProtocol struct{}

func (redeclareProtocol) Name() string               { return "redeclare" }
func (redeclareProtocol) NewNode(id int) engine.Node { return &redeclareNode{id: id} }
func (redeclareProtocol) CloneState(n engine.Node) engine.Node {
	c := *n.(*redeclareNode)
	return &c
}

func TestSameInstantRedeclarationCollapses(t *testing.T) {
	net, err := network.TwoNode(rat.FromInt(1))
	if err != nil {
		t.Fatal(err)
	}
	scheds := []*clock.Schedule{clock.Constant(rat.FromInt(1)), clock.Constant(rat.FromInt(1))}
	cfg := engine.Config{
		Net:       net,
		Schedules: scheds,
		Adversary: engine.Midpoint(),
		Protocol:  redeclareProtocol{},
		Duration:  rat.FromInt(6),
		Rho:       rat.MustFrac(1, 2),
	}
	f := LinearGradient(rat.FromInt(2), rat.FromInt(1))
	exec, st, gt, vt := runBoth(t, cfg, f)
	if err := CheckValidity(exec); err != nil {
		t.Fatalf("recorded execution should be valid (intermediate declaration collapses): %v", err)
	}
	checkTrackersMatch(t, exec, st, gt, vt, f)
	// The collapsed run jumps from 2 to 3 at t=2: global skew is 1.
	if !st.Global().Skew.Equal(rat.FromInt(1)) {
		t.Errorf("global skew = %s, want 1", st.Global().Skew)
	}
}

// dropNode jumps its clock downward at t=3 — a genuine validity violation.
type dropNode struct{ id int }

func (n *dropNode) Init(rt *engine.Runtime) {
	if n.id == 0 {
		rt.SetTimerAtHW(rat.FromInt(3), 1)
	}
}

func (n *dropNode) OnTimer(rt *engine.Runtime, _ int) {
	rt.SetLogical(rt.Logical().Sub(rat.FromInt(2)), rat.FromInt(1))
}

func (n *dropNode) OnMessage(*engine.Runtime, int, engine.Message) {}

type dropProtocol struct{}

func (dropProtocol) Name() string               { return "drop" }
func (dropProtocol) NewNode(id int) engine.Node { return &dropNode{id: id} }
func (dropProtocol) CloneState(n engine.Node) engine.Node {
	c := *n.(*dropNode)
	return &c
}

// slowNode runs its logical clock at multiplier 1/4 — a rate violation.
type slowNode struct{}

func (slowNode) Init(rt *engine.Runtime)                        { rt.SetLogical(rt.Logical(), rat.MustFrac(1, 4)) }
func (slowNode) OnTimer(*engine.Runtime, int)                   {}
func (slowNode) OnMessage(*engine.Runtime, int, engine.Message) {}

type slowProtocol struct{}

func (slowProtocol) Name() string                         { return "slow" }
func (slowProtocol) NewNode(int) engine.Node              { return slowNode{} }
func (slowProtocol) CloneState(n engine.Node) engine.Node { return n }

func TestValidityViolationsDetectedOnline(t *testing.T) {
	net, err := network.TwoNode(rat.FromInt(1))
	if err != nil {
		t.Fatal(err)
	}
	scheds := []*clock.Schedule{clock.Constant(rat.FromInt(1)), clock.Constant(rat.FromInt(1))}
	for _, tc := range []struct {
		name  string
		proto engine.Protocol
	}{
		{"downward jump", dropProtocol{}},
		{"slow rate", slowProtocol{}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := engine.Config{
				Net:       net,
				Schedules: scheds,
				Adversary: engine.Midpoint(),
				Protocol:  tc.proto,
				Duration:  rat.FromInt(6),
				Rho:       rat.MustFrac(1, 2),
			}
			f := LinearGradient(rat.FromInt(100), rat.FromInt(1))
			exec, st, gt, vt := runBoth(t, cfg, f)
			if CheckValidity(exec) == nil {
				t.Fatal("recorded execution unexpectedly valid")
			}
			if vt.Err() == nil {
				t.Fatal("online validity tracker missed the violation")
			}
			checkTrackersMatch(t, exec, st, gt, vt, f)
		})
	}
}

// TestGradientFirstViolation: the tracker must pinpoint when the allowed
// skew is first exceeded, enabling early stopping.
func TestGradientFirstViolation(t *testing.T) {
	net, err := network.TwoNode(rat.FromInt(1))
	if err != nil {
		t.Fatal(err)
	}
	scheds := []*clock.Schedule{clock.Constant(rat.MustFrac(3, 2)), clock.Constant(rat.FromInt(1))}
	// No messages: skew grows linearly at rate 1/2, exceeding 1 after t=2.
	cfg := engine.Config{
		Net:       net,
		Schedules: scheds,
		Adversary: engine.Midpoint(),
		Protocol:  gossipProtocol{period: rat.FromInt(100)},
		Duration:  rat.FromInt(8),
		Rho:       rat.MustFrac(1, 2),
	}
	f := LinearGradient(rat.FromInt(1), rat.Rat{})
	_, _, gt, _ := runBoth(t, cfg, f)
	v, ok := gt.Violation()
	if !ok {
		t.Fatal("no violation recorded")
	}
	if !v.Skew.Greater(v.Allowed) {
		t.Errorf("violation skew %s not above allowed %s", v.Skew, v.Allowed)
	}
	if v.At.Greater(rat.FromInt(8)) {
		t.Errorf("violation at %s beyond horizon", v.At)
	}
}

func TestTrackerMisuseSurfacesError(t *testing.T) {
	net, err := network.TwoNode(rat.FromInt(1))
	if err != nil {
		t.Fatal(err)
	}
	scheds := []*clock.Schedule{clock.Constant(rat.FromInt(1)), clock.Constant(rat.FromInt(1))}
	st, err := NewSkewTracker(net, scheds)
	if err != nil {
		t.Fatal(err)
	}
	st.Flush(rat.FromInt(5))
	st.OnDeclare(trace.Decl{Node: 0, Real: rat.FromInt(3), Value: rat.FromInt(3), Mult: rat.FromInt(1), HW0: rat.FromInt(3)})
	if st.Err() == nil {
		t.Error("out-of-order declaration not surfaced")
	}
	if _, err := NewSkewTracker(net, scheds[:1]); err == nil {
		t.Error("schedule count mismatch accepted")
	}
}
