// Schedule-swap support for the online trackers: the observer-side half of
// Engine.SwapSchedule. When a fork swaps in a mutated rate schedule that
// agrees with the old one on the dispatched prefix, a tracker cloned from the
// trunk must watch the suffix under the new schedule — its history (running
// maxima, declarations, consumed breakpoints) stays valid precisely because
// the schedules agree before the swap point, while future clock evaluations
// and rate breakpoints come from the replacement.

package core

import (
	"fmt"

	"gcs/internal/clock"
)

// SwapSchedule replaces node's hardware rate schedule. The caller must
// guarantee the engine-side precondition (Engine.SwapSchedule): the new
// schedule agrees with the current one on [0, Time()), so every evaluation
// already folded into the running maxima would have come out identically.
// The tracker rebuilds its merged breakpoint cursor — breakpoints at or
// before the processed time count as consumed, exactly as a tracker that
// watched the whole run under the new schedule would have consumed them —
// and recompiles the node's fixed-lane mirror; a replacement that does not
// fit the adopted tick grid drops the tracker to the rat lane (arithmetic
// changes, results do not).
func (st *SkewTracker) SwapSchedule(node int, s *clock.Schedule) error {
	if node < 0 || node >= st.n {
		return fmt.Errorf("core: SwapSchedule of invalid node %d", node)
	}
	if s == nil {
		return fmt.Errorf("core: SwapSchedule with nil schedule")
	}
	// Copy on write: scheds and breaks are shared with the tracker this one
	// was cloned from.
	scheds := append([]*clock.Schedule(nil), st.scheds...)
	scheds[node] = s
	st.scheds = scheds
	st.breaks = mergedBreaks(scheds)
	nb := 0
	for nb < len(st.breaks) && st.breaks[nb].at.LessEq(st.pending) {
		nb++
	}
	st.nextBreak = nb
	if st.scale > 0 {
		if f, ok := s.CompileFixed(st.scale); ok {
			fs := append([]*clock.FixedSchedule(nil), st.fscheds...)
			fs[node] = f
			st.fscheds = fs
		} else {
			st.scale = 0
			st.fscheds = nil
		}
	}
	return nil
}

// SwapSchedule replaces node's hardware rate schedule, under the same
// agreement precondition as SkewTracker.SwapSchedule. Open declarations are
// closed out against the replacement: for windows that straddle the swap
// point this is still exact, because the schedules agree on the pre-swap
// part of the window.
func (vt *ValidityTracker) SwapSchedule(node int, s *clock.Schedule) error {
	if node < 0 || node >= len(vt.scheds) {
		return fmt.Errorf("core: SwapSchedule of invalid node %d", node)
	}
	if s == nil {
		return fmt.Errorf("core: SwapSchedule with nil schedule")
	}
	scheds := append([]*clock.Schedule(nil), vt.scheds...)
	scheds[node] = s
	vt.scheds = scheds
	return nil
}
