// Online (streaming) counterparts of the post-hoc checkers: observers that
// maintain running skew and validity metrics while an engine runs, in
// O(nodes²) state and with no trace retention.
//
// Exactness. Every logical clock L_i is piecewise linear in real time, with
// breakpoints only at logical-clock declarations (Runtime.SetLogical) and at
// hardware rate-schedule breakpoints. The maximum of |L_i − L_j| over an
// interval on which both clocks are linear is attained at the interval's
// endpoints, so a tracker that evaluates every pair at every breakpoint of
// either clock — from the left and from the right — computes exactly the
// same maxima as the post-hoc checkers over a recorded execution. The
// trackers subscribe to declarations through the engine's ClockObserver
// extension, process the (statically known) rate breakpoints lazily in time
// order, and close out the final interval at each horizon notification.
//
// Same-time subtleties are handled to match the compiled piecewise clocks:
// several declarations by one node at the same instant collapse to the last
// one (intermediate values never exist in the compiled clock, so they are
// not counted here either), and right-limit evaluations are deferred until
// time advances so that all nodes' same-instant declarations are seen
// together.
package core

import (
	"fmt"

	"gcs/internal/clock"
	"gcs/internal/fixed"
	"gcs/internal/network"
	"gcs/internal/rat"
	"gcs/internal/trace"
)

// rateBreak is one merged hardware-schedule breakpoint: the set of nodes
// whose rate changes at this real time.
type rateBreak struct {
	at    rat.Rat
	nodes []int
}

// mergedBreaks collects every schedule's interior rate breakpoints, sorted
// by time, grouped by equal times.
func mergedBreaks(scheds []*clock.Schedule) []rateBreak {
	var out []rateBreak
	for i, s := range scheds {
		for _, seg := range s.Rates()[1:] {
			out = append(out, rateBreak{at: seg.At, nodes: []int{i}})
		}
	}
	// Insertion-style sort + merge: schedules are small; exact comparison.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].at.Less(out[j-1].at); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	merged := out[:0]
	for _, b := range out {
		if n := len(merged); n > 0 && merged[n-1].at.Equal(b.at) {
			merged[n-1].nodes = append(merged[n-1].nodes, b.nodes...)
			continue
		}
		merged = append(merged, b)
	}
	return merged
}

// SkewTracker is an engine observer maintaining the running global skew,
// local (distance-1) skew, and per-pair worst skew of a streaming run. State
// is O(nodes²) and independent of event count. Attach it with
// Engine.Observe before the first step; read results any time — they are
// exact through the last horizon notification (or explicit Flush).
type SkewTracker struct {
	net    *network.Network
	scheds []*clock.Schedule
	n      int

	cur  []trace.Decl // current declaration per node
	left []trace.Decl // declaration in effect just before cur.Real

	breaks    []rateBreak
	nextBreak int

	pending rat.Rat // time of the last processed notification
	dirty   []int   // nodes whose post-state at pending awaits right-limit eval
	isDirty []bool

	pairSkew []rat.Rat // upper-triangle running max |L_i − L_j|
	pairAt   []rat.Rat // time attaining it
	pairSet  []bool

	global PairSkew
	local  PairSkew

	// onPair, when set, fires whenever a pair's running maximum increases.
	// GradientTracker uses it for first-violation detection.
	onPair func(i, j int, val, at rat.Rat)

	// Fixed-point lane (see online_fixed.go): scale > 0 after AdoptFixedLane
	// mirrors declarations, pending time, and pair maxima in int64 ticks so
	// the per-declaration pair sweep runs on integer arithmetic,
	// value-by-value falling back to rat.
	scale      int64
	fscheds    []*clock.FixedSchedule
	curT       []declTicks
	leftT      []declTicks
	pendingT   int64
	pendingOK  bool
	pairSkewT  []int64
	pairTickOK []bool
	// Flush scratch: per-node logical values at the flush instant.
	flushT   []int64
	flushTOK []bool
	flushR   []rat.Rat
	flushROK []bool

	err error
}

// NewSkewTracker returns a tracker for a run over net with the given
// hardware schedules (one per node).
func NewSkewTracker(net *network.Network, scheds []*clock.Schedule) (*SkewTracker, error) {
	if net == nil {
		return nil, fmt.Errorf("core: nil network")
	}
	n := net.N()
	if len(scheds) != n {
		return nil, fmt.Errorf("core: %d schedules for %d nodes", len(scheds), n)
	}
	st := &SkewTracker{
		net:      net,
		scheds:   scheds,
		n:        n,
		cur:      make([]trace.Decl, n),
		left:     make([]trace.Decl, n),
		isDirty:  make([]bool, n),
		breaks:   mergedBreaks(scheds),
		pairSkew: make([]rat.Rat, n*n),
		pairAt:   make([]rat.Rat, n*n),
		pairSet:  make([]bool, n*n),
	}
	one := rat.FromInt(1)
	for i := 0; i < n; i++ {
		// The implicit starting declaration: L = H.
		st.cur[i] = trace.Decl{Node: i, Mult: one}
		st.left[i] = st.cur[i]
	}
	return st, nil
}

// OnAction implements the engine Observer interface (no-op: skew depends
// only on declarations, rate breaks, and the horizon).
func (st *SkewTracker) OnAction(trace.Action) {}

// OnSend implements the engine Observer interface (no-op).
func (st *SkewTracker) OnSend(trace.MsgRecord) {}

// OnDeliver implements the engine Observer interface (no-op).
func (st *SkewTracker) OnDeliver(trace.MsgRecord) {}

// logicalAt evaluates node i's logical clock at real time t under
// declaration d.
func (st *SkewTracker) logicalAt(d trace.Decl, i int, t rat.Rat) rat.Rat {
	return d.Value.Add(d.Mult.Mul(st.scheds[i].HW(t).Sub(d.HW0)))
}

// declBefore returns node k's declaration in effect just before time t
// (== pending).
func (st *SkewTracker) declBefore(k int, t rat.Rat) trace.Decl {
	if st.cur[k].Real.Equal(t) {
		return st.left[k]
	}
	return st.cur[k]
}

// updatePair folds one pair evaluation into the running maxima, reporting
// whether it became the pair's new maximum. Storing through the rat lane
// invalidates the pair's tick mirror; updatePairT refreshes it.
func (st *SkewTracker) updatePair(i, j int, val, at rat.Rat) bool {
	if j < i {
		i, j = j, i
	}
	idx := i*st.n + j
	if st.pairSet[idx] && !val.Greater(st.pairSkew[idx]) {
		return false
	}
	st.pairSet[idx] = true
	st.pairSkew[idx] = val
	st.pairAt[idx] = at
	if st.pairTickOK != nil {
		st.pairTickOK[idx] = false
	}
	if st.onPair != nil {
		st.onPair(i, j, val, at)
	}
	if val.Greater(st.global.Skew) {
		st.global = PairSkew{I: i, J: j, Dist: st.net.Dist(i, j), Skew: val, At: at}
	}
	if val.Greater(st.local.Skew) && st.net.Dist(i, j).Equal(rat.FromInt(1)) {
		st.local = PairSkew{I: i, J: j, Dist: rat.FromInt(1), Skew: val, At: at}
	}
	return true
}

// evalNode evaluates every pair involving k at time t under the current
// declarations. tT/tOK carry t on the tick grid when the fixed lane is on;
// pairs whose clocks evaluate in ticks compare in ticks, the rest go
// through the rat lane.
func (st *SkewTracker) evalNode(k int, t rat.Rat, tT int64, tOK bool) {
	if tOK && st.scale > 0 {
		if lkT, ok := st.logicalAtT(st.curT[k], k, tT); ok {
			var lk rat.Rat
			lkOK := false
			for j := 0; j < st.n; j++ {
				if j == k {
					continue
				}
				if ljT, ok := st.logicalAtT(st.curT[j], j, tT); ok {
					if d, ok := fixed.Sub(lkT, ljT); ok {
						if d < 0 {
							d = -d
						}
						st.updatePairT(k, j, d, t)
						continue
					}
				}
				if !lkOK {
					lk = st.logicalAt(st.cur[k], k, t)
					lkOK = true
				}
				lj := st.logicalAt(st.cur[j], j, t)
				st.updatePair(k, j, lk.Sub(lj).Abs(), t)
			}
			return
		}
	}
	lk := st.logicalAt(st.cur[k], k, t)
	for j := 0; j < st.n; j++ {
		if j == k {
			continue
		}
		lj := st.logicalAt(st.cur[j], j, t)
		st.updatePair(k, j, lk.Sub(lj).Abs(), t)
	}
}

// advance moves the tracker's clock from pending to t > pending: it flushes
// deferred right-limit evaluations at pending, then processes every
// hardware rate breakpoint in (pending, t].
func (st *SkewTracker) advance(t rat.Rat) {
	for _, k := range st.dirty {
		st.isDirty[k] = false
		st.evalNode(k, st.pending, st.pendingT, st.pendingOK)
	}
	st.dirty = st.dirty[:0]
	for st.nextBreak < len(st.breaks) && st.breaks[st.nextBreak].at.LessEq(t) {
		br := st.breaks[st.nextBreak]
		st.nextBreak++
		if !br.at.Greater(st.pending) {
			continue
		}
		atT, atOK := fixed.FromRat(br.at, st.scale)
		for _, k := range br.nodes {
			st.evalNode(k, br.at, atT, atOK)
			// A declaration may still land at exactly this time; re-check the
			// post-state once time moves past it.
			if br.at.Equal(t) && !st.isDirty[k] {
				st.isDirty[k] = true
				st.dirty = append(st.dirty, k)
			}
		}
	}
	st.pending = t
	st.pendingT, st.pendingOK = fixed.FromRat(t, st.scale)
}

// OnDeclare implements the engine ClockObserver interface: it evaluates the
// affected pairs at the declaration instant from the left, and defers the
// right-limit evaluation until time advances (so that several same-instant
// declarations are seen together, exactly like the compiled clocks).
func (st *SkewTracker) OnDeclare(d trace.Decl) {
	if st.err != nil {
		return
	}
	t := d.Real
	if t.Less(st.pending) {
		st.err = fmt.Errorf("core: declaration at %s behind tracker time %s (observer attached mid-run or flushed ahead?)", t, st.pending)
		return
	}
	if t.Greater(st.pending) {
		st.advance(t)
	}
	i := d.Node
	// Left limits at t for every pair involving i. After advance, pending == t,
	// so pendingT carries t on the tick grid.
	st.evalLeftLimits(i, t, st.pendingT, st.pendingOK)
	if st.cur[i].Real.Less(t) {
		st.left[i] = st.cur[i]
		if st.scale > 0 {
			st.leftT[i] = st.curT[i]
		}
	}
	st.cur[i] = d
	if st.scale > 0 {
		st.curT[i] = st.declTicksOf(d)
	}
	if !st.isDirty[i] {
		st.isDirty[i] = true
		st.dirty = append(st.dirty, i)
	}
}

// evalLeftLimits evaluates every pair involving i at t under the
// declarations in effect just before t, mirroring evalNode's lane split.
func (st *SkewTracker) evalLeftLimits(i int, t rat.Rat, tT int64, tOK bool) {
	if tOK && st.scale > 0 {
		if liT, ok := st.logicalAtT(st.declBeforeT(i, t), i, tT); ok {
			var li rat.Rat
			liOK := false
			for j := 0; j < st.n; j++ {
				if j == i {
					continue
				}
				if ljT, ok := st.logicalAtT(st.declBeforeT(j, t), j, tT); ok {
					if d, ok := fixed.Sub(liT, ljT); ok {
						if d < 0 {
							d = -d
						}
						st.updatePairT(i, j, d, t)
						continue
					}
				}
				if !liOK {
					li = st.logicalAt(st.declBefore(i, t), i, t)
					liOK = true
				}
				lj := st.logicalAt(st.declBefore(j, t), j, t)
				st.updatePair(i, j, li.Sub(lj).Abs(), t)
			}
			return
		}
	}
	li := st.logicalAt(st.declBefore(i, t), i, t)
	for j := 0; j < st.n; j++ {
		if j == i {
			continue
		}
		lj := st.logicalAt(st.declBefore(j, t), j, t)
		st.updatePair(i, j, li.Sub(lj).Abs(), t)
	}
}

// Flush advances the tracker through time t and evaluates every pair at t,
// closing out the interval maxima exactly. Results are exact for the window
// [0, t] afterwards. Monotone: t must not precede an earlier flush or
// declaration.
func (st *SkewTracker) Flush(t rat.Rat) {
	if st.err != nil {
		return
	}
	if t.Less(st.pending) {
		st.err = fmt.Errorf("core: flush at %s behind tracker time %s", t, st.pending)
		return
	}
	if t.Greater(st.pending) {
		st.advance(t)
	}
	// Precompute each node's logical value at t once — in ticks when exact,
	// through the rat lane lazily otherwise — so the all-pairs sweep repeats
	// no clock evaluations.
	if st.flushR == nil {
		st.flushR = make([]rat.Rat, st.n)
		st.flushROK = make([]bool, st.n)
		st.flushT = make([]int64, st.n)
		st.flushTOK = make([]bool, st.n)
	}
	tT, tOK := st.pendingT, st.pendingOK // pending == t after advance
	for i := 0; i < st.n; i++ {
		st.flushROK[i] = false
		st.flushTOK[i] = false
		if tOK && st.scale > 0 {
			st.flushT[i], st.flushTOK[i] = st.logicalAtT(st.curT[i], i, tT)
		}
	}
	st.net.Pairs(func(i, j int) {
		if st.flushTOK[i] && st.flushTOK[j] {
			if d, ok := fixed.Sub(st.flushT[i], st.flushT[j]); ok {
				if d < 0 {
					d = -d
				}
				st.updatePairT(i, j, d, t)
				return
			}
		}
		if !st.flushROK[i] {
			st.flushR[i] = st.logicalAt(st.cur[i], i, t)
			st.flushROK[i] = true
		}
		if !st.flushROK[j] {
			st.flushR[j] = st.logicalAt(st.cur[j], j, t)
			st.flushROK[j] = true
		}
		st.updatePair(i, j, st.flushR[i].Sub(st.flushR[j]).Abs(), t)
	})
	// The all-pairs evaluation covers every deferred right-limit at t.
	for _, k := range st.dirty {
		st.isDirty[k] = false
	}
	st.dirty = st.dirty[:0]
}

// OnHorizon implements the engine HorizonObserver interface: RunUntil and
// RunFor flush the tracker at each completed horizon automatically.
func (st *SkewTracker) OnHorizon(t rat.Rat) { st.Flush(t) }

// Err reports a tracker-consistency failure (observer attached or flushed
// out of order); results are unreliable when non-nil.
func (st *SkewTracker) Err() error { return st.err }

// Time returns the time through which the tracker has processed
// notifications.
func (st *SkewTracker) Time() rat.Rat { return st.pending }

// Global returns the running global skew: the worst |L_i − L_j| over all
// pairs and all processed times, with one witness pair and time.
func (st *SkewTracker) Global() PairSkew { return st.global }

// Local returns the running local skew: the worst |L_i − L_j| over
// distance-1 pairs.
func (st *SkewTracker) Local() PairSkew { return st.local }

// Pair returns the running worst skew for one pair.
func (st *SkewTracker) Pair(i, j int) PairSkew {
	if j < i {
		i, j = j, i
	}
	idx := i*st.n + j
	return PairSkew{I: i, J: j, Dist: st.net.Dist(i, j), Skew: st.pairSkew[idx], At: st.pairAt[idx]}
}

// Profile returns the running empirical gradient profile f̂(d) = max skew
// among pairs at each distinct distance, mirroring SkewProfile on a
// recorded execution.
func (st *SkewTracker) Profile() []ProfilePoint {
	byDist := map[string]*ProfilePoint{}
	var order []string
	st.net.Pairs(func(i, j int) {
		d := st.net.Dist(i, j)
		key := d.Key()
		p, ok := byDist[key]
		if !ok {
			p = &ProfilePoint{Dist: d}
			byDist[key] = p
			order = append(order, key)
		}
		p.Pairs++
		if v := st.pairSkew[i*st.n+j]; v.Greater(p.MaxSkew) {
			p.MaxSkew = v
		}
	})
	out := make([]ProfilePoint, 0, len(byDist))
	for _, key := range order {
		out = append(out, *byDist[key])
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Dist.Less(out[j-1].Dist); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// GradientTracker is a SkewTracker that additionally checks Requirement 2
// (the f-gradient property) online: it records the first moment any pair's
// skew exceeds f(d(i,j)), which lets a streaming driver stop a run on the
// first violation instead of scanning a recorded trace afterwards.
type GradientTracker struct {
	*SkewTracker
	f         GradientFunc
	allowed   []rat.Rat // f(d) per pair, upper triangle
	violation *PairSkew
}

// NewGradientTracker returns a tracker checking |L_i − L_j| <= f(d(i,j))
// online.
func NewGradientTracker(net *network.Network, scheds []*clock.Schedule, f GradientFunc) (*GradientTracker, error) {
	st, err := NewSkewTracker(net, scheds)
	if err != nil {
		return nil, err
	}
	gt := &GradientTracker{SkewTracker: st, f: f, allowed: make([]rat.Rat, st.n*st.n)}
	net.Pairs(func(i, j int) {
		gt.allowed[i*st.n+j] = f(net.Dist(i, j))
	})
	st.onPair = gt.observePair
	return gt, nil
}

func (gt *GradientTracker) observePair(i, j int, val, at rat.Rat) {
	if gt.violation != nil {
		return
	}
	if val.Greater(gt.allowed[i*gt.n+j]) {
		v := PairSkew{I: i, J: j, Dist: gt.net.Dist(i, j), Skew: val, At: at, Allowed: gt.allowed[i*gt.n+j]}
		gt.violation = &v
	}
}

// Violated reports whether some pair has exceeded its allowed skew.
func (gt *GradientTracker) Violated() bool { return gt.violation != nil }

// Violation returns the first recorded violation.
func (gt *GradientTracker) Violation() (PairSkew, bool) {
	if gt.violation == nil {
		return PairSkew{}, false
	}
	return *gt.violation, true
}

// Report summarizes the check exactly like CheckGradient on a recorded
// execution: OK, the pair with the largest skew/allowed ratio, and the
// number of pairs examined. Call after a flush (or horizon) for results
// exact through that time.
func (gt *GradientTracker) Report() GradientReport {
	rep := GradientReport{OK: true}
	var worstRatio float64
	gt.net.Pairs(func(i, j int) {
		rep.Checked++
		idx := i*gt.n + j
		allowed := gt.allowed[idx]
		val := gt.pairSkew[idx]
		ratio := val.Float64() / allowed.Float64()
		if val.Greater(allowed) {
			rep.OK = false
		}
		if ratio > worstRatio {
			worstRatio = ratio
			rep.Worst = PairSkew{I: i, J: j, Dist: gt.net.Dist(i, j), Skew: val, At: gt.pairAt[idx], Allowed: allowed}
		}
	})
	return rep
}

// ValidityTracker checks Requirement 1 (validity) online: every logical
// clock must advance at effective rate >= 1/2 and never jump down. It is the
// streaming counterpart of CheckValidity, reporting the first violation.
type ValidityTracker struct {
	scheds  []*clock.Schedule
	cur     []trace.Decl
	leftVal []rat.Rat // left-limit logical value at cur.Real
	err     error
}

// NewValidityTracker returns a tracker for nodes with the given hardware
// schedules.
func NewValidityTracker(scheds []*clock.Schedule) *ValidityTracker {
	n := len(scheds)
	vt := &ValidityTracker{
		scheds:  scheds,
		cur:     make([]trace.Decl, n),
		leftVal: make([]rat.Rat, n),
	}
	one := rat.FromInt(1)
	for i := range vt.cur {
		vt.cur[i] = trace.Decl{Node: i, Mult: one}
	}
	return vt
}

// OnAction implements the engine Observer interface (no-op).
func (vt *ValidityTracker) OnAction(trace.Action) {}

// OnSend implements the engine Observer interface (no-op).
func (vt *ValidityTracker) OnSend(trace.MsgRecord) {}

// OnDeliver implements the engine Observer interface (no-op).
func (vt *ValidityTracker) OnDeliver(trace.MsgRecord) {}

// minRateIn returns the minimum schedule rate in effect anywhere in the
// half-open window [from, to) — exactly the rates that multiply a
// declaration closed out at `to` in the compiled clock.
func minRateIn(s *clock.Schedule, from, to rat.Rat) rat.Rat {
	rates := s.Rates()
	var mn rat.Rat
	first := true
	for i, seg := range rates {
		if seg.At.GreaterEq(to) {
			break
		}
		if i+1 < len(rates) && rates[i+1].At.LessEq(from) {
			continue
		}
		if first || seg.Rate.Less(mn) {
			mn = seg.Rate
			first = false
		}
	}
	return mn
}

// closeOut verifies node i's current declaration over [cur.Real, to): the
// deferred jump at cur.Real and the effective rate across every hardware
// rate segment the declaration spans. closed selects the closed window
// [cur.Real, to], matching the final-horizon semantics of the post-hoc
// checker (which includes the rate in effect at the end of the window).
func (vt *ValidityTracker) closeOut(i int, to rat.Rat, closed bool) {
	if vt.err != nil {
		return
	}
	cur := vt.cur[i]
	// Deferred jump check at cur.Real: the final same-instant declaration's
	// value against the left limit. The implicit starting declaration has
	// Value == leftVal == 0, so it never trips.
	if jump := cur.Value.Sub(vt.leftVal[i]); jump.Sign() < 0 {
		vt.err = fmt.Errorf("core: node %d logical clock jumps down by %s", i, jump.Neg())
		return
	}
	var mn rat.Rat
	switch {
	case closed:
		mn = vt.scheds[i].MinRate(cur.Real, to)
	case to.Greater(cur.Real):
		mn = minRateIn(vt.scheds[i], cur.Real, to)
	default:
		return
	}
	if eff := cur.Mult.Mul(mn); eff.Less(ValidityRate) {
		vt.err = fmt.Errorf("core: node %d logical rate %s < 1/2 violates validity", i, eff)
	}
}

// OnDeclare implements the engine ClockObserver interface.
func (vt *ValidityTracker) OnDeclare(d trace.Decl) {
	if vt.err != nil {
		return
	}
	i := d.Node
	if d.Real.Greater(vt.cur[i].Real) {
		vt.closeOut(i, d.Real, false)
		cur := vt.cur[i]
		vt.leftVal[i] = cur.Value.Add(cur.Mult.Mul(vt.scheds[i].HW(d.Real).Sub(cur.HW0)))
	}
	// Same-instant re-declaration replaces the current one; the left limit
	// is unchanged and intermediate values never exist in the compiled
	// clock.
	vt.cur[i] = d
}

// Flush verifies every node's open declaration through time t.
func (vt *ValidityTracker) Flush(t rat.Rat) {
	for i := range vt.cur {
		vt.closeOut(i, t, true)
	}
}

// OnHorizon implements the engine HorizonObserver interface.
func (vt *ValidityTracker) OnHorizon(t rat.Rat) { vt.Flush(t) }

// Err returns the first validity violation, or nil — the online equivalent
// of CheckValidity on the recorded execution.
func (vt *ValidityTracker) Err() error { return vt.err }
