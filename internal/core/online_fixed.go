// Fixed-point lane for the SkewTracker (see internal/fixed): when the
// engine's scale detection lands the run on a common tick grid, the engine
// hands the scale to every attached observer implementing AdoptFixedLane,
// and the tracker mirrors its per-node declarations and per-pair running
// maxima in int64 ticks. Pair evaluations — the tracker's O(n)-per-
// declaration hot path, and the dominant per-step CPU term of an observed
// run — then reduce to integer clock evaluation plus one integer compare,
// with the usual contract: any value off the grid falls back to exact
// rational arithmetic for that value alone, so results are byte-identical
// to the pure rat lane.

package core

import (
	"gcs/internal/clock"
	"gcs/internal/fixed"
	"gcs/internal/rat"
	"gcs/internal/trace"
)

// declTicks mirrors one logical-clock declaration on the tick grid:
// L(t) = val + (multP/multQ)·(H(t) − hw0), all times and values in ticks.
// ok=false means the declaration has an off-grid component and every
// evaluation under it takes the rat lane.
type declTicks struct {
	val, hw0     int64
	multP, multQ int64
	ok           bool
}

// AdoptFixedLane implements the engine's fixed-lane observer extension: the
// engine calls it with its detected tick scale (0 when the run stays on the
// rat lane) when the tracker is attached. The tracker compiles its own
// schedule mirrors at that scale; a tracker that never adopts a scale — or
// adopts 0 — runs entirely on the rat lane, byte-identical either way.
func (st *SkewTracker) AdoptFixedLane(scale int64) {
	if scale == st.scale && (scale == 0 || st.fscheds != nil) {
		return // already on this grid (e.g. a clone re-attached to a fork)
	}
	st.scale = 0
	st.fscheds = nil
	if scale <= 0 {
		return
	}
	fs := make([]*clock.FixedSchedule, st.n)
	for i, s := range st.scheds {
		f, ok := s.CompileFixed(scale)
		if !ok {
			return
		}
		fs[i] = f
	}
	st.scale = scale
	st.fscheds = fs
	if st.curT == nil {
		st.curT = make([]declTicks, st.n)
		st.leftT = make([]declTicks, st.n)
		st.pairSkewT = make([]int64, st.n*st.n)
		st.pairTickOK = make([]bool, st.n*st.n)
	}
	for i := 0; i < st.n; i++ {
		st.curT[i] = st.declTicksOf(st.cur[i])
		st.leftT[i] = st.declTicksOf(st.left[i])
	}
	// Pair mirrors re-establish lazily from the exact rat maxima.
	for i := range st.pairTickOK {
		st.pairTickOK[i] = false
	}
	st.pendingT, st.pendingOK = fixed.FromRat(st.pending, scale)
}

// declTicksOf converts a declaration onto the grid.
func (st *SkewTracker) declTicksOf(d trace.Decl) declTicks {
	val, ok1 := fixed.FromRat(d.Value, st.scale)
	hw0, ok2 := fixed.FromRat(d.HW0, st.scale)
	p, ok3 := d.Mult.Num()
	q, ok4 := d.Mult.Den()
	return declTicks{
		val: val, hw0: hw0, multP: p, multQ: q,
		ok: ok1 && ok2 && ok3 && ok4 && p >= 0 && q > 0,
	}
}

// declBeforeT is declBefore on the tick mirror.
func (st *SkewTracker) declBeforeT(k int, t rat.Rat) declTicks {
	if st.cur[k].Real.Equal(t) {
		return st.leftT[k]
	}
	return st.curT[k]
}

// logicalAtT evaluates node i's logical clock in ticks, or ok=false when
// any component is off the grid. An ok result equals logicalAt bit for bit
// after fixed.ToRat.
func (st *SkewTracker) logicalAtT(dt declTicks, i int, tT int64) (int64, bool) {
	if !dt.ok {
		return 0, false
	}
	hwT, ok := st.fscheds[i].HWTicks(tT)
	if !ok {
		return 0, false
	}
	diff, ok := fixed.Sub(hwT, dt.hw0)
	if !ok {
		return 0, false
	}
	term, ok := fixed.MulDiv(diff, dt.multP, dt.multQ)
	if !ok {
		return 0, false
	}
	return fixed.Add(dt.val, term)
}

// updatePairT folds a pair evaluation already computed in ticks into the
// running maxima. The overwhelmingly common outcome — the new value does not
// exceed the pair's running maximum — is a single integer compare; only an
// increase (or a stale tick mirror) materializes rationals.
func (st *SkewTracker) updatePairT(i, j int, diffT int64, at rat.Rat) {
	if j < i {
		i, j = j, i
	}
	idx := i*st.n + j
	if st.pairSet[idx] && st.pairTickOK[idx] && diffT <= st.pairSkewT[idx] {
		return
	}
	if st.updatePair(i, j, fixed.ToRat(diffT, st.scale), at) {
		st.pairSkewT[idx] = diffT
		st.pairTickOK[idx] = true
		return
	}
	// Not an increase, but the tick mirror was stale (the maximum was last
	// stored through the rat lane): refresh it so the next compare is fast.
	st.pairSkewT[idx], st.pairTickOK[idx] = fixed.FromRat(st.pairSkew[idx], st.scale)
}
