package search

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"gcs/internal/clock"
	"gcs/internal/core"
	"gcs/internal/engine"
	"gcs/internal/network"
	"gcs/internal/rat"
	"gcs/internal/sim"
	"gcs/internal/trace"
)

// Objective selects the quantity the search maximizes.
type Objective int

// Objectives.
const (
	// ObjectiveGlobalSkew maximizes the worst |L_i − L_j| over all pairs.
	ObjectiveGlobalSkew Objective = iota
	// ObjectiveLocalSkew maximizes the worst |L_i − L_j| over distance-1
	// pairs.
	ObjectiveLocalSkew
	// ObjectiveGradientMargin maximizes max over pairs of
	// |L_i − L_j| − f(d(i,j)): positive values are gradient violations.
	ObjectiveGradientMargin
)

// String returns the objective's flag-style name.
func (o Objective) String() string {
	switch o {
	case ObjectiveGlobalSkew:
		return "global"
	case ObjectiveLocalSkew:
		return "local"
	case ObjectiveGradientMargin:
		return "margin"
	default:
		return fmt.Sprintf("objective(%d)", int(o))
	}
}

// ParseObjective parses an objective name as used by the CLIs.
func ParseObjective(s string) (Objective, error) {
	switch strings.ToLower(s) {
	case "global":
		return ObjectiveGlobalSkew, nil
	case "local":
		return ObjectiveLocalSkew, nil
	case "margin":
		return ObjectiveGradientMargin, nil
	default:
		return 0, fmt.Errorf("search: unknown objective %q (want global | local | margin)", s)
	}
}

// Options configures a worst-case search.
type Options struct {
	Net      *network.Network
	Protocol sim.Protocol
	Duration rat.Rat
	Rho      rat.Rat // drift bound ρ; rate mutations stay within [1−ρ, 1+ρ]

	// Schedules are the base hardware schedules (default: all constant 1).
	// Rate mutations replace one node's schedule with a constant-rate one.
	Schedules []*clock.Schedule

	// Base seeds the search and serves as the tail adversary for decisions
	// beyond every candidate script. Default: Midpoint().
	Base engine.Adversary

	Objective Objective
	// Gradient is the bound f for ObjectiveGradientMargin (required there,
	// ignored otherwise).
	Gradient core.GradientFunc

	// Rounds bounds the greedy rounds (each round composes one more mutation
	// on top of the beam). Default 4.
	Rounds int
	// Beam is the number of best candidates expanded each round. Default 2.
	Beam int
	// DelayMutations caps how many of a candidate's decisions are mutated
	// per round, sampled evenly across the decision log so late decisions
	// are reachable. Default 16.
	DelayMutations int
	// Workers bounds the evaluation pool. Default GOMAXPROCS.
	Workers int
	// DisableRateMutations restricts the search to delay choices only.
	DisableRateMutations bool
}

// Result is the outcome of a search: the best adversary found, as a
// replayable script plus rate overrides, with the objective values that
// certify it. Identical Options produce identical Results regardless of
// Workers or GOMAXPROCS.
type Result struct {
	Objective Objective
	// Baseline is the objective value of the unmutated base candidate.
	Baseline rat.Rat
	// Best is the searched worst-case objective value (≥ Baseline).
	Best rat.Rat
	// Witness is the pair and time attaining Best (skew objectives) or the
	// pair with the worst margin (margin objective).
	Witness core.PairSkew
	// Script is the complete realized decision log of the best run: replay
	// it with ReplayAdversary (or engine.ScriptedAdversary + the base tail)
	// to reproduce the execution exactly.
	Script map[trace.MsgKey]rat.Rat
	// Rates holds per-node constant-rate overrides; a zero Rat means the
	// node keeps its base schedule.
	Rates []rat.Rat
	// Rounds is the number of mutation rounds executed, Evaluated the total
	// number of candidate simulations.
	Rounds    int
	Evaluated int
}

// ReplayAdversary returns the adversary reproducing the best execution found
// (the full realized script over the base tail).
func (r *Result) ReplayAdversary(base engine.Adversary) engine.ScriptedAdversary {
	return engine.ScriptedAdversary{Delays: r.Script, Fallback: base}
}

// ReplaySchedules returns the hardware schedules of the best execution:
// base schedules with the searched constant-rate overrides applied.
func (r *Result) ReplaySchedules(base []*clock.Schedule) []*clock.Schedule {
	out := make([]*clock.Schedule, len(base))
	for i := range base {
		if i < len(r.Rates) && !r.Rates[i].IsZero() {
			out[i] = clock.Constant(r.Rates[i])
		} else {
			out[i] = base[i]
		}
	}
	return out
}

// candidate is one point of the search space: a delay script layered over
// the base tail adversary, plus per-node constant-rate overrides (zero Rat =
// base schedule). id is the global discovery index, the deterministic
// tie-breaker.
type candidate struct {
	id     int
	script map[trace.MsgKey]rat.Rat
	rates  []rat.Rat
}

// evaluation is a candidate's simulated outcome.
type evaluation struct {
	cand    candidate
	value   rat.Rat
	witness core.PairSkew
	log     *DecisionLog
	err     error
}

// Search hunts a skew-maximizing execution for opt.Protocol on opt.Net. See
// the package comment for the algorithm; the result is deterministic in
// Options alone.
func Search(opt Options) (*Result, error) {
	if err := normalize(&opt); err != nil {
		return nil, err
	}
	n := opt.Net.N()

	seed := candidate{id: 0, rates: make([]rat.Rat, n)}
	evals := evalAll(opt, []candidate{seed})
	if evals[0].err != nil {
		return nil, fmt.Errorf("search: base run: %w", evals[0].err)
	}
	base := evals[0]
	best := base
	beam := []evaluation{base}
	nextID := 1
	evaluated := 1
	rounds := 0

	seen := map[string]bool{key(seed): true}
	for round := 0; round < opt.Rounds; round++ {
		var cands []candidate
		for _, parent := range beam {
			for _, m := range mutations(opt, parent) {
				k := key(m)
				if seen[k] {
					continue
				}
				seen[k] = true
				m.id = nextID
				nextID++
				cands = append(cands, m)
			}
		}
		if len(cands) == 0 {
			break
		}
		rounds++
		results := evalAll(opt, cands)
		evaluated += len(results)
		for _, ev := range results {
			if ev.err != nil {
				return nil, fmt.Errorf("search: candidate %d: %w", ev.cand.id, ev.err)
			}
		}
		beam = reduce(append(beam, results...), opt.Beam)
		if !beam[0].value.Greater(best.value) {
			break // no round improvement: greedy fixpoint
		}
		best = beam[0]
	}

	return &Result{
		Objective: opt.Objective,
		Baseline:  base.value,
		Best:      best.value,
		Witness:   best.witness,
		Script:    best.log.Script(),
		Rates:     best.cand.rates,
		Rounds:    rounds,
		Evaluated: evaluated,
	}, nil
}

// normalize validates opt and fills defaults.
func normalize(opt *Options) error {
	if opt.Net == nil {
		return fmt.Errorf("search: nil network")
	}
	if opt.Protocol == nil {
		return fmt.Errorf("search: nil protocol")
	}
	if opt.Duration.Sign() <= 0 {
		return fmt.Errorf("search: non-positive duration %s", opt.Duration)
	}
	if opt.Objective == ObjectiveGradientMargin && opt.Gradient == nil {
		return fmt.Errorf("search: ObjectiveGradientMargin needs a Gradient func")
	}
	n := opt.Net.N()
	if opt.Schedules == nil {
		opt.Schedules = make([]*clock.Schedule, n)
		for i := range opt.Schedules {
			opt.Schedules[i] = clock.Constant(rat.FromInt(1))
		}
	}
	if len(opt.Schedules) != n {
		return fmt.Errorf("search: %d schedules for %d nodes", len(opt.Schedules), n)
	}
	if opt.Base == nil {
		opt.Base = engine.Midpoint()
	}
	if opt.Rounds <= 0 {
		opt.Rounds = 4
	}
	if opt.Beam <= 0 {
		opt.Beam = 2
	}
	if opt.DelayMutations <= 0 {
		opt.DelayMutations = 16
	}
	if opt.Workers <= 0 {
		opt.Workers = runtime.GOMAXPROCS(0)
	}
	return nil
}

// delaySnaps are the candidate delay fractions of the bound: the extremes
// and the midpoint the constructions use.
var delaySnaps = []rat.Rat{{}, rat.MustFrac(1, 2), rat.FromInt(1)}

// mutations enumerates the deterministic single-step edits of a parent
// candidate: per-node rate flips within ±ρ, then per-decision delay snaps
// over an even sample of the parent's realized decision log.
func mutations(opt Options, parent evaluation) []candidate {
	var out []candidate

	if !opt.DisableRateMutations {
		one := rat.FromInt(1)
		rateChoices := []rat.Rat{one.Sub(opt.Rho), one, one.Add(opt.Rho)}
		// Rate-flip candidates never edit their script, so they can share one
		// copy of the parent's realized decisions (read-only during replay).
		shared := parent.log.Script()
		for node := 0; node < opt.Net.N(); node++ {
			cur := effectiveRate(opt, parent.cand, node)
			for _, r := range rateChoices {
				if r.Sign() <= 0 || (cur != nil && cur.Equal(r)) {
					continue
				}
				rates := append([]rat.Rat(nil), parent.cand.rates...)
				rates[node] = r
				out = append(out, candidate{script: shared, rates: rates})
			}
		}
	}

	decs := parent.log.Decisions()
	for _, idx := range sampleIndices(len(decs), opt.DelayMutations) {
		d := decs[idx]
		for _, frac := range delaySnaps {
			v := frac.Mul(d.Bound)
			if v.Equal(d.Delay) {
				continue
			}
			script := parent.log.Script()
			script[d.Key] = v
			out = append(out, candidate{script: script, rates: parent.cand.rates})
		}
	}
	return out
}

// effectiveRate returns the constant rate node runs at under cand, or nil
// when the base schedule is not constant (then every flip is a real change).
func effectiveRate(opt Options, cand candidate, node int) *rat.Rat {
	if !cand.rates[node].IsZero() {
		r := cand.rates[node]
		return &r
	}
	segs := opt.Schedules[node].Rates()
	if len(segs) == 1 {
		r := segs[0].Rate
		return &r
	}
	return nil
}

// sampleIndices returns up to k indices spread evenly across [0, n), always
// including the first and last when possible, in increasing order.
func sampleIndices(n, k int) []int {
	if n <= 0 || k <= 0 {
		return nil
	}
	if n <= k {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	if k == 1 {
		return []int{0}
	}
	out := make([]int, 0, k)
	last := -1
	for i := 0; i < k; i++ {
		idx := i * (n - 1) / (k - 1)
		if idx != last {
			out = append(out, idx)
			last = idx
		}
	}
	return out
}

// key canonicalizes a candidate for deduplication: rates plus sorted script
// entries.
func key(c candidate) string {
	var b strings.Builder
	for i, r := range c.rates {
		fmt.Fprintf(&b, "r%d=%s;", i, r.Key())
	}
	entries := make([]string, 0, len(c.script))
	for k, v := range c.script {
		entries = append(entries, fmt.Sprintf("%d>%d#%d=%s", k.From, k.To, k.Seq, v.Key()))
	}
	sort.Strings(entries)
	b.WriteString(strings.Join(entries, ";"))
	return b.String()
}

// evalAll simulates every candidate concurrently on a bounded worker pool.
// Each worker owns an independent Engine and trackers; results land in a
// slice indexed by candidate position, so no ordering nondeterminism can
// leak into the reduction.
func evalAll(opt Options, cands []candidate) []evaluation {
	results := make([]evaluation, len(cands))
	workers := opt.Workers
	if workers > len(cands) {
		workers = len(cands)
	}
	if workers <= 1 {
		for i, c := range cands {
			results[i] = evaluate(opt, c)
		}
		return results
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				results[i] = evaluate(opt, cands[i])
			}
		}()
	}
	for i := range cands {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return results
}

// evaluate re-simulates one candidate from scratch and reads the objective
// off the online trackers.
func evaluate(opt Options, cand candidate) evaluation {
	ev := evaluation{cand: cand}
	scheds := make([]*clock.Schedule, len(opt.Schedules))
	for i, s := range opt.Schedules {
		if !cand.rates[i].IsZero() {
			scheds[i] = clock.Constant(cand.rates[i])
		} else {
			scheds[i] = s
		}
	}
	skew, err := core.NewSkewTracker(opt.Net, scheds)
	if err != nil {
		ev.err = err
		return ev
	}
	log := NewDecisionLog(opt.Net)
	adv := engine.ScriptedAdversary{Delays: cand.script, Fallback: opt.Base}
	eng, err := engine.New(opt.Net,
		engine.WithProtocol(opt.Protocol),
		engine.WithAdversary(adv),
		engine.WithSchedules(scheds),
		engine.WithRho(opt.Rho),
		engine.WithObservers(skew, log),
	)
	if err != nil {
		ev.err = err
		return ev
	}
	if err := eng.RunUntil(opt.Duration); err != nil {
		ev.err = err
		return ev
	}
	if err := skew.Err(); err != nil {
		ev.err = err
		return ev
	}
	ev.log = log
	ev.value, ev.witness = objectiveValue(opt, skew)
	return ev
}

// objectiveValue reads the configured objective off a flushed tracker.
func objectiveValue(opt Options, skew *core.SkewTracker) (rat.Rat, core.PairSkew) {
	switch opt.Objective {
	case ObjectiveLocalSkew:
		l := skew.Local()
		return l.Skew, l
	case ObjectiveGradientMargin:
		var worst core.PairSkew
		var margin rat.Rat
		first := true
		opt.Net.Pairs(func(i, j int) {
			p := skew.Pair(i, j)
			p.Allowed = opt.Gradient(p.Dist)
			m := p.Skew.Sub(p.Allowed)
			if first || m.Greater(margin) {
				margin, worst, first = m, p, false
			}
		})
		return margin, worst
	default:
		g := skew.Global()
		return g.Skew, g
	}
}

// reduce sorts the pool by (value desc, discovery id asc) and keeps the top
// `beam` entries. The id tie-break makes the selection — and therefore the
// whole search — independent of evaluation timing.
func reduce(pool []evaluation, beam int) []evaluation {
	sort.Slice(pool, func(a, b int) bool {
		if c := pool[a].value.Cmp(pool[b].value); c != 0 {
			return c > 0
		}
		return pool[a].cand.id < pool[b].cand.id
	})
	if len(pool) > beam {
		pool = pool[:beam]
	}
	return pool
}
